package colmena

import (
	"bytes"
	"context"
	"testing"
	"time"

	"proxystore/internal/connectors/local"
	"proxystore/internal/proxy"
	"proxystore/internal/store"
	"proxystore/internal/workflow"
)

func newServer(t *testing.T, channelBW float64) *Server {
	t.Helper()
	engine := workflow.New(workflow.Options{Workers: 2, ChannelBandwidth: channelBW})
	t.Cleanup(func() { engine.Close() })
	return NewServer(engine, 64)
}

func TestSubmitAndReceiveResult(t *testing.T) {
	s := newServer(t, 0)
	s.RegisterMethod("noop", func(_ context.Context, in any) (any, error) {
		return in, nil
	})
	ctx := context.Background()
	if err := s.Submit(ctx, "noop", []byte("task input"), "tag-1"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := <-s.Results()
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	if res.Tag != "tag-1" || res.Method != "noop" {
		t.Fatalf("result = %+v", res)
	}
	if !bytes.Equal(res.Value.([]byte), []byte("task input")) {
		t.Fatalf("Value = %v", res.Value)
	}
	if res.RTT() <= 0 {
		t.Fatal("RTT not positive")
	}
}

func TestUnknownMethod(t *testing.T) {
	s := newServer(t, 0)
	if err := s.Submit(context.Background(), "ghost", nil, nil); err == nil {
		t.Fatal("Submit accepted unknown method")
	}
}

func TestInputProxiedAboveThreshold(t *testing.T) {
	s := newServer(t, 0)
	st, err := store.New("colmena-in", local.New("colmena-in-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-in") })

	sawProxy := make(chan bool, 1)
	s.RegisterMethod("check", func(_ context.Context, in any) (any, error) {
		// The colmena layer resolves proxies before the method runs, so
		// the method sees plain bytes; proxying is observable via store
		// metrics instead.
		_, isBytes := in.([]byte)
		sawProxy <- isBytes
		return nil, nil
	})
	s.RegisterStore("check", StorePolicy{Store: st, Threshold: 1024})

	ctx := context.Background()
	if err := s.Submit(ctx, "check", make([]byte, 10_000), nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := <-s.Results()
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	if !<-sawProxy {
		t.Fatal("method did not receive resolved bytes")
	}
	if st.Metrics().Proxies != 1 {
		t.Fatalf("store minted %d proxies, want 1", st.Metrics().Proxies)
	}
}

func TestSmallInputNotProxied(t *testing.T) {
	s := newServer(t, 0)
	st, err := store.New("colmena-small", local.New("colmena-small-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-small") })
	s.RegisterMethod("noop", func(_ context.Context, in any) (any, error) { return in, nil })
	s.RegisterStore("noop", StorePolicy{Store: st, Threshold: 1024})

	if err := s.Submit(context.Background(), "noop", []byte("tiny"), nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := <-s.Results()
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	if st.Metrics().Proxies != 0 {
		t.Fatalf("store minted %d proxies for sub-threshold input", st.Metrics().Proxies)
	}
}

func TestResultProxying(t *testing.T) {
	s := newServer(t, 0)
	st, err := store.New("colmena-out", local.New("colmena-out-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-out") })
	s.RegisterMethod("produce", func(context.Context, any) (any, error) {
		return make([]byte, 50_000), nil
	})
	s.RegisterStore("produce", StorePolicy{Store: st, Threshold: 1024, ProxyResults: true})

	ctx := context.Background()
	if err := s.Submit(ctx, "produce", nil, nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := <-s.Results()
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	p, isProxy := res.Value.(*proxy.Proxy[[]byte])
	if !isProxy {
		t.Fatalf("result value is %T, want a proxy", res.Value)
	}
	data, err := ResolveResult(ctx, p)
	if err != nil {
		t.Fatalf("ResolveResult: %v", err)
	}
	if len(data.([]byte)) != 50_000 {
		t.Fatalf("resolved %d bytes", len(data.([]byte)))
	}
}

func TestProxyingReducesRTTForLargePayloads(t *testing.T) {
	// The Figure 7 effect, in miniature: with a slow engine channel, a
	// large input is much faster by proxy than by value.
	st, err := store.New("colmena-rtt", local.New("colmena-rtt-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-rtt") })

	input := make([]byte, 4<<20)

	run := func(withStore bool) time.Duration {
		s := newServer(t, 50e6) // 50 MB/s engine channel
		s.RegisterMethod("noop", func(_ context.Context, in any) (any, error) { return nil, nil })
		if withStore {
			s.RegisterStore("noop", StorePolicy{Store: st, Threshold: 1024})
		}
		ctx := context.Background()
		start := time.Now()
		if err := s.Submit(ctx, "noop", input, nil); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		res := <-s.Results()
		if res.Err != nil {
			t.Fatalf("result error: %v", res.Err)
		}
		return time.Since(start)
	}

	baseline := run(false)
	proxied := run(true)
	if proxied >= baseline {
		t.Fatalf("proxied RTT (%v) should beat baseline (%v) for 4MB inputs", proxied, baseline)
	}
}
