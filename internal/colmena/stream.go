package colmena

// The stream-backed Task Server: Submit/Results become a pstream
// producer/consumer pair. Task inputs and outputs ride the store data
// plane; the broker moves only compact task/result events, so the
// steering loop works unchanged over MemBroker (in-process) or KVBroker
// (cross-process, push delivery).

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/proxy"
	"proxystore/internal/pstream"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// streamGroup is the consumer group StreamServer workers join on the task
// topic: each task is claimed by exactly one live worker.
const streamGroup = "workers"

// attrStreamID carries the task ID on task and result events so the
// results loop routes without resolving bulk payloads; attrStreamReply
// carries the submitting instance's result topic on task events so a
// worker can report a resolution failure without the payload.
const (
	attrStreamID    = "colmena.id"
	attrStreamReply = "colmena.rt"
)

// streamTask is the bulk payload of one submission.
type streamTask struct {
	ID     string
	Method string
	// Input is the gob-encoded input value (see encodeAny); empty for a
	// nil input.
	Input []byte
	// ResultTopic is the submitting instance's private result topic.
	// Tasks from several instances of one server name share the task
	// topic (one worker group), but each instance's results flow home.
	ResultTopic string
}

// streamResult is the bulk payload of one completed task.
type streamResult struct {
	ID string
	// Value is the gob-encoded output (a proxy when the method's policy
	// proxies results); empty for a nil output.
	Value []byte
	Err   string
}

func init() {
	gob.Register(streamTask{})
	gob.Register(streamResult{})
}

// encodeAny serializes an arbitrary value with the default gob codec
// (serial.Default, the same wire format stores use); nil encodes to nil
// bytes, which gob itself cannot express.
func encodeAny(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	return serial.Default().Encode(v)
}

// decodeAny is the inverse of encodeAny.
func decodeAny(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	return serial.Default().Decode(data)
}

// evictProxyTarget best-effort reclaims a proxy's stored payload —
// cleanup for proxies minted into policy stores that will never reach a
// consumer. Detached from the caller's cancellation, which may be the
// very reason the proxy is being abandoned.
func evictProxyTarget(ctx context.Context, p *proxy.Proxy[[]byte]) {
	if p == nil {
		return
	}
	if st, key, ok, err := store.KeyOf(p); err == nil && ok {
		_ = st.Evict(context.WithoutCancel(ctx), key)
	}
}

// pendingTask is the Thinker-side state kept per in-flight submission, so
// tags and timestamps never cross the wire.
type pendingTask struct {
	method    string
	tag       any
	submitted time.Time
}

// StreamServer is the Colmena Task Server rebuilt on pstream: Submit is a
// producer on the server's task topic, the worker pool is a consumer
// group on that topic, and the Results channel is fed by a consumer on
// the server's result topic. Method registration and store policies work
// exactly as on Server; with ProxyResults the Result.Value delivered to
// the Thinker is a lazy proxy, resolved (if ever) via ResolveResult.
//
// A StreamServer is safe for concurrent use.
type StreamServer struct {
	registry
	st      *store.Store
	b       pstream.Broker
	name    string
	reply   string // this instance's private result topic
	results chan Result
	prod    *pstream.Producer[streamTask]

	pmu     sync.Mutex
	pending map[string]pendingTask
	closed  bool

	// resolveStrikes bounds redelivery of tasks whose payloads cannot be
	// resolved (pstream.SettleAfterStrikes, shared with faas).
	resolveStrikes *pstream.Strikes

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// taskTopic names the shared task stream for a server name; resultTopic
// names one instance's private result stream — results must flow back to
// the instance whose pending map holds the submission, not to whichever
// same-named instance reads a shared topic first.
func taskTopic(name string) string             { return "colmena.t." + name }
func resultTopic(name, instance string) string { return "colmena.r." + name + "." + instance }

// NewStreamServer starts a stream-backed task server with the given
// worker-pool size. st stores task and result payloads (its serializer
// must handle gob — the default does); b carries the O(100 B) events.
func NewStreamServer(st *store.Store, b pstream.Broker, name string, workers, resultDepth int) (*StreamServer, error) {
	if workers < 1 {
		workers = 4
	}
	if resultDepth < 1 {
		resultDepth = 4096
	}
	// The instance ID keeps same-named server processes apart everywhere
	// identity matters: the result topic (each instance's results flow
	// only to it) and worker member names (a stale ack from one process
	// must not settle a same-named peer's live claim).
	instance := connector.NewID()[:8]
	ctx, cancel := context.WithCancel(context.Background())
	reply := resultTopic(name, instance)
	cons, err := pstream.NewConsumer[streamResult](ctx, b, reply, "thinker",
		pstream.WithEndCount(0))
	if err != nil {
		cancel()
		return nil, err
	}
	s := &StreamServer{
		registry: newRegistry(),
		st:       st,
		b:        b,
		name:     name,
		reply:    reply,
		results:  make(chan Result, resultDepth),
		// One logical consumer — the worker group — reads each task, so
		// claim settlement reclaims the task payload from the store.
		prod:           pstream.NewProducer[streamTask](st, b, taskTopic(name), pstream.WithEvictOnAck(1)),
		pending:        make(map[string]pendingTask),
		resolveStrikes: pstream.NewStrikes(),
		cancel:         cancel,
	}
	s.wg.Add(1)
	go s.resultLoop(ctx, cons)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker(ctx, fmt.Sprintf("%s-%s-w%d", name, instance, i))
	}
	return s, nil
}

// Results is the stream of completed tasks.
func (s *StreamServer) Results() <-chan Result { return s.results }

// Submit publishes the task to the server's task topic. Large []byte
// inputs are proxied into the method's registered policy store first, so
// they land in the store the user chose for that task type; either way
// the broker carries only the task event.
func (s *StreamServer) Submit(ctx context.Context, method string, input any, tag any) error {
	_, policy, hasPolicy, ok := s.lookup(method)
	if !ok {
		return fmt.Errorf("colmena: method %q not registered", method)
	}
	submitted := time.Now()

	arg := input
	var proxied *proxy.Proxy[[]byte]
	if hasPolicy && policy.Store != nil {
		if data, isBytes := input.([]byte); isBytes && len(data) >= policy.Threshold {
			p, err := store.NewProxy(ctx, policy.Store, data)
			if err != nil {
				return fmt.Errorf("colmena: proxying input: %w", err)
			}
			arg, proxied = p, p
		}
	}
	// unproxy reclaims the policy-store payload when the task never makes
	// it onto the topic — no worker could ever learn the key, so leaving
	// it would leak on persistent stores.
	unproxy := func() { evictProxyTarget(ctx, proxied) }
	inputGob, err := encodeAny(arg)
	if err != nil {
		unproxy()
		return err
	}

	id := connector.NewID()
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		unproxy()
		return fmt.Errorf("colmena: stream server closed")
	}
	s.pending[id] = pendingTask{method: method, tag: tag, submitted: submitted}
	s.pmu.Unlock()

	tk := streamTask{ID: id, Method: method, Input: inputGob, ResultTopic: s.reply}
	attrs := map[string]string{attrStreamID: id, attrStreamReply: s.reply}
	if err := s.prod.Send(ctx, tk, attrs); err != nil {
		s.pmu.Lock()
		delete(s.pending, id)
		s.pmu.Unlock()
		unproxy()
		return err
	}
	return nil
}

// worker claims tasks from the task topic, executes methods, and publishes
// results. The claim is settled only after the result publish succeeds, so
// a crashed worker's tasks are re-executed by survivors on lease expiry.
func (s *StreamServer) worker(ctx context.Context, member string) {
	defer s.wg.Done()
	pstream.ConsumeLoop(ctx, 0, func() (*pstream.Consumer[streamTask], error) {
		return pstream.NewConsumer[streamTask](ctx, s.b, taskTopic(s.name), member,
			pstream.WithGroup(streamGroup), pstream.WithEndCount(0), pstream.WithWindow(1))
	}, s.execute)
}

// replyProducer builds the producer for one task's result topic. Per-task
// construction (producers are tiny stateless handles): tasks on one
// shared task topic come from different submitting instances, each with
// its own result topic. Exactly one consumer — the submitting instance's
// thinker — reads it, so evict-on-ack reclaims result payloads.
func (s *StreamServer) replyProducer(topic string) *pstream.Producer[streamResult] {
	return pstream.NewProducer[streamResult](s.st, s.b, topic, pstream.WithEvictOnAck(1))
}

// failResolve handles a payload-resolution failure inside a claimed task
// via the shared poison-task policy (pstream.SettleAfterStrikes): leases
// retry transient failures, strikes bound the poison case. reply is the
// task's result topic (from the event attrs when the payload itself is
// what failed to resolve).
func (s *StreamServer) failResolve(ctx context.Context, it *pstream.Item[streamTask], reply, id string, cause error) {
	if reply == "" {
		return
	}
	pstream.SettleAfterStrikes(ctx, s.resolveStrikes, it, pstream.DefaultSettleStrikes, func() error {
		res := streamResult{ID: id, Err: fmt.Sprintf("resolving task payload: %v", cause)}
		return s.replyProducer(reply).Send(ctx, res, map[string]string{attrStreamID: id})
	})
}

func (s *StreamServer) execute(ctx context.Context, it *pstream.Item[streamTask]) {
	tk, err := it.Value(ctx)
	if err != nil {
		s.failResolve(ctx, it, it.Event.Attr(attrStreamReply), it.Event.Attr(attrStreamID), err)
		return
	}
	res := streamResult{ID: tk.ID}
	var resultProxy *proxy.Proxy[[]byte] // minted under ProxyResults; ours until the result ships
	m, policy, hasPolicy, ok := s.lookup(tk.Method)
	if !ok {
		res.Err = fmt.Sprintf("method %q not registered", tk.Method)
	} else if in, err := decodeAny(tk.Input); err != nil {
		res.Err = err.Error()
	} else {
		// Transparent resolution on the worker: a proxied input resolves
		// to its target before the method runs, exactly as on Server.
		if p, isProxy := in.(*proxy.Proxy[[]byte]); isProxy {
			data, err := p.Value(ctx)
			if err != nil {
				s.failResolve(ctx, it, tk.ResultTopic, tk.ID, err)
				return
			}
			in = data
		}
		out, err := m(ctx, in)
		if err != nil {
			res.Err = err.Error()
		} else {
			if hasPolicy && policy.ProxyResults && policy.Store != nil {
				if data, isBytes := out.([]byte); isBytes && len(data) >= policy.Threshold {
					p, err := store.NewProxy(ctx, policy.Store, data)
					if err != nil {
						res.Err = fmt.Sprintf("proxying result: %v", err)
						out = nil
					} else {
						out = p
						resultProxy = p
					}
				}
			}
			if res.Err == "" {
				if res.Value, err = encodeAny(out); err != nil {
					res.Err = err.Error()
					res.Value = nil
				}
			}
		}
	}
	if res.Err != "" {
		// Any failure after the result proxy was minted (encode error)
		// orphans it — the error result ships without it.
		evictProxyTarget(ctx, resultProxy)
		resultProxy = nil
	}
	if err := s.replyProducer(tk.ResultTopic).Send(ctx, res, map[string]string{attrStreamID: res.ID}); err != nil {
		// The result never shipped: the lease will re-run the task, which
		// mints a fresh proxy — reclaim this one or it leaks.
		evictProxyTarget(ctx, resultProxy)
		return
	}
	s.resolveStrikes.Clear(it.Event.Offset)
	_ = it.Ack(ctx)
}

// resultLoop feeds the Results channel from the result topic.
func (s *StreamServer) resultLoop(ctx context.Context, cons *pstream.Consumer[streamResult]) {
	defer s.wg.Done()
	pstream.ConsumeLoop(ctx, 0,
		func() (*pstream.Consumer[streamResult], error) { return cons, nil },
		s.handleResult)
}

// handleResult correlates one result item with its pending submission by
// task ID and emits it on Results. Duplicate results (a worker died
// between publish and claim settlement, and the task re-ran) are acked
// and dropped.
func (s *StreamServer) handleResult(ctx context.Context, it *pstream.Item[streamResult]) {
	id := it.Event.Attr(attrStreamID)
	r, resolveErr := it.Value(ctx)
	if resolveErr == nil {
		id = r.ID
	}
	v, decErr := decodeAny(r.Value)
	_ = it.Ack(ctx)
	s.pmu.Lock()
	p, ok := s.pending[id]
	delete(s.pending, id)
	s.pmu.Unlock()
	if !ok {
		// A duplicate (the task re-ran after a worker died post-publish)
		// or a stray: the Thinker never sees it, so an embedded
		// ProxyResults proxy must be reclaimed here — each execution
		// minted its own copy in the policy store.
		if p, isProxy := v.(*proxy.Proxy[[]byte]); isProxy {
			evictProxyTarget(ctx, p)
		}
		return
	}
	result := Result{
		Method:      p.method,
		Value:       v,
		SubmittedAt: p.submitted,
		CompletedAt: time.Now(),
		Tag:         p.tag,
	}
	switch {
	case resolveErr != nil:
		result.Value = nil
		result.Err = fmt.Errorf("colmena: resolving result: %w", resolveErr)
	case r.Err != "":
		result.Err = fmt.Errorf("colmena: %s", r.Err)
	case decErr != nil:
		result.Err = decErr
	}
	select {
	case s.results <- result:
	case <-ctx.Done():
	}
}

// Close stops the workers and the results loop. Tasks already claimed but
// unsettled expire with their leases; submissions still pending never
// complete (their producers should drain Results before Close).
func (s *StreamServer) Close() error {
	s.pmu.Lock()
	s.closed = true
	s.pmu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}
