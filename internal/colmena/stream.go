package colmena

// The stream-backed Task Server: Submit/Results become a pstream
// producer/consumer pair. Task inputs and outputs ride the store data
// plane; the broker moves only compact task/result events, so the
// steering loop works unchanged over MemBroker (in-process) or KVBroker
// (cross-process, push delivery).

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/proxy"
	"proxystore/internal/pstream"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// streamGroup is the consumer group StreamServer workers join on the task
// topic: each task is claimed by exactly one live worker. thinkerGroup is
// the membership group instances join on the shared result topic (KVBroker
// with heartbeats only), backing the orphaned-result sweep.
const (
	streamGroup  = "workers"
	thinkerGroup = "thinkers"
)

// attrStreamID carries the task ID on task and result events so the
// results loop routes without resolving bulk payloads. attrStreamReply is
// the routing tag: on task events the shared result topic, on result
// events the submitting instance's ID — what each instance's result loop
// filters on and the orphan sweep checks against the live set.
// attrStreamInstance carries the submitting instance's ID on task events
// so a worker can address a resolution-failure report without the payload.
const (
	attrStreamID       = "colmena.id"
	attrStreamReply    = "colmena.rt"
	attrStreamInstance = "colmena.in"
)

// streamTask is the bulk payload of one submission.
type streamTask struct {
	ID     string
	Method string
	// Input is the gob-encoded input value (see encodeAny); empty for a
	// nil input.
	Input []byte
	// ResultTopic is the server's shared result topic. Tasks from several
	// instances of one server name share the task topic (one worker
	// group) and the result topic; Instance tags whose pending map holds
	// the submission, so results flow home by filtering, not by topic.
	ResultTopic string
	// Instance is the submitting instance's ID — echoed back as the
	// result event's colmena.rt routing tag.
	Instance string
}

// streamResult is the bulk payload of one completed task.
type streamResult struct {
	ID string
	// Value is the gob-encoded output (a proxy when the method's policy
	// proxies results); empty for a nil output.
	Value []byte
	Err   string
}

func init() {
	gob.Register(streamTask{})
	gob.Register(streamResult{})
}

// encodeAny serializes an arbitrary value with the default gob codec
// (serial.Default, the same wire format stores use); nil encodes to nil
// bytes, which gob itself cannot express.
func encodeAny(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	return serial.Default().Encode(v)
}

// decodeAny is the inverse of encodeAny.
func decodeAny(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	return serial.Default().Decode(data)
}

// evictProxyTarget best-effort reclaims a proxy's stored payload —
// cleanup for proxies minted into policy stores that will never reach a
// consumer. Detached from the caller's cancellation, which may be the
// very reason the proxy is being abandoned.
func evictProxyTarget(ctx context.Context, p *proxy.Proxy[[]byte]) {
	if p == nil {
		return
	}
	if st, key, ok, err := store.KeyOf(p); err == nil && ok {
		_ = st.Evict(context.WithoutCancel(ctx), key)
	}
}

// pendingTask is the Thinker-side state kept per in-flight submission, so
// tags and timestamps never cross the wire.
type pendingTask struct {
	method    string
	tag       any
	submitted time.Time
}

// StreamServer is the Colmena Task Server rebuilt on pstream: Submit is a
// producer on the server's task topic, the worker pool is a consumer
// group on that topic, and the Results channel is fed by a consumer on
// the server's result topic. Method registration and store policies work
// exactly as on Server; with ProxyResults the Result.Value delivered to
// the Thinker is a lazy proxy, resolved (if ever) via ResolveResult.
//
// A StreamServer is safe for concurrent use.
type StreamServer struct {
	registry
	st       *store.Store
	b        pstream.Broker
	name     string
	instance string // this instance's ID: result routing tag + member-name suffix
	reply    string // the server's shared result topic
	results  chan Result
	prod     *pstream.Producer[streamTask]
	sem      chan struct{} // in-flight window; one slot per pending task
	stop     chan struct{} // closed by Close; unblocks Submit waiters

	// kb/hb/mem: KVBroker-only machinery — membership on the shared
	// result topic and the orphaned-result sweep.
	kb  *pstream.KVBroker
	hb  *pstream.Heartbeat
	mem *pstream.Membership

	pmu     sync.Mutex
	pending map[string]pendingTask
	closed  bool

	// resolveStrikes bounds redelivery of tasks whose payloads cannot be
	// resolved (pstream.SettleAfterStrikes, shared with faas).
	resolveStrikes *pstream.Strikes

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// taskTopic names the shared task stream for a server name; resultTopic
// names its shared result stream. Every instance of the name reads the
// result topic as an independent fan-out consumer and keeps only results
// tagged with its own instance ID — one topic per server name, not one
// per instance, so an instance churn leaves no private topics behind.
func taskTopic(name string) string   { return "colmena.t." + name }
func resultTopic(name string) string { return "colmena.r." + name }

// defaultStreamInFlight bounds a StreamServer's pending submissions when
// WithStreamMaxInFlight is not given.
const defaultStreamInFlight = 4096

// StreamServerOption configures a StreamServer.
type StreamServerOption func(*streamServerConfig)

type streamServerConfig struct {
	maxInFlight int
}

// WithStreamMaxInFlight caps the server's in-flight window: Submit blocks
// while that many submissions are pending (no result delivered yet), so a
// steering loop that outruns its fleet backs off instead of flooding the
// broker. n < 1 keeps the default.
func WithStreamMaxInFlight(n int) StreamServerOption {
	return func(c *streamServerConfig) {
		if n >= 1 {
			c.maxInFlight = n
		}
	}
}

// NewStreamServer starts a stream-backed task server with the given
// worker-pool size. st stores task and result payloads (its serializer
// must handle gob — the default does); b carries the O(100 B) events.
// When b unwraps to a KVBroker with heartbeats enabled, the instance
// joins the result topic's "thinkers" membership group and sweeps the
// topic for results addressed to dead instances.
func NewStreamServer(st *store.Store, b pstream.Broker, name string, workers, resultDepth int, opts ...StreamServerOption) (*StreamServer, error) {
	cfg := streamServerConfig{maxInFlight: defaultStreamInFlight}
	for _, o := range opts {
		o(&cfg)
	}
	if workers < 1 {
		workers = 4
	}
	if resultDepth < 1 {
		resultDepth = 4096
	}
	// The instance ID keeps same-named server processes apart everywhere
	// identity matters: result routing (each instance keeps only results
	// tagged with its ID), the result-topic consumer name, and worker
	// member names (a stale ack from one process must not settle a
	// same-named peer's live claim).
	instance := connector.NewID()
	ctx, cancel := context.WithCancel(context.Background())
	reply := resultTopic(name)
	cons, err := pstream.NewConsumer[streamResult](ctx, b, reply, instance,
		pstream.WithEndCount(0))
	if err != nil {
		cancel()
		return nil, err
	}
	s := &StreamServer{
		registry: newRegistry(),
		st:       st,
		b:        b,
		name:     name,
		instance: instance,
		reply:    reply,
		results:  make(chan Result, resultDepth),
		// One logical consumer — the worker group — reads each task, so
		// claim settlement reclaims the task payload from the store.
		prod:           pstream.NewProducer[streamTask](st, b, taskTopic(name), pstream.WithEvictOnAck(1)),
		sem:            make(chan struct{}, cfg.maxInFlight),
		stop:           make(chan struct{}),
		pending:        make(map[string]pendingTask),
		resolveStrikes: pstream.NewStrikes(),
		cancel:         cancel,
	}
	if kb, ok := pstream.AsKV(b); ok {
		s.kb = kb
		if kb.Heartbeats() {
			s.mem = kb.Membership(reply, thinkerGroup)
			hb, err := s.mem.Join(ctx, instance)
			if err != nil {
				cancel()
				cons.Close()
				return nil, err
			}
			s.hb = hb
			s.wg.Add(1)
			go s.janitor(ctx)
		}
	}
	s.wg.Add(1)
	go s.resultLoop(ctx, cons)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker(ctx, fmt.Sprintf("%s-%s-w%d", name, instance[:8], i))
	}
	return s, nil
}

// janitor periodically sweeps the shared result topic for results whose
// submitting instance's heartbeat expired before it consumed them.
func (s *StreamServer) janitor(ctx context.Context) {
	defer s.wg.Done()
	tick := time.NewTicker(s.kb.HeartbeatTTL())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			_, _ = s.SweepResults(ctx)
		}
	}
}

// SweepResults runs one orphan sweep over the server's shared result
// topic: dead instances are reaped from the membership group, fully
// consumed result slots are truncated, and results addressed to a dead
// instance have their payloads — including any embedded ProxyResults
// proxy target — evicted from the store. Returns the number of log slots
// reclaimed. No-op on brokers without heartbeats.
func (s *StreamServer) SweepResults(ctx context.Context) (int, error) {
	if s.kb == nil || s.mem == nil {
		return 0, nil
	}
	return s.kb.SweepTopic(ctx, s.reply, s.mem, func(ev pstream.Event, live map[string]bool) bool {
		if live[ev.Attr(attrStreamReply)] {
			return false // addressee is alive; it evicts its own payloads
		}
		pxy := new(proxy.Proxy[streamResult])
		if err := pxy.UnmarshalBinary(ev.ProxyData); err != nil {
			return false
		}
		// Resolve before evicting: a ProxyResults result embeds a second
		// proxy whose policy-store payload would otherwise be orphaned
		// with no remaining pointer to it.
		if r, err := pxy.Value(ctx); err == nil {
			if v, err := decodeAny(r.Value); err == nil {
				if p, isProxy := v.(*proxy.Proxy[[]byte]); isProxy {
					evictProxyTarget(ctx, p)
				}
			}
		}
		st, key, ok, err := store.KeyOf(pxy)
		if err != nil || !ok {
			return false
		}
		return st.Evict(context.WithoutCancel(ctx), key) == nil
	})
}

// Results is the stream of completed tasks.
func (s *StreamServer) Results() <-chan Result { return s.results }

// Submit publishes the task to the server's task topic. Large []byte
// inputs are proxied into the method's registered policy store first, so
// they land in the store the user chose for that task type; either way
// the broker carries only the task event. Submit blocks while the
// in-flight window (WithStreamMaxInFlight) is full — backpressure instead
// of an unbounded broker backlog — and errors if the server closes while
// it waits.
func (s *StreamServer) Submit(ctx context.Context, method string, input any, tag any) error {
	_, policy, hasPolicy, ok := s.lookup(method)
	if !ok {
		return fmt.Errorf("colmena: method %q not registered", method)
	}
	select {
	case s.sem <- struct{}{}:
	case <-s.stop:
		return fmt.Errorf("colmena: stream server closed")
	case <-ctx.Done():
		return ctx.Err()
	}
	release := func() { <-s.sem }
	submitted := time.Now()

	arg := input
	var proxied *proxy.Proxy[[]byte]
	if hasPolicy && policy.Store != nil {
		if data, isBytes := input.([]byte); isBytes && len(data) >= policy.Threshold {
			p, err := store.NewProxy(ctx, policy.Store, data)
			if err != nil {
				return fmt.Errorf("colmena: proxying input: %w", err)
			}
			arg, proxied = p, p
		}
	}
	// unproxy reclaims the policy-store payload when the task never makes
	// it onto the topic — no worker could ever learn the key, so leaving
	// it would leak on persistent stores.
	unproxy := func() { evictProxyTarget(ctx, proxied) }
	inputGob, err := encodeAny(arg)
	if err != nil {
		release()
		unproxy()
		return err
	}

	id := connector.NewID()
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		release()
		unproxy()
		return fmt.Errorf("colmena: stream server closed")
	}
	s.pending[id] = pendingTask{method: method, tag: tag, submitted: submitted}
	s.pmu.Unlock()

	tk := streamTask{ID: id, Method: method, Input: inputGob, ResultTopic: s.reply, Instance: s.instance}
	attrs := map[string]string{attrStreamID: id, attrStreamReply: s.reply, attrStreamInstance: s.instance}
	if err := s.prod.Send(ctx, tk, attrs); err != nil {
		s.removePending(id)
		unproxy()
		return err
	}
	return nil
}

// removePending drops id's pending entry and frees its in-flight slot,
// exactly once per submission (the entry is in the map exactly once).
func (s *StreamServer) removePending(id string) bool {
	s.pmu.Lock()
	_, ok := s.pending[id]
	delete(s.pending, id)
	s.pmu.Unlock()
	if ok {
		<-s.sem
	}
	return ok
}

// worker claims tasks from the task topic, executes methods, and publishes
// results. The claim is settled only after the result publish succeeds, so
// a crashed worker's tasks are re-executed by survivors on lease expiry.
func (s *StreamServer) worker(ctx context.Context, member string) {
	defer s.wg.Done()
	pstream.ConsumeLoop(ctx, 0, func() (*pstream.Consumer[streamTask], error) {
		return pstream.NewConsumer[streamTask](ctx, s.b, taskTopic(s.name), member,
			pstream.WithGroup(streamGroup), pstream.WithEndCount(0), pstream.WithWindow(1))
	}, s.execute)
}

// replyProducer builds the producer for the shared result topic. Per-task
// construction (producers are tiny stateless handles). No evict-on-ack:
// every instance on the shared topic acks every result (including its
// peers'), so an ack-count policy would let one instance's ack evict
// another's unread payload — instead the addressee evicts its own
// payloads as its result loop consumes them, and the orphan sweep
// reclaims those whose addressee died.
func (s *StreamServer) replyProducer(topic string) *pstream.Producer[streamResult] {
	return pstream.NewProducer[streamResult](s.st, s.b, topic)
}

// failResolve handles a payload-resolution failure inside a claimed task
// via the shared poison-task policy (pstream.SettleAfterStrikes): leases
// retry transient failures, strikes bound the poison case. reply is the
// task's result topic and instance the addressee tag — both from the
// event attrs, which exist precisely so a worker can report when the
// payload itself is what failed to resolve.
func (s *StreamServer) failResolve(ctx context.Context, it *pstream.Item[streamTask], reply, instance, id string, cause error) {
	if reply == "" {
		return
	}
	pstream.SettleAfterStrikes(ctx, s.resolveStrikes, it, pstream.DefaultSettleStrikes, func() error {
		res := streamResult{ID: id, Err: fmt.Sprintf("resolving task payload: %v", cause)}
		return s.replyProducer(reply).Send(ctx, res, map[string]string{attrStreamID: id, attrStreamReply: instance})
	})
}

func (s *StreamServer) execute(ctx context.Context, it *pstream.Item[streamTask]) {
	tk, err := it.Value(ctx)
	if err != nil {
		s.failResolve(ctx, it, it.Event.Attr(attrStreamReply), it.Event.Attr(attrStreamInstance), it.Event.Attr(attrStreamID), err)
		return
	}
	res := streamResult{ID: tk.ID}
	var resultProxy *proxy.Proxy[[]byte] // minted under ProxyResults; ours until the result ships
	m, policy, hasPolicy, ok := s.lookup(tk.Method)
	if !ok {
		res.Err = fmt.Sprintf("method %q not registered", tk.Method)
	} else if in, err := decodeAny(tk.Input); err != nil {
		res.Err = err.Error()
	} else {
		// Transparent resolution on the worker: a proxied input resolves
		// to its target before the method runs, exactly as on Server.
		if p, isProxy := in.(*proxy.Proxy[[]byte]); isProxy {
			data, err := p.Value(ctx)
			if err != nil {
				s.failResolve(ctx, it, tk.ResultTopic, tk.Instance, tk.ID, err)
				return
			}
			in = data
		}
		out, err := m(ctx, in)
		if err != nil {
			res.Err = err.Error()
		} else {
			if hasPolicy && policy.ProxyResults && policy.Store != nil {
				if data, isBytes := out.([]byte); isBytes && len(data) >= policy.Threshold {
					p, err := store.NewProxy(ctx, policy.Store, data)
					if err != nil {
						res.Err = fmt.Sprintf("proxying result: %v", err)
						out = nil
					} else {
						out = p
						resultProxy = p
					}
				}
			}
			if res.Err == "" {
				if res.Value, err = encodeAny(out); err != nil {
					res.Err = err.Error()
					res.Value = nil
				}
			}
		}
	}
	if res.Err != "" {
		// Any failure after the result proxy was minted (encode error)
		// orphans it — the error result ships without it.
		evictProxyTarget(ctx, resultProxy)
		resultProxy = nil
	}
	if err := s.replyProducer(tk.ResultTopic).Send(ctx, res, map[string]string{attrStreamID: res.ID, attrStreamReply: tk.Instance}); err != nil {
		// The result never shipped: the lease will re-run the task, which
		// mints a fresh proxy — reclaim this one or it leaks.
		evictProxyTarget(ctx, resultProxy)
		return
	}
	s.resolveStrikes.Clear(it.Event.Offset)
	_ = it.Ack(ctx)
}

// resultLoop feeds the Results channel from the result topic.
func (s *StreamServer) resultLoop(ctx context.Context, cons *pstream.Consumer[streamResult]) {
	defer s.wg.Done()
	pstream.ConsumeLoop(ctx, 0,
		func() (*pstream.Consumer[streamResult], error) { return cons, nil },
		s.handleResult)
}

// handleResult correlates one result item with its pending submission by
// task ID and emits it on Results. Events addressed to other instances
// of the server name (the shared topic carries everyone's results) are
// acked and skipped without touching their payloads. Duplicate results
// (a worker died between publish and claim settlement, and the task
// re-ran) are acked and dropped.
func (s *StreamServer) handleResult(ctx context.Context, it *pstream.Item[streamResult]) {
	if it.Event.Attr(attrStreamReply) != s.instance {
		// A peer's result: ack so this consumer's offset advances (and
		// truncation can compact the log), nothing else — evicting the
		// payload here would race the addressee's own resolve.
		_ = it.Ack(ctx)
		return
	}
	id := it.Event.Attr(attrStreamID)
	r, resolveErr := it.Value(ctx)
	if resolveErr == nil {
		id = r.ID
	}
	v, decErr := decodeAny(r.Value)
	_ = it.Ack(ctx)
	// This instance is the addressee and has extracted what it needs (or
	// failed terminally): reclaim the result payload. The shared topic
	// carries no evict-on-ack, so the addressee evicts explicitly.
	if st, key, ok, err := store.KeyOf(it.Proxy); err == nil && ok {
		_ = st.Evict(context.WithoutCancel(ctx), key)
	}
	s.pmu.Lock()
	p, ok := s.pending[id]
	delete(s.pending, id)
	s.pmu.Unlock()
	if ok {
		<-s.sem // free the submission's in-flight slot
	}
	if !ok {
		// A duplicate (the task re-ran after a worker died post-publish)
		// or a stray: the Thinker never sees it, so an embedded
		// ProxyResults proxy must be reclaimed here — each execution
		// minted its own copy in the policy store.
		if p, isProxy := v.(*proxy.Proxy[[]byte]); isProxy {
			evictProxyTarget(ctx, p)
		}
		return
	}
	result := Result{
		Method:      p.method,
		Value:       v,
		SubmittedAt: p.submitted,
		CompletedAt: time.Now(),
		Tag:         p.tag,
	}
	switch {
	case resolveErr != nil:
		result.Value = nil
		result.Err = fmt.Errorf("colmena: resolving result: %w", resolveErr)
	case r.Err != "":
		result.Err = fmt.Errorf("colmena: %s", r.Err)
	case decErr != nil:
		result.Err = decErr
	}
	select {
	case s.results <- result:
	case <-ctx.Done():
	}
}

// Close stops the workers and the results loop. Tasks already claimed but
// unsettled expire with their leases; submissions still pending never
// complete (their producers should drain Results before Close). On a
// KVBroker with heartbeats, Close also leaves the result topic's
// membership group and forgets the instance's committed offset, so a
// clean instance churn leaves no per-instance keys on the server.
func (s *StreamServer) Close() error {
	s.pmu.Lock()
	already := s.closed
	s.closed = true
	s.pmu.Unlock()
	if !already {
		close(s.stop)
	}
	s.cancel()
	s.wg.Wait()
	ctx := context.Background()
	var err error
	if s.hb != nil {
		err = s.hb.Leave(ctx)
	}
	if s.kb != nil {
		if ferr := s.kb.ForgetConsumer(ctx, s.reply, s.instance); err == nil {
			err = ferr
		}
	}
	return err
}

// Kill simulates the instance's process dying: workers, result loop, and
// heartbeat stop immediately with none of Close's cleanup — the committed
// offset, membership entries, and unconsumed results stay on the server
// until heartbeat expiry and a surviving instance's orphan sweep reclaim
// them. Test and bench hook for churn scenarios.
func (s *StreamServer) Kill() {
	s.pmu.Lock()
	already := s.closed
	s.closed = true
	s.pmu.Unlock()
	if !already {
		close(s.stop)
	}
	if s.hb != nil {
		s.hb.Kill()
	}
	s.cancel()
	s.wg.Wait()
}
