package colmena

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/proxy"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
)

// newStreamServer wires a StreamServer over the given broker with a fresh
// local store.
func newStreamServer(t *testing.T, b pstream.Broker, workers int) *StreamServer {
	t.Helper()
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("colmena-stream-"+id, local.New("colmena-stream-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-stream-" + id) })
	s, err := NewStreamServer(st, b, "srv-"+id, workers, 64)
	if err != nil {
		t.Fatalf("NewStreamServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// awaitResult reads one Result with a timeout so a broken stream fails
// fast instead of hanging the suite.
func awaitResult(t *testing.T, s *StreamServer) Result {
	t.Helper()
	select {
	case res := <-s.Results():
		return res
	case <-time.After(60 * time.Second):
		t.Fatal("no result within 60s")
		return Result{}
	}
}

func TestStreamSubmitAndReceiveResult(t *testing.T) {
	s := newStreamServer(t, pstream.NewMem(), 2)
	s.RegisterMethod("noop", func(_ context.Context, in any) (any, error) {
		return in, nil
	})
	ctx := context.Background()
	if err := s.Submit(ctx, "noop", []byte("task input"), "tag-1"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := awaitResult(t, s)
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	if res.Tag != "tag-1" || res.Method != "noop" {
		t.Fatalf("result = %+v", res)
	}
	if !bytes.Equal(res.Value.([]byte), []byte("task input")) {
		t.Fatalf("Value = %v", res.Value)
	}
	if res.RTT() <= 0 {
		t.Fatal("RTT not positive")
	}
}

func TestStreamUnknownMethod(t *testing.T) {
	s := newStreamServer(t, pstream.NewMem(), 1)
	if err := s.Submit(context.Background(), "ghost", nil, nil); err == nil {
		t.Fatal("Submit accepted unknown method")
	}
}

func TestStreamMethodErrorPropagates(t *testing.T) {
	s := newStreamServer(t, pstream.NewMem(), 1)
	s.RegisterMethod("boom", func(context.Context, any) (any, error) {
		return nil, fmt.Errorf("simulation diverged")
	})
	if err := s.Submit(context.Background(), "boom", nil, "tag"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := awaitResult(t, s)
	if res.Err == nil {
		t.Fatal("method error did not propagate")
	}
	if res.Tag != "tag" {
		t.Fatalf("Tag = %v", res.Tag)
	}
}

func TestStreamInputProxiedAboveThreshold(t *testing.T) {
	s := newStreamServer(t, pstream.NewMem(), 1)
	st, err := store.New("colmena-sin", local.New("colmena-sin-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-sin") })

	sawBytes := make(chan bool, 1)
	s.RegisterMethod("check", func(_ context.Context, in any) (any, error) {
		_, isBytes := in.([]byte)
		sawBytes <- isBytes
		return nil, nil
	})
	s.RegisterStore("check", StorePolicy{Store: st, Threshold: 1024})

	ctx := context.Background()
	if err := s.Submit(ctx, "check", make([]byte, 10_000), nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := awaitResult(t, s)
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	if !<-sawBytes {
		t.Fatal("method did not receive resolved bytes")
	}
	// The input landed in the method's registered policy store, not just
	// the server's stream store.
	if st.Metrics().Proxies != 1 {
		t.Fatalf("policy store minted %d proxies, want 1", st.Metrics().Proxies)
	}
}

func TestStreamResultProxying(t *testing.T) {
	s := newStreamServer(t, pstream.NewMem(), 1)
	st, err := store.New("colmena-sout", local.New("colmena-sout-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-sout") })
	s.RegisterMethod("produce", func(context.Context, any) (any, error) {
		return make([]byte, 50_000), nil
	})
	s.RegisterStore("produce", StorePolicy{Store: st, Threshold: 1024, ProxyResults: true})

	ctx := context.Background()
	if err := s.Submit(ctx, "produce", nil, nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := awaitResult(t, s)
	if res.Err != nil {
		t.Fatalf("result error: %v", res.Err)
	}
	p, isProxy := res.Value.(*proxy.Proxy[[]byte])
	if !isProxy {
		t.Fatalf("result value is %T, want a proxy", res.Value)
	}
	data, err := ResolveResult(ctx, p)
	if err != nil {
		t.Fatalf("ResolveResult: %v", err)
	}
	if len(data.([]byte)) != 50_000 {
		t.Fatalf("resolved %d bytes", len(data.([]byte)))
	}
}

func TestStreamTwoInstancesSameNameRouteResultsHome(t *testing.T) {
	// Two processes (here: two StreamServers) hosting the same server
	// name share one task topic — their worker pools form one group — but
	// each instance's results must flow back to the instance that holds
	// the submission, whichever instance's worker executed it.
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	mk := func(tag string) *StreamServer {
		b := pstream.NewKV(srv.Addr())
		t.Cleanup(func() { b.Close() })
		st, err := store.New("colmena-twin-"+tag, redisc.New(srv.Addr()))
		if err != nil {
			t.Fatalf("store.New: %v", err)
		}
		t.Cleanup(func() { store.Unregister("colmena-twin-" + tag) })
		s, err := NewStreamServer(st, b, "twin", 2, 64)
		if err != nil {
			t.Fatalf("NewStreamServer: %v", err)
		}
		t.Cleanup(func() { s.Close() })
		s.RegisterMethod("echo", func(_ context.Context, in any) (any, error) { return in, nil })
		return s
	}
	id := connector.NewID()[:8]
	s1, s2 := mk(id+"-1"), mk(id+"-2")

	ctx := context.Background()
	const per = 4
	for i := 0; i < per; i++ {
		if err := s1.Submit(ctx, "echo", []byte("one"), fmt.Sprintf("a%d", i)); err != nil {
			t.Fatalf("s1 Submit: %v", err)
		}
		if err := s2.Submit(ctx, "echo", []byte("two"), fmt.Sprintf("b%d", i)); err != nil {
			t.Fatalf("s2 Submit: %v", err)
		}
	}
	for name, s := range map[string]*StreamServer{"a": s1, "b": s2} {
		seen := make(map[any]bool)
		for i := 0; i < per; i++ {
			res := awaitResult(t, s)
			if res.Err != nil {
				t.Fatalf("instance %s result error: %v", name, res.Err)
			}
			tag := res.Tag.(string)
			if tag[:1] != name {
				t.Fatalf("instance %s received tag %q — another instance's result", name, tag)
			}
			if seen[tag] {
				t.Fatalf("instance %s saw tag %q twice", name, tag)
			}
			seen[tag] = true
		}
	}
}

func TestStreamOverKVBrokerPushDelivery(t *testing.T) {
	// The steering loop over the kvstore metadata plane: several rounds of
	// submissions flow submit→claim→execute→result with the broker moving
	// only event records (workers park in server-side blocking waits
	// between tasks).
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	cb := pstream.NewCounting(pstream.NewKV(srv.Addr()))
	t.Cleanup(func() { cb.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("colmena-kv-"+id, redisc.New(srv.Addr()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("colmena-kv-" + id) })
	s, err := NewStreamServer(st, cb, "kvsrv-"+id, 2, 64)
	if err != nil {
		t.Fatalf("NewStreamServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })

	payload := make([]byte, 128<<10)
	s.RegisterMethod("size", func(_ context.Context, in any) (any, error) {
		return len(in.([]byte)), nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const tasks = 6
	for i := 0; i < tasks; i++ {
		if err := s.Submit(ctx, "size", payload, i); err != nil {
			t.Fatalf("Submit #%d: %v", i, err)
		}
	}
	seen := make(map[int]bool)
	for i := 0; i < tasks; i++ {
		res := awaitResult(t, s)
		if res.Err != nil {
			t.Fatalf("result error: %v", res.Err)
		}
		if res.Value.(int) != len(payload) {
			t.Fatalf("Value = %v", res.Value)
		}
		tag := res.Tag.(int)
		if seen[tag] {
			t.Fatalf("tag %d delivered twice", tag)
		}
		seen[tag] = true
	}
	brokerBytes := cb.BytesPublished() + cb.BytesDelivered()
	if brokerBytes > 128<<10 {
		t.Fatalf("broker moved %d bytes for %d tasks of %d-byte inputs", brokerBytes, tasks, len(payload))
	}
}
