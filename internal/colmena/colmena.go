// Package colmena implements a Colmena-like steering framework for
// ensembles of simulations (paper §5.2): a Thinker submits tasks to a Task
// Server, which dispatches them to a workflow engine's workers and streams
// results back on a queue.
//
// ProxyStore integrates at the library level exactly as in the paper: a
// Store and size threshold can be registered per task method; task inputs
// and results larger than the threshold are replaced by proxies before they
// enter the task server's data path, relieving the workflow system of the
// heavy bytes.
//
// Two task servers share the Submit/Results API. Server dispatches to an
// in-process workflow.Engine over its modeled hub-spoke channel.
// StreamServer rebuilds the same loop on pstream: Submit publishes a task
// event on the server's task topic, a pool of workers claims events as a
// consumer group (leases reclaim a crashed worker's tasks), and completed
// results flow back on a result topic feeding the Results channel — so
// bulk inputs/outputs ride the store data plane while the broker moves
// only O(100 B) per task, and the steering loop runs unchanged across
// processes or sites wherever a Broker reaches.
package colmena

import (
	"context"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/proxy"
	"proxystore/internal/store"
	"proxystore/internal/workflow"
)

// Method is a task implementation registered with the server.
type Method func(ctx context.Context, input any) (any, error)

// Result is a completed task delivered to the Thinker.
type Result struct {
	// Method is the task type.
	Method string
	// Value is the task output (possibly a proxy when result proxying is
	// enabled and the output was large).
	Value any
	// Err is the task error, if any.
	Err error
	// SubmittedAt and CompletedAt bracket the round trip.
	SubmittedAt time.Time
	CompletedAt time.Time
	// Tag is the caller's correlation value.
	Tag any
}

// RTT returns the task round-trip time as observed by the Thinker.
func (r Result) RTT() time.Duration { return r.CompletedAt.Sub(r.SubmittedAt) }

// StorePolicy attaches a ProxyStore store to a method.
type StorePolicy struct {
	// Store proxies inputs/results through this store.
	Store *store.Store
	// Threshold is the minimum serialized size (bytes) for proxying; the
	// paper registers a threshold per task type.
	Threshold int
	// ProxyResults also proxies task outputs (the paper's "two additional
	// lines of task code").
	ProxyResults bool
}

// registry is the method/policy table shared by Server and StreamServer.
type registry struct {
	mu       sync.RWMutex
	methods  map[string]Method
	policies map[string]StorePolicy
}

func newRegistry() registry {
	return registry{
		methods:  make(map[string]Method),
		policies: make(map[string]StorePolicy),
	}
}

// RegisterMethod installs a task implementation.
func (r *registry) RegisterMethod(name string, m Method) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.methods[name] = m
}

// RegisterStore attaches a proxying policy to a method (paper: "users can
// register a Store and associated threshold for each task type").
func (r *registry) RegisterStore(method string, p StorePolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policies[method] = p
}

// lookup returns a method and its policy; ok is false when unregistered.
func (r *registry) lookup(method string) (m Method, policy StorePolicy, hasPolicy, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok = r.methods[method]
	policy, hasPolicy = r.policies[method]
	return m, policy, hasPolicy, ok
}

// Server is the Colmena Task Server.
//
// A Server is safe for concurrent use.
type Server struct {
	registry
	engine  *workflow.Engine
	results chan Result
}

// NewServer wraps a workflow engine.
func NewServer(engine *workflow.Engine, resultDepth int) *Server {
	if resultDepth < 1 {
		resultDepth = 4096
	}
	return &Server{
		registry: newRegistry(),
		engine:   engine,
		results:  make(chan Result, resultDepth),
	}
}

// Results is the stream of completed tasks.
func (s *Server) Results() <-chan Result { return s.results }

// Submit schedules a task. Large inputs are proxied per the method's store
// policy before entering the engine's data path. tag is returned with the
// result for correlation.
func (s *Server) Submit(ctx context.Context, method string, input any, tag any) error {
	m, policy, hasPolicy, ok := s.lookup(method)
	if !ok {
		return fmt.Errorf("colmena: method %q not registered", method)
	}
	submitted := time.Now()

	arg := input
	if hasPolicy && policy.Store != nil {
		if data, isBytes := input.([]byte); isBytes && len(data) >= policy.Threshold {
			p, err := store.NewProxy(ctx, policy.Store, data)
			if err != nil {
				return fmt.Errorf("colmena: proxying input: %w", err)
			}
			arg = p
		}
	}

	fut := s.engine.Submit(func(ctx context.Context, args []any) (any, error) {
		in := args[0]
		// Transparent resolution on the worker: a proxy argument resolves
		// to its target before the method runs.
		if p, isProxy := in.(*proxy.Proxy[[]byte]); isProxy {
			data, err := p.Value(ctx)
			if err != nil {
				return nil, err
			}
			in = data
		}
		out, err := m(ctx, in)
		if err != nil {
			return nil, err
		}
		if hasPolicy && policy.ProxyResults && policy.Store != nil {
			if data, isBytes := out.([]byte); isBytes && len(data) >= policy.Threshold {
				p, err := store.NewProxy(ctx, policy.Store, data)
				if err != nil {
					return nil, fmt.Errorf("colmena: proxying result: %w", err)
				}
				return p, nil
			}
		}
		return out, nil
	}, arg)

	go func() {
		v, err := fut.Result(context.Background())
		s.results <- Result{
			Method:      method,
			Value:       v,
			Err:         err,
			SubmittedAt: submitted,
			CompletedAt: time.Now(),
			Tag:         tag,
		}
	}()
	return nil
}

// ResolveResult materializes a result value that may be a proxy.
func ResolveResult(ctx context.Context, v any) (any, error) {
	if p, ok := v.(*proxy.Proxy[[]byte]); ok {
		return p.Value(ctx)
	}
	return v, nil
}

func init() {
	// Byte-payload proxies travel through engine channels inside []any.
	proxy.RegisterGob[[]byte]()
}
