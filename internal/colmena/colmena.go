// Package colmena implements a Colmena-like steering framework for
// ensembles of simulations (paper §5.2): a Thinker submits tasks to a Task
// Server, which dispatches them to a workflow engine's workers and streams
// results back on a queue.
//
// ProxyStore integrates at the library level exactly as in the paper: a
// Store and size threshold can be registered per task method; task inputs
// and results larger than the threshold are replaced by proxies before they
// enter the task server's data path, relieving the workflow system of the
// heavy bytes.
package colmena

import (
	"context"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/proxy"
	"proxystore/internal/store"
	"proxystore/internal/workflow"
)

// Method is a task implementation registered with the server.
type Method func(ctx context.Context, input any) (any, error)

// Result is a completed task delivered to the Thinker.
type Result struct {
	// Method is the task type.
	Method string
	// Value is the task output (possibly a proxy when result proxying is
	// enabled and the output was large).
	Value any
	// Err is the task error, if any.
	Err error
	// SubmittedAt and CompletedAt bracket the round trip.
	SubmittedAt time.Time
	CompletedAt time.Time
	// Tag is the caller's correlation value.
	Tag any
}

// RTT returns the task round-trip time as observed by the Thinker.
func (r Result) RTT() time.Duration { return r.CompletedAt.Sub(r.SubmittedAt) }

// StorePolicy attaches a ProxyStore store to a method.
type StorePolicy struct {
	// Store proxies inputs/results through this store.
	Store *store.Store
	// Threshold is the minimum serialized size (bytes) for proxying; the
	// paper registers a threshold per task type.
	Threshold int
	// ProxyResults also proxies task outputs (the paper's "two additional
	// lines of task code").
	ProxyResults bool
}

// Server is the Colmena Task Server.
//
// A Server is safe for concurrent use.
type Server struct {
	engine  *workflow.Engine
	results chan Result

	mu       sync.RWMutex
	methods  map[string]Method
	policies map[string]StorePolicy
}

// NewServer wraps a workflow engine.
func NewServer(engine *workflow.Engine, resultDepth int) *Server {
	if resultDepth < 1 {
		resultDepth = 4096
	}
	return &Server{
		engine:   engine,
		results:  make(chan Result, resultDepth),
		methods:  make(map[string]Method),
		policies: make(map[string]StorePolicy),
	}
}

// RegisterMethod installs a task implementation.
func (s *Server) RegisterMethod(name string, m Method) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[name] = m
}

// RegisterStore attaches a proxying policy to a method (paper: "users can
// register a Store and associated threshold for each task type").
func (s *Server) RegisterStore(method string, p StorePolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies[method] = p
}

// Results is the stream of completed tasks.
func (s *Server) Results() <-chan Result { return s.results }

// Submit schedules a task. Large inputs are proxied per the method's store
// policy before entering the engine's data path. tag is returned with the
// result for correlation.
func (s *Server) Submit(ctx context.Context, method string, input any, tag any) error {
	s.mu.RLock()
	m, ok := s.methods[method]
	policy, hasPolicy := s.policies[method]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("colmena: method %q not registered", method)
	}
	submitted := time.Now()

	arg := input
	if hasPolicy && policy.Store != nil {
		if data, isBytes := input.([]byte); isBytes && len(data) >= policy.Threshold {
			p, err := store.NewProxy(ctx, policy.Store, data)
			if err != nil {
				return fmt.Errorf("colmena: proxying input: %w", err)
			}
			arg = p
		}
	}

	fut := s.engine.Submit(func(ctx context.Context, args []any) (any, error) {
		in := args[0]
		// Transparent resolution on the worker: a proxy argument resolves
		// to its target before the method runs.
		if p, isProxy := in.(*proxy.Proxy[[]byte]); isProxy {
			data, err := p.Value(ctx)
			if err != nil {
				return nil, err
			}
			in = data
		}
		out, err := m(ctx, in)
		if err != nil {
			return nil, err
		}
		if hasPolicy && policy.ProxyResults && policy.Store != nil {
			if data, isBytes := out.([]byte); isBytes && len(data) >= policy.Threshold {
				p, err := store.NewProxy(ctx, policy.Store, data)
				if err != nil {
					return nil, fmt.Errorf("colmena: proxying result: %w", err)
				}
				return p, nil
			}
		}
		return out, nil
	}, arg)

	go func() {
		v, err := fut.Result(context.Background())
		s.results <- Result{
			Method:      method,
			Value:       v,
			Err:         err,
			SubmittedAt: submitted,
			CompletedAt: time.Now(),
			Tag:         tag,
		}
	}()
	return nil
}

// ResolveResult materializes a result value that may be a proxy.
func ResolveResult(ctx context.Context, v any) (any, error) {
	if p, ok := v.(*proxy.Proxy[[]byte]); ok {
		return p.Value(ctx)
	}
	return v, nil
}

func init() {
	// Byte-payload proxies travel through engine channels inside []any.
	proxy.RegisterGob[[]byte]()
}
