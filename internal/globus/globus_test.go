package globus

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"proxystore/internal/netsim"
)

func newService(t *testing.T) (*Service, string, string) {
	t.Helper()
	n := netsim.Testbed(1000) // heavy compression: service latency 2ms
	svc := NewService(n)
	dirA := t.TempDir()
	dirB := t.TempDir()
	if err := svc.RegisterEndpoint("ep-a", netsim.SiteMidway2, dirA); err != nil {
		t.Fatalf("RegisterEndpoint: %v", err)
	}
	if err := svc.RegisterEndpoint("ep-b", netsim.SiteTheta, dirB); err != nil {
		t.Fatalf("RegisterEndpoint: %v", err)
	}
	return svc, dirA, dirB
}

func TestTransferMovesFile(t *testing.T) {
	svc, dirA, dirB := newService(t)
	if err := os.WriteFile(filepath.Join(dirA, "data.obj"), []byte("payload"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	taskID, err := svc.Submit("ep-a", "ep-b", []string{"data.obj"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Wait(ctx, taskID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dirB, "data.obj"))
	if err != nil {
		t.Fatalf("reading transferred file: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("transferred file = %q", got)
	}
	st, err := svc.Status(taskID)
	if err != nil || st != TaskSucceeded {
		t.Fatalf("Status = %v, %v", st, err)
	}
}

func TestBatchTransferSingleTask(t *testing.T) {
	svc, dirA, dirB := newService(t)
	files := []string{"a.obj", "b.obj", "c.obj"}
	for _, f := range files {
		os.WriteFile(filepath.Join(dirA, f), []byte(f), 0o644)
	}
	taskID, err := svc.Submit("ep-a", "ep-b", files)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Wait(ctx, taskID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for _, f := range files {
		if _, err := os.Stat(filepath.Join(dirB, f)); err != nil {
			t.Errorf("file %s not transferred: %v", f, err)
		}
	}
}

func TestMissingSourceFails(t *testing.T) {
	svc, _, _ := newService(t)
	taskID, err := svc.Submit("ep-a", "ep-b", []string{"never-written.obj"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Wait(ctx, taskID); err == nil {
		t.Fatal("Wait succeeded for a missing source file")
	}
	st, _ := svc.Status(taskID)
	if st != TaskFailed {
		t.Fatalf("Status = %v, want FAILED", st)
	}
}

func TestUnknownEndpointRejected(t *testing.T) {
	svc, _, _ := newService(t)
	if _, err := svc.Submit("nope", "ep-b", nil); err == nil {
		t.Fatal("Submit accepted unknown source")
	}
	if _, err := svc.Submit("ep-a", "nope", nil); err == nil {
		t.Fatal("Submit accepted unknown destination")
	}
}

func TestServiceLatencyDominatesSmallTransfers(t *testing.T) {
	n := netsim.Testbed(100) // 2s nominal latency -> 20ms
	svc := NewService(n)
	svc.RegisterEndpoint("sa", netsim.SiteMidway2, t.TempDir())
	dirA, _ := svc.EndpointDir("sa")
	svc.RegisterEndpoint("sb", netsim.SiteTheta, t.TempDir())
	os.WriteFile(filepath.Join(dirA, "tiny.obj"), []byte("x"), 0o644)

	start := time.Now()
	taskID, _ := svc.Submit("sa", "sb", []string{"tiny.obj"})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Wait(ctx, taskID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("tiny transfer took %v, want >= 20ms of service latency", elapsed)
	}
}

func TestServiceRegistry(t *testing.T) {
	t.Cleanup(ResetServices)
	svc := NewService(netsim.Testbed(1000))
	RegisterService("transfer-svc", svc)
	got, err := LookupService("transfer-svc")
	if err != nil || got != svc {
		t.Fatalf("LookupService = %v, %v", got, err)
	}
	if _, err := LookupService("ghost"); err == nil {
		t.Fatal("LookupService found unregistered service")
	}
}
