// Package globus simulates the Globus transfer service: a hosted
// software-as-a-service that moves files between registered endpoints with
// asynchronous, pollable transfer tasks (paper §4.2.1).
//
// The simulation reproduces the service's performance envelope rather than
// its implementation: every task pays a fixed service latency (job
// submission, endpoint polling, the SaaS control plane — seconds in
// practice, which is why GlobusStore loses to the baseline at small sizes
// in Figure 5) and then streams files at high bulk bandwidth (why it wins
// for very large transfers). Files are directories on the local disk, one
// per endpoint.
package globus

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/netsim"
)

// TaskStatus is a transfer task's lifecycle state.
type TaskStatus int

// Task states.
const (
	TaskActive TaskStatus = iota
	TaskSucceeded
	TaskFailed
)

func (s TaskStatus) String() string {
	switch s {
	case TaskActive:
		return "ACTIVE"
	case TaskSucceeded:
		return "SUCCEEDED"
	case TaskFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("TaskStatus(%d)", int(s))
	}
}

// Endpoint is a registered Globus endpoint: a directory at a site.
type Endpoint struct {
	// UUID identifies the endpoint.
	UUID string
	// Site is the endpoint's netsim site.
	Site string
	// Dir is the endpoint's root directory on the local file system.
	Dir string
}

// Task is an asynchronous transfer job.
type Task struct {
	ID     string
	Src    string // endpoint UUID
	Dst    string
	Files  []string
	Bytes  int64
	status TaskStatus
	err    error
	done   chan struct{}
}

// Service is a simulated Globus transfer service.
//
// A Service is safe for concurrent use.
type Service struct {
	net *netsim.Network
	// serviceLatency is the fixed control-plane overhead per task.
	serviceLatency time.Duration

	mu        sync.RWMutex
	endpoints map[string]Endpoint
	tasks     map[string]*Task
}

// Option configures a Service.
type Option func(*Service)

// WithServiceLatency overrides the per-task control-plane overhead
// (default 2s nominal, scaled by the network's time scale).
func WithServiceLatency(d time.Duration) Option {
	return func(s *Service) { s.serviceLatency = d }
}

// NewService creates a transfer service over the given network model.
func NewService(n *netsim.Network, opts ...Option) *Service {
	s := &Service{
		net:            n,
		serviceLatency: 2 * time.Second,
		endpoints:      make(map[string]Endpoint),
		tasks:          make(map[string]*Task),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// RegisterEndpoint adds an endpoint, creating its directory.
func (s *Service) RegisterEndpoint(uuid, site, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("globus: creating endpoint directory: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[uuid] = Endpoint{UUID: uuid, Site: site, Dir: dir}
	return nil
}

// EndpointDir returns the directory of a registered endpoint.
func (s *Service) EndpointDir(uuid string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ep, ok := s.endpoints[uuid]
	if !ok {
		return "", fmt.Errorf("globus: unknown endpoint %q", uuid)
	}
	return ep.Dir, nil
}

// Submit starts an asynchronous transfer of the named files (paths relative
// to the endpoint roots) from src to dst, returning the task ID.
func (s *Service) Submit(src, dst string, files []string) (string, error) {
	s.mu.RLock()
	se, okS := s.endpoints[src]
	de, okD := s.endpoints[dst]
	s.mu.RUnlock()
	if !okS {
		return "", fmt.Errorf("globus: unknown source endpoint %q", src)
	}
	if !okD {
		return "", fmt.Errorf("globus: unknown destination endpoint %q", dst)
	}

	task := &Task{
		ID:    connector.NewID(),
		Src:   src,
		Dst:   dst,
		Files: append([]string(nil), files...),
		done:  make(chan struct{}),
	}
	s.mu.Lock()
	s.tasks[task.ID] = task
	s.mu.Unlock()

	go s.run(task, se, de)
	return task.ID, nil
}

func (s *Service) run(task *Task, src, dst Endpoint) {
	defer close(task.done)

	var total int64
	for _, f := range task.Files {
		if fi, err := os.Stat(filepath.Join(src.Dir, f)); err == nil {
			total += fi.Size()
		}
	}
	task.Bytes = total

	// Control-plane overhead, scaled like every other delay.
	scale := 1.0
	if s.net != nil {
		scale = s.net.Scale()
	}
	time.Sleep(time.Duration(float64(s.serviceLatency) / scale))

	// Bulk data movement at the link's full TCP bandwidth (GridFTP uses
	// parallel streams; model as the full link rate).
	if s.net != nil {
		if err := s.net.Delay(context.Background(), src.Site, dst.Site, int(total)); err != nil {
			s.finish(task, TaskFailed, err)
			return
		}
	}

	for _, f := range task.Files {
		if err := copyFile(filepath.Join(src.Dir, f), filepath.Join(dst.Dir, f)); err != nil {
			s.finish(task, TaskFailed, err)
			return
		}
	}
	s.finish(task, TaskSucceeded, nil)
}

func (s *Service) finish(task *Task, st TaskStatus, err error) {
	s.mu.Lock()
	task.status = st
	task.err = err
	s.mu.Unlock()
}

// Status returns a task's current state.
func (s *Service) Status(taskID string) (TaskStatus, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return TaskFailed, fmt.Errorf("globus: unknown task %q", taskID)
	}
	return t.status, nil
}

// Wait blocks until the task completes, returning the task's error if it
// failed — the behaviour proxies rely on ("a proxy will wait for the
// transfer task to succeed before resolving itself").
func (s *Service) Wait(ctx context.Context, taskID string) error {
	s.mu.RLock()
	t, ok := s.tasks[taskID]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("globus: unknown task %q", taskID)
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t.status == TaskFailed {
		return fmt.Errorf("globus: transfer task %s failed: %w", taskID, t.err)
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("globus: opening source file: %w", err)
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("globus: creating destination directory: %w", err)
	}
	out, err := os.CreateTemp(filepath.Dir(dst), ".globus-*")
	if err != nil {
		return fmt.Errorf("globus: creating destination file: %w", err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(out.Name())
		return fmt.Errorf("globus: copying file: %w", err)
	}
	if err := out.Close(); err != nil {
		os.Remove(out.Name())
		return err
	}
	return os.Rename(out.Name(), dst)
}

// --- process-global service registry ---------------------------------------

var (
	svcMu    sync.Mutex
	services = make(map[string]*Service)
)

// RegisterService installs a named service so connector configs can
// reference it across (simulated) processes.
func RegisterService(name string, s *Service) {
	svcMu.Lock()
	defer svcMu.Unlock()
	services[name] = s
}

// LookupService finds a registered service.
func LookupService(name string) (*Service, error) {
	svcMu.Lock()
	defer svcMu.Unlock()
	s, ok := services[name]
	if !ok {
		return nil, fmt.Errorf("globus: no service registered as %q", name)
	}
	return s, nil
}

// ResetServices forgets all registered services. For tests.
func ResetServices() {
	svcMu.Lock()
	defer svcMu.Unlock()
	services = make(map[string]*Service)
}
