package defect

import (
	"testing"
	"testing/quick"
)

func TestGenerateSize(t *testing.T) {
	im := Generate(256, 5, 1)
	if im.Size != 256 || len(im.Pixels) != 256*256 {
		t.Fatalf("image %dx%d with %d pixels", im.Size, im.Size, len(im.Pixels))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := Generate(128, 3, 2)
	blob := im.Encode()
	got, err := DecodeImage(blob)
	if err != nil {
		t.Fatalf("DecodeImage: %v", err)
	}
	if got.Size != im.Size {
		t.Fatalf("size = %d", got.Size)
	}
	for i := range im.Pixels {
		if got.Pixels[i] != im.Pixels[i] {
			t.Fatal("pixels corrupted in round trip")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeImage([]byte{1, 2}); err == nil {
		t.Fatal("DecodeImage accepted short payload")
	}
	if _, err := DecodeImage(make([]byte, 100)); err == nil {
		t.Fatal("DecodeImage accepted mismatched payload")
	}
}

func TestSegmentCountsDefects(t *testing.T) {
	// Defect blobs are bright and well separated with high probability;
	// the count should be close to what was injected.
	for _, want := range []int{0, 1, 5, 12} {
		im := Generate(512, want, int64(want)+10)
		res := Segment(im, false)
		if want == 0 && res.Defects != 0 {
			t.Fatalf("found %d defects in clean image", res.Defects)
		}
		if want > 0 && (res.Defects < want/2 || res.Defects > want*2) {
			t.Fatalf("injected %d defects, segmented %d", want, res.Defects)
		}
	}
}

func TestSegmentMask(t *testing.T) {
	im := Generate(128, 4, 3)
	withMask := Segment(im, true)
	if len(withMask.Mask) != len(im.Pixels) {
		t.Fatalf("mask has %d entries", len(withMask.Mask))
	}
	without := Segment(im, false)
	if without.Mask != nil {
		t.Fatal("mask returned when not requested")
	}
	if withMask.Defects != without.Defects {
		t.Fatal("defect count depends on mask flag")
	}
}

func TestDamagedFraction(t *testing.T) {
	clean := Generate(128, 0, 4)
	damaged := Generate(128, 20, 4)
	if Segment(damaged, false).DamagedFraction <= Segment(clean, false).DamagedFraction {
		t.Fatal("damaged image has no higher damaged fraction than clean image")
	}
}

func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	im := Generate(128, 6, 5)
	res := Segment(im, true)
	blob := EncodeResult(res)
	got, err := DecodeResult(blob)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if got.Defects != res.Defects {
		t.Fatalf("Defects = %d, want %d", got.Defects, res.Defects)
	}
	if len(got.Mask) != len(res.Mask) {
		t.Fatalf("mask length = %d, want %d", len(got.Mask), len(res.Mask))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(64, 3, 42)
	b := Generate(64, 3, 42)
	for i := range a.Pixels {
		if a.Pixels[i] != b.Pixels[i] {
			t.Fatal("same seed produced different images")
		}
	}
}

func TestOneMegabytePayload(t *testing.T) {
	// The paper's Table 2 uses ~1 MB images; 1024x1024 8-bit matches.
	im := Generate(1024, 10, 1)
	if n := len(im.Encode()); n < 1<<20 {
		t.Fatalf("encoded image is %d bytes, want >= 1 MiB", n)
	}
}

func TestPropertyEncodedImagesAlwaysDecode(t *testing.T) {
	f := func(seed int64, defects uint8) bool {
		im := Generate(64, int(defects%10), seed)
		got, err := DecodeImage(im.Encode())
		return err == nil && got.Size == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
