// Package defect implements the real-time defect analysis application of
// paper §5.4: transmission-electron-microscopy micrographs stream from an
// experimental facility to an HPC site where a segmentation model counts
// radiation-damage defects.
//
// The micrographs are synthetic (bright elliptical defect spots on noisy
// backgrounds) and the "model" is a classical threshold-and-flood-fill
// segmenter — Table 2 measures the data path, not model quality, and this
// pipeline produces ~1 MB images and deterministic defect counts.
package defect

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Image is a square 8-bit grayscale micrograph.
type Image struct {
	Size   int
	Pixels []byte
}

// Encode flattens the image to bytes (4-byte size header + pixels) — the
// payload shipped through Globus Compute or proxied in Table 2.
func (im Image) Encode() []byte {
	out := make([]byte, 4+len(im.Pixels))
	binary.BigEndian.PutUint32(out, uint32(im.Size))
	copy(out[4:], im.Pixels)
	return out
}

// DecodeImage parses an encoded image.
func DecodeImage(data []byte) (Image, error) {
	if len(data) < 4 {
		return Image{}, fmt.Errorf("defect: short image payload")
	}
	size := int(binary.BigEndian.Uint32(data))
	if size <= 0 || len(data) != 4+size*size {
		return Image{}, fmt.Errorf("defect: image payload of %d bytes does not match %dx%d", len(data), size, size)
	}
	return Image{Size: size, Pixels: data[4:]}, nil
}

// Generate synthesizes a micrograph with the given number of defects
// (bright elliptical blobs) over Gaussian background noise. A 1024x1024
// image is ~1 MB encoded, matching the paper's payloads.
func Generate(size, defects int, seed int64) Image {
	rng := rand.New(rand.NewSource(seed))
	px := make([]byte, size*size)
	for i := range px {
		v := 60 + rng.NormFloat64()*12
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		px[i] = byte(v)
	}
	for d := 0; d < defects; d++ {
		cx := 20 + rng.Intn(size-40)
		cy := 20 + rng.Intn(size-40)
		rx := 4 + rng.Intn(8)
		ry := 4 + rng.Intn(8)
		for y := cy - ry; y <= cy+ry; y++ {
			for x := cx - rx; x <= cx+rx; x++ {
				dx := float64(x-cx) / float64(rx)
				dy := float64(y-cy) / float64(ry)
				if dx*dx+dy*dy <= 1 {
					px[y*size+x] = 230
				}
			}
		}
	}
	return Image{Size: size, Pixels: px}
}

// Result is the segmentation output.
type Result struct {
	// Defects is the number of connected bright regions found.
	Defects int
	// DamagedFraction is the fraction of pixels above threshold.
	DamagedFraction float64
	// Mask is the binary segmentation (optional; nil when not requested).
	Mask []byte
}

// Threshold separates defect pixels from background.
const Threshold = 160

// Segment runs the "model": threshold the image and count connected
// components with an iterative flood fill. withMask controls whether the
// binary mask is returned (the inference output proxied in Table 2's
// "Inputs/Outputs" rows).
func Segment(im Image, withMask bool) Result {
	size := im.Size
	mask := make([]byte, len(im.Pixels))
	above := 0
	for i, p := range im.Pixels {
		if p >= Threshold {
			mask[i] = 1
			above++
		}
	}

	visited := make([]bool, len(mask))
	count := 0
	var stack []int
	for start := range mask {
		if mask[start] == 0 || visited[start] {
			continue
		}
		count++
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%size, i/size
			for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				nx, ny := nb[0], nb[1]
				if nx < 0 || ny < 0 || nx >= size || ny >= size {
					continue
				}
				j := ny*size + nx
				if mask[j] == 1 && !visited[j] {
					visited[j] = true
					stack = append(stack, j)
				}
			}
		}
	}

	res := Result{
		Defects:         count,
		DamagedFraction: float64(above) / float64(len(im.Pixels)),
	}
	if withMask {
		res.Mask = mask
	}
	return res
}

// EncodeResult serializes a result (count, fraction, optional mask).
func EncodeResult(r Result) []byte {
	out := make([]byte, 16, 16+len(r.Mask))
	binary.BigEndian.PutUint32(out, uint32(r.Defects))
	binary.BigEndian.PutUint64(out[4:], uint64(r.DamagedFraction*1e9))
	binary.BigEndian.PutUint32(out[12:], uint32(len(r.Mask)))
	return append(out, r.Mask...)
}

// DecodeResult parses an encoded result.
func DecodeResult(data []byte) (Result, error) {
	if len(data) < 16 {
		return Result{}, fmt.Errorf("defect: short result payload")
	}
	r := Result{
		Defects:         int(binary.BigEndian.Uint32(data)),
		DamagedFraction: float64(binary.BigEndian.Uint64(data[4:])) / 1e9,
	}
	n := int(binary.BigEndian.Uint32(data[12:]))
	if n > 0 {
		if len(data) != 16+n {
			return Result{}, fmt.Errorf("defect: result mask truncated")
		}
		r.Mask = data[16:]
	}
	return r, nil
}
