// Package flox implements a FLoX-like federated learning framework (paper
// §5.5): an aggregator initializes a global model and dispatches training
// rounds to edge devices through the FaaS fabric; edge devices train on
// local data and return their weights; the aggregator averages them.
//
// Model weights can travel by value through the cloud (bounded by the
// service's 5 MB payload limit — why the paper's baseline cannot train
// models beyond ~40 hidden blocks) or by proxy through any Store, which is
// the comparison Figure 10 draws.
package flox

import (
	"context"
	"encoding/gob"
	"fmt"

	"proxystore/internal/faas"
	"proxystore/internal/ml"
	"proxystore/internal/proxy"
	"proxystore/internal/store"
)

// Arch fixes the model architecture shared by aggregator and devices.
type Arch struct {
	InputDim  int
	HiddenDim int
	Blocks    int
	Classes   int
}

// NewModel instantiates the architecture.
func (a Arch) NewModel(seed int64) *ml.Model {
	return ml.NewMLP(a.InputDim, a.HiddenDim, a.Blocks, a.Classes, seed)
}

// TrainFunction is the FaaS function name for edge training rounds.
const TrainFunction = "flox.train"

// trainConfig travels to edge devices alongside the weights.
type trainConfig struct {
	Arch       Arch
	Epochs     int
	BatchSize  int
	LR         float32
	DataSeed   int64
	DataSize   int
	UseProxies bool
	StoreName  string
}

func init() {
	proxy.RegisterGob[[]byte]()
	gob.Register(trainConfig{})
	faas.RegisterFunction(TrainFunction, func(ctx context.Context, args []any) (any, error) {
		cfg, ok := args[0].(trainConfig)
		if !ok {
			return nil, fmt.Errorf("flox: bad config argument %T", args[0])
		}
		var weights []byte
		switch w := args[1].(type) {
		case []byte:
			weights = w
		case *proxy.Proxy[[]byte]:
			var err error
			weights, err = w.Value(ctx)
			if err != nil {
				return nil, fmt.Errorf("flox: resolving weight proxy: %w", err)
			}
		default:
			return nil, fmt.Errorf("flox: bad weights argument %T", args[1])
		}

		model := cfg.Arch.NewModel(1)
		if err := model.LoadWeights(weights); err != nil {
			return nil, err
		}
		data := ml.SyntheticFashion(cfg.DataSize, cfg.DataSeed)
		for e := 0; e < cfg.Epochs; e++ {
			for _, s := range data {
				model.TrainStep(s.X, s.Label, cfg.LR)
			}
		}
		out := model.SerializeWeights()

		if cfg.UseProxies {
			s, ok := store.Lookup(cfg.StoreName)
			if !ok {
				return nil, fmt.Errorf("flox: store %q not registered on device", cfg.StoreName)
			}
			p, err := store.NewProxy(ctx, s, out)
			if err != nil {
				return nil, err
			}
			return p, nil
		}
		return out, nil
	})
}

// Aggregator drives federated rounds.
type Aggregator struct {
	arch    Arch
	model   *ml.Model
	devices []*faas.Executor

	// Proxy configuration; nil store means weights travel by value.
	store *store.Store

	epochs   int
	dataSize int
	lr       float32
}

// Options configure an Aggregator.
type Options struct {
	// Arch is the shared model architecture.
	Arch Arch
	// Devices are executors, one per edge device endpoint.
	Devices []*faas.Executor
	// Store, when set, moves weights by proxy.
	Store *store.Store
	// LocalEpochs per round (default 1) and per-device dataset size
	// (default 32).
	LocalEpochs int
	DataSize    int
	// LR is the device learning rate (default 0.01).
	LR float32
}

// NewAggregator initializes the global model.
func NewAggregator(opts Options) *Aggregator {
	if opts.LocalEpochs < 1 {
		opts.LocalEpochs = 1
	}
	if opts.DataSize < 1 {
		opts.DataSize = 32
	}
	if opts.LR == 0 {
		opts.LR = 0.01
	}
	return &Aggregator{
		arch:     opts.Arch,
		model:    opts.Arch.NewModel(1),
		devices:  opts.Devices,
		store:    opts.Store,
		epochs:   opts.LocalEpochs,
		dataSize: opts.DataSize,
		lr:       opts.LR,
	}
}

// Model returns the current global model.
func (a *Aggregator) Model() *ml.Model { return a.model }

// Round runs one federated round: broadcast weights, train on every device,
// gather, average. It returns the serialized global weights after
// averaging.
func (a *Aggregator) Round(ctx context.Context) ([]byte, error) {
	weights := a.model.SerializeWeights()
	futures := make([]*faas.Future, len(a.devices))

	for i, dev := range a.devices {
		cfg := trainConfig{
			Arch:      a.arch,
			Epochs:    a.epochs,
			BatchSize: 16,
			LR:        a.lr,
			DataSeed:  int64(100 + i),
			DataSize:  a.dataSize,
		}
		var arg any = weights
		if a.store != nil {
			cfg.UseProxies = true
			cfg.StoreName = a.store.Name()
			p, err := store.NewProxy(ctx, a.store, weights)
			if err != nil {
				return nil, fmt.Errorf("flox: proxying global weights: %w", err)
			}
			arg = p
		}
		fut, err := dev.Submit(ctx, TrainFunction, cfg, arg)
		if err != nil {
			return nil, fmt.Errorf("flox: submitting round to device %d: %w", i, err)
		}
		futures[i] = fut
	}

	blobs := make([][]byte, len(futures))
	for i, fut := range futures {
		v, err := fut.Result(ctx)
		if err != nil {
			return nil, fmt.Errorf("flox: device %d round failed: %w", i, err)
		}
		switch w := v.(type) {
		case []byte:
			blobs[i] = w
		case *proxy.Proxy[[]byte]:
			data, err := w.Value(ctx)
			if err != nil {
				return nil, fmt.Errorf("flox: resolving device %d weights: %w", i, err)
			}
			blobs[i] = data
		default:
			return nil, fmt.Errorf("flox: device %d returned %T", i, v)
		}
	}

	avg, err := ml.AverageWeights(blobs)
	if err != nil {
		return nil, err
	}
	if err := a.model.LoadWeights(avg); err != nil {
		return nil, err
	}
	return avg, nil
}
