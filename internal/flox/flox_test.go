package flox

import (
	"context"
	"testing"

	"proxystore/internal/connectors/local"
	"proxystore/internal/faas"
	"proxystore/internal/ml"
	"proxystore/internal/netsim"
	"proxystore/internal/store"
)

func smallArch() Arch {
	return Arch{InputDim: 28 * 28, HiddenDim: 16, Blocks: 1, Classes: 10}
}

func newFL(t *testing.T, devices int, st *store.Store) *Aggregator {
	t.Helper()
	n := netsim.Testbed(1000)
	cloud := faas.NewCloud(n, netsim.SiteCloud)
	execs := make([]*faas.Executor, devices)
	for i := range execs {
		name := "edge-" + string(rune('a'+i))
		ep := faas.StartEndpoint(cloud, name, netsim.SiteEdge, 1)
		t.Cleanup(func() { ep.Close() })
		execs[i] = faas.NewExecutor(cloud, name, netsim.SiteCloud)
	}
	return NewAggregator(Options{
		Arch:        smallArch(),
		Devices:     execs,
		Store:       st,
		DataSize:    80,
		LocalEpochs: 2,
		LR:          0.02,
	})
}

func TestRoundByValue(t *testing.T) {
	agg := newFL(t, 2, nil)
	ctx := context.Background()
	before := agg.Model().SerializeWeights()
	after, err := agg.Round(ctx)
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("weight size changed: %d -> %d", len(before), len(after))
	}
	same := true
	for i := range after {
		if after[i] != before[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("round did not change the global model")
	}
}

func TestRoundByProxy(t *testing.T) {
	st, err := store.New("flox-round", local.New("flox-round-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("flox-round") })
	agg := newFL(t, 2, st)
	if _, err := agg.Round(context.Background()); err != nil {
		t.Fatalf("Round: %v", err)
	}
	m := st.Metrics()
	// Global weights proxied once per device + one result proxy per device.
	if m.Proxies < 3 {
		t.Fatalf("store minted %d proxies, want >= 3", m.Proxies)
	}
}

func TestLargeModelFailsByValueSucceedsByProxy(t *testing.T) {
	// Figure 10's cliff: past the payload limit, cloud transfer fails and
	// only the proxied path works.
	big := Arch{InputDim: 28 * 28, HiddenDim: 512, Blocks: 6, Classes: 10}
	model := big.NewModel(1)
	if model.NumParams()*4 <= faas.PayloadLimit {
		t.Fatalf("test model too small (%d bytes) to exceed the limit", model.NumParams()*4)
	}

	n := netsim.Testbed(1000)
	cloud := faas.NewCloud(n, netsim.SiteCloud)
	ep := faas.StartEndpoint(cloud, "edge-big", netsim.SiteEdge, 1)
	defer ep.Close()
	exec := faas.NewExecutor(cloud, "edge-big", netsim.SiteCloud)

	ctx := context.Background()

	byValue := NewAggregator(Options{Arch: big, Devices: []*faas.Executor{exec}, DataSize: 2})
	if _, err := byValue.Round(ctx); err == nil {
		t.Fatal("by-value round succeeded past the payload limit")
	}

	st, err := store.New("flox-big", local.New("flox-big-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("flox-big") })
	byProxy := NewAggregator(Options{Arch: big, Devices: []*faas.Executor{exec}, Store: st, DataSize: 2})
	if _, err := byProxy.Round(ctx); err != nil {
		t.Fatalf("proxied round failed: %v", err)
	}
}

func TestFederatedTrainingImprovesModel(t *testing.T) {
	agg := newFL(t, 3, nil)
	test := ml.SyntheticFashion(100, 999)
	before := agg.Model().Evaluate(test)
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		if _, err := agg.Round(ctx); err != nil {
			t.Fatalf("Round %d: %v", round, err)
		}
	}
	after := agg.Model().Evaluate(test)
	if after <= before {
		t.Fatalf("federated training did not improve accuracy: %v -> %v", before, after)
	}
}
