package netsim

import "time"

// Site names for the testbed used throughout the paper's evaluation
// (§5: Theta, Polaris, Perlmutter, Frontera, Midway2, Chameleon Cloud, and
// the Globus Compute cloud service hosted in AWS).
const (
	SiteTheta           = "theta"
	SiteThetaLogin      = "theta-login"
	SitePolaris         = "polaris"
	SitePolarisLogin    = "polaris-login"
	SitePerlmutter      = "perlmutter"
	SitePerlmutterLogin = "perlmutter-login"
	SiteFrontera        = "frontera-login"
	SiteMidway2         = "midway2-login"
	SiteChameleonA      = "chameleon-a"
	SiteChameleonB      = "chameleon-b"
	SiteCloud           = "cloud"
	SiteEdge            = "edge"
)

// Testbed builds the paper's evaluation network at the given time scale.
//
// Nominal (unscaled) parameters approximate the real testbed: HPC fabrics
// have tens-of-microseconds latency and multi-GB/s bandwidth; campus links
// (Midway2 in Chicago to Theta at Argonne) have ~2 ms one-way latency;
// long-haul links (Frontera in Texas to Theta, ~1500 km) have ~20 ms; the
// cloud service round trip adds ~25 ms plus modest bandwidth. Long-haul
// links carry a UDP throttle (computing centers cap UDP; paper §5.3.2).
func Testbed(scale float64) *Network {
	n := New(scale)

	n.AddSite(SiteTheta, true)
	n.AddSite(SiteThetaLogin, true)
	n.AddSite(SitePolaris, true)
	n.AddSite(SitePolarisLogin, true)
	n.AddSite(SitePerlmutter, true)
	n.AddSite(SitePerlmutterLogin, true)
	n.AddSite(SiteFrontera, true)
	n.AddSite(SiteMidway2, true)
	n.AddSite(SiteChameleonA, false)
	n.AddSite(SiteChameleonB, false)
	n.AddSite(SiteCloud, false)
	n.AddSite(SiteEdge, true)

	hpcFabric := Link{Latency: 30 * time.Microsecond, Bandwidth: 5e9}
	loginCompute := Link{Latency: 80 * time.Microsecond, Bandwidth: 2e9}
	campusWAN := Link{Latency: 2 * time.Millisecond, Bandwidth: 400e6, UDPBandwidth: 120e6}
	longHaulWAN := Link{Latency: 18 * time.Millisecond, Bandwidth: 250e6, UDPBandwidth: 60e6}
	cloudLink := Link{Latency: 12 * time.Millisecond, Bandwidth: 120e6}
	chameleon40GbE := Link{Latency: 45 * time.Microsecond, Bandwidth: 4e9}
	edgeLink := Link{Latency: 10 * time.Millisecond, Bandwidth: 25e6, UDPBandwidth: 20e6}

	// Intra-site fabrics.
	mustLink(n, SiteTheta, SiteThetaLogin, hpcFabric)
	mustLink(n, SitePolaris, SitePolarisLogin, loginCompute)
	mustLink(n, SitePerlmutter, SitePerlmutterLogin, loginCompute)
	mustLink(n, SiteChameleonA, SiteChameleonB, chameleon40GbE)

	// Cross-site WAN.
	mustLink(n, SiteMidway2, SiteTheta, campusWAN)
	mustLink(n, SiteMidway2, SiteThetaLogin, campusWAN)
	mustLink(n, SiteMidway2, SitePolarisLogin, campusWAN)
	mustLink(n, SiteMidway2, SitePolaris, campusWAN)
	mustLink(n, SiteFrontera, SiteTheta, longHaulWAN)
	mustLink(n, SiteFrontera, SiteThetaLogin, longHaulWAN)
	mustLink(n, SiteTheta, SitePolarisLogin, hpcFabric)
	mustLink(n, SiteThetaLogin, SitePolarisLogin, hpcFabric)
	mustLink(n, SiteThetaLogin, SitePolaris, loginCompute)

	// Everything reaches the cloud service.
	for _, s := range []string{
		SiteTheta, SiteThetaLogin, SitePolaris, SitePolarisLogin,
		SitePerlmutter, SitePerlmutterLogin, SiteFrontera, SiteMidway2,
		SiteChameleonA, SiteChameleonB,
	} {
		mustLink(n, s, SiteCloud, cloudLink)
	}
	mustLink(n, SiteEdge, SiteCloud, edgeLink)
	mustLink(n, SiteEdge, SiteTheta, edgeLink)
	mustLink(n, SiteEdge, SitePolarisLogin, edgeLink)

	return n
}

func mustLink(n *Network, a, b string, l Link) {
	if err := n.SetLink(a, b, l); err != nil {
		panic(err)
	}
}
