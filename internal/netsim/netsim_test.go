package netsim

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func twoSiteNet(t *testing.T, scale float64, l Link) *Network {
	t.Helper()
	n := New(scale)
	n.AddSite("a", false)
	n.AddSite("b", true)
	if err := n.SetLink("a", "b", l); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	return n
}

func TestTransferTimeLatencyPlusBandwidth(t *testing.T) {
	n := twoSiteNet(t, 1, Link{Latency: 10 * time.Millisecond, Bandwidth: 1e6})
	got := n.TransferTime("a", "b", 1_000_000) // 1 MB at 1 MB/s = 1 s
	want := 10*time.Millisecond + time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestScaleCompressesTime(t *testing.T) {
	n := twoSiteNet(t, 10, Link{Latency: 10 * time.Millisecond, Bandwidth: 0})
	if got := n.TransferTime("a", "b", 0); got != time.Millisecond {
		t.Fatalf("scaled TransferTime = %v, want 1ms", got)
	}
}

func TestLoopbackForSameSite(t *testing.T) {
	n := New(1)
	n.AddSite("a", false)
	l, ok := n.LinkBetween("a", "a")
	if !ok {
		t.Fatal("no loopback link")
	}
	if l.Latency <= 0 {
		t.Fatal("loopback latency not positive")
	}
}

func TestUnknownPairHasZeroDelay(t *testing.T) {
	n := New(1)
	n.AddSite("a", false)
	n.AddSite("z", false)
	if got := n.TransferTime("a", "z", 1<<20); got != 0 {
		t.Fatalf("unlinked TransferTime = %v, want 0", got)
	}
}

func TestSetLinkUnknownSite(t *testing.T) {
	n := New(1)
	n.AddSite("a", false)
	if err := n.SetLink("a", "ghost", Link{}); err == nil {
		t.Fatal("SetLink accepted unknown site")
	}
}

func TestDirectReachableNATRules(t *testing.T) {
	n := twoSiteNet(t, 1, Link{Latency: time.Millisecond})
	if !n.DirectReachable("b", "a") {
		t.Fatal("open site a should accept inbound from b")
	}
	if n.DirectReachable("a", "b") {
		t.Fatal("NATed site b should reject inbound from a")
	}
	if !n.DirectReachable("b", "b") {
		t.Fatal("same-site should always be reachable")
	}
}

func TestUDPThrottleOnlyAffectsUDP(t *testing.T) {
	n := twoSiteNet(t, 1, Link{Latency: 0, Bandwidth: 100e6, UDPBandwidth: 10e6})
	size := 10_000_000
	tcp := n.TransferTime("a", "b", size)
	udp := n.UDPTransferTime("a", "b", size)
	if udp <= tcp {
		t.Fatalf("UDP transfer (%v) should be slower than TCP (%v)", udp, tcp)
	}
	if got, want := udp, time.Second; got != want {
		t.Fatalf("UDP transfer = %v, want %v", got, want)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	n := twoSiteNet(t, 1, Link{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := n.Delay(ctx, "a", "b", 1); err == nil {
		t.Fatal("Delay returned before context expired on an hour-long link")
	}
}

func TestRTTIsTwiceLatency(t *testing.T) {
	n := twoSiteNet(t, 1, Link{Latency: 7 * time.Millisecond})
	if got := n.RTT("a", "b"); got != 14*time.Millisecond {
		t.Fatalf("RTT = %v, want 14ms", got)
	}
}

func TestTestbedTopology(t *testing.T) {
	n := Testbed(100)
	// Every experiment pair used in the evaluation must be connected.
	pairs := [][2]string{
		{SiteTheta, SiteThetaLogin},
		{SiteMidway2, SiteTheta},
		{SiteFrontera, SiteTheta},
		{SitePerlmutterLogin, SitePerlmutter},
		{SiteChameleonA, SiteChameleonB},
		{SiteTheta, SiteCloud},
		{SiteEdge, SiteCloud},
	}
	for _, p := range pairs {
		if _, ok := n.LinkBetween(p[0], p[1]); !ok {
			t.Errorf("testbed lacks link %s—%s", p[0], p[1])
		}
	}
	// Long-haul is slower than campus which is slower than intra-site.
	small := 1
	intra := n.TransferTime(SiteTheta, SiteThetaLogin, small)
	campus := n.TransferTime(SiteMidway2, SiteTheta, small)
	longhaul := n.TransferTime(SiteFrontera, SiteTheta, small)
	if !(intra < campus && campus < longhaul) {
		t.Fatalf("latency ordering violated: intra=%v campus=%v longhaul=%v", intra, campus, longhaul)
	}
	// HPC sites are NATed; the cloud is not.
	if n.DirectReachable(SiteMidway2, SiteTheta) {
		t.Fatal("NATed Theta should not be directly reachable across sites")
	}
	if !n.DirectReachable(SiteTheta, SiteCloud) {
		t.Fatal("cloud should be directly reachable")
	}
}

func TestPropertyTransferTimeMonotonicInSize(t *testing.T) {
	n := twoSiteNet(t, 1, Link{Latency: time.Millisecond, Bandwidth: 1e9})
	f := func(a, b uint32) bool {
		small, large := int(a%1_000_000), int(b%1_000_000)
		if small > large {
			small, large = large, small
		}
		return n.TransferTime("a", "b", small) <= n.TransferTime("a", "b", large)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
