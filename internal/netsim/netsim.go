// Package netsim models the federated testbed used in the ProxyStore paper:
// named sites (clusters, clouds, login nodes) connected by links with
// configurable latency and bandwidth, some of which sit behind NATs.
//
// Simulated transports (kvstore, rpc, rudp, globus, faas, ...) consult a
// Network to decide how long a message of a given size takes between two
// sites and whether a direct inbound connection is possible at all. Real
// bytes still move over loopback sockets or in-process pipes; netsim only
// supplies the timing model, so orderings and crossovers between competing
// communication methods are preserved while the absolute scale is compressed
// (see the Scale field).
package netsim

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Link describes one direction of a network path between two sites.
type Link struct {
	// Latency is the one-way propagation delay for the first byte.
	Latency time.Duration
	// Bandwidth is the sustained throughput in bytes per second. Zero
	// means infinite (no serialization delay).
	Bandwidth float64
	// LossRate is the probability in [0,1] that a datagram is dropped.
	// Only datagram-oriented transports (rudp) consult it.
	LossRate float64
	// UDPBandwidth, if nonzero, caps UDP traffic below Bandwidth. Computing
	// centers throttle UDP to avoid congestion (paper §5.3.2); rudp uses
	// this cap when it is set.
	UDPBandwidth float64
}

// Site is a named location in the federation.
type Site struct {
	// Name identifies the site, e.g. "theta" or "midway2-login".
	Name string
	// NAT reports whether the site is behind network address translation,
	// preventing inbound direct connections from other NATed sites.
	NAT bool
}

// Network is a symmetric site graph with per-pair links.
//
// A Network is safe for concurrent use.
type Network struct {
	mu    sync.RWMutex
	sites map[string]Site
	links map[pairKey]Link
	// Scale divides all computed delays; 1 means real time. Experiments
	// use Scale > 1 so WAN-scale sweeps finish in seconds while relative
	// timings between methods are unchanged.
	scale float64
	// loopback is the link used when src == dst.
	loopback Link
}

type pairKey struct{ a, b string }

func orderedPair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// New returns an empty network with the given time scale. A scale of s
// makes every simulated delay 1/s of its nominal duration; s must be >= 1.
func New(scale float64) *Network {
	if scale < 1 {
		scale = 1
	}
	return &Network{
		sites: make(map[string]Site),
		links: make(map[pairKey]Link),
		scale: scale,
		loopback: Link{
			Latency:   20 * time.Microsecond,
			Bandwidth: 8e9, // 8 GB/s memory-bus-ish loopback
		},
	}
}

// Scale returns the time compression factor of the network.
func (n *Network) Scale() float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.scale
}

// AddSite registers a site. Re-adding a site replaces its NAT flag.
func (n *Network) AddSite(name string, nat bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sites[name] = Site{Name: name, NAT: nat}
}

// Site returns the named site and whether it exists.
func (n *Network) Site(name string) (Site, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.sites[name]
	return s, ok
}

// Sites returns the names of all registered sites.
func (n *Network) Sites() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.sites))
	for name := range n.sites {
		out = append(out, name)
	}
	return out
}

// SetLink installs a symmetric link between sites a and b. Both sites must
// already be registered.
func (n *Network) SetLink(a, b string, l Link) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.sites[a]; !ok {
		return fmt.Errorf("netsim: unknown site %q", a)
	}
	if _, ok := n.sites[b]; !ok {
		return fmt.Errorf("netsim: unknown site %q", b)
	}
	n.links[orderedPair(a, b)] = l
	return nil
}

// SetLoopback overrides the link used for same-site transfers.
func (n *Network) SetLoopback(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loopback = l
}

// LinkBetween returns the link between two sites. Same-site pairs get the
// loopback link. Unconnected distinct pairs return ok == false.
func (n *Network) LinkBetween(a, b string) (Link, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if a == b {
		return n.loopback, true
	}
	l, ok := n.links[orderedPair(a, b)]
	return l, ok
}

// DirectReachable reports whether a process at site src can open a direct
// inbound connection to a listener at site dst. A NATed destination is
// unreachable from a different site; hole punching (rudp + relay) or a
// mediating service is required instead.
func (n *Network) DirectReachable(src, dst string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if src == dst {
		return true
	}
	d, ok := n.sites[dst]
	if !ok {
		return false
	}
	if _, connected := n.links[orderedPair(src, dst)]; !connected {
		return false
	}
	return !d.NAT
}

// TransferTime returns the scaled time for size bytes to traverse the link
// from src to dst: one latency plus size over bandwidth. Unknown pairs get
// zero delay, so tests against unconfigured networks run at full speed.
func (n *Network) TransferTime(src, dst string, size int) time.Duration {
	l, ok := n.LinkBetween(src, dst)
	if !ok {
		return 0
	}
	return n.scaleDuration(transferDuration(l, size, false))
}

// UDPTransferTime is TransferTime under the link's UDP throttle.
func (n *Network) UDPTransferTime(src, dst string, size int) time.Duration {
	l, ok := n.LinkBetween(src, dst)
	if !ok {
		return 0
	}
	return n.scaleDuration(transferDuration(l, size, true))
}

// RTT returns the scaled round-trip latency between two sites.
func (n *Network) RTT(src, dst string) time.Duration {
	l, ok := n.LinkBetween(src, dst)
	if !ok {
		return 0
	}
	return n.scaleDuration(2 * l.Latency)
}

func transferDuration(l Link, size int, udp bool) time.Duration {
	d := l.Latency
	bw := l.Bandwidth
	if udp && l.UDPBandwidth > 0 && l.UDPBandwidth < bw {
		bw = l.UDPBandwidth
	}
	if bw > 0 && size > 0 {
		d += time.Duration(float64(size) / bw * float64(time.Second))
	}
	return d
}

func (n *Network) scaleDuration(d time.Duration) time.Duration {
	n.mu.RLock()
	s := n.scale
	n.mu.RUnlock()
	return time.Duration(float64(d) / s)
}

// Delay blocks for the scaled transfer time of size bytes from src to dst,
// or until ctx is done, returning ctx.Err() in the latter case.
func (n *Network) Delay(ctx context.Context, src, dst string, size int) error {
	return sleepCtx(ctx, n.TransferTime(src, dst, size))
}

// DelayUDP is Delay under the link's UDP throttle.
func (n *Network) DelayUDP(ctx context.Context, src, dst string, size int) error {
	return sleepCtx(ctx, n.UDPTransferTime(src, dst, size))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
