// Package cache implements the thread-safe LRU cache that Store uses to
// avoid repeated gets and deserializations of the same object (paper §3.5:
// "caching performed after deserialization to avoid duplicate
// deserializations").
//
// The cache is cost-aware: capacity is a total cost budget and every entry
// carries a cost. With unit costs (Set) it behaves as a classic
// entry-count LRU; with byte costs (SetCost) it bounds resident bytes, so
// one huge object cannot pin many huge objects' worth of memory.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-budget least-recently-used cache keyed by string. The
// budget is a total cost: unit costs give entry-count semantics, byte costs
// give byte-budget semantics. A capacity of zero disables caching entirely.
//
// LRU is safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	total    int64
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	hits      uint64
	misses    uint64
	hitBytes  uint64
	evictions uint64
}

type entry struct {
	key   string
	value any
	cost  int64
}

// New returns an LRU with a total cost budget of capacity; entries stored
// with Set cost 1 each, so New(n) holds at most n of them.
func New(capacity int) *LRU {
	return NewCost(int64(capacity))
}

// NewCost returns an LRU with the given total cost budget (e.g. bytes).
func NewCost(capacity int64) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most recently used.
func (c *LRU) Get(key string) (any, bool) {
	v, _, ok := c.GetCost(key)
	return v, ok
}

// GetCost is Get but also reports the charged cost of the hit entry, so
// callers can attribute cache-served bytes without a second lookup.
func (c *LRU) GetCost(key string) (any, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	e := el.Value.(*entry)
	c.hitBytes += uint64(e.cost)
	c.order.MoveToFront(el)
	return e.value, e.cost, true
}

// Set stores value under key with unit cost, evicting least recently used
// entries as needed. Setting an existing key updates it in place.
func (c *LRU) Set(key string, value any) {
	c.SetCost(key, value, 1)
}

// SetCost stores value under key with the given cost, evicting least
// recently used entries until the budget holds. Costs below 1 are clamped
// to 1; a value whose cost exceeds the whole budget is not cached (and
// removes any stale entry under the same key).
func (c *LRU) SetCost(key string, value any, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return
	}
	if cost < 1 {
		cost = 1
	}
	if cost > c.capacity {
		c.remove(key)
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.total += cost - e.cost
		e.value = value
		e.cost = cost
		c.order.MoveToFront(el)
		c.evictOverBudget()
		return
	}
	c.total += cost
	c.entries[key] = c.order.PushFront(&entry{key: key, value: value, cost: cost})
	c.evictOverBudget()
}

// evictOverBudget drops LRU entries until the budget holds. Callers must
// hold c.mu. The most recently used entry is never evicted, so a
// budget-sized object can still be cached alone.
func (c *LRU) evictOverBudget() {
	for c.total > c.capacity && c.order.Len() > 1 {
		oldest := c.order.Back()
		if oldest == nil {
			return
		}
		e := oldest.Value.(*entry)
		c.order.Remove(oldest)
		delete(c.entries, e.key)
		c.total -= e.cost
		c.evictions++
	}
}

// Contains reports whether key is cached without promoting it.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Delete removes key from the cache if present.
func (c *LRU) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.remove(key)
}

// remove deletes key without locking; callers must hold c.mu.
func (c *LRU) remove(key string) {
	if el, ok := c.entries[key]; ok {
		c.total -= el.Value.(*entry).cost
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cost returns the total cost of resident entries.
func (c *LRU) Cost() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitBytes returns the cumulative charged cost of cache hits — with byte
// costs, the bytes served from cache instead of the backend.
func (c *LRU) HitBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hitBytes
}

// Evictions returns how many entries the budget has pushed out. Explicit
// Deletes are not counted.
func (c *LRU) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Clear removes all entries but preserves hit/miss statistics.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order.Init()
	c.total = 0
}
