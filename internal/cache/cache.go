// Package cache implements the thread-safe LRU cache that Store uses to
// avoid repeated gets and deserializations of the same object (paper §3.5:
// "caching performed after deserialization to avoid duplicate
// deserializations").
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache keyed by string.
// A capacity of zero disables caching entirely.
//
// LRU is safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	hits   uint64
	misses uint64
}

type entry struct {
	key   string
	value any
}

// New returns an LRU that holds at most capacity entries.
func New(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Set stores value under key, evicting the least recently used entry when
// the cache is full. Setting an existing key updates it in place.
func (c *LRU) Set(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, value: value})
}

// Contains reports whether key is cached without promoting it.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Delete removes key from the cache if present.
func (c *LRU) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Clear removes all entries but preserves hit/miss statistics.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order.Init()
}
