package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetMissingKey(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get returned ok for missing key")
	}
}

func TestSetGet(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(2)
	c.Set("a", 1)
	c.Set("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want 2", v)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New(2)
	c.Set("a", 1)
	c.Set("b", 2)
	c.Get("a") // promote a; b is now least recently used
	c.Set("c", 3)
	if c.Contains("b") {
		t.Fatal("LRU entry b survived eviction")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("expected entries a and c to remain")
	}
}

func TestZeroCapacityDisablesCaching(t *testing.T) {
	c := New(0)
	c.Set("a", 1)
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestDelete(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	c.Delete("a")
	if c.Contains("a") {
		t.Fatal("entry survived Delete")
	}
	c.Delete("a") // deleting absent key must not panic
}

func TestStatsCountHitsAndMisses(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("b")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestClearKeepsStats(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	c.Get("a")
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries behind")
	}
	hits, _ := c.Stats()
	if hits != 1 {
		t.Fatalf("Clear reset stats; hits = %d", hits)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Set(key, i)
				c.Get(key)
				if i%17 == 0 {
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(keys []string) bool {
		c := New(8)
		for _, k := range keys {
			c.Set(k, k)
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMostRecentAlwaysPresent(t *testing.T) {
	f := func(keys []string) bool {
		c := New(4)
		for _, k := range keys {
			c.Set(k, true)
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
