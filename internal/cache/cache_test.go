package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetMissingKey(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get returned ok for missing key")
	}
}

func TestSetGet(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(2)
	c.Set("a", 1)
	c.Set("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want 2", v)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New(2)
	c.Set("a", 1)
	c.Set("b", 2)
	c.Get("a") // promote a; b is now least recently used
	c.Set("c", 3)
	if c.Contains("b") {
		t.Fatal("LRU entry b survived eviction")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("expected entries a and c to remain")
	}
}

func TestZeroCapacityDisablesCaching(t *testing.T) {
	c := New(0)
	c.Set("a", 1)
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestDelete(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	c.Delete("a")
	if c.Contains("a") {
		t.Fatal("entry survived Delete")
	}
	c.Delete("a") // deleting absent key must not panic
}

func TestStatsCountHitsAndMisses(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("b")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestClearKeepsStats(t *testing.T) {
	c := New(4)
	c.Set("a", 1)
	c.Get("a")
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries behind")
	}
	hits, _ := c.Stats()
	if hits != 1 {
		t.Fatalf("Clear reset stats; hits = %d", hits)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Set(key, i)
				c.Get(key)
				if i%17 == 0 {
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSetCostEvictsByBudget(t *testing.T) {
	c := NewCost(100)
	c.SetCost("a", "a", 40)
	c.SetCost("b", "b", 40)
	c.SetCost("c", "c", 40) // over budget: evicts LRU "a"
	if c.Contains("a") {
		t.Fatal("LRU entry a survived byte-budget eviction")
	}
	if !c.Contains("b") || !c.Contains("c") {
		t.Fatal("entries b and c should remain")
	}
	if got := c.Cost(); got != 80 {
		t.Fatalf("Cost = %d, want 80", got)
	}
}

func TestSetCostOversizedValueNotCached(t *testing.T) {
	c := NewCost(100)
	c.SetCost("small", 1, 10)
	c.SetCost("huge", 2, 101) // exceeds whole budget
	if c.Contains("huge") {
		t.Fatal("over-budget entry was cached")
	}
	if !c.Contains("small") {
		t.Fatal("over-budget insert evicted unrelated entries")
	}
	// Updating an existing key with an over-budget cost drops the stale
	// entry instead of serving outdated data.
	c.SetCost("small", 3, 200)
	if c.Contains("small") {
		t.Fatal("stale entry survived over-budget update")
	}
	if got := c.Cost(); got != 0 {
		t.Fatalf("Cost = %d, want 0", got)
	}
}

func TestSetCostUpdateAdjustsBudget(t *testing.T) {
	c := NewCost(100)
	c.SetCost("a", 1, 30)
	c.SetCost("b", 2, 30)
	c.SetCost("a", 3, 80) // update a to 80: total 110 > 100, evict LRU b
	if c.Contains("b") {
		t.Fatal("entry b should have been evicted by a's growth")
	}
	v, ok := c.Get("a")
	if !ok || v.(int) != 3 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if got := c.Cost(); got != 80 {
		t.Fatalf("Cost = %d, want 80", got)
	}
}

func TestSetCostBudgetSizedEntryCachable(t *testing.T) {
	c := NewCost(64)
	c.SetCost("exact", "v", 64)
	if !c.Contains("exact") {
		t.Fatal("budget-sized entry was not cached")
	}
	c.SetCost("next", "w", 64)
	if c.Contains("exact") {
		t.Fatal("replaced entry lingered")
	}
	if !c.Contains("next") {
		t.Fatal("newest budget-sized entry missing")
	}
}

func TestDeleteReleasesCost(t *testing.T) {
	c := NewCost(100)
	c.SetCost("a", 1, 60)
	c.Delete("a")
	if got := c.Cost(); got != 0 {
		t.Fatalf("Cost after delete = %d, want 0", got)
	}
	c.SetCost("b", 2, 90) // must fit now
	if !c.Contains("b") {
		t.Fatal("freed budget not reusable")
	}
}

func TestClearResetsCost(t *testing.T) {
	c := NewCost(100)
	c.SetCost("a", 1, 60)
	c.Clear()
	if got := c.Cost(); got != 0 {
		t.Fatalf("Cost after clear = %d, want 0", got)
	}
}

func TestPropertyCostNeverExceedsBudget(t *testing.T) {
	f := func(keys []string, costs []uint8) bool {
		c := NewCost(64)
		for i, k := range keys {
			cost := int64(1)
			if i < len(costs) {
				cost = int64(costs[i]%32) + 1
			}
			c.SetCost(k, i, cost)
			if c.Cost() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(keys []string) bool {
		c := New(8)
		for _, k := range keys {
			c.Set(k, k)
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMostRecentAlwaysPresent(t *testing.T) {
	f := func(keys []string) bool {
		c := New(4)
		for _, k := range keys {
			c.Set(k, true)
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHitBytesAndEvictions(t *testing.T) {
	c := NewCost(100)
	c.SetCost("a", 1, 60)
	c.SetCost("b", 2, 30)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if hb := c.HitBytes(); hb != 90 {
		t.Fatalf("HitBytes = %d, want 90", hb)
	}
	if ev := c.Evictions(); ev != 0 {
		t.Fatalf("Evictions = %d before overflow", ev)
	}
	c.SetCost("c", 3, 50) // budget overflows: a (LRU) must go
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
	c.Delete("b")
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("explicit Delete counted as eviction: %d", ev)
	}
	if _, ok := c.Get("ghost"); ok {
		t.Fatal("ghost present")
	}
	if hb := c.HitBytes(); hb != 90 {
		t.Fatalf("HitBytes moved on miss: %d", hb)
	}
}
