package molsim

import (
	"math"
	"testing"
)

func TestCandidatesDeterministic(t *testing.T) {
	a := Candidates(5, 1)
	b := Candidates(5, 1)
	for i := range a {
		if a[i].Fingerprint[0] != b[i].Fingerprint[0] {
			t.Fatal("same seed produced different candidates")
		}
	}
}

func TestTrueIPDeterministic(t *testing.T) {
	mols := Candidates(3, 2)
	for _, m := range mols {
		if TrueIP(m) != TrueIP(m) {
			t.Fatal("TrueIP not deterministic")
		}
	}
}

func TestSimulateMatchesTrueIP(t *testing.T) {
	m := Candidates(1, 3)[0]
	if Simulate(m, 1000) != TrueIP(m) {
		t.Fatal("Simulate returned a different IP than TrueIP")
	}
}

func TestSurrogateLearnsRanking(t *testing.T) {
	mols := Candidates(300, 4)
	train := mols[:200]
	ips := make([]float64, len(train))
	for i, m := range train {
		ips[i] = TrueIP(m)
	}
	s := NewSurrogate()
	s.Train(train, ips)

	// Correlation between predicted and true IPs on held-out candidates.
	test := mols[200:]
	var sumX, sumY, sumXY, sumXX, sumYY float64
	for _, m := range test {
		x, y := s.Predict(m), TrueIP(m)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
		sumYY += y * y
	}
	n := float64(len(test))
	corr := (n*sumXY - sumX*sumY) /
		math.Sqrt((n*sumXX-sumX*sumX)*(n*sumYY-sumY*sumY))
	if corr < 0.8 {
		t.Fatalf("surrogate correlation = %v, want >= 0.8", corr)
	}
}

func TestRankOrdersByPrediction(t *testing.T) {
	mols := Candidates(50, 5)
	ips := make([]float64, len(mols))
	for i, m := range mols {
		ips[i] = TrueIP(m)
	}
	s := NewSurrogate()
	s.Train(mols, ips)
	order := s.Rank(mols)
	if len(order) != len(mols) {
		t.Fatalf("Rank returned %d indices", len(order))
	}
	for i := 1; i < len(order); i++ {
		if s.Predict(mols[order[i-1]]) < s.Predict(mols[order[i]]) {
			t.Fatal("Rank output not in descending predicted-IP order")
		}
	}
}

func TestSerializeWeightsPadding(t *testing.T) {
	s := NewSurrogate()
	blob := s.SerializeWeights(10 << 20)
	if len(blob) != 10<<20 {
		t.Fatalf("padded blob is %d bytes", len(blob))
	}
	small := s.SerializeWeights(0)
	if len(small) != 8*(FingerprintDim+1) {
		t.Fatalf("unpadded blob is %d bytes", len(small))
	}
}

func TestSimulateCostBurnsTime(t *testing.T) {
	m := Candidates(1, 6)[0]
	// Just confirm higher cost does not change the result.
	if Simulate(m, 10) != Simulate(m, 100000) {
		t.Fatal("cost changed the simulated IP")
	}
}
