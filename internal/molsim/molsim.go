// Package molsim implements the molecular design workload of paper §5.6: a
// steering loop that interleaves expensive "quantum chemistry" simulations
// computing ionization potentials (IPs) with surrogate-model training and
// inference that ranks candidate molecules for future simulations.
//
// Molecules are synthetic: each candidate is a feature vector (a stand-in
// for a molecular fingerprint) whose true IP is a fixed nonlinear function
// plus noise. The simulator burns deterministic CPU work proportional to a
// configurable cost so node-utilization experiments (Figure 11) behave like
// the real application; the surrogate is the ridge regression from the ml
// package.
package molsim

import (
	"math"
	"math/rand"

	"proxystore/internal/ml"
)

// FingerprintDim is the feature vector length.
const FingerprintDim = 64

// Molecule is one candidate electrolyte.
type Molecule struct {
	// ID indexes the candidate set.
	ID int
	// Fingerprint is the feature vector used by the surrogate.
	Fingerprint []float64
}

// Candidates deterministically generates a candidate set.
func Candidates(n int, seed int64) []Molecule {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Molecule, n)
	for i := range out {
		fp := make([]float64, FingerprintDim)
		for j := range fp {
			fp[j] = rng.NormFloat64()
		}
		out[i] = Molecule{ID: i, Fingerprint: fp}
	}
	return out
}

// TrueIP is the ground-truth ionization potential: a smooth nonlinear
// function of the fingerprint (so the surrogate can learn it) plus
// deterministic per-molecule "quantum" noise.
func TrueIP(m Molecule) float64 {
	var lin, quad float64
	for j, x := range m.Fingerprint {
		w := math.Sin(float64(j)*0.7 + 1)
		lin += w * x
		if j%4 == 0 {
			quad += 0.1 * x * x
		}
	}
	noise := math.Sin(float64(m.ID)*12.9898) * 0.05
	return 5 + 0.5*lin + quad + noise
}

// Simulate computes a molecule's IP with cost units of busy CPU work,
// modelling a quantum chemistry code. cost trades fidelity for runtime;
// the returned value is always TrueIP.
func Simulate(m Molecule, cost int) float64 {
	// Deterministic busy work the compiler cannot elide.
	acc := 1.0
	for i := 0; i < cost; i++ {
		acc = math.Sqrt(acc + float64(i%7) + m.Fingerprint[i%FingerprintDim])
	}
	_ = acc
	return TrueIP(m)
}

// Surrogate wraps a ridge model over molecular fingerprints.
type Surrogate struct {
	model *ml.Ridge
}

// NewSurrogate returns an untrained surrogate.
func NewSurrogate() *Surrogate {
	return &Surrogate{model: ml.NewRidge(FingerprintDim, 1e-4)}
}

// Train fits the surrogate on simulated (molecule, IP) pairs.
func (s *Surrogate) Train(mols []Molecule, ips []float64) {
	features := make([][]float64, len(mols))
	for i, m := range mols {
		features[i] = m.Fingerprint
	}
	s.model.Fit(features, ips, 0.05, 60)
}

// Predict estimates a molecule's IP.
func (s *Surrogate) Predict(m Molecule) float64 {
	return s.model.Predict(m.Fingerprint)
}

// Rank orders candidate indices by predicted IP, highest first.
func (s *Surrogate) Rank(mols []Molecule) []int {
	type scored struct {
		idx int
		ip  float64
	}
	sc := make([]scored, len(mols))
	for i, m := range mols {
		sc[i] = scored{idx: i, ip: s.Predict(m)}
	}
	// Insertion sort keeps this dependency-free; candidate sets are small.
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && sc[j].ip > sc[j-1].ip; j-- {
			sc[j], sc[j-1] = sc[j-1], sc[j]
		}
	}
	out := make([]int, len(sc))
	for i, s := range sc {
		out[i] = s.idx
	}
	return out
}

// SerializeWeights flattens the surrogate for transfer (the ~10 MB "model
// weights" of §5.6 are modeled by padding to the requested size).
func (s *Surrogate) SerializeWeights(padTo int) []byte {
	base := make([]byte, 0, 8*(FingerprintDim+1))
	for _, w := range s.model.W {
		base = appendFloat(base, w)
	}
	base = appendFloat(base, s.model.Bias)
	if padTo > len(base) {
		pad := make([]byte, padTo-len(base))
		base = append(base, pad...)
	}
	return base
}

func appendFloat(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b = append(b, byte(u>>(8*i)))
	}
	return b
}
