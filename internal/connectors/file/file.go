// Package file provides the FileConnector: mediated communication via a
// shared file system (paper §4.1.1). Objects are written as files in a data
// directory; any process that can see the directory can resolve proxies.
// Optionally the connector routes through netsim to model a parallel file
// system's latency and bandwidth.
package file

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"

	"proxystore/internal/connector"
	"proxystore/internal/netsim"
)

// Type is the registry name of the file connector.
const Type = "file"

// Connector stores each object as a file named by its object ID.
//
// A Connector is safe for concurrent use; distinct object IDs never collide
// on the same file.
type Connector struct {
	dir string

	// Optional file-system performance model.
	net  *netsim.Network
	site string
	fs   string
}

// Option configures a Connector.
type Option func(*Connector)

// WithNetwork attaches a netsim model: every Put/Get pays the transfer time
// between site and fsSite (the storage servers) for the object size.
func WithNetwork(n *netsim.Network, site, fsSite string) Option {
	return func(c *Connector) {
		c.net = n
		c.site = site
		c.fs = fsSite
	}
}

// New returns a file connector rooted at dir, creating dir if needed.
func New(dir string, opts ...Option) (*Connector, error) {
	if dir == "" {
		return nil, fmt.Errorf("file: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("file: creating data directory: %w", err)
	}
	c := &Connector{dir: dir}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Dir returns the connector's data directory.
func (c *Connector) Dir() string { return c.dir }

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{"dir": c.dir}}
}

func (c *Connector) path(id string) string { return filepath.Join(c.dir, id) }

func (c *Connector) delay(ctx context.Context, size int) error {
	if c.net == nil {
		return nil
	}
	return c.net.Delay(ctx, c.site, c.fs, size)
}

// Put implements connector.Connector. The write is atomic: data lands in a
// temp file renamed into place, so concurrent readers never see a partial
// object.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: int64(len(data)),
		Attrs: map[string]string{"dir": c.dir, "size": strconv.Itoa(len(data))}}
	if err := c.delay(ctx, len(data)); err != nil {
		return connector.Key{}, err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return connector.Key{}, fmt.Errorf("file: creating temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return connector.Key{}, fmt.Errorf("file: writing object: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return connector.Key{}, fmt.Errorf("file: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key.ID)); err != nil {
		os.Remove(tmp.Name())
		return connector.Key{}, fmt.Errorf("file: publishing object: %w", err)
	}
	return key, nil
}

// PutFrom implements connector.StreamPutter: the stream is copied straight
// into the temp file in chunk-size pieces, so peak memory is O(chunk) no
// matter how large the object is. The write stays atomic via rename.
func (c *Connector) PutFrom(ctx context.Context, r io.Reader) (connector.Key, error) {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return connector.Key{}, fmt.Errorf("file: creating temp file: %w", err)
	}
	n, err := io.CopyBuffer(tmp, r, make([]byte, connector.DefaultChunkSize))
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return connector.Key{}, fmt.Errorf("file: streaming object: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return connector.Key{}, fmt.Errorf("file: closing temp file: %w", err)
	}
	if err := c.delay(ctx, int(n)); err != nil {
		os.Remove(tmp.Name())
		return connector.Key{}, err
	}
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: n,
		Attrs: map[string]string{"dir": c.dir, "size": strconv.FormatInt(n, 10)}}
	if err := os.Rename(tmp.Name(), c.path(key.ID)); err != nil {
		os.Remove(tmp.Name())
		return connector.Key{}, fmt.Errorf("file: publishing object: %w", err)
	}
	return key, nil
}

// GetTo implements connector.StreamGetter: the file is copied into w in
// chunk-size pieces without ever materializing the object.
func (c *Connector) GetTo(ctx context.Context, key connector.Key, w io.Writer) error {
	if err := c.delay(ctx, int(key.Size)); err != nil {
		return err
	}
	f, err := os.Open(c.path(key.ID))
	if errors.Is(err, fs.ErrNotExist) {
		return connector.ErrNotFound
	}
	if err != nil {
		return fmt.Errorf("file: opening object: %w", err)
	}
	defer f.Close()
	if _, err := io.CopyBuffer(w, f, make([]byte, connector.DefaultChunkSize)); err != nil {
		return fmt.Errorf("file: streaming object: %w", err)
	}
	return nil
}

// Get implements connector.Connector.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	if err := c.delay(ctx, int(key.Size)); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(c.path(key.ID))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, connector.ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("file: reading object: %w", err)
	}
	return data, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(_ context.Context, key connector.Key) (bool, error) {
	_, err := os.Stat(c.path(key.ID))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("file: stat object: %w", err)
	}
	return true, nil
}

// Evict implements connector.Connector.
func (c *Connector) Evict(_ context.Context, key connector.Key) error {
	err := os.Remove(c.path(key.ID))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("file: removing object: %w", err)
	}
	return nil
}

// Close implements connector.Connector. Stored files persist.
func (c *Connector) Close() error { return nil }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		return New(cfg.Param("dir", ""))
	})
}
