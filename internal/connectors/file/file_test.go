package file

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/netsim"
)

func TestConformance(t *testing.T) {
	dir := t.TempDir()
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		c, err := New(dir)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return c
	}, connectortest.Options{})
}

func TestNewRejectsEmptyDir(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Fatal("New accepted empty directory")
	}
}

func TestNewCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	if _, err := New(dir); err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("data directory not created: %v", err)
	}
}

func TestObjectsVisibleAcrossInstances(t *testing.T) {
	// Two connectors sharing a directory model two processes sharing a
	// file system — the FileConnector's whole reason to exist.
	dir := t.TempDir()
	producer, err := New(dir)
	if err != nil {
		t.Fatalf("New producer: %v", err)
	}
	consumer, err := New(dir)
	if err != nil {
		t.Fatalf("New consumer: %v", err)
	}
	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("shared fs object"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if string(got) != "shared fs object" {
		t.Fatalf("consumer Get = %q", got)
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Put(ctx, []byte("obj")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatalf("Glob: %v", err)
	}
	if len(matches) != 0 {
		t.Fatalf("%d temp files left behind", len(matches))
	}
}

func TestNetworkModelAddsDelay(t *testing.T) {
	n := netsim.New(1)
	n.AddSite("compute", true)
	n.AddSite("pfs", false)
	if err := n.SetLink("compute", "pfs", netsim.Link{Latency: 20 * time.Millisecond}); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	c, err := New(t.TempDir(), WithNetwork(n, "compute", "pfs"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	start := time.Now()
	if _, err := c.Put(context.Background(), []byte("slow")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Put took %v, expected >= 20ms of modeled PFS latency", elapsed)
	}
}
