package fabricc

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/netsim"
	"proxystore/internal/rdma"
)

func setupFabric(t *testing.T, name string, profile rdma.Profile) {
	t.Helper()
	n := netsim.New(1)
	n.AddSite("nodeA", true)
	n.AddSite("nodeB", true)
	n.SetLink("nodeA", "nodeB", netsim.Link{Latency: 50 * time.Microsecond, Bandwidth: 5e9})
	RegisterFabric(name, rdma.NewFabric(n, profile))
	t.Cleanup(ResetFabrics)
}

func TestConformanceMargo(t *testing.T) {
	setupFabric(t, "conf-margo", rdma.MargoProfile())
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		c, err := NewMargo("conf-margo", "nodeA-store", "nodeA")
		if err != nil {
			t.Fatalf("NewMargo: %v", err)
		}
		return c
	}, connectortest.Options{})
}

func TestConformanceUCX(t *testing.T) {
	setupFabric(t, "conf-ucx", rdma.UCXProfile())
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		c, err := NewUCX("conf-ucx", "nodeA-store-ucx", "nodeA")
		if err != nil {
			t.Fatalf("NewUCX: %v", err)
		}
		return c
	}, connectortest.Options{})
}

func TestCrossNodeFetch(t *testing.T) {
	setupFabric(t, "cross", rdma.MargoProfile())
	producer, err := NewMargo("cross", "prod-node", "nodeA")
	if err != nil {
		t.Fatalf("producer: %v", err)
	}
	defer producer.Close()
	consumer, err := NewMargo("cross", "cons-node", "nodeB")
	if err != nil {
		t.Fatalf("consumer: %v", err)
	}
	defer consumer.Close()

	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("lives on prod-node"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if key.Attr("node") != "prod-node" {
		t.Fatalf("key node = %q", key.Attr("node"))
	}
	// Consumer fetches directly from the producing node's server.
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if string(got) != "lives on prod-node" {
		t.Fatalf("consumer Get = %q", got)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	setupFabric(t, "types", rdma.MargoProfile())
	if _, err := New("openmpi", "types", "n", "nodeA"); err == nil {
		t.Fatal("unknown connector type accepted")
	}
}

func TestUnregisteredFabricRejected(t *testing.T) {
	if _, err := NewMargo("no-such-fabric", "n", "nodeA"); err == nil {
		t.Fatal("connector created against unregistered fabric")
	}
}

func TestServerSharedAcrossConnectorsOnSameNode(t *testing.T) {
	setupFabric(t, "shared", rdma.MargoProfile())
	a, err := NewMargo("shared", "same-node", "nodeA")
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	defer a.Close()
	b, err := NewMargo("shared", "same-node", "nodeA")
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	defer b.Close()

	ctx := context.Background()
	key, err := a.Put(ctx, []byte("one server per node"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := b.Get(ctx, key)
	if err != nil {
		t.Fatalf("b.Get: %v", err)
	}
	if string(got) != "one server per node" {
		t.Fatalf("b.Get = %q", got)
	}
}
