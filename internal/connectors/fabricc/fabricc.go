// Package fabricc provides the Margo and UCX connectors: distributed
// in-memory storage over the simulated RDMA fabric (paper §4.1.3).
//
// In the paper the two connectors wrap different libraries (Py-Mochi-Margo
// and UCX-Py); in this reproduction they are the same storage protocol over
// rdma fabrics with different transport profiles, which is precisely the
// distinction the paper measures in Figure 6. On first use at a node the
// connector spawns that node's storage server; keys record the producing
// node so consumers fetch from wherever the data lives (elastic expansion
// as proxies propagate).
package fabricc

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"proxystore/internal/connector"
	"proxystore/internal/distmem"
	"proxystore/internal/rdma"
)

// Connector type names.
const (
	TypeMargo = "margo"
	TypeUCX   = "ucx"
)

var (
	fabricsMu sync.Mutex
	fabrics   = make(map[string]*rdma.Fabric)
	servers   = make(map[string]*distmem.FabricServer) // fabricName/nodeAddr
	clientSeq atomic.Uint64
)

// RegisterFabric installs a named fabric for connectors to attach to.
// Configs are string maps, so fabrics travel by name within a process.
func RegisterFabric(name string, f *rdma.Fabric) {
	fabricsMu.Lock()
	defer fabricsMu.Unlock()
	fabrics[name] = f
}

// ResetFabrics closes all node servers and forgets registered fabrics.
// For tests.
func ResetFabrics() {
	fabricsMu.Lock()
	defer fabricsMu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	servers = make(map[string]*distmem.FabricServer)
	fabrics = make(map[string]*rdma.Fabric)
}

func fabric(name string) (*rdma.Fabric, error) {
	fabricsMu.Lock()
	defer fabricsMu.Unlock()
	f, ok := fabrics[name]
	if !ok {
		return nil, fmt.Errorf("fabricc: no fabric registered as %q", name)
	}
	return f, nil
}

// nodeServer returns the storage server for a node, spawning it on first
// use (the paper: "when one of these connectors is initialized for the
// first time in a process, it spawns a process that acts as the storage
// server for that node").
func nodeServer(fabricName, nodeAddr, site string) (*distmem.FabricServer, error) {
	fabricsMu.Lock()
	defer fabricsMu.Unlock()
	key := fabricName + "/" + nodeAddr
	if s, ok := servers[key]; ok {
		return s, nil
	}
	f, ok := fabrics[fabricName]
	if !ok {
		return nil, fmt.Errorf("fabricc: no fabric registered as %q", fabricName)
	}
	s, err := distmem.StartFabricServer(f, nodeAddr, site)
	if err != nil {
		return nil, err
	}
	servers[key] = s
	return s, nil
}

// Connector is a distributed in-memory connector over an RDMA fabric.
type Connector struct {
	typ        string
	fabricName string
	nodeAddr   string
	site       string
	client     *distmem.FabricClient
}

// New creates a connector of the given type ("margo" or "ucx") attached to
// the named fabric, homed at nodeAddr/site. The node's storage server is
// spawned if not yet running.
func New(typ, fabricName, nodeAddr, site string) (*Connector, error) {
	if typ != TypeMargo && typ != TypeUCX {
		return nil, fmt.Errorf("fabricc: unknown connector type %q", typ)
	}
	if _, err := nodeServer(fabricName, nodeAddr, site); err != nil {
		return nil, err
	}
	f, err := fabric(fabricName)
	if err != nil {
		return nil, err
	}
	clientAddr := fmt.Sprintf("%s/client-%d", nodeAddr, clientSeq.Add(1))
	cl, err := distmem.NewFabricClient(f, clientAddr, site)
	if err != nil {
		return nil, err
	}
	return &Connector{typ: typ, fabricName: fabricName, nodeAddr: nodeAddr, site: site, client: cl}, nil
}

// NewMargo creates a Margo connector.
func NewMargo(fabricName, nodeAddr, site string) (*Connector, error) {
	return New(TypeMargo, fabricName, nodeAddr, site)
}

// NewUCX creates a UCX connector.
func NewUCX(fabricName, nodeAddr, site string) (*Connector, error) {
	return New(TypeUCX, fabricName, nodeAddr, site)
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return c.typ }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: c.typ, Params: map[string]string{
		"fabric": c.fabricName,
		"node":   c.nodeAddr,
		"site":   c.site,
	}}
}

// Put implements connector.Connector: data is stored on this node's server
// and the key records the node so remote consumers fetch directly.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	id := connector.NewID()
	if err := c.client.Put(ctx, c.nodeAddr, id, data); err != nil {
		return connector.Key{}, err
	}
	return connector.Key{
		ID: id, Type: c.typ, Size: int64(len(data)),
		Attrs: map[string]string{"node": c.nodeAddr, "size": strconv.Itoa(len(data))},
	}, nil
}

func (c *Connector) target(key connector.Key) string {
	if node := key.Attr("node"); node != "" {
		return node
	}
	return c.nodeAddr
}

// Get implements connector.Connector.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	data, ok, err := c.client.Get(ctx, c.target(key), key.ID)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, connector.ErrNotFound
	}
	return data, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(ctx context.Context, key connector.Key) (bool, error) {
	return c.client.Exists(ctx, c.target(key), key.ID)
}

// Evict implements connector.Connector.
func (c *Connector) Evict(ctx context.Context, key connector.Key) error {
	return c.client.Evict(ctx, c.target(key), key.ID)
}

// Close implements connector.Connector. Node servers keep running so other
// connectors (and travelling proxies) can still resolve.
func (c *Connector) Close() error { return c.client.Close() }

func build(cfg connector.Config) (connector.Connector, error) {
	return New(cfg.Type, cfg.Param("fabric", ""), cfg.Param("node", ""), cfg.Param("site", ""))
}

func init() {
	connector.Register(TypeMargo, build)
	connector.Register(TypeUCX, build)
}
