// Package local provides an in-process, in-memory connector. It backs unit
// tests and same-process pipelines; its config names a process-global
// instance so factories resolving in the producing process find the data.
package local

import (
	"context"
	"sync"

	"proxystore/internal/connector"
)

// Type is the registry name of the local connector.
const Type = "local"

var (
	sharedMu sync.Mutex
	shared   = make(map[string]*Connector)
)

// Connector stores byte strings in a process-local map.
//
// A Connector is safe for concurrent use.
type Connector struct {
	name string

	mu      sync.RWMutex
	objects map[string][]byte
	closed  bool
}

// New returns the process-global local connector with the given instance
// name, creating it on first use.
func New(name string) *Connector {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if c, ok := shared[name]; ok {
		return c
	}
	c := &Connector{name: name, objects: make(map[string][]byte)}
	shared[name] = c
	return c
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{"name": c.name}}
}

// Put implements connector.Connector.
func (c *Connector) Put(_ context.Context, data []byte) (connector.Key, error) {
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: int64(len(data))}
	buf := make([]byte, len(data))
	copy(buf, data)
	c.mu.Lock()
	c.objects[key.ID] = buf
	c.mu.Unlock()
	return key, nil
}

// Get implements connector.Connector.
func (c *Connector) Get(_ context.Context, key connector.Key) ([]byte, error) {
	c.mu.RLock()
	data, ok := c.objects[key.ID]
	c.mu.RUnlock()
	if !ok {
		return nil, connector.ErrNotFound
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(_ context.Context, key connector.Key) (bool, error) {
	c.mu.RLock()
	_, ok := c.objects[key.ID]
	c.mu.RUnlock()
	return ok, nil
}

// Evict implements connector.Connector.
func (c *Connector) Evict(_ context.Context, key connector.Key) error {
	c.mu.Lock()
	delete(c.objects, key.ID)
	c.mu.Unlock()
	return nil
}

// Len returns the number of stored objects.
func (c *Connector) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects)
}

// Close implements connector.Connector. The shared instance keeps its data
// so other holders of the same named connector continue to work.
func (c *Connector) Close() error { return nil }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		return New(cfg.Param("name", "default")), nil
	})
}
