// Package local provides an in-process, in-memory connector. It backs unit
// tests and same-process pipelines; its config names a process-global
// instance so factories resolving in the producing process find the data.
//
// Objects are held as chunk lists rather than single contiguous buffers, so
// the streamed path (PutFrom/GetTo) never allocates or copies more than one
// chunk at a time; only the blob Get has to assemble a contiguous result.
package local

import (
	"context"
	"io"
	"sync"

	"proxystore/internal/connector"
)

// Type is the registry name of the local connector.
const Type = "local"

var (
	sharedMu sync.Mutex
	shared   = make(map[string]*Connector)
)

// Connector stores byte strings in a process-local map.
//
// A Connector is safe for concurrent use.
type Connector struct {
	name string

	mu      sync.RWMutex
	objects map[string][][]byte // chunk lists; empty objects hold one empty chunk list
	closed  bool
}

// New returns the process-global local connector with the given instance
// name, creating it on first use.
func New(name string) *Connector {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if c, ok := shared[name]; ok {
		return c
	}
	c := &Connector{name: name, objects: make(map[string][][]byte)}
	shared[name] = c
	return c
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{"name": c.name}}
}

// Put implements connector.Connector.
func (c *Connector) Put(_ context.Context, data []byte) (connector.Key, error) {
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: int64(len(data))}
	buf := make([]byte, len(data))
	copy(buf, data)
	c.mu.Lock()
	c.objects[key.ID] = [][]byte{buf}
	c.mu.Unlock()
	return key, nil
}

// PutFrom implements connector.StreamPutter: the stream is read into
// chunk-size buffers that become the stored representation directly, so no
// contiguous O(object) buffer is ever allocated.
func (c *Connector) PutFrom(_ context.Context, r io.Reader) (connector.Key, error) {
	var chunks [][]byte
	var total int64
	for {
		buf := make([]byte, connector.DefaultChunkSize)
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			chunks = append(chunks, buf[:n:n])
			total += int64(n)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return connector.Key{}, err
		}
	}
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: total}
	c.mu.Lock()
	c.objects[key.ID] = chunks
	c.mu.Unlock()
	return key, nil
}

// Get implements connector.Connector. Assembling the contiguous result is
// the one place the local connector pays O(object); use GetTo to avoid it.
func (c *Connector) Get(_ context.Context, key connector.Key) ([]byte, error) {
	c.mu.RLock()
	chunks, ok := c.objects[key.ID]
	c.mu.RUnlock()
	if !ok {
		return nil, connector.ErrNotFound
	}
	var total int
	for _, ch := range chunks {
		total += len(ch)
	}
	out := make([]byte, 0, total)
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	return out, nil
}

// GetTo implements connector.StreamGetter: stored chunks are written out
// one at a time with no copying or assembly.
func (c *Connector) GetTo(_ context.Context, key connector.Key, w io.Writer) error {
	c.mu.RLock()
	chunks, ok := c.objects[key.ID]
	c.mu.RUnlock()
	if !ok {
		return connector.ErrNotFound
	}
	for _, ch := range chunks {
		if _, err := w.Write(ch); err != nil {
			return err
		}
	}
	return nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(_ context.Context, key connector.Key) (bool, error) {
	c.mu.RLock()
	_, ok := c.objects[key.ID]
	c.mu.RUnlock()
	return ok, nil
}

// Evict implements connector.Connector.
func (c *Connector) Evict(_ context.Context, key connector.Key) error {
	c.mu.Lock()
	delete(c.objects, key.ID)
	c.mu.Unlock()
	return nil
}

// Len returns the number of stored objects.
func (c *Connector) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects)
}

// Close implements connector.Connector. The shared instance keeps its data
// so other holders of the same named connector continue to work.
func (c *Connector) Close() error { return nil }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		return New(cfg.Param("name", "default")), nil
	})
}
