package local

import (
	"context"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
)

func TestConformance(t *testing.T) {
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		return New("conformance")
	}, connectortest.Options{})
}

func TestSharedInstanceByName(t *testing.T) {
	a := New("shared-x")
	b := New("shared-x")
	if a != b {
		t.Fatal("New returned distinct instances for the same name")
	}
	c := New("shared-y")
	if a == c {
		t.Fatal("distinct names shared an instance")
	}
}

func TestPutCopiesInput(t *testing.T) {
	c := New("copy-test")
	ctx := context.Background()
	data := []byte("mutable")
	key, err := c.Put(ctx, data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	data[0] = 'X' // caller mutates its buffer after Put
	got, err := c.Get(ctx, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "mutable" {
		t.Fatalf("stored object aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	again, _ := c.Get(ctx, key)
	if string(again) != "mutable" {
		t.Fatalf("returned buffer aliased stored object: %q", again)
	}
}
