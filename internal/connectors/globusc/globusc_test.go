package globusc

import (
	"bytes"
	"context"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/globus"
	"proxystore/internal/netsim"
)

func setup(t *testing.T) (*Connector, *Connector) {
	t.Helper()
	t.Cleanup(globus.ResetServices)
	n := netsim.Testbed(1000)
	svc := globus.NewService(n)
	if err := svc.RegisterEndpoint("site-a", netsim.SiteMidway2, t.TempDir()); err != nil {
		t.Fatalf("RegisterEndpoint: %v", err)
	}
	if err := svc.RegisterEndpoint("site-b", netsim.SiteTheta, t.TempDir()); err != nil {
		t.Fatalf("RegisterEndpoint: %v", err)
	}
	globus.RegisterService("svc", svc)

	producer, err := New("svc", "site-a", []string{"site-b"})
	if err != nil {
		t.Fatalf("New producer: %v", err)
	}
	consumer, err := New("svc", "site-b", []string{"site-a"})
	if err != nil {
		t.Fatalf("New consumer: %v", err)
	}
	return producer, consumer
}

func TestConformance(t *testing.T) {
	producer, _ := setup(t)
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		return producer
	}, connectortest.Options{SkipConfigRebuild: true})
}

func TestCrossSiteTransfer(t *testing.T) {
	producer, consumer := setup(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	payload := bytes.Repeat([]byte("g"), 100_000)
	key, err := producer.Put(ctx, payload)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if key.Attr("globus_task") == "" {
		t.Fatal("key lacks transfer task id")
	}
	// The consumer's Get waits for the transfer task before reading.
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("transferred object corrupted")
	}
}

func TestBatchPutSingleTransferTask(t *testing.T) {
	producer, consumer := setup(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	blobs := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	keys, err := producer.PutBatch(ctx, blobs)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	// All keys share the same transfer task (one Globus task per batch).
	task := keys[0].Attr("globus_task")
	for i, k := range keys {
		if k.Attr("globus_task") != task {
			t.Fatalf("key %d has different task: %s vs %s", i, k.Attr("globus_task"), task)
		}
	}
	for i, k := range keys {
		got, err := consumer.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("object %d corrupted", i)
		}
	}
}

func TestLocalGetNeedsNoWait(t *testing.T) {
	producer, _ := setup(t)
	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("local read"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The producing site's file is already on disk; Get must not block on
	// the transfer task.
	start := time.Now()
	got, err := producer.Get(ctx, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "local read" {
		t.Fatalf("Get = %q", got)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("local Get took %v; it waited for the transfer", elapsed)
	}
}

// The connector must stream natively, not through the buffering adapter.
var (
	_ connector.StreamPutter = (*Connector)(nil)
	_ connector.StreamGetter = (*Connector)(nil)
)

func TestStreamedCrossSiteTransfer(t *testing.T) {
	producer, consumer := setup(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	payload := bytes.Repeat([]byte("s"), 300_000)
	key, err := producer.PutFrom(ctx, bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("PutFrom: %v", err)
	}
	if key.Size != int64(len(payload)) {
		t.Fatalf("key.Size = %d, want %d", key.Size, len(payload))
	}
	if key.Attr("globus_task") == "" {
		t.Fatal("streamed key lacks transfer task id")
	}
	// GetTo on the remote side waits for the transfer, then streams the
	// endpoint file.
	var got bytes.Buffer
	if err := consumer.GetTo(ctx, key, &got); err != nil {
		t.Fatalf("GetTo: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("streamed object corrupted in cross-site round trip")
	}
	// Evicting everywhere then streaming again reports not-found.
	if err := producer.Evict(ctx, key); err != nil {
		t.Fatalf("producer Evict: %v", err)
	}
	if err := consumer.Evict(ctx, key); err != nil {
		t.Fatalf("consumer Evict: %v", err)
	}
	if err := consumer.GetTo(ctx, key, &got); err != connector.ErrNotFound {
		t.Fatalf("GetTo after evict = %v, want ErrNotFound", err)
	}
}
