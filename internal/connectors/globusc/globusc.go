// Package globusc provides the GlobusConnector: bulk inter-site object
// movement via the (simulated) Globus transfer service (paper §4.2.1).
//
// The connector extends the file model: Put writes the object into the
// local Globus endpoint's directory and submits one transfer task per
// remote endpoint. Keys are the tuple (object_id, task_id); Get waits for
// the transfer task to succeed before reading the file from the local
// endpoint — exactly the proxy-resolution behaviour the paper describes.
// PutBatch moves many objects under a single transfer task (Store's
// proxy_batch). PutFrom/GetTo stream objects through the endpoint
// directory with io.Copy, so large objects never materialize in memory on
// either side.
package globusc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"proxystore/internal/connector"
	"proxystore/internal/globus"
)

// Type is the registry name of the globus connector.
const Type = "globus"

// Connector moves objects between Globus endpoints.
type Connector struct {
	service  string
	svc      *globus.Service
	local    string   // local endpoint UUID
	remotes  []string // all other endpoint UUIDs objects replicate to
	localDir string
}

// New creates a connector using the registered service, homed at the local
// endpoint, transferring puts to each remote endpoint.
func New(serviceName, localEndpoint string, remoteEndpoints []string) (*Connector, error) {
	svc, err := globus.LookupService(serviceName)
	if err != nil {
		return nil, err
	}
	dir, err := svc.EndpointDir(localEndpoint)
	if err != nil {
		return nil, err
	}
	return &Connector{
		service:  serviceName,
		svc:      svc,
		local:    localEndpoint,
		remotes:  append([]string(nil), remoteEndpoints...),
		localDir: dir,
	}, nil
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector. The receiving process's connector
// is homed at ITS local endpoint; the config carries every endpoint and the
// reconstructing side picks its own (here: reconstruction preserves the
// original local, since simulated processes share a file system, and the
// Get path reads whichever endpoint directory is local to the key).
func (c *Connector) Config() connector.Config {
	all, _ := json.Marshal(append([]string{c.local}, c.remotes...))
	return connector.Config{Type: Type, Params: map[string]string{
		"service":   c.service,
		"local":     c.local,
		"endpoints": string(all),
	}}
}

const (
	attrTask = "globus_task"
	attrFile = "globus_file"
)

// Put implements connector.Connector.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	keys, err := c.PutBatch(ctx, [][]byte{data})
	if err != nil {
		return connector.Key{}, err
	}
	return keys[0], nil
}

// PutBatch implements connector.BatchPutter: all objects travel in a single
// transfer task per remote endpoint.
func (c *Connector) PutBatch(_ context.Context, blobs [][]byte) ([]connector.Key, error) {
	files := make([]string, len(blobs))
	keys := make([]connector.Key, len(blobs))
	for i, data := range blobs {
		id := connector.NewID()
		name := id + ".obj"
		if err := os.WriteFile(filepath.Join(c.localDir, name), data, 0o644); err != nil {
			return nil, fmt.Errorf("globusc: writing object file: %w", err)
		}
		files[i] = name
		keys[i] = connector.Key{
			ID: id, Type: Type, Size: int64(len(data)),
			Attrs: map[string]string{attrFile: name},
		}
	}

	// One task per remote endpoint; keys carry the task list so resolving
	// proxies can wait on the right transfer.
	var taskIDs []string
	for _, remote := range c.remotes {
		taskID, err := c.svc.Submit(c.local, remote, files)
		if err != nil {
			return nil, fmt.Errorf("globusc: submitting transfer to %s: %w", remote, err)
		}
		taskIDs = append(taskIDs, taskID)
	}
	joined := strings.Join(taskIDs, ",")
	for i := range keys {
		keys[i] = keys[i].WithAttr(attrTask, joined)
	}
	return keys, nil
}

// Get implements connector.Connector: if the file is not yet present
// locally, wait for the recorded transfer tasks, then read it.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	path, err := c.await(ctx, key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, connector.ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("globusc: reading transferred file: %w", err)
	}
	return data, nil
}

// await blocks until key's file should be present locally (either it
// already is, or its transfer tasks have completed) and returns its path.
func (c *Connector) await(ctx context.Context, key connector.Key) (string, error) {
	name := key.Attr(attrFile)
	if name == "" {
		return "", fmt.Errorf("globusc: key %s lacks file attribute", key)
	}
	path := filepath.Join(c.localDir, name)
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	for _, taskID := range splitTasks(key.Attr(attrTask)) {
		if err := c.svc.Wait(ctx, taskID); err != nil {
			// A failed transfer of a file that no longer exists anywhere
			// means the object was evicted before it replicated.
			if _, statErr := os.Stat(path); errors.Is(statErr, fs.ErrNotExist) {
				return "", connector.ErrNotFound
			}
			return "", err
		}
	}
	return path, nil
}

// PutFrom implements connector.StreamPutter natively: the stream is
// spooled straight into the local endpoint directory with io.Copy — peak
// memory O(copy buffer) instead of the StreamAdapter's O(object) — and
// then replicated with one transfer task per remote endpoint.
func (c *Connector) PutFrom(ctx context.Context, r io.Reader) (connector.Key, error) {
	id := connector.NewID()
	name := id + ".obj"
	path := filepath.Join(c.localDir, name)
	f, err := os.Create(path)
	if err != nil {
		return connector.Key{}, fmt.Errorf("globusc: creating object file: %w", err)
	}
	n, err := io.Copy(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return connector.Key{}, fmt.Errorf("globusc: spooling stream: %w", err)
	}

	var taskIDs []string
	for _, remote := range c.remotes {
		taskID, err := c.svc.Submit(c.local, remote, []string{name})
		if err != nil {
			// The caller never sees the key, so the spooled file would
			// be orphaned on the endpoint; remove it. Already-submitted
			// tasks to other remotes fail or no-op against the gone file.
			os.Remove(path)
			return connector.Key{}, fmt.Errorf("globusc: submitting transfer to %s: %w", remote, err)
		}
		taskIDs = append(taskIDs, taskID)
	}
	key := connector.Key{
		ID: id, Type: Type, Size: n,
		Attrs: map[string]string{attrFile: name},
	}
	if len(taskIDs) > 0 {
		key = key.WithAttr(attrTask, strings.Join(taskIDs, ","))
	}
	return key, nil
}

// GetTo implements connector.StreamGetter natively: wait for the recorded
// transfer tasks, then io.Copy the endpoint file into w.
func (c *Connector) GetTo(ctx context.Context, key connector.Key, w io.Writer) error {
	path, err := c.await(ctx, key)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return connector.ErrNotFound
	}
	if err != nil {
		return fmt.Errorf("globusc: opening transferred file: %w", err)
	}
	defer f.Close()
	if _, err := io.Copy(w, f); err != nil {
		return fmt.Errorf("globusc: streaming transferred file: %w", err)
	}
	return nil
}

// Exists implements connector.Connector (local view).
func (c *Connector) Exists(_ context.Context, key connector.Key) (bool, error) {
	name := key.Attr(attrFile)
	if name == "" {
		return false, nil
	}
	_, err := os.Stat(filepath.Join(c.localDir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Evict implements connector.Connector (local view; remote replicas are
// cleaned up by their own sites' retention).
func (c *Connector) Evict(_ context.Context, key connector.Key) error {
	name := key.Attr(attrFile)
	if name == "" {
		return nil
	}
	err := os.Remove(filepath.Join(c.localDir, name))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Close implements connector.Connector.
func (c *Connector) Close() error { return nil }

func splitTasks(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		var all []string
		if err := json.Unmarshal([]byte(cfg.Param("endpoints", "[]")), &all); err != nil {
			return nil, fmt.Errorf("globusc: decoding endpoints: %w", err)
		}
		local := cfg.Param("local", "")
		var remotes []string
		for _, ep := range all {
			if ep != local {
				remotes = append(remotes, ep)
			}
		}
		return New(cfg.Param("service", ""), local, remotes)
	})
}
