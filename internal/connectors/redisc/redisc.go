// Package redisc provides the RedisConnector: mediated communication
// through a (mini) Redis server (paper §4.1.2). The reference
// implementation is 31 lines of Python; this one is comparably thin over
// the kvstore client, demonstrating the ease of extending the proxy model
// to new mediated channels.
package redisc

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"proxystore/internal/connector"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
)

// Type is the registry name of the redis connector.
const Type = "redis"

// Connector stores objects on a RESP server.
//
// Blob puts store the object under a single server key. Streamed puts
// (PutFrom) shard the object into chunk-size server keys "<id>:<i>" and
// record the shard count in the key's connector.ChunkCountAttr manifest, so
// neither side of the transfer ever holds more than one chunk in memory.
// Sharded reads pipeline up to getWindow chunk fetches so round trips
// overlap instead of paying server latency once per chunk.
type Connector struct {
	addr      string
	client    *kvstore.Client
	chunkSize int
	getWindow int

	// Net-model description, preserved in Config so reconstructed
	// connectors keep the same timing behaviour within one process.
	clientSite string
	serverSite string
}

// Option configures a Connector.
type Option func(*Connector)

// WithSites records the client and server sites; combined with SetNetwork's
// process-global model the client pays modeled WAN delays.
func WithSites(clientSite, serverSite string) Option {
	return func(c *Connector) {
		c.clientSite = clientSite
		c.serverSite = serverSite
	}
}

// sharedNet is the process-global network model used when connectors are
// reconstructed from configs (configs are string maps and cannot carry a
// live *netsim.Network).
var sharedNet *netsim.Network

// SetNetwork installs the process-global network model consulted by
// connectors that carry site labels.
func SetNetwork(n *netsim.Network) { sharedNet = n }

// WithChunkSize overrides the streamed-put shard size in bytes.
func WithChunkSize(n int) Option {
	return func(c *Connector) {
		if n > 0 {
			c.chunkSize = n
		}
	}
}

// DefaultGetWindow is the default bound on concurrent in-flight chunk
// fetches during sharded reads. It matches the client's connection pool, so
// the window fills the pool without queueing on it.
const DefaultGetWindow = 4

// WithGetWindow bounds concurrent chunk fetches during sharded reads;
// n == 1 restores sequential per-chunk round trips. n <= 0 is ignored,
// keeping the default (so configs that omit the parameter rebuild with
// DefaultGetWindow).
func WithGetWindow(n int) Option {
	return func(c *Connector) {
		if n > 0 {
			c.getWindow = n
		}
	}
}

// New returns a connector talking to the RESP server at addr.
func New(addr string, opts ...Option) *Connector {
	c := &Connector{addr: addr, chunkSize: connector.DefaultChunkSize, getWindow: DefaultGetWindow}
	for _, o := range opts {
		o(c)
	}
	var copts []kvstore.ClientOption
	if sharedNet != nil && c.clientSite != "" {
		copts = append(copts, kvstore.WithClientNetwork(sharedNet, c.clientSite, c.serverSite))
	}
	c.client = kvstore.NewClient(addr, copts...)
	return c
}

// Client exposes the underlying kvstore client (for diagnostics).
func (c *Connector) Client() *kvstore.Client { return c.client }

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{
		"addr":        c.addr,
		"client_site": c.clientSite,
		"server_site": c.serverSite,
		"chunk_size":  strconv.Itoa(c.chunkSize),
		"get_window":  strconv.Itoa(c.getWindow),
	}}
}

func chunkKey(id string, i int) string { return id + ":" + strconv.Itoa(i) }

// chunkKeys lists every server key holding a shard of key's object, or nil
// for blob-stored objects.
func chunkKeys(key connector.Key) []string {
	n := key.ChunkCount()
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = chunkKey(key.ID, i)
	}
	return out
}

// Put implements connector.Connector.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: int64(len(data))}
	if err := c.client.Set(ctx, key.ID, data); err != nil {
		return connector.Key{}, err
	}
	return key, nil
}

// PutFrom implements connector.StreamPutter: the stream is sharded into
// chunk-size server keys as it is read, so at most one chunk is buffered
// client-side. The returned key carries the shard manifest in
// connector.ChunkCountAttr.
func (c *Connector) PutFrom(ctx context.Context, r io.Reader) (connector.Key, error) {
	id := connector.NewID()
	var total int64
	chunks := 0
	buf := make([]byte, c.chunkSize)
	for {
		n, rerr := io.ReadFull(r, buf)
		// Always write chunk 0, even for empty objects, so Exists and Evict
		// have a server key to anchor on.
		if n > 0 || chunks == 0 {
			if err := c.client.Set(ctx, chunkKey(id, chunks), buf[:n]); err != nil {
				c.evictChunks(ctx, id, chunks)
				return connector.Key{}, fmt.Errorf("redisc: storing chunk %d: %w", chunks, err)
			}
			chunks++
			total += int64(n)
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			c.evictChunks(ctx, id, chunks)
			return connector.Key{}, fmt.Errorf("redisc: reading stream: %w", rerr)
		}
	}
	return connector.Key{
		ID: id, Type: Type, Size: total,
		Attrs: map[string]string{connector.ChunkCountAttr: strconv.Itoa(chunks)},
	}, nil
}

// evictChunks removes shards written by a failed PutFrom. The cleanup runs
// on a cancellation-detached context: when the failure was the caller's
// ctx being canceled, the Dels must still go through or the orphaned
// shards leak on the server forever.
func (c *Connector) evictChunks(ctx context.Context, id string, n int) {
	ctx = context.WithoutCancel(ctx)
	for i := 0; i < n; i++ {
		c.client.Del(ctx, chunkKey(id, i))
	}
}

// Get implements connector.Connector, reassembling sharded objects with
// pipelined chunk fetches.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	shards := chunkKeys(key)
	if shards == nil {
		data, ok, err := c.client.Get(ctx, key.ID)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, connector.ErrNotFound
		}
		return data, nil
	}
	out := make([]byte, 0, key.Size)
	err := c.forEachShard(ctx, shards, func(_ int, data []byte) error {
		out = append(out, data...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetTo implements connector.StreamGetter: chunk fetches are pipelined up
// to the get window, but writes land in order, so client-resident memory
// stays O(window × chunk).
func (c *Connector) GetTo(ctx context.Context, key connector.Key, w io.Writer) error {
	shards := chunkKeys(key)
	if shards == nil {
		data, ok, err := c.client.Get(ctx, key.ID)
		if err != nil {
			return err
		}
		if !ok {
			return connector.ErrNotFound
		}
		_, err = w.Write(data)
		return err
	}
	return c.forEachShard(ctx, shards, func(_ int, data []byte) error {
		_, err := w.Write(data)
		return err
	})
}

// forEachShard fetches every shard key, keeping up to getWindow fetches in
// flight to overlap server round trips, and delivers results to fn in
// shard order. A missing shard fails with ErrNotFound; the first error
// cancels outstanding fetches.
func (c *Connector) forEachShard(ctx context.Context, shards []string, fn func(i int, data []byte) error) error {
	window := c.getWindow
	if window < 1 {
		window = 1
	}
	if window == 1 || len(shards) == 1 {
		for i, sk := range shards {
			data, ok, err := c.client.Get(ctx, sk)
			if err != nil {
				return err
			}
			if !ok {
				return connector.ErrNotFound
			}
			if err := fn(i, data); err != nil {
				return err
			}
		}
		return nil
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		data []byte
		err  error
	}
	// Each shard gets a 1-buffered channel so fetchers never block on
	// delivery; the semaphore bounds in-flight fetches.
	results := make([]chan result, len(shards))
	for i := range results {
		results[i] = make(chan result, 1)
	}
	// The semaphore is acquired at launch and released only after the
	// shard's bytes are delivered to fn, so fetched-but-unconsumed chunks
	// count against the window too: resident memory is O(window × chunk).
	// Shards launch in order, so the next shard the consumer needs is
	// always among the in-flight window — no deadlock.
	sem := make(chan struct{}, window)
	go func() {
		for i, sk := range shards {
			select {
			case sem <- struct{}{}:
			case <-fctx.Done():
				return
			}
			go func(i int, sk string) {
				data, ok, err := c.client.Get(fctx, sk)
				if err == nil && !ok {
					err = connector.ErrNotFound
				}
				results[i] <- result{data: data, err: err}
			}(i, sk)
		}
	}()
	for i := range shards {
		select {
		case res := <-results[i]:
			if res.err != nil {
				return res.err
			}
			if err := fn(i, res.data); err != nil {
				return err
			}
			<-sem
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// PutBatch implements connector.BatchPutter: all objects land in a single
// MSET round trip.
func (c *Connector) PutBatch(ctx context.Context, blobs [][]byte) ([]connector.Key, error) {
	if len(blobs) == 0 {
		return nil, nil // MSET with zero pairs is a protocol error
	}
	pairs := make(map[string][]byte, len(blobs))
	keys := make([]connector.Key, len(blobs))
	for i, data := range blobs {
		keys[i] = connector.Key{ID: connector.NewID(), Type: Type, Size: int64(len(data))}
		pairs[keys[i].ID] = data
	}
	if err := c.client.MSet(ctx, pairs); err != nil {
		return nil, fmt.Errorf("redisc: batch put: %w", err)
	}
	return keys, nil
}

// GetBatch implements connector.BatchGetter: blob-stored objects are
// fetched in a single MGET round trip; sharded objects fall back to the
// streaming reassembly path.
func (c *Connector) GetBatch(ctx context.Context, keys []connector.Key) ([][]byte, error) {
	out := make([][]byte, len(keys))
	ids := make([]string, 0, len(keys))
	idx := make([]int, 0, len(keys))
	for i, k := range keys {
		if k.ChunkCount() > 0 {
			data, err := c.Get(ctx, k)
			if err != nil {
				return nil, err
			}
			out[i] = data
			continue
		}
		ids = append(ids, k.ID)
		idx = append(idx, i)
	}
	if len(ids) > 0 {
		vals, err := c.client.MGet(ctx, ids...)
		if err != nil {
			return nil, fmt.Errorf("redisc: batch get: %w", err)
		}
		for j, v := range vals {
			if v == nil {
				return nil, fmt.Errorf("redisc: batch get %s: %w", ids[j], connector.ErrNotFound)
			}
			out[idx[j]] = v
		}
	}
	return out, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(ctx context.Context, key connector.Key) (bool, error) {
	anchor := key.ID
	if key.ChunkCount() > 0 {
		anchor = chunkKey(key.ID, 0)
	}
	n, err := c.client.Exists(ctx, anchor)
	if err != nil {
		return false, err
	}
	return n > 0, nil
}

// Evict implements connector.Connector, removing every shard.
func (c *Connector) Evict(ctx context.Context, key connector.Key) error {
	targets := chunkKeys(key)
	if targets == nil {
		targets = []string{key.ID}
	}
	_, err := c.client.Del(ctx, targets...)
	return err
}

// Close implements connector.Connector. Server-side objects persist.
func (c *Connector) Close() error { return c.client.Close() }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		chunk, _ := strconv.Atoi(cfg.Param("chunk_size", "0"))
		window, _ := strconv.Atoi(cfg.Param("get_window", "0"))
		return New(cfg.Param("addr", "127.0.0.1:6379"),
			WithSites(cfg.Param("client_site", ""), cfg.Param("server_site", "")),
			WithChunkSize(chunk), WithGetWindow(window)), nil
	})
}
