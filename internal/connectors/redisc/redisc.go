// Package redisc provides the RedisConnector: mediated communication
// through a (mini) Redis server (paper §4.1.2). The reference
// implementation is 31 lines of Python; this one is comparably thin over
// the kvstore client, demonstrating the ease of extending the proxy model
// to new mediated channels.
package redisc

import (
	"context"

	"proxystore/internal/connector"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
)

// Type is the registry name of the redis connector.
const Type = "redis"

// Connector stores objects on a RESP server.
type Connector struct {
	addr   string
	client *kvstore.Client

	// Net-model description, preserved in Config so reconstructed
	// connectors keep the same timing behaviour within one process.
	clientSite string
	serverSite string
}

// Option configures a Connector.
type Option func(*Connector)

// WithSites records the client and server sites; combined with SetNetwork's
// process-global model the client pays modeled WAN delays.
func WithSites(clientSite, serverSite string) Option {
	return func(c *Connector) {
		c.clientSite = clientSite
		c.serverSite = serverSite
	}
}

// sharedNet is the process-global network model used when connectors are
// reconstructed from configs (configs are string maps and cannot carry a
// live *netsim.Network).
var sharedNet *netsim.Network

// SetNetwork installs the process-global network model consulted by
// connectors that carry site labels.
func SetNetwork(n *netsim.Network) { sharedNet = n }

// New returns a connector talking to the RESP server at addr.
func New(addr string, opts ...Option) *Connector {
	c := &Connector{addr: addr}
	for _, o := range opts {
		o(c)
	}
	var copts []kvstore.ClientOption
	if sharedNet != nil && c.clientSite != "" {
		copts = append(copts, kvstore.WithClientNetwork(sharedNet, c.clientSite, c.serverSite))
	}
	c.client = kvstore.NewClient(addr, copts...)
	return c
}

// Client exposes the underlying kvstore client (for diagnostics).
func (c *Connector) Client() *kvstore.Client { return c.client }

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{
		"addr":        c.addr,
		"client_site": c.clientSite,
		"server_site": c.serverSite,
	}}
}

// Put implements connector.Connector.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	key := connector.Key{ID: connector.NewID(), Type: Type, Size: int64(len(data))}
	if err := c.client.Set(ctx, key.ID, data); err != nil {
		return connector.Key{}, err
	}
	return key, nil
}

// Get implements connector.Connector.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	data, ok, err := c.client.Get(ctx, key.ID)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, connector.ErrNotFound
	}
	return data, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(ctx context.Context, key connector.Key) (bool, error) {
	n, err := c.client.Exists(ctx, key.ID)
	if err != nil {
		return false, err
	}
	return n > 0, nil
}

// Evict implements connector.Connector.
func (c *Connector) Evict(ctx context.Context, key connector.Key) error {
	_, err := c.client.Del(ctx, key.ID)
	return err
}

// Close implements connector.Connector. Server-side objects persist.
func (c *Connector) Close() error { return c.client.Close() }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		return New(cfg.Param("addr", "127.0.0.1:6379"),
			WithSites(cfg.Param("client_site", ""), cfg.Param("server_site", ""))), nil
	})
}
