package redisc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
)

func newServer(t *testing.T) *kvstore.Server {
	t.Helper()
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestConformance(t *testing.T) {
	srv := newServer(t)
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		return New(srv.Addr())
	}, connectortest.Options{})
}

func TestObjectsSharedAcrossConnectors(t *testing.T) {
	srv := newServer(t)
	producer := New(srv.Addr())
	defer producer.Close()
	consumer := New(srv.Addr())
	defer consumer.Close()

	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("mediated"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if string(got) != "mediated" {
		t.Fatalf("consumer Get = %q", got)
	}
}

func TestConfigCarriesSites(t *testing.T) {
	c := New("127.0.0.1:1", WithSites("midway2-login", "theta"))
	defer c.Close()
	cfg := c.Config()
	if cfg.Param("client_site", "") != "midway2-login" || cfg.Param("server_site", "") != "theta" {
		t.Fatalf("Config = %v", cfg.Params)
	}
}

func TestShardedGetWindows(t *testing.T) {
	// The pipelined path must reassemble shards in order for every window
	// size, including mid-stream missing shards surfacing ErrNotFound.
	srv := newServer(t)
	ctx := context.Background()
	const chunk = 1 << 10
	payload := make([]byte, 10*chunk+37)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for _, window := range []int{1, 2, 4, 8} {
		c := New(srv.Addr(), WithChunkSize(chunk), WithGetWindow(window))
		key, err := c.PutFrom(ctx, bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("window %d: PutFrom: %v", window, err)
		}
		got, err := c.Get(ctx, key)
		if err != nil {
			t.Fatalf("window %d: Get: %v", window, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("window %d: sharded object reassembled out of order", window)
		}
		var buf bytes.Buffer
		if err := c.GetTo(ctx, key, &buf); err != nil {
			t.Fatalf("window %d: GetTo: %v", window, err)
		}
		if !bytes.Equal(buf.Bytes(), payload) {
			t.Fatalf("window %d: GetTo reassembled out of order", window)
		}
		// Punch a hole mid-object: the pipelined read must fail NotFound.
		cli := kvstore.NewClient(srv.Addr())
		if _, err := cli.Del(ctx, key.ID+":5"); err != nil {
			t.Fatalf("Del: %v", err)
		}
		cli.Close()
		if _, err := c.Get(ctx, key); !errors.Is(err, connector.ErrNotFound) {
			t.Fatalf("window %d: Get with missing shard = %v, want ErrNotFound", window, err)
		}
		c.Close()
	}
}

// benchShardedGet measures sharded reads with the given in-flight window
// over a WAN-shaped link (netsim cloud↔edge, heavily time-compressed): the
// sequential-vs-pipelined delta is the round-trip overlap win that
// motivates the window. On a zero-latency loopback the window only adds
// goroutine overhead — the option exists for the federated regime.
func benchShardedGet(b *testing.B, window int) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	SetNetwork(netsim.Testbed(5000))
	defer SetNetwork(nil)
	c := New(srv.Addr(), WithChunkSize(64<<10), WithGetWindow(window),
		WithSites(netsim.SiteEdge, netsim.SiteCloud))
	defer c.Close()
	ctx := context.Background()
	payload := make([]byte, 4<<20) // 64 shards
	key, err := c.PutFrom(ctx, bytes.NewReader(payload))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.GetTo(ctx, key, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedGetSequential(b *testing.B) { benchShardedGet(b, 1) }
func BenchmarkShardedGetPipelined(b *testing.B)  { benchShardedGet(b, 4) }
