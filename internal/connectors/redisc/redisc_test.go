package redisc

import (
	"context"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/kvstore"
)

func newServer(t *testing.T) *kvstore.Server {
	t.Helper()
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestConformance(t *testing.T) {
	srv := newServer(t)
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		return New(srv.Addr())
	}, connectortest.Options{})
}

func TestObjectsSharedAcrossConnectors(t *testing.T) {
	srv := newServer(t)
	producer := New(srv.Addr())
	defer producer.Close()
	consumer := New(srv.Addr())
	defer consumer.Close()

	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("mediated"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if string(got) != "mediated" {
		t.Fatalf("consumer Get = %q", got)
	}
}

func TestConfigCarriesSites(t *testing.T) {
	c := New("127.0.0.1:1", WithSites("midway2-login", "theta"))
	defer c.Close()
	cfg := c.Config()
	if cfg.Param("client_site", "") != "midway2-login" || cfg.Param("server_site", "") != "theta" {
		t.Fatalf("Config = %v", cfg.Params)
	}
}
