package multi

import (
	"context"
	"errors"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/connectors/local"
)

func newMulti(t *testing.T) *Connector {
	t.Helper()
	c, err := New(
		Child{
			Name:      "small",
			Connector: local.New("multi-small"),
			Policy:    Policy{MaxSize: 1024, Priority: 10, Tags: []string{"intra-site"}},
		},
		Child{
			Name:      "large",
			Connector: local.New("multi-large"),
			Policy:    Policy{MinSize: 1025, Priority: 10, Tags: []string{"intra-site", "bulk"}},
		},
		Child{
			Name:      "fallback",
			Connector: local.New("multi-fallback"),
			Policy:    Policy{Priority: -1},
		},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConformance(t *testing.T) {
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		return newMulti(t)
	}, connectortest.Options{})
}

func TestRoutesBySize(t *testing.T) {
	c := newMulti(t)
	ctx := context.Background()

	smallKey, err := c.Put(ctx, make([]byte, 100))
	if err != nil {
		t.Fatalf("Put small: %v", err)
	}
	if got := smallKey.Attr("multi_child"); got != "small" {
		t.Fatalf("small object routed to %q", got)
	}

	largeKey, err := c.Put(ctx, make([]byte, 10_000))
	if err != nil {
		t.Fatalf("Put large: %v", err)
	}
	if got := largeKey.Attr("multi_child"); got != "large" {
		t.Fatalf("large object routed to %q", got)
	}
}

func TestTagConstraints(t *testing.T) {
	c := newMulti(t)
	ctx := context.Background()
	key, err := c.PutTagged(ctx, make([]byte, 2000), []string{"bulk"})
	if err != nil {
		t.Fatalf("PutTagged: %v", err)
	}
	if got := key.Attr("multi_child"); got != "large" {
		t.Fatalf("bulk-tagged object routed to %q", got)
	}
}

func TestUnmatchedTagFallsBack(t *testing.T) {
	c := newMulti(t)
	// "persistent" matches no tagged policy; the untagged fallback (whose
	// policy has no tags) does not satisfy a required tag either, so this
	// must error.
	_, err := c.PutTagged(context.Background(), make([]byte, 10), []string{"persistent"})
	if !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("PutTagged = %v, want ErrNoPolicy", err)
	}
}

func TestNoPolicyError(t *testing.T) {
	c, err := New(Child{
		Name:      "tiny-only",
		Connector: local.New("multi-tiny"),
		Policy:    Policy{MaxSize: 10},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Put(context.Background(), make([]byte, 100)); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("Put = %v, want ErrNoPolicy", err)
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	c, err := New(
		Child{Name: "low", Connector: local.New("prio-low"), Policy: Policy{Priority: 1}},
		Child{Name: "high", Connector: local.New("prio-high"), Policy: Policy{Priority: 5}},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	key, err := c.Put(context.Background(), []byte("x"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := key.Attr("multi_child"); got != "high" {
		t.Fatalf("object routed to %q, want high-priority child", got)
	}
}

func TestDuplicateChildNamesRejected(t *testing.T) {
	_, err := New(
		Child{Name: "dup", Connector: local.New("dup-a")},
		Child{Name: "dup", Connector: local.New("dup-b")},
	)
	if err == nil {
		t.Fatal("New accepted duplicate child names")
	}
}

func TestGetRoutesToStoringChild(t *testing.T) {
	c := newMulti(t)
	ctx := context.Background()
	key, err := c.Put(ctx, make([]byte, 50))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The object must only live on the chosen child.
	small := local.New("multi-small")
	if small.Len() == 0 {
		t.Fatal("small child holds no objects")
	}
	got, err := c.Get(ctx, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(got) != 50 {
		t.Fatalf("Get returned %d bytes", len(got))
	}
}

func TestKeyWithoutRoutingAttr(t *testing.T) {
	c := newMulti(t)
	_, err := c.Get(context.Background(), connector.Key{ID: "x", Type: Type})
	if err == nil {
		t.Fatal("Get accepted key without routing attribute")
	}
}

func TestPolicyMatches(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		size int64
		tags []string
		want bool
	}{
		{"zero matches all", Policy{}, 123, nil, true},
		{"below min", Policy{MinSize: 10}, 5, nil, false},
		{"above max", Policy{MaxSize: 10}, 11, nil, false},
		{"in range", Policy{MinSize: 10, MaxSize: 20}, 15, nil, true},
		{"has tag", Policy{Tags: []string{"a", "b"}}, 1, []string{"a"}, true},
		{"missing tag", Policy{Tags: []string{"a"}}, 1, []string{"z"}, false},
		{"multiple required", Policy{Tags: []string{"a", "b"}}, 1, []string{"a", "b"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Matches(tc.size, tc.tags); got != tc.want {
				t.Fatalf("Matches(%d, %v) = %v, want %v", tc.size, tc.tags, got, tc.want)
			}
		})
	}
}
