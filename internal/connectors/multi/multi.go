// Package multi implements the MultiConnector abstraction (paper §4.3): a
// connector composed of other connectors, each guarded by a Policy, so a
// single Store can route objects to the most suitable mediated channel.
//
// On Put, the object's size and the caller's constraints are matched against
// every policy; among matches the highest-priority connector wins. Keys
// remember which child stored the object, so Get/Exists/Evict route without
// re-evaluating policies.
package multi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"proxystore/internal/connector"
)

// Type is the registry name of the multi connector.
const Type = "multi"

const childAttr = "multi_child"

// Policy describes when a child connector is eligible to store an object.
// The zero Policy matches everything with priority 0.
type Policy struct {
	// MinSize and MaxSize bound eligible object sizes in bytes; zero means
	// unbounded on that side.
	MinSize int64 `json:"min_size,omitempty"`
	MaxSize int64 `json:"max_size,omitempty"`
	// Tags are site/capability labels (e.g. "intra-site", "persistent").
	// A constraint tag matches only connectors whose policy carries it.
	Tags []string `json:"tags,omitempty"`
	// Priority breaks ties among matching connectors; higher wins.
	Priority int `json:"priority,omitempty"`
}

// Matches reports whether an object of the given size with the given
// required tags is eligible under the policy.
func (p Policy) Matches(size int64, required []string) bool {
	if p.MinSize > 0 && size < p.MinSize {
		return false
	}
	if p.MaxSize > 0 && size > p.MaxSize {
		return false
	}
	for _, want := range required {
		found := false
		for _, have := range p.Tags {
			if want == have {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Child pairs a connector with its policy under a stable name.
type Child struct {
	Name      string
	Connector connector.Connector
	Policy    Policy
}

// Connector routes operations across children by policy.
//
// A Connector is safe for concurrent use.
type Connector struct {
	mu       sync.RWMutex
	children []Child

	// constraints for the next Put, set via PutConstraints wrapper.
}

// New builds a MultiConnector from children. Child names must be unique.
func New(children ...Child) (*Connector, error) {
	seen := make(map[string]bool, len(children))
	for _, ch := range children {
		if ch.Name == "" {
			return nil, fmt.Errorf("multi: child with empty name")
		}
		if ch.Connector == nil {
			return nil, fmt.Errorf("multi: child %q has nil connector", ch.Name)
		}
		if seen[ch.Name] {
			return nil, fmt.Errorf("multi: duplicate child name %q", ch.Name)
		}
		seen[ch.Name] = true
	}
	c := &Connector{children: append([]Child(nil), children...)}
	// Stable priority order: higher priority first, then insertion order.
	sort.SliceStable(c.children, func(i, j int) bool {
		return c.children[i].Policy.Priority > c.children[j].Policy.Priority
	})
	return c, nil
}

// Children returns the children in routing order.
func (c *Connector) Children() []Child {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Child(nil), c.children...)
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector. The config embeds each child's
// config and policy as JSON so consumer processes can rebuild the router.
func (c *Connector) Config() connector.Config {
	c.mu.RLock()
	defer c.mu.RUnlock()
	specs := make([]childSpec, len(c.children))
	for i, ch := range c.children {
		specs[i] = childSpec{Name: ch.Name, Config: ch.Connector.Config(), Policy: ch.Policy}
	}
	blob, err := json.Marshal(specs)
	if err != nil {
		// Child configs are plain string maps; marshaling cannot fail.
		panic(fmt.Sprintf("multi: marshaling child specs: %v", err))
	}
	return connector.Config{Type: Type, Params: map[string]string{"children": string(blob)}}
}

type childSpec struct {
	Name   string           `json:"name"`
	Config connector.Config `json:"config"`
	Policy Policy           `json:"policy"`
}

// ErrNoPolicy is returned when no child's policy matches an object.
// Deployments that want a catch-all should add a low-priority child with a
// zero policy.
var ErrNoPolicy = fmt.Errorf("multi: no connector policy matches object")

func (c *Connector) route(size int64, tags []string) (Child, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ch := range c.children { // already in priority order
		if ch.Policy.Matches(size, tags) {
			return ch, nil
		}
	}
	return Child{}, fmt.Errorf("%w (size=%d tags=%v)", ErrNoPolicy, size, tags)
}

func (c *Connector) child(name string) (Child, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ch := range c.children {
		if ch.Name == name {
			return ch, nil
		}
	}
	return Child{}, fmt.Errorf("multi: key references unknown child %q", name)
}

// Put implements connector.Connector, routing by size with no tag
// constraints. Use PutTagged to constrain placement.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	return c.PutTagged(ctx, data, nil)
}

// PutTagged stores data on the highest-priority child whose policy matches
// the object's size and carries every required tag.
func (c *Connector) PutTagged(ctx context.Context, data []byte, tags []string) (connector.Key, error) {
	ch, err := c.route(int64(len(data)), tags)
	if err != nil {
		return connector.Key{}, err
	}
	key, err := ch.Connector.Put(ctx, data)
	if err != nil {
		return connector.Key{}, fmt.Errorf("multi: put via %q: %w", ch.Name, err)
	}
	key = key.WithAttr(childAttr, ch.Name)
	key.Type = Type // the key's producing connector is the router itself
	return key, nil
}

// probeLimit returns the largest finite size bound appearing in any child
// policy. Streams longer than this route identically to any larger size, so
// PutFrom never needs to buffer more than probeLimit+1 bytes to route.
func (c *Connector) probeLimit() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var limit int64
	for _, ch := range c.children {
		if ch.Policy.MinSize > limit {
			limit = ch.Policy.MinSize
		}
		if ch.Policy.MaxSize > limit {
			limit = ch.Policy.MaxSize
		}
	}
	return limit
}

// PutFrom implements connector.StreamPutter, routing by size without
// materializing the stream.
func (c *Connector) PutFrom(ctx context.Context, r io.Reader) (connector.Key, error) {
	return c.PutFromTagged(ctx, r, nil)
}

// PutFromTagged streams data to the highest-priority child whose policy
// matches. Size-based routing works on chunk counts rather than a
// materialized buffer: chunks are read only until the stream either ends
// (exact size known) or provably exceeds every finite policy bound, at
// which point the buffered head plus the remaining stream are forwarded to
// the chosen child's streaming path.
func (c *Connector) PutFromTagged(ctx context.Context, r io.Reader, tags []string) (connector.Key, error) {
	probe := c.probeLimit()
	// The peeked head is kept as a chunk list, never one contiguous buffer,
	// so no O(probe) allocation or copy happens even under policies with
	// large finite bounds (total spooled bytes are still capped at probe+1;
	// bounds are routing decisions and must be observed before routing).
	var head [][]byte
	var size int64
	eof := false
	for size <= probe {
		want := int64(connector.DefaultChunkSize)
		if rem := probe + 1 - size; rem < want {
			want = rem
		}
		buf := make([]byte, want)
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			head = append(head, buf[:n:n])
			size += int64(n)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			eof = true
			break
		}
		if err != nil {
			return connector.Key{}, fmt.Errorf("multi: reading stream: %w", err)
		}
	}
	// When the stream outlives the probe, size now exceeds every finite
	// bound, so it routes like any "large" object.
	ch, err := c.route(size, tags)
	if err != nil {
		return connector.Key{}, err
	}
	readers := make([]io.Reader, 0, len(head)+1)
	for _, chunk := range head {
		readers = append(readers, bytes.NewReader(chunk))
	}
	if !eof {
		readers = append(readers, r)
	}
	src := io.MultiReader(readers...)
	key, err := connector.PutFrom(ctx, ch.Connector, src)
	if err != nil {
		return connector.Key{}, fmt.Errorf("multi: stream put via %q: %w", ch.Name, err)
	}
	key = key.WithAttr(childAttr, ch.Name)
	key.Type = Type
	return key, nil
}

// GetTo implements connector.StreamGetter, dispatching to the child that
// stored the object and using its native streaming path when present.
func (c *Connector) GetTo(ctx context.Context, key connector.Key, w io.Writer) error {
	ch, err := c.dispatch(key)
	if err != nil {
		return err
	}
	return connector.GetTo(ctx, ch.Connector, key, w)
}

// PutBatch implements connector.BatchPutter: items are routed individually
// by size, then stored with one backend batch operation per child.
func (c *Connector) PutBatch(ctx context.Context, blobs [][]byte) ([]connector.Key, error) {
	groups := make(map[string][]int)
	byName := make(map[string]Child)
	for i, b := range blobs {
		ch, err := c.route(int64(len(b)), nil)
		if err != nil {
			return nil, err
		}
		groups[ch.Name] = append(groups[ch.Name], i)
		byName[ch.Name] = ch
	}
	keys := make([]connector.Key, len(blobs))
	for name, idx := range groups {
		ch := byName[name]
		sub := make([][]byte, len(idx))
		for j, i := range idx {
			sub[j] = blobs[i]
		}
		got, err := connector.Stream(ch.Connector).PutBatch(ctx, sub)
		if err != nil {
			return nil, fmt.Errorf("multi: batch put via %q: %w", name, err)
		}
		for j, i := range idx {
			k := got[j].WithAttr(childAttr, name)
			k.Type = Type
			keys[i] = k
		}
	}
	return keys, nil
}

// GetBatch implements connector.BatchGetter: keys are grouped by the child
// that stored them and fetched with one backend batch operation per child.
func (c *Connector) GetBatch(ctx context.Context, keys []connector.Key) ([][]byte, error) {
	groups := make(map[string][]int)
	byName := make(map[string]Child)
	for i, k := range keys {
		ch, err := c.dispatch(k)
		if err != nil {
			return nil, err
		}
		groups[ch.Name] = append(groups[ch.Name], i)
		byName[ch.Name] = ch
	}
	out := make([][]byte, len(keys))
	for name, idx := range groups {
		ch := byName[name]
		sub := make([]connector.Key, len(idx))
		for j, i := range idx {
			sub[j] = keys[i]
		}
		got, err := connector.Stream(ch.Connector).GetBatch(ctx, sub)
		if err != nil {
			return nil, fmt.Errorf("multi: batch get via %q: %w", name, err)
		}
		for j, i := range idx {
			out[i] = got[j]
		}
	}
	return out, nil
}

func (c *Connector) dispatch(key connector.Key) (Child, error) {
	name := key.Attr(childAttr)
	if name == "" {
		return Child{}, fmt.Errorf("multi: key %s lacks child routing attribute", key)
	}
	return c.child(name)
}

// Get implements connector.Connector.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	ch, err := c.dispatch(key)
	if err != nil {
		return nil, err
	}
	return ch.Connector.Get(ctx, key)
}

// Exists implements connector.Connector.
func (c *Connector) Exists(ctx context.Context, key connector.Key) (bool, error) {
	ch, err := c.dispatch(key)
	if err != nil {
		return false, err
	}
	return ch.Connector.Exists(ctx, key)
}

// Evict implements connector.Connector.
func (c *Connector) Evict(ctx context.Context, key connector.Key) error {
	ch, err := c.dispatch(key)
	if err != nil {
		return err
	}
	return ch.Connector.Evict(ctx, key)
}

// Close implements connector.Connector, closing every child and returning
// the first error encountered.
func (c *Connector) Close() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var first error
	for _, ch := range c.children {
		if err := ch.Connector.Close(); err != nil && first == nil {
			first = fmt.Errorf("multi: closing %q: %w", ch.Name, err)
		}
	}
	return first
}

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		var specs []childSpec
		if err := json.Unmarshal([]byte(cfg.Param("children", "[]")), &specs); err != nil {
			return nil, fmt.Errorf("multi: decoding child specs: %w", err)
		}
		children := make([]Child, len(specs))
		for i, sp := range specs {
			conn, err := connector.FromConfig(sp.Config)
			if err != nil {
				return nil, fmt.Errorf("multi: rebuilding child %q: %w", sp.Name, err)
			}
			children[i] = Child{Name: sp.Name, Connector: conn, Policy: sp.Policy}
		}
		return New(children...)
	})
}
