// Package zmqc provides the ZMQ connector: distributed in-memory storage
// over framed TCP messaging, the compatibility fallback among the paper's
// distributed in-memory connectors (§4.1.3). Unlike the fabric connectors
// it runs over real sockets, so it works wherever TCP does.
package zmqc

import (
	"context"
	"strconv"
	"sync"

	"proxystore/internal/connector"
	"proxystore/internal/distmem"
	"proxystore/internal/netsim"
)

// Type is the registry name of the zmq connector.
const Type = "zmq"

var (
	serversMu sync.Mutex
	servers   = make(map[string]*distmem.TCPServer) // by logical node name
)

// sharedNet mirrors redisc: configs cannot carry a live network model, so
// connectors consult a process-global one.
var sharedNet *netsim.Network

// SetNetwork installs the process-global network model.
func SetNetwork(n *netsim.Network) { sharedNet = n }

// StartNodeServer spawns (or returns) the storage server for a logical
// node, listening on an ephemeral loopback port.
func StartNodeServer(node string) (*distmem.TCPServer, error) {
	serversMu.Lock()
	defer serversMu.Unlock()
	if s, ok := servers[node]; ok {
		return s, nil
	}
	s, err := distmem.StartTCPServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	servers[node] = s
	return s, nil
}

// ResetServers stops all node servers. For tests.
func ResetServers() {
	serversMu.Lock()
	defer serversMu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	servers = make(map[string]*distmem.TCPServer)
}

// Connector stores objects on per-node TCP storage servers.
type Connector struct {
	node   string
	site   string
	addr   string // this node's server address
	client *distmem.TCPClient
}

// New creates a connector homed at the logical node (spawning its server on
// first use) located at the given netsim site.
func New(node, site string) (*Connector, error) {
	srv, err := StartNodeServer(node)
	if err != nil {
		return nil, err
	}
	// Servers all listen on loopback; cross-site timing is modeled per-get
	// from the producing key's site to this connector's site (see Get), so
	// the raw msgnet client needs no shaping of its own.
	c := &Connector{node: node, site: site, addr: srv.Addr(), client: distmem.NewTCPClient()}
	return c, nil
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{
		"node": c.node,
		"site": c.site,
	}}
}

func (c *Connector) delay(ctx context.Context, producerSite string, size int) error {
	if sharedNet == nil || c.site == "" || producerSite == "" {
		return nil
	}
	return sharedNet.Delay(ctx, c.site, producerSite, size)
}

// Put implements connector.Connector.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	id := connector.NewID()
	if err := c.client.Put(ctx, c.addr, id, data); err != nil {
		return connector.Key{}, err
	}
	return connector.Key{
		ID: id, Type: Type, Size: int64(len(data)),
		Attrs: map[string]string{
			"addr": c.addr,
			"node": c.node,
			"site": c.site,
			"size": strconv.Itoa(len(data)),
		},
	}, nil
}

func (c *Connector) target(key connector.Key) string {
	if addr := key.Attr("addr"); addr != "" {
		return addr
	}
	return c.addr
}

// Get implements connector.Connector, paying the modeled transfer time from
// the producing node's site to this connector's site.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	if err := c.delay(ctx, key.Attr("site"), int(key.Size)); err != nil {
		return nil, err
	}
	data, ok, err := c.client.Get(ctx, c.target(key), key.ID)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, connector.ErrNotFound
	}
	return data, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(ctx context.Context, key connector.Key) (bool, error) {
	return c.client.Exists(ctx, c.target(key), key.ID)
}

// Evict implements connector.Connector.
func (c *Connector) Evict(ctx context.Context, key connector.Key) error {
	return c.client.Evict(ctx, c.target(key), key.ID)
}

// Close implements connector.Connector; the node server keeps running.
func (c *Connector) Close() error { return c.client.Close() }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		return New(cfg.Param("node", "node0"), cfg.Param("site", ""))
	})
}
