package zmqc

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/netsim"
)

func TestConformance(t *testing.T) {
	t.Cleanup(ResetServers)
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		c, err := New("conf-node", "")
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return c
	}, connectortest.Options{})
}

func TestCrossNodeFetch(t *testing.T) {
	t.Cleanup(ResetServers)
	producer, err := New("zmq-prod", "")
	if err != nil {
		t.Fatalf("producer: %v", err)
	}
	defer producer.Close()
	consumer, err := New("zmq-cons", "")
	if err != nil {
		t.Fatalf("consumer: %v", err)
	}
	defer consumer.Close()

	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("zmq payload"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if string(got) != "zmq payload" {
		t.Fatalf("consumer Get = %q", got)
	}
}

func TestSiteShapedGetDelay(t *testing.T) {
	t.Cleanup(ResetServers)
	n := netsim.New(1)
	n.AddSite("p", true)
	n.AddSite("c", true)
	n.SetLink("p", "c", netsim.Link{Latency: 15 * time.Millisecond})
	SetNetwork(n)
	t.Cleanup(func() { SetNetwork(nil) })

	producer, err := New("shaped-prod", "p")
	if err != nil {
		t.Fatalf("producer: %v", err)
	}
	defer producer.Close()
	consumer, err := New("shaped-cons", "c")
	if err != nil {
		t.Fatalf("consumer: %v", err)
	}
	defer consumer.Close()

	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("cross-site"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	start := time.Now()
	if _, err := consumer.Get(ctx, key); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("cross-site Get took %v, want >= 15ms", elapsed)
	}
}
