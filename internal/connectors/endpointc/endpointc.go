// Package endpointc provides the EndpointConnector: mediated communication
// through PS-endpoints (paper §4.2.2). Keys are the tuple (object_id,
// endpoint_id); a connector always talks to its local endpoint, which
// forwards operations on foreign keys to the owning endpoint over peer
// connections established via the relay server.
package endpointc

import (
	"context"
	"strconv"

	"proxystore/internal/connector"
	"proxystore/internal/endpoint"
	"proxystore/internal/netsim"
)

// Type is the registry name of the endpoint connector.
const Type = "endpoint"

// sharedNet is consulted when connectors are reconstructed from configs.
var sharedNet *netsim.Network

// SetNetwork installs the process-global network model used to shape
// client-to-endpoint traffic for reconstructed connectors.
func SetNetwork(n *netsim.Network) { sharedNet = n }

// Connector stores objects on a local PS-endpoint.
type Connector struct {
	apiAddr    string
	endpointID string
	clientSite string
	epSite     string
	client     *endpoint.Client
}

// New returns a connector for the endpoint with identity endpointID serving
// its API at apiAddr. clientSite/epSite shape the client hop when a global
// network model is installed.
func New(apiAddr, endpointID, clientSite, epSite string) *Connector {
	var opts []endpoint.ClientOption
	if sharedNet != nil && clientSite != "" {
		opts = append(opts, endpoint.WithClientNetwork(sharedNet, clientSite, epSite))
	}
	return &Connector{
		apiAddr:    apiAddr,
		endpointID: endpointID,
		clientSite: clientSite,
		epSite:     epSite,
		client:     endpoint.NewClient(apiAddr, opts...),
	}
}

// Type implements connector.Connector.
func (c *Connector) Type() string { return Type }

// Config implements connector.Connector.
func (c *Connector) Config() connector.Config {
	return connector.Config{Type: Type, Params: map[string]string{
		"addr":        c.apiAddr,
		"endpoint":    c.endpointID,
		"client_site": c.clientSite,
		"ep_site":     c.epSite,
	}}
}

// Put implements connector.Connector: the object lands on the local
// endpoint and the key records its ownership.
func (c *Connector) Put(ctx context.Context, data []byte) (connector.Key, error) {
	id := connector.NewID()
	if err := c.client.Set(ctx, id, data); err != nil {
		return connector.Key{}, err
	}
	return connector.Key{
		ID: id, Type: Type, Size: int64(len(data)),
		Attrs: map[string]string{
			"endpoint": c.endpointID,
			"size":     strconv.Itoa(len(data)),
		},
	}, nil
}

// Get implements connector.Connector.
func (c *Connector) Get(ctx context.Context, key connector.Key) ([]byte, error) {
	data, found, err := c.client.Get(ctx, key.Attr("endpoint"), key.ID)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, connector.ErrNotFound
	}
	return data, nil
}

// Exists implements connector.Connector.
func (c *Connector) Exists(ctx context.Context, key connector.Key) (bool, error) {
	return c.client.Exists(ctx, key.Attr("endpoint"), key.ID)
}

// Evict implements connector.Connector.
func (c *Connector) Evict(ctx context.Context, key connector.Key) error {
	return c.client.Evict(ctx, key.Attr("endpoint"), key.ID)
}

// Close implements connector.Connector; the endpoint keeps running.
func (c *Connector) Close() error { return c.client.Close() }

func init() {
	connector.Register(Type, func(cfg connector.Config) (connector.Connector, error) {
		return New(
			cfg.Param("addr", ""),
			cfg.Param("endpoint", ""),
			cfg.Param("client_site", ""),
			cfg.Param("ep_site", ""),
		), nil
	})
}
