package endpointc

import (
	"context"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connector/connectortest"
	"proxystore/internal/endpoint"
	"proxystore/internal/relay"
)

func startInfra(t *testing.T, uuids ...string) (*relay.Server, []*endpoint.Endpoint) {
	t.Helper()
	r, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("relay.NewServer: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	eps := make([]*endpoint.Endpoint, len(uuids))
	for i, id := range uuids {
		ep, err := endpoint.Start("127.0.0.1:0", r.Addr(), endpoint.Options{UUID: id})
		if err != nil {
			t.Fatalf("endpoint.Start: %v", err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
	}
	return r, eps
}

func TestConformance(t *testing.T) {
	_, eps := startInfra(t, "epc-conf")
	connectortest.Run(t, func(t *testing.T) connector.Connector {
		return New(eps[0].Addr(), eps[0].UUID(), "", "")
	}, connectortest.Options{SkipConfigRebuild: true})
}

func TestKeysCarryEndpointIdentity(t *testing.T) {
	_, eps := startInfra(t, "epc-id")
	c := New(eps[0].Addr(), eps[0].UUID(), "", "")
	defer c.Close()
	key, err := c.Put(context.Background(), []byte("owned"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if key.Attr("endpoint") != "epc-id" {
		t.Fatalf("key endpoint attr = %q", key.Attr("endpoint"))
	}
}

func TestForeignKeyForwardedViaPeering(t *testing.T) {
	// Producer and consumer connectors talk to different endpoints; the
	// consumer's endpoint forwards the get over a peer connection.
	_, eps := startInfra(t, "epc-prod", "epc-cons")
	producer := New(eps[0].Addr(), eps[0].UUID(), "", "")
	defer producer.Close()
	consumer := New(eps[1].Addr(), eps[1].UUID(), "", "")
	defer consumer.Close()

	ctx := context.Background()
	key, err := producer.Put(ctx, []byte("peer fetched"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := consumer.Get(ctx, key)
	if err != nil {
		t.Fatalf("consumer Get: %v", err)
	}
	if string(got) != "peer fetched" {
		t.Fatalf("consumer Get = %q", got)
	}
	// The object lives only on the producer's endpoint.
	if eps[0].Len() != 1 || eps[1].Len() != 0 {
		t.Fatalf("object placement: producer=%d consumer=%d", eps[0].Len(), eps[1].Len())
	}
}

func TestConfigRoundTripsParams(t *testing.T) {
	_, eps := startInfra(t, "epc-cfg")
	c := New(eps[0].Addr(), eps[0].UUID(), "midway2-login", "midway2-login")
	defer c.Close()
	cfg := c.Config()
	rebuilt, err := connector.FromConfig(cfg)
	if err != nil {
		t.Fatalf("FromConfig: %v", err)
	}
	defer rebuilt.Close()
	ctx := context.Background()
	key, err := c.Put(ctx, []byte("cfg"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := rebuilt.Get(ctx, key)
	if err != nil {
		t.Fatalf("rebuilt Get: %v", err)
	}
	if string(got) != "cfg" {
		t.Fatalf("rebuilt Get = %q", got)
	}
}
