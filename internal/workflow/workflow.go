// Package workflow implements a Parsl-like task execution engine: clients
// submit function applications that may depend on other tasks' futures; a
// pool of workers executes them (paper §2 "Workflows", §5.2).
//
// The engine reproduces the data-path property Figure 7 measures: every
// task's arguments and results are serialized through the engine's
// hub-spoke channel (Parsl moves Python objects over ZeroMQ between the
// main process and workers), so large values pay real serialization cost
// plus a modeled channel delay proportional to their size. Passing proxies
// instead of values shrinks those payloads to a few hundred bytes.
//
// The engine is the classic backend for colmena.Server and the repo's
// stand-in for workflow systems generally. Its stream-plane counterpart
// is the pstream consumer group: colmena.StreamServer and
// faas.StreamEndpoint replace the hub-spoke channel with a broker task
// topic, turning futures into task streams — see those packages for the
// task-plane variants.
package workflow

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TaskFunc is an executable task.
type TaskFunc func(ctx context.Context, args []any) (any, error)

// Options configure an Engine.
type Options struct {
	// Workers is the worker pool size (default 4).
	Workers int
	// ChannelBandwidth models the engine<->worker channel in bytes/second;
	// each serialized payload pays size/bandwidth. Zero disables the model
	// (serialization itself is still real work).
	ChannelBandwidth float64
	// QueueDepth bounds the dispatch queue (default 4096).
	QueueDepth int
}

// Engine executes submitted tasks on a worker pool.
//
// An Engine is safe for concurrent use.
type Engine struct {
	opts  Options
	queue chan *task

	cancel context.CancelFunc
	wg     sync.WaitGroup

	started  time.Time
	busyNS   atomic.Int64
	done     atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64

	// chanMu serializes the modeled hub-spoke channel: it is one pipe
	// shared by all workers, so transfers queue behind each other.
	chanMu   sync.Mutex
	chanFree time.Time
}

type task struct {
	fn     TaskFunc
	args   []any
	future *Future
}

// Future is a pending task result.
type Future struct {
	done  chan struct{}
	value any
	err   error
}

// Result blocks for the task's outcome.
func (f *Future) Result(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.value, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done reports whether the task has completed.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// New starts an engine.
func New(opts Options) *Engine {
	if opts.Workers < 1 {
		opts.Workers = 4
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		opts:    opts,
		queue:   make(chan *task, opts.QueueDepth),
		cancel:  cancel,
		started: time.Now(),
	}
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker(ctx)
	}
	return e
}

// Close stops the engine; queued tasks are abandoned.
func (e *Engine) Close() error {
	e.cancel()
	e.wg.Wait()
	return nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// TasksDone returns the number of completed tasks.
func (e *Engine) TasksDone() uint64 { return e.done.Load() }

// Utilization returns the fraction of worker-time spent executing tasks
// since the engine started.
func (e *Engine) Utilization() float64 {
	wall := time.Since(e.started)
	if wall <= 0 {
		return 0
	}
	return float64(e.busyNS.Load()) / float64(wall.Nanoseconds()) / float64(e.opts.Workers)
}

// ChannelBytes returns cumulative serialized bytes through the engine
// channel (in, out).
func (e *Engine) ChannelBytes() (in, out uint64) {
	return e.bytesIn.Load(), e.bytesOut.Load()
}

// Submit schedules fn(args). Arguments that are *Future values are awaited
// and replaced with their results before dispatch, giving Parsl-style
// dataflow dependencies.
func (e *Engine) Submit(fn TaskFunc, args ...any) *Future {
	f := &Future{done: make(chan struct{})}
	t := &task{fn: fn, args: args, future: f}
	go func() {
		// Resolve dependencies outside the worker pool so blocked tasks do
		// not occupy workers (as in Parsl's DataFlowKernel).
		resolved := make([]any, len(args))
		for i, a := range args {
			if dep, ok := a.(*Future); ok {
				v, err := dep.Result(context.Background())
				if err != nil {
					f.err = fmt.Errorf("workflow: dependency failed: %w", err)
					close(f.done)
					return
				}
				resolved[i] = v
			} else {
				resolved[i] = a
			}
		}
		t.args = resolved
		e.queue <- t
	}()
	return f
}

func (e *Engine) worker(ctx context.Context) {
	defer e.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-e.queue:
			e.execute(ctx, t)
		}
	}
}

func (e *Engine) execute(ctx context.Context, t *task) {
	defer close(t.future.done)

	// Inbound: arguments cross the engine->worker channel serialized.
	inBytes, err := payloadSize(t.args)
	if err != nil {
		t.future.err = fmt.Errorf("workflow: serializing arguments: %w", err)
		return
	}
	e.bytesIn.Add(uint64(inBytes))
	e.channelDelay(ctx, inBytes)

	start := time.Now()
	v, err := t.fn(ctx, t.args)
	e.busyNS.Add(time.Since(start).Nanoseconds())
	e.done.Add(1)
	if err != nil {
		t.future.err = err
		return
	}

	// Outbound: the result crosses back.
	outBytes, serr := payloadSize([]any{v})
	if serr != nil {
		t.future.err = fmt.Errorf("workflow: serializing result: %w", serr)
		return
	}
	e.bytesOut.Add(uint64(outBytes))
	e.channelDelay(ctx, outBytes)
	t.future.value = v
}

func (e *Engine) channelDelay(ctx context.Context, size int) {
	if e.opts.ChannelBandwidth <= 0 || size <= 0 {
		return
	}
	d := time.Duration(float64(size) / e.opts.ChannelBandwidth * float64(time.Second))
	if d <= 0 {
		return
	}
	// The channel is a shared resource: this transfer starts when the
	// previous one finishes, and the caller waits until its own transfer
	// completes.
	e.chanMu.Lock()
	now := time.Now()
	start := e.chanFree
	if start.Before(now) {
		start = now
	}
	done := start.Add(d)
	e.chanFree = done
	e.chanMu.Unlock()

	wait := time.Until(done)
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// payloadSize measures the serialized size of a value list — real gob
// work, standing in for Parsl's pickling of every argument and result.
func payloadSize(args []any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(args); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
