package workflow

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func echoTask(_ context.Context, args []any) (any, error) { return args[0], nil }

func TestSubmitAndResult(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	fut := e.Submit(echoTask, 42)
	v, err := fut.Result(context.Background())
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if v.(int) != 42 {
		t.Fatalf("Result = %v", v)
	}
}

func TestTaskError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	fut := e.Submit(func(context.Context, []any) (any, error) {
		return nil, fmt.Errorf("boom")
	})
	if _, err := fut.Result(context.Background()); err == nil {
		t.Fatal("Result succeeded for failing task")
	}
}

func TestFutureDependencies(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	double := func(_ context.Context, args []any) (any, error) {
		return args[0].(int) * 2, nil
	}
	a := e.Submit(double, 3) // 6
	b := e.Submit(double, a) // 12: depends on a's future
	c := e.Submit(double, b) // 24
	v, err := c.Result(context.Background())
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if v.(int) != 24 {
		t.Fatalf("chained Result = %v", v)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	bad := e.Submit(func(context.Context, []any) (any, error) {
		return nil, fmt.Errorf("upstream failure")
	})
	downstream := e.Submit(echoTask, bad)
	if _, err := downstream.Result(context.Background()); err == nil {
		t.Fatal("downstream task succeeded despite failed dependency")
	}
}

func TestParallelExecution(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	var concurrent, peak atomic.Int32
	slow := func(context.Context, []any) (any, error) {
		cur := concurrent.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		concurrent.Add(-1)
		return nil, nil
	}
	futures := make([]*Future, 8)
	for i := range futures {
		futures[i] = e.Submit(slow)
	}
	for _, f := range futures {
		f.Result(context.Background())
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak.Load())
	}
	if e.TasksDone() != 8 {
		t.Fatalf("TasksDone = %d", e.TasksDone())
	}
}

func TestChannelDelayScalesWithPayload(t *testing.T) {
	e := New(Options{Workers: 1, ChannelBandwidth: 10e6}) // 10 MB/s channel
	defer e.Close()
	ctx := context.Background()

	timeFor := func(size int) time.Duration {
		payload := make([]byte, size)
		start := time.Now()
		fut := e.Submit(echoTask, payload)
		if _, err := fut.Result(ctx); err != nil {
			t.Fatalf("Result: %v", err)
		}
		return time.Since(start)
	}

	small := timeFor(1 << 10)
	large := timeFor(4 << 20) // 4MB in + 4MB out at 10MB/s ≈ 800ms modeled
	if large < 10*small {
		t.Fatalf("large payload (%v) should be much slower than small (%v) through the channel", large, small)
	}
}

func TestChannelBytesAccounted(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	fut := e.Submit(echoTask, make([]byte, 100_000))
	fut.Result(context.Background())
	in, out := e.ChannelBytes()
	if in < 100_000 || out < 100_000 {
		t.Fatalf("ChannelBytes = %d, %d; want >= 100000 each way", in, out)
	}
}

func TestUtilizationTracksBusyWorkers(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	fut := e.Submit(func(context.Context, []any) (any, error) {
		time.Sleep(50 * time.Millisecond)
		return nil, nil
	})
	fut.Result(context.Background())
	if u := e.Utilization(); u <= 0 || u > 1.01 {
		t.Fatalf("Utilization = %v", u)
	}
}
