package pstream_test

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/local"
	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
)

// TestTraceAttrPropagation sends traced events through a KVBroker round
// trip and checks (a) the ot.trace/ot.span attrs survive the encode →
// server → decode path verbatim, (b) the producer recorded a "publish"
// span for the trace in the process registry, and (c) the broker's
// publish→deliver histogram saw the deliveries (via the ot.pub stamp).
func TestTraceAttrPropagation(t *testing.T) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	b := pstream.NewKV(srv.Addr())
	defer b.Close()
	id := connector.NewID()[:8]
	st, err := store.New("trace-"+id, local.New("trace-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	defer store.Unregister("trace-" + id)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	root := telemetry.Default().StartSpan("", "", "submit")
	attrs := map[string]string{}
	root.Inject(attrs)

	prod := pstream.NewProducer[[]byte](st, b, "traced")
	if err := prod.Send(ctx, []byte("payload"), attrs); err != nil {
		t.Fatalf("Send: %v", err)
	}
	root.End()

	sub, err := b.Subscribe(ctx, "traced", "c1")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got := ev.Attr(telemetry.AttrTrace); got != root.Trace {
		t.Fatalf("delivered ot.trace = %q, want %q", got, root.Trace)
	}
	if got := ev.Attr(telemetry.AttrSpan); got != root.ID {
		t.Fatalf("delivered ot.span = %q, want %q", got, root.ID)
	}
	if ev.Attr(pstream.AttrPubTime) == "" {
		t.Fatal("delivered event missing ot.pub stamp")
	}

	tr := telemetry.Default().Snapshot().Trace(root.Trace)
	var names []string
	for _, s := range tr {
		names = append(names, s.Name)
	}
	if len(tr) != 2 || tr[0].Name != "submit" || tr[1].Name != "publish" {
		t.Fatalf("trace spans = %v, want [submit publish]", names)
	}
	if tr[1].Parent != root.ID {
		t.Fatalf("publish span parent = %q, want %q", tr[1].Parent, root.ID)
	}

	snap := b.Telemetry().Snapshot()
	if snap.Histograms["ps.kv.deliver.ns"].Count == 0 {
		t.Fatal("ps.kv.deliver.ns never observed a delivery")
	}
	if snap.Counters["ps.kv.published"] != 1 {
		t.Fatalf("ps.kv.published = %d, want 1", snap.Counters["ps.kv.published"])
	}
	if snap.Histograms["ps.kv.publish.ns"].Count != 1 {
		t.Fatal("ps.kv.publish.ns missing the publish")
	}
	// The broker's registry also carries its kv clients' wire metrics.
	if snap.Counters["kvc.round_trips"] == 0 {
		t.Fatal("broker registry missing client round trips")
	}
}
