package pstream

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// DefaultLease is the claim lease applied to group subscriptions when the
// broker is not configured with an explicit lease: a member that claims an
// event must ack it within the lease or the claim expires and another
// member reclaims the event.
const DefaultLease = 30 * time.Second

// MemBroker is the in-process broker: topic logs live in memory, waiters
// block on a broadcast channel that append rotates. It is the reference
// implementation of the Broker contract (brokertest runs against it first),
// the backing core of NetServer, and the right choice for tests and
// single-process pipelines.
//
// A MemBroker is safe for concurrent use.
type MemBroker struct {
	lease time.Duration

	mu     sync.Mutex
	topics map[string]*memTopic
	closed bool
	// done is closed by Close so fetchers parked on empty topics wake
	// immediately instead of waiting out their timers.
	done chan struct{}
}

type memTopic struct {
	events []Event
	// acks[i] is the number of distinct consumers whose committed offset
	// has moved past event i (a whole group counts once).
	acks []int
	// committed maps consumer name to its committed offset (index of the
	// first unacked event). Entries persist across Subscribe/Close cycles,
	// which is what makes offsets resumable.
	committed map[string]uint64
	// groups holds per-group work-queue state, keyed by group name.
	groups map[string]*memGroup
	// changed is closed and replaced on every append and every group ack
	// (acks can unblock End barriers); blocked readers wake on it.
	changed chan struct{}
}

// memGroup is one consumer group's claim state over a topic log.
type memGroup struct {
	// floor is the first offset not yet resolved for the group: every
	// payload event below it is acked (gaps and End markers resolve
	// automatically once reached). Claim scans start here.
	floor uint64
	// claims maps offset to the active claim at or above floor.
	claims map[uint64]memClaim
	// acked marks group-acked offsets at or above floor; entries are
	// dropped as floor sweeps past them.
	acked map[uint64]bool
}

type memClaim struct {
	member   string
	deadline time.Time
}

// MemOption configures a MemBroker.
type MemOption func(*MemBroker)

// WithMemLease sets the claim lease for group subscriptions (default
// DefaultLease). A member must ack a claimed event within the lease or the
// event is reclaimed and redelivered to another member.
func WithMemLease(d time.Duration) MemOption {
	return func(b *MemBroker) {
		if d > 0 {
			b.lease = d
		}
	}
}

// NewMem returns an empty in-process broker.
func NewMem(opts ...MemOption) *MemBroker {
	b := &MemBroker{
		topics: make(map[string]*memTopic),
		done:   make(chan struct{}),
		lease:  DefaultLease,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

func (b *MemBroker) topic(name string) *memTopic {
	t := b.topics[name]
	if t == nil {
		t = &memTopic{
			committed: make(map[string]uint64),
			groups:    make(map[string]*memGroup),
			changed:   make(chan struct{}),
		}
		b.topics[name] = t
	}
	return t
}

func (t *memTopic) group(name string) *memGroup {
	g := t.groups[name]
	if g == nil {
		g = &memGroup{claims: make(map[uint64]memClaim), acked: make(map[uint64]bool)}
		t.groups[name] = g
	}
	return g
}

// signal wakes blocked readers; callers must hold b.mu.
func (t *memTopic) signal() {
	close(t.changed)
	t.changed = make(chan struct{})
}

// Publish implements Broker.
func (b *MemBroker) Publish(_ context.Context, topic string, ev Event) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.append(topic, ev)
}

// PublishBatch implements Broker: the whole batch lands under one lock
// acquisition with one waiter wake-up.
func (b *MemBroker) PublishBatch(_ context.Context, topic string, evs []Event) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range evs {
		if err := b.append(topic, ev); err != nil {
			return err
		}
	}
	return nil
}

// append adds one event to the topic log; callers must hold b.mu.
func (b *MemBroker) append(topic string, ev Event) error {
	if b.closed {
		return fmt.Errorf("pstream: broker closed")
	}
	t := b.topic(topic)
	ev.Topic = topic
	ev.Offset = uint64(len(t.events))
	t.events = append(t.events, ev)
	t.acks = append(t.acks, 0)
	t.signal()
	return nil
}

// Subscribe implements Broker.
func (b *MemBroker) Subscribe(_ context.Context, topic, consumer string) (Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("pstream: broker closed")
	}
	t := b.topic(topic)
	if _, ok := t.committed[consumer]; !ok {
		t.committed[consumer] = 0
	}
	return &memSub{b: b, topic: topic, consumer: consumer, cursor: t.committed[consumer]}, nil
}

// SubscribeGroup implements Broker.
func (b *MemBroker) SubscribeGroup(_ context.Context, topic, group, member string) (Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("pstream: broker closed")
	}
	b.topic(topic).group(group)
	return &memGroupSub{b: b, topic: topic, group: group, member: member}, nil
}

// Close implements Broker. Topic logs are dropped with the broker and
// blocked Next calls fail promptly.
func (b *MemBroker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.done)
	}
	return nil
}

// fetch returns the event at cursor in topic, waiting up to wait for one
// to be appended: wait == 0 polls without blocking, wait < 0 blocks until
// an event lands, the broker closes, or ctx cancels. ok is false on
// timeout. It is shared by local subscriptions (wait < 0) and NetServer's
// long-poll handler (bounded waits).
func (b *MemBroker) fetch(ctx context.Context, topic string, cursor uint64, wait time.Duration) (Event, bool, error) {
	var timeout <-chan time.Time
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return Event{}, false, fmt.Errorf("pstream: broker closed")
		}
		t := b.topic(topic)
		if cursor < uint64(len(t.events)) {
			ev := t.events[cursor]
			b.mu.Unlock()
			return ev, true, nil
		}
		changed := t.changed
		b.mu.Unlock()
		if wait == 0 {
			return Event{}, false, nil
		}
		select {
		case <-changed:
		case <-b.done:
			return Event{}, false, fmt.Errorf("pstream: broker closed")
		case <-timeout:
			return Event{}, false, nil
		case <-ctx.Done():
			return Event{}, false, ctx.Err()
		}
	}
}

// committed returns the consumer's committed offset in topic.
func (b *MemBroker) committedOffset(topic, consumer string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.topic(topic).committed[consumer]
}

// ack advances the consumer's committed offset to at least offset+1,
// bumping ack counts for every newly covered event, and returns the ack
// count of the event at offset.
func (b *MemBroker) ack(topic, consumer string, offset uint64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topic)
	if offset >= uint64(len(t.events)) {
		return 0, fmt.Errorf("pstream: ack of unknown offset %d in %q", offset, topic)
	}
	cur := t.committed[consumer]
	for i := cur; i <= offset; i++ {
		t.acks[i]++
	}
	if offset+1 > cur {
		t.committed[consumer] = offset + 1
	}
	return t.acks[offset], nil
}

type memSub struct {
	b        *MemBroker
	topic    string
	consumer string

	mu     sync.Mutex
	cursor uint64
}

// Next implements Subscription.
func (s *memSub) Next(ctx context.Context) (Event, error) {
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	ev, ok, err := s.b.fetch(ctx, s.topic, cursor, -1)
	if err != nil {
		return Event{}, err
	}
	if !ok {
		// Unreachable: an unbounded fetch only returns on delivery or error.
		return Event{}, context.DeadlineExceeded
	}
	s.advance(cursor)
	return ev, nil
}

// Poll implements Subscription.
func (s *memSub) Poll(ctx context.Context) (Event, bool, error) {
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	ev, ok, err := s.b.fetch(ctx, s.topic, cursor, 0)
	if err != nil || !ok {
		return Event{}, false, err
	}
	s.advance(cursor)
	return ev, true, nil
}

// advance moves the cursor past a delivered event; concurrent Next/Poll
// callers may race delivery, so only the winning cursor advances.
func (s *memSub) advance(delivered uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cursor == delivered {
		s.cursor++
	}
}

// Ack implements Subscription.
func (s *memSub) Ack(_ context.Context, ev Event) (int, error) {
	return s.b.ack(s.topic, s.consumer, ev.Offset)
}

// Close implements Subscription; the committed offset survives.
func (s *memSub) Close() error { return nil }

// --- Consumer groups ------------------------------------------------------

// advanceGroupFloor sweeps the group's floor past resolved offsets: acked
// payload events, gap markers, and End markers (an End resolves once
// everything below it has — which is exactly when the floor reaches it).
// Claim and ack bookkeeping below the floor is dropped as it passes.
// Callers must hold b.mu.
func advanceGroupFloor(t *memTopic, g *memGroup) {
	for g.floor < uint64(len(t.events)) {
		ev := t.events[g.floor]
		if !ev.isGap() && !ev.End && !g.acked[g.floor] {
			return
		}
		delete(g.acked, g.floor)
		delete(g.claims, g.floor)
		g.floor++
	}
}

// fetchGroup claims and returns the next event for a group member, waiting
// up to wait as in fetch. endCursor is the member's private End-marker
// cursor (offsets below it hold no undelivered End for this member); the
// possibly advanced cursor is returned alongside the event. Delivery
// order: a deliverable End (all payload events before it group-acked)
// wins over new claims, then the earliest claimable payload event —
// unclaimed, unacked, and not under another member's live lease. It is
// shared by memGroupSub (wait < 0 / 0) and NetServer's long-poll handler
// (bounded waits).
func (b *MemBroker) fetchGroup(ctx context.Context, topic, group, member string, endCursor uint64, wait time.Duration) (Event, uint64, bool, error) {
	var timeout <-chan time.Time
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return Event{}, endCursor, false, fmt.Errorf("pstream: broker closed")
		}
		t := b.topic(topic)
		g := t.group(group)
		advanceGroupFloor(t, g)

		// End markers broadcast to every member, but only once the work
		// before them is done: the floor has swept past (it passes an End
		// exactly when all earlier payload events are acked).
		for endCursor < uint64(len(t.events)) {
			if !t.events[endCursor].End {
				endCursor++
				continue
			}
			if g.floor > endCursor {
				ev := t.events[endCursor]
				endCursor++
				b.mu.Unlock()
				return ev, endCursor, true, nil
			}
			break
		}

		// Claim the earliest available payload event. Offsets under another
		// member's live lease are skipped but remembered: the earliest
		// expiry bounds how long a blocked fetch sleeps, so reclamation
		// does not depend on new appends arriving.
		now := time.Now()
		var nextExpiry time.Time
		for i := g.floor; i < uint64(len(t.events)); i++ {
			ev := t.events[i]
			if ev.isGap() || ev.End || g.acked[i] {
				continue
			}
			if c, held := g.claims[i]; held && now.Before(c.deadline) {
				if nextExpiry.IsZero() || c.deadline.Before(nextExpiry) {
					nextExpiry = c.deadline
				}
				continue
			}
			g.claims[i] = memClaim{member: member, deadline: now.Add(b.lease)}
			b.mu.Unlock()
			return ev, endCursor, true, nil
		}
		changed := t.changed
		b.mu.Unlock()
		if wait == 0 {
			return Event{}, endCursor, false, nil
		}
		var expiry <-chan time.Time
		var expiryTimer *time.Timer
		if !nextExpiry.IsZero() {
			expiryTimer = time.NewTimer(time.Until(nextExpiry))
			expiry = expiryTimer.C
		}
		stop := func() {
			if expiryTimer != nil {
				expiryTimer.Stop()
			}
		}
		select {
		case <-changed:
			stop()
		case <-expiry:
		case <-b.done:
			stop()
			return Event{}, endCursor, false, fmt.Errorf("pstream: broker closed")
		case <-timeout:
			stop()
			return Event{}, endCursor, false, nil
		case <-ctx.Done():
			stop()
			return Event{}, endCursor, false, ctx.Err()
		}
	}
}

// groupAck settles member's claim on offset: the event becomes group-acked
// and the topic-level distinct-consumer ack count is bumped once for the
// whole group. A stale ack — the claim expired and another member holds it
// now — is a no-op returning the current count, so a reclaimed event is
// never counted twice. Acks can satisfy End barriers, so waiters are
// woken.
func (b *MemBroker) groupAck(topic, group, member string, offset uint64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topic)
	g := t.group(group)
	if offset >= uint64(len(t.events)) {
		return 0, fmt.Errorf("pstream: ack of unknown offset %d in %q", offset, topic)
	}
	if offset < g.floor || g.acked[offset] {
		return t.acks[offset], nil // already settled: idempotent
	}
	if c, held := g.claims[offset]; held && c.member != member {
		return t.acks[offset], nil // reclaimed by another member: stale ack
	}
	delete(g.claims, offset)
	g.acked[offset] = true
	t.acks[offset]++
	advanceGroupFloor(t, g)
	t.signal()
	return t.acks[offset], nil
}

// memGroupSub is one group member's cursor; claims live in the shared
// group state, only the End-broadcast cursor is subscription-local (a
// member that resubscribes re-sees End markers, mirroring fan-out).
type memGroupSub struct {
	b      *MemBroker
	topic  string
	group  string
	member string

	mu        sync.Mutex
	endCursor uint64
}

// Next implements Subscription, blocking until an event is claimable.
func (s *memGroupSub) Next(ctx context.Context) (Event, error) {
	s.mu.Lock()
	cur := s.endCursor
	s.mu.Unlock()
	ev, cur, ok, err := s.b.fetchGroup(ctx, s.topic, s.group, s.member, cur, -1)
	s.setEndCursor(cur)
	if err != nil {
		return Event{}, err
	}
	if !ok {
		// Unreachable: an unbounded fetch only returns on delivery or error.
		return Event{}, context.DeadlineExceeded
	}
	return ev, nil
}

// Poll implements Subscription.
func (s *memGroupSub) Poll(ctx context.Context) (Event, bool, error) {
	s.mu.Lock()
	cur := s.endCursor
	s.mu.Unlock()
	ev, cur, ok, err := s.b.fetchGroup(ctx, s.topic, s.group, s.member, cur, 0)
	s.setEndCursor(cur)
	if err != nil || !ok {
		return Event{}, false, err
	}
	return ev, true, nil
}

func (s *memGroupSub) setEndCursor(cur uint64) {
	s.mu.Lock()
	if cur > s.endCursor {
		s.endCursor = cur
	}
	s.mu.Unlock()
}

// Ack implements Subscription.
func (s *memGroupSub) Ack(_ context.Context, ev Event) (int, error) {
	return s.b.groupAck(s.topic, s.group, s.member, ev.Offset)
}

// Close implements Subscription. Unacked claims are not released; their
// leases expire and other members reclaim them — crash and clean shutdown
// look the same to the group.
func (s *memGroupSub) Close() error { return nil }
