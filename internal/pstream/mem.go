package pstream

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// MemBroker is the in-process broker: topic logs live in memory, waiters
// block on a broadcast channel that append rotates. It is the reference
// implementation of the Broker contract (brokertest runs against it first),
// the backing core of NetServer, and the right choice for tests and
// single-process pipelines.
//
// A MemBroker is safe for concurrent use.
type MemBroker struct {
	mu     sync.Mutex
	topics map[string]*memTopic
	closed bool
	// done is closed by Close so fetchers parked on empty topics wake
	// immediately instead of waiting out their timers.
	done chan struct{}
}

type memTopic struct {
	events []Event
	// acks[i] is the number of distinct consumers whose committed offset
	// has moved past event i.
	acks []int
	// committed maps consumer name to its committed offset (index of the
	// first unacked event). Entries persist across Subscribe/Close cycles,
	// which is what makes offsets resumable.
	committed map[string]uint64
	// changed is closed and replaced on every append; blocked readers wake
	// on it.
	changed chan struct{}
}

// NewMem returns an empty in-process broker.
func NewMem() *MemBroker {
	return &MemBroker{topics: make(map[string]*memTopic), done: make(chan struct{})}
}

func (b *MemBroker) topic(name string) *memTopic {
	t := b.topics[name]
	if t == nil {
		t = &memTopic{
			committed: make(map[string]uint64),
			changed:   make(chan struct{}),
		}
		b.topics[name] = t
	}
	return t
}

// Publish implements Broker.
func (b *MemBroker) Publish(_ context.Context, topic string, ev Event) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("pstream: broker closed")
	}
	t := b.topic(topic)
	ev.Topic = topic
	ev.Offset = uint64(len(t.events))
	t.events = append(t.events, ev)
	t.acks = append(t.acks, 0)
	close(t.changed)
	t.changed = make(chan struct{})
	return nil
}

// Subscribe implements Broker.
func (b *MemBroker) Subscribe(_ context.Context, topic, consumer string) (Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("pstream: broker closed")
	}
	t := b.topic(topic)
	if _, ok := t.committed[consumer]; !ok {
		t.committed[consumer] = 0
	}
	return &memSub{b: b, topic: topic, consumer: consumer, cursor: t.committed[consumer]}, nil
}

// Close implements Broker. Topic logs are dropped with the broker and
// blocked Next calls fail promptly.
func (b *MemBroker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.done)
	}
	return nil
}

// fetch returns the event at cursor in topic, waiting up to wait for one
// to be appended: wait == 0 polls without blocking, wait < 0 blocks until
// an event lands, the broker closes, or ctx cancels. ok is false on
// timeout. It is shared by local subscriptions (wait < 0) and NetServer's
// long-poll handler (bounded waits).
func (b *MemBroker) fetch(ctx context.Context, topic string, cursor uint64, wait time.Duration) (Event, bool, error) {
	var timeout <-chan time.Time
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return Event{}, false, fmt.Errorf("pstream: broker closed")
		}
		t := b.topic(topic)
		if cursor < uint64(len(t.events)) {
			ev := t.events[cursor]
			b.mu.Unlock()
			return ev, true, nil
		}
		changed := t.changed
		b.mu.Unlock()
		if wait == 0 {
			return Event{}, false, nil
		}
		select {
		case <-changed:
		case <-b.done:
			return Event{}, false, fmt.Errorf("pstream: broker closed")
		case <-timeout:
			return Event{}, false, nil
		case <-ctx.Done():
			return Event{}, false, ctx.Err()
		}
	}
}

// committed returns the consumer's committed offset in topic.
func (b *MemBroker) committedOffset(topic, consumer string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.topic(topic).committed[consumer]
}

// ack advances the consumer's committed offset to at least offset+1,
// bumping ack counts for every newly covered event, and returns the ack
// count of the event at offset.
func (b *MemBroker) ack(topic, consumer string, offset uint64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topic)
	if offset >= uint64(len(t.events)) {
		return 0, fmt.Errorf("pstream: ack of unknown offset %d in %q", offset, topic)
	}
	cur := t.committed[consumer]
	for i := cur; i <= offset; i++ {
		t.acks[i]++
	}
	if offset+1 > cur {
		t.committed[consumer] = offset + 1
	}
	return t.acks[offset], nil
}

type memSub struct {
	b        *MemBroker
	topic    string
	consumer string

	mu     sync.Mutex
	cursor uint64
}

// Next implements Subscription.
func (s *memSub) Next(ctx context.Context) (Event, error) {
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	ev, ok, err := s.b.fetch(ctx, s.topic, cursor, -1)
	if err != nil {
		return Event{}, err
	}
	if !ok {
		// Unreachable: an unbounded fetch only returns on delivery or error.
		return Event{}, context.DeadlineExceeded
	}
	s.advance(cursor)
	return ev, nil
}

// Poll implements Subscription.
func (s *memSub) Poll(ctx context.Context) (Event, bool, error) {
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	ev, ok, err := s.b.fetch(ctx, s.topic, cursor, 0)
	if err != nil || !ok {
		return Event{}, false, err
	}
	s.advance(cursor)
	return ev, true, nil
}

// advance moves the cursor past a delivered event; concurrent Next/Poll
// callers may race delivery, so only the winning cursor advances.
func (s *memSub) advance(delivered uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cursor == delivered {
		s.cursor++
	}
}

// Ack implements Subscription.
func (s *memSub) Ack(_ context.Context, ev Event) (int, error) {
	return s.b.ack(s.topic, s.consumer, ev.Offset)
}

// Close implements Subscription; the committed offset survives.
func (s *memSub) Close() error { return nil }
