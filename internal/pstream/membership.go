package pstream

// Liveness and membership for fleets of short-lived clients, built on the
// same kvstore primitives as the broker itself: each member runs a
// heartbeater that refreshes a deadline-stamped key, liveness is "the
// stamped deadline has not passed", and the member list is a CAS-maintained
// roster key (the kv surface has no key enumeration, so the roster is how
// one MGET can read every heartbeat). Layout, per topic T and group G:
//
//	ps:m.T:G:r          roster: member names joined by "\n" ("-" when empty)
//	ps:m.T:G:h:<member> heartbeat: the member's deadline (UnixNano, decimal)
//
// The "ps:m.T" placement prefix keeps a group's roster, heartbeats, and
// WAITPREFIX watches on one shard under the cluster client. The roster key
// is never deleted — an empty roster holds the "-" tombstone — because the
// kv CAS treats an empty expected value as "key must not exist": deleting
// the key on last-leave would race a concurrent join's create-CAS.
//
// Consumers of the layer: group subscriptions under WithKVHeartbeat treat
// an expired heartbeat as early lease reclamation (a crashed member's
// claims are stolen in O(heartbeat) instead of O(lease)); the task planes
// (faas, colmena) drive orphan GC of shared result topics from Cull; and
// producers size evict-on-ack from Sizer's live-member count.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultHeartbeatTTL is the liveness window used when WithKVHeartbeat is
// not given an explicit TTL: a member whose heartbeat key is older than
// this is presumed dead. Refreshes run at a third of the TTL, so a member
// survives two missed refreshes before peers act on its death.
const DefaultHeartbeatTTL = 3 * time.Second

// rosterEmpty is the tombstone value of a roster with no members. It keeps
// the key present (see the package comment on CAS create semantics) while
// parsing to zero members.
const rosterEmpty = "-"

// rosterCASAttempts bounds the CAS retry loop on the roster key; every
// retry means another member just joined or left, so sustained failure is
// pathological churn, not contention to wait out politely.
const rosterCASAttempts = 32

func kvMemberPrefix(topic, group string) string { return "ps:m." + topic + ":" + group + ":" }
func kvRosterKey(topic, group string) string    { return kvMemberPrefix(topic, group) + "r" }
func kvHeartbeatKey(topic, group, member string) string {
	return kvMemberPrefix(topic, group) + "h:" + member
}

// Membership is a handle on one (topic, group) liveness domain. Handles
// are cheap views over the broker's clients; any number may exist for the
// same domain across processes.
type Membership struct {
	b     *KVBroker
	topic string
	group string
	ttl   time.Duration

	// sizer cache (see Sizer).
	szMu   sync.Mutex
	szN    int
	szWhen time.Time
}

// Membership returns the liveness domain for topic and group, with the
// broker's heartbeat TTL (WithKVHeartbeat, or DefaultHeartbeatTTL).
func (b *KVBroker) Membership(topic, group string) *Membership {
	ttl := b.hbTTL
	if ttl <= 0 {
		ttl = DefaultHeartbeatTTL
	}
	return &Membership{b: b, topic: topic, group: group, ttl: ttl}
}

// TTL reports the liveness window members of this domain heartbeat under.
func (m *Membership) TTL() time.Duration { return m.ttl }

// rosterParse decodes a roster value into member names.
func rosterParse(raw []byte) []string {
	s := string(raw)
	if s == "" || s == rosterEmpty {
		return nil
	}
	return strings.Split(s, "\n")
}

// rosterEncode is the inverse of rosterParse.
func rosterEncode(names []string) []byte {
	if len(names) == 0 {
		return []byte(rosterEmpty)
	}
	return []byte(strings.Join(names, "\n"))
}

// roster reads the current member list (live and dead alike).
func (m *Membership) roster(ctx context.Context) ([]string, error) {
	raw, _, err := m.b.client.Get(ctx, kvRosterKey(m.topic, m.group))
	if err != nil {
		return nil, fmt.Errorf("pstream: reading member roster: %w", err)
	}
	return rosterParse(raw), nil
}

// rosterEdit applies edit to the member list under a CAS loop. edit
// returns the new list and whether anything changed.
func (m *Membership) rosterEdit(ctx context.Context, edit func([]string) ([]string, bool)) error {
	key := kvRosterKey(m.topic, m.group)
	for attempt := 0; attempt < rosterCASAttempts; attempt++ {
		raw, _, err := m.b.client.Get(ctx, key)
		if err != nil {
			return fmt.Errorf("pstream: reading member roster: %w", err)
		}
		names, changed := edit(rosterParse(raw))
		if !changed {
			return nil
		}
		ok, err := m.b.client.CAS(ctx, key, raw, rosterEncode(names))
		if err != nil {
			return fmt.Errorf("pstream: updating member roster: %w", err)
		}
		if ok {
			return nil
		}
	}
	return errors.New("pstream: member roster contention: CAS attempts exhausted")
}

func rosterAdd(names []string, member string) ([]string, bool) {
	for _, n := range names {
		if n == member {
			return names, false
		}
	}
	names = append(names, member)
	sort.Strings(names)
	return names, true
}

func rosterRemove(names []string, members map[string]bool) ([]string, bool) {
	kept := names[:0]
	for _, n := range names {
		if !members[n] {
			kept = append(kept, n)
		}
	}
	return kept, len(kept) != len(names)
}

// Join registers member in the domain and starts its heartbeater: a
// background goroutine that refreshes the member's deadline-stamped key at
// a third of the TTL, retrying failures with capped exponential backoff
// plus jitter. A member whose refreshes fail for longer than the TTL
// self-fences — Fenced flips true, and group subscriptions carrying the
// heartbeat stop claiming new work — so a partitioned member degrades to
// idle instead of working claims its peers believe are dead; the fence
// lifts on the next successful refresh. Stop the heartbeater with Leave
// (clean departure) or abandon it with Kill (simulated crash).
func (m *Membership) Join(ctx context.Context, member string) (*Heartbeat, error) {
	if member == "" || strings.Contains(member, "\n") {
		return nil, fmt.Errorf("pstream: invalid member name %q", member)
	}
	h := &Heartbeat{m: m, member: member, done: make(chan struct{})}
	deadline := time.Now().Add(m.ttl)
	if err := m.b.client.Set(ctx, kvHeartbeatKey(m.topic, m.group, member),
		stampDeadline(deadline)); err != nil {
		return nil, fmt.Errorf("pstream: writing heartbeat: %w", err)
	}
	if err := m.rosterEdit(ctx, func(names []string) ([]string, bool) {
		return rosterAdd(names, member)
	}); err != nil {
		m.b.client.Del(context.WithoutCancel(ctx), kvHeartbeatKey(m.topic, m.group, member))
		return nil, err
	}
	h.deadline.Store(deadline.UnixNano())
	hctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	go h.run(hctx)
	return h, nil
}

func stampDeadline(t time.Time) []byte {
	return []byte(strconv.FormatInt(t.UnixNano(), 10))
}

// parseDeadline decodes a heartbeat value; ok is false for a corrupt one.
func parseDeadline(raw []byte) (time.Time, bool) {
	nanos, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.Unix(0, nanos), true
}

// Live reads the domain's live members with two commands — one roster GET,
// one MGET over every member's heartbeat key — filtering out members whose
// stamped deadline has passed (dead, but not yet reaped). It also feeds
// the ps.members gauge.
func (m *Membership) Live(ctx context.Context) ([]string, error) {
	live, _, err := m.split(ctx)
	if err != nil {
		return nil, err
	}
	return live, nil
}

// split partitions the roster into live and dead members.
func (m *Membership) split(ctx context.Context) (live, dead []string, err error) {
	names, err := m.roster(ctx)
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		m.b.mMembers.Set(0)
		return nil, nil, nil
	}
	keys := make([]string, len(names))
	for i, n := range names {
		keys[i] = kvHeartbeatKey(m.topic, m.group, n)
	}
	raws, err := m.b.client.MGet(ctx, keys...)
	if err != nil {
		return nil, nil, fmt.Errorf("pstream: reading heartbeats: %w", err)
	}
	now := time.Now()
	for i, raw := range raws {
		if deadline, ok := parseDeadline(raw); raw != nil && ok && deadline.After(now) {
			live = append(live, names[i])
		} else {
			// Missing key (reaped, or a torn join), corrupt stamp, or an
			// expired deadline: all dead.
			dead = append(dead, names[i])
		}
	}
	m.b.mMembers.Set(int64(len(live)))
	return live, dead, nil
}

// Watch parks in one server-side WAITPREFIX over the domain's keyspace
// until a membership write (join, heartbeat refresh, leave, reap) newer
// than after lands, or timeout lapses. It returns the server mutation
// sequence to pass to the next Watch, so callers observe every change
// exactly once. Note that heartbeat refreshes wake watchers too: Watch is
// "membership state may have changed", not an edge-triggered join/leave
// signal — re-read Live and diff.
func (m *Membership) Watch(ctx context.Context, after uint64, timeout time.Duration) (uint64, error) {
	return m.b.waitClient.WaitPrefix(ctx, kvMemberPrefix(m.topic, m.group), after, timeout)
}

// Reap deletes dead members — expired or missing heartbeats — from the
// domain: their heartbeat keys are removed and the roster is pruned.
// Returns the reaped names. Reaping is cooperative garbage collection, not
// required for correctness: Live filters dead members regardless.
func (m *Membership) Reap(ctx context.Context) ([]string, error) {
	_, dead, err := m.cull(ctx)
	return dead, err
}

// Cull is Reap plus the live view in one pass: the dead are reaped, the
// live are returned. The task planes' orphan-GC sweeps run on it.
func (m *Membership) Cull(ctx context.Context) (live []string, err error) {
	live, _, err = m.cull(ctx)
	return live, err
}

func (m *Membership) cull(ctx context.Context) (live, dead []string, err error) {
	live, dead, err = m.split(ctx)
	if err != nil || len(dead) == 0 {
		return live, dead, err
	}
	gone := make(map[string]bool, len(dead))
	keys := make([]string, 0, len(dead))
	for _, n := range dead {
		gone[n] = true
		keys = append(keys, kvHeartbeatKey(m.topic, m.group, n))
	}
	if _, err := m.b.client.Del(ctx, keys...); err != nil {
		return live, nil, fmt.Errorf("pstream: reaping heartbeats: %w", err)
	}
	if err := m.rosterEdit(ctx, func(names []string) ([]string, bool) {
		return rosterRemove(names, gone)
	}); err != nil {
		return live, nil, err
	}
	return live, dead, nil
}

// Sizer returns a live-member-count function suitable for
// WithEvictSizer: producers publishing to a fleet-consumed fan-out topic
// size the evict-on-ack threshold from it instead of a hand-counted
// constant. Counts are cached for maxAge (the heartbeat TTL when zero —
// without a floor, every Send would read the roster); while the count
// is unknown — first call failing, no live members — it reports 0, which
// WithEvictSizer treats as "policy off for this event" rather than
// guessing a threshold that would evict too early.
func (m *Membership) Sizer(maxAge time.Duration) func() int {
	if maxAge <= 0 {
		maxAge = m.ttl
	}
	return func() int {
		m.szMu.Lock()
		defer m.szMu.Unlock()
		if !m.szWhen.IsZero() && time.Since(m.szWhen) < maxAge {
			return m.szN
		}
		ctx, cancel := context.WithTimeout(context.Background(), m.ttl)
		live, err := m.Live(ctx)
		cancel()
		if err != nil {
			// Keep the stale count briefly rather than flapping the policy;
			// a dead server fences the producer's publishes anyway.
			return m.szN
		}
		m.szN, m.szWhen = len(live), time.Now()
		return m.szN
	}
}

// Heartbeat is one member's running registration: a background refresher
// plus the self-fencing state group subscriptions consult before claiming
// work.
type Heartbeat struct {
	m      *Membership
	member string
	// fenced is set while refreshes have failed past the member's own
	// stamped deadline: peers are entitled to steal its claims, so it must
	// not take new ones.
	fenced atomic.Bool
	// deadline is the last successfully stamped deadline (UnixNano).
	deadline atomic.Int64
	cancel   context.CancelFunc
	done     chan struct{}
	stopOnce sync.Once
}

// Member returns the member name this heartbeat maintains.
func (h *Heartbeat) Member() string { return h.member }

// Fenced reports whether the member is self-fenced: its heartbeat could
// not be refreshed before its own liveness deadline passed, so peers may
// already be reclaiming its claims and it must not take new work. The
// fence lifts automatically when a refresh succeeds.
func (h *Heartbeat) Fenced() bool { return h.fenced.Load() }

// run is the refresher: stamp a fresh deadline every ttl/3, with capped
// exponential backoff plus jitter on errors.
func (h *Heartbeat) run(ctx context.Context) {
	defer close(h.done)
	m := h.m
	interval := m.ttl / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	key := kvHeartbeatKey(m.topic, m.group, h.member)
	delay := interval
	for {
		jittered := delay/2 + time.Duration(rand.Int63n(int64(delay)))
		select {
		case <-ctx.Done():
			return
		case <-time.After(jittered):
		}
		deadline := time.Now().Add(m.ttl)
		err := m.b.client.Set(ctx, key, stampDeadline(deadline))
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Backoff caps at the TTL: past that the member is fenced and
			// retries are pure recovery probes.
			if delay *= 2; delay > m.ttl {
				delay = m.ttl
			}
			if time.Now().UnixNano() > h.deadline.Load() {
				h.fenced.Store(true)
			}
			continue
		}
		h.deadline.Store(deadline.UnixNano())
		h.fenced.Store(false)
		delay = interval
	}
}

// stop halts the refresher goroutine.
func (h *Heartbeat) stop() {
	h.stopOnce.Do(func() {
		h.cancel()
		<-h.done
	})
}

// Leave is the clean departure: the refresher stops, the heartbeat key is
// deleted, and the roster is pruned, so peers observe the leave
// immediately instead of after a TTL.
func (h *Heartbeat) Leave(ctx context.Context) error {
	h.stop()
	m := h.m
	if _, err := m.b.client.Del(ctx, kvHeartbeatKey(m.topic, m.group, h.member)); err != nil {
		return fmt.Errorf("pstream: deleting heartbeat: %w", err)
	}
	return m.rosterEdit(ctx, func(names []string) ([]string, bool) {
		return rosterRemove(names, map[string]bool{h.member: true})
	})
}

// Kill abandons the heartbeat without any cleanup — the refresher stops
// but the heartbeat key and roster entry stay, exactly as a crashed
// process would leave them. Peers then observe the member's death when the
// stamped deadline passes. It exists so tests and benches can simulate
// member crashes without killing processes.
func (h *Heartbeat) Kill() { h.stop() }
