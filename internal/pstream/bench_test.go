package pstream_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// benchRound produces items of size bytes into a fresh topic on a shared
// kvstore server (metadata and data plane), then consumes them with the
// given prefetch window, returning nothing but failing b on error. The
// eager/batched comparison is the acceptance scenario: per-item blob gets
// pay one round trip per payload, batched proxy consumption amortizes the
// backlog into MGET round trips.
func benchRound(b *testing.B, addr string, st *store.Store, br pstream.Broker, items, size, window int) {
	ctx := context.Background()
	// Production runs off the clock: the comparison under measurement is
	// the consumer side — eager per-item blob gets vs batched proxy
	// consumption over the same backlog.
	b.StopTimer()
	topic := "t-" + connector.NewID()[:12]
	prod := pstream.NewProducer[[]byte](st, br, topic)
	payload := bytes.Repeat([]byte{0x5A}, size)
	for i := 0; i < items; i++ {
		if err := prod.Send(ctx, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := prod.Close(ctx); err != nil {
		b.Fatal(err)
	}
	b.StartTimer()

	cons, err := pstream.NewConsumer[[]byte](ctx, br, topic, "c",
		pstream.WithWindow(window))
	if err != nil {
		b.Fatal(err)
	}
	defer cons.Close()
	for i := 0; i < items; i++ {
		v, err := cons.NextValue(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(v) != size {
			b.Fatalf("item %d has %d bytes", i, len(v))
		}
	}
}

func benchStream(b *testing.B, window int) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	name := "bench-" + connector.NewID()[:12]
	st, err := store.New(name, redisc.New(srv.Addr()), store.WithSerializer(serial.Raw()),
		store.WithCacheBytes(0))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Unregister(name)
	br := pstream.NewKV(srv.Addr())
	defer br.Close()

	const items, size = 64, 4 << 10
	b.SetBytes(items * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRound(b, srv.Addr(), st, br, items, size, window)
	}
	b.StopTimer()
	b.ReportMetric(float64(items*b.N)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkConsumeEagerPerItem resolves every payload with its own blob
// get (window 1 — the baseline a non-batched consumer pays).
func BenchmarkConsumeEagerPerItem(b *testing.B) { benchStream(b, 1) }

// BenchmarkConsumeBatchedProxies drains the pending backlog and resolves
// payloads in MGET batches (window 32).
func BenchmarkConsumeBatchedProxies(b *testing.B) { benchStream(b, 32) }

// BenchmarkMemBrokerPublish measures raw metadata-plane throughput.
func BenchmarkMemBrokerPublish(b *testing.B) {
	ctx := context.Background()
	br := pstream.NewMem()
	ev := pstream.Event{Producer: "p", Key: connector.Key{ID: "x", Type: "test"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i + 1)
		if err := br.Publish(ctx, fmt.Sprintf("t%d", i%16), ev); err != nil {
			b.Fatal(err)
		}
	}
}
