// Package brokertest provides a conformance and fault-injection battery
// run against every pstream.Broker implementation, mirroring connectortest
// for connectors: log semantics (late subscribers see history),
// per-producer ordering under concurrent publishes, independent fan-out to
// concurrent consumers, offset resume after reconnect, cumulative ack
// counting, batched publishes, consumer-group work-queue semantics
// (exactly-once claims, lease reclamation after member death, End
// barriers), and fault injection (backing-service restart mid-stream,
// duplicate publishes, consumer crash-and-resume replay) — the contract
// Producer/Consumer and the evict-on-ack policy are built on.
package brokertest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/pstream"
)

// Options tune the conformance run.
type Options struct {
	// SkipConcurrency skips the concurrent multi-producer stress.
	SkipConcurrency bool
	// ClaimLease is the group-claim lease the broker under test was
	// configured with; the lease-expiry subtests (reclamation, member
	// death, stale acks) wait it out and are skipped when zero. Keep it
	// short (a few hundred ms) so the battery stays fast.
	ClaimLease time.Duration
	// Restart restarts the broker's backing service in place — same
	// address, state recovered from persistence — simulating a broker
	// crash mid-stream. nil skips the restart test. Implementations whose
	// state is process-local (MemBroker, NetServer) have nothing durable
	// to restart and leave it nil.
	Restart func() error
	// Commands reports the backing service's cumulative command count
	// (e.g. kvstore Server.Commands). When non-nil the battery asserts
	// push delivery: a subscriber blocked in Next issues O(1) backing
	// commands over a quiet window, instead of a poll per backoff tick.
	// Leave nil for brokers with no command-counted backing service.
	Commands func() uint64
	// NewFailoverEnv builds a broker over a REPLICATED backing service
	// plus a kill function that takes down the current primary (graceful
	// close — the drain hands every client-acknowledged write to the
	// replica before the box disappears). The battery then proves the
	// consumer side: the group resumes on the promoted replica with no
	// event lost and no duplicate group delivery. Each call builds an
	// independent environment, so a primary can die once per subtest.
	// nil skips the failover battery.
	NewFailoverEnv func(t *testing.T) (b pstream.Broker, kill func() error)
}

// idleCommandBudget is the command allowance for a subscriber blocked in
// Next across the idle window: registering the blocking wait takes a
// handful of commands, and a push-delivery implementation issues nothing
// further until woken. A polling implementation at a 10ms backoff cap
// issues dozens over the same window and fails decisively.
const idleCommandBudget = 6

// idleWindow is the quiet period over which a blocked Next is observed.
const idleWindow = 500 * time.Millisecond

// retry re-attempts f until it succeeds or attempts run out. After a
// backing-service restart, pooled client connections are dead and the
// first few calls fail while the pool drains and redials; a client that
// ever succeeds within attempts tries is conformant.
func retry[V any](t *testing.T, attempts int, what string, f func() (V, error)) V {
	t.Helper()
	var err error
	for i := 0; i < attempts; i++ {
		var v V
		if v, err = f(); err == nil {
			return v
		}
	}
	t.Fatalf("%s: still failing after %d attempts: %v", what, attempts, err)
	var zero V
	return zero
}

// topicCounter isolates topics between subtests so reruns against shared
// backends (a kv server) never collide.
var topicMu sync.Mutex
var topicN int

func freshTopic(prefix string) string {
	topicMu.Lock()
	defer topicMu.Unlock()
	topicN++
	return fmt.Sprintf("%s-%s-%d", prefix, connector.NewID()[:8], topicN)
}

func ev(producer string, seq uint64) pstream.Event {
	return pstream.Event{
		Producer: producer,
		Seq:      seq,
		Key:      connector.Key{ID: fmt.Sprintf("%s-%d", producer, seq), Type: "test"},
	}
}

// Run exercises the battery against the broker returned by newBroker.
// newBroker is called once; the broker is closed afterwards.
func Run(t *testing.T, newBroker func(t *testing.T) pstream.Broker, opts Options) {
	t.Helper()
	b := newBroker(t)
	t.Cleanup(func() { b.Close() })
	ctx := context.Background()

	next := func(t *testing.T, sub pstream.Subscription) pstream.Event {
		t.Helper()
		nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		e, err := sub.Next(nctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		return e
	}

	t.Run("PublishDeliverOrder", func(t *testing.T) {
		topic := freshTopic("order")
		for i := 1; i <= 3; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "c1")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		for i := 1; i <= 3; i++ {
			e := next(t, sub)
			if e.Seq != uint64(i) {
				t.Fatalf("event %d has Seq %d", i, e.Seq)
			}
			if e.Offset != uint64(i-1) {
				t.Fatalf("event %d has Offset %d", i, e.Offset)
			}
			if e.Topic != topic {
				t.Fatalf("event Topic = %q, want %q", e.Topic, topic)
			}
		}
	})

	t.Run("LateSubscriberSeesHistory", func(t *testing.T) {
		topic := freshTopic("history")
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "late")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if e := next(t, sub); e.Seq != 1 {
			t.Fatalf("late subscriber got Seq %d", e.Seq)
		}
	})

	t.Run("PollNonBlocking", func(t *testing.T) {
		topic := freshTopic("poll")
		sub, err := b.Subscribe(ctx, topic, "c1")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if _, ok, err := sub.Poll(ctx); err != nil || ok {
			t.Fatalf("Poll on empty topic = ok=%v, err=%v", ok, err)
		}
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		e, ok, err := sub.Poll(ctx)
		if err != nil || !ok {
			t.Fatalf("Poll after publish = ok=%v, err=%v", ok, err)
		}
		if e.Seq != 1 {
			t.Fatalf("Poll delivered Seq %d", e.Seq)
		}
	})

	t.Run("NextBlocksUntilPublish", func(t *testing.T) {
		topic := freshTopic("block")
		sub, err := b.Subscribe(ctx, topic, "c1")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		done := make(chan pstream.Event, 1)
		errs := make(chan error, 1)
		go func() {
			nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			e, err := sub.Next(nctx)
			if err != nil {
				errs <- err
				return
			}
			done <- e
		}()
		time.Sleep(20 * time.Millisecond) // let Next park
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		select {
		case e := <-done:
			if e.Seq != 1 {
				t.Fatalf("blocked Next delivered Seq %d", e.Seq)
			}
		case err := <-errs:
			t.Fatalf("blocked Next: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("Next did not wake on publish")
		}
	})

	t.Run("ConcurrentConsumersFanOut", func(t *testing.T) {
		topic := freshTopic("fanout")
		const n = 5
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		for _, name := range []string{"alpha", "beta"} {
			sub, err := b.Subscribe(ctx, topic, name)
			if err != nil {
				t.Fatalf("Subscribe(%s): %v", name, err)
			}
			for i := 1; i <= n; i++ {
				if e := next(t, sub); e.Seq != uint64(i) {
					t.Fatalf("consumer %s event %d has Seq %d", name, i, e.Seq)
				}
			}
			sub.Close()
		}
	})

	t.Run("OffsetResumeAfterReconnect", func(t *testing.T) {
		topic := freshTopic("resume")
		const n = 5
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "durable")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		var third pstream.Event
		for i := 0; i < 3; i++ {
			third = next(t, sub)
		}
		if _, err := sub.Ack(ctx, third); err != nil {
			t.Fatalf("Ack: %v", err)
		}
		sub.Close()

		// Reconnecting resumes at the first unacked event (index 3), not at
		// the read cursor and not at the beginning.
		sub2, err := b.Subscribe(ctx, topic, "durable")
		if err != nil {
			t.Fatalf("re-Subscribe: %v", err)
		}
		defer sub2.Close()
		if e := next(t, sub2); e.Offset != 3 {
			t.Fatalf("resumed at Offset %d, want 3", e.Offset)
		}

		// A different consumer name is unaffected by durable's commits.
		fresh, err := b.Subscribe(ctx, topic, "fresh")
		if err != nil {
			t.Fatalf("Subscribe(fresh): %v", err)
		}
		defer fresh.Close()
		if e := next(t, fresh); e.Offset != 0 {
			t.Fatalf("fresh consumer started at Offset %d", e.Offset)
		}
	})

	t.Run("AckCountsDistinctConsumers", func(t *testing.T) {
		topic := freshTopic("acks")
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		subA, err := b.Subscribe(ctx, topic, "a")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer subA.Close()
		subB, err := b.Subscribe(ctx, topic, "b")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer subB.Close()

		ea := next(t, subA)
		if n, err := subA.Ack(ctx, ea); err != nil || n != 1 {
			t.Fatalf("first ack count = %d, %v; want 1", n, err)
		}
		// Re-acking the same event from the same consumer must not inflate
		// the distinct-consumer count.
		if n, err := subA.Ack(ctx, ea); err != nil || n != 1 {
			t.Fatalf("repeat ack count = %d, %v; want 1", n, err)
		}
		eb := next(t, subB)
		if n, err := subB.Ack(ctx, eb); err != nil || n != 2 {
			t.Fatalf("second consumer ack count = %d, %v; want 2", n, err)
		}
	})

	t.Run("CumulativeAck", func(t *testing.T) {
		topic := freshTopic("cumulative")
		for i := 1; i <= 3; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		var last pstream.Event
		for i := 0; i < 3; i++ {
			last = next(t, sub)
		}
		// Acking the last event commits everything before it.
		if _, err := sub.Ack(ctx, last); err != nil {
			t.Fatalf("Ack: %v", err)
		}
		sub.Close()
		sub2, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("re-Subscribe: %v", err)
		}
		defer sub2.Close()
		if _, ok, err := sub2.Poll(ctx); err != nil || ok {
			t.Fatalf("events redelivered after cumulative ack: ok=%v err=%v", ok, err)
		}
	})

	t.Run("EndMarkerPassesThrough", func(t *testing.T) {
		topic := freshTopic("end")
		e := ev("p", 1)
		e.End = true
		e.Key = connector.Key{}
		if err := b.Publish(ctx, topic, e); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if got := next(t, sub); !got.End {
			t.Fatal("End flag lost in transit")
		}
	})

	t.Run("AttrsAndProxyDataRoundTrip", func(t *testing.T) {
		topic := freshTopic("attrs")
		e := ev("p", 1)
		e.Attrs = map[string]string{"round": "7"}
		e.ProxyData = []byte{1, 2, 3, 4}
		if err := b.Publish(ctx, topic, e); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		got := next(t, sub)
		if got.Attr("round") != "7" {
			t.Fatalf("Attrs = %v", got.Attrs)
		}
		if len(got.ProxyData) != 4 || got.ProxyData[2] != 3 {
			t.Fatalf("ProxyData = %v", got.ProxyData)
		}
	})

	t.Run("PublishBatchContiguousOrder", func(t *testing.T) {
		topic := freshTopic("batch")
		evs := make([]pstream.Event, 5)
		for i := range evs {
			evs[i] = ev("p", uint64(i+1))
		}
		if err := b.PublishBatch(ctx, topic, evs); err != nil {
			t.Fatalf("PublishBatch: %v", err)
		}
		// Batches from other producers interleave at batch granularity.
		if err := b.PublishBatch(ctx, topic, []pstream.Event{ev("q", 1)}); err != nil {
			t.Fatalf("second PublishBatch: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		for i := 0; i < 5; i++ {
			e := next(t, sub)
			if e.Producer != "p" || e.Seq != uint64(i+1) || e.Offset != uint64(i) {
				t.Fatalf("batch event %d = {%s %d @%d}", i, e.Producer, e.Seq, e.Offset)
			}
		}
		if e := next(t, sub); e.Producer != "q" || e.Offset != 5 {
			t.Fatalf("post-batch event = {%s %d @%d}", e.Producer, e.Seq, e.Offset)
		}
	})

	t.Run("EmptyPublishBatchIsNoOp", func(t *testing.T) {
		topic := freshTopic("batch0")
		if err := b.PublishBatch(ctx, topic, nil); err != nil {
			t.Fatalf("empty PublishBatch: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if _, ok, err := sub.Poll(ctx); err != nil || ok {
			t.Fatalf("topic not empty after empty batch: ok=%v err=%v", ok, err)
		}
	})

	// --- Consumer groups --------------------------------------------------

	// groupSub subscribes a member, failing the test on error.
	groupSub := func(t *testing.T, topic, group, member string) pstream.Subscription {
		t.Helper()
		sub, err := b.SubscribeGroup(ctx, topic, group, member)
		if err != nil {
			t.Fatalf("SubscribeGroup(%s/%s): %v", group, member, err)
		}
		t.Cleanup(func() { sub.Close() })
		return sub
	}

	t.Run("GroupClaimsEachEventOnce", func(t *testing.T) {
		topic := freshTopic("group")
		const n = 6
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		subA := groupSub(t, topic, "g", "a")
		subB := groupSub(t, topic, "g", "b")
		got := make(map[uint64]string)
		// Alternate members; every event must surface exactly once across
		// the group, acked as it goes so claims settle.
		for i := 0; i < n; i++ {
			sub, who := subA, "a"
			if i%2 == 1 {
				sub, who = subB, "b"
			}
			e := next(t, sub)
			if prev, dup := got[e.Offset]; dup {
				t.Fatalf("offset %d delivered to both %s and %s", e.Offset, prev, who)
			}
			got[e.Offset] = who
			if _, err := sub.Ack(ctx, e); err != nil {
				t.Fatalf("Ack: %v", err)
			}
		}
		if len(got) != n {
			t.Fatalf("group saw %d distinct offsets, want %d", len(got), n)
		}
		for _, sub := range []pstream.Subscription{subA, subB} {
			if _, ok, err := sub.Poll(ctx); err != nil || ok {
				t.Fatalf("drained queue still had work: ok=%v err=%v", ok, err)
			}
		}
	})

	t.Run("GroupsAndFanOutIndependent", func(t *testing.T) {
		topic := freshTopic("coexist")
		const n = 4
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		// A fan-out consumer sees everything regardless of group claims.
		fan, err := b.Subscribe(ctx, topic, "watcher")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer fan.Close()
		// Two groups each see everything; members inside a group split it.
		seen := map[string]map[uint64]bool{"g1": {}, "g2": {}}
		for _, g := range []string{"g1", "g2"} {
			m1 := groupSub(t, topic, g, "m1")
			m2 := groupSub(t, topic, g, "m2")
			for i := 0; i < n; i++ {
				sub := m1
				if i%2 == 1 {
					sub = m2
				}
				e := next(t, sub)
				if seen[g][e.Offset] {
					t.Fatalf("group %s saw offset %d twice", g, e.Offset)
				}
				seen[g][e.Offset] = true
				if _, err := sub.Ack(ctx, e); err != nil {
					t.Fatalf("Ack: %v", err)
				}
			}
			if len(seen[g]) != n {
				t.Fatalf("group %s saw %d events, want %d", g, len(seen[g]), n)
			}
		}
		for i := 1; i <= n; i++ {
			if e := next(t, fan); e.Seq != uint64(i) {
				t.Fatalf("fan-out consumer got Seq %d, want %d", e.Seq, i)
			}
		}
	})

	t.Run("GroupCountsOnceInAckCounts", func(t *testing.T) {
		topic := freshTopic("gack")
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		solo, err := b.Subscribe(ctx, topic, "solo")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer solo.Close()
		e := next(t, solo)
		if n, err := solo.Ack(ctx, e); err != nil || n != 1 {
			t.Fatalf("fan-out ack count = %d, %v; want 1", n, err)
		}
		// The whole group is one distinct consumer.
		m := groupSub(t, topic, "g", "m")
		ge := next(t, m)
		if n, err := m.Ack(ctx, ge); err != nil || n != 2 {
			t.Fatalf("group ack count = %d, %v; want 2", n, err)
		}
		// Re-acking from the same member does not inflate the count.
		if n, err := m.Ack(ctx, ge); err != nil || n != 2 {
			t.Fatalf("repeat group ack count = %d, %v; want 2", n, err)
		}
	})

	t.Run("GroupEndBarrier", func(t *testing.T) {
		topic := freshTopic("gend")
		for i := 1; i <= 2; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		end := pstream.Event{Producer: "p", Seq: 3, End: true}
		if err := b.Publish(ctx, topic, end); err != nil {
			t.Fatalf("Publish End: %v", err)
		}
		subA := groupSub(t, topic, "g", "a")
		subB := groupSub(t, topic, "g", "b")
		ea := next(t, subA)
		eb := next(t, subB)
		// Both payload events are claimed but unacked: the End must be
		// withheld from every member.
		for name, sub := range map[string]pstream.Subscription{"a": subA, "b": subB} {
			if e, ok, err := sub.Poll(ctx); err != nil || ok {
				t.Fatalf("%s got %+v before the End barrier (ok=%v err=%v)", name, e, ok, err)
			}
		}
		if _, err := subA.Ack(ctx, ea); err != nil {
			t.Fatalf("Ack a: %v", err)
		}
		if _, err := subB.Ack(ctx, eb); err != nil {
			t.Fatalf("Ack b: %v", err)
		}
		// All work acked: the End broadcasts to every member.
		if e := next(t, subA); !e.End {
			t.Fatalf("member a got %+v, want End", e)
		}
		if e := next(t, subB); !e.End {
			t.Fatalf("member b got %+v, want End", e)
		}
	})

	if opts.ClaimLease > 0 {
		t.Run("GroupReclaimsExpiredClaims", func(t *testing.T) {
			topic := freshTopic("lease")
			if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
				t.Fatalf("Publish: %v", err)
			}
			subA := groupSub(t, topic, "g", "a")
			subB := groupSub(t, topic, "g", "b")
			ea := next(t, subA) // a claims and stalls
			// While a's lease is live, b sees nothing.
			if _, ok, err := subB.Poll(ctx); err != nil || ok {
				t.Fatalf("b claimed a leased event: ok=%v err=%v", ok, err)
			}
			time.Sleep(opts.ClaimLease + opts.ClaimLease/2)
			// Lease expired: b reclaims and settles the event.
			eb := next(t, subB)
			if eb.Offset != ea.Offset {
				t.Fatalf("b reclaimed offset %d, want %d", eb.Offset, ea.Offset)
			}
			if n, err := subB.Ack(ctx, eb); err != nil || n != 1 {
				t.Fatalf("reclaim ack count = %d, %v; want 1", n, err)
			}
			// a's late ack is stale: a no-op that must not double-count.
			if n, err := subA.Ack(ctx, ea); err != nil || n != 1 {
				t.Fatalf("stale ack count = %d, %v; want 1", n, err)
			}
		})

		t.Run("GroupMemberDeathReclamation", func(t *testing.T) {
			topic := freshTopic("death")
			const n = 5
			for i := 1; i <= n; i++ {
				if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
					t.Fatalf("Publish: %v", err)
				}
			}
			if err := b.Publish(ctx, topic, pstream.Event{Producer: "p", Seq: n + 1, End: true}); err != nil {
				t.Fatalf("Publish End: %v", err)
			}
			// The doomed member claims two events and dies without acking.
			doomed := groupSub(t, topic, "g", "doomed")
			next(t, doomed)
			next(t, doomed)
			doomed.Close()
			// The survivor works the whole queue: three fresh events
			// immediately, the two orphaned ones once their leases expire,
			// then the End — delivery of which certifies every payload
			// event was acked by somebody.
			survivor := groupSub(t, topic, "g", "survivor")
			got := make(map[uint64]bool)
			for {
				e := next(t, survivor)
				if e.End {
					break
				}
				if got[e.Offset] {
					t.Fatalf("offset %d delivered twice to the survivor", e.Offset)
				}
				got[e.Offset] = true
				if _, err := survivor.Ack(ctx, e); err != nil {
					t.Fatalf("Ack: %v", err)
				}
			}
			if len(got) != n {
				t.Fatalf("survivor consumed %d events, want all %d", len(got), n)
			}
		})
	}

	// --- Push delivery ----------------------------------------------------

	if opts.Commands != nil {
		t.Run("IdleBlockedNextIsO1Commands", func(t *testing.T) {
			topic := freshTopic("idle")
			sub, err := b.Subscribe(ctx, topic, "c1")
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			defer sub.Close()
			nctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			got := make(chan pstream.Event, 1)
			errs := make(chan error, 1)
			go func() {
				e, err := sub.Next(nctx)
				if err != nil {
					errs <- err
					return
				}
				got <- e
			}()
			time.Sleep(100 * time.Millisecond) // let Next park in its wait
			before := opts.Commands()
			time.Sleep(idleWindow)
			if delta := opts.Commands() - before; delta > idleCommandBudget {
				t.Errorf("blocked Next issued %d commands over a %v quiet window, budget %d (polling, not push)",
					delta, idleWindow, idleCommandBudget)
			}
			// The parked subscriber must wake promptly on publish.
			start := time.Now()
			if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
				t.Fatalf("Publish: %v", err)
			}
			select {
			case e := <-got:
				if e.Seq != 1 {
					t.Fatalf("woke with Seq %d", e.Seq)
				}
				if wake := time.Since(start); wake > 2*time.Second {
					t.Errorf("wake latency %v", wake)
				}
			case err := <-errs:
				t.Fatalf("blocked Next: %v", err)
			case <-time.After(10 * time.Second):
				t.Fatal("blocked Next did not wake on publish")
			}
		})

		t.Run("IdleBlockedGroupNextIsO1Commands", func(t *testing.T) {
			topic := freshTopic("idleg")
			sub, err := b.SubscribeGroup(ctx, topic, "g", "m")
			if err != nil {
				t.Fatalf("SubscribeGroup: %v", err)
			}
			defer sub.Close()
			nctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			got := make(chan pstream.Event, 1)
			errs := make(chan error, 1)
			go func() {
				e, err := sub.Next(nctx)
				if err != nil {
					errs <- err
					return
				}
				got <- e
			}()
			time.Sleep(100 * time.Millisecond)
			before := opts.Commands()
			time.Sleep(idleWindow)
			if delta := opts.Commands() - before; delta > idleCommandBudget {
				t.Errorf("blocked group Next issued %d commands over a %v quiet window, budget %d",
					delta, idleWindow, idleCommandBudget)
			}
			if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
				t.Fatalf("Publish: %v", err)
			}
			select {
			case e := <-got:
				if e.Seq != 1 {
					t.Fatalf("woke with Seq %d", e.Seq)
				}
				if _, err := sub.Ack(ctx, e); err != nil {
					t.Fatalf("Ack: %v", err)
				}
			case err := <-errs:
				t.Fatalf("blocked group Next: %v", err)
			case <-time.After(10 * time.Second):
				t.Fatal("blocked group Next did not wake on publish")
			}
		})
	}

	if opts.Restart != nil {
		t.Run("RestartMidBlockedWait", func(t *testing.T) {
			// The backing service restarts while a consumer is parked in a
			// blocking wait. The severed wait surfaces an error; retrying
			// Next on the same subscription must resume without loss (the
			// cursor is subscription-local) and deliver the first
			// post-restart publish.
			topic := freshTopic("restartwait")
			sub, err := b.Subscribe(ctx, topic, "durable")
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			defer sub.Close()
			nctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			got := make(chan pstream.Event, 1)
			go func() {
				for {
					e, err := sub.Next(nctx)
					if err == nil {
						got <- e
						return
					}
					if nctx.Err() != nil {
						return
					}
					// Stale pooled connections drain while the service
					// restarts; keep retrying.
					time.Sleep(20 * time.Millisecond)
				}
			}()
			time.Sleep(100 * time.Millisecond) // park in the blocked wait
			if err := opts.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			retry(t, 8, "Publish after restart", func() (struct{}, error) {
				return struct{}{}, b.Publish(ctx, topic, ev("p", 1))
			})
			select {
			case e := <-got:
				if e.Seq != 1 || e.Offset != 0 {
					t.Fatalf("resumed consumer got {Seq %d @%d}, want {1 @0}", e.Seq, e.Offset)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("consumer did not resume after restart mid-wait")
			}
		})
	}

	// --- Fault injection --------------------------------------------------

	t.Run("DuplicatePublishDelivered", func(t *testing.T) {
		// Brokers are append-only logs: a producer that retries a publish
		// (e.g. after a lost reply) appends a second copy. Both must be
		// delivered intact at distinct offsets — duplicate suppression is
		// the application's job, at-least-once is the broker's.
		topic := freshTopic("dup")
		e := ev("p", 1)
		if err := b.Publish(ctx, topic, e); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		if err := b.Publish(ctx, topic, e); err != nil {
			t.Fatalf("duplicate Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		first := next(t, sub)
		second := next(t, sub)
		if first.Seq != 1 || second.Seq != 1 {
			t.Fatalf("duplicate Seqs = %d, %d; want 1, 1", first.Seq, second.Seq)
		}
		if first.Offset == second.Offset {
			t.Fatalf("duplicates share offset %d", first.Offset)
		}
		if _, err := sub.Ack(ctx, second); err != nil {
			t.Fatalf("Ack past duplicates: %v", err)
		}
	})

	t.Run("ConsumerCrashReplaysUnacked", func(t *testing.T) {
		topic := freshTopic("crash")
		const n = 4
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "fragile")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		// Read three, ack only the first, then crash: the two delivered
		// but unacked events must replay — at-least-once, not at-most-once.
		first := next(t, sub)
		next(t, sub)
		next(t, sub)
		if _, err := sub.Ack(ctx, first); err != nil {
			t.Fatalf("Ack: %v", err)
		}
		sub.Close()

		resumed, err := b.Subscribe(ctx, topic, "fragile")
		if err != nil {
			t.Fatalf("re-Subscribe: %v", err)
		}
		defer resumed.Close()
		for want := uint64(1); want < n; want++ {
			if e := next(t, resumed); e.Offset != want {
				t.Fatalf("replay delivered offset %d, want %d", e.Offset, want)
			}
		}
	})

	if opts.Restart != nil {
		t.Run("RestartMidStream", func(t *testing.T) {
			topic := freshTopic("restart")
			for i := 1; i <= 3; i++ {
				if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
					t.Fatalf("Publish: %v", err)
				}
			}
			sub, err := b.Subscribe(ctx, topic, "durable")
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			next(t, sub)
			second := next(t, sub)
			if _, err := sub.Ack(ctx, second); err != nil {
				t.Fatalf("Ack: %v", err)
			}
			sub.Close()

			if err := opts.Restart(); err != nil {
				t.Fatalf("Restart: %v", err)
			}

			// The log, offsets and ack counts must have survived; clients
			// may need a few attempts while stale pooled connections drain.
			retry(t, 8, "Publish after restart", func() (struct{}, error) {
				return struct{}{}, b.Publish(ctx, topic, ev("p", 4))
			})
			resumed := retry(t, 8, "Subscribe after restart", func() (pstream.Subscription, error) {
				return b.Subscribe(ctx, topic, "durable")
			})
			defer resumed.Close()
			for want := uint64(2); want <= 3; want++ {
				e := retry(t, 8, "Next after restart", func() (pstream.Event, error) {
					nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
					defer cancel()
					return resumed.Next(nctx)
				})
				if e.Offset != want {
					t.Fatalf("post-restart delivery at offset %d, want %d", e.Offset, want)
				}
				if want == 3 && e.Seq != 4 {
					t.Fatalf("post-restart append has Seq %d, want 4", e.Seq)
				}
			}
			e := ev("p", 4)
			e.Offset = 3
			if n, err := resumed.Ack(ctx, e); err != nil || n != 1 {
				t.Fatalf("post-restart ack = %d, %v; want 1", n, err)
			}
		})
	}

	if !opts.SkipConcurrency {
		t.Run("ConcurrentProducersKeepPerProducerOrder", func(t *testing.T) {
			topic := freshTopic("multi")
			const producers, per = 4, 20
			var wg sync.WaitGroup
			errs := make(chan error, producers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					name := fmt.Sprintf("p%d", p)
					for i := 1; i <= per; i++ {
						if err := b.Publish(ctx, topic, ev(name, uint64(i))); err != nil {
							errs <- err
							return
						}
					}
				}(p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("Publish: %v", err)
			}

			sub, err := b.Subscribe(ctx, topic, "c")
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			defer sub.Close()
			lastSeq := make(map[string]uint64)
			for i := 0; i < producers*per; i++ {
				e := next(t, sub)
				if e.Seq != lastSeq[e.Producer]+1 {
					t.Fatalf("producer %s: Seq %d after %d", e.Producer, e.Seq, lastSeq[e.Producer])
				}
				lastSeq[e.Producer] = e.Seq
			}
			for p := 0; p < producers; p++ {
				name := fmt.Sprintf("p%d", p)
				if lastSeq[name] != per {
					t.Fatalf("producer %s delivered %d events, want %d", name, lastSeq[name], per)
				}
			}
		})
	}

	// --- Primary failover -------------------------------------------------

	if opts.NewFailoverEnv != nil {
		// nextRetry is next with transport-failure tolerance: after the
		// primary dies, pooled connections to it fail until the client
		// fails over to the promoted replica.
		nextRetry := func(t *testing.T, sub pstream.Subscription) pstream.Event {
			t.Helper()
			return retry(t, 50, "Next across failover", func() (pstream.Event, error) {
				nctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				defer cancel()
				return sub.Next(nctx)
			})
		}

		t.Run("FailoverMidStreamGroup", func(t *testing.T) {
			// A consumer group is mid-stream when its primary dies: half the
			// log consumed and acked, half not yet delivered. The group must
			// finish the stream on the promoted replica with every offset
			// delivered exactly once across the members — the replica holds
			// the full log (drained on close), the committed claims, and the
			// group floor.
			fb, kill := opts.NewFailoverEnv(t)
			t.Cleanup(func() { fb.Close() })
			topic := freshTopic("failover")
			const before, after = 8, 8

			for i := 1; i <= before; i++ {
				if err := fb.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
					t.Fatalf("Publish: %v", err)
				}
			}
			subA, err := fb.SubscribeGroup(ctx, topic, "g", "a")
			if err != nil {
				t.Fatalf("SubscribeGroup: %v", err)
			}
			defer subA.Close()
			subB, err := fb.SubscribeGroup(ctx, topic, "g", "b")
			if err != nil {
				t.Fatalf("SubscribeGroup: %v", err)
			}
			defer subB.Close()

			got := make(map[uint64]string)
			consume := func(t *testing.T, sub pstream.Subscription, who string) {
				t.Helper()
				e := nextRetry(t, sub)
				if prev, dup := got[e.Offset]; dup {
					t.Fatalf("offset %d delivered to both %s and %s", e.Offset, prev, who)
				}
				got[e.Offset] = who
				retry(t, 50, "Ack across failover", func() (struct{}, error) {
					_, err := sub.Ack(ctx, e)
					return struct{}{}, err
				})
			}
			// Consume half the pre-failover log, alternating members.
			for i := 0; i < before/2; i++ {
				sub, who := subA, "a"
				if i%2 == 1 {
					sub, who = subB, "b"
				}
				consume(t, sub, who)
			}

			if err := kill(); err != nil {
				t.Fatalf("killing primary: %v", err)
			}

			// The producer keeps publishing; its first attempts fail over.
			for i := before + 1; i <= before+after; i++ {
				retry(t, 50, "Publish across failover", func() (struct{}, error) {
					return struct{}{}, fb.Publish(ctx, topic, ev("p", uint64(i)))
				})
			}
			// The group finishes the stream on the survivor.
			for i := before / 2; i < before+after; i++ {
				sub, who := subA, "a"
				if i%2 == 1 {
					sub, who = subB, "b"
				}
				consume(t, sub, who)
			}
			if len(got) != before+after {
				t.Fatalf("group saw %d distinct offsets, want %d", len(got), before+after)
			}
			for off := uint64(0); off < before+after; off++ {
				if _, ok := got[off]; !ok {
					t.Fatalf("offset %d lost across failover", off)
				}
			}
			// Fully drained: no replays surface after the exactly-once sweep.
			for _, sub := range []pstream.Subscription{subA, subB} {
				if _, ok, err := sub.Poll(ctx); err == nil && ok {
					t.Fatal("drained group had residual work after failover")
				}
			}
		})

		t.Run("FailoverMidBlockedWait", func(t *testing.T) {
			// A consumer is parked in a blocking wait on the primary when it
			// dies. The severed wait errors; retrying Next must re-park
			// against the promoted replica and be woken by the first
			// post-failover publish.
			fb, kill := opts.NewFailoverEnv(t)
			t.Cleanup(func() { fb.Close() })
			topic := freshTopic("failoverwait")
			sub, err := fb.Subscribe(ctx, topic, "durable")
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			defer sub.Close()
			nctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			got := make(chan pstream.Event, 1)
			go func() {
				for {
					e, err := sub.Next(nctx)
					if err == nil {
						got <- e
						return
					}
					if nctx.Err() != nil {
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
			}()
			time.Sleep(100 * time.Millisecond) // park in the blocked wait
			if err := kill(); err != nil {
				t.Fatalf("killing primary: %v", err)
			}
			retry(t, 50, "Publish across failover", func() (struct{}, error) {
				return struct{}{}, fb.Publish(ctx, topic, ev("p", 1))
			})
			select {
			case e := <-got:
				if e.Seq != 1 || e.Offset != 0 {
					t.Fatalf("woken consumer got {Seq %d @%d}, want {1 @0}", e.Seq, e.Offset)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("consumer never woke on the promoted replica")
			}
		})
	}
}
