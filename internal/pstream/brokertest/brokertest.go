// Package brokertest provides a conformance battery run against every
// pstream.Broker implementation, mirroring connectortest for connectors:
// log semantics (late subscribers see history), per-producer ordering under
// concurrent publishes, independent fan-out to concurrent consumers,
// offset resume after reconnect, and cumulative ack counting — the
// contract Producer/Consumer and the evict-on-ack policy are built on.
package brokertest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/pstream"
)

// Options tune the conformance run.
type Options struct {
	// SkipConcurrency skips the concurrent multi-producer stress.
	SkipConcurrency bool
}

// topicCounter isolates topics between subtests so reruns against shared
// backends (a kv server) never collide.
var topicMu sync.Mutex
var topicN int

func freshTopic(prefix string) string {
	topicMu.Lock()
	defer topicMu.Unlock()
	topicN++
	return fmt.Sprintf("%s-%s-%d", prefix, connector.NewID()[:8], topicN)
}

func ev(producer string, seq uint64) pstream.Event {
	return pstream.Event{
		Producer: producer,
		Seq:      seq,
		Key:      connector.Key{ID: fmt.Sprintf("%s-%d", producer, seq), Type: "test"},
	}
}

// Run exercises the battery against the broker returned by newBroker.
// newBroker is called once; the broker is closed afterwards.
func Run(t *testing.T, newBroker func(t *testing.T) pstream.Broker, opts Options) {
	t.Helper()
	b := newBroker(t)
	t.Cleanup(func() { b.Close() })
	ctx := context.Background()

	next := func(t *testing.T, sub pstream.Subscription) pstream.Event {
		t.Helper()
		nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		e, err := sub.Next(nctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		return e
	}

	t.Run("PublishDeliverOrder", func(t *testing.T) {
		topic := freshTopic("order")
		for i := 1; i <= 3; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "c1")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		for i := 1; i <= 3; i++ {
			e := next(t, sub)
			if e.Seq != uint64(i) {
				t.Fatalf("event %d has Seq %d", i, e.Seq)
			}
			if e.Offset != uint64(i-1) {
				t.Fatalf("event %d has Offset %d", i, e.Offset)
			}
			if e.Topic != topic {
				t.Fatalf("event Topic = %q, want %q", e.Topic, topic)
			}
		}
	})

	t.Run("LateSubscriberSeesHistory", func(t *testing.T) {
		topic := freshTopic("history")
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "late")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if e := next(t, sub); e.Seq != 1 {
			t.Fatalf("late subscriber got Seq %d", e.Seq)
		}
	})

	t.Run("PollNonBlocking", func(t *testing.T) {
		topic := freshTopic("poll")
		sub, err := b.Subscribe(ctx, topic, "c1")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if _, ok, err := sub.Poll(ctx); err != nil || ok {
			t.Fatalf("Poll on empty topic = ok=%v, err=%v", ok, err)
		}
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		e, ok, err := sub.Poll(ctx)
		if err != nil || !ok {
			t.Fatalf("Poll after publish = ok=%v, err=%v", ok, err)
		}
		if e.Seq != 1 {
			t.Fatalf("Poll delivered Seq %d", e.Seq)
		}
	})

	t.Run("NextBlocksUntilPublish", func(t *testing.T) {
		topic := freshTopic("block")
		sub, err := b.Subscribe(ctx, topic, "c1")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		done := make(chan pstream.Event, 1)
		errs := make(chan error, 1)
		go func() {
			nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			e, err := sub.Next(nctx)
			if err != nil {
				errs <- err
				return
			}
			done <- e
		}()
		time.Sleep(20 * time.Millisecond) // let Next park
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		select {
		case e := <-done:
			if e.Seq != 1 {
				t.Fatalf("blocked Next delivered Seq %d", e.Seq)
			}
		case err := <-errs:
			t.Fatalf("blocked Next: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("Next did not wake on publish")
		}
	})

	t.Run("ConcurrentConsumersFanOut", func(t *testing.T) {
		topic := freshTopic("fanout")
		const n = 5
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		for _, name := range []string{"alpha", "beta"} {
			sub, err := b.Subscribe(ctx, topic, name)
			if err != nil {
				t.Fatalf("Subscribe(%s): %v", name, err)
			}
			for i := 1; i <= n; i++ {
				if e := next(t, sub); e.Seq != uint64(i) {
					t.Fatalf("consumer %s event %d has Seq %d", name, i, e.Seq)
				}
			}
			sub.Close()
		}
	})

	t.Run("OffsetResumeAfterReconnect", func(t *testing.T) {
		topic := freshTopic("resume")
		const n = 5
		for i := 1; i <= n; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "durable")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		var third pstream.Event
		for i := 0; i < 3; i++ {
			third = next(t, sub)
		}
		if _, err := sub.Ack(ctx, third); err != nil {
			t.Fatalf("Ack: %v", err)
		}
		sub.Close()

		// Reconnecting resumes at the first unacked event (index 3), not at
		// the read cursor and not at the beginning.
		sub2, err := b.Subscribe(ctx, topic, "durable")
		if err != nil {
			t.Fatalf("re-Subscribe: %v", err)
		}
		defer sub2.Close()
		if e := next(t, sub2); e.Offset != 3 {
			t.Fatalf("resumed at Offset %d, want 3", e.Offset)
		}

		// A different consumer name is unaffected by durable's commits.
		fresh, err := b.Subscribe(ctx, topic, "fresh")
		if err != nil {
			t.Fatalf("Subscribe(fresh): %v", err)
		}
		defer fresh.Close()
		if e := next(t, fresh); e.Offset != 0 {
			t.Fatalf("fresh consumer started at Offset %d", e.Offset)
		}
	})

	t.Run("AckCountsDistinctConsumers", func(t *testing.T) {
		topic := freshTopic("acks")
		if err := b.Publish(ctx, topic, ev("p", 1)); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		subA, err := b.Subscribe(ctx, topic, "a")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer subA.Close()
		subB, err := b.Subscribe(ctx, topic, "b")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer subB.Close()

		ea := next(t, subA)
		if n, err := subA.Ack(ctx, ea); err != nil || n != 1 {
			t.Fatalf("first ack count = %d, %v; want 1", n, err)
		}
		// Re-acking the same event from the same consumer must not inflate
		// the distinct-consumer count.
		if n, err := subA.Ack(ctx, ea); err != nil || n != 1 {
			t.Fatalf("repeat ack count = %d, %v; want 1", n, err)
		}
		eb := next(t, subB)
		if n, err := subB.Ack(ctx, eb); err != nil || n != 2 {
			t.Fatalf("second consumer ack count = %d, %v; want 2", n, err)
		}
	})

	t.Run("CumulativeAck", func(t *testing.T) {
		topic := freshTopic("cumulative")
		for i := 1; i <= 3; i++ {
			if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		var last pstream.Event
		for i := 0; i < 3; i++ {
			last = next(t, sub)
		}
		// Acking the last event commits everything before it.
		if _, err := sub.Ack(ctx, last); err != nil {
			t.Fatalf("Ack: %v", err)
		}
		sub.Close()
		sub2, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("re-Subscribe: %v", err)
		}
		defer sub2.Close()
		if _, ok, err := sub2.Poll(ctx); err != nil || ok {
			t.Fatalf("events redelivered after cumulative ack: ok=%v err=%v", ok, err)
		}
	})

	t.Run("EndMarkerPassesThrough", func(t *testing.T) {
		topic := freshTopic("end")
		e := ev("p", 1)
		e.End = true
		e.Key = connector.Key{}
		if err := b.Publish(ctx, topic, e); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		if got := next(t, sub); !got.End {
			t.Fatal("End flag lost in transit")
		}
	})

	t.Run("AttrsAndProxyDataRoundTrip", func(t *testing.T) {
		topic := freshTopic("attrs")
		e := ev("p", 1)
		e.Attrs = map[string]string{"round": "7"}
		e.ProxyData = []byte{1, 2, 3, 4}
		if err := b.Publish(ctx, topic, e); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		sub, err := b.Subscribe(ctx, topic, "c")
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		defer sub.Close()
		got := next(t, sub)
		if got.Attr("round") != "7" {
			t.Fatalf("Attrs = %v", got.Attrs)
		}
		if len(got.ProxyData) != 4 || got.ProxyData[2] != 3 {
			t.Fatalf("ProxyData = %v", got.ProxyData)
		}
	})

	if !opts.SkipConcurrency {
		t.Run("ConcurrentProducersKeepPerProducerOrder", func(t *testing.T) {
			topic := freshTopic("multi")
			const producers, per = 4, 20
			var wg sync.WaitGroup
			errs := make(chan error, producers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					name := fmt.Sprintf("p%d", p)
					for i := 1; i <= per; i++ {
						if err := b.Publish(ctx, topic, ev(name, uint64(i))); err != nil {
							errs <- err
							return
						}
					}
				}(p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("Publish: %v", err)
			}

			sub, err := b.Subscribe(ctx, topic, "c")
			if err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
			defer sub.Close()
			lastSeq := make(map[string]uint64)
			for i := 0; i < producers*per; i++ {
				e := next(t, sub)
				if e.Seq != lastSeq[e.Producer]+1 {
					t.Fatalf("producer %s: Seq %d after %d", e.Producer, e.Seq, lastSeq[e.Producer])
				}
				lastSeq[e.Producer] = e.Seq
			}
			for p := 0; p < producers; p++ {
				name := fmt.Sprintf("p%d", p)
				if lastSeq[name] != per {
					t.Fatalf("producer %s delivered %d events, want %d", name, lastSeq[name], per)
				}
			}
		})
	}
}
