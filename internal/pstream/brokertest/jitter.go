package brokertest

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"proxystore/internal/pstream"
)

// JitterBroker wraps a Broker and sleeps a random, seeded duration before
// every operation — publish, subscribe, fetch and ack alike — so
// randomized tests can shake out ordering assumptions that only hold when
// broker calls are instantaneous (claim races, End barriers, lease
// expiry under load). Deterministic for a fixed seed and schedule.
type JitterBroker struct {
	inner pstream.Broker
	max   time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter wraps b, delaying every operation by up to max.
func NewJitter(b pstream.Broker, seed int64, max time.Duration) *JitterBroker {
	return &JitterBroker{inner: b, max: max, rng: rand.New(rand.NewSource(seed))}
}

func (j *JitterBroker) sleep() {
	if j.max <= 0 {
		return
	}
	j.mu.Lock()
	d := time.Duration(j.rng.Int63n(int64(j.max)))
	j.mu.Unlock()
	time.Sleep(d)
}

// Publish implements pstream.Broker.
func (j *JitterBroker) Publish(ctx context.Context, topic string, ev pstream.Event) error {
	j.sleep()
	return j.inner.Publish(ctx, topic, ev)
}

// PublishBatch implements pstream.Broker.
func (j *JitterBroker) PublishBatch(ctx context.Context, topic string, evs []pstream.Event) error {
	j.sleep()
	return j.inner.PublishBatch(ctx, topic, evs)
}

// Subscribe implements pstream.Broker.
func (j *JitterBroker) Subscribe(ctx context.Context, topic, consumer string) (pstream.Subscription, error) {
	j.sleep()
	sub, err := j.inner.Subscribe(ctx, topic, consumer)
	if err != nil {
		return nil, err
	}
	return &jitterSub{Subscription: sub, j: j}, nil
}

// SubscribeGroup implements pstream.Broker.
func (j *JitterBroker) SubscribeGroup(ctx context.Context, topic, group, member string) (pstream.Subscription, error) {
	j.sleep()
	sub, err := j.inner.SubscribeGroup(ctx, topic, group, member)
	if err != nil {
		return nil, err
	}
	return &jitterSub{Subscription: sub, j: j}, nil
}

// Unwrap returns the wrapped broker, so pstream.AsKV sees through the
// jitter layer.
func (j *JitterBroker) Unwrap() pstream.Broker { return j.inner }

// Close implements pstream.Broker.
func (j *JitterBroker) Close() error { return j.inner.Close() }

type jitterSub struct {
	pstream.Subscription
	j *JitterBroker
}

func (s *jitterSub) Next(ctx context.Context) (pstream.Event, error) {
	s.j.sleep()
	return s.Subscription.Next(ctx)
}

func (s *jitterSub) Poll(ctx context.Context) (pstream.Event, bool, error) {
	s.j.sleep()
	return s.Subscription.Poll(ctx)
}

func (s *jitterSub) Ack(ctx context.Context, ev pstream.Event) (int, error) {
	s.j.sleep()
	return s.Subscription.Ack(ctx, ev)
}
