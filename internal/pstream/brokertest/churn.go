package brokertest

// The heartbeat/churn battery: membership-aware group semantics that only
// KVBrokers implement (heartbeats, early lease reclamation, membership-key
// GC), exercised the way the paper's federated fleets behave — members
// joining, crashing, and vanishing while work is in flight.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proxystore/internal/pstream"
)

// ChurnOptions tune the churn battery.
type ChurnOptions struct {
	// DBSize reports the backing server's key count, for the no-orphan-
	// growth assertions. Required.
	DBSize func() (int64, error)
	// DebugMGet, when set, lets the battery name the lingering keys when
	// the GC assertion fails, turning "N keys too many" into actionable
	// output. Optional.
	DebugMGet func(keys ...string) [][]byte
}

// RunChurn exercises the heartbeat/churn battery. newBroker builds a
// fresh KVBroker over one shared backing server with the given group
// lease and heartbeat TTL — each subtest picks its own timing — and must
// enable log truncation (pstream.WithKVTruncate(1)) so the storm's
// key-count assertion measures GC, not retention.
//
// The battery proves the two fleet-lifecycle guarantees:
//   - a member that dies with a live lease has its claims reclaimed in
//     strictly less than one lease period (heartbeat expiry, not lease
//     expiry, is the detection path);
//   - a 32-member join/leave storm preserves exactly-once group delivery
//     and leaves no per-member keys behind (membership keys, claim
//     records, and log slots all return to a fixed baseline).
func RunChurn(t *testing.T, newBroker func(t *testing.T, lease, heartbeat time.Duration) *pstream.KVBroker, opts ChurnOptions) {
	t.Helper()
	if opts.DBSize == nil {
		t.Fatal("brokertest: ChurnOptions.DBSize is required")
	}

	t.Run("HeartbeatReclaimBeatsLease", func(t *testing.T) {
		churnReclaim(t, newBroker)
	})
	t.Run("JoinLeaveStorm", func(t *testing.T) {
		churnStorm(t, newBroker, opts)
	})
}

// churnReclaim: a member claims an event under a long lease and dies
// (heartbeat stops, claim never acked, subscription abandoned). A
// survivor must steal the claim after the heartbeat TTL — well before the
// lease would have expired.
func churnReclaim(t *testing.T, newBroker func(t *testing.T, lease, heartbeat time.Duration) *pstream.KVBroker) {
	const (
		lease     = 3 * time.Second
		heartbeat = 150 * time.Millisecond
		events    = 4
	)
	b := newBroker(t, lease, heartbeat)
	t.Cleanup(func() { b.Close() })
	ctx := context.Background()
	topic := freshTopic("churn-reclaim")

	for i := 1; i <= events; i++ {
		if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	// The victim claims the first event and dies without acking.
	victim, err := b.SubscribeGroup(ctx, topic, "g", "victim")
	if err != nil {
		t.Fatalf("SubscribeGroup(victim): %v", err)
	}
	claimed, err := victim.Next(ctx)
	if err != nil {
		t.Fatalf("victim Next: %v", err)
	}
	hb := pstream.GroupHeartbeat(victim)
	if hb == nil {
		t.Fatal("GroupHeartbeat returned nil — broker not heartbeat-enabled?")
	}
	died := time.Now()
	hb.Kill() // heartbeat stops; the claim and subscription are abandoned

	survivor, err := b.SubscribeGroup(ctx, topic, "g", "survivor")
	if err != nil {
		t.Fatalf("SubscribeGroup(survivor): %v", err)
	}
	t.Cleanup(func() { survivor.Close() })

	// The survivor must collect every event — including the victim's
	// abandoned claim — long before the 3 s lease runs out.
	seen := make(map[uint64]int)
	var reclaimedAfter time.Duration
	deadlineCtx, cancel := context.WithTimeout(ctx, lease)
	defer cancel()
	for len(seen) < events {
		got, err := survivor.Next(deadlineCtx)
		if err != nil {
			t.Fatalf("survivor Next (seen %d/%d): %v", len(seen), events, err)
		}
		if got.Offset == claimed.Offset {
			reclaimedAfter = time.Since(died)
		}
		seen[got.Offset]++
		if _, err := survivor.Ack(ctx, got); err != nil {
			t.Fatalf("survivor Ack: %v", err)
		}
	}
	for off, n := range seen {
		if n != 1 {
			t.Errorf("offset %d delivered %d times to survivor, want 1", off, n)
		}
	}
	if reclaimedAfter <= 0 {
		t.Fatalf("victim's claim (offset %d) never redelivered", claimed.Offset)
	}
	if reclaimedAfter >= lease {
		t.Fatalf("claim reclaimed after %v — not faster than the %v lease", reclaimedAfter, lease)
	}
	t.Logf("abandoned claim reclaimed after %v (lease %v, heartbeat %v)", reclaimedAfter, lease, heartbeat)
}

// churnStorm: 32 members churn through a group — clean leaves, crashes
// after acking, crashes mid-claim — while a fixed workload drains.
// Exactly-once must hold, and after the dust settles the membership keys
// and log must be garbage-collected back to a fixed baseline.
func churnStorm(t *testing.T, newBroker func(t *testing.T, lease, heartbeat time.Duration) *pstream.KVBroker, opts ChurnOptions) {
	const (
		lease     = 1 * time.Second
		heartbeat = 100 * time.Millisecond
		events    = 96
		wave      = 32
		group     = "storm"
	)
	b := newBroker(t, lease, heartbeat)
	t.Cleanup(func() { b.Close() })
	ctx := context.Background()
	topic := freshTopic("churn-storm")

	baseline, err := opts.DBSize()
	if err != nil {
		t.Fatalf("DBSize: %v", err)
	}

	for i := 1; i <= events; i++ {
		if err := b.Publish(ctx, topic, ev("p", uint64(i))); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	var (
		mu      sync.Mutex
		acked   = make(map[uint64][]string) // offset -> acking members
		total   atomic.Int64
		memberN atomic.Int64
	)
	record := func(off uint64, who string) {
		mu.Lock()
		acked[off] = append(acked[off], who)
		n := len(acked)
		mu.Unlock()
		total.Store(int64(n))
	}
	done := func() bool { return total.Load() >= events }

	// member runs one churning group member. Modes:
	//   clean:    ack its quota, then Close (clean leave).
	//   killAck:  ack its quota, then Kill (crash between tasks — claims
	//             all settled, but membership keys left behind).
	//   killMid:  claim one event and Kill without acking (crash mid-task
	//             — the claim must be reclaimed by a survivor).
	member := func(mode string) {
		name := fmt.Sprintf("m-%s-%d", mode, memberN.Add(1))
		sub, err := b.SubscribeGroup(ctx, topic, group, name)
		if err != nil {
			return // join raced shutdown; the spawner will replace us
		}
		const quota = 3
		for i := 0; i < quota && !done(); i++ {
			nctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
			got, err := sub.Next(nctx)
			cancel()
			if err != nil {
				continue // nothing claimable right now
			}
			if mode == "killMid" {
				pstream.GroupHeartbeat(sub).Kill()
				return // die holding the claim
			}
			if _, err := sub.Ack(ctx, got); err == nil {
				record(got.Offset, name)
			}
		}
		switch mode {
		case "clean":
			sub.Close()
		default: // killAck
			pstream.GroupHeartbeat(sub).Kill()
		}
	}

	// Waves of 32 members churn until the workload drains. Mode mix per
	// wave: mostly clean/killAck (they make progress), a few killMid
	// (they create work for the others to reclaim).
	stormDeadline := time.Now().Add(30 * time.Second)
	for !done() {
		if time.Now().After(stormDeadline) {
			t.Fatalf("storm did not drain: %d/%d events acked", total.Load(), events)
		}
		var wg sync.WaitGroup
		for i := 0; i < wave; i++ {
			mode := "clean"
			switch i % 4 {
			case 1:
				mode = "killAck"
			case 3:
				mode = "killMid"
			}
			wg.Add(1)
			go func(mode string) {
				defer wg.Done()
				member(mode)
			}(mode)
		}
		wg.Wait()
	}

	// Exactly-once: every offset acked by exactly one member.
	mu.Lock()
	defer mu.Unlock()
	if len(acked) != events {
		t.Fatalf("acked %d distinct offsets, want %d", len(acked), events)
	}
	for off, who := range acked {
		if len(who) != 1 {
			t.Errorf("offset %d acked by %d members (%v), want exactly 1", off, len(who), who)
		}
	}

	// GC: after the dead members' heartbeats expire, one Reap must clear
	// the roster, and a final member scan plus log truncation must return
	// the server to its baseline plus a fixed handful of bookkeeping keys
	// (log length, truncation floors, group floor, roster tombstone).
	m := b.Membership(topic, group)
	const slack = 8
	gcDeadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Reap(ctx); err != nil {
			t.Fatalf("Reap: %v", err)
		}
		live, err := m.Live(ctx)
		if err != nil {
			t.Fatalf("Live: %v", err)
		}
		// A throwaway member scans once to push the group floor over the
		// tail claims, then leaves cleanly.
		if sub, err := b.SubscribeGroup(ctx, topic, group, "janitor"); err == nil {
			nctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
			_, _, _ = sub.Poll(nctx)
			cancel()
			sub.Close()
		}
		// Sweep the drained log: ack-triggered truncation stops with the
		// last ack, so the tail slots need one explicit GC pass — the same
		// call the task planes' janitors run.
		if _, err := b.SweepTopic(ctx, topic, m, nil); err != nil {
			t.Fatalf("SweepTopic: %v", err)
		}
		n, err := opts.DBSize()
		if err != nil {
			t.Fatalf("DBSize: %v", err)
		}
		if len(live) == 0 && n <= baseline+slack {
			t.Logf("server keys settled at %d (baseline %d)", n, baseline)
			return
		}
		if time.Now().After(gcDeadline) {
			if opts.DebugMGet != nil {
				var probe []string
				for i := uint64(0); i < events+4; i++ {
					probe = append(probe,
						fmt.Sprintf("ps:%s:e:%d", topic, i),
						fmt.Sprintf("ps:%s:a:%d", topic, i),
						fmt.Sprintf("ps:%s:g:%s:c:%d", topic, group, i))
				}
				for i := int64(0); i <= memberN.Load(); i++ {
					for _, mode := range []string{"clean", "killAck", "killMid"} {
						probe = append(probe, fmt.Sprintf("ps:m.%s:%s:h:m-%s-%d", topic, group, mode, i))
					}
				}
				raws := opts.DebugMGet(probe...)
				for i, raw := range raws {
					if raw != nil {
						t.Logf("lingering key: %s = %q", probe[i], raw)
					}
				}
			}
			t.Fatalf("GC never settled: %d live members, %d keys (baseline %d, slack %d)", len(live), n, baseline, slack)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
