// Self-checks for the battery itself: the conformance run is the contract
// three brokers are held to, so a battery regression must fail here, in
// isolation, against the reference MemBroker — not as a confusing failure
// in some broker's own test suite.
package brokertest

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/pstream"
)

// testLease keeps the lease-expiry subtests fast.
const testLease = 200 * time.Millisecond

func TestBatteryAgainstReferenceBroker(t *testing.T) {
	Run(t, func(t *testing.T) pstream.Broker {
		return pstream.NewMem(pstream.WithMemLease(testLease))
	}, Options{ClaimLease: testLease})
}

func TestBatteryAgainstJitteredReferenceBroker(t *testing.T) {
	// The battery must hold under perturbed timing, not just the happy
	// schedule: every operation of the reference broker is delayed by a
	// seeded random jitter well under the lease.
	if testing.Short() {
		t.Skip("jittered battery run is slow")
	}
	Run(t, func(t *testing.T) pstream.Broker {
		return NewJitter(pstream.NewMem(pstream.WithMemLease(2*time.Second)), 42, 2*time.Millisecond)
	}, Options{ClaimLease: 0}) // lease tests would double jitter sleeps; covered unjittered above
}

func TestFreshTopicsAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		topic := freshTopic("x")
		if seen[topic] {
			t.Fatalf("freshTopic repeated %q", topic)
		}
		seen[topic] = true
	}
}

// TestBatteryEventHelperCarriesIdentity pins the helper the battery builds
// every scenario from: a regression that dropped Producer or Seq would
// silently weaken most subtests.
func TestBatteryEventHelperCarriesIdentity(t *testing.T) {
	e := ev("prod", 7)
	if e.Producer != "prod" || e.Seq != 7 || e.Key.ID == "" {
		t.Fatalf("ev() = %+v", e)
	}
}

// TestRetrySurfacesPersistentFailure guards the restart helper: retry must
// eventually give up (via t.Fatal) rather than loop forever, and must stop
// early on success.
func TestRetrySurfacesPersistentFailure(t *testing.T) {
	calls := 0
	v := retry(t, 5, "flaky", func() (int, error) {
		calls++
		if calls < 3 {
			return 0, context.DeadlineExceeded
		}
		return 42, nil
	})
	if v != 42 || calls != 3 {
		t.Fatalf("retry = %d after %d calls", v, calls)
	}
}
