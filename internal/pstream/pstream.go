// Package pstream is a topic-based pub/sub streaming subsystem built on the
// proxy model (the ProxyStream pattern from the paper's follow-up work):
// producers publish bulk objects through a Store — the data plane — and
// stream only compact event records through a Broker — the metadata plane.
// Consumers iterate a topic receiving lazy proxies, so moving an item
// through the broker costs O(100 B) regardless of payload size, and bulk
// bytes travel store-to-consumer only when (and if) a proxy is resolved.
//
// Brokers are append-only logs per topic with per-consumer committed
// offsets: every named consumer sees every event (fan-out), acks advance a
// consumer's offset cumulatively (Kafka-style), and re-subscribing with the
// same name resumes after the last acked event — at-least-once delivery.
//
// Alongside fan-out, topics support consumer groups (work-queue
// semantics): members of a named group claim events so each event is
// processed by exactly one member, claims carry leases so a crashed
// member's unacked events are reclaimed and redelivered, and End markers
// broadcast to every member once all preceding work is acked. Three
// implementations ship behind one conformance battery (brokertest):
// MemBroker (in-process, for tests and benches), KVBroker (append-to-log
// over the kvstore RESP server), and NetBroker (msgnet request/reply to a
// NetServer, discoverable through a relay for cross-site use).
package pstream

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"proxystore/internal/connector"
)

// ErrEnd is returned by Consumer.Next after the expected number of
// producers have closed their streams.
var ErrEnd = errors.New("pstream: end of stream")

// Reserved event-attribute names. Application attrs must not start with
// "ps.".
const (
	// attrEvictAfter is the distinct-consumer ack count after which the
	// event's object is evicted from its store (the evict-on-ack policy).
	attrEvictAfter = "ps.evict_after"
	// attrGap marks a log slot whose append failed and was back-filled so
	// consumers can skip it (KVBroker). Gap events carry no payload.
	attrGap = "ps.gap"
)

// isGap reports whether the event is a back-filled hole in the log rather
// than a published record.
func (e Event) isGap() bool { return e.Attr(attrGap) != "" }

// Event is the compact record traveling through the metadata plane: a
// pointer into the data plane plus ordering metadata. Events are O(100 B)
// on the wire; the payload they describe never touches the broker.
type Event struct {
	// Topic names the stream.
	Topic string
	// Producer is the publishing producer's ID; Seq is its per-producer
	// sequence number, starting at 1. Brokers deliver each producer's
	// events in Seq order.
	Producer string
	Seq      uint64
	// Offset is the event's position in the topic log, assigned by the
	// broker at publish time. Acks commit offsets past delivered events.
	Offset uint64
	// Key locates the payload in the data plane (zero for End events).
	Key connector.Key
	// ProxyData is the serialized proxy for the payload, so events are
	// self-contained: a consumer needs no out-of-band store configuration.
	ProxyData []byte
	// Attrs carries small application metadata. Names starting with "ps."
	// are reserved.
	Attrs map[string]string
	// End marks a producer's end-of-stream; End events carry no payload.
	End bool
}

// Attr returns an event attribute, or "" when unset.
func (e Event) Attr(name string) string {
	if e.Attrs == nil {
		return ""
	}
	return e.Attrs[name]
}

// evictAfter returns the evict-on-ack consumer threshold, or 0 when the
// policy is off for this event.
func (e Event) evictAfter() int {
	n, err := strconv.Atoi(e.Attr(attrEvictAfter))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// EncodeEvent serializes an event for brokers that move records as bytes.
func EncodeEvent(ev Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ev); err != nil {
		return nil, fmt.Errorf("pstream: encoding event: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEvent is the inverse of EncodeEvent.
func DecodeEvent(data []byte) (Event, error) {
	var ev Event
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ev); err != nil {
		return Event{}, fmt.Errorf("pstream: decoding event: %w", err)
	}
	return ev, nil
}

// Broker is the metadata plane: an append-only event log per topic with
// per-consumer committed offsets (fan-out) and per-group claim state
// (work queues). Implementations must be safe for concurrent use and must
// deliver every event to every named fan-out consumer and to exactly one
// live member of each group.
type Broker interface {
	// Publish appends ev to the topic's log. The broker assigns ev.Offset.
	Publish(ctx context.Context, topic string, ev Event) error
	// PublishBatch appends evs to the topic's log contiguously, assigning
	// consecutive offsets, with O(1) broker round trips for remote brokers
	// (one offset-range reservation plus one bulk write, instead of two
	// round trips per event). Order within evs is preserved.
	PublishBatch(ctx context.Context, topic string, evs []Event) error
	// Subscribe attaches a named consumer to the topic at its committed
	// offset — 0 for a consumer the broker has never seen, the offset of
	// the first unacked event for one that reconnects.
	Subscribe(ctx context.Context, topic, consumer string) (Subscription, error)
	// SubscribeGroup attaches member to the topic as part of the named
	// consumer group. Members of one group share the topic as a work
	// queue: Next/Poll claim the earliest unclaimed, unacked event under a
	// lease, so each event is delivered to exactly one live member; a
	// claim whose lease expires before Ack (member crash, stall) is
	// reclaimed by another member — at-least-once per group. End markers
	// are not claimed: they broadcast to every member, and only once every
	// payload event before them is group-acked, so a member that sees End
	// knows no unfinished work precedes it. Distinct groups (and fan-out
	// consumers) on one topic are independent.
	SubscribeGroup(ctx context.Context, topic, group, member string) (Subscription, error)
	// Close releases broker resources. Topic logs in external brokers
	// survive Close.
	Close() error
}

// Subscription is one consumer's cursor over a topic log. A subscription
// is owned by one goroutine; implementations need not support concurrent
// calls on a single subscription (brokers themselves are concurrent-safe).
type Subscription interface {
	// Next blocks until the event at the read cursor is available and
	// advances the cursor. The read cursor is local to the subscription;
	// only Ack moves the durable committed offset. For group
	// subscriptions, Next instead claims the earliest available event
	// under the broker's claim lease.
	Next(ctx context.Context) (Event, error)
	// Poll is the non-blocking Next: ok is false when no event is pending.
	Poll(ctx context.Context) (ev Event, ok bool, err error)
	// Ack commits the consumer's offset cumulatively past ev (acking event
	// k implies events 0..k are consumed) and returns how many distinct
	// consumers have acked ev — the counter behind evict-on-ack. Re-acking
	// an already-committed event does not inflate the count. For group
	// subscriptions, Ack settles this member's claim on ev (per-event,
	// not cumulative); the whole group counts as one distinct consumer in
	// the returned count, and an ack of a claim that was reclaimed by
	// another member after lease expiry is a no-op.
	Ack(ctx context.Context, ev Event) (int, error)
	// Close detaches the cursor. The committed offset survives, so a
	// later Subscribe with the same consumer name resumes. A group
	// member's unacked claims are not released by Close; they expire with
	// their leases and are then reclaimed by other members.
	Close() error
}

// --- Byte accounting ------------------------------------------------------

// CountingBroker wraps a Broker and tallies encoded event bytes moving
// through it, so tests and benches can assert the metadata plane stays
// metadata-sized while payloads move through the store.
type CountingBroker struct {
	Broker
	published atomic.Uint64
	delivered atomic.Uint64
}

// NewCounting wraps b.
func NewCounting(b Broker) *CountingBroker { return &CountingBroker{Broker: b} }

// Unwrap returns the wrapped broker, so AsKV can see through the counter.
func (c *CountingBroker) Unwrap() Broker { return c.Broker }

// BytesPublished returns total encoded bytes of published events.
func (c *CountingBroker) BytesPublished() uint64 { return c.published.Load() }

// BytesDelivered returns total encoded bytes of delivered events, summed
// across all consumers.
func (c *CountingBroker) BytesDelivered() uint64 { return c.delivered.Load() }

// Publish implements Broker.
func (c *CountingBroker) Publish(ctx context.Context, topic string, ev Event) error {
	c.published.Add(eventWireSize(ev))
	return c.Broker.Publish(ctx, topic, ev)
}

// PublishBatch implements Broker.
func (c *CountingBroker) PublishBatch(ctx context.Context, topic string, evs []Event) error {
	for _, ev := range evs {
		c.published.Add(eventWireSize(ev))
	}
	return c.Broker.PublishBatch(ctx, topic, evs)
}

// Subscribe implements Broker.
func (c *CountingBroker) Subscribe(ctx context.Context, topic, consumer string) (Subscription, error) {
	sub, err := c.Broker.Subscribe(ctx, topic, consumer)
	if err != nil {
		return nil, err
	}
	return &countingSub{Subscription: sub, c: c}, nil
}

// SubscribeGroup implements Broker.
func (c *CountingBroker) SubscribeGroup(ctx context.Context, topic, group, member string) (Subscription, error) {
	sub, err := c.Broker.SubscribeGroup(ctx, topic, group, member)
	if err != nil {
		return nil, err
	}
	return &countingSub{Subscription: sub, c: c}, nil
}

type countingSub struct {
	Subscription
	c *CountingBroker
}

func (s *countingSub) Next(ctx context.Context) (Event, error) {
	ev, err := s.Subscription.Next(ctx)
	if err == nil {
		s.c.delivered.Add(eventWireSize(ev))
	}
	return ev, err
}

func (s *countingSub) Poll(ctx context.Context) (Event, bool, error) {
	ev, ok, err := s.Subscription.Poll(ctx)
	if err == nil && ok {
		s.c.delivered.Add(eventWireSize(ev))
	}
	return ev, ok, err
}

// eventWireSize is the encoded size of ev; encoding failures count 0 and
// surface later on the real publish path.
func eventWireSize(ev Event) uint64 {
	data, err := EncodeEvent(ev)
	if err != nil {
		return 0
	}
	return uint64(len(data))
}
