package pstream_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/pstream/brokertest"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// --- Group consumption through the Consumer API ---------------------------

func TestGroupConsumersSplitWork(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	const items, members = 12, 3
	prod := pstream.NewProducer[int](st, b, "work")
	values := make([]int, items)
	for i := range values {
		values[i] = i
	}
	if err := prod.SendBatch(ctx, values); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if err := prod.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var mu sync.Mutex
	seen := make(map[int]string)
	var wg sync.WaitGroup
	errs := make(chan error, members)
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", m)
			cons, err := pstream.NewConsumer[int](ctx, b, "work", name,
				pstream.WithGroup("pool"), pstream.WithWindow(2))
			if err != nil {
				errs <- err
				return
			}
			defer cons.Close()
			for {
				v, err := cons.NextValue(ctx)
				if errors.Is(err, pstream.ErrEnd) {
					return
				}
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if prev, dup := seen[v]; dup {
					errs <- fmt.Errorf("value %d consumed by both %s and %s", v, prev, name)
					mu.Unlock()
					return
				}
				seen[v] = name
				mu.Unlock()
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != items {
		t.Fatalf("group consumed %d distinct values, want %d", len(seen), items)
	}
}

func TestGroupEvictOnAckReclaimsEverything(t *testing.T) {
	// A group counts as one distinct consumer, so WithEvictOnAck(1) must
	// garbage-collect every payload once the group has worked the queue.
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	const items = 8
	prod := pstream.NewProducer[string](st, b, "gc", pstream.WithEvictOnAck(1))
	for i := 0; i < items; i++ {
		if err := prod.Send(ctx, fmt.Sprintf("item-%d", i), nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	prod.Close(ctx)

	cons, err := pstream.NewConsumer[string](ctx, b, "gc", "solo", pstream.WithGroup("g"))
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	for {
		if _, err := cons.NextValue(ctx); errors.Is(err, pstream.ErrEnd) {
			break
		} else if err != nil {
			t.Fatalf("NextValue: %v", err)
		}
	}
	if got := st.Metrics().Evicts; got != items {
		t.Fatalf("store Evicts = %d, want %d", got, items)
	}
}

// --- Randomized property test ---------------------------------------------

// groupRecord is one acked delivery observed by the harness.
type groupRecord struct {
	member   string
	producer string
	seq      uint64
}

// runGroupWorkload drives producers×perProducer events through a jittered
// broker into members group consumers, killing killAfter members after
// they consume a few items without acking. It returns every acked
// delivery.
func runGroupWorkload(t *testing.T, b pstream.Broker, producers, perProducer, members, killMembers int) []groupRecord {
	t.Helper()
	ctx := context.Background()
	st := newLocalStore(t)
	topic := "prop-" + connector.NewID()[:8]

	var wg sync.WaitGroup
	errs := make(chan error, producers+members)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prod := pstream.NewProducer[int](st, b, topic,
				pstream.WithProducerID(fmt.Sprintf("p%d", p)))
			for i := 0; i < perProducer; i++ {
				if err := prod.Send(ctx, p*1_000_000+i, nil); err != nil {
					errs <- err
					return
				}
			}
			if err := prod.Close(ctx); err != nil {
				errs <- err
			}
		}(p)
	}

	var mu sync.Mutex
	var acked []groupRecord
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", m)
			cons, err := pstream.NewConsumer[int](ctx, b, topic, name,
				pstream.WithGroup("pool"), pstream.WithWindow(3),
				pstream.WithEndCount(producers))
			if err != nil {
				errs <- err
				return
			}
			defer cons.Close()
			doomed := m < killMembers
			claimed := 0
			for {
				cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
				it, err := cons.Next(cctx)
				cancel()
				if errors.Is(err, pstream.ErrEnd) {
					return
				}
				if err != nil {
					errs <- fmt.Errorf("%s: Next: %w", name, err)
					return
				}
				if doomed {
					// Crash with claims in hand: never ack, just vanish.
					if claimed++; claimed >= 2 {
						return
					}
					continue
				}
				if _, err := it.Value(ctx); err != nil {
					errs <- fmt.Errorf("%s: Value: %w", name, err)
					return
				}
				if err := it.Ack(ctx); err != nil {
					errs <- fmt.Errorf("%s: Ack: %w", name, err)
					return
				}
				mu.Lock()
				acked = append(acked, groupRecord{member: name, producer: it.Event.Producer, seq: it.Event.Seq})
				mu.Unlock()
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return acked
}

// assertExactlyOnce checks every produced event was acked exactly once
// across the whole group and nothing was lost.
func assertExactlyOnce(t *testing.T, acked []groupRecord, producers, perProducer int) {
	t.Helper()
	counts := make(map[string]int)
	for _, r := range acked {
		counts[r.producer+"/"+fmt.Sprint(r.seq)]++
	}
	if len(acked) != producers*perProducer {
		t.Fatalf("group acked %d deliveries, want %d", len(acked), producers*perProducer)
	}
	for p := 0; p < producers; p++ {
		for seq := uint64(1); seq <= uint64(perProducer); seq++ {
			key := fmt.Sprintf("p%d/%d", p, seq)
			if counts[key] != 1 {
				t.Fatalf("event %s acked %d times, want exactly 1", key, counts[key])
			}
		}
	}
}

func TestGroupPropertyCleanRun(t *testing.T) {
	producers, perProducer, members := 3, 30, 4
	if testing.Short() {
		perProducer = 10
	}
	// A lease far above total runtime: any duplicate here is a real claim
	// bug, not a slow member.
	b := brokertest.NewJitter(
		pstream.NewMem(pstream.WithMemLease(time.Minute)), 1, time.Millisecond)
	acked := runGroupWorkload(t, b, producers, perProducer, members, 0)
	assertExactlyOnce(t, acked, producers, perProducer)
	// Per-producer order: without reclamation, each member's claims are
	// issued in log order, so the subsequence of any producer's events a
	// single member acks must have strictly increasing Seq.
	last := make(map[string]uint64)
	for _, r := range acked {
		key := r.member + "|" + r.producer
		if r.seq <= last[key] {
			t.Fatalf("member %s saw producer %s Seq %d after %d",
				r.member, r.producer, r.seq, last[key])
		}
		last[key] = r.seq
	}
}

func TestGroupPropertyMemberCrash(t *testing.T) {
	producers, perProducer, members := 2, 20, 4
	if testing.Short() {
		perProducer = 8
	}
	// A short lease so the two crashed members' claims are reclaimed
	// quickly; survivors must still ack every event exactly once.
	b := brokertest.NewJitter(
		pstream.NewMem(pstream.WithMemLease(500*time.Millisecond)), 7, time.Millisecond)
	acked := runGroupWorkload(t, b, producers, perProducer, members, 2)
	assertExactlyOnce(t, acked, producers, perProducer)
}

// --- KVBroker compaction ---------------------------------------------------

func TestKVBrokerPublishBatchIsTwoRoundTrips(t *testing.T) {
	ctx := context.Background()
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	b := pstream.NewKV(srv.Addr())
	defer b.Close()

	evs := make([]pstream.Event, 64)
	for i := range evs {
		evs[i] = pstream.Event{Producer: "p", Seq: uint64(i + 1)}
	}
	before := srv.Commands()
	if err := b.PublishBatch(ctx, "rt", evs); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	if got := srv.Commands() - before; got != 2 {
		t.Fatalf("PublishBatch of 64 events cost %d server commands, want 2 (INCRBY + MSET)", got)
	}
	// Eager Publish pays 2 round trips per event.
	before = srv.Commands()
	if err := b.Publish(ctx, "rt", pstream.Event{Producer: "p", Seq: 65}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if got := srv.Commands() - before; got != 2 {
		t.Fatalf("single Publish cost %d commands, want 2", got)
	}
}

// TestKVBrokerTruncationBoundsServerKeys is the acceptance check for log
// compaction: a 1,000-event stream, fully consumed and acked with
// evict-on-ack payloads and WithKVTruncate, must leave the kv server with
// O(1) keys — not O(events) of log slots, ack counters and blobs.
func TestKVBrokerTruncationBoundsServerKeys(t *testing.T) {
	ctx := context.Background()
	items := 1000
	if testing.Short() {
		items = 128
	}
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Metadata and data planes share the server, as in a deployment that
	// reuses one redis for both.
	name := "pstream-trunc-" + connector.NewID()[:12]
	st, err := store.New(name, redisc.New(srv.Addr()),
		store.WithSerializer(serial.Raw()), store.WithCacheBytes(0))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Unregister(name)
	b := pstream.NewKV(srv.Addr(), pstream.WithKVTruncate(1))
	defer b.Close()

	prod := pstream.NewProducer[[]byte](st, b, "trunc", pstream.WithEvictOnAck(1))
	const chunk = 50
	payload := make([]byte, 128)
	for sent := 0; sent < items; sent += chunk {
		n := chunk
		if items-sent < n {
			n = items - sent
		}
		batch := make([][]byte, n)
		for i := range batch {
			payload[0] = byte(sent + i)
			batch[i] = append([]byte(nil), payload...)
		}
		if err := prod.SendBatch(ctx, batch); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
	}
	if err := prod.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cons, err := pstream.NewConsumer[[]byte](ctx, b, "trunc", "c", pstream.WithWindow(32))
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	consumed := 0
	for {
		v, err := cons.NextValue(ctx)
		if errors.Is(err, pstream.ErrEnd) {
			break
		}
		if err != nil {
			t.Fatalf("NextValue: %v", err)
		}
		if len(v) != len(payload) {
			t.Fatalf("item %d has %d bytes", consumed, len(v))
		}
		consumed++
	}
	if consumed != items {
		t.Fatalf("consumed %d items, want %d", consumed, items)
	}

	cli := kvstore.NewClient(srv.Addr())
	defer cli.Close()
	keys, err := cli.DBSize(ctx)
	if err != nil {
		t.Fatalf("DBSize: %v", err)
	}
	// Survivors: the log length counter, the truncation floor, the
	// consumer's committed offset, and the trailing End marker (plus a
	// window of not-yet-collected stragglers). Anything O(items) means a
	// leak of event slots, ack counters or payload blobs.
	if keys > 16 {
		t.Fatalf("server holds %d keys after a fully acked %d-event stream, want <= 16", keys, items)
	}
	if st.Metrics().Evicts != uint64(items) {
		t.Fatalf("store Evicts = %d, want %d", st.Metrics().Evicts, items)
	}
}
