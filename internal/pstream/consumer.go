package pstream

import (
	"context"
	"fmt"
	"sync/atomic"

	"proxystore/internal/proxy"
	"proxystore/internal/store"
)

// ConsumerStats are cumulative per-consumer counters.
type ConsumerStats struct {
	// Items is the number of payload events delivered.
	Items uint64
	// Prefetched counts items resolved through the batched prefetch path.
	Prefetched uint64
	// Evictions counts objects this consumer evicted under evict-on-ack.
	Evictions uint64
	// EvictErrors counts evict-on-ack attempts that failed. Eviction is
	// best-effort garbage collection: a failure leaks the object but does
	// not fail the ack (the offset is already committed).
	EvictErrors uint64
}

// ConsumerOption configures a Consumer.
type ConsumerOption func(*consumerConfig)

type consumerConfig struct {
	window int
	ends   int
	group  string
}

// WithWindow bounds the in-flight prefetch window: when a Next call finds
// multiple events pending, up to window of them are drained and their
// proxies resolved together with one batched store operation
// (store.ResolveBatch). window <= 1 disables prefetch, leaving proxies
// fully lazy. Default 16.
func WithWindow(n int) ConsumerOption {
	return func(c *consumerConfig) { c.window = n }
}

// WithEndCount sets how many producer end-of-stream markers complete the
// topic for this consumer (default 1 — single-producer topics). Use the
// topic's producer count for fan-in topics, or 0 to ignore End events and
// consume forever.
func WithEndCount(n int) ConsumerOption {
	return func(c *consumerConfig) { c.ends = n }
}

// WithGroup makes the consumer a member of the named consumer group: the
// topic becomes a work queue where each event is claimed by exactly one
// live member, under the broker's claim lease. The consumer name passed
// to NewConsumer identifies the member within the group. Members should
// ack promptly — a claim whose lease expires before Ack is redelivered to
// another member — and size the prefetch window so that
// window × per-item-time stays well inside the lease. End markers are
// delivered to every member (after all preceding work is acked), so
// WithEndCount works unchanged.
func WithGroup(group string) ConsumerOption {
	return func(c *consumerConfig) { c.group = group }
}

// Item is one delivered stream element: the event record plus a lazy proxy
// for the payload. Resolve with Value (or the proxy directly); call Ack
// once consumed so the consumer's offset commits and evict-on-ack can
// reclaim the object.
type Item[T any] struct {
	Event Event
	Proxy *proxy.Proxy[T]

	c     *Consumer[T]
	acked bool
}

// Value resolves the payload (batched prefetch may have already primed it).
func (it *Item[T]) Value(ctx context.Context) (T, error) {
	return it.Proxy.Value(ctx)
}

// Ack commits the consumer's offset past this item. When the item's
// producer enabled evict-on-ack and this ack is the last expected one, the
// payload is evicted from its store. Ack is idempotent per item. Eviction
// is best-effort: once the offset commit succeeds the ack succeeds, and an
// eviction failure only bumps ConsumerStats.EvictErrors (the event is
// consumed either way; failing it would discard a committed value).
func (it *Item[T]) Ack(ctx context.Context) error {
	if it.acked {
		return nil
	}
	n, err := it.c.sub.Ack(ctx, it.Event)
	if err != nil {
		return err
	}
	it.acked = true
	if want := it.Event.evictAfter(); want > 0 && n >= want {
		st, key, ok, err := store.KeyOf(it.Proxy)
		if err != nil || !ok {
			it.c.evictErrs.Add(1)
			return nil
		}
		if err := st.Evict(ctx, key); err != nil {
			it.c.evictErrs.Add(1)
			return nil
		}
		it.c.evicts.Add(1)
	}
	return nil
}

// Consumer iterates a topic as a stream of lazy proxies. Events arrive
// through the subscription's cursor; payloads stay in the data plane until
// a proxy resolves. When several events are pending, the consumer drains up
// to its window and resolves the batch with one backend round trip — the
// paper's proxy_batch applied to streams.
//
// A Consumer owns its subscription and must be used from one goroutine.
type Consumer[T any] struct {
	b     Broker
	sub   Subscription
	topic string
	name  string
	cfg   consumerConfig

	queue    []*Item[T]
	endsSeen int

	items      atomic.Uint64
	prefetched atomic.Uint64
	evicts     atomic.Uint64
	evictErrs  atomic.Uint64
}

// NewConsumer subscribes consumer name to topic. Events carry
// self-contained proxies, so no store handle is needed: proxies
// materialize their stores from embedded configs, exactly like proxies
// passed between processes. With WithGroup, name identifies this member
// inside the group and the subscription claims events instead of fanning
// out.
func NewConsumer[T any](ctx context.Context, b Broker, topic, name string, opts ...ConsumerOption) (*Consumer[T], error) {
	cfg := consumerConfig{window: 16, ends: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.window < 1 {
		cfg.window = 1
	}
	var sub Subscription
	var err error
	if cfg.group != "" {
		sub, err = b.SubscribeGroup(ctx, topic, cfg.group, name)
	} else {
		sub, err = b.Subscribe(ctx, topic, name)
	}
	if err != nil {
		return nil, err
	}
	return &Consumer[T]{b: b, sub: sub, topic: topic, name: name, cfg: cfg}, nil
}

// Stats returns a snapshot of the consumer's counters.
func (c *Consumer[T]) Stats() ConsumerStats {
	return ConsumerStats{
		Items:       c.items.Load(),
		Prefetched:  c.prefetched.Load(),
		Evictions:   c.evicts.Load(),
		EvictErrors: c.evictErrs.Load(),
	}
}

// item wraps a delivered event, deserializing its payload proxy.
func (c *Consumer[T]) item(ev Event) (*Item[T], error) {
	p := new(proxy.Proxy[T])
	if err := p.UnmarshalBinary(ev.ProxyData); err != nil {
		return nil, fmt.Errorf("pstream: rebuilding payload proxy: %w", err)
	}
	return &Item[T]{Event: ev, Proxy: p, c: c}, nil
}

// handleEnd counts an End event toward stream completion. End markers are
// deliberately never acked: committing past one would make a consumer that
// fully consumed a stream and reconnected block forever instead of seeing
// the redelivered marker and returning ErrEnd again. (Item acks are
// cumulative, so an End a consumer skipped past mid-stream on a fan-in
// topic is covered by later item acks and not redelivered — resuming
// consumers on multi-producer topics should size WithEndCount to the
// producers still open, or use 0 and bound consumption externally.)
func (c *Consumer[T]) handleEnd(_ context.Context, _ Event) (done bool, err error) {
	c.endsSeen++
	return c.cfg.ends > 0 && c.endsSeen >= c.cfg.ends, nil
}

// Next returns the next stream item, blocking until one is published. It
// returns ErrEnd once the expected number of producers have closed. When
// the topic has a backlog, Next drains up to the prefetch window and primes
// the whole batch with one batched store get before returning the first
// item.
func (c *Consumer[T]) Next(ctx context.Context) (*Item[T], error) {
	for {
		if len(c.queue) > 0 {
			it := c.queue[0]
			c.queue = c.queue[1:]
			return it, nil
		}
		if c.complete() {
			return nil, ErrEnd
		}
		ev, err := c.sub.Next(ctx)
		if err != nil {
			return nil, err
		}
		if ev.isGap() {
			continue
		}
		if ev.End {
			done, err := c.handleEnd(ctx, ev)
			if err != nil {
				return nil, err
			}
			if done {
				return nil, ErrEnd
			}
			continue
		}
		first, err := c.item(ev)
		if err != nil {
			return nil, err
		}
		batch := []*Item[T]{first}
		// Drain whatever is already pending, up to the window, without
		// blocking: these are "free" events whose payloads can be fetched
		// together. Errors mid-drain must not discard events already taken
		// off the subscription cursor — they would be skipped for the rest
		// of the session — so a Poll failure just stops the drain (a
		// persistent one resurfaces on the next blocking Next), and a
		// corrupt event surfaces its error only after the good drained
		// items are queued for delivery.
		var drainErr error
		for len(batch) < c.cfg.window {
			ev, ok, err := c.sub.Poll(ctx)
			if err != nil || !ok {
				break
			}
			if ev.isGap() {
				continue
			}
			if ev.End {
				done, err := c.handleEnd(ctx, ev)
				if err != nil {
					drainErr = err
					break
				}
				if done {
					// Deliver the drained items first; ErrEnd surfaces
					// once the queue runs dry.
					break
				}
				continue
			}
			it, err := c.item(ev)
			if err != nil {
				drainErr = err
				break
			}
			batch = append(batch, it)
		}
		if len(batch) > 1 {
			proxies := make([]*proxy.Proxy[T], len(batch))
			for i, it := range batch {
				proxies[i] = it.Proxy
			}
			// Prefetch is an optimization: on failure the items are
			// delivered lazy and each Value surfaces its own error.
			if err := store.ResolveBatch(ctx, proxies); err == nil {
				c.prefetched.Add(uint64(len(batch)))
			}
		}
		c.items.Add(uint64(len(batch)))
		c.queue = batch[1:]
		if drainErr != nil {
			// The queued items deliver on subsequent calls; report the
			// corrupt event now.
			c.queue = batch
			return nil, drainErr
		}
		return batch[0], nil
	}
}

// complete reports whether all expected End markers have been seen.
func (c *Consumer[T]) complete() bool {
	return c.cfg.ends > 0 && c.endsSeen >= c.cfg.ends
}

// NextValue is Next + Value + Ack: the convenience loop body for consumers
// that want at-most-window pipelining without touching items.
func (c *Consumer[T]) NextValue(ctx context.Context) (T, error) {
	var zero T
	it, err := c.Next(ctx)
	if err != nil {
		return zero, err
	}
	v, err := it.Value(ctx)
	if err != nil {
		return zero, err
	}
	if err := it.Ack(ctx); err != nil {
		return zero, err
	}
	return v, nil
}

// Close detaches the subscription; the committed offset survives for a
// later NewConsumer with the same name.
func (c *Consumer[T]) Close() error { return c.sub.Close() }
