package pstream_test

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/pstream/brokertest"
)

// TestKVBrokerChurn runs the heartbeat/churn battery against KVBrokers
// sharing one kvstore server: heartbeat-driven reclamation must beat the
// lease, and a 32-member join/leave storm must keep exactly-once delivery
// and GC every membership key.
func TestKVBrokerChurn(t *testing.T) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := kvstore.NewClient(srv.Addr())
	t.Cleanup(func() { cli.Close() })

	brokertest.RunChurn(t,
		func(t *testing.T, lease, heartbeat time.Duration) *pstream.KVBroker {
			return pstream.NewKV(srv.Addr(),
				pstream.WithKVLease(lease),
				pstream.WithKVHeartbeat(heartbeat),
				pstream.WithKVTruncate(1))
		},
		brokertest.ChurnOptions{
			DBSize: func() (int64, error) { return cli.DBSize(context.Background()) },
			DebugMGet: func(keys ...string) [][]byte {
				raws, _ := cli.MGet(context.Background(), keys...)
				return raws
			},
		})
}
