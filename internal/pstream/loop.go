package pstream

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Strikes counts failed deliveries per log offset, so task-plane workers
// can tell transient payload-resolution failures (leave the claim to its
// lease and retry on redelivery) from permanent ones (report an error
// result and settle after a bounded number of strikes, instead of
// livelocking the whole group on lease cadence over a poison task).
// Safe for concurrent use; zero value not usable — see NewStrikes.
type Strikes struct {
	mu     sync.Mutex
	counts map[uint64]int
}

// NewStrikes returns an empty counter.
func NewStrikes() *Strikes { return &Strikes{counts: make(map[uint64]int)} }

// Strike records one failure for offset and returns the total so far.
func (s *Strikes) Strike(offset uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[offset]++
	return s.counts[offset]
}

// Clear forgets an offset (call on success or after settling it).
func (s *Strikes) Clear(offset uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.counts, offset)
}

// DefaultSettleStrikes is how many failed deliveries of one task (one
// lease cycle each) a worker pool tolerates before treating the payload
// as permanently lost: transient store outages heal within a strike or
// two, and a poison task stops burning broker commands.
const DefaultSettleStrikes = 3

// SettleAfterStrikes is the poison-task policy shared by the task plane's
// workers (faas endpoints, colmena servers): record one strike for the
// item's offset and, once strikes reach max, run publish (the caller
// reports the failure as the task's result), then clear the offset and
// settle the claim. Below the threshold — or if publish fails — it does
// nothing, leaving the claim to its lease so the task is redelivered.
func SettleAfterStrikes[T any](ctx context.Context, strikes *Strikes, it *Item[T], max int, publish func() error) {
	if ctx.Err() != nil {
		return
	}
	if strikes.Strike(it.Event.Offset) < max {
		return
	}
	if err := publish(); err != nil {
		return
	}
	strikes.Clear(it.Event.Offset)
	_ = it.Ack(ctx)
}

// loopBackoffCap bounds ConsumeLoop's exponential backoff at this many
// multiples of the base retry interval (50 ms base → 1.6 s cap).
const loopBackoffCap = 32

// ConsumeLoop drives a long-lived consumer until ctx is canceled: it
// retries subscribe until it succeeds — brokers over external services
// can fail transiently at startup — then delivers every item to handle,
// backing off on transient Next errors. Retries use capped exponential
// backoff with jitter starting at retry (default 50 ms): consecutive
// failures double the pause up to 32× the base, each pause is jittered
// over [½, 1½]× so a fleet of restarting workers doesn't thundering-herd
// a recovering broker, and any success resets the pause to the base. It
// returns when ctx is canceled or the stream ends (ErrEnd). It is the
// shared worker loop behind the stream-backed task plane: faas endpoint
// workers, colmena workers, and result dispatchers all run it.
//
// handle owns each item's lifecycle (resolve, ack); the loop never acks.
func ConsumeLoop[T any](ctx context.Context, retry time.Duration, subscribe func() (*Consumer[T], error), handle func(context.Context, *Item[T])) {
	if retry <= 0 {
		retry = 50 * time.Millisecond
	}
	delay := retry
	pause := func() bool {
		// Jitter over [½, 1½]× delay, then double for the next failure.
		d := delay/2 + time.Duration(rand.Int63n(int64(delay)))
		if delay < loopBackoffCap*retry {
			delay *= 2
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	var cons *Consumer[T]
	for cons == nil {
		var err error
		if cons, err = subscribe(); err != nil {
			if !pause() {
				return
			}
		}
	}
	defer cons.Close()
	delay = retry
	for {
		it, err := cons.Next(ctx)
		if err != nil {
			if errors.Is(err, ErrEnd) || ctx.Err() != nil || !pause() {
				return
			}
			continue
		}
		delay = retry
		handle(ctx, it)
	}
}
