package pstream

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/proxy"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
)

// AttrPubTime stamps each payload event with the producer's publish
// wall-clock (UnixNano, decimal). Brokers that can observe delivery —
// today KVBroker — subtract it from the delivery time to feed their
// publish→deliver histograms. Like the ot.trace/ot.span pair it lives
// in the "ot." attr namespace reserved for cross-plane telemetry.
const AttrPubTime = "ot.pub"

// ProducerStats are cumulative per-producer counters.
type ProducerStats struct {
	// Items is the number of payload events published (End excluded).
	Items uint64
	// PayloadBytes is the stored size of published payloads.
	PayloadBytes uint64
}

// ProducerOption configures a Producer.
type ProducerOption func(*producerConfig)

type producerConfig struct {
	evictAfter int
	evictSizer func() int
	id         string
}

// WithEvictOnAck opts published objects into the evict-on-ack lifetime
// policy: once consumers distinct consumers have acked an event, the acking
// consumer evicts the object from its store, so consumed stream items are
// garbage-collected automatically. The producer must know the topic's
// consumer count; an undercount evicts before everyone has read.
//
// Eviction triggers on the ack of the event itself — consumers must ack
// each item (as Item.Ack/NextValue do). Items skipped over by a cumulative
// ack of a later event have their counters advanced but no acking consumer
// observing the threshold, so their objects are not reclaimed.
func WithEvictOnAck(consumers int) ProducerOption {
	return func(c *producerConfig) { c.evictAfter = consumers }
}

// WithEvictSizer is WithEvictOnAck with a live threshold: sizer is
// consulted per published event, so producers feeding a fleet whose
// consumer count changes — e.g. pstream Membership.Sizer counting a
// group's live members — size the evict-on-ack policy automatically
// instead of hand-counting consumers. A sizer return of 0 or less leaves
// the policy off for that event (no threshold is safer than a wrong one:
// an undercount evicts before everyone has read). Overrides WithEvictOnAck
// when both are set.
func WithEvictSizer(sizer func() int) ProducerOption {
	return func(c *producerConfig) { c.evictSizer = sizer }
}

// WithProducerID pins the producer's ID (default: a fresh UUID). Stable IDs
// let a restarted producer keep its identity in per-producer ordering.
func WithProducerID(id string) ProducerOption {
	return func(c *producerConfig) { c.id = id }
}

// Producer publishes a stream of T values: each value is stored through the
// Store (streamed puts for large payloads, batched puts via SendBatch) and
// announced to the topic with a compact event carrying a self-contained
// proxy.
//
// A Producer is safe for concurrent use; per-producer Seq order matches
// publish order only when Send calls are not concurrent with each other.
type Producer[T any] struct {
	st    *store.Store
	b     Broker
	topic string
	cfg   producerConfig
	seq   atomic.Uint64

	items atomic.Uint64
	bytes atomic.Uint64
}

// NewProducer returns a producer publishing to topic, storing payloads in
// st and events through b.
func NewProducer[T any](st *store.Store, b Broker, topic string, opts ...ProducerOption) *Producer[T] {
	cfg := producerConfig{id: connector.NewID()}
	for _, o := range opts {
		o(&cfg)
	}
	return &Producer[T]{st: st, b: b, topic: topic, cfg: cfg}
}

// ID returns the producer's identity used in event records.
func (p *Producer[T]) ID() string { return p.cfg.id }

// Stats returns a snapshot of the producer's counters.
func (p *Producer[T]) Stats() ProducerStats {
	return ProducerStats{Items: p.items.Load(), PayloadBytes: p.bytes.Load()}
}

// event assembles the record for an already-stored payload.
func (p *Producer[T]) event(pxy *proxy.Proxy[T], key connector.Key, attrs map[string]string) (Event, error) {
	data, err := pxy.MarshalBinary()
	if err != nil {
		return Event{}, fmt.Errorf("pstream: serializing payload proxy: %w", err)
	}
	ev := Event{
		Topic:     p.topic,
		Producer:  p.cfg.id,
		Seq:       p.seq.Add(1),
		Key:       key,
		ProxyData: data,
	}
	ev.Attrs = make(map[string]string, len(attrs)+2)
	for k, v := range attrs {
		ev.Attrs[k] = v
	}
	evictAfter := p.cfg.evictAfter
	if p.cfg.evictSizer != nil {
		evictAfter = p.cfg.evictSizer()
	}
	if evictAfter > 0 {
		ev.Attrs[attrEvictAfter] = strconv.Itoa(evictAfter)
	}
	ev.Attrs[AttrPubTime] = strconv.FormatInt(time.Now().UnixNano(), 10)
	return ev, nil
}

// publishSpan opens a "publish" span when the caller's attrs carry a
// trace (ot.trace), parented under the caller's span (ot.span). Returns
// nil — inert — for untraced sends, so the hot path pays only a map
// lookup.
func publishSpan(attrs map[string]string) *telemetry.Span {
	trace := attrs[telemetry.AttrTrace]
	if trace == "" {
		return nil
	}
	return telemetry.Default().StartSpan(trace, attrs[telemetry.AttrSpan], "publish")
}

// Send stores v and publishes its event. Large payloads stream into the
// connector when the store's serializer and connector support it, so the
// producer never materializes more than O(chunk) beyond the value itself.
// attrs, if given, travel in the event record — keep them small; names
// starting with "ps." are reserved.
func (p *Producer[T]) Send(ctx context.Context, v T, attrs map[string]string) error {
	sp := publishSpan(attrs)
	defer sp.End()
	key, err := p.st.PutObject(ctx, v)
	if err != nil {
		return err
	}
	ev, err := p.event(store.ProxyFromKey[T](p.st, key), key, attrs)
	if err != nil {
		p.unput(ctx, key)
		return err
	}
	if err := p.b.Publish(ctx, p.topic, ev); err != nil {
		p.unput(ctx, key)
		return err
	}
	p.items.Add(1)
	p.bytes.Add(uint64(key.Size))
	return nil
}

// unput best-effort evicts a stored payload whose event never reached the
// broker — no consumer can ever learn the key, so leaving it would leak.
// The evict runs detached from the caller's cancellation, which may be the
// very reason the publish failed.
func (p *Producer[T]) unput(ctx context.Context, key connector.Key) {
	p.st.Evict(context.WithoutCancel(ctx), key)
}

// SendBatch stores values with one batched backend operation
// (Store.PutBatch) and announces them with one batched broker operation
// (Broker.PublishBatch) — both halves of the batched streaming fast path
// pay O(1) round trips per batch. attrs, when non-nil, must be
// len(values) long: attrs[i] travels in value i's event record.
func (p *Producer[T]) SendBatch(ctx context.Context, values []T, attrs ...[]map[string]string) error {
	if len(values) == 0 {
		return nil
	}
	var perValue []map[string]string
	if len(attrs) > 0 && attrs[0] != nil {
		if len(attrs[0]) != len(values) {
			return fmt.Errorf("pstream: SendBatch got %d attr maps for %d values", len(attrs[0]), len(values))
		}
		perValue = attrs[0]
	}
	anyValues := make([]any, len(values))
	for i, v := range values {
		anyValues[i] = v
	}
	keys, err := p.st.PutBatch(ctx, anyValues)
	if err != nil {
		return err
	}
	unputAll := func() {
		for _, k := range keys {
			p.unput(ctx, k)
		}
	}
	evs := make([]Event, len(keys))
	for i, key := range keys {
		var a map[string]string
		if perValue != nil {
			a = perValue[i]
		}
		ev, err := p.event(store.ProxyFromKey[T](p.st, key), key, a)
		if err != nil {
			unputAll()
			return err
		}
		evs[i] = ev
	}
	if err := p.b.PublishBatch(ctx, p.topic, evs); err != nil {
		// None of the values were announced; reclaim them all. (A batch
		// publish that failed after a partial server-side append leaves
		// gap-marked slots, never half-announced values.)
		unputAll()
		return err
	}
	for _, key := range keys {
		p.items.Add(1)
		p.bytes.Add(uint64(key.Size))
	}
	return nil
}

// Close publishes the producer's end-of-stream marker. Consumers configured
// with the topic's producer count stop after collecting every marker. Close
// does not close the store or broker, which the producer borrows.
func (p *Producer[T]) Close(ctx context.Context) error {
	ev := Event{
		Topic:    p.topic,
		Producer: p.cfg.id,
		Seq:      p.seq.Add(1),
		End:      true,
	}
	return p.b.Publish(ctx, p.topic, ev)
}
