package pstream_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/pstream/brokertest"
	"proxystore/internal/relay"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// --- Broker conformance ---------------------------------------------------

// conformanceLease keeps the battery's lease-expiry subtests fast while
// staying comfortably above scheduler noise under -race.
const conformanceLease = 300 * time.Millisecond

func TestMemBrokerConformance(t *testing.T) {
	brokertest.Run(t, func(t *testing.T) pstream.Broker {
		return pstream.NewMem(pstream.WithMemLease(conformanceLease))
	}, brokertest.Options{ClaimLease: conformanceLease})
}

func TestKVBrokerConformance(t *testing.T) {
	// The kv server persists to an AOF and is restarted in place by the
	// battery's restart-mid-stream fault: logs, offsets, ack counters and
	// claim records must all survive.
	aof := filepath.Join(t.TempDir(), "broker.aof")
	srv, err := kvstore.NewServer("127.0.0.1:0", kvstore.WithPersistence(aof))
	if err != nil {
		t.Fatalf("kvstore server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()
	restart := func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		next, err := kvstore.NewServer(addr, kvstore.WithPersistence(aof))
		if err != nil {
			return err
		}
		srv = next
		return nil
	}
	brokertest.Run(t, func(t *testing.T) pstream.Broker {
		return pstream.NewKV(addr, pstream.WithKVLease(conformanceLease))
	}, brokertest.Options{
		ClaimLease:     conformanceLease,
		Restart:        restart,
		Commands:       func() uint64 { return srv.Commands() },
		NewFailoverEnv: newKVFailoverEnv,
	})
}

// newKVFailoverEnv builds a fresh primary/replica pair (each with its own
// AOF, the replica following over REPLICATE) and a broker addressed with
// the cluster spec "primary|replica"; kill gracefully closes the primary,
// which drains the replication feed first — every client-acknowledged
// write is on the replica before the box disappears.
func newKVFailoverEnv(t *testing.T) (pstream.Broker, func() error) {
	dir := t.TempDir()
	prim, err := kvstore.NewServer("127.0.0.1:0",
		kvstore.WithPersistence(filepath.Join(dir, "primary.aof")))
	if err != nil {
		t.Fatalf("kvstore primary: %v", err)
	}
	t.Cleanup(func() { prim.Close() })
	repl, err := kvstore.NewServer("127.0.0.1:0",
		kvstore.WithPersistence(filepath.Join(dir, "replica.aof")),
		kvstore.WithReplicaOf(prim.Addr()))
	if err != nil {
		t.Fatalf("kvstore replica: %v", err)
	}
	t.Cleanup(func() { repl.Close() })
	b := pstream.NewKV(prim.Addr()+"|"+repl.Addr(), pstream.WithKVLease(conformanceLease))
	return b, prim.Close
}

// TestKVBrokerShardedConformance runs the full battery against a broker
// whose kvstore tier is two shards, each a replicated primary/replica
// pair — the production shape. Every topic's keys stay shard-local, so
// the whole conformance surface (groups, leases, truncation, push
// delivery) must behave exactly as on one box; the failover battery
// kills both primaries at once and the stream finishes on the promoted
// replicas.
func TestKVBrokerShardedConformance(t *testing.T) {
	dir := t.TempDir()
	var shards []string
	var srvs []*kvstore.Server
	for i := 0; i < 2; i++ {
		srv, err := kvstore.NewServer("127.0.0.1:0",
			kvstore.WithPersistence(filepath.Join(dir, fmt.Sprintf("shard%d.aof", i))))
		if err != nil {
			t.Fatalf("kvstore shard %d: %v", i, err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs = append(srvs, srv)
		shards = append(shards, srv.Addr())
	}
	spec := shards[0] + "," + shards[1]
	brokertest.Run(t, func(t *testing.T) pstream.Broker {
		return pstream.NewKV(spec, pstream.WithKVLease(conformanceLease))
	}, brokertest.Options{
		ClaimLease: conformanceLease,
		Commands:   func() uint64 { return srvs[0].Commands() + srvs[1].Commands() },
		NewFailoverEnv: func(t *testing.T) (pstream.Broker, func() error) {
			dir := t.TempDir()
			var specs []string
			var prims []*kvstore.Server
			for i := 0; i < 2; i++ {
				prim, err := kvstore.NewServer("127.0.0.1:0",
					kvstore.WithPersistence(filepath.Join(dir, fmt.Sprintf("p%d.aof", i))))
				if err != nil {
					t.Fatalf("kvstore primary %d: %v", i, err)
				}
				t.Cleanup(func() { prim.Close() })
				repl, err := kvstore.NewServer("127.0.0.1:0",
					kvstore.WithPersistence(filepath.Join(dir, fmt.Sprintf("r%d.aof", i))),
					kvstore.WithReplicaOf(prim.Addr()))
				if err != nil {
					t.Fatalf("kvstore replica %d: %v", i, err)
				}
				t.Cleanup(func() { repl.Close() })
				prims = append(prims, prim)
				specs = append(specs, prim.Addr()+"|"+repl.Addr())
			}
			b := pstream.NewKV(specs[0]+","+specs[1], pstream.WithKVLease(conformanceLease))
			kill := func() error {
				var firstErr error
				for _, prim := range prims {
					if err := prim.Close(); err != nil && firstErr == nil {
						firstErr = err
					}
				}
				return firstErr
			}
			return b, kill
		},
	})
}

// TestKVBrokerPollingFallbackConformance runs the whole battery over the
// pre-push polling path (WithKVPush(false)): the fallback that serves old
// servers must stay fully conformant, not merely limp.
func TestKVBrokerPollingFallbackConformance(t *testing.T) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("kvstore server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	brokertest.Run(t, func(t *testing.T) pstream.Broker {
		return pstream.NewKV(srv.Addr(),
			pstream.WithKVLease(conformanceLease), pstream.WithKVPush(false))
	}, brokertest.Options{ClaimLease: conformanceLease})
}

// TestKVBrokerTaggedFallbackConformance runs the full battery — restart
// fault included — against a server that has the blocking waits but
// predates their tagged (multiplexed) variants: the client must latch the
// untagged per-connection protocol after one unknown-command reply and
// stay fully conformant on it.
func TestKVBrokerTaggedFallbackConformance(t *testing.T) {
	aof := filepath.Join(t.TempDir(), "broker.aof")
	srv, err := kvstore.NewServer("127.0.0.1:0",
		kvstore.WithPersistence(aof), kvstore.WithoutTaggedWaits())
	if err != nil {
		t.Fatalf("kvstore server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()
	restart := func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		next, err := kvstore.NewServer(addr,
			kvstore.WithPersistence(aof), kvstore.WithoutTaggedWaits())
		if err != nil {
			return err
		}
		srv = next
		return nil
	}
	brokertest.Run(t, func(t *testing.T) pstream.Broker {
		return pstream.NewKV(addr, pstream.WithKVLease(conformanceLease))
	}, brokertest.Options{
		ClaimLease: conformanceLease,
		Restart:    restart,
		Commands:   func() uint64 { return srv.Commands() },
	})
}

// TestKVBrokerIdleGroupHoldsOneWaitConnection is the connection-scaling
// guarantee behind the wait multiplexer: N parked group members share ONE
// blocking-wait connection instead of pinning one each, so an idle group
// holds O(1) TCP connections total. Member starts are staggered so their
// scan commands reuse the single pooled command connection — everything
// the count then measures is what parking actually costs.
func TestKVBrokerIdleGroupHoldsOneWaitConnection(t *testing.T) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("kvstore server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	b := pstream.NewKV(srv.Addr())
	t.Cleanup(func() { b.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const members = 8
	var wg sync.WaitGroup
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		sub, err := b.SubscribeGroup(ctx, "idle-conns", "g", fmt.Sprintf("m%d", i))
		if err != nil {
			t.Fatalf("SubscribeGroup: %v", err)
		}
		defer sub.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sub.Next(ctx); err != nil {
				errs <- err
			}
		}()
		time.Sleep(20 * time.Millisecond) // serialize the pre-park scans
	}
	time.Sleep(200 * time.Millisecond) // all members parked in blocking waits
	if got := b.Dials(); got > 4 {
		t.Fatalf("%d idle group members hold %d connections, want O(1) (<=4: one command conn + one shared wait mux)", members, got)
	}
	// Unpark everyone: one event per member.
	evs := make([]pstream.Event, members)
	for i := range evs {
		evs[i] = pstream.Event{Producer: "p", Seq: uint64(i + 1)}
	}
	if err := b.PublishBatch(ctx, "idle-conns", evs); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKVBrokerFallsBackOnLegacyServer drives a broker with push enabled
// against a server that answers WAITGET/WAITPREFIX with unknown-command
// errors (a build predating them): the broker must degrade to polling
// transparently — blocked Next still wakes, nothing errors to the caller.
func TestKVBrokerFallsBackOnLegacyServer(t *testing.T) {
	srv, err := kvstore.NewServer("127.0.0.1:0", kvstore.WithoutWaitCommands())
	if err != nil {
		t.Fatalf("kvstore server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	b := pstream.NewKV(srv.Addr(), pstream.WithKVLease(conformanceLease))
	t.Cleanup(func() { b.Close() })
	ctx := context.Background()

	sub, err := b.Subscribe(ctx, "legacy", "c1")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	got := make(chan pstream.Event, 1)
	errs := make(chan error, 1)
	go func() {
		nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		e, err := sub.Next(nctx)
		if err != nil {
			errs <- err
			return
		}
		got <- e
	}()
	time.Sleep(50 * time.Millisecond) // Next hits the unknown command, falls back
	if err := b.Publish(ctx, "legacy", pstream.Event{Producer: "p", Seq: 1}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case e := <-got:
		if e.Seq != 1 {
			t.Fatalf("fallback Next delivered Seq %d", e.Seq)
		}
	case err := <-errs:
		t.Fatalf("Next against legacy server: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("fallback Next did not deliver")
	}

	// Group members degrade the same way.
	gsub, err := b.SubscribeGroup(ctx, "legacy", "g", "m")
	if err != nil {
		t.Fatalf("SubscribeGroup: %v", err)
	}
	defer gsub.Close()
	nctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	e, err := gsub.Next(nctx)
	if err != nil || e.Seq != 1 {
		t.Fatalf("group Next on legacy server = %+v, %v", e, err)
	}
	if _, err := gsub.Ack(ctx, e); err != nil {
		t.Fatalf("Ack: %v", err)
	}
}

func TestNetBrokerConformance(t *testing.T) {
	brokertest.Run(t, func(t *testing.T) pstream.Broker {
		srv, err := pstream.ServeNet("127.0.0.1:0", pstream.WithMemLease(conformanceLease))
		if err != nil {
			t.Fatalf("broker server: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		return pstream.DialNet(srv.Addr())
	}, brokertest.Options{ClaimLease: conformanceLease})
}

func TestNetBrokerRelayDiscovery(t *testing.T) {
	ctx := context.Background()
	rs, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("relay: %v", err)
	}
	defer rs.Close()

	srv, err := pstream.ServeNet("127.0.0.1:0")
	if err != nil {
		t.Fatalf("broker server: %v", err)
	}
	defer srv.Close()
	uuid, err := srv.AnnounceRelay(rs.Addr(), "")
	if err != nil {
		t.Fatalf("AnnounceRelay: %v", err)
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	b, err := pstream.DialNetRelay(dctx, rs.Addr(), uuid)
	if err != nil {
		t.Fatalf("DialNetRelay: %v", err)
	}
	defer b.Close()

	if err := b.Publish(ctx, "t", pstream.Event{Producer: "p", Seq: 1}); err != nil {
		t.Fatalf("Publish through discovered broker: %v", err)
	}
	sub, err := b.Subscribe(ctx, "t", "c")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	ev, err := sub.Next(dctx)
	if err != nil || ev.Seq != 1 {
		t.Fatalf("Next = %+v, %v", ev, err)
	}
}

// --- Producer/Consumer end to end ----------------------------------------

// newLocalStore registers a uniquely named store over the local connector.
func newLocalStore(t *testing.T) *store.Store {
	t.Helper()
	name := "pstream-test-" + connector.NewID()[:12]
	st, err := store.New(name, local.New(name+"-conn"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Unregister(name) })
	return st
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	prod := pstream.NewProducer[string](st, b, "words")
	for _, w := range []string{"alpha", "bravo", "charlie"} {
		if err := prod.Send(ctx, w, nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := prod.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cons, err := pstream.NewConsumer[string](ctx, b, "words", "c1")
	if err != nil {
		t.Fatalf("NewConsumer: %v", err)
	}
	defer cons.Close()
	var got []string
	for {
		v, err := cons.NextValue(ctx)
		if errors.Is(err, pstream.ErrEnd) {
			break
		}
		if err != nil {
			t.Fatalf("NextValue: %v", err)
		}
		got = append(got, v)
	}
	want := []string{"alpha", "bravo", "charlie"}
	if len(got) != len(want) {
		t.Fatalf("consumed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s := prod.Stats(); s.Items != 3 {
		t.Fatalf("producer stats = %+v", s)
	}
	if s := cons.Stats(); s.Items != 3 {
		t.Fatalf("consumer stats = %+v", s)
	}
}

func TestConsumerLazyProxies(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	prod := pstream.NewProducer[[]byte](st, b, "lazy")
	if err := prod.Send(ctx, []byte("payload"), nil); err != nil {
		t.Fatalf("Send: %v", err)
	}

	// Window 1 disables prefetch: the delivered proxy must still be lazy.
	cons, err := pstream.NewConsumer[[]byte](ctx, b, "lazy", "c", pstream.WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	it, err := cons.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if it.Proxy.Resolved() {
		t.Fatal("proxy resolved before Value despite window=1")
	}
	v, err := it.Value(ctx)
	if err != nil || string(v) != "payload" {
		t.Fatalf("Value = %q, %v", v, err)
	}
}

func TestConsumerBatchPrefetch(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	prod := pstream.NewProducer[string](st, b, "batch")
	if err := prod.SendBatch(ctx, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}

	cons, err := pstream.NewConsumer[string](ctx, b, "batch", "c", pstream.WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	it, err := cons.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	// The backlog was pending at the first Next, so the whole batch must
	// arrive primed.
	if !it.Proxy.Resolved() {
		t.Fatal("first item not primed by batch prefetch")
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		v, err := it.Value(ctx)
		if err != nil || v != want {
			t.Fatalf("Value = %q, %v; want %q", v, err, want)
		}
		if err := it.Ack(ctx); err != nil {
			t.Fatalf("Ack: %v", err)
		}
		if want == "d" {
			break
		}
		it, err = cons.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if s := cons.Stats(); s.Prefetched != 4 {
		t.Fatalf("Prefetched = %d, want 4", s.Prefetched)
	}
}

func TestEvictOnAck(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	prod := pstream.NewProducer[string](st, b, "evict", pstream.WithEvictOnAck(2))
	if err := prod.Send(ctx, "transient", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}

	read := func(name string) *pstream.Item[string] {
		cons, err := pstream.NewConsumer[string](ctx, b, "evict", name, pstream.WithWindow(1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cons.Close() })
		it, err := cons.Next(ctx)
		if err != nil {
			t.Fatalf("Next(%s): %v", name, err)
		}
		if _, err := it.Value(ctx); err != nil {
			t.Fatalf("Value(%s): %v", name, err)
		}
		return it
	}

	itA := read("a")
	itB := read("b")
	key := itA.Event.Key
	if err := itA.Ack(ctx); err != nil {
		t.Fatalf("Ack a: %v", err)
	}
	// One ack of two: the object must survive.
	if ok, err := st.Exists(ctx, key); err != nil || !ok {
		t.Fatalf("object gone after first ack: ok=%v err=%v", ok, err)
	}
	if err := itB.Ack(ctx); err != nil {
		t.Fatalf("Ack b: %v", err)
	}
	if ok, err := st.Exists(ctx, key); err != nil || ok {
		t.Fatalf("object survived final ack: ok=%v err=%v", ok, err)
	}
	if st.Metrics().Evicts != 1 {
		t.Fatalf("store Evicts = %d, want 1", st.Metrics().Evicts)
	}
}

func TestMultiProducerFanIn(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	const producers, per = 3, 5
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prod := pstream.NewProducer[int](st, b, "fanin")
			for i := 0; i < per; i++ {
				if err := prod.Send(ctx, p*100+i, nil); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
			prod.Close(ctx)
		}(p)
	}
	wg.Wait()

	cons, err := pstream.NewConsumer[int](ctx, b, "fanin", "agg",
		pstream.WithEndCount(producers))
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	seen := make(map[int]bool)
	for {
		v, err := cons.NextValue(ctx)
		if errors.Is(err, pstream.ErrEnd) {
			break
		}
		if err != nil {
			t.Fatalf("NextValue: %v", err)
		}
		seen[v] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), producers*per)
	}
}

func TestConsumerOffsetResumeAcrossRestart(t *testing.T) {
	ctx := context.Background()
	st := newLocalStore(t)
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	b := pstream.NewKV(srv.Addr())
	defer b.Close()

	prod := pstream.NewProducer[int](st, b, "resume")
	for i := 1; i <= 4; i++ {
		if err := prod.Send(ctx, i, nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	prod.Close(ctx)

	cons, err := pstream.NewConsumer[int](ctx, b, "resume", "c", pstream.WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	// Consume and ack two, then "crash".
	for i := 1; i <= 2; i++ {
		v, err := cons.NextValue(ctx)
		if err != nil || v != i {
			t.Fatalf("NextValue = %d, %v", v, err)
		}
	}
	cons.Close()

	cons2, err := pstream.NewConsumer[int](ctx, b, "resume", "c", pstream.WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cons2.Close()
	v, err := cons2.NextValue(ctx)
	if err != nil || v != 3 {
		t.Fatalf("resumed NextValue = %d, %v; want 3", v, err)
	}
}

// --- The headline guarantee ----------------------------------------------

// TestBrokerBytesStayMetadataSized is the acceptance scenario: a producer
// streams 1,000 × 1 MiB items to two consumers; only O(KB)-sized event
// records cross the broker, while bulk bytes ride the store's data plane —
// and evict-on-ack garbage-collects each item once both consumers are done,
// so the backlog on disk stays bounded too.
func TestBrokerBytesStayMetadataSized(t *testing.T) {
	ctx := context.Background()
	items := 1000
	if testing.Short() {
		items = 64
	}
	const itemSize = 1 << 20

	name := "pstream-bulk-" + connector.NewID()[:12]
	conn, err := file.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(name, conn, store.WithSerializer(serial.Raw()),
		store.WithCacheBytes(0)) // no cache: consumers must hit the data plane
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Unregister(name) })

	cb := pstream.NewCounting(pstream.NewMem())
	const consumers = 2

	var wg sync.WaitGroup
	consumed := make([]int, consumers)
	errs := make(chan error, consumers+1)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Window 1 keeps proxies lazy: receiving an event must not pull
			// its megabyte.
			cons, err := pstream.NewConsumer[[]byte](ctx, cb, "bulk", fmt.Sprintf("c%d", c),
				pstream.WithWindow(1))
			if err != nil {
				errs <- err
				return
			}
			defer cons.Close()
			for {
				it, err := cons.Next(ctx)
				if errors.Is(err, pstream.ErrEnd) {
					return
				}
				if err != nil {
					errs <- err
					return
				}
				// Spot-check payload integrity on a sample; events alone
				// (unresolved proxies) are the common path.
				if it.Event.Seq%251 == 0 {
					v, err := it.Value(ctx)
					if err != nil {
						errs <- err
						return
					}
					if len(v) != itemSize || v[0] != byte(it.Event.Seq) {
						errs <- fmt.Errorf("consumer %d: corrupt item seq %d", c, it.Event.Seq)
						return
					}
				}
				if err := it.Ack(ctx); err != nil {
					errs <- err
					return
				}
				consumed[c]++
			}
		}(c)
	}

	prod := pstream.NewProducer[[]byte](st, cb, "bulk", pstream.WithEvictOnAck(consumers))
	buf := make([]byte, itemSize)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			buf[0] = byte(i + 1) // Seq starts at 1
			if err := prod.Send(ctx, buf, nil); err != nil {
				errs <- err
				return
			}
		}
		if err := prod.Close(ctx); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for c := 0; c < consumers; c++ {
		if consumed[c] != items {
			t.Fatalf("consumer %d consumed %d items, want %d", c, consumed[c], items)
		}
	}

	dataBytes := uint64(items) * itemSize
	brokerBytes := cb.BytesPublished() + cb.BytesDelivered()
	perEvent := brokerBytes / uint64((items+1)*(consumers+1)) // +End, pub+2×deliver
	t.Logf("data plane: %d MiB stored; metadata plane: %d KiB total, %d B/event",
		dataBytes>>20, brokerBytes>>10, perEvent)
	if perEvent > 1024 {
		t.Fatalf("per-event broker cost = %d bytes, want O(KB) (<=1024)", perEvent)
	}
	if brokerBytes*100 > dataBytes {
		t.Fatalf("broker moved %d bytes, more than 1%% of the %d data bytes",
			brokerBytes, dataBytes)
	}

	// Evict-on-ack reclaimed every item: nothing left in the data plane.
	if m := st.Metrics(); m.Evicts != uint64(items) {
		t.Fatalf("store Evicts = %d, want %d", m.Evicts, items)
	}
}

// --- Broker bytes vs payload sanity over redis data plane ----------------

func TestKVBrokerWithRedisDataPlane(t *testing.T) {
	// Metadata and data planes share one kvstore server, as they would in a
	// deployment that reuses redis for both.
	ctx := context.Background()
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	name := "pstream-redis-" + connector.NewID()[:12]
	st, err := store.New(name, redisc.New(srv.Addr()), store.WithSerializer(serial.Raw()))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Unregister(name)
	b := pstream.NewKV(srv.Addr())
	defer b.Close()

	payload := bytes.Repeat([]byte{0xAB}, 512<<10)
	prod := pstream.NewProducer[[]byte](st, b, "rd", pstream.WithEvictOnAck(1))
	if err := prod.Send(ctx, payload, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	prod.Close(ctx)

	cons, err := pstream.NewConsumer[[]byte](ctx, b, "rd", "c")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	v, err := cons.NextValue(ctx)
	if err != nil {
		t.Fatalf("NextValue: %v", err)
	}
	if !bytes.Equal(v, payload) {
		t.Fatal("payload corrupted crossing shared kv server")
	}
	if _, err := cons.NextValue(ctx); !errors.Is(err, pstream.ErrEnd) {
		t.Fatalf("want ErrEnd, got %v", err)
	}
}

func TestConsumerSkipsGapEvents(t *testing.T) {
	// A failed KVBroker append back-fills its reserved slot with a gap
	// marker ("ps.gap" attr); consumers must skip it silently.
	ctx := context.Background()
	st := newLocalStore(t)
	b := pstream.NewMem()

	prod := pstream.NewProducer[string](st, b, "gappy")
	if err := prod.Send(ctx, "before", nil); err != nil {
		t.Fatal(err)
	}
	gap := pstream.Event{Attrs: map[string]string{"ps.gap": "1"}}
	if err := b.Publish(ctx, "gappy", gap); err != nil {
		t.Fatal(err)
	}
	if err := prod.Send(ctx, "after", nil); err != nil {
		t.Fatal(err)
	}
	prod.Close(ctx)

	cons, err := pstream.NewConsumer[string](ctx, b, "gappy", "c")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	for _, want := range []string{"before", "after"} {
		v, err := cons.NextValue(ctx)
		if err != nil || v != want {
			t.Fatalf("NextValue = %q, %v; want %q", v, err, want)
		}
	}
	if _, err := cons.NextValue(ctx); !errors.Is(err, pstream.ErrEnd) {
		t.Fatalf("want ErrEnd after gap stream, got %v", err)
	}
}

func TestMemBrokerCloseWakesBlockedNext(t *testing.T) {
	ctx := context.Background()
	b := pstream.NewMem()
	sub, err := b.Subscribe(ctx, "idle", "c")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := sub.Next(ctx)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Next park
	b.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Next returned nil after broker close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after broker Close")
	}
}
