package pstream

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"time"

	"proxystore/internal/msgnet"
	"proxystore/internal/relay"
)

// NetServer hosts a broker for remote clients: a MemBroker core served
// over msgnet framed request/reply, the repo's stand-in for a cross-site
// message fabric. Fetches are long-polls so remote Next calls block
// server-side instead of hammering the wire. A NetServer can additionally
// register with a relay server, so peers that only know the broker's UUID
// discover its address through O(100 B) signaling — the same
// discovery-plane/data-plane split PS-endpoints use.
type NetServer struct {
	core  *MemBroker
	srv   *msgnet.Server
	rc    *relay.Client
	rdone chan struct{}
}

// ServeNet starts a broker server on addr (e.g. "127.0.0.1:0"). Options
// configure the backing MemBroker — notably WithMemLease, which sets the
// claim lease applied to remote group members.
func ServeNet(addr string, opts ...MemOption) (*NetServer, error) {
	s := &NetServer{core: NewMem(opts...)}
	srv, err := msgnet.NewServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the server's listen address.
func (s *NetServer) Addr() string { return s.srv.Addr() }

// Core exposes the backing MemBroker, letting the hosting process publish
// and subscribe without a network hop.
func (s *NetServer) Core() *MemBroker { return s.core }

// AnnounceRelay registers the broker with the relay at relayAddr under
// uuid ("" asks the relay to assign one) and answers address queries from
// peers. It returns the registered UUID.
func (s *NetServer) AnnounceRelay(relayAddr, uuid string) (string, error) {
	rc, err := relay.Dial(relayAddr, uuid)
	if err != nil {
		return "", err
	}
	s.rc = rc
	s.rdone = make(chan struct{})
	go func() {
		defer close(s.rdone)
		for {
			sig, err := rc.Recv(context.Background())
			if err != nil {
				return
			}
			if string(sig.Payload) == discoverQuery {
				rc.Forward(sig.From, []byte(s.srv.Addr()))
			}
		}
	}()
	return rc.UUID(), nil
}

// Close stops serving; topic logs are dropped with the core.
func (s *NetServer) Close() error {
	if s.rc != nil {
		s.rc.Close()
		<-s.rdone
	}
	err := s.srv.Close()
	s.core.Close()
	return err
}

// discoverQuery is the relay signaling payload asking a broker for its
// msgnet address.
const discoverQuery = "ps-broker-addr?"

// --- Wire protocol --------------------------------------------------------

const (
	opPublish byte = iota + 1
	opSubscribe
	opFetch
	opAck
	opPublishBatch
	opGroupFetch
	opGroupAck
)

// netReq is the client→server request frame.
type netReq struct {
	Op         byte
	Topic      string
	Consumer   string
	Group      string
	Event      Event
	Events     []Event
	Cursor     uint64
	Offset     uint64
	WaitMillis int64
}

// netResp is the server→client reply frame.
type netResp struct {
	Event  Event
	Has    bool
	Offset uint64
	Cursor uint64
	Acks   int64
}

func encodeNetReq(r netReq) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("pstream: encoding request: %w", err)
	}
	return buf.Bytes(), nil
}

func (s *NetServer) handle(ctx context.Context, raw []byte) ([]byte, error) {
	var req netReq
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&req); err != nil {
		return nil, fmt.Errorf("pstream: decoding request: %w", err)
	}
	var resp netResp
	switch req.Op {
	case opPublish:
		if err := s.core.Publish(ctx, req.Topic, req.Event); err != nil {
			return nil, err
		}
	case opSubscribe:
		resp.Offset = s.core.committedOffset(req.Topic, req.Consumer)
	case opFetch:
		wait := time.Duration(req.WaitMillis) * time.Millisecond
		ev, ok, err := s.core.fetch(ctx, req.Topic, req.Cursor, wait)
		if err != nil {
			return nil, err
		}
		resp.Event, resp.Has = ev, ok
	case opAck:
		n, err := s.core.ack(req.Topic, req.Consumer, req.Offset)
		if err != nil {
			return nil, err
		}
		resp.Acks = int64(n)
	case opPublishBatch:
		if err := s.core.PublishBatch(ctx, req.Topic, req.Events); err != nil {
			return nil, err
		}
	case opGroupFetch:
		// req.Cursor carries the member's End-broadcast cursor; the claim
		// itself lives in the core's shared group state, so a long-poll
		// blocks server-side exactly like fan-out fetches.
		wait := time.Duration(req.WaitMillis) * time.Millisecond
		ev, cur, ok, err := s.core.fetchGroup(ctx, req.Topic, req.Group, req.Consumer, req.Cursor, wait)
		if err != nil {
			return nil, err
		}
		resp.Event, resp.Cursor, resp.Has = ev, cur, ok
	case opGroupAck:
		n, err := s.core.groupAck(req.Topic, req.Group, req.Consumer, req.Offset)
		if err != nil {
			return nil, err
		}
		resp.Acks = int64(n)
	default:
		return nil, fmt.Errorf("pstream: unknown op %d", req.Op)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, fmt.Errorf("pstream: encoding reply: %w", err)
	}
	return buf.Bytes(), nil
}

// --- Client ---------------------------------------------------------------

// netPollWait is the server-side long-poll window per Next round trip; the
// client loops, so blocking Next calls survive longer waits.
const netPollWait = 250 * time.Millisecond

// NetBroker is the client side of a NetServer.
type NetBroker struct {
	client *msgnet.Client
}

// DialNet returns a broker client for the NetServer at addr.
func DialNet(addr string) *NetBroker {
	return &NetBroker{client: msgnet.NewClient(addr)}
}

// DialNetRelay discovers the NetServer registered under brokerUUID through
// the relay at relayAddr, then connects directly. Only the O(100 B)
// discovery handshake crosses the relay.
func DialNetRelay(ctx context.Context, relayAddr, brokerUUID string) (*NetBroker, error) {
	rc, err := relay.Dial(relayAddr, "")
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	if err := rc.Forward(brokerUUID, []byte(discoverQuery)); err != nil {
		return nil, fmt.Errorf("pstream: querying broker address: %w", err)
	}
	for {
		sig, err := rc.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("pstream: awaiting broker address: %w", err)
		}
		if sig.From == brokerUUID {
			return DialNet(string(sig.Payload)), nil
		}
	}
}

func (b *NetBroker) request(ctx context.Context, req netReq) (netResp, error) {
	raw, err := encodeNetReq(req)
	if err != nil {
		return netResp{}, err
	}
	reply, err := b.client.Request(ctx, raw)
	if err != nil {
		return netResp{}, err
	}
	var resp netResp
	if err := gob.NewDecoder(bytes.NewReader(reply)).Decode(&resp); err != nil {
		return netResp{}, fmt.Errorf("pstream: decoding reply: %w", err)
	}
	return resp, nil
}

// Publish implements Broker.
func (b *NetBroker) Publish(ctx context.Context, topic string, ev Event) error {
	_, err := b.request(ctx, netReq{Op: opPublish, Topic: topic, Event: ev})
	return err
}

// PublishBatch implements Broker: the whole batch crosses the wire in one
// request frame and lands in the core under one lock.
func (b *NetBroker) PublishBatch(ctx context.Context, topic string, evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	_, err := b.request(ctx, netReq{Op: opPublishBatch, Topic: topic, Events: evs})
	return err
}

// Subscribe implements Broker.
func (b *NetBroker) Subscribe(ctx context.Context, topic, consumer string) (Subscription, error) {
	resp, err := b.request(ctx, netReq{Op: opSubscribe, Topic: topic, Consumer: consumer})
	if err != nil {
		return nil, err
	}
	return &netSub{b: b, topic: topic, consumer: consumer, cursor: resp.Offset}, nil
}

// SubscribeGroup implements Broker. Claim state lives server-side; the
// subscription only tracks the member's End-broadcast cursor, which rides
// along in each fetch request, so subscribing costs no round trip.
func (b *NetBroker) SubscribeGroup(_ context.Context, topic, group, member string) (Subscription, error) {
	return &netGroupSub{b: b, topic: topic, group: group, member: member}, nil
}

// Close implements Broker; the server and its logs keep running.
func (b *NetBroker) Close() error { return b.client.Close() }

type netSub struct {
	b        *NetBroker
	topic    string
	consumer string
	cursor   uint64
}

func (s *netSub) fetch(ctx context.Context, waitMillis int64) (Event, bool, error) {
	resp, err := s.b.request(ctx, netReq{
		Op: opFetch, Topic: s.topic, Consumer: s.consumer,
		Cursor: s.cursor, WaitMillis: waitMillis,
	})
	if err != nil || !resp.Has {
		return Event{}, false, err
	}
	s.cursor++
	return resp.Event, true, nil
}

// Next implements Subscription, long-polling the server.
func (s *netSub) Next(ctx context.Context) (Event, error) {
	for {
		ev, ok, err := s.fetch(ctx, netPollWait.Milliseconds())
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
		if err := ctx.Err(); err != nil {
			return Event{}, err
		}
	}
}

// Poll implements Subscription: one round trip, zero wait.
func (s *netSub) Poll(ctx context.Context) (Event, bool, error) {
	return s.fetch(ctx, 0)
}

// Ack implements Subscription.
func (s *netSub) Ack(ctx context.Context, ev Event) (int, error) {
	resp, err := s.b.request(ctx, netReq{
		Op: opAck, Topic: s.topic, Consumer: s.consumer, Offset: ev.Offset,
	})
	if err != nil {
		return 0, err
	}
	return int(resp.Acks), nil
}

// Close implements Subscription; the server keeps the committed offset.
func (s *netSub) Close() error { return nil }

// netGroupSub is one remote group member's cursor: claims and leases live
// in the server's MemBroker core, the End-broadcast cursor travels with
// each request.
type netGroupSub struct {
	b         *NetBroker
	topic     string
	group     string
	member    string
	endCursor uint64
}

func (s *netGroupSub) fetch(ctx context.Context, waitMillis int64) (Event, bool, error) {
	resp, err := s.b.request(ctx, netReq{
		Op: opGroupFetch, Topic: s.topic, Group: s.group, Consumer: s.member,
		Cursor: s.endCursor, WaitMillis: waitMillis,
	})
	if err != nil {
		return Event{}, false, err
	}
	if resp.Cursor > s.endCursor {
		s.endCursor = resp.Cursor
	}
	if !resp.Has {
		return Event{}, false, nil
	}
	return resp.Event, true, nil
}

// Next implements Subscription, long-polling the server; lease
// reclamation happens server-side, so a blocked member wakes when another
// member's claim expires without any client-side timers.
func (s *netGroupSub) Next(ctx context.Context) (Event, error) {
	for {
		ev, ok, err := s.fetch(ctx, netPollWait.Milliseconds())
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
		if err := ctx.Err(); err != nil {
			return Event{}, err
		}
	}
}

// Poll implements Subscription: one round trip, zero wait.
func (s *netGroupSub) Poll(ctx context.Context) (Event, bool, error) {
	return s.fetch(ctx, 0)
}

// Ack implements Subscription.
func (s *netGroupSub) Ack(ctx context.Context, ev Event) (int, error) {
	resp, err := s.b.request(ctx, netReq{
		Op: opGroupAck, Topic: s.topic, Group: s.group, Consumer: s.member, Offset: ev.Offset,
	})
	if err != nil {
		return 0, err
	}
	return int(resp.Acks), nil
}

// Close implements Subscription; unacked claims expire server-side.
func (s *netGroupSub) Close() error { return nil }
