package pstream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/kvstore/cluster"
	"proxystore/internal/telemetry"
)

// KVBroker is the kvstore-backed broker: topic logs, committed offsets,
// ack counters and group claim records are plain RESP keys on a kvstore
// server, so the metadata plane rides the same infrastructure as a redis
// data plane and survives process restarts (with server persistence, even
// server restarts).
//
// Layout, per topic T (and group G):
//
//	ps:T:len      INCR/INCRBY-maintained append counter (= log length)
//	ps:T:e:<i>    encoded event at log index i
//	ps:T:c:<name> consumer name's committed offset
//	ps:T:a:<i>    INCR-maintained distinct-consumer ack count of event i
//	ps:T:t        truncation floor: slots below it have been reclaimed
//	ps:T:g:G:f    group G's claim floor (first offset not group-resolved)
//	ps:T:g:G:c:<i> group G's claim record for slot i ("c|member|deadline"
//	              while leased, "a" once acked)
//
// Appends reserve a slot with INCR (atomic on the server) and then SET the
// event — PublishBatch reserves the whole range with one INCRBY and fills
// it with one MSET — so concurrent producers never collide; delivery is
// push: a blocked Next parks in one server-side WAITGET on its cursor slot
// (group members in one WAITPREFIX over the topic keyspace) and the write
// that fills it wakes the waiter — O(1) commands while idle and wake
// latency independent of any backoff state. Against servers that predate
// the wait commands (or with WithKVPush(false)), Next degrades to the
// original capped-exponential-backoff polling loop. Group members claim
// slots with server-side CAS on the claim record, so an event can never
// be leased to two members at once.
type KVBroker struct {
	addr string
	// client is the command path: a single-server *kvstore.Client, or a
	// cluster.ShardedClient when addr is a cluster spec (shards separated
	// by commas, replicas within a shard by pipes — see the cluster
	// package doc). Every key the broker derives from one topic shares the
	// topic's "ps:T" placement prefix, so sharding is invisible up here:
	// appends, waits, acks, and truncation sweeps all stay shard-local.
	client kvstore.KV
	// waitClient carries only the blocking waits, each of which pins a
	// pooled connection for up to a wait round. On a separate pool (sized
	// waitPool), parked subscriptions can never starve the command path —
	// with a shared pool, enough parked consumers would block the very
	// Publish whose write is supposed to wake them.
	waitClient kvstore.KV
	waitPool   int
	// wrap, when set, interposes on both clients at construction (see
	// WithKVWrap) — the record/replay tap's entry point into the broker.
	wrap func(kvstore.KV) kvstore.KV
	// pollFloor/pollCap bound the polling-fallback backoff.
	pollFloor, pollCap time.Duration
	// waitRound bounds one server-side blocking wait; blocked consumers
	// re-arm in rounds so truncation sweeps and lease expiries are
	// re-checked at least this often.
	waitRound time.Duration
	// pushOff disables blocking-wait delivery: set by WithKVPush(false), or
	// latched at runtime when the server answers WAITGET with an
	// unknown-command error (an old build) — the polling fallback keeps the
	// broker working either way.
	pushOff atomic.Bool
	// lease bounds how long a group member may hold a claimed event
	// before other members reclaim it.
	lease time.Duration
	// hbTTL, when positive, enables the membership layer for group
	// subscriptions: members heartbeat under this liveness window, and an
	// expired heartbeat lets peers reclaim a dead member's claims early —
	// in O(hbTTL) instead of O(lease). See WithKVHeartbeat.
	hbTTL time.Duration
	// truncAfter, when positive, is the distinct-consumer ack count at
	// which a log slot is considered fully consumed; contiguous fully
	// consumed prefixes are garbage-collected from the server.
	truncAfter int

	// truncMu guards truncPending, ranged deletes owed a retry after a
	// transient failure (the floor has already passed them).
	truncMu      sync.Mutex
	truncPending []pendingDel

	// reg collects broker metrics; handles resolved once at construction.
	reg          *telemetry.Registry
	mPublishNs   *telemetry.Histogram // ps.kv.publish.ns: append op latency
	mDeliverNs   *telemetry.Histogram // ps.kv.deliver.ns: publish→deliver
	mPublished   *telemetry.Counter   // ps.kv.published events
	mClaims      *telemetry.Counter   // ps.kv.claims: fresh lease wins
	mReclaims    *telemetry.Counter   // ps.kv.reclaims: expired-lease takeovers
	mTruncSweeps *telemetry.Counter   // ps.kv.trunc.sweeps
	mTruncSlots  *telemetry.Counter   // ps.kv.trunc.slots collected
	mMembers     *telemetry.Gauge     // ps.members: live members, latest read
	mOrphanGC    *telemetry.Counter   // ps.orphan_gc: orphaned payloads collected
}

// KVOption configures a KVBroker.
type KVOption func(*KVBroker)

// WithKVPush toggles push delivery (default on): blocked Next calls park
// in server-side WAITGET/WAITPREFIX waits instead of polling. Disabled —
// or against a server that predates the wait commands, which is detected
// automatically — subscriptions use the capped-backoff polling loop, the
// pre-push behavior, bounded by WithPollInterval.
func WithKVPush(on bool) KVOption {
	return func(b *KVBroker) { b.pushOff.Store(!on) }
}

// WithKVWaitRound bounds a single server-side blocking wait (default 15s).
// Longer rounds cost nothing while idle; shorter ones re-check truncation
// floors more eagerly after missed wakes.
func WithKVWaitRound(d time.Duration) KVOption {
	return func(b *KVBroker) {
		if d > 0 {
			b.waitRound = d
		}
	}
}

// WithKVWaitPool sets how many subscriptions can be parked in blocking
// waits concurrently (default 64). Each parked subscription holds one
// connection of a pool dedicated to waits; a subscription past the limit
// queues for a slot instead of starving command traffic.
func WithKVWaitPool(n int) KVOption {
	return func(b *KVBroker) {
		if n > 0 {
			b.waitPool = n
		}
	}
}

// WithPollInterval overrides the polling-fallback backoff bounds (defaults
// 500µs floor, 10ms cap). The fallback runs only when push delivery is
// off — WithKVPush(false) or an old server.
func WithPollInterval(floor, ceil time.Duration) KVOption {
	return func(b *KVBroker) {
		if floor > 0 {
			b.pollFloor = floor
		}
		if ceil >= floor {
			b.pollCap = ceil
		}
	}
}

// WithKVLease sets the claim lease for group subscriptions (default
// DefaultLease).
func WithKVLease(d time.Duration) KVOption {
	return func(b *KVBroker) {
		if d > 0 {
			b.lease = d
		}
	}
}

// WithKVHeartbeat enables the liveness/membership layer for this broker's
// group subscriptions: every member SubscribeGroup creates joins the
// (topic, group) membership domain and heartbeats under ttl (0 means
// DefaultHeartbeatTTL). The payoff is early lease reclamation — group
// scans treat a claim whose holder's heartbeat expired as reclaimable
// immediately, so a crashed member's work is stolen in O(ttl) instead of
// O(lease) — at the cost of one small write per member per ttl/3 while
// idle. A member whose own heartbeat cannot be refreshed self-fences and
// stops claiming new work until refreshes recover (see Heartbeat.Fenced).
func WithKVHeartbeat(ttl time.Duration) KVOption {
	return func(b *KVBroker) {
		if ttl <= 0 {
			ttl = DefaultHeartbeatTTL
		}
		b.hbTTL = ttl
	}
}

// WithKVTelemetry makes the broker record its metrics (publish latency,
// publish→deliver histogram, claims, lease reclaims, truncation sweeps)
// into reg instead of a private registry.
func WithKVTelemetry(reg *telemetry.Registry) KVOption {
	return func(b *KVBroker) { b.reg = reg }
}

// WithKVTruncate enables log truncation: once consumers distinct consumers
// (count fan-out consumers plus groups) have acked a contiguous log
// prefix, its event slots and ack counters are deleted from the server and
// the truncation floor advances, so a fully consumed stream holds O(open
// window) keys instead of O(history). consumers must cover every consumer
// that will ever read the topic: an undercount truncates events a
// late-joining consumer still needs (new subscribers are clamped to the
// truncation floor).
func WithKVTruncate(consumers int) KVOption {
	return func(b *KVBroker) {
		if consumers > 0 {
			b.truncAfter = consumers
		}
	}
}

// NewKV returns a broker over the kvstore server at addr.
func NewKV(addr string, opts ...KVOption) *KVBroker {
	b := &KVBroker{
		addr:      addr,
		pollFloor: 500 * time.Microsecond,
		pollCap:   10 * time.Millisecond,
		waitRound: 15 * time.Second,
		waitPool:  64,
		lease:     DefaultLease,
	}
	for _, o := range opts {
		o(b)
	}
	if b.reg == nil {
		b.reg = telemetry.NewRegistry()
	}
	b.mPublishNs = b.reg.Histogram("ps.kv.publish.ns")
	b.mDeliverNs = b.reg.Histogram("ps.kv.deliver.ns")
	b.mPublished = b.reg.Counter("ps.kv.published")
	b.mClaims = b.reg.Counter("ps.kv.claims")
	b.mReclaims = b.reg.Counter("ps.kv.reclaims")
	b.mTruncSweeps = b.reg.Counter("ps.kv.trunc.sweeps")
	b.mTruncSlots = b.reg.Counter("ps.kv.trunc.slots")
	b.mMembers = b.reg.Gauge("ps.members")
	b.mOrphanGC = b.reg.Counter("ps.orphan_gc")
	b.client = newKVClient(addr, kvstore.WithClientTelemetry(b.reg))
	b.waitClient = newKVClient(addr,
		kvstore.WithPoolSize(b.waitPool), kvstore.WithClientTelemetry(b.reg))
	if b.wrap != nil {
		b.client = b.wrap(b.client)
		b.waitClient = b.wrap(b.waitClient)
	}
	return b
}

// WithKVWrap interposes wrap on the broker's kvstore clients at
// construction — once for the command client, once for the blocking-wait
// client — so a wire tap (kvstore.NewTap over a wiretap recorder) can
// record every command the broker issues without a TCP proxy. The wrapper
// sees the KV interface above pooling, pipelining and sharded routing;
// taps compose with the broker's own wrappers the way CountingBroker and
// JitterBroker compose with AsKV.
func WithKVWrap(wrap func(kvstore.KV) kvstore.KV) KVOption {
	return func(b *KVBroker) { b.wrap = wrap }
}

// newKVClient builds the broker's client for addr: a sharded client when
// addr is a cluster spec, a plain one otherwise. A malformed spec
// degrades to a plain client on the raw string, whose first dial fails
// with the offending spec in the error — NewKV has no error return to
// surface it earlier.
func newKVClient(addr string, opts ...kvstore.ClientOption) kvstore.KV {
	if cluster.IsSpec(addr) {
		if sc, err := cluster.New(addr, opts...); err == nil {
			return sc
		}
	}
	return kvstore.NewClient(addr, opts...)
}

// Telemetry returns the broker's metrics registry. It also carries the
// underlying kvstore clients' metrics (kvc.* names), so one snapshot
// answers both "what did the broker do" and "what did it cost on the
// wire".
func (b *KVBroker) Telemetry() *telemetry.Registry { return b.reg }

// HeartbeatTTL reports the liveness window this broker's membership
// domains use: the WithKVHeartbeat ttl, or DefaultHeartbeatTTL when the
// option was not given (Membership handles work either way; the option
// additionally turns on per-group-member heartbeats and early
// reclamation).
func (b *KVBroker) HeartbeatTTL() time.Duration {
	if b.hbTTL > 0 {
		return b.hbTTL
	}
	return DefaultHeartbeatTTL
}

// Heartbeats reports whether WithKVHeartbeat was given — whether group
// members heartbeat and scans reclaim on heartbeat expiry.
func (b *KVBroker) Heartbeats() bool { return b.hbTTL > 0 }

// AsKV unwraps b to its underlying *KVBroker, walking wrapper brokers
// (CountingBroker, test wrappers) via their Unwrap method. The task planes
// use it to reach kv-only machinery — membership, orphan sweeps — through
// whatever instrumentation the caller layered on top.
func AsKV(b Broker) (*KVBroker, bool) {
	for b != nil {
		if kb, ok := b.(*KVBroker); ok {
			return kb, true
		}
		u, ok := b.(interface{ Unwrap() Broker })
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
	return nil, false
}

// observeDeliver records the publish→deliver latency for a delivered
// event when its producer stamped a publish timestamp (the ot.pub attr
// Producer.Send adds).
func (b *KVBroker) observeDeliver(ev Event) {
	raw := ev.Attr(AttrPubTime)
	if raw == "" {
		return
	}
	nanos, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return
	}
	if d := time.Now().UnixNano() - nanos; d >= 0 {
		b.mDeliverNs.Observe(d)
	}
}

func kvLenKey(topic string) string { return "ps:" + topic + ":len" }
func kvEventKey(topic string, i uint64) string {
	return "ps:" + topic + ":e:" + strconv.FormatUint(i, 10)
}
func kvEventPrefix(topic string) string         { return "ps:" + topic + ":e:" }
func kvOffsetKey(topic, consumer string) string { return "ps:" + topic + ":c:" + consumer }
func kvAckKey(topic string, i uint64) string {
	return "ps:" + topic + ":a:" + strconv.FormatUint(i, 10)
}
func kvAckPrefix(topic string) string            { return "ps:" + topic + ":a:" }
func kvTruncKey(topic string) string             { return "ps:" + topic + ":t" }
func kvGroupFloorKey(topic, group string) string { return "ps:" + topic + ":g:" + group + ":f" }
func kvClaimKey(topic, group string, i uint64) string {
	return "ps:" + topic + ":g:" + group + ":c:" + strconv.FormatUint(i, 10)
}
func kvClaimPrefix(topic, group string) string { return "ps:" + topic + ":g:" + group + ":c:" }

// kvTopicPrefix covers every key of one topic — log slots, counters, acks
// and claim records — so one WAITPREFIX watch observes appends, settles
// and floor sweeps alike.
func kvTopicPrefix(topic string) string { return "ps:" + topic + ":" }

// pushOK reports whether blocking-wait delivery is live.
func (b *KVBroker) pushOK() bool { return !b.pushOff.Load() }

// disablePushIfUnknown latches the polling fallback when err shows the
// server predates the wait commands, reporting whether it did.
func (b *KVBroker) disablePushIfUnknown(err error) bool {
	if errors.Is(err, kvstore.ErrUnknownCommand) {
		b.pushOff.Store(true)
		return true
	}
	return false
}

// Publish implements Broker: INCR reserves the next log index, SET fills it.
// The two steps are not atomic; if the SET fails, the reserved slot is
// filled with a gap marker on a cancellation-detached context so consumers
// skip it instead of polling the hole forever. (A producer that crashes
// between the two steps still wedges the topic — the price of a log built
// from plain kv primitives; see the package doc.)
func (b *KVBroker) Publish(ctx context.Context, topic string, ev Event) error {
	start := time.Now()
	defer b.mPublishNs.Since(start)
	n, err := b.client.Incr(ctx, kvLenKey(topic))
	if err != nil {
		return fmt.Errorf("pstream: reserving log slot: %w", err)
	}
	ev.Topic = topic
	ev.Offset = uint64(n - 1)
	data, err := EncodeEvent(ev)
	if err != nil {
		b.fillGap(ctx, topic, ev.Offset)
		return err
	}
	if err := b.client.Set(ctx, kvEventKey(topic, ev.Offset), data); err != nil {
		b.fillGap(ctx, topic, ev.Offset)
		return fmt.Errorf("pstream: appending event: %w", err)
	}
	b.mPublished.Inc()
	return nil
}

// PublishBatch implements Broker with O(1) round trips per batch: one
// INCRBY reserves the whole slot range, one MSET fills it. Compare
// Publish's 2 round trips per event — on WAN-shaped links the difference
// is the publish path's latency budget.
func (b *KVBroker) PublishBatch(ctx context.Context, topic string, evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	start := time.Now()
	defer b.mPublishNs.Since(start)
	n, err := b.client.IncrBy(ctx, kvLenKey(topic), int64(len(evs)))
	if err != nil {
		return fmt.Errorf("pstream: reserving %d log slots: %w", len(evs), err)
	}
	base := uint64(n) - uint64(len(evs))
	pairs := make(map[string][]byte, len(evs))
	for i := range evs {
		evs[i].Topic = topic
		evs[i].Offset = base + uint64(i)
		data, err := EncodeEvent(evs[i])
		if err != nil {
			b.fillGapRange(ctx, topic, base, base+uint64(len(evs)))
			return err
		}
		pairs[kvEventKey(topic, evs[i].Offset)] = data
	}
	if err := b.client.MSet(ctx, pairs); err != nil {
		b.fillGapRange(ctx, topic, base, base+uint64(len(evs)))
		return fmt.Errorf("pstream: appending batch: %w", err)
	}
	b.mPublished.Add(uint64(len(evs)))
	return nil
}

// fillGap writes a skip marker into a reserved-but-unfilled log slot so the
// topic stays consumable after a failed append. The write runs detached
// from the caller's cancellation: when the failed SET was itself a ctx
// cancel, the gap must still land.
func (b *KVBroker) fillGap(ctx context.Context, topic string, offset uint64) error {
	gap := Event{Topic: topic, Offset: offset, Attrs: map[string]string{attrGap: "1"}}
	data, err := EncodeEvent(gap)
	if err != nil {
		return err
	}
	return b.client.Set(context.WithoutCancel(ctx), kvEventKey(topic, offset), data)
}

// fillGapRange back-fills every slot of a failed batch append with gap
// markers in one MSET, detached from the caller's cancellation like
// fillGap.
func (b *KVBroker) fillGapRange(ctx context.Context, topic string, start, end uint64) error {
	pairs := make(map[string][]byte, end-start)
	for i := start; i < end; i++ {
		gap := Event{Topic: topic, Offset: i, Attrs: map[string]string{attrGap: "1"}}
		data, err := EncodeEvent(gap)
		if err != nil {
			return err
		}
		pairs[kvEventKey(topic, i)] = data
	}
	return b.client.MSet(context.WithoutCancel(ctx), pairs)
}

// Subscribe implements Broker, resuming from the committed offset stored on
// the server. The start offset is clamped to the truncation floor: slots
// below it are gone, so a fresh consumer on a truncated topic begins at
// the oldest surviving event instead of polling a deleted slot forever.
func (b *KVBroker) Subscribe(ctx context.Context, topic, consumer string) (Subscription, error) {
	off, err := b.committedOffset(ctx, topic, consumer)
	if err != nil {
		return nil, err
	}
	floor, err := b.counter(ctx, kvTruncKey(topic))
	if err != nil {
		return nil, err
	}
	if floor > off {
		off = floor
	}
	return &kvSub{b: b, topic: topic, consumer: consumer, cursor: off, committed: off}, nil
}

// SubscribeGroup implements Broker. The member's End-broadcast cursor is
// seeded at the truncation floor — not the group claim floor, which sweeps
// past End markers: a member that (re)joins must still receive every
// surviving End, exactly as a reconnecting fan-out consumer re-sees an
// unacked End.
func (b *KVBroker) SubscribeGroup(ctx context.Context, topic, group, member string) (Subscription, error) {
	floor, err := b.counter(ctx, kvTruncKey(topic))
	if err != nil {
		return nil, err
	}
	s := &kvGroupSub{b: b, topic: topic, group: group, member: member, endCursor: floor}
	if b.hbTTL > 0 {
		hb, err := b.Membership(topic, group).Join(ctx, member)
		if err != nil {
			return nil, err
		}
		s.hb = hb
	}
	return s, nil
}

func (b *KVBroker) committedOffset(ctx context.Context, topic, consumer string) (uint64, error) {
	raw, ok, err := b.client.Get(ctx, kvOffsetKey(topic, consumer))
	if err != nil {
		return 0, fmt.Errorf("pstream: reading committed offset: %w", err)
	}
	if !ok {
		return 0, nil
	}
	off, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pstream: corrupt committed offset %q: %w", raw, err)
	}
	return off, nil
}

// counter reads an unsigned decimal counter key, treating absence as 0.
func (b *KVBroker) counter(ctx context.Context, key string) (uint64, error) {
	raw, ok, err := b.client.Get(ctx, key)
	if err != nil {
		return 0, fmt.Errorf("pstream: reading %s: %w", key, err)
	}
	if !ok {
		return 0, nil
	}
	n, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pstream: corrupt counter %s=%q: %w", key, raw, err)
	}
	return n, nil
}

// Close implements Broker. Server-side logs and offsets persist.
func (b *KVBroker) Close() error {
	err := b.client.Close()
	if werr := b.waitClient.Close(); err == nil {
		err = werr
	}
	return err
}

// Dials reports how many TCP connections the broker's clients have
// established, command pool and wait multiplexer together. An idle
// N-member group should hold O(1) of them — the wait multiplexer parks
// every blocked Next on one shared connection — and benches report this
// as connections-per-consumer.
func (b *KVBroker) Dials() uint64 { return b.client.Dials() + b.waitClient.Dials() }

// RoundTrips reports how many request flushes the broker's clients have
// performed; commands-per-round-trip (server commands over this) measures
// how much the pipelined ack and batched scan paths amortize.
func (b *KVBroker) RoundTrips() uint64 { return b.client.RoundTrips() + b.waitClient.RoundTrips() }

// kvScanWindow is how many adjacent slots one batched scan read fetches.
const kvScanWindow = 32

// kvWindow is a batched read-through view over a run of indexed keys —
// event slots, claim records, ack counters. at() serves single-slot reads
// from a window fetched with one MGET, collapsing the O(slots) GET walks
// of group scans and truncation passes into O(slots/window) commands. The
// window is a snapshot: a slot that fills (or settles) after its window
// was fetched still reads as missing/stale, which every caller already
// treats conservatively — stop the walk, park, rescan — because the
// per-slot GETs it replaces were just as racy against concurrent writers.
// All mutation points remain CAS-guarded, so batching changes command
// counts, never outcomes.
type kvWindow struct {
	b    *KVBroker
	key  func(uint64) string
	base uint64
	raws [][]byte
}

// at returns the value at index i, fetching a fresh window when i falls
// outside the current one; ok is false for a missing key.
func (w *kvWindow) at(ctx context.Context, i uint64) ([]byte, bool, error) {
	if w.raws == nil || i < w.base || i >= w.base+uint64(len(w.raws)) {
		keys := make([]string, kvScanWindow)
		for j := range keys {
			keys[j] = w.key(i + uint64(j))
		}
		raws, err := w.b.client.MGet(ctx, keys...)
		if err != nil {
			return nil, false, err
		}
		w.base, w.raws = i, raws
	}
	raw := w.raws[i-w.base]
	return raw, raw != nil, nil
}

// event decodes the event at index i; ok is false for an unfilled slot.
func (w *kvWindow) event(ctx context.Context, i uint64) (Event, bool, error) {
	raw, ok, err := w.at(ctx, i)
	if err != nil || !ok {
		return Event{}, false, err
	}
	ev, err := DecodeEvent(raw)
	if err != nil {
		return Event{}, false, err
	}
	return ev, true, nil
}

type kvSub struct {
	b        *KVBroker
	topic    string
	consumer string
	cursor   uint64
	// committed mirrors the server-side committed offset. The subscription
	// is the offset's only writer (one cursor per consumer name), so Ack
	// trusts the local copy instead of re-reading it every item. dirty
	// marks a mirror that advanced past a failed server write.
	committed uint64
	dirty     bool
}

// get returns the event at the cursor, or ok=false when the slot is still
// empty.
func (s *kvSub) get(ctx context.Context) (Event, bool, error) {
	return s.b.eventAt(ctx, s.topic, s.cursor)
}

// eventAt reads and decodes the event at log index i; ok is false when the
// slot is unfilled (or truncated).
func (b *KVBroker) eventAt(ctx context.Context, topic string, i uint64) (Event, bool, error) {
	raw, ok, err := b.client.Get(ctx, kvEventKey(topic, i))
	if err != nil || !ok {
		return Event{}, false, err
	}
	ev, err := DecodeEvent(raw)
	if err != nil {
		return Event{}, false, err
	}
	return ev, true, nil
}

// ackCount reads event i's distinct-consumer ack counter (0 when absent).
func (b *KVBroker) ackCount(ctx context.Context, topic string, i uint64) (int64, error) {
	raw, ok, err := b.client.Get(ctx, kvAckKey(topic, i))
	if err != nil || !ok {
		return 0, err
	}
	n, _ := strconv.ParseInt(string(raw), 10, 64)
	return n, nil
}

// skipTruncated disambiguates a missing cursor slot: truncation may have
// collected it while this subscription was idle (the slot was fully acked
// by every counted consumer). The cursor jumps to the truncation floor —
// retrying a deleted key would poll forever — and the committed mirror
// follows, so a later Ack does not resurrect deleted ack counters.
func (s *kvSub) skipTruncated(ctx context.Context) (bool, error) {
	floor, err := s.b.counter(ctx, kvTruncKey(s.topic))
	if err != nil {
		return false, err
	}
	if floor <= s.cursor {
		return false, nil // genuinely unfilled: a producer is mid-append
	}
	s.cursor = floor
	if floor > s.committed {
		s.committed = floor
	}
	return true, nil
}

// Next implements Subscription. With push delivery (the default against
// current servers) a miss parks in one server-side WAITGET on the cursor
// slot: the SET that fills the slot ships the value back in the wait's own
// reply, so a quiet consumer costs O(1) commands per delivered event —
// not O(poll rate) — and wakes in sub-millisecond time regardless of how
// long it idled. Each wait round is bounded so truncation of the cursor
// slot (collected while we watched it) is re-detected; the polling
// fallback with capped exponential backoff serves old servers and
// WithKVPush(false).
func (s *kvSub) Next(ctx context.Context) (Event, error) {
	delay := s.b.pollFloor
	for s.b.pushOK() {
		// WAITGET returns an already-filled slot immediately, so it IS the
		// read — the fast path costs the same one command as a plain GET,
		// and a miss parks instead of returning. Truncation of the watched
		// slot (possible only for a consumer left out of the topic's ack
		// threshold) produces no SET, so it is re-checked when a wait round
		// lapses rather than before every arm.
		raw, ok, err := s.b.waitClient.WaitGet(ctx, kvEventKey(s.topic, s.cursor), s.b.waitRound)
		if err != nil {
			if s.b.disablePushIfUnknown(err) {
				break
			}
			return Event{}, err
		}
		if !ok {
			if _, err := s.skipTruncated(ctx); err != nil {
				return Event{}, err
			}
			continue // re-arm (at the floor, if the slot was collected)
		}
		ev, err := DecodeEvent(raw)
		if err != nil {
			return Event{}, err
		}
		s.cursor++
		s.b.observeDeliver(ev)
		return ev, nil
	}
	for {
		ev, ok, err := s.get(ctx)
		if err != nil {
			return Event{}, err
		}
		if ok {
			s.cursor++
			s.b.observeDeliver(ev)
			return ev, nil
		}
		if skipped, err := s.skipTruncated(ctx); err != nil {
			return Event{}, err
		} else if skipped {
			continue
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > s.b.pollCap {
			delay = s.b.pollCap
		}
	}
}

// Poll implements Subscription: one GET round trip, no waiting.
func (s *kvSub) Poll(ctx context.Context) (Event, bool, error) {
	for {
		ev, ok, err := s.get(ctx)
		if err != nil {
			return Event{}, false, err
		}
		if ok {
			s.cursor++
			s.b.observeDeliver(ev)
			return ev, true, nil
		}
		if skipped, err := s.skipTruncated(ctx); err != nil || !skipped {
			return Event{}, false, err
		}
	}
}

// Ack implements Subscription: bump ack counters for every newly committed
// event, then persist the advanced offset — all in ONE pipelined round
// trip (the server executes the queued commands strictly in order, so the
// offset lands after its counters exactly as the sequential loop did).
// The local committed mirror is advanced as soon as the counters are
// bumped: a same-subscription retry after a failed offset commit then
// takes the already-covered path instead of re-running the Incrs, so
// counts cannot double. (A crash before the offset write still
// re-delivers and re-counts on resubscribe — the documented
// at-least-once trade.)
func (s *kvSub) Ack(ctx context.Context, ev Event) (int, error) {
	committed := s.committed
	if ev.Offset < committed {
		// Already covered by an earlier cumulative ack: report the current
		// count without inflating it.
		n, err := s.b.ackCount(ctx, s.topic, ev.Offset)
		if err != nil {
			return 0, err
		}
		// The server-side offset trails after a failed commit; re-attempt
		// it so resubscribes resume correctly.
		if s.dirty {
			if err := s.commitOffset(ctx, committed); err != nil {
				return 0, err
			}
			s.dirty = false
		}
		return int(n), nil
	}
	pipe := s.b.client.Pipeline()
	incrs := make([]*kvstore.PipeReply, 0, ev.Offset-committed+1)
	for i := committed; i <= ev.Offset; i++ {
		incrs = append(incrs, pipe.Incr(kvAckKey(s.topic, i)))
	}
	offRep := pipe.Set(kvOffsetKey(s.topic, s.consumer), []byte(strconv.FormatUint(ev.Offset+1, 10)))
	if err := pipe.Exec(ctx); err != nil {
		return 0, fmt.Errorf("pstream: counting ack: %w", err)
	}
	var last int64
	for _, r := range incrs {
		n, err := r.Int()
		if err != nil {
			return 0, fmt.Errorf("pstream: counting ack: %w", err)
		}
		last = n
	}
	s.committed = ev.Offset + 1
	if err := offRep.Err(); err != nil {
		s.dirty = true
		return 0, fmt.Errorf("pstream: committing offset: %w", err)
	}
	s.dirty = false
	s.b.maybeTruncate(ctx, s.topic)
	return int(last), nil
}

func (s *kvSub) commitOffset(ctx context.Context, off uint64) error {
	raw := []byte(strconv.FormatUint(off, 10))
	if err := s.b.client.Set(ctx, kvOffsetKey(s.topic, s.consumer), raw); err != nil {
		return fmt.Errorf("pstream: committing offset: %w", err)
	}
	return nil
}

// Close implements Subscription; the server keeps the committed offset.
func (s *kvSub) Close() error { return nil }

// --- Log truncation -------------------------------------------------------

// truncChunk bounds how many slots one truncation pass collects, keeping
// every ranged DEL far below the server's range cap no matter how large a
// backlog one cumulative ack covers.
const truncChunk = 1024

// pendingDel is a ranged delete that failed and is owed a retry.
type pendingDel struct {
	prefix     string
	start, end uint64
}

// deleteRange issues a ranged DEL, queueing the range for a later retry on
// failure: the truncation floor has already moved past it, so no other
// pass would ever revisit those keys.
func (b *KVBroker) deleteRange(ctx context.Context, prefix string, start, end uint64) {
	if _, err := b.client.DelRange(ctx, prefix, start, end); err != nil {
		b.truncMu.Lock()
		b.truncPending = append(b.truncPending, pendingDel{prefix: prefix, start: start, end: end})
		b.truncMu.Unlock()
	}
}

// retryPendingDeletes re-attempts owed ranged deletes; still-failing
// ranges re-queue themselves.
func (b *KVBroker) retryPendingDeletes(ctx context.Context) {
	b.truncMu.Lock()
	pending := b.truncPending
	b.truncPending = nil
	b.truncMu.Unlock()
	for _, r := range pending {
		b.deleteRange(ctx, r.prefix, r.start, r.end)
	}
}

// maybeTruncate garbage-collects the fully consumed log prefix: starting
// at the truncation floor, it walks forward while slots have reached the
// configured ack threshold (gap slots, which nobody acks, pass
// automatically; End markers stop the walk so rejoining consumers still
// see them), then CASes the floor forward and deletes the covered event
// slots and ack counters with two ranged DELs. Each pass collects at most
// truncChunk slots and passes repeat until the walk stops, so one huge
// cumulative ack cannot exceed the server's delete-range cap. The CAS
// serializes concurrent truncators — a loser leaves the work to the
// winner — and failed deletes are queued and retried on later calls (a
// crash between the CAS and the delete still leaks the range: the price
// of a two-step collect on a plain kv server). Truncation never fails the
// ack that triggered it.
func (b *KVBroker) maybeTruncate(ctx context.Context, topic string) {
	if b.truncAfter == 0 {
		return
	}
	b.retryPendingDeletes(ctx)
	for b.truncatePass(ctx, topic) {
	}
}

// truncatePass advances the truncation floor by up to truncChunk slots,
// reporting whether it advanced (callers loop until it did not). Both
// per-slot reads — ack counter and event — go through MGET windows, so a
// full chunk costs 2*truncChunk/kvScanWindow read commands, not
// 2*truncChunk. A stale window only under-reports acks, which stops the
// walk early; the CAS on the floor still serializes the actual collect.
func (b *KVBroker) truncatePass(ctx context.Context, topic string) bool {
	floor, err := b.counter(ctx, kvTruncKey(topic))
	if err != nil {
		return false
	}
	length, err := b.counter(ctx, kvLenKey(topic))
	if err != nil {
		return false
	}
	ackWin := kvWindow{b: b, key: func(i uint64) string { return kvAckKey(topic, i) }}
	evWin := kvWindow{b: b, key: func(i uint64) string { return kvEventKey(topic, i) }}
	f := floor
	for f < length && f-floor < truncChunk {
		raw, ok, err := ackWin.at(ctx, f)
		if err != nil {
			return false
		}
		var n int64
		if ok {
			n, _ = strconv.ParseInt(string(raw), 10, 64)
		}
		if n < int64(b.truncAfter) {
			// Unacked slot: only a gap (which no consumer acks) may pass.
			ev, ok, err := evWin.event(ctx, f)
			if err != nil || !ok || !ev.isGap() {
				break
			}
		} else {
			ev, ok, err := evWin.event(ctx, f)
			if err != nil {
				return false
			}
			// An End marker survives truncation even once cumulative acks
			// cover it: it is the only way a late or rejoining consumer
			// learns the stream is over.
			if ok && ev.End {
				break
			}
		}
		f++
	}
	if f == floor {
		return false
	}
	var old []byte
	if floor > 0 {
		old = []byte(strconv.FormatUint(floor, 10))
	}
	ok, err := b.client.CAS(ctx, kvTruncKey(topic), old, []byte(strconv.FormatUint(f, 10)))
	if err != nil || !ok {
		return false
	}
	b.deleteRange(ctx, kvEventPrefix(topic), floor, f)
	b.deleteRange(ctx, kvAckPrefix(topic), floor, f)
	b.mTruncSweeps.Inc()
	b.mTruncSlots.Add(f - floor)
	return true
}

// --- Fleet GC -------------------------------------------------------------

// ForgetConsumer deletes a fan-out consumer's committed offset — the one
// key Subscribe leaves per consumer name. Ephemeral consumers (task-plane
// clients with UUID identities) call it on clean shutdown; crashed ones
// are covered by SweepTopic's dead-consumer cleanup.
func (b *KVBroker) ForgetConsumer(ctx context.Context, topic, consumer string) error {
	_, err := b.client.Del(ctx, kvOffsetKey(topic, consumer))
	return err
}

// SweepTopic garbage-collects a topic consumed by a churning fan-out
// population whose consumers are members of m — the task planes' shared
// result topics, where one log serves every ephemeral client and a static
// WithKVTruncate threshold cannot exist. One sweep: reap m's dead members
// (expired heartbeats) and delete their committed-offset keys, then
// advance the topic's truncation floor to the minimum committed offset of
// the live members and collect the covered log slots and ack counters
// with ranged DELs. Every collected payload event is offered to orphan
// (when non-nil) together with the live-member set, so the caller can
// reclaim data-plane payloads addressed to dead consumers (counted in
// ps.orphan_gc when orphan reports true). With no live members the whole
// log is collected, End markers excepted. Returns collected slots.
//
// Safety against joiners: the log length is read before the roster, so a
// client that registers with m before its first publish-triggering
// request (as the task planes do) can never have a result swept out from
// under it — its results land at offsets at or past that length, and a
// client already registered at the roster read bounds the floor with its
// own offset (absent reads as 0).
func (b *KVBroker) SweepTopic(ctx context.Context, topic string, m *Membership, orphan func(ev Event, live map[string]bool) (evicted bool)) (int, error) {
	length, err := b.counter(ctx, kvLenKey(topic))
	if err != nil {
		return 0, err
	}
	live, dead, err := m.cull(ctx)
	if err != nil {
		return 0, err
	}
	if len(dead) > 0 {
		keys := make([]string, len(dead))
		for i, d := range dead {
			keys[i] = kvOffsetKey(topic, d)
		}
		if _, err := b.client.Del(ctx, keys...); err != nil {
			return 0, err
		}
	}
	limit := length
	liveSet := make(map[string]bool, len(live))
	if len(live) > 0 {
		keys := make([]string, len(live))
		for i, c := range live {
			liveSet[c] = true
			keys[i] = kvOffsetKey(topic, c)
		}
		raws, err := b.client.MGet(ctx, keys...)
		if err != nil {
			return 0, err
		}
		for _, raw := range raws {
			var off uint64
			if raw != nil {
				off, _ = strconv.ParseUint(string(raw), 10, 64)
			}
			if off < limit {
				limit = off
			}
		}
	}
	collected := 0
	for {
		n, more, err := b.sweepPass(ctx, topic, limit, liveSet, orphan)
		collected += n
		if err != nil || !more {
			return collected, err
		}
	}
}

// sweepPass advances the truncation floor toward limit by up to
// truncChunk slots, reporting whether a further pass is needed. Unlike
// truncatePass it does not require ack thresholds — the limit already
// proves every live consumer is past these slots — but End markers still
// stop it, for the same rejoin reasons.
func (b *KVBroker) sweepPass(ctx context.Context, topic string, limit uint64, live map[string]bool, orphan func(Event, map[string]bool) bool) (int, bool, error) {
	floor, err := b.counter(ctx, kvTruncKey(topic))
	if err != nil {
		return 0, false, err
	}
	if floor >= limit {
		return 0, false, nil
	}
	evWin := kvWindow{b: b, key: func(i uint64) string { return kvEventKey(topic, i) }}
	f := floor
	for f < limit && f-floor < truncChunk {
		ev, ok, err := evWin.event(ctx, f)
		if err != nil {
			return 0, false, err
		}
		if ok && ev.End {
			break
		}
		if ok && !ev.isGap() && orphan != nil {
			if orphan(ev, live) {
				b.mOrphanGC.Inc()
			}
		}
		f++
	}
	if f == floor {
		return 0, false, nil
	}
	var old []byte
	if floor > 0 {
		old = []byte(strconv.FormatUint(floor, 10))
	}
	ok, err := b.client.CAS(ctx, kvTruncKey(topic), old, []byte(strconv.FormatUint(f, 10)))
	if err != nil || !ok {
		return 0, false, nil // another sweeper or truncator won; let it work
	}
	b.deleteRange(ctx, kvEventPrefix(topic), floor, f)
	b.deleteRange(ctx, kvAckPrefix(topic), floor, f)
	b.mTruncSweeps.Inc()
	b.mTruncSlots.Add(f - floor)
	return int(f - floor), f-floor == truncChunk && f < limit, nil
}

// --- Consumer groups ------------------------------------------------------

// claimAcked is the claim-record value of a settled (group-acked) slot.
const claimAcked = "a"

// claimRecord encodes a live lease.
func claimRecord(member string, deadline time.Time) []byte {
	return []byte("c|" + member + "|" + strconv.FormatInt(deadline.UnixNano(), 10))
}

// parseClaim decodes a live lease record; ok is false for the acked
// marker or a corrupt record.
func parseClaim(raw []byte) (member string, deadline time.Time, ok bool) {
	parts := strings.SplitN(string(raw), "|", 3)
	if len(parts) != 3 || parts[0] != "c" {
		return "", time.Time{}, false
	}
	nanos, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return "", time.Time{}, false
	}
	return parts[1], time.Unix(0, nanos), true
}

// kvGroupSub is one group member's view of a topic work queue. All claim
// state lives on the server as CAS-guarded claim records; the
// subscription only carries the member's private End-broadcast cursor.
type kvGroupSub struct {
	b      *KVBroker
	topic  string
	group  string
	member string
	// endCursor: offsets below it hold no undelivered End marker for this
	// member.
	endCursor uint64
	// lastSeq is the server mutation sequence carried between WAITPREFIX
	// rounds: the next wait fires only for topic writes newer than it, so
	// rescans happen exactly once per batch of wakes.
	lastSeq uint64
	// nextLease is the earliest live claim deadline the latest scan saw
	// (zero if none). Lease expiry produces no server write, so a blocked
	// wait must be capped at it for reclamation to happen on time.
	nextLease time.Time
	// endPending marks a scan that found an End marker withheld by its
	// barrier: the wake that matters is then a claim settling (so the
	// floor can sweep), not just an append, and the blocking watch widens
	// from a single log slot to the whole topic keyspace.
	endPending bool
	// parkSlot is where the latest scan stopped: the first unfilled log
	// slot. A pushed park watches exactly that slot with WAITGET — new
	// claimable work cannot appear anywhere earlier.
	parkSlot uint64
	// pendingIncr holds offsets whose claim record was settled but whose
	// ack-counter increment failed; only this subscription knows the
	// increment is owed, so it retries before further work. (A crash
	// before the retry loses the count — the unavoidable window of a
	// two-step settle on a plain kv server.)
	pendingIncr []uint64
	// hb is this member's membership heartbeat under WithKVHeartbeat (nil
	// otherwise): Close leaves cleanly, and tryClaim consults its fence
	// before taking new work.
	hb *Heartbeat
	// hbSeen caches peer heartbeat deadlines read while judging live
	// claims: a deadline still in the future vouches for the member
	// without a re-read, and an apparently dead member is always re-read
	// fresh before its claims are stolen.
	hbSeen map[string]time.Time
}

// flushPendingIncr retries owed ack-counter increments, all in one
// pipelined round trip. A transport failure keeps the whole debt; a
// per-command failure keeps only the unpaid tail (the server executed the
// pipeline in order, so everything before the failing command landed).
func (s *kvGroupSub) flushPendingIncr(ctx context.Context) error {
	if len(s.pendingIncr) == 0 {
		return nil
	}
	pipe := s.b.client.Pipeline()
	reps := make([]*kvstore.PipeReply, len(s.pendingIncr))
	for i, off := range s.pendingIncr {
		reps[i] = pipe.Incr(kvAckKey(s.topic, off))
	}
	if err := pipe.Exec(ctx); err != nil {
		return fmt.Errorf("pstream: retrying group ack count: %w", err)
	}
	for i, r := range reps {
		if err := r.Err(); err != nil {
			s.pendingIncr = s.pendingIncr[i:]
			return fmt.Errorf("pstream: retrying group ack count: %w", err)
		}
	}
	s.pendingIncr = nil
	return nil
}

// hbAlive reports the claim-holding member's liveness under the
// membership layer: alive (true), dead — heartbeat stamped but expired —
// (false), or unknown, reported as alive, when heartbeats are off, the
// member is this subscription, or the member has no heartbeat key (it may
// predate the layer, or run a broker without WithKVHeartbeat; stealing its
// live-leased claims on absence of evidence would break exactly-once).
// Live verdicts are cached until the seen deadline passes; a dead verdict
// is always confirmed with a fresh read, so a member is never declared
// dead off a stale cache.
func (s *kvGroupSub) hbAlive(ctx context.Context, member string, now time.Time) bool {
	if s.b.hbTTL <= 0 || member == s.member {
		return true
	}
	if cached, ok := s.hbSeen[member]; ok && cached.After(now) {
		return true
	}
	raw, ok, err := s.b.client.Get(ctx, kvHeartbeatKey(s.topic, s.group, member))
	if err != nil || !ok {
		return true // unknown: fall back to lease timing
	}
	deadline, ok := parseDeadline(raw)
	if !ok {
		return true
	}
	if s.hbSeen == nil {
		s.hbSeen = make(map[string]time.Time)
	}
	s.hbSeen[member] = deadline
	return deadline.After(now)
}

// trackLease records a live claim deadline so Next can cap its blocking
// wait at the earliest one. Under the membership layer the effective
// deadline is the earlier of the lease and the holder's heartbeat
// deadline: a parked member then wakes in O(heartbeat) when a peer dies,
// not O(lease).
func (s *kvGroupSub) trackLease(ctx context.Context, raw []byte, now time.Time) {
	member, deadline, ok := parseClaim(raw)
	if !ok || !deadline.After(now) {
		return
	}
	if s.b.hbTTL > 0 && member != s.member {
		if hbDl, seen := s.hbSeen[member]; seen && hbDl.Before(deadline) {
			if hbDl.Before(now) {
				// Holder looks dead already; rescan almost immediately to
				// confirm and reclaim.
				hbDl = now.Add(time.Millisecond)
			}
			deadline = hbDl
		}
	}
	s.trackLeaseDeadline(deadline)
}

func (s *kvGroupSub) trackLeaseDeadline(deadline time.Time) {
	if s.nextLease.IsZero() || deadline.Before(s.nextLease) {
		s.nextLease = deadline
	}
}

// scan is one non-blocking pass over the work queue: advance the shared
// group floor past resolved slots, deliver a pending End marker once its
// barrier is met (floor swept past it), else claim the earliest available
// payload slot with a CAS-guarded lease. As a side effect it refreshes
// nextLease with the earliest live claim deadline encountered.
//
// All three walks read through MGET windows (kvWindow), so a scan over a
// deep backlog costs O(slots/kvScanWindow) commands instead of O(slots).
// Claim mutations (tryClaim) still read the record fresh right before the
// CAS — only the walk reads are batched.
func (s *kvGroupSub) scan(ctx context.Context) (Event, bool, error) {
	s.nextLease = time.Time{}
	s.endPending = false
	if err := s.flushPendingIncr(ctx); err != nil {
		return Event{}, false, err
	}
	evWin := kvWindow{b: s.b, key: func(i uint64) string { return kvEventKey(s.topic, i) }}
	clWin := kvWindow{b: s.b, key: func(i uint64) string { return kvClaimKey(s.topic, s.group, i) }}
	length, err := s.b.counter(ctx, kvLenKey(s.topic))
	if err != nil {
		return Event{}, false, err
	}
	floorKey := kvGroupFloorKey(s.topic, s.group)
	floor, err := s.b.counter(ctx, floorKey)
	if err != nil {
		return Event{}, false, err
	}

	// A missing event slot is ambiguous: either a producer is mid-append
	// (a hole — stop and wait) or log truncation collected a fully-acked
	// slot (resolved — skip it). The truncation floor, fetched lazily on
	// the first miss, tells them apart.
	trunc, truncKnown := uint64(0), false
	truncated := func(i uint64) (bool, error) {
		if !truncKnown {
			v, err := s.b.counter(ctx, kvTruncKey(s.topic))
			if err != nil {
				return false, err
			}
			trunc, truncKnown = v, true
		}
		return i < trunc, nil
	}

	// 1. Sweep the shared floor: gaps, Ends and truncated slots resolve on
	// contact, payload slots once their claim record reads acked. The
	// sweep is opportunistic — a lost CAS means another member advanced it
	// — and advances at most truncChunk slots per scan, bounding both the
	// sweep's round trips and the claim-record delete range below the
	// server's cap.
	f := floor
	for f < length && f-floor < truncChunk {
		ev, ok, err := evWin.event(ctx, f)
		if err != nil {
			return Event{}, false, err
		}
		if !ok {
			tr, err := truncated(f)
			if err != nil {
				return Event{}, false, err
			}
			if tr {
				f++
				continue
			}
			break // unfilled slot: a producer is mid-append
		}
		if !ev.isGap() && !ev.End {
			raw, held, err := clWin.at(ctx, f)
			if err != nil {
				return Event{}, false, err
			}
			if !held || string(raw) != claimAcked {
				if held {
					s.trackLease(ctx, raw, time.Now())
				}
				break
			}
		}
		f++
	}
	if f > floor {
		var old []byte
		if floor > 0 {
			old = []byte(strconv.FormatUint(floor, 10))
		}
		if ok, err := s.b.client.CAS(ctx, floorKey, old, []byte(strconv.FormatUint(f, 10))); err == nil && ok {
			// Claim records below the floor are garbage now; a failed
			// delete is queued and retried with the truncation ranges.
			s.b.deleteRange(ctx, kvClaimPrefix(s.topic, s.group), floor, f)
		}
	}

	// 2. End markers broadcast once all payload work before them is acked
	// (the floor, which passes Ends freely, has swept beyond). Truncated
	// slots cannot hold Ends — truncation stops at them — so they just
	// advance the cursor.
	for s.endCursor < length {
		ev, ok, err := evWin.event(ctx, s.endCursor)
		if err != nil {
			return Event{}, false, err
		}
		if !ok {
			tr, err := truncated(s.endCursor)
			if err != nil {
				return Event{}, false, err
			}
			if tr {
				s.endCursor++
				continue
			}
			break
		}
		if !ev.End {
			s.endCursor++
			continue
		}
		if f > s.endCursor {
			s.endCursor++
			return ev, true, nil
		}
		s.endPending = true
		break
	}

	// 3. Claim the earliest available payload slot. parkSlot ends at the
	// first unfilled slot — the only place new claimable work can appear —
	// which is where a pushed park points its blocking watch.
	s.parkSlot = length
	for i := f; i < length; i++ {
		ev, ok, err := evWin.event(ctx, i)
		if err != nil {
			return Event{}, false, err
		}
		if !ok {
			tr, err := truncated(i)
			if err != nil {
				return Event{}, false, err
			}
			if tr {
				continue
			}
			s.parkSlot = i
			break // hole: preserve log order, wait for the fill
		}
		if ev.isGap() || ev.End {
			continue
		}
		won, err := s.tryClaim(ctx, i)
		if err != nil {
			return Event{}, false, err
		}
		if won {
			s.b.observeDeliver(ev)
			return ev, true, nil
		}
	}
	return Event{}, false, nil
}

// tryClaim attempts to lease payload slot i: SETNX-CAS for a fresh claim,
// exact-record CAS to reclaim an expired lease — or, under the membership
// layer, a live lease whose holder's heartbeat has expired (the crashed
// member's work is stolen in O(heartbeat), not O(lease)) — and the floor
// guard against resurrecting a settled slot — if the slot was acked and
// its record GC'd between the read and the CAS, a fresh claim would
// redeliver an event whose payload may already be evicted. The floor
// cannot pass a live claim, so if it is still at or below i it stays
// there until we ack or our lease expires; if it already moved past, the
// claim is undone. Live peer leases observed along the way feed
// nextLease. A self-fenced member — its own heartbeat unrefreshable, so
// peers may already be stealing its claims — takes no new work at all.
func (s *kvGroupSub) tryClaim(ctx context.Context, i uint64) (bool, error) {
	if s.hb != nil && s.hb.Fenced() {
		return false, nil
	}
	key := kvClaimKey(s.topic, s.group, i)
	raw, held, err := s.b.client.Get(ctx, key)
	if err != nil {
		return false, err
	}
	now := time.Now()
	record := claimRecord(s.member, now.Add(s.b.lease))
	var win, reclaimed bool
	if !held {
		if win, err = s.b.client.CAS(ctx, key, nil, record); err != nil {
			return false, err
		}
		if !win {
			// Lost the race to a peer whose lease starts about now.
			s.trackLeaseDeadline(now.Add(s.b.lease))
		}
	} else {
		if string(raw) == claimAcked {
			return false, nil
		}
		member, deadline, ok := parseClaim(raw)
		if ok && (now.After(deadline) || !s.hbAlive(ctx, member, now)) {
			// Expired lease, or a live lease whose holder's heartbeat has
			// expired (hbAlive re-reads the heartbeat fresh before the dead
			// verdict). Reclaim with a CAS against the exact stale record,
			// so two reclaimers can never both win.
			if win, err = s.b.client.CAS(ctx, key, raw, record); err != nil {
				return false, err
			}
			reclaimed = win
		} else {
			s.trackLease(ctx, raw, now)
		}
	}
	if !win {
		return false, nil
	}
	// The claim record is on the server now; the floor guard and its undo
	// must run even if the caller's context just expired (a Next deadline
	// dying between the CAS and here), or a fresh claim on an already-
	// swept slot is stranded below the floor where no sweep revisits it.
	guardCtx := context.WithoutCancel(ctx)
	cur, err := s.b.counter(guardCtx, kvGroupFloorKey(s.topic, s.group))
	if err != nil {
		return false, err
	}
	if i < cur {
		s.b.client.Del(guardCtx, key)
		return false, nil
	}
	if reclaimed {
		s.b.mReclaims.Inc()
	} else {
		s.b.mClaims.Inc()
	}
	return true, nil
}

// waitTimeout returns the bound for one blocking wait: the broker's wait
// round, capped just past the earliest live claim deadline the member has
// seen. Lease expiry produces no server write, so only this cap makes
// reclamation after a member crash happen on lease time — with no
// server-side timers.
func (s *kvGroupSub) waitTimeout() time.Duration {
	timeout := s.b.waitRound
	if !s.nextLease.IsZero() {
		if until := time.Until(s.nextLease) + 2*time.Millisecond; until < timeout {
			timeout = until
		}
	}
	if timeout < time.Millisecond {
		timeout = time.Millisecond
	}
	return timeout
}

// parkPush blocks until new work may exist for this member. The watch is
// the narrowest possible: one WAITGET on the first unfilled log slot (the
// only place claimable work can appear), whose filling write delivers the
// event in the wait's own reply — the member then claims it directly,
// with no rescan, and a member that loses the claim race just advances
// its watch to the next slot, still without rescanning. Peer claims,
// settles and floor sweeps never wake a parked member. The exception is a
// withheld End marker (endPending): its barrier clears on a claim
// settling, so the watch widens to a WAITPREFIX over the whole topic.
//
// Returns ok=true with a claimed event, or ok=false when the caller must
// rescan: a wait round lapsed (lease expiry → reclamation, truncation), a
// delivered End or endPending wake (the barrier logic lives in scan), or
// push delivery just latched off.
func (s *kvGroupSub) parkPush(ctx context.Context) (Event, bool, error) {
	parkSlot := s.parkSlot
	for {
		if s.endPending {
			seq, err := s.b.waitClient.WaitPrefix(ctx, kvTopicPrefix(s.topic), s.lastSeq, s.waitTimeout())
			if err != nil {
				if s.b.disablePushIfUnknown(err) {
					return Event{}, false, nil
				}
				return Event{}, false, err
			}
			s.lastSeq = seq
			return Event{}, false, nil
		}
		raw, ok, err := s.b.waitClient.WaitGet(ctx, kvEventKey(s.topic, parkSlot), s.waitTimeout())
		if err != nil {
			if s.b.disablePushIfUnknown(err) {
				return Event{}, false, nil
			}
			return Event{}, false, err
		}
		if !ok {
			return Event{}, false, nil // wait round lapsed
		}
		ev, err := DecodeEvent(raw)
		if err != nil {
			return Event{}, false, err
		}
		if ev.isGap() {
			parkSlot++
			continue
		}
		if ev.End {
			return Event{}, false, nil
		}
		won, err := s.tryClaim(ctx, ev.Offset)
		if err != nil {
			return Event{}, false, err
		}
		if won {
			s.b.observeDeliver(ev)
			return ev, true, nil
		}
		parkSlot++ // a peer holds it; watch the next slot
	}
}

// Next implements Subscription. With push delivery an empty scan parks in
// a blocking wait (see parkPush) instead of polling: an idle member costs
// O(1) commands regardless of how long it idles, wakes carry the
// triggering event, and an append burst is consumed claim-by-claim
// without rescans. The polling fallback (capped exponential backoff,
// lease expirations surfacing on the next poll) serves old servers and
// WithKVPush(false).
func (s *kvGroupSub) Next(ctx context.Context) (Event, error) {
	delay := s.b.pollFloor
	for {
		ev, ok, err := s.scan(ctx)
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
		if s.b.pushOK() {
			ev, ok, err := s.parkPush(ctx)
			if err != nil {
				return Event{}, err
			}
			if ok {
				return ev, nil
			}
			continue
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > s.b.pollCap {
			delay = s.b.pollCap
		}
	}
}

// Poll implements Subscription: one scan pass, no waiting.
func (s *kvGroupSub) Poll(ctx context.Context) (Event, bool, error) {
	return s.scan(ctx)
}

// Ack implements Subscription: settle the claim by CASing the exact claim
// record to the acked marker, then bump the topic-level ack counter once
// for the whole group. A stale ack — the record was reclaimed (different
// member) or already settled — reports the current count without
// inflating it, so a redelivered event is never double-counted.
func (s *kvGroupSub) Ack(ctx context.Context, ev Event) (int, error) {
	if err := s.flushPendingIncr(ctx); err != nil {
		return 0, err
	}
	key := kvClaimKey(s.topic, s.group, ev.Offset)
	raw, held, err := s.b.client.Get(ctx, key)
	if err != nil {
		return 0, err
	}
	stale := func() (int, error) {
		n, err := s.b.ackCount(ctx, s.topic, ev.Offset)
		return int(n), err
	}
	if !held || string(raw) == claimAcked {
		// Settled (possibly by us, possibly GC'd below the floor).
		return stale()
	}
	member, _, ok := parseClaim(raw)
	if !ok || member != s.member {
		return stale()
	}
	win, err := s.b.client.CAS(ctx, key, raw, []byte(claimAcked))
	if err != nil {
		return 0, err
	}
	if !win {
		return stale() // reclaimed between the Get and the CAS
	}
	n, err := s.b.client.Incr(ctx, kvAckKey(s.topic, ev.Offset))
	if err != nil {
		// The claim is settled but the count is owed: a retried Ack would
		// take the stale() path and never increment, so remember the debt
		// and repay it on the next call.
		s.pendingIncr = append(s.pendingIncr, ev.Offset)
		return 0, fmt.Errorf("pstream: counting group ack: %w", err)
	}
	s.b.maybeTruncate(ctx, s.topic)
	return int(n), nil
}

// Close implements Subscription. Unacked claims are left to expire, so
// other members reclaim this member's unfinished work (with a clean
// membership leave under WithKVHeartbeat, peers fall back to lease timing
// for them — the heartbeat key is gone, which proves nothing about a
// crash; only an expired heartbeat does).
func (s *kvGroupSub) Close() error {
	if s.hb != nil {
		return s.hb.Leave(context.Background())
	}
	return nil
}

// GroupHeartbeat returns the membership heartbeat a KVBroker group
// subscription runs under WithKVHeartbeat, or nil for other subscriptions.
// Callers use it to observe self-fencing (Fenced) — and tests use its Kill
// hook to simulate member crashes without killing processes.
func GroupHeartbeat(sub Subscription) *Heartbeat {
	if s, ok := sub.(*kvGroupSub); ok {
		return s.hb
	}
	return nil
}
