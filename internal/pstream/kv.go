package pstream

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"proxystore/internal/kvstore"
)

// KVBroker is the kvstore-backed broker: topic logs, committed offsets and
// ack counters are plain RESP keys on a kvstore server, so the metadata
// plane rides the same infrastructure as a redis data plane and survives
// process restarts (with server persistence, even server restarts).
//
// Layout, per topic T:
//
//	ps:T:len      INCR-maintained append counter (= log length)
//	ps:T:e:<i>    encoded event at log index i
//	ps:T:c:<name> consumer name's committed offset
//	ps:T:a:<i>    INCR-maintained distinct-consumer ack count of event i
//
// Appends reserve a slot with INCR (atomic on the server) and then SET the
// event, so concurrent producers never collide; readers poll a slot until
// its SET lands. Next polls with capped exponential backoff — brokered
// delivery over a shared kv server trades latency for zero extra moving
// parts.
type KVBroker struct {
	addr   string
	client *kvstore.Client
	// pollFloor/pollCap bound the Next polling backoff.
	pollFloor, pollCap time.Duration
}

// KVOption configures a KVBroker.
type KVOption func(*KVBroker)

// WithPollInterval overrides the Next polling backoff bounds (defaults
// 500µs floor, 10ms cap).
func WithPollInterval(floor, ceil time.Duration) KVOption {
	return func(b *KVBroker) {
		if floor > 0 {
			b.pollFloor = floor
		}
		if ceil >= floor {
			b.pollCap = ceil
		}
	}
}

// NewKV returns a broker over the kvstore server at addr.
func NewKV(addr string, opts ...KVOption) *KVBroker {
	b := &KVBroker{
		addr:      addr,
		pollFloor: 500 * time.Microsecond,
		pollCap:   10 * time.Millisecond,
	}
	for _, o := range opts {
		o(b)
	}
	b.client = kvstore.NewClient(addr)
	return b
}

func kvLenKey(topic string) string { return "ps:" + topic + ":len" }
func kvEventKey(topic string, i uint64) string {
	return "ps:" + topic + ":e:" + strconv.FormatUint(i, 10)
}
func kvOffsetKey(topic, consumer string) string { return "ps:" + topic + ":c:" + consumer }
func kvAckKey(topic string, i uint64) string {
	return "ps:" + topic + ":a:" + strconv.FormatUint(i, 10)
}

// Publish implements Broker: INCR reserves the next log index, SET fills it.
// The two steps are not atomic; if the SET fails, the reserved slot is
// filled with a gap marker on a cancellation-detached context so consumers
// skip it instead of polling the hole forever. (A producer that crashes
// between the two steps still wedges the topic — the price of a log built
// from plain kv primitives; see the package doc.)
func (b *KVBroker) Publish(ctx context.Context, topic string, ev Event) error {
	n, err := b.client.Incr(ctx, kvLenKey(topic))
	if err != nil {
		return fmt.Errorf("pstream: reserving log slot: %w", err)
	}
	ev.Topic = topic
	ev.Offset = uint64(n - 1)
	data, err := EncodeEvent(ev)
	if err != nil {
		b.fillGap(ctx, topic, ev.Offset)
		return err
	}
	if err := b.client.Set(ctx, kvEventKey(topic, ev.Offset), data); err != nil {
		b.fillGap(ctx, topic, ev.Offset)
		return fmt.Errorf("pstream: appending event: %w", err)
	}
	return nil
}

// fillGap writes a skip marker into a reserved-but-unfilled log slot so the
// topic stays consumable after a failed append. The write runs detached
// from the caller's cancellation: when the failed SET was itself a ctx
// cancel, the gap must still land.
func (b *KVBroker) fillGap(ctx context.Context, topic string, offset uint64) error {
	gap := Event{Topic: topic, Offset: offset, Attrs: map[string]string{attrGap: "1"}}
	data, err := EncodeEvent(gap)
	if err != nil {
		return err
	}
	return b.client.Set(context.WithoutCancel(ctx), kvEventKey(topic, offset), data)
}

// Subscribe implements Broker, resuming from the committed offset stored on
// the server.
func (b *KVBroker) Subscribe(ctx context.Context, topic, consumer string) (Subscription, error) {
	off, err := b.committedOffset(ctx, topic, consumer)
	if err != nil {
		return nil, err
	}
	return &kvSub{b: b, topic: topic, consumer: consumer, cursor: off, committed: off}, nil
}

func (b *KVBroker) committedOffset(ctx context.Context, topic, consumer string) (uint64, error) {
	raw, ok, err := b.client.Get(ctx, kvOffsetKey(topic, consumer))
	if err != nil {
		return 0, fmt.Errorf("pstream: reading committed offset: %w", err)
	}
	if !ok {
		return 0, nil
	}
	off, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pstream: corrupt committed offset %q: %w", raw, err)
	}
	return off, nil
}

// Close implements Broker. Server-side logs and offsets persist.
func (b *KVBroker) Close() error { return b.client.Close() }

type kvSub struct {
	b        *KVBroker
	topic    string
	consumer string
	cursor   uint64
	// committed mirrors the server-side committed offset. The subscription
	// is the offset's only writer (one cursor per consumer name), so Ack
	// trusts the local copy instead of re-reading it every item. dirty
	// marks a mirror that advanced past a failed server write.
	committed uint64
	dirty     bool
}

// get returns the event at the cursor, or ok=false when the slot is still
// empty.
func (s *kvSub) get(ctx context.Context) (Event, bool, error) {
	raw, ok, err := s.b.client.Get(ctx, kvEventKey(s.topic, s.cursor))
	if err != nil || !ok {
		return Event{}, false, err
	}
	ev, err := DecodeEvent(raw)
	if err != nil {
		return Event{}, false, err
	}
	return ev, true, nil
}

// Next implements Subscription, polling the cursor slot with capped
// exponential backoff.
func (s *kvSub) Next(ctx context.Context) (Event, error) {
	delay := s.b.pollFloor
	for {
		ev, ok, err := s.get(ctx)
		if err != nil {
			return Event{}, err
		}
		if ok {
			s.cursor++
			return ev, nil
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > s.b.pollCap {
			delay = s.b.pollCap
		}
	}
}

// Poll implements Subscription: one GET round trip, no waiting.
func (s *kvSub) Poll(ctx context.Context) (Event, bool, error) {
	ev, ok, err := s.get(ctx)
	if err != nil || !ok {
		return Event{}, false, err
	}
	s.cursor++
	return ev, true, nil
}

// Ack implements Subscription: bump ack counters for every newly committed
// event, then persist the advanced offset. The local committed mirror is
// advanced as soon as the counters are bumped, before the offset write: a
// same-subscription retry after a failed offset commit then takes the
// already-covered path instead of re-running the Incr loop, so counts
// cannot double. (A crash before the offset write still re-delivers and
// re-counts on resubscribe — the documented at-least-once trade.)
func (s *kvSub) Ack(ctx context.Context, ev Event) (int, error) {
	committed := s.committed
	if ev.Offset < committed {
		// Already covered by an earlier cumulative ack: report the current
		// count without inflating it.
		raw, ok, err := s.b.client.Get(ctx, kvAckKey(s.topic, ev.Offset))
		if err != nil || !ok {
			return 0, err
		}
		n, _ := strconv.ParseInt(string(raw), 10, 64)
		// The server-side offset trails after a failed commit; re-attempt
		// it so resubscribes resume correctly.
		if s.dirty {
			if err := s.commitOffset(ctx, committed); err != nil {
				return 0, err
			}
			s.dirty = false
		}
		return int(n), nil
	}
	var last int64
	for i := committed; i <= ev.Offset; i++ {
		n, err := s.b.client.Incr(ctx, kvAckKey(s.topic, i))
		if err != nil {
			return 0, fmt.Errorf("pstream: counting ack: %w", err)
		}
		last = n
	}
	s.committed = ev.Offset + 1
	if err := s.commitOffset(ctx, s.committed); err != nil {
		s.dirty = true
		return 0, err
	}
	s.dirty = false
	return int(last), nil
}

func (s *kvSub) commitOffset(ctx context.Context, off uint64) error {
	raw := []byte(strconv.FormatUint(off, 10))
	if err := s.b.client.Set(ctx, kvOffsetKey(s.topic, s.consumer), raw); err != nil {
		return fmt.Errorf("pstream: committing offset: %w", err)
	}
	return nil
}

// Close implements Subscription; the server keeps the committed offset.
func (s *kvSub) Close() error { return nil }
