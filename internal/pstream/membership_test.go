package pstream_test

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
)

// newMembershipBroker spins up a kvstore server and a heartbeat-enabled
// KVBroker over it, returning both plus the broker's membership handle for
// a fresh topic/group.
func newMembershipBroker(t *testing.T, ttl time.Duration) (*kvstore.Server, *pstream.KVBroker, *pstream.Membership) {
	t.Helper()
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	b := pstream.NewKV(srv.Addr(), pstream.WithKVHeartbeat(ttl))
	t.Cleanup(func() { b.Close() })
	return srv, b, b.Membership("mtopic", "mgroup")
}

func TestMembershipJoinLiveLeave(t *testing.T) {
	ctx := context.Background()
	_, _, m := newMembershipBroker(t, 500*time.Millisecond)

	ha, err := m.Join(ctx, "alice")
	if err != nil {
		t.Fatalf("Join(alice): %v", err)
	}
	hb, err := m.Join(ctx, "bob")
	if err != nil {
		t.Fatalf("Join(bob): %v", err)
	}
	live, err := m.Live(ctx)
	if err != nil {
		t.Fatalf("Live: %v", err)
	}
	if len(live) != 2 {
		t.Fatalf("Live = %v, want [alice bob]", live)
	}

	if err := ha.Leave(ctx); err != nil {
		t.Fatalf("Leave(alice): %v", err)
	}
	live, err = m.Live(ctx)
	if err != nil {
		t.Fatalf("Live after leave: %v", err)
	}
	if len(live) != 1 || live[0] != "bob" {
		t.Fatalf("Live after leave = %v, want [bob]", live)
	}
	if err := hb.Leave(ctx); err != nil {
		t.Fatalf("Leave(bob): %v", err)
	}
	live, err = m.Live(ctx)
	if err != nil || len(live) != 0 {
		t.Fatalf("Live after all leave = %v, %v; want empty", live, err)
	}
}

func TestMembershipHeartbeatKeepsMemberAliveAndKillExpires(t *testing.T) {
	// The heartbeater must refresh well past the initial TTL stamp; once
	// killed, the member must read as dead within one TTL and Reap must
	// collect its keys.
	ctx := context.Background()
	const ttl = 200 * time.Millisecond
	_, _, m := newMembershipBroker(t, ttl)

	h, err := m.Join(ctx, "worker")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// Across 3 TTLs of wall time the member stays live only if refreshes
	// are landing.
	deadline := time.Now().Add(3 * ttl)
	for time.Now().Before(deadline) {
		live, err := m.Live(ctx)
		if err != nil {
			t.Fatalf("Live: %v", err)
		}
		if len(live) != 1 {
			t.Fatalf("member died while heartbeating: Live = %v", live)
		}
		time.Sleep(ttl / 4)
	}

	h.Kill() // simulated crash: no cleanup
	time.Sleep(ttl + 50*time.Millisecond)
	dead, err := m.Reap(ctx)
	if err != nil {
		t.Fatalf("Reap: %v", err)
	}
	if len(dead) != 1 || dead[0] != "worker" {
		t.Fatalf("Reap = %v, want [worker]", dead)
	}
	live, err := m.Live(ctx)
	if err != nil || len(live) != 0 {
		t.Fatalf("Live after reap = %v, %v; want empty", live, err)
	}
}

func TestMembershipWatchWakesOnJoin(t *testing.T) {
	// Watch parks in the server's WAITPREFIX; a join must wake it without
	// waiting out the timeout.
	ctx := context.Background()
	_, _, m := newMembershipBroker(t, time.Second)

	woke := make(chan error, 1)
	go func() {
		_, err := m.Watch(ctx, 0, 5*time.Second)
		woke <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the watch park

	start := time.Now()
	h, err := m.Join(ctx, "joiner")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	t.Cleanup(func() { h.Leave(ctx) })
	select {
	case err := <-woke:
		if err != nil {
			t.Fatalf("Watch: %v", err)
		}
		if since := time.Since(start); since > 2*time.Second {
			t.Fatalf("Watch woke after %v — timed out instead of waking on the join", since)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch never returned after a join")
	}
}

func TestMembershipSelfFencesWhenServerDies(t *testing.T) {
	// A member that cannot refresh past its own stamped deadline must
	// self-fence (stop claiming new work) instead of running as a zombie
	// whose claims peers are already stealing.
	ctx := context.Background()
	const ttl = 200 * time.Millisecond
	srv, _, m := newMembershipBroker(t, ttl)

	h, err := m.Join(ctx, "fenceme")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if h.Fenced() {
		t.Fatal("fenced immediately after a successful join")
	}
	srv.Close() // refreshes now fail
	deadline := time.Now().Add(3 * time.Second)
	for !h.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("member never self-fenced after the server died")
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.Kill()
}

func TestMembershipSizerFeedsEvictSizer(t *testing.T) {
	// Producers size evict-on-ack from the live-member count: with two
	// live members the event carries threshold 2; with none the policy is
	// off (no attr) instead of guessing.
	ctx := context.Background()
	_, b, m := newMembershipBroker(t, time.Second)
	st := newLocalStore(t)

	h1, err := m.Join(ctx, "c1")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	h2, err := m.Join(ctx, "c2")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}

	// maxAge 1ns: re-read the roster on every call so the test sees
	// membership changes immediately.
	prod := pstream.NewProducer[int](st, b, "sized", pstream.WithEvictSizer(m.Sizer(time.Nanosecond)))
	if err := prod.Send(ctx, 1, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	sub, err := b.Subscribe(ctx, "sized", "obs")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got := ev.Attr("ps.evict_after"); got != "2" {
		t.Fatalf("evict_after attr = %q, want \"2\" (two live members)", got)
	}

	if err := h1.Leave(ctx); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := h2.Leave(ctx); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := prod.Send(ctx, 2, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ev, err = sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got := ev.Attr("ps.evict_after"); got != "" {
		t.Fatalf("evict_after attr = %q with no live members, want unset", got)
	}
}
