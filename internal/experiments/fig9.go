package experiments

import (
	"context"
	"fmt"

	"proxystore/internal/bench"
	"proxystore/internal/endpoint"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/relay"
)

// Fig9 reproduces Figure 9: GET and SET times between two PS-endpoints at
// increasing distance (Theta—Theta, Midway2—Theta, Frontera—Theta), against
// a Redis server on the target site reached through an SSH tunnel.
//
// The paper's two findings reproduce structurally: the endpoint path has
// one more hop (client — local endpoint — remote endpoint vs client —
// Redis), so Redis wins where latency is low; and the endpoints' WebRTC
// channel (conservative congestion control + UDP throttling) falls further
// behind as payloads grow.
func Fig9(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	net := netsim.Testbed(cfg.Scale)

	report := bench.Report{
		Title:   "Figure 9: endpoint peering vs Redis over SSH",
		Headers: []string{"scenario", "method", "op", "size", "mean"},
	}
	report.AddNote("endpoint path pays an extra hop and UDP-throttled channel; Redis rides TCP")

	relaySrv, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer relaySrv.Close()

	scenarios := []struct {
		name  string
		siteA string // client side
		siteB string // target side
	}{
		{"Theta->Theta", netsim.SiteThetaLogin, netsim.SiteTheta},
		{"Midway2->Theta", netsim.SiteMidway2, netsim.SiteTheta},
		{"Frontera->Theta", netsim.SiteFrontera, netsim.SiteTheta},
	}

	sizes := []int{1 << 10, 100 << 10, 1 << 20, 10 << 20}
	ctx := context.Background()

	for _, sc := range scenarios {
		// --- PS-endpoints: one per site, client talks to the local one.
		epA, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), endpoint.Options{
			UUID: uniqueName("f9-a"), Site: sc.siteA, Net: net,
		})
		if err != nil {
			return report, err
		}
		epB, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), endpoint.Options{
			UUID: uniqueName("f9-b"), Site: sc.siteB, Net: net,
		})
		if err != nil {
			epA.Close()
			return report, err
		}
		epCli := endpoint.NewClient(epA.Addr(),
			endpoint.WithClientNetwork(net, sc.siteA, sc.siteA))

		// --- Redis on the target site, reached via an SSH tunnel: the
		// tunnel is a TCP relay, modeled as the plain site-to-site link.
		kv, err := kvstore.NewServer("127.0.0.1:0")
		if err != nil {
			epA.Close()
			epB.Close()
			return report, err
		}
		kvCli := kvstore.NewClient(kv.Addr(),
			kvstore.WithClientNetwork(net, sc.siteA, sc.siteB))

		for _, size := range sizes {
			if size > cfg.MaxPayload {
				continue
			}
			payload := pattern(size)

			// Seed objects for GETs: on endpoint B (remote) and Redis.
			seedCli := endpoint.NewClient(epB.Addr())
			if err := seedCli.Set(ctx, "f9-obj", payload); err != nil {
				seedCli.Close()
				return report, err
			}
			seedCli.Close()
			if err := kvCli.Set(ctx, "f9-obj", payload); err != nil {
				return report, err
			}

			type point struct {
				method string
				op     string
				fn     func() error
			}
			var i int
			points := []point{
				{"PS-Endpoints", "SET", func() error {
					i++
					return epCli.Set(ctx, fmt.Sprintf("f9-set-%d", i), payload)
				}},
				{"PS-Endpoints", "GET", func() error {
					_, found, err := epCli.Get(ctx, epB.UUID(), "f9-obj")
					if err == nil && !found {
						return fmt.Errorf("fig9: object missing")
					}
					return err
				}},
				{"Redis+SSH", "SET", func() error {
					i++
					return kvCli.Set(ctx, fmt.Sprintf("f9-kset-%d", i), payload)
				}},
				{"Redis+SSH", "GET", func() error {
					_, ok, err := kvCli.Get(ctx, "f9-obj")
					if err == nil && !ok {
						return fmt.Errorf("fig9: redis object missing")
					}
					return err
				}},
			}
			for _, pt := range points {
				summary, err := bench.Measure(cfg.Repeats, pt.fn)
				if err != nil {
					epA.Close()
					epB.Close()
					kv.Close()
					return report, fmt.Errorf("fig9 %s/%s/%s/%d: %w", sc.name, pt.method, pt.op, size, err)
				}
				report.AddRow(sc.name, pt.method, pt.op, bench.FormatBytes(size),
					bench.FormatDuration(summary.Mean))
			}
		}

		epCli.Close()
		kvCli.Close()
		kv.Close()
		epA.Close()
		epB.Close()
	}
	return report, nil
}

// Fig9Ablation compares the endpoint peer channel's congestion controllers
// directly: the aiortc-like fixed window against BBR-like control on the
// long-fat Frontera—Theta link (the §5.3.2 diagnosis, and DESIGN.md
// ablation #5).
func Fig9Ablation(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	report := bench.Report{
		Title:   "Figure 9 ablation: peer-channel congestion control",
		Headers: []string{"cc", "size", "mean"},
	}
	net := netsim.Testbed(cfg.Scale)

	relaySrv, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer relaySrv.Close()

	for _, cc := range []string{"fixed(aiortc)", "bbr-like"} {
		opts := endpoint.Options{Site: netsim.SiteFrontera, Net: net, UUID: uniqueName("f9ab-a")}
		optsB := endpoint.Options{Site: netsim.SiteTheta, Net: net, UUID: uniqueName("f9ab-b")}
		if cc == "bbr-like" {
			opts.NewCC = endpoint.BBRCC
			optsB.NewCC = endpoint.BBRCC
		}
		epA, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), opts)
		if err != nil {
			return report, err
		}
		epB, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), optsB)
		if err != nil {
			epA.Close()
			return report, err
		}
		cli := endpoint.NewClient(epA.Addr())

		ctx := context.Background()
		for _, size := range []int{100 << 10, 1 << 20, 10 << 20} {
			if size > cfg.MaxPayload {
				continue
			}
			payload := pattern(size)
			seed := endpoint.NewClient(epB.Addr())
			if err := seed.Set(ctx, "ab-obj", payload); err != nil {
				seed.Close()
				return report, err
			}
			seed.Close()
			summary, err := bench.Measure(cfg.Repeats, func() error {
				_, _, err := cli.Get(ctx, epB.UUID(), "ab-obj")
				return err
			})
			if err != nil {
				return report, err
			}
			report.AddRow(cc, bench.FormatBytes(size), bench.FormatDuration(summary.Mean))
		}
		cli.Close()
		epA.Close()
		epB.Close()
	}
	report.AddNote("fixed window caps throughput at window/RTT; BBR-like fills the (throttled) pipe")
	return report, nil
}
