package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"proxystore/internal/bench"
	"proxystore/internal/colmena"
	"proxystore/internal/connector"
	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/serial"
	"proxystore/internal/store"
	"proxystore/internal/workflow"
)

// Fig7 reproduces Figure 7: percent improvement in Colmena no-op task
// round-trip time when task data moves via ProxyStore (FileStore and
// RedisStore) instead of through Colmena/Parsl's own pipe, over a grid of
// input and output sizes. Thinker, task server, and worker are co-located,
// so the engine's serialization channel is the entire data path.
func Fig7(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	report := bench.Report{
		Title:   "Figure 7: Colmena RTT improvement with ProxyStore vs baseline",
		Headers: []string{"store", "input", "output", "baseline", "proxied", "improvement"},
	}
	report.AddNote("positive improvement = proxied round trip faster (paper: ~0%% small, 40-60%% at 1MB, ~90%% at 100MB)")

	sizes := []int{1 << 10, 1 << 20, 4 << 20}
	if cfg.MaxPayload < 4<<20 {
		sizes = []int{1 << 10, cfg.MaxPayload}
	}

	kv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer kv.Close()
	dir, err := os.MkdirTemp("", "fig7-file-*")
	if err != nil {
		return report, err
	}
	defer os.RemoveAll(dir)

	for _, backend := range []string{"FileStore", "RedisStore"} {
		var conn connector.Connector
		switch backend {
		case "FileStore":
			fc, err := file.New(dir)
			if err != nil {
				return report, err
			}
			conn = fc
		case "RedisStore":
			conn = redisc.New(kv.Addr())
		}
		name := uniqueName("f7-" + backend)
		st, err := store.New(name, conn, store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
		if err != nil {
			return report, err
		}

		for _, inSize := range sizes {
			for _, outSize := range sizes {
				base, err := fig7RTT(cfg, nil, inSize, outSize)
				if err != nil {
					store.Unregister(name)
					return report, fmt.Errorf("fig7 baseline: %w", err)
				}
				prox, err := fig7RTT(cfg, st, inSize, outSize)
				if err != nil {
					store.Unregister(name)
					return report, fmt.Errorf("fig7 proxied: %w", err)
				}
				improvement := 100 * (1 - float64(prox)/float64(base))
				report.AddRow(backend, bench.FormatBytes(inSize), bench.FormatBytes(outSize),
					bench.FormatDuration(base), bench.FormatDuration(prox),
					fmt.Sprintf("%.1f%%", improvement))
			}
		}
		store.Unregister(name)
	}
	return report, nil
}

// fig7RTT returns the median round-trip time of repeated no-op Colmena
// tasks with the given payload sizes, optionally proxied through st.
func fig7RTT(cfg Config, st *store.Store, inSize, outSize int) (time.Duration, error) {
	// A KNL-node-ish serialization channel: the engine moves bytes between
	// Thinker, Task Server, and worker at a few hundred MB/s.
	engine := workflow.New(workflow.Options{Workers: 1, ChannelBandwidth: 400e6})
	defer engine.Close()
	server := colmena.NewServer(engine, 64)

	output := pattern(outSize)
	server.RegisterMethod("noop", func(_ context.Context, in any) (any, error) {
		return output, nil
	})
	if st != nil {
		server.RegisterStore("noop", colmena.StorePolicy{Store: st, Threshold: 1, ProxyResults: true})
	}

	input := pattern(inSize)
	ctx := context.Background()
	rtts := make([]time.Duration, 0, cfg.Repeats)
	for i := 0; i < cfg.Repeats; i++ {
		if err := server.Submit(ctx, "noop", input, nil); err != nil {
			return 0, err
		}
		res := <-server.Results()
		if res.Err != nil {
			return 0, res.Err
		}
		// The Thinker consumes the result, resolving proxies as the real
		// application would before using the value.
		if _, err := colmena.ResolveResult(ctx, res.Value); err != nil {
			return 0, err
		}
		rtts = append(rtts, res.RTT())
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	return rtts[len(rtts)/2], nil
}
