package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/bench"
	"proxystore/internal/endpoint"
	"proxystore/internal/relay"
)

// Fig8 reproduces Figure 8: average GET and SET request time to a single
// PS-endpoint versus the number of concurrent clients, across payload
// sizes. The endpoint's single-threaded request loop serializes work, so
// response times scale linearly with client count.
func Fig8(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	report := bench.Report{
		Title:   "Figure 8: PS-endpoint request time vs concurrent clients",
		Headers: []string{"op", "size", "clients", "avg/request"},
	}
	report.AddNote("single-threaded endpoint: times grow ~linearly with client count")

	relaySrv, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer relaySrv.Close()

	ep, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), endpoint.Options{
		UUID:        uniqueName("fig8-ep"),
		RequestCost: 100 * time.Microsecond, // per-request event-loop work
	})
	if err != nil {
		return report, err
	}
	defer ep.Close()

	clientCounts := []int{1, 2, 8, 32, 64}
	sizes := []int{1 << 10, 64 << 10, 512 << 10}
	const requestsPerClient = 4

	ctx := context.Background()
	for _, op := range []string{"SET", "GET"} {
		for _, size := range sizes {
			if size > cfg.MaxPayload {
				continue
			}
			payload := pattern(size)

			// Pre-store an object for GETs.
			seed := endpoint.NewClient(ep.Addr())
			if err := seed.Set(ctx, "fig8-obj", payload); err != nil {
				seed.Close()
				return report, err
			}
			seed.Close()

			for _, clients := range clientCounts {
				var wg sync.WaitGroup
				errCh := make(chan error, clients)
				start := time.Now()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						cli := endpoint.NewClient(ep.Addr())
						defer cli.Close()
						for r := 0; r < requestsPerClient; r++ {
							var err error
							if op == "SET" {
								err = cli.Set(ctx, fmt.Sprintf("fig8-%d-%d", c, r), payload)
							} else {
								_, _, err = cli.Get(ctx, ep.UUID(), "fig8-obj")
							}
							if err != nil {
								errCh <- err
								return
							}
						}
					}(c)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					return report, fmt.Errorf("fig8 %s/%d/%d: %w", op, size, clients, err)
				}
				perRequest := time.Since(start) / time.Duration(clients*requestsPerClient)
				report.AddRow(op, bench.FormatBytes(size), fmt.Sprint(clients),
					bench.FormatDuration(perRequest*time.Duration(clients))) // avg latency seen by one request
			}
		}
	}
	return report, nil
}
