package experiments

import (
	"fmt"
	"sort"

	"proxystore/internal/bench"
)

// Runner executes one paper experiment.
type Runner func(Config) (bench.Report, error)

// All maps experiment IDs (as used by `psbench <id>`) to runners.
var All = map[string]Runner{
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig9-ablation": Fig9Ablation,
	"table2":        Table2,
	"fig10":         Fig10,
	"fig11":         Fig11,
}

// Names returns the sorted experiment IDs.
func Names() []string {
	out := make([]string, 0, len(All))
	for n := range All {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, error) {
	r, ok := All[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return r, nil
}
