package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"proxystore/internal/bench"
	"proxystore/internal/connector"
	"proxystore/internal/connectors/endpointc"
	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/globusc"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/endpoint"
	"proxystore/internal/faas"
	"proxystore/internal/globus"
	"proxystore/internal/ipfs"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/relay"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// fig5Config is one client/endpoint placement from Figure 5.
type fig5Config struct {
	name       string
	clientSite string
	computeSit string
	interSite  bool
}

// Fig5 reproduces Figure 5: round-trip Globus Compute no-op and 1 s sleep
// tasks across payload sizes, comparing baseline cloud transfer with
// ProxyStore stores (and IPFS for inter-site configs).
func Fig5(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	net := netsim.Testbed(cfg.Scale)
	redisc.SetNetwork(net)
	endpointc.SetNetwork(net)

	report := bench.Report{
		Title:   "Figure 5: Globus Compute round-trip task time",
		Headers: []string{"task", "config", "method", "size", "mean", "std"},
	}
	report.AddNote("times scaled by 1/%g; 'over limit' marks payloads above the 5MB cloud cap", cfg.Scale)

	cloud := faas.NewCloud(net, netsim.SiteCloud)
	relaySrv, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer relaySrv.Close()

	configs := []fig5Config{
		{"Theta->Theta", netsim.SiteTheta, netsim.SiteTheta, false},
		{"PerlLogin->PerlCompute", netsim.SitePerlmutterLogin, netsim.SitePerlmutter, false},
		{"Midway2->Theta", netsim.SiteMidway2, netsim.SiteTheta, true},
		{"Frontera->Theta", netsim.SiteFrontera, netsim.SiteTheta, true},
	}

	sleepNominal := time.Duration(float64(time.Second) / cfg.Scale)
	ctx := context.Background()

	for _, fc := range configs {
		epName := uniqueName("f5-ep-" + fc.name)
		ep := faas.StartEndpoint(cloud, epName, fc.computeSit, 4)
		exec := faas.NewExecutor(cloud, epName, fc.clientSite)

		methods, cleanup, err := fig5Methods(net, relaySrv.Addr(), fc)
		if err != nil {
			ep.Close()
			return report, err
		}

		for _, task := range []string{"noop", "sleep"} {
			fn := fnNoop
			if task == "sleep" {
				fn = fnSleep
			}
			for _, m := range methods {
				for _, size := range payloadSizes(cfg.MaxPayload) {
					payload := pattern(size)
					summary, err := bench.Measure(cfg.Repeats, func() error {
						arg, err := m.prepare(ctx, payload)
						if err != nil {
							return err
						}
						var fut *faas.Future
						if task == "sleep" {
							fut, err = exec.Submit(ctx, fn, arg, int64(sleepNominal))
						} else {
							fut, err = exec.Submit(ctx, fn, arg)
						}
						if err != nil {
							return err
						}
						_, err = fut.Result(ctx)
						return err
					})
					if err != nil {
						if size > faas.PayloadLimit && m.name == "CloudTransfer" {
							report.AddRow(task, fc.name, m.name, bench.FormatBytes(size), "over limit", "-")
							continue
						}
						cleanup()
						ep.Close()
						return report, fmt.Errorf("fig5 %s/%s/%s/%d: %w", task, fc.name, m.name, size, err)
					}
					report.AddRow(task, fc.name, m.name, bench.FormatBytes(size),
						bench.FormatDuration(summary.Mean), bench.FormatDuration(summary.Std))
				}
			}
		}
		cleanup()
		ep.Close()
	}
	return report, nil
}

// fig5Method prepares a task argument for one communication method.
type fig5Method struct {
	name    string
	prepare func(ctx context.Context, payload []byte) (any, error)
}

// proxyVia stores the payload through the producer store and mints a proxy
// that resolves through the consumer store — modelling a consumer process
// whose registered store (same name, different site) serves the get.
func proxyVia(ctx context.Context, producer, consumer *store.Store, payload []byte) (any, error) {
	key, err := producer.PutObject(ctx, payload)
	if err != nil {
		return nil, err
	}
	return store.ProxyFromKey[[]byte](consumer, key), nil
}

func fig5Methods(net *netsim.Network, relayAddr string, fc fig5Config) ([]fig5Method, func(), error) {
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	var methods []fig5Method

	// Baseline: payload by value through the cloud.
	methods = append(methods, fig5Method{
		name:    "CloudTransfer",
		prepare: func(_ context.Context, payload []byte) (any, error) { return payload, nil },
	})

	rawStore := func(name string, conn connector.Connector) (*store.Store, error) {
		s, err := store.New(name, conn, store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { store.Unregister(name) })
		return s, nil
	}

	if !fc.interSite {
		// FileStore: shared parallel file system at the site.
		dir, err := os.MkdirTemp("", "fig5-file-*")
		if err != nil {
			return nil, cleanup, err
		}
		closers = append(closers, func() { os.RemoveAll(dir) })
		prodFile, err := file.New(dir, file.WithNetwork(net, fc.clientSite, fc.clientSite))
		if err != nil {
			return nil, cleanup, err
		}
		consFile, err := file.New(dir, file.WithNetwork(net, fc.computeSit, fc.clientSite))
		if err != nil {
			return nil, cleanup, err
		}
		prodFS, err := rawStore(uniqueName("f5-file-prod"), prodFile)
		if err != nil {
			return nil, cleanup, err
		}
		consFS, err := rawStore(uniqueName("f5-file-cons"), consFile)
		if err != nil {
			return nil, cleanup, err
		}
		methods = append(methods, fig5Method{"FileStore", func(ctx context.Context, p []byte) (any, error) {
			return proxyVia(ctx, prodFS, consFS, p)
		}})

		// RedisStore: server on the client/login node.
		kv, err := kvstore.NewServer("127.0.0.1:0")
		if err != nil {
			return nil, cleanup, err
		}
		closers = append(closers, func() { kv.Close() })
		prodRedis, err := rawStore(uniqueName("f5-redis-prod"),
			redisc.New(kv.Addr(), redisc.WithSites(fc.clientSite, fc.clientSite)))
		if err != nil {
			return nil, cleanup, err
		}
		consRedis, err := rawStore(uniqueName("f5-redis-cons"),
			redisc.New(kv.Addr(), redisc.WithSites(fc.computeSit, fc.clientSite)))
		if err != nil {
			return nil, cleanup, err
		}
		methods = append(methods, fig5Method{"RedisStore", func(ctx context.Context, p []byte) (any, error) {
			return proxyVia(ctx, prodRedis, consRedis, p)
		}})
	} else {
		// GlobusStore: endpoints at both sites.
		svcName := uniqueName("f5-globus")
		svc := globus.NewService(net)
		dirA, err := os.MkdirTemp("", "fig5-globus-a-*")
		if err != nil {
			return nil, cleanup, err
		}
		dirB, err := os.MkdirTemp("", "fig5-globus-b-*")
		if err != nil {
			return nil, cleanup, err
		}
		closers = append(closers, func() { os.RemoveAll(dirA); os.RemoveAll(dirB) })
		if err := svc.RegisterEndpoint("gep-client", fc.clientSite, dirA); err != nil {
			return nil, cleanup, err
		}
		if err := svc.RegisterEndpoint("gep-compute", fc.computeSit, dirB); err != nil {
			return nil, cleanup, err
		}
		globus.RegisterService(svcName, svc)
		prodGC, err := globusc.New(svcName, "gep-client", []string{"gep-compute"})
		if err != nil {
			return nil, cleanup, err
		}
		consGC, err := globusc.New(svcName, "gep-compute", []string{"gep-client"})
		if err != nil {
			return nil, cleanup, err
		}
		prodGS, err := rawStore(uniqueName("f5-globus-prod"), prodGC)
		if err != nil {
			return nil, cleanup, err
		}
		consGS, err := rawStore(uniqueName("f5-globus-cons"), consGC)
		if err != nil {
			return nil, cleanup, err
		}
		methods = append(methods, fig5Method{"GlobusStore", func(ctx context.Context, p []byte) (any, error) {
			return proxyVia(ctx, prodGS, consGS, p)
		}})

		// IPFS baseline: one node per site.
		clientNode := ipfs.NewNode(uniqueName("ipfs-client"), fc.clientSite, net)
		wNode := ipfs.NewNode(uniqueName("ipfs-worker"), fc.computeSit, net)
		ipfs.Connect(clientNode, wNode)
		workerIPFS.Store(wNode)
		methods = append(methods, fig5Method{"IPFS", func(_ context.Context, p []byte) (any, error) {
			return string(clientNode.Add(p)), nil
		}})
	}

	// EndpointStore: PS-endpoints at both sites, in every configuration.
	epClient, err := endpoint.Start("127.0.0.1:0", relayAddr, endpoint.Options{
		UUID: uniqueName("f5-psep-client"), Site: fc.clientSite, Net: net,
	})
	if err != nil {
		return nil, cleanup, err
	}
	closers = append(closers, func() { epClient.Close() })
	epCompute, err := endpoint.Start("127.0.0.1:0", relayAddr, endpoint.Options{
		UUID: uniqueName("f5-psep-compute"), Site: fc.computeSit, Net: net,
	})
	if err != nil {
		return nil, cleanup, err
	}
	closers = append(closers, func() { epCompute.Close() })

	prodEP, err := rawStore(uniqueName("f5-ep-prod"),
		endpointc.New(epClient.Addr(), epClient.UUID(), fc.clientSite, fc.clientSite))
	if err != nil {
		return nil, cleanup, err
	}
	consEP, err := rawStore(uniqueName("f5-ep-cons"),
		endpointc.New(epCompute.Addr(), epCompute.UUID(), fc.computeSit, fc.computeSit))
	if err != nil {
		return nil, cleanup, err
	}
	methods = append(methods, fig5Method{"EndpointStore", func(ctx context.Context, p []byte) (any, error) {
		return proxyVia(ctx, prodEP, consEP, p)
	}})

	return methods, cleanup, nil
}
