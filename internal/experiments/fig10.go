package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"proxystore/internal/bench"
	"proxystore/internal/connectors/endpointc"
	"proxystore/internal/endpoint"
	"proxystore/internal/faas"
	"proxystore/internal/flox"
	"proxystore/internal/netsim"
	"proxystore/internal/relay"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// Fig10 reproduces Figure 10: federated-learning model transfer time as a
// function of model size (hidden blocks), comparing cloud transfer (which
// fails past the 5 MB payload limit) with EndpointStore proxies.
func Fig10(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	// Keep the cloud's nominal per-payload costs visible against the
	// endpoint path's real local I/O.
	if cfg.Scale > 20 {
		cfg.Scale = 20
	}
	net := netsim.Testbed(cfg.Scale)
	endpointc.SetNetwork(net)

	report := bench.Report{
		Title:   "Figure 10: federated learning round time vs model size",
		Headers: []string{"hidden blocks", "model bytes", "cloud transfer", "EndpointStore"},
	}
	report.AddNote("cloud transfer hits the 5MB Globus Compute limit near 40 blocks (paper: ~40)")

	cloud := faas.NewCloud(net, netsim.SiteCloud)
	const devices = 4
	execs := make([]*faas.Executor, devices)
	for i := 0; i < devices; i++ {
		name := uniqueName(fmt.Sprintf("f10-edge-%d", i))
		ep := faas.StartEndpoint(cloud, name, netsim.SiteEdge, 1)
		defer ep.Close()
		execs[i] = faas.NewExecutor(cloud, name, netsim.SiteCloud)
	}

	// EndpointStore shared by aggregator and devices (the aggregator's
	// endpoint is reachable via peering from the edge site's endpoint; in
	// this in-process deployment one endpoint serves both roles, which
	// matches the paper's testbed where the aggregator hosts the store).
	relaySrv, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer relaySrv.Close()
	aggEP, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), endpoint.Options{
		UUID: uniqueName("f10-agg"), Site: netsim.SiteCloud, Net: net,
	})
	if err != nil {
		return report, err
	}
	defer aggEP.Close()

	epStore, err := store.New(uniqueName("f10-epstore"),
		endpointc.New(aggEP.Addr(), aggEP.UUID(), netsim.SiteEdge, netsim.SiteCloud),
		store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
	if err != nil {
		return report, err
	}
	defer store.Unregister(epStore.Name())

	blocks := []int{1, 10, 20, 30, 40, 50}
	ctx := context.Background()

	for _, b := range blocks {
		arch := flox.Arch{InputDim: 28 * 28, HiddenDim: 160, Blocks: b, Classes: 10}
		modelBytes := arch.NewModel(1).NumParams() * 4

		measure := func(st *store.Store) (time.Duration, error) {
			agg := flox.NewAggregator(flox.Options{
				Arch: arch, Devices: execs, Store: st,
				DataSize: 2, LocalEpochs: 1, // negligible training: isolate transfer
			})
			start := time.Now()
			if _, err := agg.Round(ctx); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}

		cloudCell := ""
		if d, err := measure(nil); err != nil {
			if errors.Is(err, faas.ErrPayloadTooLarge) || modelBytes > faas.PayloadLimit {
				cloudCell = "over limit"
			} else {
				return report, fmt.Errorf("fig10 cloud blocks=%d: %w", b, err)
			}
		} else {
			cloudCell = bench.FormatDuration(d)
		}

		d, err := measure(epStore)
		if err != nil {
			return report, fmt.Errorf("fig10 endpoint blocks=%d: %w", b, err)
		}
		report.AddRow(fmt.Sprint(b), bench.FormatBytes(modelBytes), cloudCell, bench.FormatDuration(d))
	}
	return report, nil
}
