package experiments

import (
	"strings"
	"testing"
)

// quickConfig keeps every experiment smoke test fast: aggressive time
// compression, one repeat, small payload caps.
func quickConfig() Config {
	return Config{Scale: 5000, Repeats: 1, MaxPayload: 1 << 20}
}

func runExperiment(t *testing.T, id string) {
	t.Helper()
	r, err := Lookup(id)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	report, err := r(quickConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(report.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var sb strings.Builder
	report.Print(&sb)
	if !strings.Contains(sb.String(), report.Title) {
		t.Fatalf("%s report did not print its title", id)
	}
	t.Logf("%s: %d rows", id, len(report.Rows))
}

func TestFig5Smoke(t *testing.T)         { runExperiment(t, "fig5") }
func TestFig6Smoke(t *testing.T)         { runExperiment(t, "fig6") }
func TestFig7Smoke(t *testing.T)         { runExperiment(t, "fig7") }
func TestFig8Smoke(t *testing.T)         { runExperiment(t, "fig8") }
func TestFig9Smoke(t *testing.T)         { runExperiment(t, "fig9") }
func TestFig9AblationSmoke(t *testing.T) { runExperiment(t, "fig9-ablation") }
func TestTable2Smoke(t *testing.T)       { runExperiment(t, "table2") }
func TestFig10Smoke(t *testing.T)        { runExperiment(t, "fig10") }
func TestFig11Smoke(t *testing.T) {
	r, err := Fig11(Config{Scale: 5000, Repeats: 1, MaxPayload: 1 << 20})
	if err != nil {
		t.Fatalf("fig11: %v", err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("fig11 produced no rows")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("Lookup accepted unknown experiment")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(All) {
		t.Fatalf("Names returned %d entries, want %d", len(names), len(All))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}
