package experiments

import (
	"context"
	"fmt"
	"os"

	"proxystore/internal/bench"
	"proxystore/internal/connector"
	"proxystore/internal/connectors/endpointc"
	"proxystore/internal/connectors/file"
	"proxystore/internal/defect"
	"proxystore/internal/endpoint"
	"proxystore/internal/faas"
	"proxystore/internal/netsim"
	"proxystore/internal/proxy"
	"proxystore/internal/relay"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

const (
	fnDefect      = "table2.segment"       // input by value, result by value
	fnDefectProxy = "table2.segment.proxy" // proxied input, optionally proxied output
)

func init() {
	faas.RegisterFunction(fnDefect, func(_ context.Context, args []any) (any, error) {
		im, err := defect.DecodeImage(args[0].([]byte))
		if err != nil {
			return nil, err
		}
		return defect.EncodeResult(defect.Segment(im, true)), nil
	})
	faas.RegisterFunction(fnDefectProxy, func(ctx context.Context, args []any) (any, error) {
		p := args[0].(*proxy.Proxy[[]byte])
		data, err := p.Value(ctx)
		if err != nil {
			return nil, err
		}
		im, err := defect.DecodeImage(data)
		if err != nil {
			return nil, err
		}
		out := defect.EncodeResult(defect.Segment(im, true))
		proxyOutput := args[1].(bool)
		if !proxyOutput {
			return out, nil
		}
		// Two additional lines of task code: proxy the output through the
		// same store that resolved the input (paper §5.4).
		outStore, ok := store.Lookup(args[2].(string))
		if !ok {
			return nil, fmt.Errorf("table2: result store %q not registered", args[2])
		}
		return store.NewProxy(ctx, outStore, out)
	})
}

// Table2 reproduces Table 2: round-trip task times for the real-time
// defect analysis application — baseline Globus Compute vs FileStore and
// EndpointStore, proxying inputs only or inputs and outputs.
func Table2(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	// The baseline's WAN costs must stay visible against real local I/O,
	// so this experiment caps the time compression.
	if cfg.Scale > 5 {
		cfg.Scale = 5
	}
	net := netsim.Testbed(cfg.Scale)
	endpointc.SetNetwork(net)

	report := bench.Report{
		Title:   "Table 2: real-time defect analysis round-trip times",
		Headers: []string{"configuration", "proxied", "mean", "std", "improvement"},
	}
	report.AddNote("1 MB micrographs; paper: 30-37%% improvement over the baseline")

	cloud := faas.NewCloud(net, netsim.SiteCloud)
	epName := uniqueName("t2-gc")
	gcEndpoint := faas.StartEndpoint(cloud, epName, netsim.SitePolaris, 2)
	defer gcEndpoint.Close()

	image := defect.Generate(1024, 12, 7).Encode() // ~1 MB

	ctx := context.Background()

	// --- Baseline: image and mask through the cloud.
	execTheta := faas.NewExecutor(cloud, epName, netsim.SiteThetaLogin)
	baseline, err := bench.Measure(cfg.Repeats, func() error {
		fut, err := execTheta.Submit(ctx, fnDefect, image)
		if err != nil {
			return err
		}
		out, err := fut.Result(ctx)
		if err != nil {
			return err
		}
		_, err = defect.DecodeResult(out.([]byte))
		return err
	})
	if err != nil {
		return report, fmt.Errorf("table2 baseline: %w", err)
	}
	report.AddRow("Globus Compute baseline", "-",
		bench.FormatDuration(baseline.Mean), bench.FormatDuration(baseline.Std), "-")

	improvement := func(s bench.Summary) string {
		return fmt.Sprintf("%.1f%%", 100*(1-float64(s.Mean)/float64(baseline.Mean)))
	}

	runProxied := func(exec *faas.Executor, prod, cons *store.Store, proxyOutputs bool) (bench.Summary, error) {
		return bench.Measure(cfg.Repeats, func() error {
			key, err := prod.PutObject(ctx, image)
			if err != nil {
				return err
			}
			p := store.ProxyFromKey[[]byte](cons, key)
			fut, err := exec.Submit(ctx, fnDefectProxy, p, proxyOutputs, cons.Name())
			if err != nil {
				return err
			}
			out, err := fut.Result(ctx)
			if err != nil {
				return err
			}
			var data []byte
			if op, ok := out.(*proxy.Proxy[[]byte]); ok {
				data, err = op.Value(ctx)
				if err != nil {
					return err
				}
			} else {
				data = out.([]byte)
			}
			_, err = defect.DecodeResult(data)
			return err
		})
	}

	// --- FileStore: client on Theta login, shared FS visible from Polaris.
	dir, err := os.MkdirTemp("", "table2-file-*")
	if err != nil {
		return report, err
	}
	defer os.RemoveAll(dir)
	prodConn, err := file.New(dir, file.WithNetwork(net, netsim.SiteThetaLogin, netsim.SiteThetaLogin))
	if err != nil {
		return report, err
	}
	consConn, err := file.New(dir, file.WithNetwork(net, netsim.SitePolaris, netsim.SiteThetaLogin))
	if err != nil {
		return report, err
	}
	prodFS := mustStore(uniqueName("t2-file-prod"), prodConn)
	defer store.Unregister(prodFS.Name())
	consFS := mustStore(uniqueName("t2-file-cons"), consConn)
	defer store.Unregister(consFS.Name())

	for _, proxied := range []bool{false, true} {
		label := "Inputs"
		if proxied {
			label = "Inputs/Outputs"
		}
		s, err := runProxied(execTheta, prodFS, consFS, proxied)
		if err != nil {
			return report, fmt.Errorf("table2 FileStore: %w", err)
		}
		report.AddRow("FileStore", label, bench.FormatDuration(s.Mean),
			bench.FormatDuration(s.Std), improvement(s))
	}

	// --- EndpointStore: client on Midway2, PS-endpoints on Midway2 and a
	// Polaris login node.
	relaySrv, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		return report, err
	}
	defer relaySrv.Close()
	epMidway, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), endpoint.Options{
		UUID: uniqueName("t2-ep-midway"), Site: netsim.SiteMidway2, Net: net,
	})
	if err != nil {
		return report, err
	}
	defer epMidway.Close()
	epPolaris, err := endpoint.Start("127.0.0.1:0", relaySrv.Addr(), endpoint.Options{
		UUID: uniqueName("t2-ep-polaris"), Site: netsim.SitePolarisLogin, Net: net,
	})
	if err != nil {
		return report, err
	}
	defer epPolaris.Close()

	execMidway := faas.NewExecutor(cloud, epName, netsim.SiteMidway2)
	prodEP := mustStore(uniqueName("t2-ep-prod"),
		endpointc.New(epMidway.Addr(), epMidway.UUID(), netsim.SiteMidway2, netsim.SiteMidway2))
	defer store.Unregister(prodEP.Name())
	consEP := mustStore(uniqueName("t2-ep-cons"),
		endpointc.New(epPolaris.Addr(), epPolaris.UUID(), netsim.SitePolaris, netsim.SitePolarisLogin))
	defer store.Unregister(consEP.Name())

	for _, proxied := range []bool{false, true} {
		label := "Inputs"
		if proxied {
			label = "Inputs/Outputs"
		}
		s, err := runProxied(execMidway, prodEP, consEP, proxied)
		if err != nil {
			return report, fmt.Errorf("table2 EndpointStore: %w", err)
		}
		report.AddRow("EndpointStore", label, bench.FormatDuration(s.Mean),
			bench.FormatDuration(s.Std), improvement(s))
	}

	return report, nil
}

// mustStore builds a raw-serializer, cache-free store or panics; the
// experiment names are unique so registration cannot conflict.
func mustStore(name string, conn connector.Connector) *store.Store {
	s, err := store.New(name, conn, store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
	if err != nil {
		panic(fmt.Sprintf("experiments: building store %s: %v", name, err))
	}
	return s
}
