package experiments

import (
	"context"
	"fmt"
	"time"

	"proxystore/internal/bench"
	"proxystore/internal/connector"
	"proxystore/internal/connectors/fabricc"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/connectors/zmqc"
	"proxystore/internal/dataspaces"
	"proxystore/internal/faas"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/rdma"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// Fig6 reproduces Figure 6: no-op task round-trip times with the
// distributed in-memory stores (Margo, UCX, ZMQ) against the cloud
// baseline, RedisStore, and DataSpaces, on a Polaris-like HPC fabric and a
// Chameleon-like Ethernet cluster.
func Fig6(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	report := bench.Report{
		Title:   "Figure 6: distributed in-memory stores vs DataSpaces",
		Headers: []string{"cluster", "method", "size", "mean", "std"},
	}
	report.AddNote("UCX uses its Ethernet profile on Chameleon (paper's observed anomaly)")

	for _, cluster := range []struct {
		name    string
		siteA   string
		siteB   string
		link    netsim.Link
		ucxProf rdma.Profile
	}{
		{"Polaris", "pol-login", "pol-compute",
			netsim.Link{Latency: 30 * time.Microsecond, Bandwidth: 5e9}, rdma.UCXProfile()},
		{"Chameleon", "cham-a", "cham-b",
			netsim.Link{Latency: 45 * time.Microsecond, Bandwidth: 4e9}, rdma.UCXEthernetProfile()},
	} {
		if err := fig6Cluster(cfg, &report, cluster.name, cluster.siteA, cluster.siteB, cluster.link, cluster.ucxProf); err != nil {
			return report, err
		}
	}
	return report, nil
}

func fig6Cluster(cfg Config, report *bench.Report, name, siteA, siteB string, link netsim.Link, ucxProf rdma.Profile) error {
	net := netsim.New(cfg.Scale)
	net.AddSite(siteA, true)
	net.AddSite(siteB, true)
	net.AddSite(netsim.SiteCloud, false)
	if err := net.SetLink(siteA, siteB, link); err != nil {
		return err
	}
	cloudLink := netsim.Link{Latency: 12 * time.Millisecond, Bandwidth: 120e6}
	net.SetLink(siteA, netsim.SiteCloud, cloudLink)
	net.SetLink(siteB, netsim.SiteCloud, cloudLink)
	redisc.SetNetwork(net)
	zmqc.SetNetwork(net)

	cloud := faas.NewCloud(net, netsim.SiteCloud)
	epName := uniqueName("f6-ep-" + name)
	ep := faas.StartEndpoint(cloud, epName, siteB, 4)
	defer ep.Close()
	exec := faas.NewExecutor(cloud, epName, siteA)

	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	type method struct {
		name    string
		prepare func(ctx context.Context, payload []byte) (any, error)
	}
	var methods []method

	// Cloud baseline.
	methods = append(methods, method{"CloudTransfer", func(_ context.Context, p []byte) (any, error) {
		return p, nil
	}})

	mkStore := func(prefix string, conn connector.Connector) (*store.Store, error) {
		n := uniqueName(prefix)
		s, err := store.New(n, conn, store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { store.Unregister(n) })
		return s, nil
	}

	// RedisStore: server on siteA.
	kv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	closers = append(closers, func() { kv.Close() })
	prodRedis, err := mkStore("f6-redis-prod", redisc.New(kv.Addr(), redisc.WithSites(siteA, siteA)))
	if err != nil {
		return err
	}
	consRedis, err := mkStore("f6-redis-cons", redisc.New(kv.Addr(), redisc.WithSites(siteB, siteA)))
	if err != nil {
		return err
	}
	methods = append(methods, method{"RedisStore", func(ctx context.Context, p []byte) (any, error) {
		return proxyVia(ctx, prodRedis, consRedis, p)
	}})

	// Margo and UCX: fabric-backed distributed in-memory stores.
	for _, fb := range []struct {
		label   string
		profile rdma.Profile
		mk      func(fabric, node, site string) (*fabricc.Connector, error)
	}{
		{"MargoStore", rdma.MargoProfile(), fabricc.NewMargo},
		{"UCXStore", ucxProf, fabricc.NewUCX},
	} {
		fabricName := uniqueName("f6-fabric-" + fb.label)
		fabricc.RegisterFabric(fabricName, rdma.NewFabric(net, fb.profile))
		prodConn, err := fb.mk(fabricName, uniqueName("f6-nodeA"), siteA)
		if err != nil {
			return err
		}
		consConn, err := fb.mk(fabricName, uniqueName("f6-nodeB"), siteB)
		if err != nil {
			return err
		}
		prod, err := mkStore("f6-"+fb.label+"-prod", prodConn)
		if err != nil {
			return err
		}
		cons, err := mkStore("f6-"+fb.label+"-cons", consConn)
		if err != nil {
			return err
		}
		label := fb.label
		methods = append(methods, method{label, func(ctx context.Context, p []byte) (any, error) {
			return proxyVia(ctx, prod, cons, p)
		}})
	}

	// ZMQStore.
	prodZ, err := zmqc.New(uniqueName("f6-zmq-a"), siteA)
	if err != nil {
		return err
	}
	consZ, err := zmqc.New(uniqueName("f6-zmq-b"), siteB)
	if err != nil {
		return err
	}
	prodZS, err := mkStore("f6-zmq-prod", prodZ)
	if err != nil {
		return err
	}
	consZS, err := mkStore("f6-zmq-cons", consZ)
	if err != nil {
		return err
	}
	methods = append(methods, method{"ZMQStore", func(ctx context.Context, p []byte) (any, error) {
		return proxyVia(ctx, prodZS, consZS, p)
	}})

	// DataSpaces baseline: staging server on siteA reached over Margo.
	dsFabric := rdma.NewFabric(net, rdma.MargoProfile())
	dsSrv, err := dataspaces.StartServer(dsFabric, "f6-ds-server", siteA)
	if err != nil {
		return err
	}
	closers = append(closers, func() { dsSrv.Close() })
	dsProd, err := dataspaces.NewClient(dsFabric, "f6-ds-prod", siteA, "f6-ds-server",
		dataspaces.ClientOptions{Scale: cfg.Scale})
	if err != nil {
		return err
	}
	closers = append(closers, func() { dsProd.Close() })
	dsCons, err := dataspaces.NewClient(dsFabric, "f6-ds-cons", siteB, "f6-ds-server",
		dataspaces.ClientOptions{Scale: cfg.Scale})
	if err != nil {
		return err
	}
	closers = append(closers, func() { dsCons.Close() })
	var dsVersion uint32
	methods = append(methods, method{"DataSpaces", func(ctx context.Context, p []byte) (any, error) {
		dsVersion++
		v := dsVersion
		if err := dsProd.Put(ctx, "f6-obj", v, p); err != nil {
			return nil, err
		}
		// The worker-side get happens here eagerly (DataSpaces has no lazy
		// proxies); the payload handed to the task is a tiny marker.
		if _, err := dsCons.Get(ctx, "f6-obj", v); err != nil {
			return nil, err
		}
		return []byte("ds"), nil
	}})

	ctx := context.Background()
	for _, m := range methods {
		for _, size := range payloadSizes(cfg.MaxPayload) {
			payload := pattern(size)
			summary, err := bench.Measure(cfg.Repeats, func() error {
				arg, err := m.prepare(ctx, payload)
				if err != nil {
					return err
				}
				fut, err := exec.Submit(ctx, fnNoop, arg)
				if err != nil {
					return err
				}
				_, err = fut.Result(ctx)
				return err
			})
			if err != nil {
				if size > faas.PayloadLimit && m.name == "CloudTransfer" {
					report.AddRow(name, m.name, bench.FormatBytes(size), "over limit", "-")
					continue
				}
				return fmt.Errorf("fig6 %s/%s/%d: %w", name, m.name, size, err)
			}
			report.AddRow(name, m.name, bench.FormatBytes(size),
				bench.FormatDuration(summary.Mean), bench.FormatDuration(summary.Std))
		}
	}
	return nil
}
