// Package experiments contains one runner per table and figure in the
// paper's evaluation (§5). Each runner builds the simulated testbed,
// executes the experiment's sweep, and returns a bench.Report whose rows
// correspond to the paper's plotted series. Absolute numbers are scaled
// (netsim compresses time), but orderings and crossovers match the paper;
// EXPERIMENTS.md records the comparison.
package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"proxystore/internal/faas"
	"proxystore/internal/ipfs"
	"proxystore/internal/proxy"
	"proxystore/internal/store"
)

// Config tunes experiment size so the suite can run as quick smoke tests
// (benchmarks) or fuller sweeps (psbench).
type Config struct {
	// Scale is the netsim time-compression factor (default 500).
	Scale float64
	// Repeats per measurement point (default 3).
	Repeats int
	// MaxPayload caps payload sweeps in bytes (default 10 MiB).
	MaxPayload int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 500
	}
	if c.Repeats < 1 {
		c.Repeats = 3
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 10 << 20
	}
	return c
}

// payloadSizes returns the paper's logarithmic sweep capped at max.
func payloadSizes(max int) []int {
	sizes := []int{10, 1 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20}
	out := sizes[:0:0]
	for _, s := range sizes {
		if s <= max {
			out = append(out, s)
		}
	}
	return out
}

// pattern fills a payload with deterministic bytes.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 131)
	}
	return b
}

// --- shared FaaS task functions ---------------------------------------------

// Experiment tasks accept either raw bytes (baseline: data by value), a
// proxy (ProxyStore paths), or an IPFS CID string.

var (
	// workerIPFS is the worker-site IPFS node for the active experiment.
	workerIPFS atomic.Pointer[ipfs.Node]
)

const (
	fnNoop  = "exp.noop"
	fnSleep = "exp.sleep"
)

func resolveTaskInput(ctx context.Context, v any) (int, error) {
	switch x := v.(type) {
	case []byte:
		return len(x), nil
	case *proxy.Proxy[[]byte]:
		data, err := x.Value(ctx)
		if err != nil {
			return 0, err
		}
		return len(data), nil
	case string: // IPFS CID
		node := workerIPFS.Load()
		if node == nil {
			return 0, fmt.Errorf("experiments: no worker IPFS node installed")
		}
		data, err := node.Get(ctx, ipfs.CID(x))
		if err != nil {
			return 0, err
		}
		return len(data), nil
	default:
		return 0, fmt.Errorf("experiments: unsupported task input %T", v)
	}
}

func init() {
	proxy.RegisterGob[[]byte]()

	// No-op task: ensure the input is fully materialized, do nothing.
	faas.RegisterFunction(fnNoop, func(ctx context.Context, args []any) (any, error) {
		n, err := resolveTaskInput(ctx, args[0])
		if err != nil {
			return nil, err
		}
		return n, nil
	})

	// Sleep task: begin resolving asynchronously, compute (sleep), then
	// wait on the resolve — overlapping communication with computation
	// (paper §5.1).
	faas.RegisterFunction(fnSleep, func(ctx context.Context, args []any) (any, error) {
		sleep := time.Duration(args[1].(int64))
		if p, ok := args[0].(*proxy.Proxy[[]byte]); ok {
			p.ResolveAsync(ctx)
			time.Sleep(sleep)
			data, err := p.Value(ctx)
			if err != nil {
				return nil, err
			}
			return len(data), nil
		}
		n, err := resolveTaskInput(ctx, args[0])
		if err != nil {
			return nil, err
		}
		time.Sleep(sleep)
		return n, nil
	})
}

// uniqueName generates collision-free store names so repeated experiment
// runs in one process never fight over the global store registry.
var storeSeq atomic.Uint64

func uniqueName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, storeSeq.Add(1))
}

var _ = store.Lookup // keep the import alive for runners in this package
