package experiments

import (
	"context"
	"fmt"
	"time"

	"proxystore/internal/bench"
	"proxystore/internal/colmena"
	"proxystore/internal/connectors/local"
	"proxystore/internal/molsim"
	"proxystore/internal/serial"
	"proxystore/internal/store"
	"proxystore/internal/workflow"
)

// Fig11 reproduces Figure 11: average node utilization of the molecular
// design application as simulation-node count grows, with and without
// ProxyStore. Without proxies, every simulation result's payload crosses
// the workflow engine's channel and is deserialized serially by the
// Thinker before new work dispatches, so the system cannot keep large node
// counts fed; with proxies the channel carries only references.
func Fig11(cfg Config) (bench.Report, error) {
	cfg = cfg.withDefaults()
	report := bench.Report{
		Title:   "Figure 11: molecular design node utilization",
		Headers: []string{"nodes", "method", "utilization", "result processing"},
	}
	report.AddNote("paper: ProxyStore improves utilization 29%% at 512 and 43%% at 1024 nodes, and result processing by 25%%")

	nodeCounts := []int{32, 64, 128, 256}
	candidates := molsim.Candidates(4096, 11)
	// Each simulation result carries the molecule's wavefunction-ish blob.
	const resultBytes = 512 << 10

	for _, nodes := range nodeCounts {
		for _, method := range []string{"Baseline", "ProxyStore"} {
			util, procTime, err := fig11Run(cfg, nodes, method == "ProxyStore", candidates, resultBytes)
			if err != nil {
				return report, fmt.Errorf("fig11 %d/%s: %w", nodes, method, err)
			}
			report.AddRow(fmt.Sprint(nodes), method,
				fmt.Sprintf("%.0f%%", 100*util), bench.FormatDuration(procTime))
		}
	}
	return report, nil
}

func fig11Run(cfg Config, nodes int, useProxies bool, candidates []molsim.Molecule, resultBytes int) (float64, time.Duration, error) {
	// The engine's channel models the Thinker-side ZMQ pipe on a login
	// node: a single serialization point shared by all workers.
	engine := workflow.New(workflow.Options{Workers: nodes, ChannelBandwidth: 800e6})
	defer engine.Close()
	server := colmena.NewServer(engine, nodes*4)

	server.RegisterMethod("simulate", func(_ context.Context, in any) (any, error) {
		idx := int(in.([]byte)[0])<<8 | int(in.([]byte)[1])
		mol := candidates[idx%len(candidates)]
		molsim.Simulate(mol, 1_500_000) // a few ms of real CPU work per task
		out := pattern(resultBytes)
		out[0], out[1] = in.([]byte)[0], in.([]byte)[1]
		return out, nil
	})

	var st *store.Store
	if useProxies {
		var err error
		st, err = store.New(uniqueName("f11-store"), local.New(uniqueName("f11-conn")),
			store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
		if err != nil {
			return 0, 0, err
		}
		defer store.Unregister(st.Name())
		server.RegisterStore("simulate", colmena.StorePolicy{Store: st, Threshold: 1024, ProxyResults: true})
	}

	ctx := context.Background()
	submit := func(i int) error {
		in := []byte{byte(i >> 8), byte(i & 0xff)}
		return server.Submit(ctx, "simulate", in, i)
	}

	// Steering loop: keep `nodes` tasks in flight; the Thinker processes
	// each result serially (deserialize + surrogate bookkeeping) before
	// dispatching the next simulation — the serial bottleneck of §5.6.
	total := nodes * 3 * cfg.Repeats
	inFlight := 0
	next := 0
	for inFlight < nodes && next < total {
		if err := submit(next); err != nil {
			return 0, 0, err
		}
		next++
		inFlight++
	}

	var processTotal time.Duration
	processed := 0
	surrogate := molsim.NewSurrogate()
	var seenMols []molsim.Molecule
	var seenIPs []float64
	for processed < total {
		res := <-server.Results()
		if res.Err != nil {
			return 0, 0, res.Err
		}
		start := time.Now()
		// Thinker-side result handling. With proxies the heavy blob stays
		// in the store (downstream training/inference tasks resolve it);
		// the Thinker only does surrogate bookkeeping. Without proxies the
		// full result arrived by value and must be handled here.
		if data, byValue := res.Value.([]byte); byValue {
			var sum byte
			for _, b := range data {
				sum ^= b
			}
			_ = sum
		}
		idx := res.Tag.(int)
		mol := candidates[idx%len(candidates)]
		seenMols = append(seenMols, mol)
		seenIPs = append(seenIPs, molsim.TrueIP(mol))
		if len(seenMols)%64 == 0 { // periodic surrogate refresh
			surrogate.Train(seenMols, seenIPs)
		}
		processTotal += time.Since(start)
		processed++
		inFlight--
		if next < total {
			if err := submit(next); err != nil {
				return 0, 0, err
			}
			next++
			inFlight++
		}
	}

	util := engine.Utilization()
	return util, processTotal / time.Duration(processed), nil
}
