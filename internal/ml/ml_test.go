package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNumParamsScalesWithBlocks(t *testing.T) {
	m1 := NewMLP(784, 128, 1, 10, 1)
	m5 := NewMLP(784, 128, 5, 10, 1)
	if m5.NumParams() <= m1.NumParams() {
		t.Fatalf("5-block model (%d params) not larger than 1-block (%d)", m5.NumParams(), m1.NumParams())
	}
	// Each extra block adds 128*128+128 parameters.
	expected := m1.NumParams() + 4*(128*128+128)
	if m5.NumParams() != expected {
		t.Fatalf("NumParams = %d, want %d", m5.NumParams(), expected)
	}
}

func TestForwardShape(t *testing.T) {
	m := NewMLP(16, 8, 2, 4, 1)
	out := m.Forward(make([]float32, 16))
	if len(out) != 4 {
		t.Fatalf("Forward returned %d logits, want 4", len(out))
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	m := NewMLP(16, 8, 2, 4, 7)
	blob := m.SerializeWeights()
	if len(blob) != m.NumParams()*4 {
		t.Fatalf("blob is %d bytes, want %d", len(blob), m.NumParams()*4)
	}
	m2 := NewMLP(16, 8, 2, 4, 99) // different init
	if err := m2.LoadWeights(blob); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	x := make([]float32, 16)
	for i := range x {
		x[i] = float32(i) * 0.1
	}
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs diverge after weight transfer: %v vs %v", a[i], b[i])
		}
	}
}

func TestLoadWeightsWrongSize(t *testing.T) {
	m := NewMLP(4, 4, 1, 2, 1)
	if err := m.LoadWeights(make([]byte, 10)); err == nil {
		t.Fatal("LoadWeights accepted wrong-size blob")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	m := NewMLP(8, 16, 1, 2, 3)
	rng := rand.New(rand.NewSource(5))
	// Simple separable task: class = sign of first feature.
	sample := func() ([]float32, int) {
		x := make([]float32, 8)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		label := 0
		if x[0] > 0 {
			label = 1
		}
		return x, label
	}
	var first, last float32
	for step := 0; step < 600; step++ {
		x, y := sample()
		loss := m.TrainStep(x, y, 0.05)
		if step < 50 {
			first += loss
		}
		if step >= 550 {
			last += loss
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: early=%v late=%v", first/50, last/50)
	}
}

func TestTrainingImprovesAccuracyOnSyntheticFashion(t *testing.T) {
	train := SyntheticFashion(300, 1)
	test := SyntheticFashion(100, 2)
	m := NewMLP(28*28, 32, 1, 10, 4)
	before := m.Evaluate(test)
	for epoch := 0; epoch < 3; epoch++ {
		for _, s := range train {
			m.TrainStep(s.X, s.Label, 0.01)
		}
	}
	after := m.Evaluate(test)
	if after <= before+0.1 {
		t.Fatalf("accuracy did not improve meaningfully: %v -> %v", before, after)
	}
}

func TestAverageWeights(t *testing.T) {
	a := NewMLP(4, 4, 1, 2, 1).SerializeWeights()
	b := NewMLP(4, 4, 1, 2, 2).SerializeWeights()
	avg, err := AverageWeights([][]byte{a, b})
	if err != nil {
		t.Fatalf("AverageWeights: %v", err)
	}
	if len(avg) != len(a) {
		t.Fatalf("avg is %d bytes, want %d", len(avg), len(a))
	}
	// Averaging a power-of-two count of identical blobs is bit-exact.
	same, err := AverageWeights([][]byte{a, a, a, a})
	if err != nil {
		t.Fatalf("AverageWeights: %v", err)
	}
	for i := range a {
		if same[i] != a[i] {
			t.Fatal("averaging identical weights changed them")
		}
	}
}

func TestAverageWeightsMismatch(t *testing.T) {
	if _, err := AverageWeights([][]byte{make([]byte, 8), make([]byte, 12)}); err == nil {
		t.Fatal("AverageWeights accepted mismatched blobs")
	}
	if _, err := AverageWeights(nil); err == nil {
		t.Fatal("AverageWeights accepted empty input")
	}
}

func TestSyntheticFashionDeterministic(t *testing.T) {
	a := SyntheticFashion(10, 42)
	b := SyntheticFashion(10, 42)
	for i := range a {
		if a[i].Label != b[i].Label || a[i].X[0] != b[i].X[0] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestRidgeLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, dim := 200, 4
	features := make([][]float64, n)
	targets := make([]float64, n)
	for i := range features {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		features[i] = x
		targets[i] = 2*x[0] - x[1] + 0.5*x[2] + 3
	}
	r := NewRidge(dim, 1e-6)
	r.Fit(features, targets, 0.1, 300)

	var mse float64
	for i, x := range features {
		d := r.Predict(x) - targets[i]
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.05 {
		t.Fatalf("ridge MSE = %v, want < 0.05", mse)
	}
}

func TestPropertyWeightSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := NewMLP(4, 4, 1, 2, seed)
		blob := m.SerializeWeights()
		m2 := NewMLP(4, 4, 1, 2, seed+1)
		if err := m2.LoadWeights(blob); err != nil {
			return false
		}
		blob2 := m2.SerializeWeights()
		if len(blob) != len(blob2) {
			return false
		}
		for i := range blob {
			if blob[i] != blob2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	p := softmax([]float32{1000, 1000, 1000})
	for _, v := range p {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
}
