// Package ml is a small neural-network library sufficient for the paper's
// machine-learning workloads: the federated-learning CNN of §5.5 (stand-in:
// an MLP whose depth scales in "hidden blocks" exactly as the paper scales
// model size), the surrogate models of §5.6, and the defect segmentation
// model of §5.4. It implements dense layers, ReLU, softmax cross-entropy,
// SGD training, and weight (de)serialization — enough that model transfer
// sizes and training loops are real.
package ml

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer with weights [out][in] and biases [out].
type Dense struct {
	In, Out int
	W       []float32 // row-major [Out][In]
	B       []float32
}

// NewDense returns a He-initialized dense layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, W: make([]float32, in*out), B: make([]float32, out)}
	std := float32(math.Sqrt(2 / float64(in)))
	for i := range d.W {
		d.W[i] = float32(rng.NormFloat64()) * std
	}
	return d
}

// Forward computes y = Wx + b.
func (d *Dense) Forward(x []float32) []float32 {
	y := make([]float32, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
	return y
}

// Model is an MLP: input -> hidden blocks (Dense+ReLU) -> output Dense.
type Model struct {
	// Layers in order; ReLU is applied after every layer except the last.
	Layers []*Dense
}

// NewMLP builds input->hidden^blocks->classes. Increasing blocks grows the
// parameter count linearly — the x-axis of the paper's Figure 10.
func NewMLP(inputDim, hiddenDim, blocks, classes int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{}
	prev := inputDim
	for b := 0; b < blocks; b++ {
		m.Layers = append(m.Layers, NewDense(prev, hiddenDim, rng))
		prev = hiddenDim
	}
	m.Layers = append(m.Layers, NewDense(prev, classes, rng))
	return m
}

// NumParams returns the total parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// Forward returns the logits for input x.
func (m *Model) Forward(x []float32) []float32 {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		if i < len(m.Layers)-1 {
			relu(h)
		}
	}
	return h
}

func relu(v []float32) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Predict returns the argmax class for input x.
func (m *Model) Predict(x []float32) int {
	logits := m.Forward(x)
	best, bestV := 0, logits[0]
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func softmax(logits []float32) []float32 {
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	exp := make([]float32, len(logits))
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(float64(v - maxv)))
		exp[i] = e
		sum += e
	}
	for i := range exp {
		exp[i] /= sum
	}
	return exp
}

// TrainStep performs one SGD step on (x, label) with softmax cross-entropy,
// returning the loss. Backprop is exact for the MLP structure.
func (m *Model) TrainStep(x []float32, label int, lr float32) float32 {
	// Forward with cached activations.
	acts := make([][]float32, len(m.Layers)+1)
	acts[0] = x
	for i, l := range m.Layers {
		h := l.Forward(acts[i])
		if i < len(m.Layers)-1 {
			relu(h)
		}
		acts[i+1] = h
	}
	probs := softmax(acts[len(acts)-1])
	loss := -float32(math.Log(float64(probs[label]) + 1e-12))

	// Backward: dL/dlogits = probs - onehot.
	grad := make([]float32, len(probs))
	copy(grad, probs)
	grad[label] -= 1

	for li := len(m.Layers) - 1; li >= 0; li-- {
		l := m.Layers[li]
		in := acts[li]
		var nextGrad []float32
		if li > 0 {
			nextGrad = make([]float32, l.In)
		}
		for o := 0; o < l.Out; o++ {
			g := grad[o]
			row := l.W[o*l.In : (o+1)*l.In]
			if nextGrad != nil {
				for i := range row {
					nextGrad[i] += row[i] * g
				}
			}
			for i := range row {
				row[i] -= lr * g * in[i]
			}
			l.B[o] -= lr * g
		}
		if li > 0 {
			// ReLU derivative on the (post-activation) input of this layer.
			for i, v := range acts[li] {
				if v <= 0 {
					nextGrad[i] = 0
				}
			}
			grad = nextGrad
		}
	}
	return loss
}

// --- weight (de)serialization -----------------------------------------------

// SerializeWeights flattens all parameters into a byte buffer (little-endian
// float32) — the payload whose size Figure 10 sweeps.
func (m *Model) SerializeWeights() []byte {
	out := make([]byte, 0, m.NumParams()*4)
	var b [4]byte
	for _, l := range m.Layers {
		for _, w := range l.W {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(w))
			out = append(out, b[:]...)
		}
		for _, w := range l.B {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(w))
			out = append(out, b[:]...)
		}
	}
	return out
}

// LoadWeights copies serialized parameters into the model, which must have
// the same architecture.
func (m *Model) LoadWeights(data []byte) error {
	if len(data) != m.NumParams()*4 {
		return fmt.Errorf("ml: weight blob is %d bytes, model needs %d", len(data), m.NumParams()*4)
	}
	off := 0
	next := func() float32 {
		v := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		return v
	}
	for _, l := range m.Layers {
		for i := range l.W {
			l.W[i] = next()
		}
		for i := range l.B {
			l.B[i] = next()
		}
	}
	return nil
}

// AverageWeights returns the element-wise mean of several serialized weight
// blobs — federated averaging (McMahan et al., paper §5.5).
func AverageWeights(blobs [][]byte) ([]byte, error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("ml: no weights to average")
	}
	n := len(blobs[0])
	for i, b := range blobs {
		if len(b) != n {
			return nil, fmt.Errorf("ml: weight blob %d has %d bytes, want %d", i, len(b), n)
		}
	}
	if n%4 != 0 {
		return nil, fmt.Errorf("ml: weight blob length %d not a multiple of 4", n)
	}
	out := make([]byte, n)
	inv := float32(1) / float32(len(blobs))
	for off := 0; off < n; off += 4 {
		var sum float32
		for _, b := range blobs {
			sum += math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
		}
		binary.LittleEndian.PutUint32(out[off:], math.Float32bits(sum*inv))
	}
	return out, nil
}

// --- synthetic dataset -------------------------------------------------------

// Sample is one labelled example.
type Sample struct {
	X     []float32
	Label int
}

// SyntheticFashion generates a Fashion-MNIST-like dataset: 28x28 inputs
// drawn from class-conditional patterns plus noise, 10 classes. It is
// learnable by a small MLP, which is all the FL experiment requires.
func SyntheticFashion(n int, seed int64) []Sample {
	const dim = 28 * 28
	const classes = 10
	rng := rand.New(rand.NewSource(seed))

	// Fixed per-class prototype patterns, independent of the sampling seed
	// so every shard (and every device in federated runs) draws from the
	// same underlying distribution.
	protos := make([][]float32, classes)
	prng := rand.New(rand.NewSource(0x5f5f))
	for c := range protos {
		p := make([]float32, dim)
		for i := range p {
			p[i] = float32(prng.NormFloat64())
		}
		protos[c] = p
	}

	out := make([]Sample, n)
	for i := range out {
		c := rng.Intn(classes)
		x := make([]float32, dim)
		for j := range x {
			x[j] = protos[c][j] + 0.5*float32(rng.NormFloat64())
		}
		out[i] = Sample{X: x, Label: c}
	}
	return out
}

// Evaluate returns classification accuracy on samples.
func (m *Model) Evaluate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// --- ridge regression (molecular design surrogate) ---------------------------

// Ridge is a linear model with L2 regularization trained by gradient
// descent, serving as the paper's surrogate IP predictor (§5.6).
type Ridge struct {
	W      []float64
	Bias   float64
	Lambda float64
}

// NewRidge returns an untrained model for dim features.
func NewRidge(dim int, lambda float64) *Ridge {
	return &Ridge{W: make([]float64, dim), Lambda: lambda}
}

// Fit runs epochs of full-batch gradient descent on (features, targets).
func (r *Ridge) Fit(features [][]float64, targets []float64, lr float64, epochs int) {
	n := len(features)
	if n == 0 {
		return
	}
	for e := 0; e < epochs; e++ {
		gradW := make([]float64, len(r.W))
		var gradB float64
		for i, x := range features {
			pred := r.Predict(x)
			diff := pred - targets[i]
			for j, xj := range x {
				gradW[j] += diff * xj
			}
			gradB += diff
		}
		for j := range r.W {
			r.W[j] -= lr * (gradW[j]/float64(n) + r.Lambda*r.W[j])
		}
		r.Bias -= lr * gradB / float64(n)
	}
}

// Predict returns the model output for features x.
func (r *Ridge) Predict(x []float64) float64 {
	sum := r.Bias
	for j, xj := range x {
		if j < len(r.W) {
			sum += r.W[j] * xj
		}
	}
	return sum
}
