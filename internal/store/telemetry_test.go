package store_test

import (
	"context"
	"testing"

	"proxystore/internal/proxy"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
)

// TestTelemetryBacksMetrics checks the Metrics API and the registry are
// two views of the same counters, and that the op-latency histograms see
// the connector round trips.
func TestTelemetryBacksMetrics(t *testing.T) {
	s := newTestStore(t, "telemetry")
	ctx := context.Background()

	key, err := store.Put(ctx, s, []byte("abc"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 0; i < 2; i++ { // miss then hit
		if _, err := s.GetObject(ctx, key); err != nil {
			t.Fatalf("GetObject: %v", err)
		}
	}

	m := s.Metrics()
	snap := s.Telemetry().Snapshot()
	if got := snap.Counters["store.puts"]; got != m.Puts || got != 1 {
		t.Fatalf("store.puts = %d, Metrics.Puts = %d, want both 1", got, m.Puts)
	}
	if got := snap.Counters["store.gets"]; got != m.Gets || got != 1 {
		t.Fatalf("store.gets = %d, Metrics.Gets = %d, want both 1", got, m.Gets)
	}
	if got := snap.Counters["store.cache.hits"]; got != m.CacheHits || got != 1 {
		t.Fatalf("store.cache.hits = %d, Metrics.CacheHits = %d, want both 1", got, m.CacheHits)
	}
	if got := snap.Counters["store.cache.hit_bytes"]; got == 0 || got != m.CacheHitBytes {
		t.Fatalf("store.cache.hit_bytes = %d, Metrics.CacheHitBytes = %d, want equal and > 0", got, m.CacheHitBytes)
	}
	if snap.Histograms["store.put.ns"].Count != 1 {
		t.Fatalf("store.put.ns count = %d, want 1", snap.Histograms["store.put.ns"].Count)
	}
	if snap.Histograms["store.get.ns"].Count != 1 {
		t.Fatalf("store.get.ns count = %d, want 1 (cache hit must not count)", snap.Histograms["store.get.ns"].Count)
	}
}

// TestWithTelemetry merges a store's metrics into a caller-owned registry.
func TestWithTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestStore(t, "shared-reg", store.WithTelemetry(reg))
	if s.Telemetry() != reg {
		t.Fatal("store did not adopt the supplied registry")
	}
	if _, err := store.Put(context.Background(), s, []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if reg.Snapshot().Counters["store.puts"] != 1 {
		t.Fatal("supplied registry missed the put")
	}
}

// TestWithProxyMetrics times resolutions of opted-in proxies into the
// resolving store's registry — and leaves untimed proxies untimed.
func TestWithProxyMetrics(t *testing.T) {
	s := newTestStore(t, "proxy-metrics")
	ctx := context.Background()

	plain, err := store.NewProxy(ctx, s, []byte("untimed"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	if _, err := plain.Value(ctx); err != nil {
		t.Fatalf("Value: %v", err)
	}
	if n := s.Telemetry().Histogram("store.proxy_resolve.ns").Snapshot().Count; n != 0 {
		t.Fatalf("untimed proxy recorded %d resolves", n)
	}

	timed, err := store.NewProxy(ctx, s, []byte("timed"), store.WithProxyMetrics())
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	// Round-trip through the wire form: the flag must survive factory
	// serialization so consumer-process resolutions are timed too.
	data, err := timed.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var revived proxy.Proxy[[]byte]
	if err := revived.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if _, err := revived.Value(ctx); err != nil {
		t.Fatalf("Value: %v", err)
	}
	if n := s.Telemetry().Histogram("store.proxy_resolve.ns").Snapshot().Count; n != 1 {
		t.Fatalf("store.proxy_resolve.ns count = %d, want 1", n)
	}
}
