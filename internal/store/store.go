// Package store implements the Store: the high-level interface applications
// use to interact with ProxyStore (paper §3.5).
//
// A Store wraps a Connector (dependency injection), adds (de)serialization
// and post-deserialization caching, and mints proxies whose factories carry
// everything needed — store name, connector config, object key, serializer
// id, evict flag — to resolve the target in any process. Stores register
// globally by name so that initialization happens once per process, caches
// are shared, and stateful connections are reused; a proxy resolved on a
// process that has never seen the store reconstructs and registers it.
package store

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"proxystore/internal/cache"
	"proxystore/internal/connector"
	"proxystore/internal/proxy"
	"proxystore/internal/serial"
	"proxystore/internal/telemetry"
)

// Option configures a Store at construction.
type Option func(*Store)

// WithSerializer sets the store's serializer (default: gob).
func WithSerializer(s serial.Serializer) Option {
	return func(st *Store) { st.ser = s }
}

// DefaultCacheBytes is the default byte budget of the deserialized-object
// cache.
const DefaultCacheBytes = 64 << 20

// cacheEntryOverhead approximates the fixed per-entry bookkeeping cost
// (map bucket, list element, entry struct, key string) charged on top of
// the payload bytes, so tiny-object floods cannot exceed the byte budget
// severalfold in real memory.
const cacheEntryOverhead = 256

// WithCacheBytes sets the deserialized-object cache budget in bytes; cached
// objects are charged their encoded size. Zero disables caching. The byte
// budget replaces the old entry-count capacity so one huge object cannot
// pin many huge objects' worth of memory.
func WithCacheBytes(n int64) Option {
	return func(st *Store) { st.cacheBytes = n }
}

// WithCacheSize sets the cache capacity as an approximate object count,
// assuming the historical ~4 MiB-per-object budget. Zero disables caching.
//
// Deprecated: the cache is byte-cost now; use WithCacheBytes.
func WithCacheSize(n int) Option {
	return func(st *Store) { st.cacheBytes = int64(n) * (4 << 20) }
}

// WithTelemetry backs the store's counters with the given registry
// instead of a fresh private one, merging its metrics into a snapshot the
// caller already aggregates (e.g. the process default registry exposed on
// a -metrics-addr endpoint).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(st *Store) { st.reg = reg }
}

// Metrics counts store operations; all fields are cumulative.
//
// Metrics is a stable snapshot view over the store's telemetry registry
// (see Telemetry), which additionally carries the per-connector operation
// latency histograms store.put.ns / store.get.ns.
type Metrics struct {
	Puts       uint64
	Gets       uint64
	Evicts     uint64
	BytesPut   uint64
	BytesGot   uint64
	CacheHits  uint64
	Proxies    uint64
	Serialized uint64
	// CacheHitBytes is the charged byte cost served from the
	// deserialized-object cache instead of the connector.
	CacheHitBytes uint64
	// CacheEvictions counts entries the cache's byte budget pushed out.
	CacheEvictions uint64
}

// storeMetrics caches the store's registry handles so hot paths never
// take the registry lock.
type storeMetrics struct {
	puts, gets, evicts *telemetry.Counter
	bytesPut, bytesGot *telemetry.Counter
	cacheHits, proxies *telemetry.Counter
	serialized         *telemetry.Counter
	cacheHitBytes      *telemetry.Counter
	putNs, getNs       *telemetry.Histogram
	resolveNs          *telemetry.Histogram
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	return storeMetrics{
		puts:          reg.Counter("store.puts"),
		gets:          reg.Counter("store.gets"),
		evicts:        reg.Counter("store.evicts"),
		bytesPut:      reg.Counter("store.bytes_put"),
		bytesGot:      reg.Counter("store.bytes_got"),
		cacheHits:     reg.Counter("store.cache.hits"),
		proxies:       reg.Counter("store.proxies"),
		serialized:    reg.Counter("store.serialized"),
		cacheHitBytes: reg.Counter("store.cache.hit_bytes"),
		putNs:         reg.Histogram("store.put.ns"),
		getNs:         reg.Histogram("store.get.ns"),
		resolveNs:     reg.Histogram("store.proxy_resolve.ns"),
	}
}

// Store mediates object storage through a Connector.
//
// A Store is safe for concurrent use.
type Store struct {
	name       string
	conn       connector.Connector
	ser        serial.Serializer
	cacheBytes int64
	cache      *cache.LRU
	reg        *telemetry.Registry
	m          storeMetrics
}

var (
	regMu    sync.Mutex
	registry = make(map[string]*Store)
)

// New creates a store named name over conn and registers it globally.
// Creating a second store with a registered name is an error; use Lookup
// or GetOrInit for idempotent access.
func New(name string, conn connector.Connector, opts ...Option) (*Store, error) {
	if name == "" {
		return nil, fmt.Errorf("store: name must be non-empty")
	}
	if conn == nil {
		return nil, fmt.Errorf("store: nil connector")
	}
	s := &Store{name: name, conn: conn, ser: serial.Default(), cacheBytes: DefaultCacheBytes}
	for _, o := range opts {
		o(s)
	}
	s.cache = cache.NewCost(s.cacheBytes)
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.m = newStoreMetrics(s.reg)

	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[name]; exists {
		return nil, fmt.Errorf("store: %q already registered", name)
	}
	registry[name] = s
	return s, nil
}

// Lookup returns the registered store with the given name.
func Lookup(name string) (*Store, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// GetOrInit returns the registered store named name, or constructs one from
// the connector config and serializer id and registers it. This is the
// mechanism proxies use to materialize stores on consumer processes.
func GetOrInit(name string, cfg connector.Config, serializerID string) (*Store, error) {
	regMu.Lock()
	if s, ok := registry[name]; ok {
		regMu.Unlock()
		return s, nil
	}
	regMu.Unlock()

	conn, err := connector.FromConfig(cfg)
	if err != nil {
		return nil, fmt.Errorf("store: reconstructing connector for %q: %w", name, err)
	}
	ser, err := serial.Lookup(serializerID)
	if err != nil {
		conn.Close()
		return nil, err
	}

	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := registry[name]; ok { // lost the race; discard ours
		go conn.Close()
		return s, nil
	}
	s := &Store{name: name, conn: conn, ser: ser, cacheBytes: DefaultCacheBytes}
	s.cache = cache.NewCost(s.cacheBytes)
	s.reg = telemetry.NewRegistry()
	s.m = newStoreMetrics(s.reg)
	registry[name] = s
	return s, nil
}

// Unregister removes a store from the global registry and closes its
// connector. Primarily for tests and orderly shutdown.
func Unregister(name string) error {
	regMu.Lock()
	s, ok := registry[name]
	delete(registry, name)
	regMu.Unlock()
	if !ok {
		return nil
	}
	return s.conn.Close()
}

// ResetRegistry unregisters every store. For tests.
func ResetRegistry() {
	regMu.Lock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	regMu.Unlock()
	for _, n := range names {
		Unregister(n)
	}
}

// Name returns the store's registered name.
func (s *Store) Name() string { return s.name }

// Connector returns the store's underlying connector.
func (s *Store) Connector() connector.Connector { return s.conn }

// Serializer returns the store's serializer.
func (s *Store) Serializer() serial.Serializer { return s.ser }

// Metrics returns a snapshot of operation counters.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Puts:           s.m.puts.Value(),
		Gets:           s.m.gets.Value(),
		Evicts:         s.m.evicts.Value(),
		BytesPut:       s.m.bytesPut.Value(),
		BytesGot:       s.m.bytesGot.Value(),
		CacheHits:      s.m.cacheHits.Value(),
		Proxies:        s.m.proxies.Value(),
		Serialized:     s.m.serialized.Value(),
		CacheHitBytes:  s.cache.HitBytes(),
		CacheEvictions: s.cache.Evictions(),
	}
}

// Telemetry returns the store's metric registry: the Metrics counters
// under store.* names plus the connector op latency histograms
// store.put.ns / store.get.ns and, for proxies minted with
// WithProxyMetrics, store.proxy_resolve.ns.
func (s *Store) Telemetry() *telemetry.Registry { return s.reg }

// PutOption constrains a single put.
type PutOption func(*putOptions)

type putOptions struct {
	tags []string
}

// WithTags constrains the object's placement: the connector must route it
// to a backend carrying every given tag (e.g. "persistent", "fast" — the
// multi connector's policy tags). Putting with tags through a connector
// that cannot honor them (no connector.TaggedPutter) is an error, never a
// silent drop of the constraint.
func WithTags(tags ...string) PutOption {
	return func(o *putOptions) { o.tags = append(o.tags, tags...) }
}

// PutObject serializes v and stores it through the connector. When both the
// serializer and the connector can stream, serialization is piped straight
// into the connector's streaming path so the encoded form is never
// materialized; otherwise the classic blob path is used. Placement
// constraints (WithTags) route through the connector's tagged put surface.
func (s *Store) PutObject(ctx context.Context, v any, opts ...PutOption) (connector.Key, error) {
	start := time.Now()
	var o putOptions
	for _, opt := range opts {
		opt(&o)
	}
	enc, encOK := s.ser.(serial.StreamEncoder)
	streamPut := func(r io.Reader) (connector.Key, error) { return connector.PutFrom(ctx, s.conn, r) }
	blobPut := func(data []byte) (connector.Key, error) { return s.conn.Put(ctx, data) }
	_, useStream := s.conn.(connector.StreamPutter)
	if len(o.tags) > 0 {
		tsp, tspOK := s.conn.(connector.TaggedStreamPutter)
		tp, tpOK := s.conn.(connector.TaggedPutter)
		switch {
		case tspOK:
			useStream = true
			streamPut = func(r io.Reader) (connector.Key, error) { return tsp.PutFromTagged(ctx, r, o.tags) }
			// Even a non-streaming serializer keeps its tags: the encoded
			// blob rides the tagged streaming path through a reader.
			blobPut = func(data []byte) (connector.Key, error) {
				return tsp.PutFromTagged(ctx, bytes.NewReader(data), o.tags)
			}
		case tpOK:
			useStream = false // no tagged streaming: encode, then tagged blob put
			blobPut = func(data []byte) (connector.Key, error) { return tp.PutTagged(ctx, data, o.tags) }
		default:
			return connector.Key{}, fmt.Errorf("store %q: connector %q does not support placement tags %v",
				s.name, s.conn.Type(), o.tags)
		}
	}

	if useStream && encOK {
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(enc.EncodeTo(pw, v))
		}()
		key, err := streamPut(pr)
		pr.Close() // unblock the encoder if the connector bailed early
		if err != nil {
			return connector.Key{}, fmt.Errorf("store %q: stream put: %w", s.name, err)
		}
		s.m.serialized.Add(1)
		s.m.puts.Add(1)
		s.m.bytesPut.Add(uint64(key.Size))
		s.m.putNs.Since(start)
		return key, nil
	}

	data, err := s.ser.Encode(v)
	if err != nil {
		return connector.Key{}, fmt.Errorf("store %q: serializing: %w", s.name, err)
	}
	s.m.serialized.Add(1)
	key, err := blobPut(data)
	if err != nil {
		return connector.Key{}, fmt.Errorf("store %q: put: %w", s.name, err)
	}
	s.m.puts.Add(1)
	s.m.bytesPut.Add(uint64(len(data)))
	s.m.putNs.Since(start)
	return key, nil
}

// GetObject retrieves and deserializes the object for key, consulting the
// deserialized-object cache first. When both the serializer and the
// connector can stream, the object is decoded straight off the connector's
// streaming path through a pipe; otherwise the blob path is used.
func (s *Store) GetObject(ctx context.Context, key connector.Key) (any, error) {
	if v, cost, ok := s.cache.GetCost(key.ID); ok {
		s.m.cacheHits.Add(1)
		s.m.cacheHitBytes.Add(uint64(cost))
		return v, nil
	}
	start := time.Now()
	dec, decOK := s.ser.(serial.StreamDecoder)
	sg, connOK := s.conn.(connector.StreamGetter)
	if connOK && decOK {
		return s.getStreamed(ctx, key, sg, dec)
	}
	data, err := s.conn.Get(ctx, key)
	if err != nil {
		return nil, fmt.Errorf("store %q: get %s: %w", s.name, key, err)
	}
	s.m.gets.Add(1)
	s.m.bytesGot.Add(uint64(len(data)))
	s.m.getNs.Since(start)
	v, err := s.ser.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("store %q: deserializing %s: %w", s.name, key, err)
	}
	s.cache.SetCost(key.ID, v, int64(len(data))+cacheEntryOverhead)
	return v, nil
}

// getStreamed decodes the object off the connector's streaming path. The
// transfer error takes priority over the decode error (a mid-stream failure
// surfaces to the decoder as a truncated input), except for the pipe-closed
// error we cause ourselves when the decoder stops early.
func (s *Store) getStreamed(ctx context.Context, key connector.Key, sg connector.StreamGetter, dec serial.StreamDecoder) (any, error) {
	start := time.Now()
	pr, pw := io.Pipe()
	getErr := make(chan error, 1)
	go func() {
		err := sg.GetTo(ctx, key, pw)
		pw.CloseWithError(err)
		getErr <- err
	}()
	cr := &countingReader{r: pr}
	v, decErr := dec.DecodeFrom(cr)
	if decErr == nil {
		// The decoder may not have consumed trailing buffered bytes; drain
		// so the transfer goroutine can finish cleanly.
		io.Copy(io.Discard, cr)
	}
	pr.Close()
	gerr := <-getErr
	if gerr != nil && !errors.Is(gerr, io.ErrClosedPipe) {
		return nil, fmt.Errorf("store %q: get %s: %w", s.name, key, gerr)
	}
	if decErr != nil {
		return nil, fmt.Errorf("store %q: deserializing %s: %w", s.name, key, decErr)
	}
	s.m.gets.Add(1)
	s.m.bytesGot.Add(uint64(cr.n))
	s.m.getNs.Since(start)
	s.cache.SetCost(key.ID, v, cr.n+cacheEntryOverhead)
	return v, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// PutReader streams raw bytes from r into the connector, bypassing the
// serializer. It is the byte-stream half of the data plane: peak memory is
// O(chunk) when the connector streams natively.
func (s *Store) PutReader(ctx context.Context, r io.Reader) (connector.Key, error) {
	start := time.Now()
	key, err := connector.PutFrom(ctx, s.conn, r)
	if err != nil {
		return connector.Key{}, fmt.Errorf("store %q: stream put: %w", s.name, err)
	}
	s.m.puts.Add(1)
	s.m.bytesPut.Add(uint64(key.Size))
	s.m.putNs.Since(start)
	return key, nil
}

// GetReader streams the raw stored bytes of key, bypassing the serializer
// and the deserialized-object cache. The caller must Close the reader; a
// transfer failure (including ErrNotFound) surfaces as a read error.
func (s *Store) GetReader(ctx context.Context, key connector.Key) (io.ReadCloser, error) {
	start := time.Now()
	pr, pw := io.Pipe()
	go func() {
		err := connector.GetTo(ctx, s.conn, key, pw)
		if err == nil {
			s.m.gets.Add(1)
			s.m.bytesGot.Add(uint64(key.Size))
			s.m.getNs.Since(start)
		}
		pw.CloseWithError(err)
	}()
	return pr, nil
}

// Exists reports whether key's object is currently stored.
func (s *Store) Exists(ctx context.Context, key connector.Key) (bool, error) {
	return s.conn.Exists(ctx, key)
}

// Evict removes key's object from the mediated channel and the local cache.
func (s *Store) Evict(ctx context.Context, key connector.Key) error {
	s.cache.Delete(key.ID)
	if err := s.conn.Evict(ctx, key); err != nil {
		return fmt.Errorf("store %q: evict %s: %w", s.name, key, err)
	}
	s.m.evicts.Add(1)
	return nil
}

// Close unregisters the store and closes its connector.
func (s *Store) Close() error {
	regMu.Lock()
	if registry[s.name] == s {
		delete(registry, s.name)
	}
	regMu.Unlock()
	return s.conn.Close()
}

// --- Typed helpers -------------------------------------------------------

// Put serializes and stores a typed value.
func Put[T any](ctx context.Context, s *Store, v T) (connector.Key, error) {
	return s.PutObject(ctx, v)
}

// Get retrieves a typed value.
func Get[T any](ctx context.Context, s *Store, key connector.Key) (T, error) {
	var zero T
	v, err := s.GetObject(ctx, key)
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("store %q: object %s has type %T, want %T", s.name, key, v, zero)
	}
	return t, nil
}

// ProxyOption configures proxy creation.
type ProxyOption func(*proxyOptions)

type proxyOptions struct {
	evict   bool
	metrics bool
	putTags []string
}

// WithEvict makes the proxy evict the object from the mediated channel when
// first resolved — the right choice for write-once/read-once intermediate
// values (paper §3.5).
func WithEvict() ProxyOption {
	return func(o *proxyOptions) { o.evict = true }
}

// WithProxyMetrics marks the minted proxy for resolve timing: each
// resolution records its wall-clock duration into the resolving store's
// store.proxy_resolve.ns histogram (Telemetry). The flag travels in the
// factory state, so resolutions on consumer processes are timed too. Off
// by default — untimed proxies pay nothing.
func WithProxyMetrics() ProxyOption {
	return func(o *proxyOptions) { o.metrics = true }
}

// WithPutTags constrains where NewProxy places the target object, exactly
// like PutObject's WithTags: the connector must route it to a backend
// carrying every tag. The tags affect only the put; the minted factory
// carries the resulting key like any other.
func WithPutTags(tags ...string) ProxyOption {
	return func(o *proxyOptions) { o.putTags = append(o.putTags, tags...) }
}

// NewProxy stores v and returns a lazy proxy whose factory can resolve it
// in any process. This is the paper's Store.proxy.
func NewProxy[T any](ctx context.Context, s *Store, v T, opts ...ProxyOption) (*proxy.Proxy[T], error) {
	var o proxyOptions
	for _, opt := range opts {
		opt(&o)
	}
	var putOpts []PutOption
	if len(o.putTags) > 0 {
		putOpts = append(putOpts, WithTags(o.putTags...))
	}
	key, err := s.PutObject(ctx, v, putOpts...)
	if err != nil {
		return nil, err
	}
	return ProxyFromKey[T](s, key, opts...), nil
}

// ProxyFromKey builds a proxy for an object already stored under key.
func ProxyFromKey[T any](s *Store, key connector.Key, opts ...ProxyOption) *proxy.Proxy[T] {
	var o proxyOptions
	for _, opt := range opts {
		opt(&o)
	}
	s.m.proxies.Add(1)
	f := &storeFactory{state: factoryState{
		StoreName:  s.name,
		Connector:  s.conn.Config(),
		Key:        key,
		Evict:      o.evict,
		Serializer: s.ser.ID(),
		Metrics:    o.metrics,
	}}
	return proxy.NewFromAny[T](f)
}

// PutBatch serializes values and stores them with a single batched backend
// operation when the connector supports it (e.g. one Globus transfer task
// or one redis MSET for many objects).
func (s *Store) PutBatch(ctx context.Context, values []any) ([]connector.Key, error) {
	blobs := make([][]byte, len(values))
	for i, v := range values {
		data, err := s.ser.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("store %q: serializing batch item %d: %w", s.name, i, err)
		}
		blobs[i] = data
	}
	s.m.serialized.Add(uint64(len(values)))

	start := time.Now()
	keys, err := connector.Stream(s.conn).PutBatch(ctx, blobs)
	if err != nil {
		return nil, fmt.Errorf("store %q: batch put: %w", s.name, err)
	}
	for _, b := range blobs {
		s.m.bytesPut.Add(uint64(len(b)))
	}
	s.m.puts.Add(uint64(len(blobs)))
	s.m.putNs.Since(start)
	return keys, nil
}

// GetBatch retrieves and deserializes many objects, serving what it can
// from the deserialized-object cache and fetching the rest with a single
// batched backend operation when the connector supports it (e.g. one redis
// MGET). Results are positionally aligned with keys.
func (s *Store) GetBatch(ctx context.Context, keys []connector.Key) ([]any, error) {
	out := make([]any, len(keys))
	var missing []connector.Key
	var missingIdx []int
	for i, k := range keys {
		if v, cost, ok := s.cache.GetCost(k.ID); ok {
			s.m.cacheHits.Add(1)
			s.m.cacheHitBytes.Add(uint64(cost))
			out[i] = v
			continue
		}
		missing = append(missing, k)
		missingIdx = append(missingIdx, i)
	}
	if len(missing) == 0 {
		return out, nil
	}
	start := time.Now()
	blobs, err := connector.Stream(s.conn).GetBatch(ctx, missing)
	if err != nil {
		return nil, fmt.Errorf("store %q: batch get: %w", s.name, err)
	}
	s.m.getNs.Since(start)
	for j, data := range blobs {
		v, err := s.ser.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("store %q: deserializing %s: %w", s.name, missing[j], err)
		}
		s.m.gets.Add(1)
		s.m.bytesGot.Add(uint64(len(data)))
		s.cache.SetCost(missing[j].ID, v, int64(len(data))+cacheEntryOverhead)
		out[missingIdx[j]] = v
	}
	return out, nil
}

// NewProxyBatch stores values and returns one proxy per value, using a
// single batched backend operation when the connector supports it (e.g.
// one Globus transfer task for many objects — the paper's proxy_batch).
// Pair with ResolveBatch on the consumer side to also fetch the targets in
// one batched operation.
func NewProxyBatch[T any](ctx context.Context, s *Store, values []T, opts ...ProxyOption) ([]*proxy.Proxy[T], error) {
	anyValues := make([]any, len(values))
	for i, v := range values {
		anyValues[i] = v
	}
	keys, err := s.PutBatch(ctx, anyValues)
	if err != nil {
		return nil, err
	}
	proxies := make([]*proxy.Proxy[T], len(keys))
	for i, k := range keys {
		proxies[i] = ProxyFromKey[T](s, k, opts...)
	}
	return proxies, nil
}

// ResolveBatch materializes every unresolved proxy in one batched get per
// backing store — the consumer-side half of the paper's proxy_batch,
// surfaced over connector.BatchGetter. Store-backed proxies are grouped by
// store and fetched with Store.GetBatch (one MGET-style round trip when the
// connector supports it); proxies with evict-on-resolve semantics are
// evicted after the batch lands; non-store proxies fall back to individual
// resolution. Already-resolved proxies are untouched.
func ResolveBatch[T any](ctx context.Context, proxies []*proxy.Proxy[T]) error {
	type group struct {
		store   *Store
		keys    []connector.Key
		proxies []*proxy.Proxy[T]
		evict   []bool
	}
	groups := make(map[*Store]*group)
	var order []*Store
	var loners []*proxy.Proxy[T]
	for _, p := range proxies {
		if p == nil || p.Resolved() {
			continue
		}
		af, ok := proxy.Underlying(p)
		if !ok {
			loners = append(loners, p)
			continue
		}
		sf, ok := af.(*storeFactory)
		if !ok {
			loners = append(loners, p)
			continue
		}
		st, err := GetOrInit(sf.state.StoreName, sf.state.Connector, sf.state.Serializer)
		if err != nil {
			return err
		}
		g := groups[st]
		if g == nil {
			g = &group{store: st}
			groups[st] = g
			order = append(order, st)
		}
		g.keys = append(g.keys, sf.state.Key)
		g.proxies = append(g.proxies, p)
		g.evict = append(g.evict, sf.state.Evict)
	}
	for _, st := range order {
		g := groups[st]
		values, err := g.store.GetBatch(ctx, g.keys)
		if err != nil {
			return err
		}
		for i, v := range values {
			t, ok := v.(T)
			if !ok {
				var zero T
				return fmt.Errorf("store %q: batch object %s has type %T, want %T",
					g.store.name, g.keys[i], v, zero)
			}
			g.proxies[i].Prime(t)
			if g.evict[i] {
				if err := g.store.Evict(ctx, g.keys[i]); err != nil {
					return err
				}
			}
		}
	}
	// Non-store proxies cannot share a backend round trip, but they can at
	// least resolve concurrently — in bounded chunks, so a huge batch does
	// not spawn one in-flight fetch (and payload) per proxy at once.
	const lonerWindow = 8
	for len(loners) > 0 {
		chunk := loners
		if len(chunk) > lonerWindow {
			chunk = chunk[:lonerWindow]
		}
		loners = loners[len(chunk):]
		proxy.Prefetch(ctx, chunk...)
		if _, err := proxy.AwaitAll(ctx, chunk...); err != nil {
			return err
		}
	}
	return nil
}

// KeyOf returns the backing store and object key of a store-backed proxy
// without resolving it, materializing the store from the factory's embedded
// config when this process has never seen it. Subscription layers (pstream)
// use it to evict consumed objects and to inspect object sizes from proxies
// alone. ok is false for proxies not backed by a store factory.
func KeyOf[T any](p *proxy.Proxy[T]) (s *Store, key connector.Key, ok bool, err error) {
	af, found := proxy.Underlying(p)
	if !found {
		return nil, connector.Key{}, false, nil
	}
	sf, found := af.(*storeFactory)
	if !found {
		return nil, connector.Key{}, false, nil
	}
	st, err := GetOrInit(sf.state.StoreName, sf.state.Connector, sf.state.Serializer)
	if err != nil {
		return nil, connector.Key{}, false, err
	}
	return st, sf.state.Key, true, nil
}

// --- The store factory ---------------------------------------------------

// factoryState is the serialized payload of a store factory: everything a
// consumer process needs to reconstruct the store and fetch the target.
type factoryState struct {
	StoreName  string
	Connector  connector.Config
	Key        connector.Key
	Evict      bool
	Serializer string
	// Metrics opts the proxy into resolve timing (WithProxyMetrics). New
	// field: gob decodes payloads from builds without it to false.
	Metrics bool
}

// storeFactory resolves a target object through a (possibly reconstructed)
// Store. It implements proxy.AnyFactory and proxy.Describable.
type storeFactory struct {
	state factoryState
}

// FactoryKind is the proxy descriptor kind for store factories.
const FactoryKind = "store"

func (f *storeFactory) ResolveAny(ctx context.Context) (any, error) {
	s, err := GetOrInit(f.state.StoreName, f.state.Connector, f.state.Serializer)
	if err != nil {
		return nil, err
	}
	if f.state.Metrics {
		defer s.m.resolveNs.Since(time.Now())
	}
	v, err := s.GetObject(ctx, f.state.Key)
	if err != nil {
		return nil, err
	}
	if f.state.Evict {
		if err := s.Evict(ctx, f.state.Key); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (f *storeFactory) Describe() (proxy.Descriptor, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f.state); err != nil {
		return proxy.Descriptor{}, fmt.Errorf("store: encoding factory state: %w", err)
	}
	return proxy.Descriptor{Kind: FactoryKind, Data: buf.Bytes()}, nil
}

// RebuildFactory reconstructs a store proxy factory from its descriptor
// data. It is the FactoryKind rebuilder installed at init, exported so
// processes with custom descriptor wiring can route their own kinds through
// the store machinery via proxy.RegisterKind.
func RebuildFactory(data []byte) (proxy.AnyFactory, error) {
	var st factoryState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("store: decoding factory state: %w", err)
	}
	return &storeFactory{state: st}, nil
}

func init() {
	proxy.RegisterKind(FactoryKind, RebuildFactory)
}
