package store_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"testing"
	"testing/quick"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/local"
	"proxystore/internal/proxy"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

func newTestStore(t *testing.T, name string, opts ...store.Option) *store.Store {
	t.Helper()
	s, err := store.New(name, local.New(name+"-conn"), opts...)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister(name) })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTestStore(t, "rt")
	ctx := context.Background()
	key, err := store.Put(ctx, s, []byte("payload"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := store.Get[[]byte](ctx, s, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("Get = %q", got)
	}
}

func TestGetTypeMismatch(t *testing.T) {
	s := newTestStore(t, "mismatch")
	ctx := context.Background()
	key, err := store.Put(ctx, s, "a string")
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := store.Get[int](ctx, s, key); err == nil {
		t.Fatal("Get succeeded with wrong type parameter")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	newTestStore(t, "dup")
	if _, err := store.New("dup", local.New("other")); err == nil {
		t.Fatal("second store with same name was accepted")
	}
}

func TestEvictRemovesObjectAndCache(t *testing.T) {
	s := newTestStore(t, "evict")
	ctx := context.Background()
	key, err := store.Put(ctx, s, []byte("gone soon"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.GetObject(ctx, key); err != nil {
		t.Fatalf("GetObject: %v", err)
	}
	if err := s.Evict(ctx, key); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	ok, err := s.Exists(ctx, key)
	if err != nil {
		t.Fatalf("Exists: %v", err)
	}
	if ok {
		t.Fatal("object still exists after evict")
	}
	if _, err := s.GetObject(ctx, key); !errors.Is(err, connector.ErrNotFound) {
		t.Fatalf("GetObject after evict = %v, want ErrNotFound", err)
	}
}

func TestCacheAvoidsSecondConnectorGet(t *testing.T) {
	s := newTestStore(t, "cache")
	ctx := context.Background()
	key, err := store.Put(ctx, s, []byte("cached"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.GetObject(ctx, key); err != nil {
			t.Fatalf("GetObject #%d: %v", i, err)
		}
	}
	m := s.Metrics()
	if m.Gets != 1 {
		t.Fatalf("connector gets = %d, want 1 (cache should serve repeats)", m.Gets)
	}
	if m.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", m.CacheHits)
	}
}

func TestProxyResolvesInSameProcess(t *testing.T) {
	s := newTestStore(t, "proxy-local")
	ctx := context.Background()
	p, err := store.NewProxy(ctx, s, []byte("via proxy"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	if p.Resolved() {
		t.Fatal("fresh proxy already resolved")
	}
	v, err := p.Value(ctx)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if string(v) != "via proxy" {
		t.Fatalf("Value = %q", v)
	}
}

func TestProxySerializationCrossStoreLookup(t *testing.T) {
	// Producer creates a store and a proxy; the serialized proxy carries
	// enough state that, after the producer's store is unregistered, the
	// consumer reconstructs an equivalent store from the factory config.
	ctx := context.Background()
	s, err := store.New("travelling", local.New("travelling-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	p, err := store.NewProxy(ctx, s, []byte("over the wire"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	// Simulate the consumer process: no registered store.
	if err := store.Unregister("travelling"); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	t.Cleanup(func() { store.Unregister("travelling") })

	var received proxy.Proxy[[]byte]
	if err := received.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	v, err := received.Value(ctx)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if string(v) != "over the wire" {
		t.Fatalf("Value = %q", v)
	}
	// Resolution must have re-registered the store.
	if _, ok := store.Lookup("travelling"); !ok {
		t.Fatal("consumer-side store was not registered during resolve")
	}
}

func TestProxyEvictOnResolve(t *testing.T) {
	s := newTestStore(t, "evict-flag")
	ctx := context.Background()
	p, err := store.NewProxy(ctx, s, []byte("ephemeral"), store.WithEvict())
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	if _, err := p.Value(ctx); err != nil {
		t.Fatalf("Value: %v", err)
	}
	conn := s.Connector().(*local.Connector)
	if conn.Len() != 0 {
		t.Fatalf("connector holds %d objects after evict-on-resolve, want 0", conn.Len())
	}
	// The proxy's own cached value is still usable.
	if v := p.MustValue(); string(v) != "ephemeral" {
		t.Fatalf("cached value = %q", v)
	}
}

func TestProxyBatch(t *testing.T) {
	s := newTestStore(t, "batch")
	ctx := context.Background()
	values := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	proxies, err := store.NewProxyBatch(ctx, s, values)
	if err != nil {
		t.Fatalf("NewProxyBatch: %v", err)
	}
	if len(proxies) != len(values) {
		t.Fatalf("got %d proxies, want %d", len(proxies), len(values))
	}
	for i, p := range proxies {
		v, err := p.Value(ctx)
		if err != nil {
			t.Fatalf("Value #%d: %v", i, err)
		}
		if string(v) != string(values[i]) {
			t.Fatalf("proxy %d = %q, want %q", i, v, values[i])
		}
	}
}

func TestCustomSerializer(t *testing.T) {
	s := newTestStore(t, "rawser", store.WithSerializer(serial.Raw()))
	ctx := context.Background()
	key, err := store.Put(ctx, s, []byte{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	data, err := s.Connector().Get(ctx, key)
	if err != nil {
		t.Fatalf("connector Get: %v", err)
	}
	if !bytes.Equal(data, []byte{0, 1, 2, 3}) {
		t.Fatalf("raw serializer altered bytes: %v", data)
	}
}

type pointPayload struct{ X, Y float64 }

func TestStructPayloadThroughGob(t *testing.T) {
	gob.Register(pointPayload{})
	s := newTestStore(t, "struct")
	ctx := context.Background()
	p, err := store.NewProxy(ctx, s, pointPayload{X: 1.5, Y: -2})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	got := p.MustValue()
	if got.X != 1.5 || got.Y != -2 {
		t.Fatalf("MustValue = %+v", got)
	}
}

func TestGetOrInitIdempotent(t *testing.T) {
	s := newTestStore(t, "idem")
	got, err := store.GetOrInit("idem", connector.Config{Type: "local"}, serial.GobID)
	if err != nil {
		t.Fatalf("GetOrInit: %v", err)
	}
	if got != s {
		t.Fatal("GetOrInit returned a different instance for registered name")
	}
}

func TestPropertyStoreRoundTripBytes(t *testing.T) {
	s := newTestStore(t, "prop")
	ctx := context.Background()
	f := func(data []byte) bool {
		key, err := store.Put(ctx, s, data)
		if err != nil {
			return false
		}
		got, err := store.Get[[]byte](ctx, s, key)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsCacheHitBytesAndEvictions(t *testing.T) {
	// A tiny byte budget forces budget evictions; hits report charged cost.
	s := newTestStore(t, "cachemetrics", store.WithCacheBytes(2048))
	ctx := context.Background()

	key, err := store.Put(ctx, s, bytes.Repeat([]byte("a"), 512))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.GetObject(ctx, key); err != nil { // fills cache
		t.Fatalf("Get: %v", err)
	}
	if _, err := s.GetObject(ctx, key); err != nil { // cache hit
		t.Fatalf("Get: %v", err)
	}
	m := s.Metrics()
	if m.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", m.CacheHits)
	}
	// The hit serves at least the encoded payload (cost includes a fixed
	// per-entry overhead charge).
	if m.CacheHitBytes < 512 {
		t.Fatalf("CacheHitBytes = %d, want >= 512", m.CacheHitBytes)
	}
	if m.CacheEvictions != 0 {
		t.Fatalf("CacheEvictions = %d before pressure", m.CacheEvictions)
	}

	// Two more distinct objects overflow the 2 KiB budget.
	for i := 0; i < 2; i++ {
		k, err := store.Put(ctx, s, bytes.Repeat([]byte{byte(i)}, 900))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if _, err := s.GetObject(ctx, k); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	if m := s.Metrics(); m.CacheEvictions == 0 {
		t.Fatal("CacheEvictions = 0 after exceeding the byte budget")
	}
}

func TestKeyOf(t *testing.T) {
	s := newTestStore(t, "keyof")
	ctx := context.Background()
	p, err := store.NewProxy(ctx, s, []byte("located"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	st, key, ok, err := store.KeyOf(p)
	if err != nil || !ok {
		t.Fatalf("KeyOf = ok=%v, err=%v", ok, err)
	}
	if st != s {
		t.Fatalf("KeyOf returned store %q", st.Name())
	}
	if p.Resolved() {
		t.Fatal("KeyOf resolved the proxy")
	}
	got, err := store.Get[[]byte](ctx, s, key)
	if err != nil || string(got) != "located" {
		t.Fatalf("Get via KeyOf key = %q, %v", got, err)
	}
	// Non-store proxies report ok=false, not an error.
	plain := proxy.FromValue(42)
	if _, _, ok, err := store.KeyOf(plain); ok || err != nil {
		t.Fatalf("KeyOf(non-store) = ok=%v, err=%v", ok, err)
	}
}
