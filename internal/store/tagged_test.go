package store_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/multi"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// newTaggedStore builds a store over a two-child multi connector: a
// default untagged child and a "persistent"-tagged child, so tagged puts
// are observable by which child received the object.
func newTaggedStore(t *testing.T, name string, opts ...store.Option) (*store.Store, *local.Connector, *local.Connector) {
	t.Helper()
	plain := local.New(name + "-plain")
	tagged := local.New(name + "-tagged")
	mc, err := multi.New(
		multi.Child{Name: "plain", Connector: plain, Policy: multi.Policy{Priority: 1}},
		multi.Child{Name: "tagged", Connector: tagged, Policy: multi.Policy{Tags: []string{"persistent"}}},
	)
	if err != nil {
		t.Fatalf("multi.New: %v", err)
	}
	s, err := store.New(name, mc, opts...)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister(name) })
	return s, plain, tagged
}

// TestPutObjectWithTagsRoutesPlacement: WithTags must land the object on
// the child carrying the tag, and the minted key must still round-trip
// through GetObject (cache disabled so the read really routes).
func TestPutObjectWithTagsRoutesPlacement(t *testing.T) {
	s, plain, tagged := newTaggedStore(t, "tags-route", store.WithCacheBytes(0))
	ctx := context.Background()

	key, err := s.PutObject(ctx, []byte("pinned"), store.WithTags("persistent"))
	if err != nil {
		t.Fatalf("PutObject(WithTags): %v", err)
	}
	if tagged.Len() != 1 || plain.Len() != 0 {
		t.Fatalf("tagged put landed on the wrong child: plain=%d tagged=%d", plain.Len(), tagged.Len())
	}
	v, err := s.GetObject(ctx, key)
	if err != nil {
		t.Fatalf("GetObject: %v", err)
	}
	if string(v.([]byte)) != "pinned" {
		t.Fatalf("GetObject = %q", v)
	}

	// Untagged puts keep routing to the default (higher-priority) child.
	if _, err := s.PutObject(ctx, []byte("loose")); err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	if plain.Len() != 1 {
		t.Fatalf("untagged put did not use the default child: plain=%d tagged=%d", plain.Len(), tagged.Len())
	}
}

// TestPutObjectWithTagsNonStreamingSerializer: a serializer without a
// streaming encoder must still honor tags (the encoded blob rides the
// tagged streaming path).
func TestPutObjectWithTagsNonStreamingSerializer(t *testing.T) {
	s, plain, tagged := newTaggedStore(t, "tags-blob", store.WithSerializer(serial.Raw()), store.WithCacheBytes(0))
	ctx := context.Background()
	key, err := s.PutObject(ctx, []byte("raw-pinned"), store.WithTags("persistent"))
	if err != nil {
		t.Fatalf("PutObject(WithTags): %v", err)
	}
	if tagged.Len() != 1 || plain.Len() != 0 {
		t.Fatalf("tagged raw put landed wrong: plain=%d tagged=%d", plain.Len(), tagged.Len())
	}
	v, err := s.GetObject(ctx, key)
	if err != nil || string(v.([]byte)) != "raw-pinned" {
		t.Fatalf("GetObject = %v, %v", v, err)
	}
}

// TestPutObjectWithTagsUnsupportedConnector: a connector with no tagged
// put surface must reject the constraint loudly instead of dropping it.
func TestPutObjectWithTagsUnsupportedConnector(t *testing.T) {
	s := newTestStore(t, "tags-unsupported")
	_, err := s.PutObject(context.Background(), []byte("x"), store.WithTags("persistent"))
	if err == nil {
		t.Fatal("PutObject(WithTags) succeeded on a connector without tagged puts")
	}
	if !strings.Contains(err.Error(), "placement tags") {
		t.Fatalf("error does not name the dropped constraint: %v", err)
	}
}

// TestNewProxyWithPutTags: the proxy-minting path carries the same
// placement constraint, and the resulting proxy resolves normally.
func TestNewProxyWithPutTags(t *testing.T) {
	s, plain, tagged := newTaggedStore(t, "tags-proxy")
	ctx := context.Background()
	p, err := store.NewProxy(ctx, s, []byte("via-proxy"), store.WithPutTags("persistent"))
	if err != nil {
		t.Fatalf("NewProxy(WithPutTags): %v", err)
	}
	if tagged.Len() != 1 || plain.Len() != 0 {
		t.Fatalf("proxy put landed wrong: plain=%d tagged=%d", plain.Len(), tagged.Len())
	}
	v, err := p.Value(ctx)
	if err != nil || string(v) != "via-proxy" {
		t.Fatalf("Value = %q, %v", v, err)
	}

	// An unsatisfiable constraint fails the put, not a later resolve.
	if _, err := store.NewProxy(ctx, s, []byte("x"), store.WithPutTags("no-such-tag")); err == nil {
		t.Fatal("NewProxy with unsatisfiable tags succeeded")
	}
}

// TestBinarySerializerStreamsThroughStore: the binary codec round-trips
// []byte and scalar payloads through the store's streaming path and keeps
// them intact; it is registered so factories can name it cross-process.
func TestBinarySerializerStreamsThroughStore(t *testing.T) {
	s := newTestStore(t, "binary-codec", store.WithSerializer(serial.Binary()), store.WithCacheBytes(0))
	ctx := context.Background()

	payload := bytes.Repeat([]byte{0xC3}, 3<<20)
	key, err := s.PutObject(ctx, payload)
	if err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	v, err := s.GetObject(ctx, key)
	if err != nil {
		t.Fatalf("GetObject: %v", err)
	}
	if got, ok := v.([]byte); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("binary round trip corrupted payload (%T, %d bytes)", v, len(got))
	}

	// Scalars and gob-envelope values survive the same path.
	for _, val := range []any{"a string", int64(-42), 3.25, true, []float64{1, 2}} {
		key, err := s.PutObject(ctx, val)
		if err != nil {
			t.Fatalf("PutObject(%T): %v", val, err)
		}
		if _, err := s.GetObject(ctx, key); err != nil {
			t.Fatalf("GetObject(%T): %v", val, err)
		}
	}
}
