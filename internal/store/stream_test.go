package store_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/local"
	"proxystore/internal/proxy"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// --- Streaming data plane ------------------------------------------------

func TestPutReaderGetReaderRoundTrip(t *testing.T) {
	s := newTestStore(t, "stream-rt")
	ctx := context.Background()
	payload := bytes.Repeat([]byte("stream me "), 100_000) // ~1 MiB, multi-chunk

	key, err := s.PutReader(ctx, bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("PutReader: %v", err)
	}
	if key.Size != int64(len(payload)) {
		t.Fatalf("key.Size = %d, want %d", key.Size, len(payload))
	}
	r, err := s.GetReader(ctx, key)
	if err != nil {
		t.Fatalf("GetReader: %v", err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("streamed round trip corrupted payload")
	}
}

func TestGetReaderMissingSurfacesNotFound(t *testing.T) {
	s := newTestStore(t, "stream-missing")
	ctx := context.Background()
	key, err := s.PutReader(ctx, bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatalf("PutReader: %v", err)
	}
	if err := s.Evict(ctx, key); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	r, err := s.GetReader(ctx, key)
	if err != nil {
		t.Fatalf("GetReader: %v", err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, connector.ErrNotFound) {
		t.Fatalf("read of evicted object = %v, want ErrNotFound", err)
	}
}

// PutObject/GetObject must round-trip through the pipe-streamed path when
// both the serializer and connector stream (gob + file connector here),
// and evicted keys must still surface ErrNotFound through the pipe.
func TestObjectStreamedPathThroughFileConnector(t *testing.T) {
	conn, err := file.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.New("stream-file", conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Unregister("stream-file") })
	ctx := context.Background()

	payload := bytes.Repeat([]byte{0xCE}, 3*(256<<10)+11) // spans several chunks
	key, err := s.PutObject(ctx, payload)
	if err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	got, err := store.Get[[]byte](ctx, s, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("streamed object round trip corrupted payload")
	}

	if err := s.Evict(ctx, key); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if _, err := s.GetObject(ctx, key); !errors.Is(err, connector.ErrNotFound) {
		t.Fatalf("GetObject after evict = %v, want ErrNotFound", err)
	}
}

// --- Batch data plane ----------------------------------------------------

func TestStorePutGetBatch(t *testing.T) {
	s := newTestStore(t, "obj-batch")
	ctx := context.Background()
	values := []any{[]byte("one"), []byte("two"), []byte("three")}
	keys, err := s.PutBatch(ctx, values)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	got, err := s.GetBatch(ctx, keys)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i := range values {
		if !bytes.Equal(got[i].([]byte), values[i].([]byte)) {
			t.Fatalf("GetBatch[%d] = %q, want %q", i, got[i], values[i])
		}
	}
	// A second GetBatch must be served from the deserialized-object cache.
	before := s.Metrics()
	if _, err := s.GetBatch(ctx, keys); err != nil {
		t.Fatalf("second GetBatch: %v", err)
	}
	after := s.Metrics()
	if after.Gets != before.Gets {
		t.Fatalf("second GetBatch hit the connector (%d -> %d gets)", before.Gets, after.Gets)
	}
	if after.CacheHits != before.CacheHits+3 {
		t.Fatalf("cache hits %d -> %d, want +3", before.CacheHits, after.CacheHits)
	}
}

func TestResolveBatch(t *testing.T) {
	s := newTestStore(t, "resolve-batch")
	ctx := context.Background()
	values := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	proxies, err := store.NewProxyBatch(ctx, s, values)
	if err != nil {
		t.Fatalf("NewProxyBatch: %v", err)
	}
	if err := store.ResolveBatch(ctx, proxies); err != nil {
		t.Fatalf("ResolveBatch: %v", err)
	}
	for i, p := range proxies {
		if !p.Resolved() {
			t.Fatalf("proxy %d unresolved after ResolveBatch", i)
		}
		if v := p.MustValue(); !bytes.Equal(v, values[i]) {
			t.Fatalf("proxy %d = %q, want %q", i, v, values[i])
		}
	}
}

func TestResolveBatchEvictsEphemeralObjects(t *testing.T) {
	s := newTestStore(t, "resolve-batch-evict")
	ctx := context.Background()
	proxies, err := store.NewProxyBatch(ctx, s,
		[][]byte{[]byte("x"), []byte("y")}, store.WithEvict())
	if err != nil {
		t.Fatalf("NewProxyBatch: %v", err)
	}
	if err := store.ResolveBatch(ctx, proxies); err != nil {
		t.Fatalf("ResolveBatch: %v", err)
	}
	if n := s.Connector().(*local.Connector).Len(); n != 0 {
		t.Fatalf("connector holds %d objects after evict-on-resolve batch, want 0", n)
	}
	// Targets remain usable from the proxies' caches.
	if v := proxies[0].MustValue(); string(v) != "x" {
		t.Fatalf("cached value = %q", v)
	}
}

func TestResolveBatchMixedAndResolved(t *testing.T) {
	s := newTestStore(t, "resolve-batch-mixed")
	ctx := context.Background()
	ps, err := store.NewProxyBatch(ctx, s, [][]byte{[]byte("p"), []byte("q")})
	if err != nil {
		t.Fatalf("NewProxyBatch: %v", err)
	}
	if _, err := ps[0].Value(ctx); err != nil { // pre-resolve one
		t.Fatalf("Value: %v", err)
	}
	plain := proxy.FromValue([]byte("already here"))
	all := append(ps, plain)
	if err := store.ResolveBatch(ctx, all); err != nil {
		t.Fatalf("ResolveBatch: %v", err)
	}
	for i, p := range all {
		if !p.Resolved() {
			t.Fatalf("proxy %d unresolved", i)
		}
	}
}

// --- Byte-cost cache -----------------------------------------------------

// One object larger than the whole cache budget must not be cached, and
// must not evict the budget's worth of smaller objects either.
func TestByteCostCacheHugeObjectNotPinned(t *testing.T) {
	s := newTestStore(t, "byte-cache",
		store.WithSerializer(serial.Raw()), store.WithCacheBytes(1<<20))
	ctx := context.Background()

	small, err := s.PutObject(ctx, []byte("small object"))
	if err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	if _, err := s.GetObject(ctx, small); err != nil { // populate cache
		t.Fatalf("GetObject: %v", err)
	}

	huge, err := s.PutObject(ctx, make([]byte, 2<<20)) // over the whole budget
	if err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.GetObject(ctx, huge); err != nil {
			t.Fatalf("GetObject huge #%d: %v", i, err)
		}
	}

	m := s.Metrics()
	// The huge object is never cached: both gets hit the connector...
	if m.Gets != 3 {
		t.Fatalf("connector gets = %d, want 3 (1 small + 2 uncached huge)", m.Gets)
	}
	// ...and the small object survived it.
	before := m.CacheHits
	if _, err := s.GetObject(ctx, small); err != nil {
		t.Fatalf("GetObject small again: %v", err)
	}
	if got := s.Metrics().CacheHits; got != before+1 {
		t.Fatal("small object was evicted by an uncacheable huge object")
	}
}

// --- Registry and descriptor round trips ---------------------------------

// GetOrInit must be race-free: concurrent callers for the same unregistered
// name all get the same instance and exactly one survives in the registry.
func TestGetOrInitConcurrentRace(t *testing.T) {
	store.ResetRegistry()
	t.Cleanup(store.ResetRegistry)
	cfg := connector.Config{Type: "local", Params: map[string]string{"name": "race-conn"}}

	const goroutines = 32
	stores := make([]*store.Store, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			stores[i], errs[i] = store.GetOrInit("race-store", cfg, serial.GobID)
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("GetOrInit #%d: %v", i, errs[i])
		}
		if stores[i] != stores[0] {
			t.Fatalf("GetOrInit #%d returned a different instance", i)
		}
	}
	reg, ok := store.Lookup("race-store")
	if !ok || reg != stores[0] {
		t.Fatal("registry does not hold the winning instance")
	}

	// The winning store must actually work.
	ctx := context.Background()
	key, err := store.Put(ctx, stores[0], []byte("raced"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := store.Get[[]byte](ctx, stores[0], key); err != nil || string(v) != "raced" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestGetOrInitConcurrentWithPutTraffic(t *testing.T) {
	store.ResetRegistry()
	t.Cleanup(store.ResetRegistry)
	cfg := connector.Config{Type: "local", Params: map[string]string{"name": "traffic-conn"}}
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				s, err := store.GetOrInit("traffic-store", cfg, serial.GobID)
				if err != nil {
					errCh <- err
					return
				}
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				key, err := store.Put(ctx, s, payload)
				if err != nil {
					errCh <- err
					return
				}
				got, err := store.Get[[]byte](ctx, s, key)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errCh <- fmt.Errorf("round trip mismatch: %q != %q", got, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// A proxy descriptor must survive a fresh-process-like state: every store
// unregistered (ResetRegistry) and the factory rebuilt purely through the
// RegisterKind machinery, exactly as a consumer process would do it.
func TestProxyDescriptorRoundTripFreshProcessState(t *testing.T) {
	store.ResetRegistry()
	t.Cleanup(store.ResetRegistry)
	ctx := context.Background()

	s, err := store.New("fresh-proc", local.New("fresh-proc-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	p, err := store.NewProxy(ctx, s, []byte("survives reset"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	// Simulate the consumer process: no stores registered at all.
	store.ResetRegistry()
	if _, ok := store.Lookup("fresh-proc"); ok {
		t.Fatal("store registry not empty after reset")
	}

	var received proxy.Proxy[[]byte]
	if err := received.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	v, err := received.Value(ctx)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if string(v) != "survives reset" {
		t.Fatalf("Value = %q", v)
	}
	if _, ok := store.Lookup("fresh-proc"); !ok {
		t.Fatal("resolution did not re-register the store")
	}
}

// The same round trip must work when the descriptor kind is rebuilt through
// a caller-supplied RegisterKind hook, proving the registry is the only
// coupling between producer and consumer.
func TestProxyDescriptorRebuildViaRegisterKind(t *testing.T) {
	store.ResetRegistry()
	t.Cleanup(store.ResetRegistry)
	ctx := context.Background()

	s, err := store.New("rk-store", local.New("rk-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	p, err := store.NewProxy(ctx, s, []byte("via custom kind"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	desc, err := p.Factory().(proxy.Describable).Describe()
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if desc.Kind != store.FactoryKind {
		t.Fatalf("descriptor kind = %q, want %q", desc.Kind, store.FactoryKind)
	}

	// Re-register the store kind under a fresh name, as a process with
	// custom wiring would, and rebuild the factory through it.
	var rebuilt int
	proxy.RegisterKind("store-copy", func(data []byte) (proxy.AnyFactory, error) {
		rebuilt++
		return store.RebuildFactory(data)
	})
	store.ResetRegistry()

	var received proxy.Proxy[[]byte]
	blob := mustMarshalDescriptor(t, proxy.Descriptor{Kind: "store-copy", Data: desc.Data})
	if err := received.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	v, err := received.Value(ctx)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if string(v) != "via custom kind" {
		t.Fatalf("Value = %q", v)
	}
	if rebuilt != 1 {
		t.Fatalf("custom rebuilder invoked %d times, want 1", rebuilt)
	}
}

// mustMarshalDescriptor encodes a descriptor exactly as Proxy.MarshalBinary
// does, letting tests synthesize wire blobs for alternative kinds.
func mustMarshalDescriptor(t *testing.T, d proxy.Descriptor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatalf("encoding descriptor: %v", err)
	}
	return buf.Bytes()
}
