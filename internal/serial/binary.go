package serial

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// BinaryID is the registry ID of the length-prefixed binary serializer.
const BinaryID = "binary"

// binarySerializer is a self-delimiting binary codec built for the
// streamed data plane: every value is one frame — a type byte followed by
// a type-specific payload, length-prefixed with a uvarint where the size
// is not implied — so a decoder consumes exactly the frame's bytes and a
// frame can be streamed without whole-message buffering.
//
// Byte strings and strings are the first-class citizens (the common
// payloads of the paper's benchmarks): EncodeTo writes the backing bytes
// straight into the writer with no intermediate copy, and DecodeFrom
// reads them with io.ReadFull into exactly one allocation of the declared
// length. Compare gob, whose encoder and decoder both materialize the
// whole encoded message internally — O(object) extra memory on each side
// of a 64 MiB transfer.
//
// Scalars are normalized like encoding/json normalizes numbers: every
// signed integer decodes as int64, every unsigned as uint64, every float
// as float64. Values outside the native set travel in a gob envelope
// frame (length-prefixed), so any type the gob serializer accepts still
// round-trips — it just pays gob's buffering for that one value.
type binarySerializer struct{}

// Binary returns the length-prefixed binary serializer.
func Binary() Serializer { return binarySerializer{} }

func (binarySerializer) ID() string { return BinaryID }

// Frame type bytes. The gob envelope deliberately reuses no gob magic:
// the type byte alone routes decoding.
const (
	binNil    = 0x00
	binBytes  = 0x01
	binString = 0x02
	binInt    = 0x03
	binUint   = 0x04
	binFloat  = 0x05
	binTrue   = 0x06
	binFalse  = 0x07
	binGob    = 0x08
)

// binMaxLen caps a frame's declared payload length (1 GiB), so a corrupt
// or adversarial length prefix cannot trigger an arbitrary allocation.
const binMaxLen = 1 << 30

func (binarySerializer) Encode(v any) ([]byte, error) {
	var buf byteSliceWriter
	if err := (binarySerializer{}).EncodeTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.b, nil
}

func (binarySerializer) Decode(data []byte) (any, error) {
	return (binarySerializer{}).DecodeFrom(&byteSliceReader{b: data})
}

// EncodeTo implements StreamEncoder. For []byte and string the payload is
// written directly from the value's backing bytes — no copy, no staging
// buffer — so peak extra memory is O(1).
func (binarySerializer) EncodeTo(w io.Writer, v any) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	writeFrame := func(t byte, n uint64, payload []byte) error {
		hdr[0] = t
		k := 1 + binary.PutUvarint(hdr[1:], n)
		if _, err := w.Write(hdr[:k]); err != nil {
			return fmt.Errorf("serial: binary encode: %w", err)
		}
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("serial: binary encode: %w", err)
		}
		return nil
	}
	switch x := v.(type) {
	case nil:
		hdr[0] = binNil
		_, err := w.Write(hdr[:1])
		return err
	case []byte:
		return writeFrame(binBytes, uint64(len(x)), x)
	case string:
		return writeFrame(binString, uint64(len(x)), []byte(x))
	case int:
		return writeVarintFrame(w, binInt, int64(x))
	case int8:
		return writeVarintFrame(w, binInt, int64(x))
	case int16:
		return writeVarintFrame(w, binInt, int64(x))
	case int32:
		return writeVarintFrame(w, binInt, int64(x))
	case int64:
		return writeVarintFrame(w, binInt, x)
	case uint:
		return writeUvarintFrame(w, binUint, uint64(x))
	case uint8:
		return writeUvarintFrame(w, binUint, uint64(x))
	case uint16:
		return writeUvarintFrame(w, binUint, uint64(x))
	case uint32:
		return writeUvarintFrame(w, binUint, uint64(x))
	case uint64:
		return writeUvarintFrame(w, binUint, x)
	case float32:
		return writeFloatFrame(w, float64(x))
	case float64:
		return writeFloatFrame(w, x)
	case bool:
		hdr[0] = binFalse
		if x {
			hdr[0] = binTrue
		}
		_, err := w.Write(hdr[:1])
		return err
	default:
		// Gob envelope: anything the default serializer accepts. The
		// envelope is length-prefixed so the frame stays self-delimiting,
		// which costs materializing this one value — the price of falling
		// off the native fast path.
		data, err := Default().Encode(v)
		if err != nil {
			return fmt.Errorf("serial: binary encode (gob envelope): %w", err)
		}
		return writeFrame(binGob, uint64(len(data)), data)
	}
}

func writeVarintFrame(w io.Writer, t byte, n int64) error {
	var buf [1 + binary.MaxVarintLen64]byte
	buf[0] = t
	k := 1 + binary.PutVarint(buf[1:], n)
	_, err := w.Write(buf[:k])
	return err
}

func writeUvarintFrame(w io.Writer, t byte, n uint64) error {
	var buf [1 + binary.MaxVarintLen64]byte
	buf[0] = t
	k := 1 + binary.PutUvarint(buf[1:], n)
	_, err := w.Write(buf[:k])
	return err
}

func writeFloatFrame(w io.Writer, f float64) error {
	var buf [9]byte
	buf[0] = binFloat
	binary.BigEndian.PutUint64(buf[1:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

// DecodeFrom implements StreamDecoder. It consumes exactly one frame:
// varints are read byte by byte and payloads with io.ReadFull, so nothing
// past the frame is touched and the reader can carry trailing data.
func (binarySerializer) DecodeFrom(r io.Reader) (any, error) {
	br := oneByteReader{r}
	t, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("serial: binary decode: %w", err)
	}
	readLen := func() (int, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("serial: binary decode: length prefix: %w", err)
		}
		if n > binMaxLen {
			return 0, fmt.Errorf("serial: binary decode: frame of %d bytes exceeds the %d cap", n, binMaxLen)
		}
		return int(n), nil
	}
	switch t {
	case binNil:
		return nil, nil
	case binBytes, binString, binGob:
		n, err := readLen()
		if err != nil {
			return nil, err
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("serial: binary decode: payload: %w", err)
		}
		switch t {
		case binBytes:
			return payload, nil
		case binString:
			return string(payload), nil
		default:
			v, err := Default().Decode(payload)
			if err != nil {
				return nil, fmt.Errorf("serial: binary decode (gob envelope): %w", err)
			}
			return v, nil
		}
	case binInt:
		n, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("serial: binary decode: varint: %w", err)
		}
		return n, nil
	case binUint:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("serial: binary decode: uvarint: %w", err)
		}
		return n, nil
	case binFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("serial: binary decode: float: %w", err)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
	case binTrue:
		return true, nil
	case binFalse:
		return false, nil
	default:
		return nil, fmt.Errorf("serial: binary decode: unknown frame type 0x%02x", t)
	}
}

// oneByteReader adapts an io.Reader to io.ByteReader with single-byte
// reads, so varint decoding never buffers past the frame. Varints are at
// most ten bytes, so the per-byte read cost is bounded per frame.
type oneByteReader struct{ r io.Reader }

func (b oneByteReader) ReadByte() (byte, error) {
	var p [1]byte
	if _, err := io.ReadFull(b.r, p[:]); err != nil {
		return 0, err
	}
	return p[0], nil
}

// byteSliceWriter collects Encode output without bytes.Buffer's initial
// copy-growth for the large payload case: the first large Write lands in
// one exactly-sized allocation.
type byteSliceWriter struct{ b []byte }

func (w *byteSliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// byteSliceReader is a minimal io.Reader over a slice (bytes.Reader
// without the extra surface).
type byteSliceReader struct {
	b []byte
	i int
}

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func init() {
	Register(binarySerializer{})
}
