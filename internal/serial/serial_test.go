package serial

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestLookupKnownSerializers(t *testing.T) {
	for _, id := range []string{GobID, RawID, JSONID} {
		s, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
		if s.ID() != id {
			t.Fatalf("Lookup(%q).ID() = %q", id, s.ID())
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup succeeded for unregistered id")
	}
}

func TestGobRoundTripBuiltins(t *testing.T) {
	cases := []any{
		[]byte("bytes"),
		"string",
		42,
		int64(-7),
		3.14,
		true,
		[]float64{1, 2, 3},
		map[string]string{"k": "v"},
	}
	s := Default()
	for _, v := range cases {
		data, err := s.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%T): %v", v, err)
		}
		got, err := s.Decode(data)
		if err != nil {
			t.Fatalf("Decode(%T): %v", v, err)
		}
		switch want := v.(type) {
		case []byte:
			if !bytes.Equal(got.([]byte), want) {
				t.Fatalf("round trip %T: got %v", v, got)
			}
		case []float64:
			g := got.([]float64)
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("round trip %T: got %v", v, got)
				}
			}
		case map[string]string:
			if got.(map[string]string)["k"] != "v" {
				t.Fatalf("round trip %T: got %v", v, got)
			}
		default:
			if got != v {
				t.Fatalf("round trip %T: got %v, want %v", v, got, v)
			}
		}
	}
}

type customType struct{ A int }

func TestGobCustomTypeNeedsRegistration(t *testing.T) {
	s := Default()
	gob.Register(customType{})
	data, err := s.Encode(customType{A: 5})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.(customType).A != 5 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestRawPassthrough(t *testing.T) {
	s := Raw()
	in := []byte{1, 2, 3}
	data, err := s.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(data, in) {
		t.Fatalf("raw Encode altered bytes: %v", data)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.([]byte), in) {
		t.Fatalf("raw Decode = %v", got)
	}
}

func TestRawRejectsNonBytes(t *testing.T) {
	if _, err := Raw().Encode(42); err == nil {
		t.Fatal("raw Encode accepted an int")
	}
}

func TestRawString(t *testing.T) {
	data, err := Raw().Encode("hi")
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if string(data) != "hi" {
		t.Fatalf("Encode = %q", data)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := JSON()
	data, err := s.Encode(map[string]any{"a": 1.0, "b": "x"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	m := got.(map[string]any)
	if m["a"].(float64) != 1.0 || m["b"].(string) != "x" {
		t.Fatalf("round trip = %v", m)
	}
}

func TestJSONDecodeError(t *testing.T) {
	if _, err := JSON().Decode([]byte("{not json")); err == nil {
		t.Fatal("Decode accepted invalid JSON")
	}
}

func TestPropertyGobBytesRoundTrip(t *testing.T) {
	s := Default()
	f := func(in []byte) bool {
		data, err := s.Encode(in)
		if err != nil {
			return false
		}
		got, err := s.Decode(data)
		if err != nil {
			return false
		}
		gb, ok := got.([]byte)
		if !ok {
			// gob decodes nil []byte to nil any in interface indirection;
			// treat empty input specially.
			return len(in) == 0 && got == nil
		}
		return bytes.Equal(gb, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRawIdentity(t *testing.T) {
	s := Raw()
	f := func(in []byte) bool {
		data, err := s.Encode(in)
		if err != nil {
			return false
		}
		got, err := s.Decode(data)
		if err != nil {
			return false
		}
		return bytes.Equal(got.([]byte), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
