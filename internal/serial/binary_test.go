package serial

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRegistered(t *testing.T) {
	s, err := Lookup(BinaryID)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", BinaryID, err)
	}
	if s.ID() != BinaryID {
		t.Fatalf("ID() = %q", s.ID())
	}
}

// TestBinaryRoundTrip covers every native frame type plus the gob
// envelope, checking the documented normalization: signed → int64,
// unsigned → uint64, floats → float64.
func TestBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		in, want any
	}{
		{nil, nil},
		{[]byte{}, []byte{}},
		{[]byte("payload\x00with\xffbinary"), []byte("payload\x00with\xffbinary")},
		{"", ""},
		{"hello", "hello"},
		{42, int64(42)},
		{int8(-5), int64(-5)},
		{int64(math.MinInt64), int64(math.MinInt64)},
		{uint(7), uint64(7)},
		{uint64(math.MaxUint64), uint64(math.MaxUint64)},
		{uint8(255), uint64(255)},
		{3.5, 3.5},
		{float32(0.25), 0.25},
		{math.Inf(-1), math.Inf(-1)},
		{true, true},
		{false, false},
		// Non-native types ride the gob envelope.
		{[]float64{1, 2, 3}, []float64{1, 2, 3}},
		{map[string]string{"k": "v"}, map[string]string{"k": "v"}},
	}
	s := Binary()
	for _, c := range cases {
		data, err := s.Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%T %v): %v", c.in, c.in, err)
		}
		got, err := s.Decode(data)
		if err != nil {
			t.Fatalf("Decode(%T %v): %v", c.in, c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("round trip %T %v = %T %v, want %T %v", c.in, c.in, got, got, c.want, c.want)
		}
	}
}

// TestBinaryFramesAreSelfDelimiting decodes two frames written back to
// back off one reader: the first decode must consume exactly its frame,
// leaving the second intact.
func TestBinaryFramesAreSelfDelimiting(t *testing.T) {
	var buf bytes.Buffer
	enc := Binary().(StreamEncoder)
	if err := enc.EncodeTo(&buf, []byte("first")); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	if err := enc.EncodeTo(&buf, int64(-99)); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	if err := enc.EncodeTo(&buf, "third"); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	dec := Binary().(StreamDecoder)
	v1, err := dec.DecodeFrom(&buf)
	if err != nil || string(v1.([]byte)) != "first" {
		t.Fatalf("frame 1 = %v, %v", v1, err)
	}
	v2, err := dec.DecodeFrom(&buf)
	if err != nil || v2.(int64) != -99 {
		t.Fatalf("frame 2 = %v, %v", v2, err)
	}
	v3, err := dec.DecodeFrom(&buf)
	if err != nil || v3.(string) != "third" {
		t.Fatalf("frame 3 = %v, %v", v3, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after the last frame", buf.Len())
	}
}

// TestBinaryStreamEncodeIsZeroCopyForBytes proves the []byte fast path
// writes the payload's backing array straight through: the writer sees
// exactly one header write and one payload write whose slice aliases the
// input.
func TestBinaryStreamEncodeIsZeroCopyForBytes(t *testing.T) {
	payload := make([]byte, 1<<20)
	payload[0], payload[len(payload)-1] = 0xAA, 0xBB
	var w aliasRecordingWriter
	if err := Binary().(StreamEncoder).EncodeTo(&w, payload); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	if len(w.writes) != 2 {
		t.Fatalf("EncodeTo issued %d writes, want 2 (header + payload)", len(w.writes))
	}
	if &w.writes[1][0] != &payload[0] {
		t.Fatal("payload write does not alias the input slice — a copy was made")
	}
}

type aliasRecordingWriter struct{ writes [][]byte }

func (w *aliasRecordingWriter) Write(p []byte) (int, error) {
	w.writes = append(w.writes, p)
	return len(p), nil
}

// TestBinaryDecodeTruncatedAndCorrupt exercises the failure surface: a
// truncated payload, an unknown frame type, and a length prefix past the
// allocation cap must all error instead of hanging or over-allocating.
func TestBinaryDecodeTruncatedAndCorrupt(t *testing.T) {
	s := Binary()
	data, err := s.Encode([]byte("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decode(data[:len(data)-3]); err == nil {
		t.Fatal("decoding a truncated frame succeeded")
	}
	if _, err := s.Decode([]byte{0xEE}); err == nil {
		t.Fatal("decoding an unknown frame type succeeded")
	}
	// binBytes frame declaring ~2^62 bytes: must be rejected by the cap,
	// not attempted as an allocation.
	huge := []byte{binBytes, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f}
	if _, err := s.Decode(huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized length prefix: %v", err)
	}
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("decoding empty input succeeded")
	}
}

// TestBinaryDecodeFromReaderWithTrailingData decodes a frame from a
// reader carrying unrelated trailing bytes: the decoder must not consume
// past its frame even when the reader would happily give it more.
func TestBinaryDecodeFromReaderWithTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if err := Binary().(StreamEncoder).EncodeTo(&buf, "exact"); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("TRAILER")
	v, err := Binary().(StreamDecoder).DecodeFrom(&buf)
	if err != nil || v.(string) != "exact" {
		t.Fatalf("DecodeFrom = %v, %v", v, err)
	}
	rest, _ := io.ReadAll(&buf)
	if string(rest) != "TRAILER" {
		t.Fatalf("decoder consumed past its frame; %q left", rest)
	}
}
