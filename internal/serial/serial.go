// Package serial provides the (de)serialization layer used by Store.
//
// The paper's Store serializes Python objects with pickle before handing
// bytes to a Connector, and lets applications register custom serializers.
// This package mirrors that contract: a Serializer turns arbitrary Go values
// into bytes and back, serializers are registered by ID so a factory
// travelling to another process can name the codec it needs, and a default
// gob-based serializer handles any registered Go type.
package serial

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Serializer converts values to and from byte strings.
type Serializer interface {
	// ID is the stable registry name of the serializer. It is embedded in
	// proxy factories so remote processes can locate the same codec.
	ID() string
	// Encode serializes v.
	Encode(v any) ([]byte, error)
	// Decode deserializes data into a freshly decoded value.
	Decode(data []byte) (any, error)
}

// StreamEncoder is implemented by serializers that can encode directly into
// a writer without materializing the encoded form. Store uses it to pipe
// serialization straight into a streaming connector, keeping peak memory
// O(chunk) for large objects.
type StreamEncoder interface {
	EncodeTo(w io.Writer, v any) error
}

// StreamDecoder is the read-side pair of StreamEncoder: decode directly
// from a reader without materializing the encoded form first.
type StreamDecoder interface {
	DecodeFrom(r io.Reader) (any, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Serializer)
)

// Register makes a serializer available by its ID, replacing any previous
// registration with the same ID.
func Register(s Serializer) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[s.ID()] = s
}

// Lookup returns the serializer registered under id.
func Lookup(id string) (Serializer, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("serial: no serializer registered with id %q", id)
	}
	return s, nil
}

// Default returns the gob serializer, the Store default.
func Default() Serializer { return gobSerializer{} }

// RegisterType makes a concrete type encodable through the default gob
// serializer. Applications must register their own payload types once
// (typically in an init function), exactly as gob.Register requires.
func RegisterType(v any) { gob.Register(v) }

// gobSerializer encodes values through an interface indirection so that the
// decoder can recover the concrete type without knowing it statically.
type gobSerializer struct{}

// GobID is the registry ID of the default serializer.
const GobID = "gob"

// RawID is the registry ID of the pass-through byte serializer.
const RawID = "raw"

// JSONID is the registry ID of the JSON serializer.
const JSONID = "json"

func (gobSerializer) ID() string { return GobID }

func (gobSerializer) Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("serial: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

func (gobSerializer) Decode(data []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, fmt.Errorf("serial: gob decode: %w", err)
	}
	return v, nil
}

// EncodeTo implements StreamEncoder.
func (gobSerializer) EncodeTo(w io.Writer, v any) error {
	if err := gob.NewEncoder(w).Encode(&v); err != nil {
		return fmt.Errorf("serial: gob encode: %w", err)
	}
	return nil
}

// DecodeFrom implements StreamDecoder.
func (gobSerializer) DecodeFrom(r io.Reader) (any, error) {
	var v any
	if err := gob.NewDecoder(r).Decode(&v); err != nil {
		return nil, fmt.Errorf("serial: gob decode: %w", err)
	}
	return v, nil
}

// rawSerializer passes []byte through untouched and converts strings. It is
// the fast path for applications that move opaque buffers (the common case
// in the paper's benchmarks).
type rawSerializer struct{}

// Raw returns the pass-through byte serializer.
func Raw() Serializer { return rawSerializer{} }

func (rawSerializer) ID() string { return RawID }

func (rawSerializer) Encode(v any) ([]byte, error) {
	switch x := v.(type) {
	case []byte:
		return x, nil
	case string:
		return []byte(x), nil
	default:
		return nil, fmt.Errorf("serial: raw serializer supports []byte and string, got %T", v)
	}
}

func (rawSerializer) Decode(data []byte) (any, error) { return data, nil }

// jsonSerializer round-trips values through encoding/json. Decoded values
// use JSON's generic shapes (map[string]any, []any, float64).
type jsonSerializer struct{}

// JSON returns the JSON serializer.
func JSON() Serializer { return jsonSerializer{} }

func (jsonSerializer) ID() string { return JSONID }

func (jsonSerializer) Encode(v any) ([]byte, error) { return json.Marshal(v) }

func (jsonSerializer) Decode(data []byte) (any, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("serial: json decode: %w", err)
	}
	return v, nil
}

// EncodeTo implements StreamEncoder.
func (jsonSerializer) EncodeTo(w io.Writer, v any) error {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("serial: json encode: %w", err)
	}
	return nil
}

// DecodeFrom implements StreamDecoder.
func (jsonSerializer) DecodeFrom(r io.Reader) (any, error) {
	var v any
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		return nil, fmt.Errorf("serial: json decode: %w", err)
	}
	return v, nil
}

func init() {
	Register(gobSerializer{})
	Register(rawSerializer{})
	Register(jsonSerializer{})

	// Pre-register common payload shapes so interface-indirected gob
	// encoding works out of the box.
	gob.Register([]byte(nil))
	gob.Register("")
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(0.0)
	gob.Register(float32(0))
	gob.Register(false)
	gob.Register([]float64(nil))
	gob.Register([]float32(nil))
	gob.Register([]int(nil))
	gob.Register([]string(nil))
	gob.Register([]any(nil))
	gob.Register(map[string]any(nil))
	gob.Register(map[string]string(nil))
	gob.Register(map[string]float64(nil))
	gob.Register(time.Time{})
}
