// Package endpoint implements PS-endpoints: in-memory object stores that
// peer with one another across sites to serve remote keys (paper §4.2.2).
//
// An endpoint serves clients over a TCP API and registers with a relay
// server. When an operation arrives for a key whose endpoint_id is not its
// own, the endpoint establishes (or reuses) a peer connection to the owning
// endpoint — an ICE-style handshake via the relay exchanging UDP candidate
// addresses, after which a reliable rudp channel carries forwarded requests
// — and proxies the operation. Mirroring the paper's single-threaded
// asyncio implementation, request processing is serialized, which is what
// produces the linear client-scaling behaviour of Figure 8.
package endpoint

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/msgnet"
	"proxystore/internal/netsim"
	"proxystore/internal/relay"
	"proxystore/internal/rudp"
)

// Op codes of the endpoint request protocol (client-to-endpoint and
// endpoint-to-endpoint share the encoding).
const (
	OpGet byte = iota + 1
	OpSet
	OpExists
	OpEvict
)

// request is a client or peer operation.
type request struct {
	Op       byte
	Endpoint string // owning endpoint UUID; "" means "this endpoint"
	ObjectID string
	Data     []byte
	Seq      uint64 // peer-forwarding correlation id
}

// response answers a request.
type response struct {
	OK    bool // for exists; true on success otherwise
	Found bool
	Data  []byte
	Err   string
	Seq   uint64
}

// Peer-channel frame type bytes: the bidirectional rudp channel carries
// both forwarded requests and their responses.
const (
	peerFrameRequest  byte = 'Q'
	peerFrameResponse byte = 'R'
)

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("endpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Options configure an Endpoint.
type Options struct {
	// UUID is the endpoint's identity; empty asks the relay to assign one.
	UUID string
	// Site is the endpoint's netsim site, used to shape peer channels.
	Site string
	// Net is the network model; nil disables shaping.
	Net *netsim.Network
	// NewCC builds the congestion controller for each peer channel
	// (default: the conservative fixed window modelling aiortc).
	NewCC func() rudp.CongestionControl
	// RequestCost adds fixed processing time per request, modelling the
	// single-threaded event loop's per-request work. Zero disables it.
	RequestCost time.Duration
}

// BBRCC builds a BBR-like congestion controller for peer channels — the
// alternative the paper suggests (faster congestion control like Google's
// BBR) to the default aiortc-like fixed window. The window is capped near
// the loopback UDP socket buffer so probing does not overflow the kernel
// queue and trigger retransmission storms.
func BBRCC() rudp.CongestionControl { return rudp.NewBBRLike(192 << 10) }

// Endpoint is a running PS-endpoint.
type Endpoint struct {
	opts  Options
	uuid  string
	relay *relay.Client
	api   *msgnet.Server

	storeMu sync.RWMutex
	store   map[string][]byte

	// serial serializes request processing (single-threaded model).
	serial sync.Mutex

	peersMu sync.Mutex
	peers   map[string]*peerConn

	seq      atomic.Uint64
	pendMu   sync.Mutex
	pending  map[uint64]chan response
	requests atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type peerConn struct {
	ch   *rudp.Channel
	once sync.Once
}

// Start launches an endpoint: it binds a client API on apiAddr (e.g.
// "127.0.0.1:0"), connects to the relay at relayAddr, and begins listening
// for peering requests.
func Start(apiAddr, relayAddr string, opts Options) (*Endpoint, error) {
	if opts.NewCC == nil {
		opts.NewCC = func() rudp.CongestionControl { return rudp.NewFixedWindow(0) }
	}
	rc, err := relay.Dial(relayAddr, opts.UUID)
	if err != nil {
		return nil, fmt.Errorf("endpoint: connecting to relay: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &Endpoint{
		opts:    opts,
		uuid:    rc.UUID(),
		relay:   rc,
		store:   make(map[string][]byte),
		peers:   make(map[string]*peerConn),
		pending: make(map[uint64]chan response),
		ctx:     ctx,
		cancel:  cancel,
	}
	api, err := msgnet.NewServer(apiAddr, ep.handleClient)
	if err != nil {
		cancel()
		rc.Close()
		return nil, fmt.Errorf("endpoint: starting API server: %w", err)
	}
	ep.api = api
	ep.wg.Add(1)
	go ep.signalLoop()
	return ep, nil
}

// UUID returns the endpoint's identity.
func (ep *Endpoint) UUID() string { return ep.uuid }

// Addr returns the client API address.
func (ep *Endpoint) Addr() string { return ep.api.Addr() }

// Requests returns the number of requests processed (client and peer).
func (ep *Endpoint) Requests() uint64 { return ep.requests.Load() }

// Len returns the number of locally stored objects.
func (ep *Endpoint) Len() int {
	ep.storeMu.RLock()
	defer ep.storeMu.RUnlock()
	return len(ep.store)
}

// Close stops the endpoint, its peer channels, and its relay registration.
func (ep *Endpoint) Close() error {
	ep.cancel()
	err := ep.api.Close()
	ep.relay.Close()
	ep.peersMu.Lock()
	for _, pc := range ep.peers {
		pc.ch.Close()
	}
	ep.peers = make(map[string]*peerConn)
	ep.peersMu.Unlock()
	ep.wg.Wait()
	return err
}

// --- Local store ------------------------------------------------------------

func (ep *Endpoint) localExec(req request) response {
	// Serialize processing like the paper's single-threaded event loop.
	ep.serial.Lock()
	if ep.opts.RequestCost > 0 {
		time.Sleep(ep.opts.RequestCost)
	}
	ep.requests.Add(1)
	defer ep.serial.Unlock()

	switch req.Op {
	case OpSet:
		buf := make([]byte, len(req.Data))
		copy(buf, req.Data)
		ep.storeMu.Lock()
		ep.store[req.ObjectID] = buf
		ep.storeMu.Unlock()
		return response{OK: true}
	case OpGet:
		ep.storeMu.RLock()
		data, ok := ep.store[req.ObjectID]
		ep.storeMu.RUnlock()
		if !ok {
			return response{OK: true, Found: false}
		}
		return response{OK: true, Found: true, Data: data}
	case OpExists:
		ep.storeMu.RLock()
		_, ok := ep.store[req.ObjectID]
		ep.storeMu.RUnlock()
		return response{OK: true, Found: ok}
	case OpEvict:
		ep.storeMu.Lock()
		delete(ep.store, req.ObjectID)
		ep.storeMu.Unlock()
		return response{OK: true}
	default:
		return response{Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// --- Client API -------------------------------------------------------------

func (ep *Endpoint) handleClient(ctx context.Context, raw []byte) ([]byte, error) {
	var req request
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&req); err != nil {
		return nil, fmt.Errorf("endpoint: bad request: %w", err)
	}
	var resp response
	if req.Endpoint == "" || req.Endpoint == ep.uuid {
		resp = ep.localExec(req)
	} else {
		resp = ep.forward(ctx, req)
	}
	return encode(resp)
}

// --- Peering ---------------------------------------------------------------

// signaling payload kinds for the ICE-style handshake.
type signalMsg struct {
	Kind      string // "offer" | "answer"
	Candidate string // UDP address candidate (host:port)
	Site      string // sender's netsim site, for link shaping
}

// forward proxies a request to the owning endpoint over a peer channel.
func (ep *Endpoint) forward(ctx context.Context, req request) response {
	pc, err := ep.peer(ctx, req.Endpoint)
	if err != nil {
		return response{Err: fmt.Sprintf("peering with %s: %v", req.Endpoint, err)}
	}
	seq := ep.seq.Add(1)
	req.Seq = seq
	raw, err := encode(req)
	if err != nil {
		return response{Err: err.Error()}
	}
	raw = append([]byte{peerFrameRequest}, raw...)
	ch := make(chan response, 1)
	ep.pendMu.Lock()
	ep.pending[seq] = ch
	ep.pendMu.Unlock()
	defer func() {
		ep.pendMu.Lock()
		delete(ep.pending, seq)
		ep.pendMu.Unlock()
	}()
	if err := pc.ch.Send(ctx, raw); err != nil {
		return response{Err: fmt.Sprintf("peer send: %v", err)}
	}
	select {
	case resp := <-ch:
		return resp
	case <-ctx.Done():
		return response{Err: ctx.Err().Error()}
	case <-ep.ctx.Done():
		return response{Err: "endpoint shutting down"}
	}
}

// peer returns the established channel to target, initiating the handshake
// if needed. Connections are kept until one endpoint stops (paper §4.2.2).
func (ep *Endpoint) peer(ctx context.Context, target string) (*peerConn, error) {
	ep.peersMu.Lock()
	if pc, ok := ep.peers[target]; ok {
		ep.peersMu.Unlock()
		return pc, nil
	}
	ep.peersMu.Unlock()

	// Gather a local candidate: bind a UDP socket (the "hole punch").
	pipe, err := rudp.NewUDPPipe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	offer, err := encode(signalMsg{Kind: "offer", Candidate: pipe.LocalAddr(), Site: ep.opts.Site})
	if err != nil {
		pipe.Close()
		return nil, err
	}
	if err := ep.relay.Forward(target, offer); err != nil {
		pipe.Close()
		return nil, err
	}

	// Await the answer, delivered via the signal loop.
	answerCh := make(chan signalMsg, 1)
	ep.pendAnswer(target, answerCh)
	select {
	case ans := <-answerCh:
		if err := pipe.SetPeer(ans.Candidate); err != nil {
			pipe.Close()
			return nil, err
		}
		return ep.installPeer(target, pipe, ans.Site), nil
	case <-time.After(10 * time.Second):
		pipe.Close()
		return nil, fmt.Errorf("endpoint: handshake with %s timed out", target)
	case <-ctx.Done():
		pipe.Close()
		return nil, ctx.Err()
	}
}

var answerWaiters sync.Map // uuid(self)+target -> chan signalMsg

func (ep *Endpoint) pendAnswer(target string, ch chan signalMsg) {
	answerWaiters.Store(ep.uuid+"/"+target, ch)
}

func (ep *Endpoint) installPeer(target string, pipe rudp.Pipe, peerSite string) *peerConn {
	shaped := pipe
	if ep.opts.Net != nil && ep.opts.Site != "" && peerSite != "" {
		shaped = rudp.Shape(pipe, ep.opts.Net, ep.opts.Site, peerSite, 0)
	}
	pc := &peerConn{ch: rudp.NewChannel(shaped, ep.opts.NewCC())}
	ep.peersMu.Lock()
	if existing, ok := ep.peers[target]; ok {
		ep.peersMu.Unlock()
		pc.ch.Close()
		return existing
	}
	ep.peers[target] = pc
	ep.peersMu.Unlock()
	ep.wg.Add(1)
	go ep.peerLoop(pc)
	return pc
}

// peerLoop serves requests and dispatches responses on one peer channel.
func (ep *Endpoint) peerLoop(pc *peerConn) {
	defer ep.wg.Done()
	for {
		raw, err := pc.ch.Recv(ep.ctx)
		if err != nil {
			return
		}
		if len(raw) < 1 {
			continue
		}
		kind, body := raw[0], raw[1:]
		switch kind {
		case peerFrameResponse:
			var resp response
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&resp); err != nil {
				continue
			}
			ep.pendMu.Lock()
			ch, ok := ep.pending[resp.Seq]
			ep.pendMu.Unlock()
			if ok {
				ch <- resp
			}
		case peerFrameRequest:
			var req request
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
				continue
			}
			go func(req request) {
				resp := ep.localExec(req)
				resp.Seq = req.Seq
				if out, err := encode(resp); err == nil {
					pc.ch.Send(ep.ctx, append([]byte{peerFrameResponse}, out...))
				}
			}(req)
		}
	}
}

// signalLoop answers peering offers arriving via the relay.
func (ep *Endpoint) signalLoop() {
	defer ep.wg.Done()
	for {
		sig, err := ep.relay.Recv(ep.ctx)
		if err != nil {
			return
		}
		var m signalMsg
		if err := gob.NewDecoder(bytes.NewReader(sig.Payload)).Decode(&m); err != nil {
			continue
		}
		switch m.Kind {
		case "offer":
			pipe, err := rudp.NewUDPPipe("127.0.0.1:0")
			if err != nil {
				continue
			}
			if err := pipe.SetPeer(m.Candidate); err != nil {
				pipe.Close()
				continue
			}
			answer, err := encode(signalMsg{Kind: "answer", Candidate: pipe.LocalAddr(), Site: ep.opts.Site})
			if err != nil {
				pipe.Close()
				continue
			}
			if err := ep.relay.Forward(sig.From, answer); err != nil {
				pipe.Close()
				continue
			}
			ep.installPeer(sig.From, pipe, m.Site)
		case "answer":
			if ch, ok := answerWaiters.LoadAndDelete(ep.uuid + "/" + sig.From); ok {
				ch.(chan signalMsg) <- m
			}
		}
	}
}
