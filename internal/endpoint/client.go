package endpoint

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"proxystore/internal/msgnet"
	"proxystore/internal/netsim"
)

// Client talks to a (usually site-local) PS-endpoint over its TCP API.
// Operations on keys owned by other endpoints are forwarded server-side
// over peer connections, so the client never needs cross-site reachability.
//
// A Client is safe for concurrent use.
type Client struct {
	c *msgnet.Client
}

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	net        *netsim.Network
	clientSite string
	epSite     string
}

// WithClientNetwork shapes client-to-endpoint traffic with a netsim link.
func WithClientNetwork(n *netsim.Network, clientSite, epSite string) ClientOption {
	return func(c *clientConfig) {
		c.net = n
		c.clientSite = clientSite
		c.epSite = epSite
	}
}

// NewClient returns a client for the endpoint API at apiAddr.
func NewClient(apiAddr string, opts ...ClientOption) *Client {
	var cfg clientConfig
	for _, o := range opts {
		o(&cfg)
	}
	var mopts []msgnet.ClientOption
	if cfg.net != nil {
		mopts = append(mopts, msgnet.WithClientNetwork(cfg.net, cfg.clientSite, cfg.epSite))
	}
	return &Client{c: msgnet.NewClient(apiAddr, mopts...)}
}

// Close drops the client's connections.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) do(ctx context.Context, req request) (response, error) {
	raw, err := encode(req)
	if err != nil {
		return response{}, err
	}
	out, err := c.c.Request(ctx, raw)
	if err != nil {
		return response{}, err
	}
	var resp response
	if err := gob.NewDecoder(bytes.NewReader(out)).Decode(&resp); err != nil {
		return response{}, fmt.Errorf("endpoint: decoding response: %w", err)
	}
	if resp.Err != "" {
		return response{}, fmt.Errorf("endpoint: %s", resp.Err)
	}
	return resp, nil
}

// Set stores data under objectID on the connected endpoint.
func (c *Client) Set(ctx context.Context, objectID string, data []byte) error {
	_, err := c.do(ctx, request{Op: OpSet, ObjectID: objectID, Data: data})
	return err
}

// Get fetches objectID from the endpoint owning it (endpointID); the
// connected endpoint forwards over a peer connection when it is not the
// owner.
func (c *Client) Get(ctx context.Context, endpointID, objectID string) ([]byte, bool, error) {
	resp, err := c.do(ctx, request{Op: OpGet, Endpoint: endpointID, ObjectID: objectID})
	if err != nil {
		return nil, false, err
	}
	return resp.Data, resp.Found, nil
}

// Exists reports whether objectID exists on the owning endpoint.
func (c *Client) Exists(ctx context.Context, endpointID, objectID string) (bool, error) {
	resp, err := c.do(ctx, request{Op: OpExists, Endpoint: endpointID, ObjectID: objectID})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// Evict removes objectID from the owning endpoint.
func (c *Client) Evict(ctx context.Context, endpointID, objectID string) error {
	_, err := c.do(ctx, request{Op: OpEvict, Endpoint: endpointID, ObjectID: objectID})
	return err
}
