package endpoint

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxystore/internal/netsim"
	"proxystore/internal/relay"
	"proxystore/internal/rudp"
)

func newRelay(t *testing.T) *relay.Server {
	t.Helper()
	s, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("relay.NewServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func startEndpoint(t *testing.T, relayAddr string, opts Options) *Endpoint {
	t.Helper()
	ep, err := Start("127.0.0.1:0", relayAddr, opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

func TestLocalSetGet(t *testing.T) {
	r := newRelay(t)
	ep := startEndpoint(t, r.Addr(), Options{UUID: "local-ep"})
	cli := NewClient(ep.Addr())
	defer cli.Close()

	ctx := context.Background()
	if err := cli.Set(ctx, "obj1", []byte("local object")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	data, found, err := cli.Get(ctx, "local-ep", "obj1")
	if err != nil || !found {
		t.Fatalf("Get = %v, %v, %v", data, found, err)
	}
	if string(data) != "local object" {
		t.Fatalf("Get = %q", data)
	}
}

func TestGetMissingObject(t *testing.T) {
	r := newRelay(t)
	ep := startEndpoint(t, r.Addr(), Options{UUID: "miss-ep"})
	cli := NewClient(ep.Addr())
	defer cli.Close()
	_, found, err := cli.Get(context.Background(), "miss-ep", "ghost")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if found {
		t.Fatal("found a missing object")
	}
}

func TestExistsEvictLifecycle(t *testing.T) {
	r := newRelay(t)
	ep := startEndpoint(t, r.Addr(), Options{UUID: "lifecycle-ep"})
	cli := NewClient(ep.Addr())
	defer cli.Close()
	ctx := context.Background()

	cli.Set(ctx, "k", []byte("v"))
	ok, err := cli.Exists(ctx, "lifecycle-ep", "k")
	if err != nil || !ok {
		t.Fatalf("Exists = %v, %v", ok, err)
	}
	if err := cli.Evict(ctx, "lifecycle-ep", "k"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	ok, _ = cli.Exists(ctx, "lifecycle-ep", "k")
	if ok {
		t.Fatal("object survived evict")
	}
	if ep.Len() != 0 {
		t.Fatalf("endpoint holds %d objects", ep.Len())
	}
}

func TestPeerForwarding(t *testing.T) {
	// The paper's Figure 3 flow: producer stores on endpoint A; consumer
	// asks its local endpoint B, which peers with A and forwards the get.
	r := newRelay(t)
	epA := startEndpoint(t, r.Addr(), Options{UUID: "ep-a"})
	epB := startEndpoint(t, r.Addr(), Options{UUID: "ep-b"})

	producer := NewClient(epA.Addr())
	defer producer.Close()
	consumer := NewClient(epB.Addr())
	defer consumer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	payload := bytes.Repeat([]byte("xyz"), 1000)
	if err := producer.Set(ctx, "shared-obj", payload); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, found, err := consumer.Get(ctx, "ep-a", "shared-obj")
	if err != nil {
		t.Fatalf("forwarded Get: %v", err)
	}
	if !found {
		t.Fatal("forwarded Get did not find the object")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("forwarded object corrupted")
	}
}

func TestPeerConnectionReuse(t *testing.T) {
	r := newRelay(t)
	epA := startEndpoint(t, r.Addr(), Options{UUID: "reuse-a"})
	epB := startEndpoint(t, r.Addr(), Options{UUID: "reuse-b"})
	_ = epA

	producer := NewClient(epA.Addr())
	defer producer.Close()
	consumer := NewClient(epB.Addr())
	defer consumer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("obj-%d", i)
		if err := producer.Set(ctx, id, []byte(id)); err != nil {
			t.Fatalf("Set: %v", err)
		}
		got, found, err := consumer.Get(ctx, "reuse-a", id)
		if err != nil || !found || string(got) != id {
			t.Fatalf("Get %s = %q, %v, %v", id, got, found, err)
		}
	}
	// Exactly one handshake (offer + answer) should have crossed the relay.
	if f := r.Forwarded(); f > 2 {
		t.Fatalf("relay forwarded %d messages; peer connection not reused", f)
	}
}

func TestPeerForwardingWithShapedLink(t *testing.T) {
	n := netsim.New(10)
	n.AddSite("siteA", true)
	n.AddSite("siteB", true)
	n.SetLink("siteA", "siteB", netsim.Link{Latency: 10 * time.Millisecond, Bandwidth: 100e6, UDPBandwidth: 50e6})

	r := newRelay(t)
	epA := startEndpoint(t, r.Addr(), Options{UUID: "wan-a", Site: "siteA", Net: n,
		NewCC: func() rudp.CongestionControl { return rudp.NewBBRLike(0) }})
	epB := startEndpoint(t, r.Addr(), Options{UUID: "wan-b", Site: "siteB", Net: n,
		NewCC: func() rudp.CongestionControl { return rudp.NewBBRLike(0) }})

	producer := NewClient(epB.Addr())
	defer producer.Close()
	consumer := NewClient(epA.Addr())
	defer consumer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	payload := bytes.Repeat([]byte("w"), 10_000)
	if err := producer.Set(ctx, "wan-obj", payload); err != nil {
		t.Fatalf("Set: %v", err)
	}

	// Local get on B has no WAN in the path; the forwarded get from A must
	// pay at least one shaped round trip (scaled 10ms/10 = 1ms each way).
	start := time.Now()
	got, found, err := consumer.Get(ctx, "wan-b", "wan-obj")
	wan := time.Since(start)
	if err != nil || !found {
		t.Fatalf("forwarded Get = %v, %v", found, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("forwarded object corrupted")
	}
	if wan < 2*time.Millisecond {
		t.Fatalf("forwarded WAN get took %v, want >= 2ms of shaped latency", wan)
	}
}

func TestConcurrentClientsSerialize(t *testing.T) {
	// With a fixed per-request cost, N concurrent clients see ~N*cost
	// average latency (Figure 8's linear scaling).
	r := newRelay(t)
	cost := 2 * time.Millisecond
	ep := startEndpoint(t, r.Addr(), Options{UUID: "serial-ep", RequestCost: cost})

	measure := func(clients int) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		const perClient = 5
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cli := NewClient(ep.Addr())
				defer cli.Close()
				ctx := context.Background()
				for j := 0; j < perClient; j++ {
					cli.Set(ctx, fmt.Sprintf("c%d-%d", i, j), []byte("x"))
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start) / perClient
	}

	one := measure(1)
	eight := measure(8)
	if eight < 4*one {
		t.Fatalf("8 clients (%v per op) should be ~8x slower than 1 client (%v per op)", eight, one)
	}
}
