package rudp

import (
	"sync"
	"time"
)

// CongestionControl governs how many bytes a Channel may keep in flight.
// Implementations need not be safe for concurrent use; the Channel
// serializes calls.
type CongestionControl interface {
	// Name identifies the controller in logs and benchmarks.
	Name() string
	// Window returns the allowed bytes in flight.
	Window() int
	// OnAck reports newly acknowledged bytes and a round-trip sample.
	OnAck(bytes int, rtt time.Duration)
	// OnLoss reports a retransmission timeout.
	OnLoss()
}

// FixedWindow is a conservative controller with a small constant window,
// modelling aiortc's slow congestion control: on a long-fat link the
// throughput ceiling is window/RTT regardless of available bandwidth —
// the paper measured ~80 Mbps between Frontera and Theta (§5.3.2).
type FixedWindow struct {
	// Bytes is the constant window size.
	Bytes int
}

// NewFixedWindow returns a fixed controller; 64 KiB when bytes <= 0
// (roughly aiortc's effective window in the paper's measurements).
func NewFixedWindow(bytes int) *FixedWindow {
	if bytes <= 0 {
		bytes = 64 << 10
	}
	return &FixedWindow{Bytes: bytes}
}

// Name implements CongestionControl.
func (f *FixedWindow) Name() string { return "fixed" }

// Window implements CongestionControl.
func (f *FixedWindow) Window() int { return f.Bytes }

// OnAck implements CongestionControl.
func (f *FixedWindow) OnAck(int, time.Duration) {}

// OnLoss implements CongestionControl.
func (f *FixedWindow) OnLoss() {}

// BBRLike grows its window toward the estimated bandwidth-delay product:
// it tracks the minimum RTT and maximum delivery rate and sets the window
// to a gain over their product, probing upward while acks keep arriving.
// Loss backs the window off modestly (BBR is not loss-based, but repeated
// timeouts indicate real trouble).
type BBRLike struct {
	window   int
	minRTT   time.Duration
	maxRate  float64 // bytes per second
	maxBytes int
}

// NewBBRLike returns a BBR-ish controller with the given window cap
// (64 MiB when maxBytes <= 0).
func NewBBRLike(maxBytes int) *BBRLike {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &BBRLike{window: 32 << 10, maxBytes: maxBytes}
}

// Name implements CongestionControl.
func (b *BBRLike) Name() string { return "bbr" }

// Window implements CongestionControl.
func (b *BBRLike) Window() int { return b.window }

// OnAck implements CongestionControl.
func (b *BBRLike) OnAck(bytes int, rtt time.Duration) {
	if rtt > 0 && (b.minRTT == 0 || rtt < b.minRTT) {
		b.minRTT = rtt
	}
	if rtt > 0 {
		rate := float64(bytes) / rtt.Seconds()
		if rate > b.maxRate {
			b.maxRate = rate
		}
	}
	// Pace toward 2x the estimated BDP, but never shrink below the probe
	// floor and always keep probing upward a little.
	if b.minRTT > 0 && b.maxRate > 0 {
		bdp := int(b.maxRate * b.minRTT.Seconds())
		target := 2 * bdp
		if target > b.window {
			b.window = target
		}
	}
	b.window += bytes // slow-start-ish growth while acks flow
	if b.window > b.maxBytes {
		b.window = b.maxBytes
	}
}

// OnLoss implements CongestionControl.
func (b *BBRLike) OnLoss() {
	b.window = b.window * 8 / 10
	if b.window < 16<<10 {
		b.window = 16 << 10
	}
	// A timeout invalidates the delivery-rate ceiling estimate a bit.
	b.maxRate *= 0.9
}

// lockedCC wraps a controller for the Channel's concurrent paths.
type lockedCC struct {
	mu sync.Mutex
	cc CongestionControl
}

func (l *lockedCC) Window() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cc.Window()
}

func (l *lockedCC) OnAck(bytes int, rtt time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cc.OnAck(bytes, rtt)
}

func (l *lockedCC) OnLoss() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cc.OnLoss()
}
