// Package rudp implements a reliable message channel over unreliable
// datagrams — the stand-in for WebRTC RTCDataChannels (SCTP over DTLS) that
// PS-endpoints use for peer-to-peer transfer (paper §4.2.2).
//
// The channel provides sequencing, cumulative acknowledgement, timeout
// retransmission, fragmentation/reassembly, and pluggable congestion
// control. Two controllers are provided: a conservative fixed-window
// controller modelled on aiortc (whose inability to fill long-fat pipes the
// paper measures in §5.3.2) and a BBR-like controller that grows to the
// bandwidth-delay product. Datagrams travel over a Pipe; SimPipe applies a
// netsim link's latency, UDP throttle, and loss so WAN behaviour is
// reproducible in-process, and UDPPipe runs over real sockets.
package rudp

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"proxystore/internal/netsim"
)

// Pipe is an unreliable, unordered datagram transport.
type Pipe interface {
	// Send transmits one datagram; datagrams may be dropped or reordered.
	Send(pkt []byte) error
	// Recv blocks for the next datagram.
	Recv(ctx context.Context) ([]byte, error)
	// Close releases the transport.
	Close() error
}

// --- Simulated pipe --------------------------------------------------------

// SimPipe is an in-process datagram link shaped by a netsim link: each
// datagram pays latency plus serialization at the link's UDP bandwidth and
// may be dropped with the link's loss rate.
type SimPipe struct {
	peer *SimPipe

	net      *netsim.Network
	src, dst string

	mu     sync.Mutex
	rng    *rand.Rand
	inbox  chan []byte
	closed bool
}

// NewSimPipePair returns connected pipe ends between two sites. seed makes
// loss reproducible.
func NewSimPipePair(n *netsim.Network, siteA, siteB string, seed int64) (*SimPipe, *SimPipe) {
	a := &SimPipe{net: n, src: siteA, dst: siteB, inbox: make(chan []byte, 4096), rng: rand.New(rand.NewSource(seed))}
	b := &SimPipe{net: n, src: siteB, dst: siteA, inbox: make(chan []byte, 4096), rng: rand.New(rand.NewSource(seed + 1))}
	a.peer = b
	b.peer = a
	return a, b
}

// Send implements Pipe. Delivery is asynchronous after the modeled delay.
func (p *SimPipe) Send(pkt []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("rudp: pipe closed")
	}
	drop := false
	if l, ok := p.net.LinkBetween(p.src, p.dst); ok && l.LossRate > 0 {
		drop = p.rng.Float64() < l.LossRate
	}
	p.mu.Unlock()
	if drop {
		return nil // lost in flight
	}
	buf := make([]byte, len(pkt))
	copy(buf, pkt)
	delay := p.net.UDPTransferTime(p.src, p.dst, len(pkt))
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		p.peer.deliver(buf)
	}()
	return nil
}

func (p *SimPipe) deliver(pkt []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	select {
	case p.inbox <- pkt:
	default: // full queue models router drop
	}
}

// Recv implements Pipe.
func (p *SimPipe) Recv(ctx context.Context) ([]byte, error) {
	select {
	case pkt, ok := <-p.inbox:
		if !ok {
			return nil, fmt.Errorf("rudp: pipe closed")
		}
		return pkt, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close implements Pipe.
func (p *SimPipe) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.inbox)
	}
	return nil
}

// --- Real UDP pipe ---------------------------------------------------------

// UDPPipe sends datagrams over a real UDP socket to a fixed peer.
type UDPPipe struct {
	conn *net.UDPConn
	peer *net.UDPAddr
}

// NewUDPPipe binds a local UDP socket; SetPeer must be called before Send.
func NewUDPPipe(localAddr string) (*UDPPipe, error) {
	addr, err := net.ResolveUDPAddr("udp", localAddr)
	if err != nil {
		return nil, fmt.Errorf("rudp: resolving %q: %w", localAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rudp: binding %q: %w", localAddr, err)
	}
	// Large socket buffers absorb window-sized bursts; without them the
	// kernel queue drops packets long before the modeled link would.
	conn.SetReadBuffer(8 << 20)
	conn.SetWriteBuffer(8 << 20)
	return &UDPPipe{conn: conn}, nil
}

// LocalAddr returns the bound address.
func (p *UDPPipe) LocalAddr() string { return p.conn.LocalAddr().String() }

// SetPeer fixes the remote address datagrams are sent to.
func (p *UDPPipe) SetPeer(addr string) error {
	peer, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("rudp: resolving peer %q: %w", addr, err)
	}
	p.peer = peer
	return nil
}

// Send implements Pipe.
func (p *UDPPipe) Send(pkt []byte) error {
	if p.peer == nil {
		return fmt.Errorf("rudp: peer not set")
	}
	_, err := p.conn.WriteToUDP(pkt, p.peer)
	return err
}

// Recv implements Pipe.
func (p *UDPPipe) Recv(ctx context.Context) ([]byte, error) {
	buf := make([]byte, 64<<10)
	if deadline, ok := ctx.Deadline(); ok {
		p.conn.SetReadDeadline(deadline)
	} else {
		p.conn.SetReadDeadline(time.Time{})
	}
	n, _, err := p.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Close implements Pipe.
func (p *UDPPipe) Close() error { return p.conn.Close() }
