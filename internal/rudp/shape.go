package rudp

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"proxystore/internal/netsim"
)

// ShapedPipe wraps another Pipe and applies a netsim link's one-way
// latency, UDP throttle, and loss rate to sent datagrams. It lets real
// UDP sockets on loopback behave like a WAN path: the endpoint peering
// experiments shape their hole-punched connections this way.
type ShapedPipe struct {
	inner Pipe
	net   *netsim.Network
	src   string
	dst   string

	mu sync.Mutex
	// lastDeparture serializes the link: bandwidth is a shared resource,
	// so a packet cannot start transmitting before the previous one left.
	lastDeparture time.Time
	rng           *rand.Rand
}

// Shape wraps inner with the link model from src to dst. A zero seed
// derives one from the clock.
func Shape(inner Pipe, n *netsim.Network, src, dst string, seed int64) *ShapedPipe {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &ShapedPipe{inner: inner, net: n, src: src, dst: dst, rng: rand.New(rand.NewSource(seed))}
}

// Send implements Pipe: the datagram is dropped with the link's loss rate
// or delivered to the inner pipe after the modeled one-way delay.
func (p *ShapedPipe) Send(pkt []byte) error {
	l, hasLink := p.net.LinkBetween(p.src, p.dst)
	if hasLink && l.LossRate > 0 {
		p.mu.Lock()
		drop := p.rng.Float64() < l.LossRate
		p.mu.Unlock()
		if drop {
			return nil
		}
	}
	// Serialization time occupies the link; propagation overlaps.
	serialization := p.net.UDPTransferTime(p.src, p.dst, len(pkt)) - p.net.UDPTransferTime(p.src, p.dst, 0)
	propagation := p.net.UDPTransferTime(p.src, p.dst, 0)

	p.mu.Lock()
	now := time.Now()
	start := p.lastDeparture
	if start.Before(now) {
		start = now
	}
	departure := start.Add(serialization)
	p.lastDeparture = departure
	p.mu.Unlock()

	delay := departure.Add(propagation).Sub(now)
	if delay <= 0 {
		return p.inner.Send(pkt)
	}
	buf := make([]byte, len(pkt))
	copy(buf, pkt)
	go func() {
		time.Sleep(delay)
		p.inner.Send(buf)
	}()
	return nil
}

// Recv implements Pipe.
func (p *ShapedPipe) Recv(ctx context.Context) ([]byte, error) { return p.inner.Recv(ctx) }

// Close implements Pipe.
func (p *ShapedPipe) Close() error { return p.inner.Close() }
