package rudp

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"proxystore/internal/netsim"
)

// lanNet is a low-latency, high-bandwidth, lossless link.
func lanNet() *netsim.Network {
	n := netsim.New(1)
	n.AddSite("a", true)
	n.AddSite("b", true)
	n.SetLink("a", "b", netsim.Link{Latency: 200 * time.Microsecond, Bandwidth: 1e9})
	return n
}

// wanNet is a long-fat lossy link with a UDP throttle.
func wanNet(loss float64) *netsim.Network {
	n := netsim.New(10)
	n.AddSite("a", true)
	n.AddSite("b", true)
	n.SetLink("a", "b", netsim.Link{
		Latency: 18 * time.Millisecond, Bandwidth: 250e6, UDPBandwidth: 100e6, LossRate: loss,
	})
	return n
}

func newChannelPair(n *netsim.Network, ccA, ccB CongestionControl) (*Channel, *Channel) {
	pa, pb := NewSimPipePair(n, "a", "b", 42)
	return NewChannel(pa, ccA), NewChannel(pb, ccB)
}

func TestSendRecvSmallMessage(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	if err := a.Send(ctx, []byte("hello rudp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(got) != "hello rudp" {
		t.Fatalf("Recv = %q", got)
	}
}

func TestEmptyMessage(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	if err := a.Send(ctx, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Recv = %d bytes, want 0", len(got))
	}
}

func TestMultiSegmentMessage(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	msg := make([]byte, 10*MTU+37)
	for i := range msg {
		msg[i] = byte(i * 11)
	}
	if err := a.Send(ctx, msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("multi-segment message corrupted")
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := a.Send(ctx, []byte(fmt.Sprintf("msg-%02d", i))); err != nil {
			t.Fatalf("Send #%d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv #%d: %v", i, err)
		}
		if string(got) != fmt.Sprintf("msg-%02d", i) {
			t.Fatalf("Recv #%d = %q", i, got)
		}
	}
}

func TestBidirectional(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	if err := a.Send(ctx, []byte("ping")); err != nil {
		t.Fatalf("a.Send: %v", err)
	}
	if msg, err := b.Recv(ctx); err != nil || string(msg) != "ping" {
		t.Fatalf("b.Recv = %q, %v", msg, err)
	}
	if err := b.Send(ctx, []byte("pong")); err != nil {
		t.Fatalf("b.Send: %v", err)
	}
	if msg, err := a.Recv(ctx); err != nil || string(msg) != "pong" {
		t.Fatalf("a.Recv = %q, %v", msg, err)
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	a, b := newChannelPair(wanNet(0.05), NewBBRLike(0), NewBBRLike(0))
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	msg := make([]byte, 64<<10)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	if err := a.Send(ctx, msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted under loss")
	}
	if a.Stats().Retransmits == 0 {
		t.Log("note: no retransmits observed despite 5% loss (unlikely but possible)")
	}
}

func TestBBROutperformsFixedWindowOnLongFatLink(t *testing.T) {
	// The §5.3.2 result: aiortc's conservative window cannot fill a
	// long-fat pipe, while BBR-like control approaches the UDP throttle.
	transfer := func(cc func() CongestionControl) time.Duration {
		n := wanNet(0)
		pa, pb := NewSimPipePair(n, "a", "b", 7)
		a := NewChannel(pa, cc())
		b := NewChannel(pb, cc())
		defer a.Close()
		defer b.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		msg := make([]byte, 1<<20)
		start := time.Now()
		if err := a.Send(ctx, msg); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if _, err := b.Recv(ctx); err != nil {
			t.Fatalf("Recv: %v", err)
		}
		return time.Since(start)
	}

	fixed := transfer(func() CongestionControl { return NewFixedWindow(64 << 10) })
	bbr := transfer(func() CongestionControl { return NewBBRLike(0) })
	if bbr >= fixed {
		t.Fatalf("BBR-like (%v) should beat fixed window (%v) on a long-fat link", bbr, fixed)
	}
	if fixed < 2*bbr {
		t.Logf("warning: fixed window (%v) only modestly slower than BBR (%v)", fixed, bbr)
	}
}

func TestChannelStats(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	a.Send(ctx, []byte("counted"))
	b.Recv(ctx)
	if s := a.Stats(); s.MsgsSent != 1 || s.BytesSent == 0 {
		t.Fatalf("sender stats = %+v", s)
	}
	if s := b.Stats(); s.MsgsReceived != 1 {
		t.Fatalf("receiver stats = %+v", s)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	a, b := newChannelPair(lanNet(), nil, nil)
	defer a.Close()
	errCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := b.Recv(ctx)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv returned nil after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
}

func TestUDPPipeRealSockets(t *testing.T) {
	pa, err := NewUDPPipe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewUDPPipe: %v", err)
	}
	pb, err := NewUDPPipe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewUDPPipe: %v", err)
	}
	pa.SetPeer(pb.LocalAddr())
	pb.SetPeer(pa.LocalAddr())

	a := NewChannel(pa, nil)
	b := NewChannel(pb, nil)
	defer a.Close()
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	msg := make([]byte, 100<<10)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	if err := a.Send(ctx, msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted over real UDP")
	}
}
