package rudp

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MTU is the datagram payload size. 1200 bytes keeps simulated packets
// under typical path MTUs, matching WebRTC practice.
const MTU = 1200

// Packet layout: flags(1) seq(4) payload. ACK packets: flags(1) ackSeq(4),
// where ackSeq is the next expected sequence number (cumulative ack).
const (
	flagData byte = 1
	flagAck  byte = 2
)

const headerLen = 5

// Stats counts channel activity.
type Stats struct {
	// BytesSent counts payload bytes given to the pipe, including
	// retransmissions.
	BytesSent uint64
	// MsgsSent and MsgsReceived count whole messages.
	MsgsSent     uint64
	MsgsReceived uint64
	// Retransmits counts timeout-triggered resends.
	Retransmits uint64
}

// Channel is a reliable, ordered message channel over a Pipe.
//
// A Channel is safe for concurrent use, though message interleaving across
// concurrent Sends is not defined.
type Channel struct {
	pipe Pipe
	cc   *lockedCC

	// Sender state.
	sendMu    sync.Mutex
	nextSeq   uint32
	inFlight  map[uint32]*segment
	flightLen int // bytes currently in flight
	sendCond  *sync.Cond

	// Receiver state.
	recvMu   sync.Mutex
	expected uint32
	ooo      map[uint32][]byte // out-of-order segments
	stream   []byte            // contiguous byte stream pending message parse
	msgs     chan []byte

	rtoMu sync.Mutex
	srtt  time.Duration
	rto   time.Duration

	stats struct {
		bytesSent    atomic.Uint64
		msgsSent     atomic.Uint64
		msgsReceived atomic.Uint64
		retransmits  atomic.Uint64
	}

	cancel context.CancelFunc
	done   sync.WaitGroup
	closed atomic.Bool
}

type segment struct {
	seq     uint32
	payload []byte
	sentAt  time.Time
	resent  bool
}

// NewChannel starts a reliable channel over pipe with the given congestion
// controller (BBR-like with defaults when cc is nil).
func NewChannel(pipe Pipe, cc CongestionControl) *Channel {
	if cc == nil {
		cc = NewBBRLike(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := &Channel{
		pipe:     pipe,
		cc:       &lockedCC{cc: cc},
		inFlight: make(map[uint32]*segment),
		ooo:      make(map[uint32][]byte),
		msgs:     make(chan []byte, 256),
		rto:      200 * time.Millisecond,
		cancel:   cancel,
	}
	ch.sendCond = sync.NewCond(&ch.sendMu)
	ch.done.Add(2)
	go ch.recvLoop(ctx)
	go ch.retransmitLoop(ctx)
	return ch
}

// Stats returns a snapshot of channel counters.
func (ch *Channel) Stats() Stats {
	return Stats{
		BytesSent:    ch.stats.bytesSent.Load(),
		MsgsSent:     ch.stats.msgsSent.Load(),
		MsgsReceived: ch.stats.msgsReceived.Load(),
		Retransmits:  ch.stats.retransmits.Load(),
	}
}

// Close stops the channel and its pipe.
func (ch *Channel) Close() error {
	if !ch.closed.CompareAndSwap(false, true) {
		return nil
	}
	ch.cancel()
	err := ch.pipe.Close()
	ch.sendMu.Lock()
	ch.sendCond.Broadcast()
	ch.sendMu.Unlock()
	ch.done.Wait()
	// Both loops have exited; no more sends on msgs are possible.
	close(ch.msgs)
	return err
}

// Send transmits one message reliably. It blocks while the congestion
// window is full, returning when every segment has been admitted and
// transmitted at least once.
func (ch *Channel) Send(ctx context.Context, msg []byte) error {
	if ch.closed.Load() {
		return fmt.Errorf("rudp: channel closed")
	}
	// Message framing: 4-byte length then body, segmented at MTU.
	framed := make([]byte, 4+len(msg))
	binary.BigEndian.PutUint32(framed, uint32(len(msg)))
	copy(framed[4:], msg)

	for off := 0; off < len(framed); off += MTU {
		end := off + MTU
		if end > len(framed) {
			end = len(framed)
		}
		if err := ch.sendSegment(ctx, framed[off:end]); err != nil {
			return err
		}
	}
	ch.stats.msgsSent.Add(1)
	return nil
}

func (ch *Channel) sendSegment(ctx context.Context, payload []byte) error {
	ch.sendMu.Lock()
	for ch.flightLen+len(payload) > ch.cc.Window() && ch.flightLen > 0 {
		if ch.closed.Load() {
			ch.sendMu.Unlock()
			return fmt.Errorf("rudp: channel closed")
		}
		if err := ctx.Err(); err != nil {
			ch.sendMu.Unlock()
			return err
		}
		ch.sendCond.Wait()
	}
	seq := ch.nextSeq
	ch.nextSeq++
	seg := &segment{seq: seq, payload: append([]byte(nil), payload...), sentAt: time.Now()}
	ch.inFlight[seq] = seg
	ch.flightLen += len(payload)
	ch.sendMu.Unlock()

	return ch.transmit(seg)
}

func (ch *Channel) transmit(seg *segment) error {
	pkt := make([]byte, headerLen+len(seg.payload))
	pkt[0] = flagData
	binary.BigEndian.PutUint32(pkt[1:5], seg.seq)
	copy(pkt[headerLen:], seg.payload)
	ch.stats.bytesSent.Add(uint64(len(seg.payload)))
	return ch.pipe.Send(pkt)
}

// Recv blocks for the next complete message.
func (ch *Channel) Recv(ctx context.Context) ([]byte, error) {
	select {
	case msg, ok := <-ch.msgs:
		if !ok {
			return nil, fmt.Errorf("rudp: channel closed")
		}
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (ch *Channel) recvLoop(ctx context.Context) {
	defer ch.done.Done()
	for {
		pkt, err := ch.pipe.Recv(ctx)
		if err != nil {
			return
		}
		if len(pkt) < headerLen {
			continue
		}
		seq := binary.BigEndian.Uint32(pkt[1:5])
		switch pkt[0] {
		case flagData:
			ch.handleData(seq, pkt[headerLen:])
		case flagAck:
			ch.handleAck(seq)
		}
	}
}

func (ch *Channel) handleData(seq uint32, payload []byte) {
	ch.recvMu.Lock()
	if seq >= ch.expected {
		if _, dup := ch.ooo[seq]; !dup {
			buf := make([]byte, len(payload))
			copy(buf, payload)
			ch.ooo[seq] = buf
		}
		for {
			next, ok := ch.ooo[ch.expected]
			if !ok {
				break
			}
			delete(ch.ooo, ch.expected)
			ch.stream = append(ch.stream, next...)
			ch.expected++
		}
		ch.drainMessagesLocked()
	}
	ack := ch.expected
	ch.recvMu.Unlock()

	var pkt [headerLen]byte
	pkt[0] = flagAck
	binary.BigEndian.PutUint32(pkt[1:5], ack)
	ch.pipe.Send(pkt[:])
}

// drainMessagesLocked parses complete length-prefixed messages out of the
// contiguous stream. Caller holds recvMu.
func (ch *Channel) drainMessagesLocked() {
	for {
		if len(ch.stream) < 4 {
			return
		}
		n := int(binary.BigEndian.Uint32(ch.stream))
		if len(ch.stream) < 4+n {
			return
		}
		msg := make([]byte, n)
		copy(msg, ch.stream[4:4+n])
		ch.stream = ch.stream[4+n:]
		ch.stats.msgsReceived.Add(1)
		select {
		case ch.msgs <- msg:
		default:
			// Receiver not draining; drop under backpressure like a real
			// data channel with a bounded buffer would stall. Blocking here
			// would deadlock the recv loop, so we drop and rely on
			// application-level request/response semantics.
		}
	}
}

func (ch *Channel) handleAck(ackSeq uint32) {
	now := time.Now()
	var ackedBytes int
	var rttSample time.Duration

	ch.sendMu.Lock()
	for seq, seg := range ch.inFlight {
		if seq < ackSeq {
			ackedBytes += len(seg.payload)
			if !seg.resent {
				if s := now.Sub(seg.sentAt); s > rttSample {
					rttSample = s
				}
			}
			delete(ch.inFlight, seq)
		}
	}
	if ackedBytes > 0 {
		ch.flightLen -= ackedBytes
		if ch.flightLen < 0 {
			ch.flightLen = 0
		}
		ch.sendCond.Broadcast()
	}
	ch.sendMu.Unlock()

	if ackedBytes > 0 {
		ch.cc.OnAck(ackedBytes, rttSample)
	}
	if rttSample > 0 {
		ch.updateRTO(rttSample)
	}
}

func (ch *Channel) updateRTO(sample time.Duration) {
	ch.rtoMu.Lock()
	defer ch.rtoMu.Unlock()
	if ch.srtt == 0 {
		ch.srtt = sample
	} else {
		ch.srtt = (7*ch.srtt + sample) / 8
	}
	ch.rto = 2 * ch.srtt
	if ch.rto < 20*time.Millisecond {
		ch.rto = 20 * time.Millisecond
	}
	if ch.rto > 2*time.Second {
		ch.rto = 2 * time.Second
	}
}

func (ch *Channel) currentRTO() time.Duration {
	ch.rtoMu.Lock()
	defer ch.rtoMu.Unlock()
	return ch.rto
}

func (ch *Channel) retransmitLoop(ctx context.Context) {
	defer ch.done.Done()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		rto := ch.currentRTO()
		now := time.Now()
		var stale []*segment
		ch.sendMu.Lock()
		for _, seg := range ch.inFlight {
			if now.Sub(seg.sentAt) > rto {
				seg.sentAt = now
				seg.resent = true
				stale = append(stale, seg)
			}
		}
		ch.sendMu.Unlock()
		if len(stale) > 0 {
			ch.cc.OnLoss()
			ch.stats.retransmits.Add(uint64(len(stale)))
			for _, seg := range stale {
				ch.transmit(seg)
			}
		}
	}
}
