package msgnet

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"proxystore/internal/netsim"
)

func echoServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRequestReply(t *testing.T) {
	srv := echoServer(t)
	cli := NewClient(srv.Addr())
	defer cli.Close()
	got, err := cli.Request(context.Background(), []byte("ping"))
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if string(got) != "ping" {
		t.Fatalf("Request = %q", got)
	}
}

func TestHandlerErrorSurfaces(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(context.Context, []byte) ([]byte, error) {
		return nil, fmt.Errorf("handler exploded")
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	cli := NewClient(srv.Addr())
	defer cli.Close()
	_, err = cli.Request(context.Background(), []byte("x"))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("handler exploded")) {
		t.Fatalf("Request error = %v", err)
	}
}

func TestEmptyFrames(t *testing.T) {
	srv := echoServer(t)
	cli := NewClient(srv.Addr())
	defer cli.Close()
	got, err := cli.Request(context.Background(), nil)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Request = %d bytes, want 0", len(got))
	}
}

func TestLargeFrame(t *testing.T) {
	srv := echoServer(t)
	cli := NewClient(srv.Addr())
	defer cli.Close()
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i * 13)
	}
	got, err := cli.Request(context.Background(), big)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large frame corrupted")
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := echoServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := NewClient(srv.Addr())
			defer cli.Close()
			for i := 0; i < 10; i++ {
				msg := []byte(fmt.Sprintf("g%d-%d", g, i))
				got, err := cli.Request(context.Background(), msg)
				if err != nil {
					t.Errorf("Request: %v", err)
					return
				}
				if !bytes.Equal(got, msg) {
					t.Errorf("Request = %q, want %q", got, msg)
				}
			}
		}(g)
	}
	wg.Wait()
	if srv.Requests() != 80 {
		t.Fatalf("Requests = %d, want 80", srv.Requests())
	}
}

func TestClientReusesPooledConnections(t *testing.T) {
	srv := echoServer(t)
	cli := NewClient(srv.Addr())
	defer cli.Close()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := cli.Request(ctx, []byte("x")); err != nil {
			t.Fatalf("Request #%d: %v", i, err)
		}
	}
}

func TestNetworkShapedDelay(t *testing.T) {
	n := netsim.New(1)
	n.AddSite("c", true)
	n.AddSite("s", true)
	n.SetLink("c", "s", netsim.Link{Latency: 10 * time.Millisecond})
	srv := echoServer(t)
	cli := NewClient(srv.Addr(), WithClientNetwork(n, "c", "s"))
	defer cli.Close()
	start := time.Now()
	if _, err := cli.Request(context.Background(), []byte("x")); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Request took %v, want >= 20ms", elapsed)
	}
}

func TestFrameCodecProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("ReadFrame accepted oversized length prefix")
	}
}
