// Package msgnet provides framed request/reply messaging over TCP — the
// stand-in for ZeroMQ REQ/REP sockets, which the paper's ZMQConnector uses
// as a portable fallback transport (§4.1.3).
//
// Frames are 4-byte big-endian length prefixes followed by the payload.
// Clients optionally consult a netsim model so cross-site request/response
// pairs pay WAN-shaped delays even though bytes move over loopback.
package msgnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/netsim"
)

// MaxFrame bounds a single frame (1 GiB) to catch corrupted prefixes.
const MaxFrame = 1 << 30

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("msgnet: frame of %d bytes exceeds limit", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("msgnet: frame length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Handler services one request frame and returns the reply frame.
type Handler func(ctx context.Context, req []byte) ([]byte, error)

// Server answers framed requests on a TCP listener, one frame in flight per
// connection (REQ/REP discipline), many connections concurrently.
type Server struct {
	ln      net.Listener
	handler Handler
	closed  atomic.Bool
	wg      sync.WaitGroup

	requests atomic.Uint64
}

// NewServer listens on addr and serves requests with h.
func NewServer(addr string, h Handler) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("msgnet: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msgnet: listen: %w", err)
	}
	s := &Server{ln: ln, handler: h}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Requests returns the number of requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	ctx := context.Background()
	for {
		req, err := ReadFrame(r)
		if err != nil {
			return
		}
		s.requests.Add(1)
		resp, err := s.handler(ctx, req)
		if err != nil {
			// Error replies are framed with a 1-byte marker so the client
			// can distinguish handler failures from transport failures.
			resp = append([]byte{1}, []byte(err.Error())...)
		} else {
			resp = append([]byte{0}, resp...)
		}
		if err := WriteFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client issues framed requests with a small connection pool.
//
// A Client is safe for concurrent use.
type Client struct {
	addr        string
	dialTimeout time.Duration
	dialFunc    func(ctx context.Context, network, addr string) (net.Conn, error)
	tap         TapFunc

	net        *netsim.Network
	clientSite string
	serverSite string

	mu     sync.Mutex
	idle   []*poolConn
	closed bool
}

type poolConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// TapDone completes one tapped request with the reply payload (marker
// byte stripped) and error.
type TapDone func(resp []byte, err error)

// TapFunc observes the start of one request frame and returns the
// callback that completes it — the msgnet half of the record/replay wire
// tap (see internal/wiretap and the kvstore package's TapFunc).
type TapFunc func(req []byte) TapDone

// WithTap reports every Request to tap: the raw request frame at send,
// the reply payload (or error) at completion.
func WithTap(tap TapFunc) ClientOption {
	return func(c *Client) { c.tap = tap }
}

// WithDialFunc replaces the client's dialer: every connection — including
// reconnects after broken pooled connections — flows through fn. The dial
// timeout is applied as a deadline on ctx, which fn should honor.
func WithDialFunc(fn func(ctx context.Context, network, addr string) (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dialFunc = fn }
}

// WithClientNetwork attaches a netsim model; requests pay modeled transfer
// time each way.
func WithClientNetwork(n *netsim.Network, clientSite, serverSite string) ClientOption {
	return func(c *Client) {
		c.net = n
		c.clientSite = clientSite
		c.serverSite = serverSite
	}
}

// NewClient returns a client for the server at addr.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{addr: addr, dialTimeout: 5 * time.Second}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close drops pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pc := range c.idle {
		pc.conn.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) acquire(ctx context.Context) (*poolConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("msgnet: client closed")
	}
	if n := len(c.idle); n > 0 {
		pc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()
	var conn net.Conn
	var err error
	if c.dialFunc != nil {
		dctx, cancel := context.WithTimeout(ctx, c.dialTimeout)
		conn, err = c.dialFunc(dctx, "tcp", c.addr)
		cancel()
	} else {
		d := net.Dialer{Timeout: c.dialTimeout}
		conn, err = d.DialContext(ctx, "tcp", c.addr)
	}
	if err != nil {
		return nil, fmt.Errorf("msgnet: dialing %s: %w", c.addr, err)
	}
	return &poolConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

func (c *Client) release(pc *poolConn, broken bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if broken || c.closed || len(c.idle) >= 8 {
		pc.conn.Close()
		return
	}
	c.idle = append(c.idle, pc)
}

func (c *Client) delay(ctx context.Context, size int) error {
	if c.net == nil {
		return nil
	}
	return c.net.Delay(ctx, c.clientSite, c.serverSite, size)
}

// Request sends req and returns the server's reply. Handler errors surface
// as errors with the server's message.
func (c *Client) Request(ctx context.Context, req []byte) ([]byte, error) {
	if c.tap != nil {
		done := c.tap(req)
		resp, err := c.request(ctx, req)
		done(resp, err)
		return resp, err
	}
	return c.request(ctx, req)
}

func (c *Client) request(ctx context.Context, req []byte) ([]byte, error) {
	if err := c.delay(ctx, len(req)); err != nil {
		return nil, err
	}
	pc, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(pc.w, req); err != nil {
		c.release(pc, true)
		return nil, fmt.Errorf("msgnet: sending request: %w", err)
	}
	if err := pc.w.Flush(); err != nil {
		c.release(pc, true)
		return nil, fmt.Errorf("msgnet: sending request: %w", err)
	}
	resp, err := ReadFrame(pc.r)
	if err != nil {
		c.release(pc, true)
		return nil, fmt.Errorf("msgnet: reading reply: %w", err)
	}
	c.release(pc, false)
	if err := c.delay(ctx, len(resp)); err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, errors.New("msgnet: empty reply frame")
	}
	if resp[0] == 1 {
		return nil, fmt.Errorf("msgnet: server error: %s", resp[1:])
	}
	return resp[1:], nil
}
