package msgnet

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// tapRecord collects tapped requests for assertions.
type tapRecord struct {
	mu   sync.Mutex
	reqs [][]byte
	rsps [][]byte
	errs []error
}

func (r *tapRecord) fn(req []byte) TapDone {
	reqCopy := append([]byte(nil), req...)
	return func(resp []byte, err error) {
		r.mu.Lock()
		r.reqs = append(r.reqs, reqCopy)
		r.rsps = append(r.rsps, append([]byte(nil), resp...))
		r.errs = append(r.errs, err)
		r.mu.Unlock()
	}
}

// TestTapObservesRequests: every Request — success or handler error —
// reports its frame and outcome to the tap.
func TestTapObservesRequests(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, req []byte) ([]byte, error) {
		if bytes.HasPrefix(req, []byte("x")) {
			return nil, errors.New("rejected")
		}
		return append([]byte("echo:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := &tapRecord{}
	cli := NewClient(srv.Addr(), WithTap(rec.fn))
	defer cli.Close()
	ctx := context.Background()

	if resp, err := cli.Request(ctx, []byte("hello")); err != nil || string(resp) != "echo:hello" {
		t.Fatalf("Request = %q, %v", resp, err)
	}
	if _, err := cli.Request(ctx, []byte("xbad")); err == nil {
		t.Fatal("handler error did not surface")
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.reqs) != 2 {
		t.Fatalf("tap saw %d requests, want 2", len(rec.reqs))
	}
	if string(rec.reqs[0]) != "hello" || string(rec.rsps[0]) != "echo:hello" || rec.errs[0] != nil {
		t.Fatalf("tapped success = %q → %q, %v", rec.reqs[0], rec.rsps[0], rec.errs[0])
	}
	if string(rec.reqs[1]) != "xbad" || rec.errs[1] == nil {
		t.Fatalf("tapped failure = %q → %q, %v", rec.reqs[1], rec.rsps[1], rec.errs[1])
	}
}

// TestDialFuncCarriesConnectionsAndReconnects: pooled connections and
// the replacements dialed after broken ones all flow through the hook.
func TestDialFuncCarriesConnectionsAndReconnects(t *testing.T) {
	srv := echoServer(t)
	var mu sync.Mutex
	var conns []net.Conn
	cli := NewClient(srv.Addr(), WithDialFunc(func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, conn)
		mu.Unlock()
		return conn, nil
	}))
	defer cli.Close()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := cli.Request(ctx, []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	before := len(conns)
	mu.Unlock()
	if before != 1 {
		t.Fatalf("3 sequential requests dialed %d connections, want 1 pooled", before)
	}

	// Kill the pooled connection; the client must recover by re-dialing
	// through the hook.
	mu.Lock()
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, err := cli.Request(ctx, []byte("b")); err == nil && string(resp) == "b" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered from a killed pooled connection")
		}
	}
	mu.Lock()
	after := len(conns)
	mu.Unlock()
	if after <= before {
		t.Fatalf("reconnect bypassed the dial hook: %d dials before, %d after", before, after)
	}
}

// TestDialFuncHonorsDialTimeout: the dial timeout arrives as a context
// deadline on the hook and bounds a black-holed connection attempt.
func TestDialFuncHonorsDialTimeout(t *testing.T) {
	cli := NewClient("203.0.113.1:1", WithDialFunc(func(ctx context.Context, network, addr string) (net.Conn, error) {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("dial hook received no deadline")
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}))
	cli.dialTimeout = 50 * time.Millisecond
	defer cli.Close()

	start := time.Now()
	if _, err := cli.Request(context.Background(), []byte("r")); err == nil {
		t.Fatal("Request succeeded through a black-holed dial")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stuck dial took %v to fail, dial timeout is 50ms", elapsed)
	}
}
