// Package rdma simulates a remote-direct-memory-access fabric: endpoints
// register memory regions and peers read or write them with one-sided
// operations that bypass the remote CPU, alongside two-sided send/receive
// messaging. It stands in for the libfabric/verbs layers beneath Margo
// (Mercury) and UCX in the paper's distributed in-memory connectors
// (§4.1.3).
//
// Bytes move through process memory; timing comes from a netsim link plus a
// per-transport Profile. Profiles capture what distinguishes transports in
// the paper's Figure 6: Margo and UCX behave identically on an HPC fabric
// (Polaris Slingshot), while UCX loses large-message efficiency on
// commodity Ethernet (Chameleon 40GbE) — the anomaly the authors observed.
package rdma

import (
	"context"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/netsim"
)

// Profile models a transport library's overheads on a given fabric.
type Profile struct {
	// Name identifies the transport (e.g. "margo", "ucx").
	Name string
	// OpOverhead is the fixed software overhead per operation.
	OpOverhead time.Duration
	// SmallEfficiency scales effective bandwidth for messages below
	// LargeThreshold; 1 means the transport achieves full link bandwidth.
	SmallEfficiency float64
	// LargeEfficiency scales effective bandwidth at or above
	// LargeThreshold.
	LargeEfficiency float64
	// LargeThreshold separates the two regimes (bytes).
	LargeThreshold int
}

func (p Profile) efficiency(size int) float64 {
	eff := p.SmallEfficiency
	if p.LargeThreshold > 0 && size >= p.LargeThreshold {
		eff = p.LargeEfficiency
	}
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return eff
}

// MargoProfile models the Mercury/Margo stack: slightly higher per-op
// overhead (RPC dispatch through Argobots ULTs) but near-line-rate bulk
// pipelining on any fabric.
func MargoProfile() Profile {
	return Profile{
		Name:            "margo",
		OpOverhead:      8 * time.Microsecond,
		SmallEfficiency: 0.90,
		LargeEfficiency: 0.95,
		LargeThreshold:  1 << 20,
	}
}

// UCXProfile models UCX on an HPC fabric: lowest small-message latency and
// full large-message pipelining.
func UCXProfile() Profile {
	return Profile{
		Name:            "ucx",
		OpOverhead:      4 * time.Microsecond,
		SmallEfficiency: 0.95,
		LargeEfficiency: 0.95,
		LargeThreshold:  1 << 20,
	}
}

// UCXEthernetProfile models UCX falling back to its TCP transport on
// commodity Ethernet, where its rendezvous pipeline underperforms for
// large messages (the paper's Chameleon observation).
func UCXEthernetProfile() Profile {
	return Profile{
		Name:            "ucx",
		OpOverhead:      4 * time.Microsecond,
		SmallEfficiency: 0.95,
		LargeEfficiency: 0.35,
		LargeThreshold:  1 << 20,
	}
}

// Fabric is a named in-process RDMA network. Endpoints attach to a fabric
// and exchange data with other endpoints on the same fabric.
//
// A Fabric is safe for concurrent use.
type Fabric struct {
	net     *netsim.Network
	profile Profile

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
}

// NewFabric builds a fabric whose timing follows the netsim network and
// the transport profile.
func NewFabric(n *netsim.Network, p Profile) *Fabric {
	return &Fabric{net: n, profile: p, endpoints: make(map[string]*Endpoint)}
}

// Profile returns the fabric's transport profile.
func (f *Fabric) Profile() Profile { return f.profile }

// delay blocks for the modeled duration of an op moving size bytes.
func (f *Fabric) delay(ctx context.Context, src, dst string, size int) error {
	d := f.profile.OpOverhead
	if f.net != nil {
		base := f.net.TransferTime(src, dst, size)
		lat := f.net.TransferTime(src, dst, 0)
		// Scale only the serialization component by transport efficiency.
		ser := base - lat
		d += lat + time.Duration(float64(ser)/f.profile.efficiency(size))
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Endpoint is an addressable attachment point on a fabric.
type Endpoint struct {
	fabric *Fabric
	addr   string
	site   string

	inbox chan Message

	mu      sync.RWMutex
	regions map[string]*MemoryRegion
	nextReg uint64
	closed  bool
}

// Message is a two-sided fabric message.
type Message struct {
	From string
	Data []byte
}

// NewEndpoint attaches an endpoint with the given fabric-unique address at
// a netsim site.
func (f *Fabric) NewEndpoint(addr, site string) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.endpoints[addr]; exists {
		return nil, fmt.Errorf("rdma: endpoint address %q already in use", addr)
	}
	ep := &Endpoint{
		fabric:  f,
		addr:    addr,
		site:    site,
		inbox:   make(chan Message, 1024),
		regions: make(map[string]*MemoryRegion),
	}
	f.endpoints[addr] = ep
	return ep, nil
}

func (f *Fabric) lookup(addr string) (*Endpoint, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ep, ok := f.endpoints[addr]
	if !ok {
		return nil, fmt.Errorf("rdma: no endpoint at %q", addr)
	}
	return ep, nil
}

// Addr returns the endpoint's fabric address.
func (ep *Endpoint) Addr() string { return ep.addr }

// Site returns the endpoint's netsim site.
func (ep *Endpoint) Site() string { return ep.site }

// Close detaches the endpoint from the fabric and wakes blocked receivers.
func (ep *Endpoint) Close() error {
	ep.fabric.mu.Lock()
	delete(ep.fabric.endpoints, ep.addr)
	ep.fabric.mu.Unlock()

	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.closed {
		ep.closed = true
		close(ep.inbox)
	}
	return nil
}

// Send delivers a two-sided message to the endpoint at target, paying the
// modeled transfer time before delivery.
func (ep *Endpoint) Send(ctx context.Context, target string, data []byte) error {
	dst, err := ep.fabric.lookup(target)
	if err != nil {
		return err
	}
	if err := ep.fabric.delay(ctx, ep.site, dst.site, len(data)); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)

	dst.mu.RLock()
	defer dst.mu.RUnlock()
	if dst.closed {
		return fmt.Errorf("rdma: endpoint %q closed", target)
	}
	select {
	case dst.inbox <- Message{From: ep.addr, Data: buf}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv blocks for the next two-sided message.
func (ep *Endpoint) Recv(ctx context.Context) (Message, error) {
	select {
	case m, ok := <-ep.inbox:
		if !ok {
			return Message{}, fmt.Errorf("rdma: endpoint %q closed", ep.addr)
		}
		return m, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// MemoryRegion is registered memory exposed for one-sided access.
type MemoryRegion struct {
	// ID is the rkey peers use to address the region.
	ID string
	mu sync.RWMutex
	// buf is the registered buffer.
	buf []byte
}

// RegisterMemory registers buf for remote one-sided access and returns the
// region. The caller must not resize buf while registered.
func (ep *Endpoint) RegisterMemory(buf []byte) *MemoryRegion {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.nextReg++
	r := &MemoryRegion{ID: fmt.Sprintf("%s/mr-%d", ep.addr, ep.nextReg), buf: buf}
	ep.regions[r.ID] = r
	return r
}

// DeregisterMemory revokes remote access to the region.
func (ep *Endpoint) DeregisterMemory(r *MemoryRegion) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	delete(ep.regions, r.ID)
}

func (f *Fabric) region(targetAddr, regionID string) (*Endpoint, *MemoryRegion, error) {
	dst, err := f.lookup(targetAddr)
	if err != nil {
		return nil, nil, err
	}
	dst.mu.RLock()
	r, ok := dst.regions[regionID]
	dst.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("rdma: region %q not registered at %q", regionID, targetAddr)
	}
	return dst, r, nil
}

// ReadRemote performs a one-sided RDMA read of length bytes at offset from
// the target's region, bypassing the target's receive path entirely.
func (ep *Endpoint) ReadRemote(ctx context.Context, target, regionID string, offset, length int) ([]byte, error) {
	dst, r, err := ep.fabric.region(target, regionID)
	if err != nil {
		return nil, err
	}
	if err := ep.fabric.delay(ctx, ep.site, dst.site, length); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if offset < 0 || length < 0 || offset+length > len(r.buf) {
		return nil, fmt.Errorf("rdma: read [%d,%d) outside region of %d bytes", offset, offset+length, len(r.buf))
	}
	out := make([]byte, length)
	copy(out, r.buf[offset:offset+length])
	return out, nil
}

// WriteRemote performs a one-sided RDMA write of data at offset into the
// target's region.
func (ep *Endpoint) WriteRemote(ctx context.Context, target, regionID string, offset int, data []byte) error {
	dst, r, err := ep.fabric.region(target, regionID)
	if err != nil {
		return err
	}
	if err := ep.fabric.delay(ctx, ep.site, dst.site, len(data)); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if offset < 0 || offset+len(data) > len(r.buf) {
		return fmt.Errorf("rdma: write [%d,%d) outside region of %d bytes", offset, offset+len(data), len(r.buf))
	}
	copy(r.buf[offset:], data)
	return nil
}
