package rdma

import (
	"bytes"
	"context"
	"testing"
	"time"

	"proxystore/internal/netsim"
)

func newFabric(t *testing.T) *Fabric {
	t.Helper()
	n := netsim.New(1)
	n.AddSite("a", true)
	n.AddSite("b", true)
	if err := n.SetLink("a", "b", netsim.Link{Latency: time.Millisecond, Bandwidth: 1e9}); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	return NewFabric(n, MargoProfile())
}

func TestSendRecv(t *testing.T) {
	f := newFabric(t)
	a, err := f.NewEndpoint("ep-a", "a")
	if err != nil {
		t.Fatalf("NewEndpoint: %v", err)
	}
	b, err := f.NewEndpoint("ep-b", "b")
	if err != nil {
		t.Fatalf("NewEndpoint: %v", err)
	}
	ctx := context.Background()
	go func() {
		a.Send(ctx, "ep-b", []byte("two-sided"))
	}()
	msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if msg.From != "ep-a" || string(msg.Data) != "two-sided" {
		t.Fatalf("Recv = %+v", msg)
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	f := newFabric(t)
	if _, err := f.NewEndpoint("dup", "a"); err != nil {
		t.Fatalf("NewEndpoint: %v", err)
	}
	if _, err := f.NewEndpoint("dup", "a"); err == nil {
		t.Fatal("duplicate endpoint address accepted")
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	f := newFabric(t)
	a, _ := f.NewEndpoint("solo", "a")
	if err := a.Send(context.Background(), "ghost", []byte("x")); err == nil {
		t.Fatal("Send to unknown endpoint succeeded")
	}
}

func TestOneSidedReadWrite(t *testing.T) {
	f := newFabric(t)
	a, _ := f.NewEndpoint("reader", "a")
	b, _ := f.NewEndpoint("owner", "b")
	ctx := context.Background()

	buf := []byte("0123456789")
	region := b.RegisterMemory(buf)

	got, err := a.ReadRemote(ctx, "owner", region.ID, 2, 4)
	if err != nil {
		t.Fatalf("ReadRemote: %v", err)
	}
	if string(got) != "2345" {
		t.Fatalf("ReadRemote = %q", got)
	}

	if err := a.WriteRemote(ctx, "owner", region.ID, 0, []byte("AB")); err != nil {
		t.Fatalf("WriteRemote: %v", err)
	}
	if !bytes.Equal(buf[:2], []byte("AB")) {
		t.Fatalf("WriteRemote did not land: %q", buf)
	}
}

func TestReadOutOfBounds(t *testing.T) {
	f := newFabric(t)
	a, _ := f.NewEndpoint("oob-reader", "a")
	b, _ := f.NewEndpoint("oob-owner", "b")
	region := b.RegisterMemory(make([]byte, 8))
	if _, err := a.ReadRemote(context.Background(), "oob-owner", region.ID, 4, 8); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
}

func TestDeregisterRevokesAccess(t *testing.T) {
	f := newFabric(t)
	a, _ := f.NewEndpoint("rev-reader", "a")
	b, _ := f.NewEndpoint("rev-owner", "b")
	region := b.RegisterMemory(make([]byte, 8))
	b.DeregisterMemory(region)
	if _, err := a.ReadRemote(context.Background(), "rev-owner", region.ID, 0, 4); err == nil {
		t.Fatal("read of deregistered region succeeded")
	}
}

func TestClosedEndpointRejectsSend(t *testing.T) {
	f := newFabric(t)
	a, _ := f.NewEndpoint("send-a", "a")
	b, _ := f.NewEndpoint("recv-b", "b")
	b.Close()
	if err := a.Send(context.Background(), "recv-b", []byte("x")); err == nil {
		t.Fatal("Send to closed endpoint succeeded")
	}
}

func TestTransferPaysLinkLatency(t *testing.T) {
	f := newFabric(t)
	a, _ := f.NewEndpoint("lat-a", "a")
	b, _ := f.NewEndpoint("lat-b", "b")
	ctx := context.Background()
	go b.Recv(ctx)
	start := time.Now()
	if err := a.Send(ctx, "lat-b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("Send took %v, want >= 1ms link latency", elapsed)
	}
}

func TestProfileEfficiencyRegimes(t *testing.T) {
	p := UCXEthernetProfile()
	if p.efficiency(1024) != 0.95 {
		t.Fatalf("small efficiency = %v", p.efficiency(1024))
	}
	if p.efficiency(2<<20) != 0.35 {
		t.Fatalf("large efficiency = %v", p.efficiency(2<<20))
	}
}

func TestUCXEthernetSlowerThanMargoAtLargeSizes(t *testing.T) {
	// The Figure 6 anomaly: identical link, different transport profiles.
	n := netsim.New(1)
	n.AddSite("x", false)
	n.AddSite("y", false)
	n.SetLink("x", "y", netsim.Link{Latency: 50 * time.Microsecond, Bandwidth: 1e9})

	size := 8 << 20
	payload := make([]byte, size)
	measure := func(p Profile) time.Duration {
		f := NewFabric(n, p)
		src, _ := f.NewEndpoint("src", "x")
		dst, _ := f.NewEndpoint("dst", "y")
		region := dst.RegisterMemory(make([]byte, size))
		start := time.Now()
		if err := src.WriteRemote(context.Background(), "dst", region.ID, 0, payload); err != nil {
			t.Fatalf("WriteRemote: %v", err)
		}
		return time.Since(start)
	}

	margo := measure(MargoProfile())
	ucxEth := measure(UCXEthernetProfile())
	// Model predicts ~2.7x; allow slack for alloc/copy/scheduler overhead
	// that inflates both measurements equally.
	if ucxEth < margo*3/2 {
		t.Fatalf("UCX-on-Ethernet (%v) should be markedly slower than Margo (%v) for large transfers", ucxEth, margo)
	}
}
