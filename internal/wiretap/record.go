package wiretap

import (
	"sync"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/msgnet"
	"proxystore/internal/telemetry"
)

// Recorder collects tapped operations into a Trace. One Recorder serves
// any number of logical connections: every WrapKV / MsgTap call mints a
// fresh connection ID, and all connections append into one
// completion-ordered log under one mutex — which is what makes each op's
// Dep prefix an exact happens-before snapshot rather than an
// approximation (see Op.Dep).
//
// The serialization point is the tap callback, not the wire: concurrent
// operations still overlap on the network, they only queue briefly to
// stamp their order. A Recorder is safe for concurrent use.
type Recorder struct {
	origin time.Time

	mu       sync.Mutex
	meta     map[string]string
	ops      []Op
	nextConn uint64
	nextIdx  map[uint64]uint64

	mOps   *telemetry.Counter
	mBytes *telemetry.Counter
}

// RecorderOption configures a Recorder.
type RecorderOption func(*Recorder)

// WithRecorderRegistry points the recorder's ps.tap.* counters at reg
// instead of the default registry.
func WithRecorderRegistry(reg *telemetry.Registry) RecorderOption {
	return func(r *Recorder) {
		r.mOps = reg.Counter("ps.tap.ops")
		r.mBytes = reg.Counter("ps.tap.bytes")
	}
}

// NewRecorder returns an empty recorder whose time origin is now.
func NewRecorder(opts ...RecorderOption) *Recorder {
	r := &Recorder{
		origin:  time.Now(),
		meta:    map[string]string{},
		nextIdx: map[uint64]uint64{},
	}
	WithRecorderRegistry(telemetry.Default())(r)
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetMeta stamps a metadata key carried in the trace header (profile
// name, item counts, recorded server command totals, ...).
func (r *Recorder) SetMeta(key, value string) {
	r.mu.Lock()
	r.meta[key] = value
	r.mu.Unlock()
}

// Ops returns how many operations have completed into the log.
func (r *Recorder) Ops() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Trace snapshots the recorded trace. Operations still in flight (tapped
// but not yet completed) are not included — a trace only ever contains
// whole operations, matching the loud-truncation stance of the codec.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{
		Meta: make(map[string]string, len(r.meta)),
		Ops:  make([]Op, len(r.ops)),
	}
	for k, v := range r.meta {
		t.Meta[k] = v
	}
	copy(t.Ops, r.ops)
	return t
}

// begin stamps the start of one operation and returns its completion
// callback. The callback may be called exactly once, from any goroutine.
func (r *Recorder) begin(conn uint64, plane, name string, args [][]byte, blocking bool) func(reply [][]byte, errText string) {
	r.mu.Lock()
	idx := r.nextIdx[conn]
	r.nextIdx[conn] = idx + 1
	op := Op{
		Conn:     conn,
		Idx:      idx,
		Plane:    plane,
		Name:     name,
		Args:     args,
		Blocking: blocking,
		Start:    time.Since(r.origin).Nanoseconds(),
		Dep:      uint64(len(r.ops)),
	}
	r.mu.Unlock()
	nbytes := uint64(len(name))
	for _, a := range args {
		nbytes += uint64(len(a))
	}
	return func(reply [][]byte, errText string) {
		for _, el := range reply {
			nbytes += uint64(len(el))
		}
		r.mu.Lock()
		op.End = time.Since(r.origin).Nanoseconds()
		op.Reply = reply
		op.Err = errText
		r.ops = append(r.ops, op)
		r.mu.Unlock()
		r.mOps.Inc()
		r.mBytes.Add(nbytes)
	}
}

// cloneBytess deep-copies tap args/replies: callers may reuse their
// backing arrays after the call returns, but a trace outlives the call.
func cloneBytess(in [][]byte) [][]byte {
	if in == nil {
		return nil
	}
	out := make([][]byte, len(in))
	for i, el := range in {
		out[i] = append([]byte(nil), el...)
	}
	return out
}

// WrapKV returns kv wrapped so every operation records into the trace on
// a fresh logical connection. Wrap each client (or each broker, via
// pstream.WithKVWrap) separately so the trace keeps their command streams
// apart.
func (r *Recorder) WrapKV(kv kvstore.KV) kvstore.KV {
	r.mu.Lock()
	conn := r.nextConn
	r.nextConn++
	r.mu.Unlock()
	return kvstore.NewTap(kv, func(name string, args [][]byte, blocking bool) kvstore.TapDone {
		done := r.begin(conn, PlaneKV, name, cloneBytess(args), blocking)
		return func(reply [][]byte, err error) {
			errText := ""
			if err != nil {
				errText = err.Error()
			}
			done(cloneBytess(reply), errText)
		}
	})
}

// MsgTap returns a msgnet tap (pass to msgnet.WithTap) recording every
// request frame and reply on a fresh logical connection. Ops record as
// name "REQUEST" with Args[0] the request frame and, on success, Reply[0]
// the reply payload.
func (r *Recorder) MsgTap() msgnet.TapFunc {
	r.mu.Lock()
	conn := r.nextConn
	r.nextConn++
	r.mu.Unlock()
	return func(req []byte) msgnet.TapDone {
		done := r.begin(conn, PlaneMsg, "REQUEST", [][]byte{append([]byte(nil), req...)}, false)
		return func(resp []byte, err error) {
			errText := ""
			var reply [][]byte
			if err != nil {
				errText = err.Error()
			} else {
				reply = [][]byte{append([]byte(nil), resp...)}
			}
			done(reply, errText)
		}
	}
}
