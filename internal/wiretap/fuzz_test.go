package wiretap_test

// Codec torture battery, mirroring the AOF tests' stance with one
// deliberate inversion: an AOF tolerates a torn FINAL record (crash
// tails must recover), but a trace is evidence — truncation anywhere,
// tail included, must fail loudly at the last whole-record boundary,
// never load as a silently shorter trace.

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"proxystore/internal/wiretap"
)

// encodeTrace encodes tr to bytes, failing the test on error.
func encodeTrace(t testing.TB, tr *wiretap.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// traceBoundaries maps every valid record boundary offset of raw (the
// encoding of tr) to the number of whole ops a prefix cut there holds.
// Encoding is deterministic and append-only — magic, meta record, then
// ops in order — so the encoding of the first k ops is a byte prefix of
// the full encoding; the prefix lengths ARE the boundaries.
func traceBoundaries(t *testing.T, tr *wiretap.Trace, raw []byte) map[int]int {
	t.Helper()
	boundary := map[int]int{}
	for k := 0; k <= len(tr.Ops); k++ {
		prefix := encodeTrace(t, &wiretap.Trace{Meta: tr.Meta, Ops: tr.Ops[:k]})
		if !bytes.HasPrefix(raw, prefix) {
			t.Fatalf("encoding is not append-only: %d-op prefix diverges", k)
		}
		boundary[len(prefix)] = k
	}
	return boundary
}

// TestTraceTortureTruncation cuts an encoded trace at every byte offset.
// Cuts on a record boundary must load exactly the whole records before
// the cut; every other cut must fail loudly, naming how many whole
// records survived — never silently shortening the trace.
func TestTraceTortureTruncation(t *testing.T) {
	tr := sampleTrace()
	raw := encodeTrace(t, tr)
	boundary := traceBoundaries(t, tr, raw)
	// The magic alone is the degenerate zero-record trace.
	boundary[len(traceMagicLen())] = 0

	for cut := 0; cut <= len(raw); cut++ {
		got, err := wiretap.ReadTrace(bytes.NewReader(raw[:cut]))
		if wantOps, ok := boundary[cut]; ok {
			if err != nil {
				t.Fatalf("cut %d is a record boundary, load errored: %v", cut, err)
			}
			if len(got.Ops) != wantOps {
				t.Fatalf("cut %d: loaded %d ops, boundary holds %d", cut, len(got.Ops), wantOps)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut %d is mid-record, load accepted %d ops silently", cut, len(got.Ops))
		}
		if cut >= len(traceMagicLen()) && !strings.Contains(err.Error(), "record") {
			t.Fatalf("cut %d: unhelpful truncation error: %v", cut, err)
		}
	}
}

// traceMagicLen returns a slice whose length is the trace magic's,
// derived from the public API (the shortest valid trace is magic alone).
func traceMagicLen() []byte {
	var buf bytes.Buffer
	_ = (&wiretap.Trace{}).Encode(&buf)
	// magic + empty meta record; the magic is the part before the first
	// record, which ReadTrace accepts on its own.
	for cut := 0; cut <= buf.Len(); cut++ {
		if _, err := wiretap.ReadTrace(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			return buf.Bytes()[:cut]
		}
	}
	return nil
}

// TestTraceCorruptRecordRefused flips the frame-type byte of a mid-trace
// record: the load must error naming the record, not skip or misread it.
func TestTraceCorruptRecordRefused(t *testing.T) {
	tr := sampleTrace()
	raw := encodeTrace(t, tr)
	boundary := traceBoundaries(t, tr, raw)
	for off, ops := range boundary {
		if off == len(raw) {
			continue // nothing after the final boundary to corrupt
		}
		bad := append([]byte(nil), raw...)
		bad[off] = 0xFF
		if _, err := wiretap.ReadTrace(bytes.NewReader(bad)); err == nil {
			t.Fatalf("load accepted a corrupt frame type at offset %d (record %d)", off, ops+1)
		} else if !strings.Contains(err.Error(), "record") {
			t.Fatalf("unhelpful corruption error at offset %d: %v", off, err)
		}
	}
}

// TestTraceBadMagicRefused: wrong magic errors before any record decode.
func TestTraceBadMagicRefused(t *testing.T) {
	raw := encodeTrace(t, sampleTrace())
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := wiretap.ReadTrace(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
}

// FuzzTraceRead feeds arbitrary bytes to the trace reader. Whatever it
// accepts must re-encode and re-read to an equivalent trace: the codec
// never loads a trace it cannot faithfully write back.
func FuzzTraceRead(f *testing.F) {
	f.Add(encodeTrace(f, sampleTrace()))
	f.Add(encodeTrace(f, &wiretap.Trace{}))
	raw := encodeTrace(f, sampleTrace())
	f.Add(raw[:len(raw)-3]) // torn tail
	f.Add(raw[:7])          // torn meta record
	for _, fixture := range []string{claimRaceFixture, churnFixture, failoverFixture} {
		if data, err := os.ReadFile(fixturePath(fixture)); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := wiretap.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only accepted traces must round-trip
		}
		again, err := wiretap.ReadTrace(bytes.NewReader(encodeTrace(t, tr)))
		if err != nil {
			t.Fatalf("re-reading re-encoded trace: %v", err)
		}
		tracesEquivalent(t, tr, again)
	})
}

// FuzzTraceOpRoundTrip builds a trace from arbitrary fuzzed fields and
// round-trips it: every representable op must encode and decode exactly.
func FuzzTraceOpRoundTrip(f *testing.F) {
	f.Add(uint64(0), "GET", []byte("key"), []byte("n"), "", false, int64(10), int64(20))
	f.Add(uint64(3), "CAS", []byte("ps:t:g:g:c:0"), []byte("i1"), "", false, int64(-5), int64(1<<40))
	f.Add(uint64(1), "WAITGET", []byte("k"), []byte(nil), "kvstore: server closed", true, int64(0), int64(0))
	f.Add(uint64(9), "", []byte{}, []byte{0, 1, 2, 255}, "ctx canceled", true, int64(7), int64(7))
	f.Fuzz(func(t *testing.T, conn uint64, name string, arg, reply []byte, errText string, blocking bool, start, end int64) {
		tr := &wiretap.Trace{
			Meta: map[string]string{"k": errText, name: "v"},
			Ops: []wiretap.Op{
				{Conn: conn, Idx: 0, Plane: wiretap.PlaneKV, Name: name,
					Args: [][]byte{arg}, Reply: [][]byte{reply}, Err: errText,
					Blocking: blocking, Start: start, End: end, Dep: 0},
				{Conn: conn, Idx: 1, Plane: wiretap.PlaneMsg, Name: "REQUEST",
					Args: [][]byte{arg, reply}, Reply: nil, Err: "",
					Start: end, End: start, Dep: 1},
			},
		}
		got, err := wiretap.ReadTrace(bytes.NewReader(encodeTrace(t, tr)))
		if err != nil {
			t.Fatalf("decoding encoded trace: %v", err)
		}
		tracesEquivalent(t, tr, got)
	})
}
