// Package wiretap records broker and store wire traffic at the client
// boundary and replays it deterministically — the record/replay harness
// the ROADMAP names after keploy's design. A Recorder taps the kvstore
// and msgnet clients (kvstore.TapKV / msgnet.WithTap) and writes every
// operation — name, arguments, normalized reply, error, timestamps,
// logical connection ID, and the cross-connection happens-before edges
// observed at send time — into a length-prefixed trace built on the
// serial binary codec. A Replayer drives a recorded trace against a
// fresh server in two modes:
//
//   - 1× deterministic: operations issue in recorded global start order,
//     each gated on its recorded happens-before dependencies (every
//     operation that completed before it was sent must complete first),
//     with blocking waits dispatched asynchronously. A recorded race — a
//     lease-expiry steal, a claim stranded by a dying context — becomes
//     an exact-repro regression test: two replays of one trace issue
//     identical command sequences and leave identical server state.
//
//   - time-compressed (10–100×): operations issue on their recorded
//     per-connection schedule with inter-arrival gaps (and wait
//     timeouts) divided by the speedup — a trace-driven load generator,
//     so benches replay production-shaped traffic instead of synthetic
//     uniform load.
//
// Trace files open with the "PSWT1\n" magic; every record after it is one
// self-delimiting binary-codec bulk frame, so truncation or corruption
// fails loudly at a record boundary (never a silently shortened trace).
package wiretap

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"proxystore/internal/serial"
)

// Planes an Op can belong to.
const (
	PlaneKV  = "kv"  // kvstore client commands
	PlaneMsg = "msg" // msgnet request frames
)

// traceMagic opens every trace file; the trailing digit is the format
// version.
const traceMagic = "PSWT1\n"

// Record kinds (first field of every record frame).
const (
	recMeta = "meta"
	recOp   = "op"
)

// OpRef names one operation: per-connection index idx on connection conn.
type OpRef struct {
	Conn uint64
	Idx  uint64
}

// Op is one recorded client operation.
type Op struct {
	// Conn is the logical connection (tap instance) the operation rode;
	// Idx is its position in that connection's recorded order.
	Conn uint64
	Idx  uint64
	// Plane routes replay: PlaneKV ops re-issue as kvstore client calls,
	// PlaneMsg ops as msgnet request frames (Args[0] is the frame).
	Plane string
	Name  string
	Args  [][]byte
	// Reply is the normalized reply (see kvstore's TapKV reply grammar);
	// Err is the client-observed error text, "" on success.
	Reply [][]byte
	Err   string
	// Blocking marks server-side waits, whose replies depend on
	// operations recorded after them: a deterministic replayer must
	// dispatch them asynchronously or deadlock.
	Blocking bool
	// Start and End are nanosecond offsets from the trace origin —
	// Start taken when the operation was issued, End when its reply
	// landed. The compressed replayer reproduces the Start schedule.
	Start, End int64
	// Dep encodes the happens-before edges observed at issue time: the
	// recorder appends operations in completion order under one lock, so
	// "every reply that had landed when this operation was sent" is
	// exactly the first Dep entries of Trace.Ops. Replaying an op only
	// after those Dep ops complete preserves every recorded
	// reply-before-next-command edge, across connections included.
	Dep uint64
}

// Ref returns the operation's (conn, idx) name.
func (o *Op) Ref() OpRef { return OpRef{Conn: o.Conn, Idx: o.Idx} }

// Trace is a decoded trace: metadata stamped by the recorder and the
// operations in recorded completion order.
type Trace struct {
	Meta map[string]string
	Ops  []Op
}

// OpsByStart returns the operations sorted by recorded issue order — the
// order the deterministic replayer dispatches them in.
func (t *Trace) OpsByStart() []*Op {
	out := make([]*Op, len(t.Ops))
	for i := range t.Ops {
		out[i] = &t.Ops[i]
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// KVKeys returns every kvstore key the trace touches, sorted — the probe
// set for comparing final server state across replays. DELRANGE windows
// are expanded, so swept slot keys are probed too.
func (t *Trace) KVKeys() []string {
	set := make(map[string]struct{})
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Plane != PlaneKV {
			continue
		}
		collectKeys(set, op.Name, op.Args)
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func collectKeys(set map[string]struct{}, name string, args [][]byte) {
	addAll := func(from int) {
		for _, a := range args[from:] {
			set[string(a)] = struct{}{}
		}
	}
	switch name {
	case "SET", "GET", "DEL", "MGET", "INCR", "INCRBY", "CAS", "WAITGET":
		if name == "SET" || name == "INCRBY" || name == "CAS" || name == "WAITGET" {
			if len(args) > 0 {
				set[string(args[0])] = struct{}{}
			}
		} else {
			addAll(0)
		}
	case "MSET":
		for i := 0; i+1 < len(args); i += 2 {
			set[string(args[i])] = struct{}{}
		}
	case "DELRANGE":
		if len(args) == 3 {
			start, err1 := strconv.ParseUint(string(args[1]), 10, 64)
			end, err2 := strconv.ParseUint(string(args[2]), 10, 64)
			// Cap the expansion: a corrupt window must not allocate the moon.
			if err1 == nil && err2 == nil && end >= start && end-start <= 1<<16 {
				for i := start; i < end; i++ {
					set[string(args[0])+strconv.FormatUint(i, 10)] = struct{}{}
				}
			}
		}
	case "PIPELINE":
		cmds, err := parsePipeArgs(args)
		if err != nil {
			return
		}
		for _, c := range cmds {
			collectKeys(set, c.name, c.args)
		}
	}
}

// pipeSubCmd is one command inside a recorded PIPELINE op.
type pipeSubCmd struct {
	name string
	args [][]byte
}

// parsePipeArgs decodes the flattened sub-command list a TapKV records
// for a pipeline Exec: ["<ncmds>", then per command: name, "<nargs>",
// args...].
func parsePipeArgs(args [][]byte) ([]pipeSubCmd, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("wiretap: empty PIPELINE args")
	}
	n, err := strconv.Atoi(string(args[0]))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("wiretap: bad PIPELINE count %q", args[0])
	}
	cmds := make([]pipeSubCmd, 0, n)
	i := 1
	for len(cmds) < n {
		if i+1 >= len(args) {
			return nil, fmt.Errorf("wiretap: truncated PIPELINE args")
		}
		name := string(args[i])
		argc, err := strconv.Atoi(string(args[i+1]))
		if err != nil || argc < 0 || i+2+argc > len(args) {
			return nil, fmt.Errorf("wiretap: bad PIPELINE arg count %q", args[i+1])
		}
		cmds = append(cmds, pipeSubCmd{name: name, args: args[i+2 : i+2+argc]})
		i += 2 + argc
	}
	return cmds, nil
}

// --- encoding ---
//
// Every record is one binary-codec bulk frame (type byte + uvarint length
// + payload), so the outer framing is length-prefixed and
// self-delimiting; the payload is a sequence of binary-codec frames for
// the record's fields. A reader therefore always knows where record N+1
// begins, and a torn or corrupt record fails loudly with the index of the
// last good record.

var (
	binEnc = serial.Binary().(serial.StreamEncoder)
	binDec = serial.Binary().(serial.StreamDecoder)
)

// fieldWriter accumulates one record's field frames. Encoding into a
// bytes.Buffer cannot fail, so the write helpers drop the error.
type fieldWriter struct{ buf bytes.Buffer }

func (f *fieldWriter) str(s string)   { binEnc.EncodeTo(&f.buf, s) }
func (f *fieldWriter) bytes(b []byte) { binEnc.EncodeTo(&f.buf, b) }
func (f *fieldWriter) u64(n uint64)   { binEnc.EncodeTo(&f.buf, n) }
func (f *fieldWriter) i64(n int64)    { binEnc.EncodeTo(&f.buf, n) }
func (f *fieldWriter) boolean(b bool) { binEnc.EncodeTo(&f.buf, b) }
func (f *fieldWriter) bytess(b [][]byte) {
	f.u64(uint64(len(b)))
	for _, el := range b {
		f.bytes(el)
	}
}

// fieldReader decodes one record's field frames, remembering the first
// error so call sites stay linear.
type fieldReader struct {
	r   io.Reader
	err error
}

func (f *fieldReader) next() (any, bool) {
	if f.err != nil {
		return nil, false
	}
	v, err := binDec.DecodeFrom(f.r)
	if err != nil {
		f.err = err
		return nil, false
	}
	return v, true
}

func (f *fieldReader) fail(format string, args ...any) {
	if f.err == nil {
		f.err = fmt.Errorf(format, args...)
	}
}

func (f *fieldReader) str() string {
	v, ok := f.next()
	if !ok {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		f.fail("wiretap: field is %T, want string", v)
	}
	return s
}

func (f *fieldReader) bytes() []byte {
	v, ok := f.next()
	if !ok {
		return nil
	}
	b, ok := v.([]byte)
	if !ok {
		f.fail("wiretap: field is %T, want []byte", v)
	}
	return b
}

func (f *fieldReader) u64() uint64 {
	v, ok := f.next()
	if !ok {
		return 0
	}
	n, ok := v.(uint64)
	if !ok {
		f.fail("wiretap: field is %T, want uint64", v)
	}
	return n
}

func (f *fieldReader) i64() int64 {
	v, ok := f.next()
	if !ok {
		return 0
	}
	n, ok := v.(int64)
	if !ok {
		f.fail("wiretap: field is %T, want int64", v)
	}
	return n
}

func (f *fieldReader) boolean() bool {
	v, ok := f.next()
	if !ok {
		return false
	}
	b, ok := v.(bool)
	if !ok {
		f.fail("wiretap: field is %T, want bool", v)
	}
	return b
}

// bytessCap bounds a declared slice count so a corrupt record cannot
// trigger an absurd allocation before its payload frames fail to decode.
const bytessCap = 1 << 20

func (f *fieldReader) bytess() [][]byte {
	n := f.u64()
	if f.err != nil {
		return nil
	}
	if n > bytessCap {
		f.fail("wiretap: %d elements exceeds the %d cap", n, bytessCap)
		return nil
	}
	out := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, f.bytes())
		if f.err != nil {
			return nil
		}
	}
	return out
}

func encodeOp(op *Op) []byte {
	var f fieldWriter
	f.str(recOp)
	f.u64(op.Conn)
	f.u64(op.Idx)
	f.str(op.Plane)
	f.str(op.Name)
	f.boolean(op.Blocking)
	f.i64(op.Start)
	f.i64(op.End)
	f.str(op.Err)
	f.bytess(op.Args)
	f.bytess(op.Reply)
	f.u64(op.Dep)
	return f.buf.Bytes()
}

func decodeOp(f *fieldReader) (Op, error) {
	var op Op
	op.Conn = f.u64()
	op.Idx = f.u64()
	op.Plane = f.str()
	op.Name = f.str()
	op.Blocking = f.boolean()
	op.Start = f.i64()
	op.End = f.i64()
	op.Err = f.str()
	op.Args = f.bytess()
	op.Reply = f.bytess()
	op.Dep = f.u64()
	return op, f.err
}

func encodeMeta(meta map[string]string) []byte {
	var f fieldWriter
	f.str(recMeta)
	f.u64(uint64(len(meta)))
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f.str(k)
		f.str(meta[k])
	}
	return f.buf.Bytes()
}

func decodeMeta(f *fieldReader) (map[string]string, error) {
	n := f.u64()
	if f.err != nil {
		return nil, f.err
	}
	if n > bytessCap {
		return nil, fmt.Errorf("wiretap: %d meta entries exceeds the %d cap", n, bytessCap)
	}
	meta := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := f.str()
		meta[k] = f.str()
	}
	return meta, f.err
}

// Encode writes the trace: magic, one meta record, then the ops in
// slice order.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := binEnc.EncodeTo(bw, encodeMeta(t.Meta)); err != nil {
		return err
	}
	for i := range t.Ops {
		if err := binEnc.EncodeTo(bw, encodeOp(&t.Ops[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Save writes the trace to path.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace decodes a trace. A truncated or corrupt file fails loudly
// with the boundary of the last whole record — a trace is evidence, and a
// silently shortened one would "reproduce" an interleaving that never
// happened. (Contrast the AOF loader, which tolerates exactly one torn
// final record because a crash mid-append is an expected way for that
// file to end.)
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wiretap: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("wiretap: bad trace magic %q", magic)
	}
	tr := &Trace{}
	for n := 0; ; n++ {
		// A clean trace ends exactly on a record boundary; EOF anywhere
		// inside a record is truncation and fails below.
		if _, err := br.Peek(1); err == io.EOF {
			break
		}
		v, err := binDec.DecodeFrom(br)
		if err != nil {
			return nil, fmt.Errorf("wiretap: trace record %d (after %d whole records): %w", n, n, err)
		}
		payload, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("wiretap: trace record %d is a %T frame, want bulk", n, v)
		}
		f := &fieldReader{r: bytes.NewReader(payload)}
		switch kind := f.str(); kind {
		case recMeta:
			meta, err := decodeMeta(f)
			if err != nil {
				return nil, fmt.Errorf("wiretap: trace record %d (meta): %w", n, err)
			}
			if tr.Meta == nil {
				tr.Meta = meta
			} else {
				for k, v := range meta {
					tr.Meta[k] = v
				}
			}
		case recOp:
			op, err := decodeOp(f)
			if err != nil {
				return nil, fmt.Errorf("wiretap: trace record %d (op): %w", n, err)
			}
			tr.Ops = append(tr.Ops, op)
		default:
			return nil, fmt.Errorf("wiretap: trace record %d has unknown kind %q", n, kind)
		}
		if f.err != nil {
			return nil, fmt.Errorf("wiretap: trace record %d: %w", n, f.err)
		}
	}
	if tr.Meta == nil {
		tr.Meta = map[string]string{}
	}
	return tr, nil
}

// Load reads the trace at path.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
