package wiretap

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/msgnet"
	"proxystore/internal/telemetry"
)

// Replayer drives a recorded trace against live targets. Speed selects
// the mode:
//
//   - Speed <= 1 (the default, 1×) is deterministic mode: one dispatcher
//     issues operations in recorded start order, each gated on its Dep
//     prefix (every reply that had landed when the op was originally
//     sent must land again first), with blocking waits running in their
//     own goroutines so their wakers can be issued behind them. Two
//     replays of one trace issue identical command sequences and leave
//     identical server state.
//
//   - Speed > 1 is time-compressed load mode: operations fire on their
//     recorded schedule with inter-arrival gaps (and wait timeouts)
//     divided by Speed, each in its own goroutine — recorded traffic
//     becomes a load generator that preserves the workload's shape
//     instead of replaying uniform synthetic ops.
type Replayer struct {
	kv    kvstore.KV
	msg   *msgnet.Client
	speed float64
	grace time.Duration

	mOps  *telemetry.Counter
	mDivs *telemetry.Counter
	mLag  *telemetry.Histogram
}

// ReplayOption configures a Replayer.
type ReplayOption func(*Replayer)

// WithKVTarget aims kv-plane operations at kv. Required when the trace
// contains kv ops.
func WithKVTarget(kv kvstore.KV) ReplayOption {
	return func(r *Replayer) { r.kv = kv }
}

// WithMsgTarget aims msg-plane operations at c. Required when the trace
// contains msg ops.
func WithMsgTarget(c *msgnet.Client) ReplayOption {
	return func(r *Replayer) { r.msg = c }
}

// WithSpeed sets the time-compression factor; values <= 1 select
// deterministic mode.
func WithSpeed(speed float64) ReplayOption {
	return func(r *Replayer) { r.speed = speed }
}

// WithGrace bounds how long Run waits for straggling blocking waits
// after the last dispatch (default 15s).
func WithGrace(d time.Duration) ReplayOption {
	return func(r *Replayer) { r.grace = d }
}

// WithReplayRegistry points the replayer's ps.replay.* metrics at reg
// instead of the default registry.
func WithReplayRegistry(reg *telemetry.Registry) ReplayOption {
	return func(r *Replayer) {
		r.mOps = reg.Counter("ps.replay.ops")
		r.mDivs = reg.Counter("ps.replay.divergences")
		r.mLag = reg.Histogram("ps.replay.lag.ns")
	}
}

// NewReplayer returns a replayer; aim it with WithKVTarget/WithMsgTarget.
func NewReplayer(opts ...ReplayOption) *Replayer {
	r := &Replayer{speed: 1, grace: 15 * time.Second}
	WithReplayRegistry(telemetry.Default())(r)
	for _, o := range opts {
		o(r)
	}
	return r
}

// Report summarizes one replay.
type Report struct {
	// Ops counts operations dispatched; Divergences counts operations
	// whose replies differed from the recording (see diverges for what
	// counts); Stragglers counts blocking waits still unfinished when the
	// grace window lapsed; StallReleases counts happens-before gates the
	// dispatcher abandoned after stallPatience (zero for any trace whose
	// causal structure the replay can satisfy — committed fixtures are
	// verified to replay with zero at generation time).
	Ops, Divergences, Stragglers, StallReleases int
	// Details holds the first few divergences, human-readable.
	Details []string
	// IssueOrder is the order operations were issued in — in
	// deterministic mode, two replays of one trace produce identical
	// slices (asserted by the regression tests, equal to recorded start
	// order).
	IssueOrder []OpRef
	// Duration is wall time from first dispatch to last completion
	// (bounded by the grace window).
	Duration time.Duration
}

const maxDetails = 16

// replayRun carries one Run's mutable state.
type replayRun struct {
	r  *Replayer
	tr *Trace

	mu         sync.Mutex
	done       []bool // per completion-order index
	watermark  int    // len of the all-done prefix of done
	cond       *sync.Cond
	report     Report
	byRef      map[OpRef]int // op ref -> completion-order index
	inFlight   sync.WaitGroup
	ctx        context.Context
	firstError error
}

// Run replays tr. It returns an error only for malformed traces, missing
// targets, or a canceled context — reply mismatches are reported as
// divergences, not errors, so load runs over imperfectly reproducible
// traces still complete.
func (r *Replayer) Run(ctx context.Context, tr *Trace) (*Report, error) {
	for i := range tr.Ops {
		op := &tr.Ops[i]
		switch op.Plane {
		case PlaneKV:
			if r.kv == nil {
				return nil, fmt.Errorf("wiretap: trace has kv ops but no kv target (WithKVTarget)")
			}
		case PlaneMsg:
			if r.msg == nil {
				return nil, fmt.Errorf("wiretap: trace has msg ops but no msg target (WithMsgTarget)")
			}
		default:
			return nil, fmt.Errorf("wiretap: op %d has unknown plane %q", i, op.Plane)
		}
	}
	run := &replayRun{
		r:     r,
		tr:    tr,
		done:  make([]bool, len(tr.Ops)),
		byRef: make(map[OpRef]int, len(tr.Ops)),
		ctx:   ctx,
	}
	run.cond = sync.NewCond(&run.mu)
	for i := range tr.Ops {
		run.byRef[tr.Ops[i].Ref()] = i
	}
	// A canceled context must unwedge dispatcher waits on the condvar.
	stop := context.AfterFunc(ctx, func() {
		run.mu.Lock()
		run.cond.Broadcast()
		run.mu.Unlock()
	})
	defer stop()

	t0 := time.Now()
	var err error
	if r.speed > 1 {
		err = run.compressed(t0)
	} else {
		err = run.deterministic()
	}
	run.awaitInFlight()
	run.report.Duration = time.Since(t0)
	if err == nil {
		err = run.firstError
	}
	return &run.report, err
}

// deterministic dispatches on the merged timeline (see dispatchOrder),
// gating each op on its Dep prefix.
func (x *replayRun) deterministic() error {
	for _, op := range dispatchOrder(x.tr) {
		if err := x.awaitDep(int(op.Dep)); err != nil {
			return err
		}
		x.dispatch(op, x.ctx)
	}
	return nil
}

// dispatchOrder is the deterministic-mode issue order: non-blocking ops
// sorted by recorded completion, blocking ops merged in at their recorded
// start.
//
// Completion order — not start order — is the faithful serialization for
// non-blocking ops: the server answers a command as it processes it, so
// reply order tracks server arrival order, while two ops racing from
// different connections can reach the server in the opposite of the
// order their clients issued them. Replaying a recorded CAS race in
// client start order can crown the wrong winner; replaying in reply
// order reproduces the recorded outcome.
//
// Blocking waits are the exception twice over: their reply order says
// when their waker arrived (not when they did — sorting them by
// completion would dispatch a wait after the op that wakes it), and
// their server-side registration order doesn't affect other commands.
// They dispatch asynchronously at their recorded start position.
func dispatchOrder(tr *Trace) []*Op {
	out := make([]*Op, len(tr.Ops))
	key := func(op *Op) int64 {
		if op.Blocking {
			return op.Start
		}
		return op.End
	}
	for i := range tr.Ops {
		out[i] = &tr.Ops[i]
	}
	sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// compressed dispatches every op in its own goroutine on the recorded
// schedule divided by speed.
func (x *replayRun) compressed(t0 time.Time) error {
	for _, op := range x.tr.OpsByStart() {
		target := t0.Add(time.Duration(float64(op.Start) / x.r.speed))
		if d := time.Until(target); d > 0 {
			select {
			case <-time.After(d):
			case <-x.ctx.Done():
				return x.ctx.Err()
			}
		}
		x.r.mLag.Since(target)
		x.dispatchAsync(op, x.ctx)
	}
	return nil
}

// stallPatience bounds one happens-before gate. A trace's recorded
// timestamps can (rarely) order a blocking wait's waker after an op that
// depends on the wait — a causal knot no dispatch order untangles. Rather
// than hang, the dispatcher abandons the gate after this long and counts
// a StallRelease.
const stallPatience = 10 * time.Second

// awaitDep blocks until the first dep ops (completion order) have all
// completed in this replay, or until stallPatience gives out.
func (x *replayRun) awaitDep(dep int) error {
	deadline := time.Now().Add(stallPatience)
	timer := time.AfterFunc(stallPatience, func() {
		x.mu.Lock()
		x.cond.Broadcast()
		x.mu.Unlock()
	})
	defer timer.Stop()
	x.mu.Lock()
	defer x.mu.Unlock()
	for x.watermark < dep {
		if x.ctx.Err() != nil {
			return x.ctx.Err()
		}
		if time.Now().After(deadline) {
			x.report.StallReleases++
			return nil
		}
		x.cond.Wait()
	}
	return nil
}

// dispatch issues op: inline when non-blocking (strictly serializing the
// command stream), in its own goroutine when the op parks server-side.
func (x *replayRun) dispatch(op *Op, ctx context.Context) {
	x.mu.Lock()
	x.report.Ops++
	x.report.IssueOrder = append(x.report.IssueOrder, op.Ref())
	x.mu.Unlock()
	if op.Blocking {
		x.inFlight.Add(1)
		go func() {
			defer x.inFlight.Done()
			x.exec(op, ctx)
		}()
		return
	}
	x.exec(op, ctx)
}

// dispatchAsync issues op in its own goroutine (compressed mode).
func (x *replayRun) dispatchAsync(op *Op, ctx context.Context) {
	x.mu.Lock()
	x.report.Ops++
	x.report.IssueOrder = append(x.report.IssueOrder, op.Ref())
	x.mu.Unlock()
	x.inFlight.Add(1)
	go func() {
		defer x.inFlight.Done()
		x.exec(op, ctx)
	}()
}

// awaitInFlight waits out blocking stragglers up to the grace window.
func (x *replayRun) awaitInFlight() {
	finished := make(chan struct{})
	go func() {
		x.inFlight.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(x.r.grace):
		x.mu.Lock()
		x.report.Stragglers = x.report.Ops - x.completedLocked()
		x.mu.Unlock()
	}
}

func (x *replayRun) completedLocked() int {
	n := 0
	for _, d := range x.done {
		if d {
			n++
		}
	}
	return n
}

// exec runs one op against its target, compares the reply with the
// recording, and marks the op complete for Dep gating.
func (x *replayRun) exec(op *Op, ctx context.Context) {
	// A wait that originally died with its context (claimer canceled
	// mid-claim, shutdown mid-poll) is replayed under a deadline shaped
	// like the recorded one, so it errors again instead of parking for
	// the full recorded timeout.
	if op.Err != "" && op.Blocking {
		d := time.Duration(float64(op.End-op.Start) / x.speedOrOne())
		if d < time.Millisecond {
			d = time.Millisecond
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	var reply [][]byte
	var err error
	if op.Plane == PlaneMsg {
		var resp []byte
		resp, err = x.r.msg.Request(ctx, op.Args[0])
		if err == nil {
			reply = [][]byte{resp}
		}
	} else {
		reply, err = x.execKV(op, ctx)
	}
	x.r.mOps.Inc()
	if reason, ok := diverges(op, reply, err); ok {
		x.r.mDivs.Inc()
		x.mu.Lock()
		x.report.Divergences++
		if len(x.report.Details) < maxDetails {
			x.report.Details = append(x.report.Details, reason)
		}
		x.mu.Unlock()
	}
	x.complete(op)
}

// complete marks op done and advances the watermark.
func (x *replayRun) complete(op *Op) {
	i, ok := x.byRef[op.Ref()]
	if !ok {
		return
	}
	x.mu.Lock()
	x.done[i] = true
	for x.watermark < len(x.done) && x.done[x.watermark] {
		x.watermark++
	}
	x.mu.Unlock()
	x.cond.Broadcast()
}

func (x *replayRun) speedOrOne() float64 {
	if x.r.speed > 1 {
		return x.r.speed
	}
	return 1
}

func (x *replayRun) fail(err error) {
	x.mu.Lock()
	if x.firstError == nil {
		x.firstError = err
	}
	x.mu.Unlock()
}

// execKV re-issues one kv-plane op through a capturing tap around the
// target, so the replayed reply is normalized by the exact code that
// normalized the recording and the two compare byte-for-byte.
func (x *replayRun) execKV(op *Op, ctx context.Context) (reply [][]byte, err error) {
	captured := false
	tap := kvstore.NewTap(x.r.kv, func(string, [][]byte, bool) kvstore.TapDone {
		return func(r [][]byte, e error) {
			captured, reply, err = true, r, e
		}
	})
	callErr := x.callKV(tap, op, ctx)
	if !captured {
		// callKV itself failed (malformed op) before reaching the target.
		err = callErr
		if callErr != nil {
			x.fail(callErr)
		}
	}
	return reply, err
}

// callKV decodes op's recorded args and invokes the matching KV method.
func (x *replayRun) callKV(kv kvstore.KV, op *Op, ctx context.Context) error {
	args := op.Args
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("wiretap: op %s/%d.%d has %d args, need %d", op.Name, op.Conn, op.Idx, len(args), n)
		}
		return nil
	}
	switch op.Name {
	case "PING":
		kv.Ping(ctx)
	case "SET":
		if err := need(2); err != nil {
			return err
		}
		kv.Set(ctx, string(args[0]), args[1])
	case "GET":
		if err := need(1); err != nil {
			return err
		}
		kv.Get(ctx, string(args[0]))
	case "DEL":
		kv.Del(ctx, argStrings(args)...)
	case "MGET":
		kv.MGet(ctx, argStrings(args)...)
	case "MSET":
		if len(args)%2 != 0 {
			return fmt.Errorf("wiretap: MSET op %d.%d has odd arg count %d", op.Conn, op.Idx, len(args))
		}
		pairs := make(map[string][]byte, len(args)/2)
		for i := 0; i+1 < len(args); i += 2 {
			pairs[string(args[i])] = args[i+1]
		}
		kv.MSet(ctx, pairs)
	case "INCR":
		if err := need(1); err != nil {
			return err
		}
		kv.Incr(ctx, string(args[0]))
	case "INCRBY":
		if err := need(2); err != nil {
			return err
		}
		delta, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil {
			return fmt.Errorf("wiretap: INCRBY op %d.%d delta %q: %w", op.Conn, op.Idx, args[1], err)
		}
		kv.IncrBy(ctx, string(args[0]), delta)
	case "CAS":
		if err := need(3); err != nil {
			return err
		}
		kv.CAS(ctx, string(args[0]), args[1], args[2])
	case "DELRANGE":
		if err := need(3); err != nil {
			return err
		}
		start, err1 := strconv.ParseUint(string(args[1]), 10, 64)
		end, err2 := strconv.ParseUint(string(args[2]), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("wiretap: DELRANGE op %d.%d window %q..%q", op.Conn, op.Idx, args[1], args[2])
		}
		kv.DelRange(ctx, string(args[0]), start, end)
	case "WAITGET":
		if err := need(2); err != nil {
			return err
		}
		timeout, err := x.waitTimeout(args[1])
		if err != nil {
			return fmt.Errorf("wiretap: WAITGET op %d.%d: %w", op.Conn, op.Idx, err)
		}
		kv.WaitGet(ctx, string(args[0]), timeout)
	case "WAITPREFIX":
		if err := need(3); err != nil {
			return err
		}
		after, aerr := strconv.ParseUint(string(args[1]), 10, 64)
		timeout, terr := x.waitTimeout(args[2])
		if aerr != nil || terr != nil {
			return fmt.Errorf("wiretap: WAITPREFIX op %d.%d args %q %q", op.Conn, op.Idx, args[1], args[2])
		}
		kv.WaitPrefix(ctx, string(args[0]), after, timeout)
	case "PIPELINE":
		cmds, err := parsePipeArgs(args)
		if err != nil {
			return err
		}
		p := kv.Pipeline()
		for _, c := range cmds {
			p.Do(c.name, c.args...)
		}
		p.Exec(ctx)
	default:
		return fmt.Errorf("wiretap: op %d.%d has unknown kv command %q", op.Conn, op.Idx, op.Name)
	}
	return nil
}

// waitTimeout decodes a recorded nanosecond wait timeout, compressing it
// in load mode so waits scale with the schedule.
func (x *replayRun) waitTimeout(arg []byte) (time.Duration, error) {
	ns, err := strconv.ParseInt(string(arg), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("timeout %q: %w", arg, err)
	}
	d := time.Duration(float64(ns) / x.speedOrOne())
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, nil
}

func argStrings(args [][]byte) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = string(a)
	}
	return out
}

// diverges reports whether a replayed reply differs from the recording,
// and how. Divergence is judged on outcomes a correct replay must
// reproduce, not on values that legitimately drift:
//
//   - recorded error: never divergent. Errors are environmental — a
//     trace captured across a primary failover records refused dials
//     that a replay against one healthy server cannot (and should not)
//     reproduce. Blocking errored ops still get a recorded-shaped
//     deadline (see exec) so they don't stall the schedule;
//   - WAITPREFIX: hit/miss shape only. The reply is the server's
//     mutation sequence number, which depends on global mutation count —
//     identical interleaving, different absolute value;
//   - everything else: the normalized replies must match byte-for-byte.
func diverges(op *Op, reply [][]byte, err error) (string, bool) {
	id := fmt.Sprintf("%s op %d.%d", op.Name, op.Conn, op.Idx)
	if op.Err != "" {
		return "", false
	}
	if err != nil {
		return fmt.Sprintf("%s: recorded success, replay error: %v", id, err), true
	}
	if op.Name == "WAITPREFIX" {
		if sameShape(op.Reply, reply) {
			return "", false
		}
		return fmt.Sprintf("%s: recorded %s, replayed %s", id, shapeOf(op.Reply), shapeOf(reply)), true
	}
	if len(op.Reply) != len(reply) {
		return fmt.Sprintf("%s: recorded %d reply elements, replayed %d", id, len(op.Reply), len(reply)), true
	}
	for i := range reply {
		if !bytes.Equal(op.Reply[i], reply[i]) {
			return fmt.Sprintf("%s: reply element %d: recorded %q, replayed %q", id, i, truncate(op.Reply[i]), truncate(reply[i])), true
		}
	}
	return "", false
}

// sameShape compares normalized replies by element tags only.
func sameShape(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ta, tb := byte(0), byte(0)
		if len(a[i]) > 0 {
			ta = a[i][0]
		}
		if len(b[i]) > 0 {
			tb = b[i][0]
		}
		if ta != tb {
			return false
		}
	}
	return true
}

func shapeOf(reply [][]byte) string {
	tags := make([]byte, 0, len(reply))
	for _, el := range reply {
		if len(el) > 0 {
			tags = append(tags, el[0])
		} else {
			tags = append(tags, '?')
		}
	}
	return string(tags)
}

func truncate(b []byte) string {
	const n = 48
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// KVSnapshot reads the current values of keys (MGet, in chunks) and
// returns present keys with their values — the final-state fingerprint
// the determinism tests compare across replays. Feed it Trace.KVKeys.
func KVSnapshot(ctx context.Context, kv kvstore.KV, keys []string) (map[string]string, error) {
	out := make(map[string]string)
	const chunk = 256
	for base := 0; base < len(keys); base += chunk {
		end := base + chunk
		if end > len(keys) {
			end = len(keys)
		}
		vals, err := kv.MGet(ctx, keys[base:end]...)
		if err != nil {
			return nil, err
		}
		for i, v := range vals {
			if v != nil {
				out[keys[base+i]] = string(v)
			}
		}
	}
	return out, nil
}

// SnapshotDiff renders the difference between two KVSnapshot maps,
// empty when identical — so a failing determinism assertion names the
// keys that drifted instead of dumping both maps.
func SnapshotDiff(a, b map[string]string) string {
	var keys []string
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var diffs []string
	for _, k := range keys {
		va, oka := a[k]
		vb, okb := b[k]
		switch {
		case !oka:
			diffs = append(diffs, fmt.Sprintf("%s: only in second (%q)", k, truncate([]byte(vb))))
		case !okb:
			diffs = append(diffs, fmt.Sprintf("%s: only in first (%q)", k, truncate([]byte(va))))
		case va != vb:
			diffs = append(diffs, fmt.Sprintf("%s: %q != %q", k, truncate([]byte(va)), truncate([]byte(vb))))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	if len(diffs) > maxDetails {
		diffs = append(diffs[:maxDetails], fmt.Sprintf("... and %d more", len(diffs)-maxDetails))
	}
	var buf bytes.Buffer
	for i, d := range diffs {
		if i > 0 {
			buf.WriteByte('\n')
		}
		buf.WriteString(d)
	}
	return buf.String()
}
