package wiretap_test

// Committed trace fixtures: recorded interleavings checked into testdata/
// and replayed as ordinary go test cases. Each fixture has a generator —
// an orchestrated live run, gated behind WIRETAP_UPDATE=1 so `go test`
// never silently rewrites evidence — and a replay test that loads the
// committed bytes and asserts the recorded interleaving reproduces
// deterministically on a fresh server.
//
// Regenerate with:
//
//	WIRETAP_UPDATE=1 go test ./internal/wiretap/ -run Fixture
//
// The claim-race generator doubles as a live regression test for the
// guard-context fix in tryClaim (it runs on every `go test`, with or
// without WIRETAP_UPDATE): it forces the claimer's context to die between
// the create-CAS and the floor guard and asserts the undo still runs.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/telemetry"
	"proxystore/internal/wiretap"
)

func updateFixtures() bool { return os.Getenv("WIRETAP_UPDATE") != "" }

func fixturePath(name string) string { return filepath.Join("testdata", name) }

func saveFixture(t *testing.T, tr *wiretap.Trace, name string) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(fixturePath(name)); err != nil {
		t.Fatalf("saving fixture %s: %v", name, err)
	}
	t.Logf("wrote %s: %d ops", fixturePath(name), len(tr.Ops))
}

func loadFixture(t *testing.T, name string) *wiretap.Trace {
	t.Helper()
	tr, err := wiretap.Load(fixturePath(name))
	if err != nil {
		t.Fatalf("loading committed fixture %s (regenerate with WIRETAP_UPDATE=1): %v", name, err)
	}
	if len(tr.Ops) == 0 {
		t.Fatalf("fixture %s is empty", name)
	}
	return tr
}

// assertDeterministicReplay replays tr twice at 1× on fresh servers and
// asserts the tentpole guarantee: identical issue orders, identical
// final key sets, zero divergence from the recording, nothing stalled or
// straggling. It returns the (shared) final state for scenario asserts.
func assertDeterministicReplay(t *testing.T, tr *wiretap.Trace) map[string]string {
	t.Helper()
	r1, s1 := replayOnce(t, tr, 1)
	r2, s2 := replayOnce(t, tr, 1)
	for i, r := range []*wiretap.Report{r1, r2} {
		if r.Ops != len(tr.Ops) {
			t.Fatalf("replay %d ran %d ops, trace has %d", i+1, r.Ops, len(tr.Ops))
		}
		if r.Divergences != 0 {
			t.Fatalf("replay %d diverged %d times:\n%s", i+1, r.Divergences, joinDetails(r))
		}
		if r.Stragglers != 0 || r.StallReleases != 0 {
			t.Fatalf("replay %d: %d stragglers, %d stall releases", i+1, r.Stragglers, r.StallReleases)
		}
	}
	if !reflect.DeepEqual(r1.IssueOrder, r2.IssueOrder) {
		t.Fatal("the two replays issued commands in different orders")
	}
	if diff := wiretap.SnapshotDiff(s1, s2); diff != "" {
		t.Fatalf("the two replays left different server state:\n%s", diff)
	}
	return s1
}

// hookWrap composes an orchestration tap outside the recorder's: the
// recorder logs each operation's completion first, then hook runs —
// blocking the calling goroutine at an exact point in the interleaving,
// with the op already on the record.
func hookWrap(rec *wiretap.Recorder, hook func(name string, args [][]byte, reply [][]byte, err error)) func(kvstore.KV) kvstore.KV {
	return func(kv kvstore.KV) kvstore.KV {
		return kvstore.NewTap(rec.WrapKV(kv), func(name string, args [][]byte, _ bool) kvstore.TapDone {
			return func(reply [][]byte, err error) { hook(name, args, reply, err) }
		})
	}
}

const (
	claimRaceFixture = "claim_race.trace"
	churnFixture     = "group_churn.trace"
	failoverFixture  = "failover.trace"
)

// --- Fixture 1: claim undone under a dying context ------------------------

// TestClaimRaceUndoLive reproduces, deterministically and on every run,
// the race the heartbeat-reclaim work fixed in tryClaim: member A reads
// the claim key of slot 0 as free and pauses; member B claims the slot,
// acks it, and sweeps the floor past it (GC'ing the claim record); A
// resumes and its create-CAS wins on the swept slot — a claim stranded
// below the floor, invisible to every future sweep — and A's context is
// canceled the instant the CAS completes. The floor guard must still run
// (it uses context.WithoutCancel) and delete the resurrected claim.
//
// With WIRETAP_UPDATE=1 the recorded interleaving is saved as the
// committed claim_race fixture.
func TestClaimRaceUndoLive(t *testing.T) {
	ctx := context.Background()
	srv := newServer(t)
	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	rec.SetMeta("scenario", "claim-race-undo")

	const topic, group = "fx", "g"
	claimKey := "ps:" + topic + ":g:" + group + ":c:0"

	ctxA, cancelA := context.WithCancel(ctx)
	defer cancelA()
	paused := make(chan struct{})
	resume := make(chan struct{})
	sawPause := false
	hook := func(name string, args [][]byte, reply [][]byte, err error) {
		if name == "GET" && len(args) == 1 && string(args[0]) == claimKey &&
			len(reply) == 1 && string(reply[0]) == "n" && !sawPause {
			// A observed slot 0 unclaimed; freeze it here, pre-CAS.
			sawPause = true
			close(paused)
			<-resume
		}
		if name == "CAS" && len(args) == 3 && string(args[0]) == claimKey && err == nil &&
			len(reply) == 1 && string(reply[0]) == "i1" && len(args[1]) == 0 {
			// A's create-CAS just won a swept slot: kill its context
			// before the floor guard, the exact window of the race.
			cancelA()
		}
	}
	bA := pstream.NewKV(srv.Addr(),
		pstream.WithKVWrap(hookWrap(rec, hook)),
		pstream.WithKVTelemetry(telemetry.NewRegistry()))
	defer bA.Close()
	bB := pstream.NewKV(srv.Addr(),
		pstream.WithKVWrap(rec.WrapKV),
		pstream.WithKVTelemetry(telemetry.NewRegistry()))
	defer bB.Close()

	if err := bB.Publish(ctx, topic, pstream.Event{Topic: topic, Producer: "p", Seq: 1,
		ProxyData: []byte("payload-0")}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	subA, err := bA.SubscribeGroup(ctxA, topic, group, "ma")
	if err != nil {
		t.Fatalf("SubscribeGroup ma: %v", err)
	}
	subB, err := bB.SubscribeGroup(ctx, topic, group, "mb")
	if err != nil {
		t.Fatalf("SubscribeGroup mb: %v", err)
	}

	type pollResult struct {
		ok  bool
		err error
	}
	aDone := make(chan pollResult, 1)
	go func() {
		_, ok, err := subA.Poll(ctxA)
		aDone <- pollResult{ok, err}
	}()

	select {
	case <-paused:
	case <-time.After(10 * time.Second):
		t.Fatal("member A never reached the claim-key read")
	}
	// A is frozen between its GET and its CAS. B takes the slot, acks it,
	// and sweeps the floor past it — deleting the claim record.
	evB, ok, err := subB.Poll(ctx)
	if err != nil || !ok || evB.Offset != 0 {
		t.Fatalf("B Poll = %+v, %v, %v; want offset 0", evB, ok, err)
	}
	if _, err := subB.Ack(ctx, evB); err != nil {
		t.Fatalf("B Ack: %v", err)
	}
	probe := kvstore.NewClient(srv.Addr())
	defer probe.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := subB.Poll(ctx); err != nil {
			t.Fatalf("B sweep Poll: %v", err)
		}
		if _, held, err := probe.Get(ctx, claimKey); err != nil {
			t.Fatal(err)
		} else if !held {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("floor sweep never GC'd the acked claim record")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(resume)

	// A resumes: create-CAS wins on the swept slot, its context dies, and
	// the guard-context floor check must still undo the claim.
	res := <-aDone
	if res.ok {
		t.Fatal("A claimed an event on a fully-settled topic")
	}
	_ = res.err // canceled-context errors after the undo are acceptable

	if raw, held, err := probe.Get(ctx, claimKey); err != nil {
		t.Fatal(err)
	} else if held {
		t.Fatalf("claim record %q stranded below the floor: the guard-context undo did not run", raw)
	}
	if floor, held, err := probe.Get(ctx, "ps:"+topic+":g:"+group+":f"); err != nil || !held || string(floor) != "1" {
		t.Fatalf("floor = %q, %v, %v; want 1", floor, held, err)
	}

	tr := rec.Trace()
	assertClaimUndoInTrace(t, tr, claimKey)
	if updateFixtures() {
		saveFixture(t, tr, claimRaceFixture)
	}
}

// assertClaimUndoInTrace finds the race's signature in a trace: a winning
// create-CAS on the claim key followed, on the same connection, by a
// winning DEL of it — the guard's undo — with no later write to the key.
func assertClaimUndoInTrace(t *testing.T, tr *wiretap.Trace, claimKey string) {
	t.Helper()
	casAt := -1
	var conn uint64
	for i, op := range tr.Ops {
		if op.Name == "CAS" && len(op.Args) == 3 && string(op.Args[0]) == claimKey &&
			len(op.Args[1]) == 0 && op.Err == "" &&
			len(op.Reply) == 1 && string(op.Reply[0]) == "i1" {
			casAt, conn = i, op.Conn
		}
	}
	if casAt < 0 {
		t.Fatal("trace holds no winning create-CAS on the claim key: the race was not recorded")
	}
	undoAt := -1
	for i := casAt + 1; i < len(tr.Ops); i++ {
		op := tr.Ops[i]
		if op.Name == "DEL" && op.Conn == conn && len(op.Args) == 1 &&
			string(op.Args[0]) == claimKey && op.Err == "" &&
			len(op.Reply) == 1 && string(op.Reply[0]) == "i1" {
			undoAt = i
		}
		if (op.Name == "SET" || op.Name == "CAS") && len(op.Args) > 0 && string(op.Args[0]) == claimKey && i > casAt {
			t.Fatalf("trace op %d rewrites the claim key after the racing CAS", i)
		}
	}
	if undoAt < 0 {
		t.Fatal("trace holds no undo DEL after the racing CAS: the stranded claim was never cleaned up")
	}
}

// TestClaimRaceFixtureReplay replays the committed claim-race trace: the
// interleaving must reproduce exactly — racing CAS wins again, undo DEL
// runs again — and the final state must show no stranded claim.
func TestClaimRaceFixtureReplay(t *testing.T) {
	tr := loadFixture(t, claimRaceFixture)
	claimKey := "ps:fx:g:g:c:0"
	assertClaimUndoInTrace(t, tr, claimKey)
	snap := assertDeterministicReplay(t, tr)
	if v, held := snap[claimKey]; held {
		t.Fatalf("replay stranded claim record %q below the floor", v)
	}
	if snap["ps:fx:g:g:f"] != "1" {
		t.Fatalf("replayed floor = %q, want 1", snap["ps:fx:g:g:f"])
	}
}

// --- Fixture 2: group churn — lease expiry steal --------------------------

// TestGroupChurnFixtureUpdate records the group-churn fixture: member A
// claims slot 0 and abandons it (a crashed member); member B works the
// rest of the queue around the live lease, then steals slot 0 with an
// exact-record CAS once the lease expires, and drains the stream.
func TestGroupChurnFixtureUpdate(t *testing.T) {
	if !updateFixtures() {
		t.Skip("fixture generator; run with WIRETAP_UPDATE=1")
	}
	ctx := context.Background()
	srv := newServer(t)
	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	rec.SetMeta("scenario", "group-churn-steal")

	const topic, group = "ch", "g"
	const lease = 75 * time.Millisecond
	b := pstream.NewKV(srv.Addr(),
		pstream.WithKVWrap(rec.WrapKV),
		pstream.WithKVLease(lease),
		pstream.WithKVTelemetry(telemetry.NewRegistry()))
	defer b.Close()

	const items = 4
	for i := 0; i < items; i++ {
		ev := pstream.Event{Topic: topic, Producer: "p", Seq: uint64(i + 1),
			ProxyData: []byte(fmt.Sprintf("payload-%d", i))}
		if err := b.Publish(ctx, topic, ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := b.Publish(ctx, topic, pstream.Event{Topic: topic, Producer: "p",
		Seq: items + 1, End: true}); err != nil {
		t.Fatalf("Publish end: %v", err)
	}

	subA, err := b.SubscribeGroup(ctx, topic, group, "ma")
	if err != nil {
		t.Fatal(err)
	}
	subB, err := b.SubscribeGroup(ctx, topic, group, "mb")
	if err != nil {
		t.Fatal(err)
	}

	// A claims slot 0 and walks away mid-lease.
	evA, ok, err := subA.Poll(ctx)
	if err != nil || !ok || evA.Offset != 0 {
		t.Fatalf("A Poll = %+v, %v, %v; want offset 0", evA, ok, err)
	}

	// B consumes everything it can reach around A's live lease.
	for want := uint64(1); want < items; want++ {
		ev, ok, err := subB.Poll(ctx)
		if err != nil || !ok || ev.Offset != want {
			t.Fatalf("B Poll = %+v, %v, %v; want offset %d", ev, ok, err, want)
		}
		if _, err := subB.Ack(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}

	// The lease expires; B's next scan steals A's claim with an
	// exact-record CAS and the queue drains to the End marker.
	time.Sleep(lease + 50*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	stole := false
	for {
		ev, ok, err := subB.Poll(ctx)
		if err != nil {
			t.Fatalf("B Poll: %v", err)
		}
		if ok && ev.End {
			break
		}
		if ok {
			if ev.Offset != 0 {
				t.Fatalf("B stole offset %d, want 0", ev.Offset)
			}
			stole = true
			if _, err := subB.Ack(ctx, ev); err != nil {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("B never drained the stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !stole {
		t.Fatal("B reached End without stealing slot 0")
	}
	tr := rec.Trace()
	assertStealInTrace(t, tr, "ps:"+topic+":g:"+group+":c:0", "ma", "mb")
	saveFixture(t, tr, churnFixture)
}

// assertStealInTrace finds the lease-expiry steal: a winning CAS on the
// claim key whose old value is the abandoned member's exact claim record
// and whose new value names the thief.
func assertStealInTrace(t *testing.T, tr *wiretap.Trace, claimKey, victim, thief string) {
	t.Helper()
	for _, op := range tr.Ops {
		if op.Name == "CAS" && len(op.Args) == 3 && string(op.Args[0]) == claimKey &&
			bytes.HasPrefix(op.Args[1], []byte("c|"+victim+"|")) &&
			bytes.HasPrefix(op.Args[2], []byte("c|"+thief+"|")) &&
			op.Err == "" && len(op.Reply) == 1 && string(op.Reply[0]) == "i1" {
			return
		}
	}
	t.Fatalf("trace holds no winning exact-record steal CAS on %s (%s from %s)", claimKey, thief, victim)
}

// TestGroupChurnFixtureReplay replays the committed churn trace twice:
// the steal interleaving must reproduce, and the drained queue must look
// the same on every replay — floor past the End marker, no claim records
// left, every event slot intact.
func TestGroupChurnFixtureReplay(t *testing.T) {
	tr := loadFixture(t, churnFixture)
	claimPrefix := "ps:ch:g:g:c:"
	assertStealInTrace(t, tr, claimPrefix+"0", "ma", "mb")
	snap := assertDeterministicReplay(t, tr)
	if got := snap["ps:ch:g:g:f"]; got != "5" {
		t.Fatalf("replayed floor = %q, want 5 (4 payloads + End swept)", got)
	}
	for k, v := range snap {
		if strings.HasPrefix(k, claimPrefix) {
			t.Fatalf("claim record %s=%q survived the drain", k, v)
		}
	}
	for i := 0; i < 4; i++ {
		if _, held := snap[fmt.Sprintf("ps:ch:e:%d", i)]; !held {
			t.Fatalf("event slot %d missing after replay", i)
		}
	}
}

// --- Fixture 3: failover — consuming across a primary kill ----------------

// TestFailoverFixtureUpdate records the failover fixture: a group member
// consumes from a primary/replica pair, the primary dies mid-run, and
// consumption finishes against the promoted replica. The recorded ops
// that failed during the outage stay in the trace (replay treats
// recorded errors as environmental); the successful ops replay unchanged
// against one healthy server.
func TestFailoverFixtureUpdate(t *testing.T) {
	if !updateFixtures() {
		t.Skip("fixture generator; run with WIRETAP_UPDATE=1")
	}
	ctx := context.Background()
	dir := t.TempDir()
	prim, err := kvstore.NewServer("127.0.0.1:0",
		kvstore.WithPersistence(filepath.Join(dir, "primary.aof")))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prim.Close() })
	repl, err := kvstore.NewServer("127.0.0.1:0",
		kvstore.WithPersistence(filepath.Join(dir, "replica.aof")),
		kvstore.WithReplicaOf(prim.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repl.Close() })

	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	rec.SetMeta("scenario", "failover")
	const topic, group = "fo", "g"
	b := pstream.NewKV(prim.Addr()+"|"+repl.Addr(),
		pstream.WithKVWrap(rec.WrapKV),
		pstream.WithKVTelemetry(telemetry.NewRegistry()))
	defer b.Close()

	const items = 3
	for i := 0; i < items; i++ {
		ev := pstream.Event{Topic: topic, Producer: "p", Seq: uint64(i + 1),
			ProxyData: []byte(fmt.Sprintf("payload-%d", i))}
		if err := b.Publish(ctx, topic, ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := b.Publish(ctx, topic, pstream.Event{Topic: topic, Producer: "p",
		Seq: items + 1, End: true}); err != nil {
		t.Fatalf("Publish end: %v", err)
	}

	sub, err := b.SubscribeGroup(ctx, topic, group, "m0")
	if err != nil {
		t.Fatal(err)
	}
	ev, ok, err := sub.Poll(ctx)
	if err != nil || !ok || ev.Offset != 0 {
		t.Fatalf("Poll = %+v, %v, %v; want offset 0", ev, ok, err)
	}
	if _, err := sub.Ack(ctx, ev); err != nil {
		t.Fatal(err)
	}

	// Kill the primary between operations (graceful close drains the
	// replication feed, so the replica holds every acknowledged write)
	// and finish the stream against the promoted replica.
	if err := prim.Close(); err != nil {
		t.Fatal(err)
	}
	consumed := map[uint64]bool{0: true}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ev, ok, err := sub.Poll(ctx)
		if err != nil {
			// The outage window: recorded, expected, retried.
			if time.Now().After(deadline) {
				t.Fatalf("failover never completed: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if ok && ev.End {
			break
		}
		if ok {
			consumed[ev.Offset] = true
			if _, err := sub.Ack(ctx, ev); err != nil {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never drained after failover")
		}
		if !ok {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(consumed) != items {
		t.Fatalf("consumed %d items across the failover, want %d", len(consumed), items)
	}
	tr := rec.Trace()
	saveFixture(t, tr, failoverFixture)
}

// TestFailoverFixtureReplay replays the committed failover trace against
// one healthy server: the interleaving recorded across two backends must
// replay deterministically on one, with the full stream drained.
func TestFailoverFixtureReplay(t *testing.T) {
	tr := loadFixture(t, failoverFixture)
	snap := assertDeterministicReplay(t, tr)
	if got := snap["ps:fo:g:g:f"]; got != "4" {
		t.Fatalf("replayed floor = %q, want 4 (3 payloads + End swept)", got)
	}
	for i := 0; i < 3; i++ {
		if _, held := snap[fmt.Sprintf("ps:fo:e:%d", i)]; !held {
			t.Fatalf("event slot %d missing after replay", i)
		}
	}
}
