package wiretap_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"proxystore/internal/kvstore"
	"proxystore/internal/msgnet"
	"proxystore/internal/pstream"
	"proxystore/internal/telemetry"
	"proxystore/internal/wiretap"
)

func sampleTrace() *wiretap.Trace {
	return &wiretap.Trace{
		Meta: map[string]string{"profile": "test", "items": "3"},
		Ops: []wiretap.Op{
			{Conn: 0, Idx: 0, Plane: wiretap.PlaneKV, Name: "SET",
				Args:  [][]byte{[]byte("k"), []byte("v")},
				Reply: nil, Start: 10, End: 20},
			{Conn: 1, Idx: 0, Plane: wiretap.PlaneKV, Name: "GET",
				Args:  [][]byte{[]byte("k")},
				Reply: [][]byte{[]byte("b"), []byte("v")}, Start: 30, End: 45, Dep: 1},
			{Conn: 1, Idx: 1, Plane: wiretap.PlaneKV, Name: "WAITGET", Blocking: true,
				Args:  [][]byte{[]byte("k2"), []byte("1000000")},
				Reply: [][]byte{[]byte("n")}, Err: "", Start: 50, End: 1050, Dep: 2},
			{Conn: 2, Idx: 0, Plane: wiretap.PlaneMsg, Name: "REQUEST",
				Args:  [][]byte{{0x01, 0x02, 0x00}},
				Reply: [][]byte{{0x03}}, Start: 60, End: 70, Dep: 2},
			{Conn: 0, Idx: 1, Plane: wiretap.PlaneKV, Name: "CAS",
				Args: [][]byte{[]byte("k"), nil, []byte("w")},
				Err:  "kvstore: dialing: refused", Start: 80, End: 90, Dep: 4},
		},
	}
}

// tracesEquivalent compares traces up to the nil-vs-empty []byte
// distinction, which the codec does not preserve.
func tracesEquivalent(t *testing.T, a, b *wiretap.Trace) {
	t.Helper()
	if !reflect.DeepEqual(a.Meta, b.Meta) {
		t.Fatalf("meta mismatch: %v != %v", a.Meta, b.Meta)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op count mismatch: %d != %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		oa, ob := a.Ops[i], b.Ops[i]
		if oa.Conn != ob.Conn || oa.Idx != ob.Idx || oa.Plane != ob.Plane ||
			oa.Name != ob.Name || oa.Err != ob.Err || oa.Blocking != ob.Blocking ||
			oa.Start != ob.Start || oa.End != ob.End || oa.Dep != ob.Dep {
			t.Fatalf("op %d fields mismatch:\n%+v\n%+v", i, oa, ob)
		}
		for what, pair := range map[string][2][][]byte{
			"args":  {oa.Args, ob.Args},
			"reply": {oa.Reply, ob.Reply},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("op %d %s length mismatch: %d != %d", i, what, len(pair[0]), len(pair[1]))
			}
			for j := range pair[0] {
				if !bytes.Equal(pair[0][j], pair[1][j]) {
					t.Fatalf("op %d %s[%d]: %q != %q", i, what, j, pair[0][j], pair[1][j])
				}
			}
		}
	}
}

func TestTraceCodecRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := wiretap.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	tracesEquivalent(t, tr, got)

	// Encoding is deterministic: encode(decode(x)) == encode(x).
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	var buf3 bytes.Buffer
	if err := tr.Encode(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("re-encoded trace differs byte-wise from original encoding")
	}
}

func TestTraceKVKeys(t *testing.T) {
	tr := &wiretap.Trace{Ops: []wiretap.Op{
		{Plane: wiretap.PlaneKV, Name: "SET", Args: [][]byte{[]byte("a"), []byte("v")}},
		{Plane: wiretap.PlaneKV, Name: "MGET", Args: [][]byte{[]byte("b"), []byte("c")}},
		{Plane: wiretap.PlaneKV, Name: "DELRANGE", Args: [][]byte{[]byte("p:"), []byte("1"), []byte("3")}},
		{Plane: wiretap.PlaneKV, Name: "PIPELINE", Args: [][]byte{
			[]byte("1"), []byte("INCR"), []byte("1"), []byte("n")}},
		{Plane: wiretap.PlaneMsg, Name: "REQUEST", Args: [][]byte{[]byte("ignored")}},
	}}
	got := tr.KVKeys()
	want := []string{"a", "b", "c", "n", "p:1", "p:2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KVKeys = %v, want %v", got, want)
	}
}

func newServer(t *testing.T) *kvstore.Server {
	t.Helper()
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// recordGroupRun drives a concurrent two-member group consumption through
// a recording broker and returns the trace plus the recording server's
// final state over the trace's key set.
func recordGroupRun(t *testing.T) (*wiretap.Trace, map[string]string) {
	t.Helper()
	ctx := context.Background()
	srv := newServer(t)
	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	b := pstream.NewKV(srv.Addr(),
		pstream.WithKVWrap(rec.WrapKV),
		pstream.WithKVTelemetry(telemetry.NewRegistry()))

	const items = 8
	for i := 0; i < items; i++ {
		ev := pstream.Event{Topic: "t", Producer: "p", Seq: uint64(i + 1),
			ProxyData: []byte(fmt.Sprintf("payload-%d", i))}
		if err := b.Publish(ctx, "t", ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := b.Publish(ctx, "t", pstream.Event{Topic: "t", Producer: "p", Seq: items + 1, End: true}); err != nil {
		t.Fatalf("Publish end: %v", err)
	}

	// Two group members claim alternately from one goroutine: a real
	// multi-member claim interleaving, but causally chained — every op
	// happens-before the next — so the recording is exactly reproducible.
	// (Free-running races are exercised by TestReplayCompressed's
	// convergence check and the orchestrated fixtures.)
	consumed := map[uint64]string{}
	var subs [2]pstream.Subscription
	for m := range subs {
		sub, err := b.SubscribeGroup(ctx, "t", "g", fmt.Sprintf("m%d", m))
		if err != nil {
			t.Fatalf("SubscribeGroup: %v", err)
		}
		subs[m] = sub
	}
	var ended [2]bool
	for !ended[0] || !ended[1] {
		for m, sub := range subs {
			if ended[m] {
				continue
			}
			ev, ok, err := sub.Poll(ctx)
			if err != nil {
				t.Fatalf("Poll m%d: %v", m, err)
			}
			if !ok {
				continue
			}
			if ev.End {
				ended[m] = true
				continue
			}
			member := fmt.Sprintf("m%d", m)
			if prev, dup := consumed[ev.Offset]; dup {
				t.Fatalf("offset %d consumed by %s and %s", ev.Offset, prev, member)
			}
			consumed[ev.Offset] = member
			if _, err := sub.Ack(ctx, ev); err != nil {
				t.Fatalf("Ack: %v", err)
			}
		}
	}
	for m := range consumed {
		if consumed[m] == "" {
			t.Fatalf("offset %d unconsumed", m)
		}
	}
	if len(consumed) != items {
		t.Fatalf("group consumed %d events, want %d", len(consumed), items)
	}
	b.Close()

	tr := rec.Trace()
	if len(tr.Ops) == 0 {
		t.Fatal("recorder captured no operations")
	}
	probe := kvstore.NewClient(srv.Addr())
	defer probe.Close()
	snap, err := wiretap.KVSnapshot(ctx, probe, tr.KVKeys())
	if err != nil {
		t.Fatalf("KVSnapshot: %v", err)
	}
	return tr, snap
}

// replayOnce replays tr at speed against a fresh server, returning the
// report and the final state over the trace's key set.
func replayOnce(t *testing.T, tr *wiretap.Trace, speed float64) (*wiretap.Report, map[string]string) {
	t.Helper()
	ctx := context.Background()
	srv := newServer(t)
	cl := kvstore.NewClient(srv.Addr())
	defer cl.Close()
	rep := wiretap.NewReplayer(
		wiretap.WithKVTarget(cl),
		wiretap.WithSpeed(speed),
		wiretap.WithReplayRegistry(telemetry.NewRegistry()))
	report, err := rep.Run(ctx, tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap, err := wiretap.KVSnapshot(ctx, cl, tr.KVKeys())
	if err != nil {
		t.Fatalf("KVSnapshot: %v", err)
	}
	return report, snap
}

// TestReplayDeterministic is the tentpole guarantee: record a live
// concurrent group run once, replay it twice at 1×, and the two replays
// issue identical command sequences and leave byte-identical server
// state — which also matches the recording server's state.
func TestReplayDeterministic(t *testing.T) {
	tr, liveSnap := recordGroupRun(t)

	r1, s1 := replayOnce(t, tr, 1)
	r2, s2 := replayOnce(t, tr, 1)

	if r1.Ops != len(tr.Ops) || r2.Ops != len(tr.Ops) {
		t.Fatalf("replayed %d and %d ops, trace has %d", r1.Ops, r2.Ops, len(tr.Ops))
	}
	if r1.Divergences != 0 {
		t.Fatalf("first replay diverged %d times:\n%s", r1.Divergences, joinDetails(r1))
	}
	if r2.Divergences != 0 {
		t.Fatalf("second replay diverged %d times:\n%s", r2.Divergences, joinDetails(r2))
	}
	if r1.Stragglers != 0 || r2.Stragglers != 0 {
		t.Fatalf("stragglers: %d and %d, want 0", r1.Stragglers, r2.Stragglers)
	}
	if !reflect.DeepEqual(r1.IssueOrder, r2.IssueOrder) {
		t.Fatal("the two replays issued commands in different orders")
	}
	if diff := wiretap.SnapshotDiff(s1, s2); diff != "" {
		t.Fatalf("replayed servers diverged from each other:\n%s", diff)
	}
	if diff := wiretap.SnapshotDiff(liveSnap, s1); diff != "" {
		t.Fatalf("replayed server diverged from the recording server:\n%s", diff)
	}
}

// TestReplayCompressed replays the recorded run at 50× as trace-driven
// load: every op must execute, and state must still converge to the
// recording (group claims are CAS-guarded, so racing replays stay
// exactly-once).
func TestReplayCompressed(t *testing.T) {
	tr, liveSnap := recordGroupRun(t)
	report, snap := replayOnce(t, tr, 50)
	if report.Ops != len(tr.Ops) {
		t.Fatalf("replayed %d ops, trace has %d", report.Ops, len(tr.Ops))
	}
	if report.Stragglers != 0 {
		t.Fatalf("%d stragglers after compressed replay", report.Stragglers)
	}
	// Compressed mode races by design: reply divergence and differently-
	// ordered claim bookkeeping (a GC sweep racing an ack) are expected.
	// The write-once part of the state — the event log and its length —
	// must still converge exactly.
	writeOnce := func(snap map[string]string) map[string]string {
		out := map[string]string{}
		for k, v := range snap {
			if strings.HasPrefix(k, "ps:t:e:") || k == "ps:t:len" {
				out[k] = v
			}
		}
		return out
	}
	if diff := wiretap.SnapshotDiff(writeOnce(liveSnap), writeOnce(snap)); diff != "" {
		t.Fatalf("compressed replay event log diverged:\n%s", diff)
	}
}

func joinDetails(r *wiretap.Report) string {
	out := ""
	for _, d := range r.Details {
		out += "  " + d + "\n"
	}
	return out
}

// TestRecorderDepPrefix checks the happens-before encoding: an op's Dep
// counts exactly the ops completed before it was issued, and sequential
// ops on one recorder are totally ordered.
func TestRecorderDepPrefix(t *testing.T) {
	ctx := context.Background()
	srv := newServer(t)
	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	kv := rec.WrapKV(kvstore.NewClient(srv.Addr()))
	defer kv.Close()

	if err := kv.Set(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kv.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Incr(ctx, "n"); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if len(tr.Ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(tr.Ops))
	}
	for i, op := range tr.Ops {
		if op.Dep != uint64(i) {
			t.Fatalf("sequential op %d has Dep %d, want %d", i, op.Dep, i)
		}
		if op.Idx != uint64(i) {
			t.Fatalf("op %d has Idx %d, want %d (one connection)", i, op.Idx, i)
		}
		if op.End < op.Start {
			t.Fatalf("op %d has End %d < Start %d", i, op.End, op.Start)
		}
	}
	if tr.Ops[1].Name != "GET" || string(tr.Ops[1].Reply[1]) != "1" {
		t.Fatalf("GET recorded as %s %q", tr.Ops[1].Name, tr.Ops[1].Reply)
	}
}

// TestRecorderPipeline checks that batched commands are recorded through
// the pipeline tap with their full contents and replayed faithfully.
func TestRecorderPipeline(t *testing.T) {
	ctx := context.Background()
	srv := newServer(t)
	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	kv := rec.WrapKV(kvstore.NewClient(srv.Addr()))
	defer kv.Close()

	p := kv.Pipeline()
	p.Set("pk1", []byte("v1"))
	p.Incr("pn")
	p.Get("pk1")
	if err := p.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	tr := rec.Trace()
	if len(tr.Ops) != 1 || tr.Ops[0].Name != "PIPELINE" {
		t.Fatalf("recorded %+v, want one PIPELINE op", tr.Ops)
	}

	report, snap := replayOnce(t, tr, 1)
	if report.Divergences != 0 {
		t.Fatalf("pipeline replay diverged:\n%s", joinDetails(report))
	}
	if snap["pk1"] != "v1" || snap["pn"] != "1" {
		t.Fatalf("replayed state = %v", snap)
	}
}

// TestMsgRecordReplay round-trips the msgnet plane: requests recorded
// through a tapped client replay against a fresh server with identical
// replies.
func TestMsgRecordReplay(t *testing.T) {
	ctx := context.Background()
	echo := func(_ context.Context, req []byte) ([]byte, error) {
		if len(req) > 0 && req[0] == 'x' {
			return nil, fmt.Errorf("rejected %q", req)
		}
		return append([]byte("ok:"), req...), nil
	}
	srv, err := msgnet.NewServer("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	cl := msgnet.NewClient(srv.Addr(), msgnet.WithTap(rec.MsgTap()))
	defer cl.Close()
	if _, err := cl.Request(ctx, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Request(ctx, []byte("xfail")); err == nil {
		t.Fatal("expected handler error")
	}
	if _, err := cl.Request(ctx, []byte("world")); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if len(tr.Ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(tr.Ops))
	}

	srv2, err := msgnet.NewServer("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2 := msgnet.NewClient(srv2.Addr())
	defer cl2.Close()
	rep := wiretap.NewReplayer(
		wiretap.WithMsgTarget(cl2),
		wiretap.WithReplayRegistry(telemetry.NewRegistry()))
	report, err := rep.Run(ctx, tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.Divergences != 0 {
		t.Fatalf("msg replay diverged:\n%s", joinDetails(report))
	}
}

// TestReplayRequiresTargets checks the loud-failure stance for traces
// aimed at missing targets.
func TestReplayRequiresTargets(t *testing.T) {
	tr := sampleTrace()
	rep := wiretap.NewReplayer(wiretap.WithReplayRegistry(telemetry.NewRegistry()))
	if _, err := rep.Run(context.Background(), tr); err == nil {
		t.Fatal("replay without targets should fail")
	}
}

// TestReplayBlockedWaitWakes pins the async dispatch of blocking ops: a
// recorded WAITGET that was satisfied by a later SET must replay without
// deadlock and with the recorded reply.
func TestReplayBlockedWaitWakes(t *testing.T) {
	ctx := context.Background()
	srv := newServer(t)
	rec := wiretap.NewRecorder(wiretap.WithRecorderRegistry(telemetry.NewRegistry()))
	waiter := rec.WrapKV(kvstore.NewClient(srv.Addr()))
	setter := rec.WrapKV(kvstore.NewClient(srv.Addr()))
	defer waiter.Close()
	defer setter.Close()

	done := make(chan error, 1)
	go func() {
		val, ok, err := waiter.WaitGet(ctx, "wake", 5*time.Second)
		if err == nil && (!ok || string(val) != "up") {
			err = fmt.Errorf("WaitGet = %q, %v", val, ok)
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := setter.Set(ctx, "wake", []byte("up")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()

	report, snap := replayOnce(t, tr, 1)
	if report.Divergences != 0 {
		t.Fatalf("replay diverged:\n%s", joinDetails(report))
	}
	if report.Stragglers != 0 {
		t.Fatalf("%d stragglers: the blocked wait never woke", report.Stragglers)
	}
	if snap["wake"] != "up" {
		t.Fatalf("final state %v", snap)
	}
}
