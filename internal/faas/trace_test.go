package faas

import (
	"context"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/local"
	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
)

// TestStreamTaskTrace drives one task through the full stream plane over
// a KVBroker and reconstructs its trace from the process registry: the
// submit on the client, the task-event publish, the execute on the
// endpoint, the result-event publish, and the delivery back to the
// client's dispatcher must all share one trace ID with parent links
// mirroring the hops.
func TestStreamTaskTrace(t *testing.T) {
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	b := pstream.NewKV(srv.Addr())
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-trace-"+id, local.New("faas-trace-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-trace-" + id) })

	epName := "trace-ep-" + id
	ep := StartStreamEndpoint(st, b, epName, 2)
	t.Cleanup(func() { ep.Close() })
	exec, err := NewStreamExecutor(st, b, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}
	t.Cleanup(func() { exec.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fut, err := exec.Submit(ctx, "echo", []byte("traced"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Result(ctx); err != nil {
		t.Fatalf("Result: %v", err)
	}

	// The "deliver" span is recorded by the dispatcher goroutine right
	// around the future's delivery; give it a beat to land in the ring.
	var spans []telemetry.SpanRecord
	deadline := time.Now().Add(5 * time.Second)
	for {
		// The registry is process-global: pick out our task's trace as the
		// one rooted by a parentless submit whose children are all present.
		for _, root := range telemetry.Default().Snapshot().Spans {
			if root.Name != "submit" || root.Parent != "" {
				continue
			}
			tr := telemetry.Default().Snapshot().Trace(root.Trace)
			if len(tr) >= 5 {
				spans = tr
			}
		}
		if spans != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if spans == nil {
		t.Fatalf("no complete trace found in registry snapshot")
	}

	byName := map[string][]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, want := range []string{"submit", "execute", "deliver"} {
		if len(byName[want]) != 1 {
			t.Fatalf("trace has %d %q spans, want 1 (trace: %+v)", len(byName[want]), want, spans)
		}
	}
	if len(byName["publish"]) != 2 {
		t.Fatalf("trace has %d publish spans, want 2 (task + result)", len(byName["publish"]))
	}

	submit, execute, deliver := byName["submit"][0], byName["execute"][0], byName["deliver"][0]
	if execute.Parent != submit.ID {
		t.Fatalf("execute parent = %q, want submit %q", execute.Parent, submit.ID)
	}
	if deliver.Parent != execute.ID {
		t.Fatalf("deliver parent = %q, want execute %q", deliver.Parent, execute.ID)
	}
	var taskPub, resPub bool
	for _, p := range byName["publish"] {
		switch p.Parent {
		case submit.ID:
			taskPub = true
		case execute.ID:
			resPub = true
		}
	}
	if !taskPub || !resPub {
		t.Fatalf("publish spans not parented under submit and execute: %+v", byName["publish"])
	}
}
