package faas

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"proxystore/internal/connectors/local"
	"proxystore/internal/netsim"
	"proxystore/internal/proxy"
	"proxystore/internal/store"
)

func newPlatform(t *testing.T, clientSite, endpointSite string) (*Cloud, *Executor, *Endpoint) {
	t.Helper()
	n := netsim.Testbed(1000)
	cloud := NewCloud(n, netsim.SiteCloud)
	ep := StartEndpoint(cloud, "test-ep", endpointSite, 4)
	t.Cleanup(func() { ep.Close() })
	return cloud, NewExecutor(cloud, "test-ep", clientSite), ep
}

func init() {
	RegisterFunction("echo", func(_ context.Context, args []any) (any, error) {
		return args[0], nil
	})
	RegisterFunction("fail", func(context.Context, []any) (any, error) {
		return nil, fmt.Errorf("task exploded")
	})
	RegisterFunction("sum", func(_ context.Context, args []any) (any, error) {
		total := 0
		for _, a := range args {
			total += a.(int)
		}
		return total, nil
	})
	proxy.RegisterGob[[]byte]()
	RegisterFunction("resolve-proxy", func(ctx context.Context, args []any) (any, error) {
		p, ok := args[0].(*proxy.Proxy[[]byte])
		if !ok {
			return nil, fmt.Errorf("expected a proxy, got %T", args[0])
		}
		data, err := p.Value(ctx)
		if err != nil {
			return nil, err
		}
		return len(data), nil
	})
}

func TestRoundTrip(t *testing.T) {
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	ctx := context.Background()
	fut, err := exec.Submit(ctx, "echo", []byte("hello faas"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v, err := fut.Result(ctx)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if !bytes.Equal(v.([]byte), []byte("hello faas")) {
		t.Fatalf("Result = %v", v)
	}
}

func TestMultipleArgs(t *testing.T) {
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	ctx := context.Background()
	fut, err := exec.Submit(ctx, "sum", 1, 2, 3, 4)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v, err := fut.Result(ctx)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if v.(int) != 10 {
		t.Fatalf("Result = %v", v)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	ctx := context.Background()
	fut, err := exec.Submit(ctx, "fail")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Result(ctx); err == nil {
		t.Fatal("Result succeeded for failing task")
	}
}

func TestUnknownFunction(t *testing.T) {
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	ctx := context.Background()
	fut, err := exec.Submit(ctx, "not-registered")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Result(ctx); err == nil {
		t.Fatal("Result succeeded for unregistered function")
	}
}

func TestPayloadLimitEnforced(t *testing.T) {
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	big := make([]byte, PayloadLimit+1)
	if _, err := exec.Submit(context.Background(), "echo", big); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Submit = %v, want ErrPayloadTooLarge", err)
	}
}

func TestProxyBypassesPayloadLimit(t *testing.T) {
	// The paper's headline capability: task payloads above the cloud's
	// limit travel by proxy with no changes to the service.
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	s, err := store.New("faas-proxy-store", local.New("faas-proxy-conn"))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-proxy-store") })

	ctx := context.Background()
	big := make([]byte, PayloadLimit*2)
	p, err := store.NewProxy(ctx, s, big)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	fut, err := exec.Submit(ctx, "resolve-proxy", p)
	if err != nil {
		t.Fatalf("Submit with proxy: %v", err)
	}
	v, err := fut.Result(ctx)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if v.(int) != len(big) {
		t.Fatalf("task saw %v bytes, want %d", v, len(big))
	}
}

func TestCloudPathPaysWANDelay(t *testing.T) {
	// Same-site client and endpoint still route through the cloud: the
	// round trip must pay at least two cloud-link RTTs.
	n := netsim.Testbed(100)
	cloud := NewCloud(n, netsim.SiteCloud)
	ep := StartEndpoint(cloud, "wan-ep", netsim.SiteTheta, 1)
	defer ep.Close()
	exec := NewExecutor(cloud, "wan-ep", netsim.SiteTheta)

	ctx := context.Background()
	start := time.Now()
	fut, err := exec.Submit(ctx, "echo", []byte("x"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Result(ctx); err != nil {
		t.Fatalf("Result: %v", err)
	}
	elapsed := time.Since(start)
	// Cloud link: 12ms nominal one-way / 100 scale = 120µs; four legs.
	if elapsed < 400*time.Microsecond {
		t.Fatalf("round trip took %v, want >= 480µs of cloud legs", elapsed)
	}
}

func TestConcurrentTasks(t *testing.T) {
	_, exec, ep := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	ctx := context.Background()
	futures := make([]*Future, 32)
	for i := range futures {
		fut, err := exec.Submit(ctx, "echo", i)
		if err != nil {
			t.Fatalf("Submit #%d: %v", i, err)
		}
		futures[i] = fut
	}
	for i, fut := range futures {
		v, err := fut.Result(ctx)
		if err != nil {
			t.Fatalf("Result #%d: %v", i, err)
		}
		if v.(int) != i {
			t.Fatalf("Result #%d = %v", i, v)
		}
	}
	if ep.Executed() != 32 {
		t.Fatalf("endpoint executed %d tasks, want 32", ep.Executed())
	}
}
