package faas

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"proxystore/internal/connectors/local"
	"proxystore/internal/netsim"
	"proxystore/internal/proxy"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
)

// platform abstracts the two executors so one suite exercises both: the
// classic cloud-routed path and the stream-backed path behind the same
// futures API.
type platform struct {
	submit   func(ctx context.Context, fn string, args ...any) (*Future, error)
	executed func() uint64
}

func newPlatform(t *testing.T, clientSite, endpointSite string) (*Cloud, *Executor, *Endpoint) {
	t.Helper()
	n := netsim.Testbed(1000)
	cloud := NewCloud(n, netsim.SiteCloud)
	ep := StartEndpoint(cloud, "test-ep", endpointSite, 4)
	t.Cleanup(func() { ep.Close() })
	return cloud, NewExecutor(cloud, "test-ep", clientSite), ep
}

// forEachMode runs the shared suite body against the classic executor and
// the stream-backed executor (over MemBroker; KVBroker coverage lives in
// stream_test.go). This is the futures-adapter contract: the same test
// assertions must hold whichever plane moves the tasks.
func forEachMode(t *testing.T, fn func(t *testing.T, p platform)) {
	t.Run("classic", func(t *testing.T) {
		_, exec, ep := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
		fn(t, platform{submit: exec.Submit, executed: ep.Executed})
	})
	t.Run("stream", func(t *testing.T) {
		p := newStreamPlatform(t, pstream.NewMem())
		fn(t, p)
	})
}

func init() {
	RegisterFunction("echo", func(_ context.Context, args []any) (any, error) {
		return args[0], nil
	})
	RegisterFunction("fail", func(context.Context, []any) (any, error) {
		return nil, fmt.Errorf("task exploded")
	})
	RegisterFunction("sum", func(_ context.Context, args []any) (any, error) {
		total := 0
		for _, a := range args {
			total += a.(int)
		}
		return total, nil
	})
	proxy.RegisterGob[[]byte]()
	RegisterFunction("resolve-proxy", func(ctx context.Context, args []any) (any, error) {
		p, ok := args[0].(*proxy.Proxy[[]byte])
		if !ok {
			return nil, fmt.Errorf("expected a proxy, got %T", args[0])
		}
		data, err := p.Value(ctx)
		if err != nil {
			return nil, err
		}
		return len(data), nil
	})
}

func TestRoundTrip(t *testing.T) {
	forEachMode(t, func(t *testing.T, p platform) {
		ctx := context.Background()
		fut, err := p.submit(ctx, "echo", []byte("hello faas"))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		v, err := fut.Result(ctx)
		if err != nil {
			t.Fatalf("Result: %v", err)
		}
		if !bytes.Equal(v.([]byte), []byte("hello faas")) {
			t.Fatalf("Result = %v", v)
		}
	})
}

func TestMultipleArgs(t *testing.T) {
	forEachMode(t, func(t *testing.T, p platform) {
		ctx := context.Background()
		fut, err := p.submit(ctx, "sum", 1, 2, 3, 4)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		v, err := fut.Result(ctx)
		if err != nil {
			t.Fatalf("Result: %v", err)
		}
		if v.(int) != 10 {
			t.Fatalf("Result = %v", v)
		}
	})
}

func TestTaskErrorPropagates(t *testing.T) {
	forEachMode(t, func(t *testing.T, p platform) {
		ctx := context.Background()
		fut, err := p.submit(ctx, "fail")
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := fut.Result(ctx); err == nil {
			t.Fatal("Result succeeded for failing task")
		}
	})
}

func TestUnknownFunction(t *testing.T) {
	forEachMode(t, func(t *testing.T, p platform) {
		ctx := context.Background()
		fut, err := p.submit(ctx, "not-registered")
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := fut.Result(ctx); err == nil {
			t.Fatal("Result succeeded for unregistered function")
		}
	})
}

func TestPayloadLimitEnforced(t *testing.T) {
	// Classic-only: the limit belongs to the cloud service. The stream
	// executor has none — bulk arguments ride the store (see
	// TestStreamNoPayloadLimit).
	_, exec, _ := newPlatform(t, netsim.SiteThetaLogin, netsim.SiteTheta)
	big := make([]byte, PayloadLimit+1)
	if _, err := exec.Submit(context.Background(), "echo", big); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Submit = %v, want ErrPayloadTooLarge", err)
	}
}

func TestProxyBypassesPayloadLimit(t *testing.T) {
	// The paper's headline capability: task payloads above the cloud's
	// limit travel by proxy with no changes to the service.
	forEachMode(t, func(t *testing.T, p platform) {
		s, err := store.New("faas-proxy-store", local.New("faas-proxy-conn"))
		if err != nil {
			t.Fatalf("store.New: %v", err)
		}
		t.Cleanup(func() { store.Unregister("faas-proxy-store") })

		ctx := context.Background()
		big := make([]byte, PayloadLimit*2)
		px, err := store.NewProxy(ctx, s, big)
		if err != nil {
			t.Fatalf("NewProxy: %v", err)
		}
		fut, err := p.submit(ctx, "resolve-proxy", px)
		if err != nil {
			t.Fatalf("Submit with proxy: %v", err)
		}
		v, err := fut.Result(ctx)
		if err != nil {
			t.Fatalf("Result: %v", err)
		}
		if v.(int) != len(big) {
			t.Fatalf("task saw %v bytes, want %d", v, len(big))
		}
	})
}

func TestCloudPathPaysWANDelay(t *testing.T) {
	// Same-site client and endpoint still route through the cloud: the
	// round trip must pay at least two cloud-link RTTs. (Classic-only by
	// construction — the stream path has no cloud in the loop.)
	n := netsim.Testbed(100)
	cloud := NewCloud(n, netsim.SiteCloud)
	ep := StartEndpoint(cloud, "wan-ep", netsim.SiteTheta, 1)
	defer ep.Close()
	exec := NewExecutor(cloud, "wan-ep", netsim.SiteTheta)

	ctx := context.Background()
	start := time.Now()
	fut, err := exec.Submit(ctx, "echo", []byte("x"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Result(ctx); err != nil {
		t.Fatalf("Result: %v", err)
	}
	elapsed := time.Since(start)
	// Cloud link: 12ms nominal one-way / 100 scale = 120µs; four legs.
	if elapsed < 400*time.Microsecond {
		t.Fatalf("round trip took %v, want >= 480µs of cloud legs", elapsed)
	}
}

func TestConcurrentTasks(t *testing.T) {
	forEachMode(t, func(t *testing.T, p platform) {
		ctx := context.Background()
		futures := make([]*Future, 32)
		for i := range futures {
			fut, err := p.submit(ctx, "echo", i)
			if err != nil {
				t.Fatalf("Submit #%d: %v", i, err)
			}
			futures[i] = fut
		}
		for i, fut := range futures {
			v, err := fut.Result(ctx)
			if err != nil {
				t.Fatalf("Result #%d: %v", i, err)
			}
			if v.(int) != i {
				t.Fatalf("Result #%d = %v", i, v)
			}
		}
		if p.executed() != 32 {
			t.Fatalf("endpoint executed %d tasks, want 32", p.executed())
		}
	})
}
