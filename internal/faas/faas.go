// Package faas implements a federated function-as-a-service platform
// modelled on Globus Compute (funcX): a cloud service that routes tasks
// from clients to registered compute endpoints and stores results until
// retrieved (paper §2, §5.1).
//
// The data path reproduces the property the paper attacks: every task's
// serialized inputs travel client → cloud → endpoint, and results travel
// endpoint → cloud → client, paying the modeled WAN each way even when
// client and endpoint share a machine. The cloud enforces Globus Compute's
// 5 MB payload limit. Functions are Go closures in a process-global
// registry (Go cannot pickle code); proxies travel inside gob-encoded
// argument lists exactly as they do inside pickled payloads in Python.
//
// Two executors share one futures API. The classic Executor/Endpoint pair
// above routes every task through the Cloud. The stream-backed
// StreamExecutor/StreamEndpoint pair replaces the cloud's per-endpoint
// channel queue with a pstream task topic: submissions are O(100 B)
// events claimed by endpoint worker pools as a consumer group
// (claims/leases give exactly-one-live-member dispatch and crash
// reclamation), bulk arguments and results ride the store data plane, and
// results flow back on a per-client result topic as self-contained proxy
// events. Both executors return *Future, so callers are written once; see
// README.md for the wire format and delivery guarantees.
package faas

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/netsim"
)

// PayloadLimit is Globus Compute's task payload cap (paper §2).
const PayloadLimit = 5 << 20

// ErrPayloadTooLarge is returned when serialized arguments or results
// exceed PayloadLimit.
var ErrPayloadTooLarge = fmt.Errorf("faas: payload exceeds %d-byte service limit", PayloadLimit)

// Function is a registered remote function.
type Function func(ctx context.Context, args []any) (any, error)

var (
	fnMu      sync.RWMutex
	functions = make(map[string]Function)
)

// RegisterFunction installs fn under name in the process-global registry
// (the Go analogue of shipping pickled code to workers).
func RegisterFunction(name string, fn Function) {
	fnMu.Lock()
	defer fnMu.Unlock()
	functions[name] = fn
}

func lookupFunction(name string) (Function, error) {
	fnMu.RLock()
	defer fnMu.RUnlock()
	fn, ok := functions[name]
	if !ok {
		return nil, fmt.Errorf("faas: function %q not registered", name)
	}
	return fn, nil
}

// task is a queued invocation.
type task struct {
	id       string
	function string
	payload  []byte // gob([]any)
	result   chan taskResult
}

type taskResult struct {
	payload []byte // gob of result value
	err     string
}

// Cloud is the hosted service: per-endpoint task queues plus a result path.
//
// A Cloud is safe for concurrent use.
type Cloud struct {
	net  *netsim.Network
	site string
	// overhead is the nominal control-plane cost per task (dispatch,
	// storage, result handling inside the service) — the reason baseline
	// Globus Compute round trips have a ~2 s floor in Figure 5. It is
	// divided by the network's time scale.
	overhead time.Duration
	// payloadBW is the service's effective nominal throughput for task
	// payloads (serialize, store in the service's Redis/S3, forward) —
	// a few MB/s in practice, which is why baseline round-trip time grows
	// with payload size in Figure 5. Divided by the network's time scale.
	payloadBW float64

	mu     sync.Mutex
	queues map[string]chan *task

	tasks atomic.Uint64
}

// CloudOption configures a Cloud.
type CloudOption func(*Cloud)

// WithServiceOverhead overrides the nominal per-task control-plane cost
// (default 1.5s, scaled by the network's time compression).
func WithServiceOverhead(d time.Duration) CloudOption {
	return func(c *Cloud) { c.overhead = d }
}

// WithPayloadBandwidth overrides the service's nominal payload throughput
// (default 2 MB/s, scaled by the network's time compression).
func WithPayloadBandwidth(bytesPerSec float64) CloudOption {
	return func(c *Cloud) { c.payloadBW = bytesPerSec }
}

// NewCloud creates the service at the given netsim site (usually
// netsim.SiteCloud).
func NewCloud(n *netsim.Network, site string, opts ...CloudOption) *Cloud {
	c := &Cloud{net: n, site: site, overhead: 1500 * time.Millisecond, payloadBW: 2e6, queues: make(map[string]chan *task)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// serviceDelay pays the scaled control-plane overhead.
func (c *Cloud) serviceDelay() {
	if c.overhead <= 0 {
		return
	}
	scale := 1.0
	if c.net != nil {
		scale = c.net.Scale()
	}
	time.Sleep(time.Duration(float64(c.overhead) / scale))
}

// Tasks returns the number of tasks routed through the cloud.
func (c *Cloud) Tasks() uint64 { return c.tasks.Load() }

func (c *Cloud) queue(endpoint string) chan *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, ok := c.queues[endpoint]
	if !ok {
		q = make(chan *task, 4096)
		c.queues[endpoint] = q
	}
	return q
}

func (c *Cloud) delay(ctx context.Context, from, to string, size int) error {
	if c.net == nil {
		return nil
	}
	if err := c.net.Delay(ctx, from, to, size); err != nil {
		return err
	}
	// Service-side payload handling at the cloud's effective throughput.
	if c.payloadBW > 0 && size > 0 {
		d := time.Duration(float64(size) / c.payloadBW * float64(time.Second) / c.net.Scale())
		if d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return nil
}

// Endpoint is a compute endpoint polling the cloud for tasks.
type Endpoint struct {
	cloud *Cloud
	name  string
	site  string

	cancel context.CancelFunc
	wg     sync.WaitGroup

	executed atomic.Uint64
}

// StartEndpoint registers an endpoint and begins executing tasks with the
// given worker parallelism.
func StartEndpoint(cloud *Cloud, name, site string, workers int) *Endpoint {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &Endpoint{cloud: cloud, name: name, site: site, cancel: cancel}
	q := cloud.queue(name)
	for i := 0; i < workers; i++ {
		ep.wg.Add(1)
		go ep.worker(ctx, q)
	}
	return ep
}

// Executed returns the number of tasks this endpoint completed.
func (ep *Endpoint) Executed() uint64 { return ep.executed.Load() }

// Close stops the endpoint's workers.
func (ep *Endpoint) Close() error {
	ep.cancel()
	ep.wg.Wait()
	return nil
}

func (ep *Endpoint) worker(ctx context.Context, q chan *task) {
	defer ep.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-q:
			ep.execute(ctx, t)
		}
	}
}

func (ep *Endpoint) execute(ctx context.Context, t *task) {
	// Task payload travels cloud -> endpoint.
	if err := ep.cloud.delay(ctx, ep.cloud.site, ep.site, len(t.payload)); err != nil {
		t.result <- taskResult{err: err.Error()}
		return
	}

	var res taskResult
	args, err := decodeArgs(t.payload)
	if err != nil {
		res.err = err.Error()
	} else if fn, err := lookupFunction(t.function); err != nil {
		res.err = err.Error()
	} else if out, err := fn(ctx, args); err != nil {
		res.err = err.Error()
	} else if payload, err := encodeValue(out); err != nil {
		res.err = err.Error()
	} else if len(payload) > PayloadLimit {
		res.err = ErrPayloadTooLarge.Error()
	} else {
		res.payload = payload
	}
	ep.executed.Add(1)

	// Result travels endpoint -> cloud.
	if err := ep.cloud.delay(ctx, ep.site, ep.cloud.site, len(res.payload)); err != nil {
		res = taskResult{err: err.Error()}
	}
	t.result <- res
}

// Executor submits tasks to a target endpoint through the cloud, like the
// Globus Compute SDK's Executor (paper Listing 2).
type Executor struct {
	cloud    *Cloud
	endpoint string
	site     string // client's site
}

// NewExecutor returns an executor for a client at site submitting to the
// named endpoint.
func NewExecutor(cloud *Cloud, endpoint, clientSite string) *Executor {
	return &Executor{cloud: cloud, endpoint: endpoint, site: clientSite}
}

// Future is a pending task result. It is the adapter both executors hand
// out: the classic executor resolves it from the cloud's result channel,
// the stream executor from the client's result topic. Either way the
// result payload moves toward the client only on first retrieval.
type Future struct {
	wait func(ctx context.Context) (any, error)

	once  sync.Once
	value any
	err   error
}

// Submit serializes args and routes the task to the executor's endpoint via
// the cloud. It fails immediately if the payload exceeds the service limit.
func (e *Executor) Submit(ctx context.Context, function string, args ...any) (*Future, error) {
	payload, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	if len(payload) > PayloadLimit {
		return nil, ErrPayloadTooLarge
	}
	// Payload travels client -> cloud.
	if err := e.cloud.delay(ctx, e.site, e.cloud.site, len(payload)); err != nil {
		return nil, err
	}
	t := &task{
		id:       connector.NewID(),
		function: function,
		payload:  payload,
		result:   make(chan taskResult, 1),
	}
	e.cloud.tasks.Add(1)
	e.cloud.serviceDelay()
	select {
	case e.cloud.queue(e.endpoint) <- t:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &Future{wait: func(ctx context.Context) (any, error) {
		select {
		case res := <-t.result:
			if res.err != "" {
				return nil, fmt.Errorf("faas: task %s: %s", t.id, res.err)
			}
			// Result travels cloud -> client.
			if err := e.cloud.delay(ctx, e.cloud.site, e.site, len(res.payload)); err != nil {
				return nil, err
			}
			return decodeValue(res.payload)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}, nil
}

// Result blocks until the task completes, returning its value. The result
// payload pays its final leg (cloud -> client, or store -> client for the
// stream executor) on first retrieval.
func (f *Future) Result(ctx context.Context) (any, error) {
	f.once.Do(func() { f.value, f.err = f.wait(ctx) })
	return f.value, f.err
}

// --- payload codec ----------------------------------------------------------

func encodeArgs(args []any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(args); err != nil {
		return nil, fmt.Errorf("faas: encoding arguments: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeArgs(payload []byte) ([]any, error) {
	var args []any
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&args); err != nil {
		return nil, fmt.Errorf("faas: decoding arguments: %w", err)
	}
	return args, nil
}

func encodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("faas: encoding result: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeValue(payload []byte) (any, error) {
	if payload == nil {
		return nil, nil
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
		return nil, fmt.Errorf("faas: decoding result: %w", err)
	}
	return v, nil
}
