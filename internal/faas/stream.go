package faas

// The stream-backed task plane: submissions are pstream events on a task
// topic, claimed by endpoint worker pools as a consumer group; results
// flow back on a shared per-endpoint result topic, with each executor
// filtering for its own results by the faas.rt routing attr. Bulk
// arguments and results ride the store data plane, so the broker moves
// only O(100 B) of metadata per task and there is no service payload
// limit to bypass. Over a KVBroker with heartbeats enabled, executors
// join the result topic's "clients" membership group, and the endpoint
// periodically sweeps the result topic, reclaiming results whose
// submitting client died before resolving them.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/proxy"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
)

// TaskTopic returns the pstream topic on which the named endpoint's
// worker pool claims task submissions.
func TaskTopic(endpoint string) string { return "faas.t." + endpoint }

// ResultTopic returns the shared topic the named endpoint's results flow
// back on. Every executor of the endpoint reads it as an independent
// fan-out consumer (named by its client ID) and keeps only the results
// addressed to it by the faas.rt attr — one topic per endpoint, not one
// per client, so a churn of short-lived executors leaves no per-client
// topics behind.
func ResultTopic(endpoint string) string { return "faas.r." + endpoint }

// TaskGroup is the consumer group endpoint workers join on a task topic:
// one group per endpoint, so each submission is executed by exactly one
// live worker and a crashed worker's claims are reclaimed on lease expiry.
const TaskGroup = "workers"

// ClientGroup is the membership group executors join on their endpoint's
// result topic (KVBroker with heartbeats only): its live set is what the
// endpoint's orphan sweep trusts when deciding a result's addressee is
// gone for good.
const ClientGroup = "clients"

// Event attributes carried on task and result events. They duplicate
// fields of the stored payload so that dispatchers and observers can route
// without resolving the bulk payload.
const (
	// AttrTaskID is the task's ID, on both task and result events.
	AttrTaskID = "faas.id"
	// AttrTaskFunction is the registered function name, on task events.
	AttrTaskFunction = "faas.fn"
	// AttrResultTopic is the routing tag: on task events it names the
	// endpoint's shared result topic; on result events it carries the
	// submitting client's ID, which executors filter on and the orphan
	// sweep checks against the live-client set.
	AttrResultTopic = "faas.rt"
	// AttrTaskClient is the submitting client's ID, on task events — what
	// the executing worker echoes back as the result's faas.rt tag.
	AttrTaskClient = "faas.cl"
)

// TaskRequest is the bulk payload of one submission, stored through the
// data plane and carried by the task event's self-contained proxy.
type TaskRequest struct {
	// ID correlates the request with its TaskResult.
	ID string
	// Function names a registry entry on the executing worker.
	Function string
	// Args is the gob-encoded argument list — the same codec as the
	// classic executor, so proxies travel inside it unchanged.
	Args []byte
	// ResultTopic is where the executing worker publishes the TaskResult
	// (the endpoint's shared result topic).
	ResultTopic string
	// Client is the submitting executor's ID — the result event's faas.rt
	// routing tag, so only the submitter keeps the result.
	Client string
}

// TaskResult is the bulk payload of one completed task, published on the
// submitting client's result topic.
type TaskResult struct {
	// ID echoes the TaskRequest ID.
	ID string
	// Value is the gob-encoded result value; nil when Err is set.
	Value []byte
	// Err is the task error, if any.
	Err string
}

func init() {
	gob.Register(TaskRequest{})
	gob.Register(TaskResult{})
}

// ErrExecutorClosed is returned by Submit after Close, and by pending
// futures whose executor shuts down before their result arrives.
var ErrExecutorClosed = errors.New("faas: stream executor closed")

// DefaultMaxInFlight bounds an executor's unresolved submissions when
// WithMaxInFlight is not given: generous enough that joins over large
// fan-outs never notice it, small enough that a runaway submit loop hits
// backpressure before flooding the broker log.
const DefaultMaxInFlight = 4096

// StreamExecutorOption configures a StreamExecutor.
type StreamExecutorOption func(*streamExecutorConfig)

type streamExecutorConfig struct {
	maxInFlight int
}

// WithMaxInFlight caps the executor's in-flight window: Submit blocks
// while maxInFlight submissions are pending (submitted, result not yet
// consumed), so a producer that outruns the fleet backs off instead of
// flooding the broker. n < 1 keeps the default.
func WithMaxInFlight(n int) StreamExecutorOption {
	return func(c *streamExecutorConfig) {
		if n >= 1 {
			c.maxInFlight = n
		}
	}
}

// StreamExecutor submits tasks as pstream events instead of routing them
// through a Cloud. Each Submit stores a TaskRequest through the store
// (bulk plane) and publishes a compact event on the endpoint's task topic
// (metadata plane); a background dispatcher consumes the endpoint's
// shared result topic — keeping only events whose faas.rt tag matches
// this executor — and completes futures by task ID. There is no payload
// limit: arguments of any size ride the store.
//
// A StreamExecutor is safe for concurrent use.
type StreamExecutor struct {
	id    string
	topic string // the endpoint's shared result topic
	prod  *pstream.Producer[TaskRequest]
	sem   chan struct{} // in-flight window; one slot per pending task

	kb *pstream.KVBroker  // non-nil when b unwraps to a KVBroker
	hb *pstream.Heartbeat // non-nil when heartbeats are on

	mu      sync.Mutex
	pending map[string]*pendingResult
	closed  bool

	cancel context.CancelFunc
	done   chan struct{}

	submitted atomic.Uint64
}

// pendingResult tracks one in-flight submission from Submit until its
// future consumes the result (or Close reclaims it). delivered flips when
// the dispatcher hands the item to ch, so later results with the same ID
// are recognized as duplicates.
type pendingResult struct {
	ch        chan *pstream.Item[TaskResult]
	delivered bool
}

// evictResult best-effort reclaims a result item's stored payload without
// touching its subscription, so it is safe from any goroutine. Detached
// from the caller's cancellation — cleanup runs on paths where that
// context is dying (Close, expired Result calls).
func evictResult(ctx context.Context, it *pstream.Item[TaskResult]) {
	if st, key, ok, err := store.KeyOf(it.Proxy); err == nil && ok {
		_ = st.Evict(context.WithoutCancel(ctx), key)
	}
}

// NewStreamExecutor returns an executor submitting to the named endpoint's
// task topic, storing payloads in st and events through b. The store must
// use a serializer that can encode TaskRequest/TaskResult (the default gob
// serializer does). The executor owns a fan-out consumer (named by its
// client ID) on the endpoint's shared result topic until Close. When b
// unwraps to a KVBroker with heartbeats enabled (pstream.WithKVHeartbeat),
// the executor also joins the result topic's "clients" membership group,
// so the endpoint's orphan sweep can tell a slow client from a dead one.
func NewStreamExecutor(st *store.Store, b pstream.Broker, endpoint string, opts ...StreamExecutorOption) (*StreamExecutor, error) {
	cfg := streamExecutorConfig{maxInFlight: DefaultMaxInFlight}
	for _, o := range opts {
		o(&cfg)
	}
	id := connector.NewID()
	topic := ResultTopic(endpoint)
	ctx, cancel := context.WithCancel(context.Background())
	// Window 1: prefetch would eagerly batch-resolve bulk result payloads
	// into executor memory; result bytes must move only when a future's
	// Result asks for them.
	cons, err := pstream.NewConsumer[TaskResult](ctx, b, topic, id,
		pstream.WithEndCount(0), pstream.WithWindow(1))
	if err != nil {
		cancel()
		return nil, err
	}
	e := &StreamExecutor{
		id:    id,
		topic: topic,
		// Exactly one consumer (the claiming worker's group) reads each
		// task, so its ack reclaims the request payload from the store.
		prod:    pstream.NewProducer[TaskRequest](st, b, TaskTopic(endpoint), pstream.WithEvictOnAck(1)),
		sem:     make(chan struct{}, cfg.maxInFlight),
		pending: make(map[string]*pendingResult),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if kb, ok := pstream.AsKV(b); ok {
		e.kb = kb
		if kb.Heartbeats() {
			hb, err := kb.Membership(topic, ClientGroup).Join(ctx, id)
			if err != nil {
				cancel()
				cons.Close()
				return nil, err
			}
			e.hb = hb
		}
	}
	go e.dispatch(ctx, cons)
	return e, nil
}

// ID returns the executor's client identity (its result topic suffix).
func (e *StreamExecutor) ID() string { return e.id }

// Submitted returns the number of tasks published to the task topic.
func (e *StreamExecutor) Submitted() uint64 { return e.submitted.Load() }

// dispatch routes result items to pending futures by task ID, retrying
// transient broker errors (ConsumeLoop) — results are durable in the log,
// so a broker hiccup must never condemn the executor. Duplicate results —
// a worker died after publishing but before settling its claim, and the
// task was re-executed — are dropped and their payloads evicted, so
// re-execution is invisible to callers and leaks nothing.
func (e *StreamExecutor) dispatch(ctx context.Context, cons *pstream.Consumer[TaskResult]) {
	defer close(e.done)
	pstream.ConsumeLoop(ctx, 0,
		func() (*pstream.Consumer[TaskResult], error) { return cons, nil },
		e.handleResult)
}

func (e *StreamExecutor) handleResult(ctx context.Context, it *pstream.Item[TaskResult]) {
	// Ack here, on the goroutine that owns the subscription: it commits
	// the offset so KVBroker truncation can compact the result log, and —
	// result producers setting no evict-on-ack — has no payload side
	// effect (addressees evict payloads themselves as they consume).
	_ = it.Ack(ctx)
	// The result topic is shared by every executor of the endpoint; the
	// faas.rt tag names the addressee. Events for other clients are acked
	// (so this consumer's offset keeps advancing) and otherwise untouched —
	// evicting a peer's payload here would race its own resolve.
	if it.Event.Attr(AttrResultTopic) != e.id {
		return
	}
	// "deliver" closes the trace the submit opened: the result event is
	// back on the submitting client, about to complete its future.
	if trace := it.Event.Attr(telemetry.AttrTrace); trace != "" {
		defer telemetry.Default().StartSpan(trace, it.Event.Attr(telemetry.AttrSpan), "deliver").End()
	}
	id := it.Event.Attr(AttrTaskID)
	e.mu.Lock()
	p := e.pending[id]
	if p == nil || p.delivered {
		e.mu.Unlock()
		evictResult(ctx, it)
		return
	}
	p.delivered = true
	e.mu.Unlock()
	p.ch <- it // buffered; exactly one delivery per ID
}

// removePending drops id's pending entry and frees its in-flight slot.
// The slot is released exactly once per submission because the entry is
// in the map exactly once; entries bulk-cleared by Close release nothing
// (the executor is closed, so no Submit is waiting).
func (e *StreamExecutor) removePending(id string) {
	e.mu.Lock()
	_, ok := e.pending[id]
	delete(e.pending, id)
	e.mu.Unlock()
	if ok {
		<-e.sem
	}
}

// Submit publishes the task to the endpoint's topic. Unlike the classic
// executor there is no service payload limit: serialized arguments of any
// size ride the data plane, and the broker carries O(100 B). Submit
// blocks while the executor's in-flight window (WithMaxInFlight) is full
// — backpressure instead of an unbounded broker backlog — and fails with
// ErrExecutorClosed if the executor closes while it waits.
func (e *StreamExecutor) Submit(ctx context.Context, function string, args ...any) (*Future, error) {
	payload, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	select {
	case e.sem <- struct{}{}:
	case <-e.done:
		return nil, ErrExecutorClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	id := connector.NewID()
	pr := &pendingResult{ch: make(chan *pstream.Item[TaskResult], 1)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.sem
		return nil, ErrExecutorClosed
	}
	e.pending[id] = pr
	e.mu.Unlock()

	req := TaskRequest{ID: id, Function: function, Args: payload, ResultTopic: e.topic, Client: e.id}
	// Every submission roots a trace. The span context rides the task
	// event's attrs, so each later hop — producer publish, endpoint
	// execute, result delivery — continues the same trace.
	sp := telemetry.Default().StartSpan("", "", "submit")
	attrs := map[string]string{
		AttrTaskID:       id,
		AttrTaskFunction: function,
		AttrResultTopic:  e.topic,
		AttrTaskClient:   e.id,
	}
	sp.Inject(attrs)
	err = e.prod.Send(ctx, req, attrs)
	sp.End()
	if err != nil {
		e.removePending(id)
		return nil, err
	}
	e.submitted.Add(1)
	// resolve runs on the CALLER's goroutine, so it must never touch the
	// dispatcher's subscription (Subscriptions are single-goroutine; a
	// concurrent Ack races Next) — the dispatcher already acked the event,
	// so all that is left here is the payload, which the addressee owns.
	resolve := func(ctx context.Context, it *pstream.Item[TaskResult]) (any, error) {
		res, err := it.Value(ctx)
		e.removePending(id)
		// Reclaim the payload either way: on success it has been copied
		// out; on failure Result caches the error, so the value is
		// unreachable regardless (evictResult detaches from ctx, which
		// may be the very reason it.Value died).
		evictResult(ctx, it)
		if err != nil {
			return nil, fmt.Errorf("faas: resolving result for task %s: %w", id, err)
		}
		if res.Err != "" {
			return nil, fmt.Errorf("faas: task %s: %s", id, res.Err)
		}
		return decodeValue(res.Value)
	}
	return &Future{wait: func(ctx context.Context) (any, error) {
		select {
		case it := <-pr.ch:
			return resolve(ctx, it)
		case <-e.done:
			// A result delivered before shutdown still wins. The
			// delivered flag is the authority: if set, the item is in
			// pr.ch now or is transiently held by Close's prime-and-ack
			// drain, which always puts it back — so block on the channel,
			// not on a racy non-blocking peek.
			e.mu.Lock()
			delivered := pr.delivered
			e.mu.Unlock()
			if delivered {
				select {
				case it := <-pr.ch:
					return resolve(ctx, it)
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return nil, ErrExecutorClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}, nil
}

// Close stops the result dispatcher. Futures whose result never arrived
// fail with ErrExecutorClosed; futures whose result was already
// delivered still resolve it after Close. Delivered-but-unconsumed
// results — abandoned futures, Result calls whose context expired — are
// resolved into their proxies here and their stored payloads evicted, so
// nothing leaks either way. On a KVBroker, Close also deletes the
// executor's footprint on the server: it leaves the result topic's
// membership group (heartbeat + roster entry) and forgets its committed
// offset, so a clean churn of executors leaves the server's key count at
// its baseline. Close does not close the store or broker, which the
// executor borrows, and publishes no End on the task topic — the endpoint
// is long-lived and may serve other executors.
func (e *StreamExecutor) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	<-e.done
	e.mu.Lock()
	remaining := e.pending
	e.pending = make(map[string]*pendingResult)
	e.mu.Unlock()
	ctx := context.Background()
	for _, pr := range remaining {
		select {
		case it := <-pr.ch:
			// Prime the proxy's cache before evicting the stored copy: a
			// Result call issued after Close must still find the value.
			// The item goes back in the buffered channel for that call.
			_, _ = it.Proxy.Value(ctx)
			evictResult(ctx, it)
			pr.ch <- it
		default:
		}
	}
	var err error
	if e.hb != nil {
		err = e.hb.Leave(ctx)
	}
	if e.kb != nil {
		if ferr := e.kb.ForgetConsumer(ctx, e.topic, e.id); err == nil {
			err = ferr
		}
	}
	return err
}

// Kill simulates the executor's process dying: the dispatcher and
// heartbeat stop immediately, with none of Close's cleanup — the
// committed offset, membership entries, and unconsumed results stay on
// the server until heartbeat expiry and the endpoint's orphan sweep
// reclaim them. Test and bench hook for churn scenarios.
func (e *StreamExecutor) Kill() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	if e.hb != nil {
		e.hb.Kill()
	}
	e.cancel()
	<-e.done
}

// StreamEndpoint is a compute endpoint whose workers claim tasks from the
// endpoint's task topic as a consumer group, replacing the classic
// per-endpoint channel queue. A worker resolves the request's bulk payload
// from the data plane, executes the registered function, publishes the
// result on the submitting client's result topic, and only then settles
// its claim — so a worker that dies mid-task loses its lease and the task
// is re-executed by a surviving member (at-least-once execution,
// exactly-once result delivery via the client's dedup).
type StreamEndpoint struct {
	st   *store.Store
	b    pstream.Broker
	name string

	// kb/mem drive the orphaned-result sweep (KVBroker with heartbeats
	// only): mem is the result topic's client membership domain.
	kb  *pstream.KVBroker
	mem *pstream.Membership

	cancel context.CancelFunc
	wg     sync.WaitGroup

	// resolveStrikes tracks per-offset payload-resolution failures, so a
	// poison task is eventually reported as an error result instead of
	// cycling through the group's leases forever (SettleAfterStrikes).
	resolveStrikes *pstream.Strikes

	executed atomic.Uint64
	swept    atomic.Uint64
}

// StartStreamEndpoint subscribes a pool of workers to the named endpoint's
// task topic. st stores result payloads (and must use a serializer that
// can encode TaskResult — the default gob serializer does).
func StartStreamEndpoint(st *store.Store, b pstream.Broker, name string, workers int) *StreamEndpoint {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &StreamEndpoint{
		st:             st,
		b:              b,
		name:           name,
		cancel:         cancel,
		resolveStrikes: pstream.NewStrikes(),
	}
	// Member names carry a fresh ID: two processes running the same
	// endpoint must not collide on member identity, or a stale ack from
	// one could settle a same-named peer's live claim.
	instance := connector.NewID()[:8]
	for i := 0; i < workers; i++ {
		ep.wg.Add(1)
		go ep.worker(ctx, fmt.Sprintf("%s-%s-w%d", name, instance, i))
	}
	if kb, ok := pstream.AsKV(b); ok && kb.Heartbeats() {
		ep.kb = kb
		ep.mem = kb.Membership(ResultTopic(name), ClientGroup)
		ep.wg.Add(1)
		go ep.janitor(ctx)
	}
	return ep
}

// janitor periodically sweeps the endpoint's result topic, reclaiming
// results whose submitting client's heartbeat expired before it resolved
// them. Cadence is one heartbeat TTL: a dead client is detected within
// one TTL, so its orphans linger at most ~two.
func (ep *StreamEndpoint) janitor(ctx context.Context) {
	defer ep.wg.Done()
	tick := time.NewTicker(ep.kb.HeartbeatTTL())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			_, _ = ep.SweepResults(ctx)
		}
	}
}

// SweepResults runs one orphan sweep over the endpoint's result topic:
// dead clients (expired heartbeats) are reaped from the membership group
// and their committed offsets deleted, result events every live client
// has consumed are truncated from the log, and among them any result
// addressed to a dead client has its stored payload evicted — the
// heartbeat-driven GC of results nobody will ever resolve. Returns the
// number of log slots reclaimed. Safe to call directly (tests, benches);
// the endpoint also runs it on a heartbeat-TTL cadence.
func (ep *StreamEndpoint) SweepResults(ctx context.Context) (int, error) {
	if ep.kb == nil {
		return 0, nil
	}
	n, err := ep.kb.SweepTopic(ctx, ResultTopic(ep.name), ep.mem, func(ev pstream.Event, live map[string]bool) bool {
		if live[ev.Attr(AttrResultTopic)] {
			return false // addressee is alive; it evicts its own payloads
		}
		pxy := new(proxy.Proxy[TaskResult])
		if err := pxy.UnmarshalBinary(ev.ProxyData); err != nil {
			return false
		}
		st, key, ok, err := store.KeyOf(pxy)
		if err != nil || !ok {
			return false
		}
		return st.Evict(context.WithoutCancel(ctx), key) == nil
	})
	if err == nil {
		ep.swept.Add(uint64(n))
	}
	return n, err
}

// Swept returns the cumulative number of result-log slots reclaimed by
// the endpoint's orphan sweeps.
func (ep *StreamEndpoint) Swept() uint64 { return ep.swept.Load() }

// Executed returns the number of tasks whose function this endpoint ran,
// like the classic Endpoint's counter. A task whose result publish fails
// is still counted (and re-executed elsewhere after its lease expires).
func (ep *StreamEndpoint) Executed() uint64 { return ep.executed.Load() }

// Close stops the endpoint's workers. Unsettled claims are not released;
// they expire with their leases and are reclaimed by surviving members of
// the endpoint's group (possibly in another process).
func (ep *StreamEndpoint) Close() error {
	ep.cancel()
	ep.wg.Wait()
	return nil
}

// producer builds a producer for the shared result topic. Producers are
// tiny stateless handles, so one per task beats caching them. No
// evict-on-ack: every executor on the shared topic acks every result
// (including its peers'), so an ack-count policy would let one client's
// ack evict another's unread payload — instead the addressee evicts its
// own payloads as futures consume them, and the endpoint's orphan sweep
// reclaims those whose addressee died.
func (ep *StreamEndpoint) producer(topic string) *pstream.Producer[TaskResult] {
	return pstream.NewProducer[TaskResult](ep.st, ep.b, topic)
}

func (ep *StreamEndpoint) worker(ctx context.Context, member string) {
	defer ep.wg.Done()
	pstream.ConsumeLoop(ctx, 0, func() (*pstream.Consumer[TaskRequest], error) {
		// Window 1: a group member should never claim work it cannot start
		// within its lease.
		return pstream.NewConsumer[TaskRequest](ctx, ep.b, TaskTopic(ep.name), member,
			pstream.WithGroup(TaskGroup), pstream.WithEndCount(0), pstream.WithWindow(1))
	}, ep.execute)
}

// execute runs one claimed task. The claim is settled only after the
// result publish succeeds; any earlier failure leaves the claim to expire
// so another member retries the task.
func (ep *StreamEndpoint) execute(ctx context.Context, it *pstream.Item[TaskRequest]) {
	req, err := it.Value(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		// Bulk payload unresolvable. Transient store failures heal across
		// lease redeliveries, so the claim is normally left to expire —
		// but a poison task is eventually reported as the task's result,
		// routed via the event attrs (which exist precisely so a worker
		// can report without the payload).
		id, rt := it.Event.Attr(AttrTaskID), it.Event.Attr(AttrResultTopic)
		cl := it.Event.Attr(AttrTaskClient)
		if rt == "" {
			return // nowhere to report; keep the lease cadence
		}
		pstream.SettleAfterStrikes(ctx, ep.resolveStrikes, it, pstream.DefaultSettleStrikes, func() error {
			res := TaskResult{ID: id, Err: fmt.Sprintf("resolving task payload: %v", err)}
			return ep.producer(rt).Send(ctx, res, map[string]string{AttrTaskID: id, AttrResultTopic: cl})
		})
		return
	}
	ep.resolveStrikes.Clear(it.Event.Offset)
	// Continue the submitter's trace: "execute" parents under the task
	// event's span and is in turn the parent the result event carries, so
	// the result publish and delivery hops stay on the same trace.
	var sp *telemetry.Span
	if trace := it.Event.Attr(telemetry.AttrTrace); trace != "" {
		sp = telemetry.Default().StartSpan(trace, it.Event.Attr(telemetry.AttrSpan), "execute")
	}
	res := TaskResult{ID: req.ID}
	if args, err := decodeArgs(req.Args); err != nil {
		res.Err = err.Error()
	} else if fn, err := lookupFunction(req.Function); err != nil {
		res.Err = err.Error()
	} else if out, err := fn(ctx, args); err != nil {
		res.Err = err.Error()
	} else if payload, err := encodeValue(out); err != nil {
		res.Err = err.Error()
	} else {
		res.Value = payload
	}
	// Count before publishing: the instant Send returns, the client's
	// future can resolve on another goroutine, and callers joining on
	// futures legitimately expect Executed to cover their tasks.
	ep.executed.Add(1)
	prod := ep.producer(req.ResultTopic)
	// faas.rt on a result event is the addressee tag: the submitting
	// client's ID, which its dispatcher filters on and the orphan sweep
	// checks against the live set.
	resAttrs := map[string]string{AttrTaskID: res.ID, AttrResultTopic: req.Client}
	sp.Inject(resAttrs)
	err = prod.Send(ctx, res, resAttrs)
	sp.End()
	if err != nil {
		return
	}
	// Task payload was resolved and the result is durable: settle the
	// claim. The ack reclaims the request payload (evict-on-ack, one
	// logical consumer — the group).
	_ = it.Ack(ctx)
}
