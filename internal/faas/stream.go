package faas

// The stream-backed task plane: submissions are pstream events on a task
// topic, claimed by endpoint worker pools as a consumer group; results
// flow back on a per-client result topic. Bulk arguments and results ride
// the store data plane, so the broker moves only O(100 B) of metadata per
// task and there is no service payload limit to bypass.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"proxystore/internal/connector"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
)

// TaskTopic returns the pstream topic on which the named endpoint's
// worker pool claims task submissions.
func TaskTopic(endpoint string) string { return "faas.t." + endpoint }

// ResultTopic returns the topic a client's results flow back on.
func ResultTopic(client string) string { return "faas.r." + client }

// TaskGroup is the consumer group endpoint workers join on a task topic:
// one group per endpoint, so each submission is executed by exactly one
// live worker and a crashed worker's claims are reclaimed on lease expiry.
const TaskGroup = "workers"

// Event attributes carried on task and result events. They duplicate
// fields of the stored payload so that dispatchers and observers can route
// without resolving the bulk payload.
const (
	// AttrTaskID is the task's ID, on both task and result events.
	AttrTaskID = "faas.id"
	// AttrTaskFunction is the registered function name, on task events.
	AttrTaskFunction = "faas.fn"
	// AttrResultTopic is the submitting client's result topic, on task
	// events.
	AttrResultTopic = "faas.rt"
)

// TaskRequest is the bulk payload of one submission, stored through the
// data plane and carried by the task event's self-contained proxy.
type TaskRequest struct {
	// ID correlates the request with its TaskResult.
	ID string
	// Function names a registry entry on the executing worker.
	Function string
	// Args is the gob-encoded argument list — the same codec as the
	// classic executor, so proxies travel inside it unchanged.
	Args []byte
	// ResultTopic is where the executing worker publishes the TaskResult.
	ResultTopic string
}

// TaskResult is the bulk payload of one completed task, published on the
// submitting client's result topic.
type TaskResult struct {
	// ID echoes the TaskRequest ID.
	ID string
	// Value is the gob-encoded result value; nil when Err is set.
	Value []byte
	// Err is the task error, if any.
	Err string
}

func init() {
	gob.Register(TaskRequest{})
	gob.Register(TaskResult{})
}

// ErrExecutorClosed is returned by Submit after Close, and by pending
// futures whose executor shuts down before their result arrives.
var ErrExecutorClosed = errors.New("faas: stream executor closed")

// StreamExecutor submits tasks as pstream events instead of routing them
// through a Cloud. Each Submit stores a TaskRequest through the store
// (bulk plane) and publishes a compact event on the endpoint's task topic
// (metadata plane); a background dispatcher consumes the executor's result
// topic and completes futures by task ID. There is no payload limit:
// arguments of any size ride the store.
//
// A StreamExecutor is safe for concurrent use.
type StreamExecutor struct {
	id    string
	topic string // result topic
	prod  *pstream.Producer[TaskRequest]

	mu      sync.Mutex
	pending map[string]*pendingResult
	closed  bool

	cancel context.CancelFunc
	done   chan struct{}

	submitted atomic.Uint64
}

// pendingResult tracks one in-flight submission from Submit until its
// future consumes the result (or Close reclaims it). delivered flips when
// the dispatcher hands the item to ch, so later results with the same ID
// are recognized as duplicates.
type pendingResult struct {
	ch        chan *pstream.Item[TaskResult]
	delivered bool
}

// evictResult best-effort reclaims a result item's stored payload without
// touching its subscription, so it is safe from any goroutine. Detached
// from the caller's cancellation — cleanup runs on paths where that
// context is dying (Close, expired Result calls).
func evictResult(ctx context.Context, it *pstream.Item[TaskResult]) {
	if st, key, ok, err := store.KeyOf(it.Proxy); err == nil && ok {
		_ = st.Evict(context.WithoutCancel(ctx), key)
	}
}

// NewStreamExecutor returns an executor submitting to the named endpoint's
// task topic, storing payloads in st and events through b. The store must
// use a serializer that can encode TaskRequest/TaskResult (the default gob
// serializer does). The executor owns a consumer on its private result
// topic until Close.
func NewStreamExecutor(st *store.Store, b pstream.Broker, endpoint string) (*StreamExecutor, error) {
	id := connector.NewID()
	topic := ResultTopic(id)
	ctx, cancel := context.WithCancel(context.Background())
	// Window 1: prefetch would eagerly batch-resolve bulk result payloads
	// into executor memory; result bytes must move only when a future's
	// Result asks for them.
	cons, err := pstream.NewConsumer[TaskResult](ctx, b, topic, "client",
		pstream.WithEndCount(0), pstream.WithWindow(1))
	if err != nil {
		cancel()
		return nil, err
	}
	e := &StreamExecutor{
		id:    id,
		topic: topic,
		// Exactly one consumer (this executor) reads each result, so its
		// ack reclaims the result payload from the store.
		prod:    pstream.NewProducer[TaskRequest](st, b, TaskTopic(endpoint), pstream.WithEvictOnAck(1)),
		pending: make(map[string]*pendingResult),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go e.dispatch(ctx, cons)
	return e, nil
}

// ID returns the executor's client identity (its result topic suffix).
func (e *StreamExecutor) ID() string { return e.id }

// Submitted returns the number of tasks published to the task topic.
func (e *StreamExecutor) Submitted() uint64 { return e.submitted.Load() }

// dispatch routes result items to pending futures by task ID, retrying
// transient broker errors (ConsumeLoop) — results are durable in the log,
// so a broker hiccup must never condemn the executor. Duplicate results —
// a worker died after publishing but before settling its claim, and the
// task was re-executed — are dropped and their payloads evicted, so
// re-execution is invisible to callers and leaks nothing.
func (e *StreamExecutor) dispatch(ctx context.Context, cons *pstream.Consumer[TaskResult]) {
	defer close(e.done)
	pstream.ConsumeLoop(ctx, 0,
		func() (*pstream.Consumer[TaskResult], error) { return cons, nil },
		e.handleResult)
}

func (e *StreamExecutor) handleResult(ctx context.Context, it *pstream.Item[TaskResult]) {
	// "deliver" closes the trace the submit opened: the result event is
	// back on the submitting client, about to complete its future.
	if trace := it.Event.Attr(telemetry.AttrTrace); trace != "" {
		defer telemetry.Default().StartSpan(trace, it.Event.Attr(telemetry.AttrSpan), "deliver").End()
	}
	// Ack here, on the goroutine that owns the subscription: it commits
	// the offset so KVBroker truncation can compact the result log, and —
	// result producers setting no evict-on-ack — has no payload side
	// effect (futures evict payloads themselves as they consume).
	_ = it.Ack(ctx)
	id := it.Event.Attr(AttrTaskID)
	e.mu.Lock()
	p := e.pending[id]
	if p == nil || p.delivered {
		e.mu.Unlock()
		evictResult(ctx, it)
		return
	}
	p.delivered = true
	e.mu.Unlock()
	p.ch <- it // buffered; exactly one delivery per ID
}

// Submit publishes the task to the endpoint's topic. Unlike the classic
// executor there is no service payload limit: serialized arguments of any
// size ride the data plane, and the broker carries O(100 B).
func (e *StreamExecutor) Submit(ctx context.Context, function string, args ...any) (*Future, error) {
	payload, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	id := connector.NewID()
	pr := &pendingResult{ch: make(chan *pstream.Item[TaskResult], 1)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrExecutorClosed
	}
	e.pending[id] = pr
	e.mu.Unlock()

	req := TaskRequest{ID: id, Function: function, Args: payload, ResultTopic: e.topic}
	// Every submission roots a trace. The span context rides the task
	// event's attrs, so each later hop — producer publish, endpoint
	// execute, result delivery — continues the same trace.
	sp := telemetry.Default().StartSpan("", "", "submit")
	attrs := map[string]string{
		AttrTaskID:       id,
		AttrTaskFunction: function,
		AttrResultTopic:  e.topic,
	}
	sp.Inject(attrs)
	err = e.prod.Send(ctx, req, attrs)
	sp.End()
	if err != nil {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
		return nil, err
	}
	e.submitted.Add(1)
	// resolve runs on the CALLER's goroutine, so it must never touch the
	// dispatcher's subscription (Subscriptions are single-goroutine; a
	// concurrent Ack races Next). The result topic is private to this
	// executor and never resumed, so the only thing a broker ack would
	// buy is evict-on-ack — evicting the payload directly through the
	// store achieves that without the subscription.
	resolve := func(ctx context.Context, it *pstream.Item[TaskResult]) (any, error) {
		res, err := it.Value(ctx)
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
		// Reclaim the payload either way: on success it has been copied
		// out; on failure Result caches the error, so the value is
		// unreachable regardless (evictResult detaches from ctx, which
		// may be the very reason it.Value died).
		evictResult(ctx, it)
		if err != nil {
			return nil, fmt.Errorf("faas: resolving result for task %s: %w", id, err)
		}
		if res.Err != "" {
			return nil, fmt.Errorf("faas: task %s: %s", id, res.Err)
		}
		return decodeValue(res.Value)
	}
	return &Future{wait: func(ctx context.Context) (any, error) {
		select {
		case it := <-pr.ch:
			return resolve(ctx, it)
		case <-e.done:
			// A result delivered before shutdown still wins. The
			// delivered flag is the authority: if set, the item is in
			// pr.ch now or is transiently held by Close's prime-and-ack
			// drain, which always puts it back — so block on the channel,
			// not on a racy non-blocking peek.
			e.mu.Lock()
			delivered := pr.delivered
			e.mu.Unlock()
			if delivered {
				select {
				case it := <-pr.ch:
					return resolve(ctx, it)
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return nil, ErrExecutorClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}, nil
}

// Close stops the result dispatcher. Futures whose result never arrived
// fail with ErrExecutorClosed; futures whose result was already
// delivered still resolve it after Close. Delivered-but-unconsumed
// results — abandoned futures, Result calls whose context expired — are
// resolved into their proxies here and their stored payloads evicted, so
// nothing leaks either way. Close does not close the store or broker,
// which the executor borrows, and publishes no End on the task topic —
// the endpoint is long-lived and may serve other executors.
func (e *StreamExecutor) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	<-e.done
	e.mu.Lock()
	remaining := e.pending
	e.pending = make(map[string]*pendingResult)
	e.mu.Unlock()
	ctx := context.Background()
	for _, pr := range remaining {
		select {
		case it := <-pr.ch:
			// Prime the proxy's cache before evicting the stored copy: a
			// Result call issued after Close must still find the value.
			// The item goes back in the buffered channel for that call.
			_, _ = it.Proxy.Value(ctx)
			evictResult(ctx, it)
			pr.ch <- it
		default:
		}
	}
	return nil
}

// StreamEndpoint is a compute endpoint whose workers claim tasks from the
// endpoint's task topic as a consumer group, replacing the classic
// per-endpoint channel queue. A worker resolves the request's bulk payload
// from the data plane, executes the registered function, publishes the
// result on the submitting client's result topic, and only then settles
// its claim — so a worker that dies mid-task loses its lease and the task
// is re-executed by a surviving member (at-least-once execution,
// exactly-once result delivery via the client's dedup).
type StreamEndpoint struct {
	st   *store.Store
	b    pstream.Broker
	name string

	cancel context.CancelFunc
	wg     sync.WaitGroup

	// resolveStrikes tracks per-offset payload-resolution failures, so a
	// poison task is eventually reported as an error result instead of
	// cycling through the group's leases forever (SettleAfterStrikes).
	resolveStrikes *pstream.Strikes

	executed atomic.Uint64
}

// StartStreamEndpoint subscribes a pool of workers to the named endpoint's
// task topic. st stores result payloads (and must use a serializer that
// can encode TaskResult — the default gob serializer does).
func StartStreamEndpoint(st *store.Store, b pstream.Broker, name string, workers int) *StreamEndpoint {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &StreamEndpoint{
		st:             st,
		b:              b,
		name:           name,
		cancel:         cancel,
		resolveStrikes: pstream.NewStrikes(),
	}
	// Member names carry a fresh ID: two processes running the same
	// endpoint must not collide on member identity, or a stale ack from
	// one could settle a same-named peer's live claim.
	instance := connector.NewID()[:8]
	for i := 0; i < workers; i++ {
		ep.wg.Add(1)
		go ep.worker(ctx, fmt.Sprintf("%s-%s-w%d", name, instance, i))
	}
	return ep
}

// Executed returns the number of tasks whose function this endpoint ran,
// like the classic Endpoint's counter. A task whose result publish fails
// is still counted (and re-executed elsewhere after its lease expires).
func (ep *StreamEndpoint) Executed() uint64 { return ep.executed.Load() }

// Close stops the endpoint's workers. Unsettled claims are not released;
// they expire with their leases and are reclaimed by surviving members of
// the endpoint's group (possibly in another process).
func (ep *StreamEndpoint) Close() error {
	ep.cancel()
	ep.wg.Wait()
	return nil
}

// producer builds a producer for a client's result topic. Producers are
// tiny stateless handles, so one per task beats caching them: a
// long-lived endpoint serving a churn of short-lived executors (each
// with its own UUID result topic) must not accumulate per-topic state.
// No evict-on-ack: the submitting executor evicts result payloads
// directly as its futures consume them (its subscription is pure-read,
// so futures resolving concurrently never share broker state).
func (ep *StreamEndpoint) producer(topic string) *pstream.Producer[TaskResult] {
	return pstream.NewProducer[TaskResult](ep.st, ep.b, topic)
}

func (ep *StreamEndpoint) worker(ctx context.Context, member string) {
	defer ep.wg.Done()
	pstream.ConsumeLoop(ctx, 0, func() (*pstream.Consumer[TaskRequest], error) {
		// Window 1: a group member should never claim work it cannot start
		// within its lease.
		return pstream.NewConsumer[TaskRequest](ctx, ep.b, TaskTopic(ep.name), member,
			pstream.WithGroup(TaskGroup), pstream.WithEndCount(0), pstream.WithWindow(1))
	}, ep.execute)
}

// execute runs one claimed task. The claim is settled only after the
// result publish succeeds; any earlier failure leaves the claim to expire
// so another member retries the task.
func (ep *StreamEndpoint) execute(ctx context.Context, it *pstream.Item[TaskRequest]) {
	req, err := it.Value(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		// Bulk payload unresolvable. Transient store failures heal across
		// lease redeliveries, so the claim is normally left to expire —
		// but a poison task is eventually reported as the task's result,
		// routed via the event attrs (which exist precisely so a worker
		// can report without the payload).
		id, rt := it.Event.Attr(AttrTaskID), it.Event.Attr(AttrResultTopic)
		if rt == "" {
			return // nowhere to report; keep the lease cadence
		}
		pstream.SettleAfterStrikes(ctx, ep.resolveStrikes, it, pstream.DefaultSettleStrikes, func() error {
			res := TaskResult{ID: id, Err: fmt.Sprintf("resolving task payload: %v", err)}
			return ep.producer(rt).Send(ctx, res, map[string]string{AttrTaskID: id})
		})
		return
	}
	ep.resolveStrikes.Clear(it.Event.Offset)
	// Continue the submitter's trace: "execute" parents under the task
	// event's span and is in turn the parent the result event carries, so
	// the result publish and delivery hops stay on the same trace.
	var sp *telemetry.Span
	if trace := it.Event.Attr(telemetry.AttrTrace); trace != "" {
		sp = telemetry.Default().StartSpan(trace, it.Event.Attr(telemetry.AttrSpan), "execute")
	}
	res := TaskResult{ID: req.ID}
	if args, err := decodeArgs(req.Args); err != nil {
		res.Err = err.Error()
	} else if fn, err := lookupFunction(req.Function); err != nil {
		res.Err = err.Error()
	} else if out, err := fn(ctx, args); err != nil {
		res.Err = err.Error()
	} else if payload, err := encodeValue(out); err != nil {
		res.Err = err.Error()
	} else {
		res.Value = payload
	}
	// Count before publishing: the instant Send returns, the client's
	// future can resolve on another goroutine, and callers joining on
	// futures legitimately expect Executed to cover their tasks.
	ep.executed.Add(1)
	prod := ep.producer(req.ResultTopic)
	resAttrs := map[string]string{AttrTaskID: res.ID}
	sp.Inject(resAttrs)
	err = prod.Send(ctx, res, resAttrs)
	sp.End()
	if err != nil {
		return
	}
	// Task payload was resolved and the result is durable: settle the
	// claim. The ack reclaims the request payload (evict-on-ack, one
	// logical consumer — the group).
	_ = it.Ack(ctx)
}
