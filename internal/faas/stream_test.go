package faas

import (
	"context"
	"sync"
	"testing"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/pstream"
	"proxystore/internal/pstream/brokertest"
	"proxystore/internal/store"
)

// newStreamPlatform wires a stream-backed executor/endpoint pair over the
// given broker with a fresh local store, returning the shared-suite
// platform handle.
func newStreamPlatform(t *testing.T, b pstream.Broker) platform {
	t.Helper()
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-stream-"+id, local.New("faas-stream-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-stream-" + id) })
	epName := "ep-" + id
	ep := StartStreamEndpoint(st, b, epName, 4)
	t.Cleanup(func() { ep.Close() })
	exec, err := NewStreamExecutor(st, b, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}
	t.Cleanup(func() { exec.Close() })
	return platform{submit: exec.Submit, executed: ep.Executed}
}

func TestStreamNoPayloadLimit(t *testing.T) {
	// The classic cloud rejects >5 MB payloads; the stream executor has no
	// service in the data path, so by-value arguments of any size ride the
	// store bulk plane.
	p := newStreamPlatform(t, pstream.NewMem())
	ctx := context.Background()
	big := make([]byte, PayloadLimit+PayloadLimit/4)
	fut, err := p.submit(ctx, "echo", big)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v, err := fut.Result(ctx)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if len(v.([]byte)) != len(big) {
		t.Fatalf("Result carried %d bytes, want %d", len(v.([]byte)), len(big))
	}
}

func TestStreamKVRoundTripMovesMetadataOnly(t *testing.T) {
	// Full stream plane over a kvstore server with push delivery: the
	// broker must carry O(KB) per task while the 256 KiB arguments and
	// results ride the redis data plane.
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	cb := pstream.NewCounting(pstream.NewKV(srv.Addr()))
	t.Cleanup(func() { cb.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-kv-"+id, redisc.New(srv.Addr()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-kv-" + id) })

	epName := "kv-ep-" + id
	ep := StartStreamEndpoint(st, cb, epName, 2)
	t.Cleanup(func() { ep.Close() })
	exec, err := NewStreamExecutor(st, cb, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}
	t.Cleanup(func() { exec.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const tasks = 4
	arg := make([]byte, 256<<10)
	futures := make([]*Future, tasks)
	for i := range futures {
		fut, err := exec.Submit(ctx, "echo", arg)
		if err != nil {
			t.Fatalf("Submit #%d: %v", i, err)
		}
		futures[i] = fut
	}
	for i, fut := range futures {
		v, err := fut.Result(ctx)
		if err != nil {
			t.Fatalf("Result #%d: %v", i, err)
		}
		if len(v.([]byte)) != len(arg) {
			t.Fatalf("Result #%d carried %d bytes", i, len(v.([]byte)))
		}
	}
	brokerBytes := cb.BytesPublished() + cb.BytesDelivered()
	if brokerBytes > 128<<10 {
		t.Fatalf("broker moved %d bytes for %d tasks of %d-byte args — payloads leaked onto the metadata plane",
			brokerBytes, tasks, len(arg))
	}
}

func TestStreamConcurrentResultResolution(t *testing.T) {
	// Futures resolve on caller goroutines and must never touch the
	// dispatcher's subscription (Subscriptions are single-goroutine;
	// payload cleanup goes directly through the store). Hammer many
	// concurrent Result calls over KVBroker — under -race this fails if
	// resolution ever shares broker state.
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	b := pstream.NewKV(srv.Addr())
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-conc-"+id, redisc.New(srv.Addr()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-conc-" + id) })
	epName := "conc-ep-" + id
	ep := StartStreamEndpoint(st, b, epName, 4)
	t.Cleanup(func() { ep.Close() })
	exec, err := NewStreamExecutor(st, b, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}
	t.Cleanup(func() { exec.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		fut, err := exec.Submit(ctx, "echo", i)
		if err != nil {
			t.Fatalf("Submit #%d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, fut *Future) {
			defer wg.Done()
			v, err := fut.Result(ctx)
			if err != nil {
				t.Errorf("Result #%d: %v", i, err)
				return
			}
			if v.(int) != i {
				t.Errorf("Result #%d = %v", i, v)
			}
		}(i, fut)
	}
	wg.Wait()
}

func TestStreamExactlyOnceUnderKilledWorker(t *testing.T) {
	// The group-fault guarantee, end to end over KVBroker: a worker claims
	// tasks and dies before executing them; its leases expire, survivors
	// reclaim, and every task is executed exactly once with every future
	// resolving. JitterBroker shakes the claim/ack timing.
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	// The lease must comfortably exceed any survivor stall (GC pause,
	// loaded CI runner): a live worker's claim that expires mid-execution
	// would be legitimately re-executed, which this test's exactly-once
	// assertion would misread as a failure. 2 s dwarfs the milliseconds a
	// healthy claim stays open while keeping reclamation (and the test)
	// fast.
	lease := 2 * time.Second
	b := brokertest.NewJitter(pstream.NewKV(srv.Addr(), pstream.WithKVLease(lease)), 7, 5*time.Millisecond)
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-kill-"+id, redisc.New(srv.Addr()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-kill-" + id) })

	var mu sync.Mutex
	execCount := make(map[int]int)
	fnName := "track-" + id
	RegisterFunction(fnName, func(_ context.Context, args []any) (any, error) {
		i := args[0].(int)
		mu.Lock()
		execCount[i]++
		mu.Unlock()
		return i * 10, nil
	})

	epName := "kill-ep-" + id
	exec, err := NewStreamExecutor(st, b, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}
	t.Cleanup(func() { exec.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	const tasks = 6
	futures := make([]*Future, tasks)
	for i := range futures {
		fut, err := exec.Submit(ctx, fnName, i)
		if err != nil {
			t.Fatalf("Submit #%d: %v", i, err)
		}
		futures[i] = fut
	}

	// The doomed worker: claims two tasks off the group queue and dies
	// without executing or acking either.
	doomed, err := b.SubscribeGroup(ctx, TaskTopic(epName), TaskGroup, "doomed")
	if err != nil {
		t.Fatalf("SubscribeGroup(doomed): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := doomed.Next(ctx); err != nil {
			t.Fatalf("doomed claim #%d: %v", i, err)
		}
	}
	doomed.Close()

	// Survivors: a real worker pool on the same group. The four unclaimed
	// tasks run immediately; the two orphans run after lease expiry.
	ep := StartStreamEndpoint(st, b, epName, 2)
	t.Cleanup(func() { ep.Close() })

	for i, fut := range futures {
		v, err := fut.Result(ctx)
		if err != nil {
			t.Fatalf("Result #%d: %v", i, err)
		}
		if v.(int) != i*10 {
			t.Fatalf("Result #%d = %v, want %d", i, v, i*10)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(execCount) != tasks {
		t.Fatalf("executed %d distinct tasks, want %d", len(execCount), tasks)
	}
	for i := 0; i < tasks; i++ {
		if execCount[i] != 1 {
			t.Fatalf("task %d executed %d times, want exactly once", i, execCount[i])
		}
	}
	if got := ep.Executed(); got != tasks {
		t.Fatalf("surviving endpoint executed %d tasks, want %d", got, tasks)
	}
}

func TestStreamResultSurvivesClose(t *testing.T) {
	// A result delivered before Close must still resolve after it: Close
	// primes and acks unconsumed deliveries (reclaiming their payloads)
	// but leaves the value reachable for a late Result call.
	b := pstream.NewMem()
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-close-"+id, local.New("faas-close-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-close-" + id) })
	epName := "close-ep-" + id
	ep := StartStreamEndpoint(st, b, epName, 1)
	t.Cleanup(func() { ep.Close() })
	exec, err := NewStreamExecutor(st, b, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}

	ctx := context.Background()
	fut, err := exec.Submit(ctx, "echo", 7)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait (white-box) until the dispatcher has handed the result item to
	// the future's channel, so Close deterministically runs after delivery.
	deadline := time.Now().Add(10 * time.Second)
	for {
		exec.mu.Lock()
		delivered := false
		for _, pr := range exec.pending {
			delivered = pr.delivered
		}
		exec.mu.Unlock()
		if delivered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result never delivered to the future")
		}
		time.Sleep(2 * time.Millisecond)
	}
	exec.Close()
	v, err := fut.Result(ctx)
	if err != nil {
		t.Fatalf("Result after Close: %v", err)
	}
	if v.(int) != 7 {
		t.Fatalf("Result after Close = %v, want 7", v)
	}
}

func TestStreamDuplicateResultDropped(t *testing.T) {
	// A worker that dies between result publish and claim settlement makes
	// the task re-run, publishing a second result with the same ID. The
	// executor's dispatcher must drop (and ack) the stray so callers never
	// see it, and keep serving later tasks.
	b := pstream.NewMem()
	t.Cleanup(func() { b.Close() })
	id := connector.NewID()[:8]
	st, err := store.New("faas-dup-"+id, local.New("faas-dup-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-dup-" + id) })
	epName := "dup-ep-" + id
	ep := StartStreamEndpoint(st, b, epName, 1)
	t.Cleanup(func() { ep.Close() })
	exec, err := NewStreamExecutor(st, b, epName)
	if err != nil {
		t.Fatalf("NewStreamExecutor: %v", err)
	}
	t.Cleanup(func() { exec.Close() })

	ctx := context.Background()
	fut, err := exec.Submit(ctx, "echo", 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Result(ctx); err != nil {
		t.Fatalf("Result: %v", err)
	}

	// Forge a duplicate/unknown result on the shared result topic,
	// addressed to this executor by the faas.rt routing tag.
	stray := pstream.NewProducer[TaskResult](st, b, ResultTopic(epName))
	strayAttrs := map[string]string{AttrTaskID: "stray", AttrResultTopic: exec.ID()}
	if err := stray.Send(ctx, TaskResult{ID: "stray"}, strayAttrs); err != nil {
		t.Fatalf("stray Send: %v", err)
	}

	fut2, err := exec.Submit(ctx, "echo", 2)
	if err != nil {
		t.Fatalf("Submit after stray: %v", err)
	}
	v, err := fut2.Result(ctx)
	if err != nil {
		t.Fatalf("Result after stray: %v", err)
	}
	if v.(int) != 2 {
		t.Fatalf("Result = %v, want 2", v)
	}
}

func TestStreamExecutorCloseReturnsServerKeysToBaseline(t *testing.T) {
	// Regression: executors used to leave their result-topic keys (log
	// slots, committed offset) on the kv server forever — each
	// Close-without-cleanup grew the key count by O(results). Now the
	// result topic is shared per endpoint, Close forgets the executor's
	// offset and leaves the membership group, and the endpoint's sweep
	// truncates consumed slots — so a churn of executors must hold the
	// server's key count at a fixed baseline.
	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	b := pstream.NewKV(srv.Addr(),
		pstream.WithKVTruncate(1),
		pstream.WithKVLease(2*time.Second),
		pstream.WithKVHeartbeat(200*time.Millisecond))
	t.Cleanup(func() { b.Close() })

	id := connector.NewID()[:8]
	st, err := store.New("faas-leak-"+id, local.New("faas-leak-conn-"+id))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { store.Unregister("faas-leak-" + id) })
	epName := "leak-ep-" + id
	ep := StartStreamEndpoint(st, b, epName, 2)
	t.Cleanup(func() { ep.Close() })

	ctx := context.Background()
	cli := kvstore.NewClient(srv.Addr())
	t.Cleanup(func() { cli.Close() })

	// Two generations of executors: each submits and resolves a batch,
	// then closes cleanly. After a sweep, the server must be back at the
	// same key count both times — no per-executor growth. The count is
	// polled briefly: the workers' own floor sweep collects the last
	// task's claim record on their next scan, an instant after its ack.
	generation := func(ceiling int64) int64 {
		exec, err := NewStreamExecutor(st, b, epName)
		if err != nil {
			t.Fatalf("NewStreamExecutor: %v", err)
		}
		for i := 0; i < 8; i++ {
			fut, err := exec.Submit(ctx, "echo", i)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if _, err := fut.Result(ctx); err != nil {
				t.Fatalf("Result: %v", err)
			}
		}
		if err := exec.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		var n int64
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := ep.SweepResults(ctx); err != nil {
				t.Fatalf("SweepResults: %v", err)
			}
			if n, err = cli.DBSize(ctx); err != nil {
				t.Fatalf("DBSize: %v", err)
			}
			if n <= ceiling || time.Now().After(deadline) {
				return n
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// The absolute baseline is a fixed handful: topic counters, trunc
	// floors, the group's floor, rosters and live worker heartbeats —
	// independent of how many tasks or executors have been through.
	first := generation(24)
	second := generation(first)
	if second > first {
		t.Fatalf("server keys grew across executor generations: %d -> %d", first, second)
	}
	if first > 24 {
		t.Fatalf("baseline server key count = %d, want <= 24", first)
	}
}
