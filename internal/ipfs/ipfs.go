// Package ipfs implements a small content-addressed, peer-to-peer block
// store in the spirit of IPFS, used as the inter-site baseline in Figure 5.
//
// Content is chunked into 256 KiB blocks; the content identifier (CID) of a
// file is the hash of its block manifest. Nodes hold blocks locally and
// fetch missing blocks from connected peers with a want-list exchange,
// paying per-block request/response delays on the modeled link plus a
// fixed per-retrieval resolution overhead (DHT lookup stand-in).
package ipfs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/netsim"
)

// BlockSize is the chunking unit (256 KiB, IPFS' default).
const BlockSize = 256 << 10

// CID is a content identifier: the hex SHA-256 of the addressed content.
type CID string

func hashCID(data []byte) CID {
	sum := sha256.Sum256(data)
	return CID(hex.EncodeToString(sum[:]))
}

// Node is an IPFS-like peer.
//
// A Node is safe for concurrent use.
type Node struct {
	id   string
	site string
	net  *netsim.Network
	// resolveOverhead models content routing (DHT walk) per retrieval.
	resolveOverhead time.Duration

	mu     sync.RWMutex
	blocks map[CID][]byte
	peers  []*Node
}

// Option configures a Node.
type Option func(*Node)

// WithResolveOverhead overrides the per-retrieval routing overhead
// (default 50 ms nominal, scaled by the network's time scale).
func WithResolveOverhead(d time.Duration) Option {
	return func(n *Node) { n.resolveOverhead = d }
}

// NewNode creates a node at a netsim site.
func NewNode(id, site string, network *netsim.Network, opts ...Option) *Node {
	n := &Node{
		id:              id,
		site:            site,
		net:             network,
		resolveOverhead: 50 * time.Millisecond,
		blocks:          make(map[CID][]byte),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Connect links two nodes as peers (bidirectional).
func Connect(a, b *Node) {
	a.mu.Lock()
	a.peers = append(a.peers, b)
	a.mu.Unlock()
	b.mu.Lock()
	b.peers = append(b.peers, a)
	b.mu.Unlock()
}

// Add chunks data into blocks, stores them locally, and returns the content
// identifier of the manifest.
func (n *Node) Add(data []byte) CID {
	var manifest bytes.Buffer
	var count uint32
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		block := make([]byte, end-off)
		copy(block, data[off:end])
		cid := hashCID(block)
		n.mu.Lock()
		n.blocks[cid] = block
		n.mu.Unlock()
		manifest.WriteString(string(cid))
		count++
		if len(data) == 0 {
			break
		}
	}
	// Manifest layout: 4-byte block count then concatenated hex CIDs.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], count)
	full := append(hdr[:], manifest.Bytes()...)
	root := hashCID(full)
	n.mu.Lock()
	n.blocks[root] = full
	n.mu.Unlock()
	return root
}

// localBlock fetches a block from local storage only.
func (n *Node) localBlock(cid CID) ([]byte, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.blocks[cid]
	return b, ok
}

// fetchBlock finds a block locally or from peers, paying modeled transfer
// costs, and caches it locally (IPFS nodes pin what they fetch).
func (n *Node) fetchBlock(ctx context.Context, cid CID) ([]byte, error) {
	if b, ok := n.localBlock(cid); ok {
		return b, nil
	}
	n.mu.RLock()
	peers := append([]*Node(nil), n.peers...)
	n.mu.RUnlock()
	for _, p := range peers {
		b, ok := p.localBlock(cid)
		if !ok {
			continue
		}
		if n.net != nil {
			// Want-list request (small) out, block back.
			if err := n.net.Delay(ctx, n.site, p.site, 64); err != nil {
				return nil, err
			}
			if err := n.net.Delay(ctx, p.site, n.site, len(b)); err != nil {
				return nil, err
			}
		}
		n.mu.Lock()
		n.blocks[cid] = b
		n.mu.Unlock()
		return b, nil
	}
	return nil, fmt.Errorf("ipfs: block %s not found on node %s or its peers", cid[:12], n.id)
}

// Get reassembles the content behind a CID, fetching missing blocks from
// peers.
func (n *Node) Get(ctx context.Context, root CID) ([]byte, error) {
	// Content routing overhead per retrieval.
	if n.net != nil && n.resolveOverhead > 0 {
		d := time.Duration(float64(n.resolveOverhead) / n.net.Scale())
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}

	manifest, err := n.fetchBlock(ctx, root)
	if err != nil {
		return nil, err
	}
	if len(manifest) < 4 {
		return nil, fmt.Errorf("ipfs: corrupt manifest for %s", root[:12])
	}
	count := binary.BigEndian.Uint32(manifest[:4])
	body := manifest[4:]
	const cidLen = 64 // hex sha256
	if len(body) != int(count)*cidLen {
		return nil, fmt.Errorf("ipfs: manifest length mismatch for %s", root[:12])
	}
	var out []byte
	for i := 0; i < int(count); i++ {
		cid := CID(body[i*cidLen : (i+1)*cidLen])
		block, err := n.fetchBlock(ctx, cid)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
	}
	return out, nil
}

// Has reports whether the node holds the root block locally.
func (n *Node) Has(cid CID) bool {
	_, ok := n.localBlock(cid)
	return ok
}

// Blocks returns the number of locally held blocks.
func (n *Node) Blocks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}
