package ipfs

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
	"time"

	"proxystore/internal/netsim"
)

func twoNodes(t *testing.T) (*Node, *Node) {
	t.Helper()
	n := netsim.New(100)
	n.AddSite("client", true)
	n.AddSite("worker", true)
	n.SetLink("client", "worker", netsim.Link{Latency: 2 * time.Millisecond, Bandwidth: 400e6})
	a := NewNode("node-a", "client", n)
	b := NewNode("node-b", "worker", n)
	Connect(a, b)
	return a, b
}

func TestAddGetLocal(t *testing.T) {
	a, _ := twoNodes(t)
	data := []byte("content addressed")
	cid := a.Add(data)
	got, err := a.Get(context.Background(), cid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q", got)
	}
}

func TestGetFromPeer(t *testing.T) {
	a, b := twoNodes(t)
	data := bytes.Repeat([]byte("p2p"), 100_000) // multi-block
	cid := a.Add(data)
	got, err := b.Get(context.Background(), cid)
	if err != nil {
		t.Fatalf("peer Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("peer-fetched content corrupted")
	}
	// b pinned the fetched blocks.
	if !b.Has(cid) {
		t.Fatal("fetched root block not pinned locally")
	}
}

func TestContentAddressingDeterministic(t *testing.T) {
	a, b := twoNodes(t)
	data := []byte("same bytes, same cid")
	if a.Add(data) != b.Add(data) {
		t.Fatal("identical content produced different CIDs")
	}
}

func TestDistinctContentDistinctCID(t *testing.T) {
	a, _ := twoNodes(t)
	if a.Add([]byte("one")) == a.Add([]byte("two")) {
		t.Fatal("distinct content produced the same CID")
	}
}

func TestMissingContent(t *testing.T) {
	a, _ := twoNodes(t)
	if _, err := a.Get(context.Background(), CID("0000000000000000000000000000000000000000000000000000000000000000")); err == nil {
		t.Fatal("Get succeeded for unknown CID")
	}
}

func TestEmptyContent(t *testing.T) {
	a, b := twoNodes(t)
	cid := a.Add(nil)
	got, err := b.Get(context.Background(), cid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Get = %d bytes, want 0", len(got))
	}
}

func TestBlockChunking(t *testing.T) {
	a, _ := twoNodes(t)
	before := a.Blocks()
	data := make([]byte, 3*BlockSize+100) // 4 data blocks + manifest
	for b := 0; b*BlockSize < len(data); b++ {
		data[b*BlockSize] = byte(b) + 1 // distinct content per block so nothing dedupes
	}
	a.Add(data)
	if added := a.Blocks() - before; added != 5 {
		t.Fatalf("Add created %d blocks, want 5", added)
	}
}

func TestIdenticalBlocksDedupe(t *testing.T) {
	// Content addressing stores identical chunks once.
	a, _ := twoNodes(t)
	before := a.Blocks()
	a.Add(make([]byte, 3*BlockSize))              // three identical zero blocks
	if added := a.Blocks() - before; added != 2 { // 1 zero block + manifest
		t.Fatalf("Add created %d blocks, want 2 (dedup)", added)
	}
}

func TestSecondGetServedLocally(t *testing.T) {
	a, b := twoNodes(t)
	data := bytes.Repeat([]byte("cache me"), 50_000)
	cid := a.Add(data)
	ctx := context.Background()
	if _, err := b.Get(ctx, cid); err != nil {
		t.Fatalf("first Get: %v", err)
	}
	// After pinning, a repeat get should not need the peer: remove the
	// peer link and fetch again.
	b.mu.Lock()
	b.peers = nil
	b.mu.Unlock()
	got, err := b.Get(ctx, cid)
	if err != nil {
		t.Fatalf("second Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cached content corrupted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	a, b := twoNodes(t)
	f := func(data []byte) bool {
		cid := a.Add(data)
		got, err := b.Get(context.Background(), cid)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
