// Package rpc implements a Mercury-style remote procedure call layer over
// the simulated RDMA fabric (paper references: Mercury [57], Margo [50]).
//
// The Mercury model splits every call into a small two-sided RPC message
// and, for large arguments or results, a one-sided bulk transfer: the
// caller registers its buffer and ships only the bulk handle; the callee
// pulls the bytes with an RDMA read (and pushes results with an RDMA
// write). This split is exactly why Margo-backed stores dominate at large
// payloads in the paper's Figure 6, so the simulation preserves it.
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"

	"proxystore/internal/rdma"
)

// BulkThreshold is the payload size above which arguments move via
// one-sided bulk transfer instead of inline RPC (Mercury's eager/rendezvous
// switch).
const BulkThreshold = 16 << 10

// Handler services one RPC. Inputs arrive fully materialized regardless of
// whether they travelled inline or via bulk transfer.
type Handler func(ctx context.Context, arg []byte) ([]byte, error)

// wire is the on-fabric envelope.
type wire struct {
	// Kind distinguishes requests from responses.
	Kind byte
	// Seq matches responses to requests.
	Seq uint64
	// Method is the registered handler name (requests only).
	Method string
	// Inline carries small payloads directly.
	Inline []byte
	// BulkRegion and BulkLen describe a registered source region to pull
	// from when the payload exceeded BulkThreshold.
	BulkRegion string
	BulkLen    int
	// From is the caller's fabric address (requests only).
	From string
	// Err carries a handler error message (responses only).
	Err string
}

const (
	kindRequest  byte = 1
	kindResponse byte = 2
	// kindAck confirms the caller finished pulling a bulk response so the
	// server can deregister the source region.
	kindAck byte = 3
)

func encodeWire(m wire) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("rpc: encoding envelope: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeWire(data []byte) (wire, error) {
	var m wire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return wire{}, fmt.Errorf("rpc: decoding envelope: %w", err)
	}
	return m, nil
}

// Server dispatches RPCs arriving at a fabric endpoint.
type Server struct {
	ep *rdma.Endpoint

	mu       sync.RWMutex
	handlers map[string]Handler

	regMu       sync.Mutex
	bulkRegions map[bulkKey]*rdma.MemoryRegion // response regions awaiting ack

	cancel context.CancelFunc
	done   chan struct{}
}

// NewServer starts serving RPCs on ep. Register handlers before issuing
// calls that reference them.
func NewServer(ep *rdma.Endpoint) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ep:          ep,
		handlers:    make(map[string]Handler),
		bulkRegions: make(map[bulkKey]*rdma.MemoryRegion),
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	go s.loop(ctx)
	return s
}

// Register installs a handler under name, replacing any previous handler.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
}

// Close stops the dispatch loop and closes the endpoint.
func (s *Server) Close() error {
	s.cancel()
	err := s.ep.Close()
	<-s.done
	return err
}

func (s *Server) loop(ctx context.Context) {
	defer close(s.done)
	for {
		msg, err := s.ep.Recv(ctx)
		if err != nil {
			return
		}
		go s.serveOne(ctx, msg)
	}
}

func (s *Server) serveOne(ctx context.Context, msg rdma.Message) {
	req, err := decodeWire(msg.Data)
	if err != nil {
		return
	}
	if req.Kind == kindAck {
		k := bulkKey{from: msg.From, seq: req.Seq}
		s.regMu.Lock()
		if region, ok := s.bulkRegions[k]; ok {
			delete(s.bulkRegions, k)
			s.ep.DeregisterMemory(region)
		}
		s.regMu.Unlock()
		return
	}
	if req.Kind != kindRequest {
		return
	}
	resp := wire{Kind: kindResponse, Seq: req.Seq}
	caller := msg.From

	arg := req.Inline
	if req.BulkRegion != "" {
		// Rendezvous path: pull the argument from the caller's region.
		arg, err = s.ep.ReadRemote(ctx, caller, req.BulkRegion, 0, req.BulkLen)
		if err != nil {
			resp.Err = fmt.Sprintf("bulk pull: %v", err)
			s.reply(ctx, caller, resp, nil)
			return
		}
	}

	s.mu.RLock()
	h, ok := s.handlers[req.Method]
	s.mu.RUnlock()
	if !ok {
		resp.Err = fmt.Sprintf("rpc: no handler %q", req.Method)
		s.reply(ctx, caller, resp, nil)
		return
	}

	out, err := h(ctx, arg)
	if err != nil {
		resp.Err = err.Error()
		s.reply(ctx, caller, resp, nil)
		return
	}
	s.reply(ctx, caller, resp, out)
}

func (s *Server) reply(ctx context.Context, to string, resp wire, payload []byte) {
	if len(payload) > BulkThreshold {
		region := s.ep.RegisterMemory(payload)
		resp.BulkRegion = region.ID
		resp.BulkLen = len(payload)
		// Deregistered when the caller's ack arrives.
		s.regMu.Lock()
		s.bulkRegions[bulkKey{from: to, seq: resp.Seq}] = region
		s.regMu.Unlock()
	} else {
		resp.Inline = payload
	}
	data, err := encodeWire(resp)
	if err != nil {
		return
	}
	_ = s.ep.Send(ctx, to, data)
}

// Client issues RPCs from its own fabric endpoint.
type Client struct {
	ep  *rdma.Endpoint
	seq atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan wire

	cancel context.CancelFunc
	done   chan struct{}
}

// NewClient starts a response dispatcher on ep.
func NewClient(ep *rdma.Endpoint) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		ep:      ep,
		waiters: make(map[uint64]chan wire),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go c.loop(ctx)
	return c
}

// Close stops the client and its endpoint.
func (c *Client) Close() error {
	c.cancel()
	err := c.ep.Close()
	<-c.done
	return err
}

func (c *Client) loop(ctx context.Context) {
	defer close(c.done)
	for {
		msg, err := c.ep.Recv(ctx)
		if err != nil {
			return
		}
		resp, err := decodeWire(msg.Data)
		if err != nil || resp.Kind != kindResponse {
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiters[resp.Seq]
		delete(c.waiters, resp.Seq)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// Call invokes method on the server at target with arg, returning the
// handler's output. Large arguments and results move via one-sided bulk
// transfers automatically.
func (c *Client) Call(ctx context.Context, target, method string, arg []byte) ([]byte, error) {
	seq := c.seq.Add(1)
	req := wire{Kind: kindRequest, Seq: seq, Method: method, From: c.ep.Addr()}

	var region *rdma.MemoryRegion
	if len(arg) > BulkThreshold {
		region = c.ep.RegisterMemory(arg)
		req.BulkRegion = region.ID
		req.BulkLen = len(arg)
		defer c.ep.DeregisterMemory(region)
	} else {
		req.Inline = arg
	}

	data, err := encodeWire(req)
	if err != nil {
		return nil, err
	}

	ch := make(chan wire, 1)
	c.mu.Lock()
	c.waiters[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, seq)
		c.mu.Unlock()
	}()

	if err := c.ep.Send(ctx, target, data); err != nil {
		return nil, err
	}

	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, fmt.Errorf("rpc: %s: %s", method, resp.Err)
		}
		if resp.BulkRegion != "" {
			out, err := c.ep.ReadRemote(ctx, target, resp.BulkRegion, 0, resp.BulkLen)
			if err != nil {
				return nil, err
			}
			// Tell the server the pull is complete so it can deregister.
			if ack, aerr := encodeWire(wire{Kind: kindAck, Seq: seq}); aerr == nil {
				_ = c.ep.Send(ctx, target, ack)
			}
			return out, nil
		}
		return resp.Inline, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// bulkKey identifies a pending bulk response region by caller and sequence.
type bulkKey struct {
	from string
	seq  uint64
}
