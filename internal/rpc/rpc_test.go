package rpc

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxystore/internal/netsim"
	"proxystore/internal/rdma"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	n := netsim.New(1)
	n.AddSite("s", true)
	f := rdma.NewFabric(n, rdma.MargoProfile())
	sep, err := f.NewEndpoint("server", "s")
	if err != nil {
		t.Fatalf("NewEndpoint: %v", err)
	}
	cep, err := f.NewEndpoint("client", "s")
	if err != nil {
		t.Fatalf("NewEndpoint: %v", err)
	}
	srv := NewServer(sep)
	cli := NewClient(cep)
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return srv, cli
}

func TestCallEcho(t *testing.T) {
	srv, cli := newPair(t)
	srv.Register("echo", func(_ context.Context, arg []byte) ([]byte, error) {
		return arg, nil
	})
	got, err := cli.Call(context.Background(), "server", "echo", []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("Call = %q", got)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	_, cli := newPair(t)
	if _, err := cli.Call(context.Background(), "server", "missing", nil); err == nil {
		t.Fatal("Call to unregistered method succeeded")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	srv, cli := newPair(t)
	srv.Register("fail", func(context.Context, []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	_, err := cli.Call(context.Background(), "server", "fail", nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("deliberate failure")) {
		t.Fatalf("Call error = %v", err)
	}
}

func TestBulkArgumentRoundTrip(t *testing.T) {
	srv, cli := newPair(t)
	srv.Register("len", func(_ context.Context, arg []byte) ([]byte, error) {
		return []byte(fmt.Sprint(len(arg))), nil
	})
	big := make([]byte, BulkThreshold*4)
	for i := range big {
		big[i] = byte(i)
	}
	got, err := cli.Call(context.Background(), "server", "len", big)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != fmt.Sprint(len(big)) {
		t.Fatalf("Call = %q", got)
	}
}

func TestBulkResponseRoundTrip(t *testing.T) {
	srv, cli := newPair(t)
	big := make([]byte, BulkThreshold*4)
	for i := range big {
		big[i] = byte(i * 7)
	}
	srv.Register("fetch", func(context.Context, []byte) ([]byte, error) {
		return big, nil
	})
	got, err := cli.Call(context.Background(), "server", "fetch", nil)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("bulk response corrupted")
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, cli := newPair(t)
	srv.Register("double", func(_ context.Context, arg []byte) ([]byte, error) {
		return append(arg, arg...), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := []byte(fmt.Sprintf("msg-%d", i))
			got, err := cli.Call(context.Background(), "server", "double", in)
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if !bytes.Equal(got, append(in, in...)) {
				t.Errorf("Call = %q", got)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallContextCancellation(t *testing.T) {
	srv, cli := newPair(t)
	block := make(chan struct{})
	srv.Register("hang", func(ctx context.Context, _ []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, "server", "hang", nil); err == nil {
		t.Fatal("Call returned despite hung handler and expired context")
	}
}

func TestTwoClientsSeqIsolation(t *testing.T) {
	// Two clients with colliding sequence numbers must not confuse the
	// server's bulk-region bookkeeping.
	n := netsim.New(1)
	n.AddSite("s", true)
	f := rdma.NewFabric(n, rdma.UCXProfile())
	sep, _ := f.NewEndpoint("srv2", "s")
	srv := NewServer(sep)
	defer srv.Close()
	big := make([]byte, BulkThreshold*2)
	srv.Register("fetch", func(context.Context, []byte) ([]byte, error) { return big, nil })

	for i := 0; i < 2; i++ {
		cep, _ := f.NewEndpoint(fmt.Sprintf("cli2-%d", i), "s")
		cli := NewClient(cep)
		got, err := cli.Call(context.Background(), "srv2", "fetch", nil)
		if err != nil {
			t.Fatalf("client %d Call: %v", i, err)
		}
		if len(got) != len(big) {
			t.Fatalf("client %d got %d bytes", i, len(got))
		}
		cli.Close()
	}
}
