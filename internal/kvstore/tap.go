package kvstore

import (
	"context"
	"strconv"
	"time"
)

// This file is the kvstore half of the record/replay wire tap (see
// internal/wiretap): a TapKV wraps any KV and reports every operation —
// name, arguments, normalized reply, error, and whether the call blocks
// server-side — to a TapFunc. The tap sits at the KV interface, above
// pooling, pipelining windows, the wait multiplexer and sharded routing,
// so one recorded operation means one logical client call regardless of
// how the transport carried it, and a trace recorded against a sharded
// tier replays unchanged against a single server.

// TapDone completes one tapped operation with its normalized reply (see
// the reply grammar on normalizeValue) and error. The tap may block: the
// wiretap recorder serializes appends here, and orchestration hooks in
// deterministic tests use the callback as an interleaving point.
type TapDone func(reply [][]byte, err error)

// TapFunc observes the start of one client operation and returns the
// callback to complete it. blocking marks operations that park server-side
// (WaitGet/WaitPrefix), which a deterministic replayer must dispatch
// asynchronously — their replies depend on operations recorded later.
type TapFunc func(name string, args [][]byte, blocking bool) TapDone

// TapKV wraps a KV and reports every operation to tap. It composes with
// the other KV implementations the way pstream's broker wrappers compose
// with AsKV: Unwrap exposes the wrapped client, so AsClient still finds a
// concrete *Client through any stack of taps.
type TapKV struct {
	inner KV
	tap   TapFunc
}

// NewTap wraps inner so every operation is reported to tap.
func NewTap(inner KV, tap TapFunc) *TapKV { return &TapKV{inner: inner, tap: tap} }

var _ KV = (*TapKV)(nil)

// Unwrap returns the wrapped KV, so client-walking helpers (AsClient)
// see through taps exactly like pstream.AsKV sees through
// Counting/Jitter broker wrappers.
func (t *TapKV) Unwrap() KV { return t.inner }

// AsClient unwraps kv to its underlying single-server *Client, walking
// wrappers (TapKV, test wrappers) via their Unwrap method. ok is false
// when the chain bottoms out elsewhere (e.g. a sharded client).
func AsClient(kv KV) (*Client, bool) {
	for kv != nil {
		if c, ok := kv.(*Client); ok {
			return c, true
		}
		u, ok := kv.(interface{ Unwrap() KV })
		if !ok {
			return nil, false
		}
		kv = u.Unwrap()
	}
	return nil, false
}

// Normalized-reply element tags. A reply is a flat [][]byte sequence:
//
//	["n"]             null (missing key, timed-out wait)
//	["i<decimal>"]    integer reply
//	["s<text>"]       simple-string reply
//	["e<message>"]    per-command server error (pipelines only)
//	["b", <bytes>]    bulk reply: tag element, then the payload element
//	["a<n>", ...]     array of n elements, each encoded as above
//
// The same encoding is produced when a trace is replayed (the replayer
// routes its calls through a capturing TapKV), so recorded and replayed
// replies compare byte-for-byte.
func appendValue(out [][]byte, v value, err error) [][]byte {
	if err != nil {
		return append(out, []byte("e"+err.Error()))
	}
	if v.null {
		return append(out, []byte("n"))
	}
	switch v.kind {
	case respInteger:
		return append(out, []byte("i"+strconv.FormatInt(v.num, 10)))
	case respSimpleString:
		return append(out, []byte("s"+v.str))
	case respArray:
		out = append(out, []byte("a"+strconv.Itoa(len(v.arr))))
		for _, el := range v.arr {
			out = appendValue(out, el, nil)
		}
		return out
	default:
		return append(out, []byte("b"), v.bulk)
	}
}

func intReply(n int64) [][]byte   { return [][]byte{[]byte("i" + strconv.FormatInt(n, 10))} }
func boolReply(ok bool) [][]byte  { return intReply(map[bool]int64{false: 0, true: 1}[ok]) }
func bulkReply(b []byte) [][]byte { return [][]byte{[]byte("b"), b} }

var nullReply = [][]byte{[]byte("n")}

func optBulkReply(b []byte, ok bool) [][]byte {
	if !ok {
		return nullReply
	}
	return bulkReply(b)
}

func (t *TapKV) Ping(ctx context.Context) error {
	done := t.tap("PING", nil, false)
	err := t.inner.Ping(ctx)
	done(nil, err)
	return err
}

func (t *TapKV) Set(ctx context.Context, key string, val []byte) error {
	done := t.tap("SET", [][]byte{[]byte(key), val}, false)
	err := t.inner.Set(ctx, key, val)
	done(nil, err)
	return err
}

func (t *TapKV) Get(ctx context.Context, key string) ([]byte, bool, error) {
	done := t.tap("GET", [][]byte{[]byte(key)}, false)
	val, ok, err := t.inner.Get(ctx, key)
	done(optBulkReply(val, ok), err)
	return val, ok, err
}

func keysArgs(keys []string) [][]byte {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	return args
}

func (t *TapKV) Del(ctx context.Context, keys ...string) (int64, error) {
	done := t.tap("DEL", keysArgs(keys), false)
	n, err := t.inner.Del(ctx, keys...)
	done(intReply(n), err)
	return n, err
}

func (t *TapKV) MGet(ctx context.Context, keys ...string) ([][]byte, error) {
	done := t.tap("MGET", keysArgs(keys), false)
	vals, err := t.inner.MGet(ctx, keys...)
	var reply [][]byte
	for _, v := range vals {
		if v == nil {
			reply = append(reply, []byte("n"))
		} else {
			reply = append(reply, []byte("b"), v)
		}
	}
	done(reply, err)
	return vals, err
}

func (t *TapKV) MSet(ctx context.Context, pairs map[string][]byte) error {
	args := make([][]byte, 0, len(pairs)*2)
	for k, v := range pairs {
		args = append(args, []byte(k), v)
	}
	done := t.tap("MSET", args, false)
	err := t.inner.MSet(ctx, pairs)
	done(nil, err)
	return err
}

func (t *TapKV) Incr(ctx context.Context, key string) (int64, error) {
	done := t.tap("INCR", [][]byte{[]byte(key)}, false)
	n, err := t.inner.Incr(ctx, key)
	done(intReply(n), err)
	return n, err
}

func (t *TapKV) IncrBy(ctx context.Context, key string, delta int64) (int64, error) {
	done := t.tap("INCRBY", [][]byte{[]byte(key), []byte(strconv.FormatInt(delta, 10))}, false)
	n, err := t.inner.IncrBy(ctx, key, delta)
	done(intReply(n), err)
	return n, err
}

func (t *TapKV) CAS(ctx context.Context, key string, old, new []byte) (bool, error) {
	done := t.tap("CAS", [][]byte{[]byte(key), old, new}, false)
	won, err := t.inner.CAS(ctx, key, old, new)
	done(boolReply(won), err)
	return won, err
}

func (t *TapKV) DelRange(ctx context.Context, prefix string, start, end uint64) (int64, error) {
	done := t.tap("DELRANGE", [][]byte{[]byte(prefix),
		[]byte(strconv.FormatUint(start, 10)), []byte(strconv.FormatUint(end, 10))}, false)
	n, err := t.inner.DelRange(ctx, prefix, start, end)
	done(intReply(n), err)
	return n, err
}

// WaitGet records the timeout in nanoseconds so a time-compressing
// replayer can scale it along with the schedule.
func (t *TapKV) WaitGet(ctx context.Context, key string, timeout time.Duration) ([]byte, bool, error) {
	done := t.tap("WAITGET", [][]byte{[]byte(key),
		[]byte(strconv.FormatInt(int64(timeout), 10))}, true)
	val, ok, err := t.inner.WaitGet(ctx, key, timeout)
	done(optBulkReply(val, ok), err)
	return val, ok, err
}

func (t *TapKV) WaitPrefix(ctx context.Context, prefix string, after uint64, timeout time.Duration) (uint64, error) {
	done := t.tap("WAITPREFIX", [][]byte{[]byte(prefix),
		[]byte(strconv.FormatUint(after, 10)),
		[]byte(strconv.FormatInt(int64(timeout), 10))}, true)
	seq, err := t.inner.WaitPrefix(ctx, prefix, after, timeout)
	done(intReply(int64(seq)), err)
	return seq, err
}

// Pipeline returns the inner client's pipeline armed with the tap: Exec
// reports one "PIPELINE" operation whose args flatten the queued commands
// and whose reply concatenates the per-command replies, so batched
// round trips are recorded (and replayed) with their exact contents
// instead of vanishing below the interface.
func (t *TapKV) Pipeline() *Pipeline {
	p := t.inner.Pipeline()
	p.tap = t.tap
	return p
}

func (t *TapKV) Dials() uint64      { return t.inner.Dials() }
func (t *TapKV) RoundTrips() uint64 { return t.inner.RoundTrips() }
func (t *TapKV) Close() error       { return t.inner.Close() }

// pipeArgs flattens a pipeline's queued commands into tap args:
// ["<ncmds>", then per command: name, "<nargs>", args...].
func pipeArgs(cmds []pipeCmd) [][]byte {
	args := [][]byte{[]byte(strconv.Itoa(len(cmds)))}
	for _, cmd := range cmds {
		args = append(args, []byte(cmd.name), []byte(strconv.Itoa(len(cmd.args))))
		args = append(args, cmd.args...)
	}
	return args
}

// pipeReplies normalizes a pipeline's resolved replies, one encoded value
// (or "e..." error element) per queued command.
func pipeReplies(reps []*PipeReply) [][]byte {
	var out [][]byte
	for _, r := range reps {
		out = appendValue(out, r.v, r.err)
	}
	return out
}
