package kvstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newPrimaryReplica starts a persisted primary and a replica following it
// (each with its own AOF), plus clients for both.
func newPrimaryReplica(t *testing.T) (prim, repl *Server, pc, rc *Client) {
	t.Helper()
	dir := t.TempDir()
	prim, err := NewServer("127.0.0.1:0", WithPersistence(filepath.Join(dir, "primary.aof")))
	if err != nil {
		t.Fatalf("NewServer(primary): %v", err)
	}
	t.Cleanup(func() { prim.Close() })
	repl, err = NewServer("127.0.0.1:0",
		WithPersistence(filepath.Join(dir, "replica.aof")),
		WithReplicaOf(prim.Addr()))
	if err != nil {
		t.Fatalf("NewServer(replica): %v", err)
	}
	t.Cleanup(func() { repl.Close() })
	pc = NewClient(prim.Addr())
	t.Cleanup(func() { pc.Close() })
	rc = NewClient(repl.Addr())
	t.Cleanup(func() { rc.Close() })
	return prim, repl, pc, rc
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return raw
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicationCatchUp(t *testing.T) {
	_, _, pc, rc := newPrimaryReplica(t)
	ctx := context.Background()

	// Writes made before the replica syncs and after both replicate.
	for i := 0; i < 10; i++ {
		if err := pc.Set(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if _, err := pc.Del(ctx, "k3"); err != nil {
		t.Fatalf("Del: %v", err)
	}
	waitFor(t, "replica catch-up", func() bool {
		v, ok, err := rc.Get(ctx, "k9")
		return err == nil && ok && string(v) == "v9"
	})
	if _, ok, _ := rc.Get(ctx, "k3"); ok {
		t.Fatal("deleted key visible on replica")
	}
	// Live tail: a fresh write flows through the established feed.
	if err := pc.Set(ctx, "late", []byte("tail")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	waitFor(t, "live tail replication", func() bool {
		v, ok, err := rc.Get(ctx, "late")
		return err == nil && ok && string(v) == "tail"
	})
}

func TestReplicaRejectsWrites(t *testing.T) {
	_, _, _, rc := newPrimaryReplica(t)
	ctx := context.Background()
	err := rc.Set(ctx, "nope", []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "readonly replica") {
		t.Fatalf("Set on replica = %v, want readonly error", err)
	}
	if _, err := rc.Incr(ctx, "ctr"); err == nil || !strings.Contains(err.Error(), "readonly replica") {
		t.Fatalf("Incr on replica = %v, want readonly error", err)
	}
	// Reads are fine.
	if _, _, err := rc.Get(ctx, "anything"); err != nil {
		t.Fatalf("Get on replica: %v", err)
	}
}

func TestReplicaPromoteCommand(t *testing.T) {
	_, _, pc, rc := newPrimaryReplica(t)
	ctx := context.Background()
	if err := pc.Set(ctx, "seed", []byte("1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	waitFor(t, "replica sync", func() bool {
		_, ok, _ := rc.Get(ctx, "seed")
		return ok
	})
	if _, err := rc.do(ctx, "PROMOTE"); err != nil {
		t.Fatalf("PROMOTE: %v", err)
	}
	if err := rc.Set(ctx, "post", []byte("promoted")); err != nil {
		t.Fatalf("Set after PROMOTE: %v", err)
	}
	info, err := rc.Info(ctx)
	if err != nil || !strings.Contains(info, "server.role primary") {
		t.Fatalf("promoted replica INFO role: %v\n%s", err, info)
	}
}

// TestReplicationDrainOnClose: a gracefully closed primary hands the
// COMPLETE log to its replica before hanging up — every write it acked is
// on the survivor, deterministically, with no settling sleep.
func TestReplicationDrainOnClose(t *testing.T) {
	prim, _, pc, rc := newPrimaryReplica(t)
	ctx := context.Background()
	if err := pc.Set(ctx, "sync", []byte("1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	waitFor(t, "replica attach", func() bool {
		_, ok, _ := rc.Get(ctx, "sync")
		return ok
	})
	// A burst the replica has likely not applied yet when Close starts.
	for i := 0; i < 200; i++ {
		if err := pc.Set(ctx, fmt.Sprintf("burst%d", i), []byte("x")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := prim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// No waiting: everything acked to the client must already be here.
	v, ok, err := rc.Get(ctx, "burst199")
	if err != nil || !ok || string(v) != "x" {
		t.Fatalf("drained write missing on replica after primary Close: %v %v %q", ok, err, v)
	}
}

// TestReplicaAutoPromotes: when the primary dies, the replica latches
// standalone and starts accepting writes — the client failover path needs
// somewhere for retried writes to land even before an explicit PROMOTE.
func TestReplicaAutoPromotes(t *testing.T) {
	prim, _, pc, rc := newPrimaryReplica(t)
	ctx := context.Background()
	if err := pc.Set(ctx, "seed", []byte("1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	waitFor(t, "replica sync", func() bool {
		_, ok, _ := rc.Get(ctx, "seed")
		return ok
	})
	pc.Close()
	if err := prim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitFor(t, "auto-promotion", func() bool {
		return rc.Set(ctx, "failover", []byte("landed")) == nil
	})
	v, ok, err := rc.Get(ctx, "seed")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("pre-failover state lost: %v %v %q", ok, err, v)
	}
}

// TestReplicaRestartResumes: a restarted replica resumes replication from
// its own AOF size instead of re-pulling the whole log.
func TestReplicaRestartResumes(t *testing.T) {
	dir := t.TempDir()
	prim, err := NewServer("127.0.0.1:0", WithPersistence(filepath.Join(dir, "primary.aof")))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer prim.Close()
	pc := NewClient(prim.Addr())
	defer pc.Close()
	ctx := context.Background()

	replAOF := filepath.Join(dir, "replica.aof")
	repl, err := NewServer("127.0.0.1:0", WithPersistence(replAOF), WithReplicaOf(prim.Addr()))
	if err != nil {
		t.Fatalf("NewServer(replica): %v", err)
	}
	rc := NewClient(repl.Addr())
	if err := pc.Set(ctx, "gen1", []byte("a")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	waitFor(t, "first sync", func() bool {
		_, ok, _ := rc.Get(ctx, "gen1")
		return ok
	})
	rc.Close()
	if err := repl.Close(); err != nil {
		t.Fatalf("replica Close: %v", err)
	}

	// Writes while the replica is down.
	if err := pc.Set(ctx, "gen2", []byte("b")); err != nil {
		t.Fatalf("Set: %v", err)
	}

	before := prim.reg.Counter("kv.repl.bytes_out").Value()
	repl2, err := NewServer("127.0.0.1:0", WithPersistence(replAOF), WithReplicaOf(prim.Addr()))
	if err != nil {
		t.Fatalf("replica restart: %v", err)
	}
	defer repl2.Close()
	rc2 := NewClient(repl2.Addr())
	defer rc2.Close()
	waitFor(t, "resume catch-up", func() bool {
		_, ok, _ := rc2.Get(ctx, "gen2")
		return ok
	})
	if _, ok, _ := rc2.Get(ctx, "gen1"); !ok {
		t.Fatal("state from first generation lost across replica restart")
	}
	// Resume means the second session shipped only the delta, not the log.
	shipped := prim.reg.Counter("kv.repl.bytes_out").Value() - before
	prim.aofMu.Lock()
	logSize := uint64(prim.aofSize)
	prim.aofMu.Unlock()
	if shipped >= logSize {
		t.Fatalf("restart re-shipped the whole log: %d of %d bytes", shipped, logSize)
	}
}

// TestReplicateRequiresPersistence: a primary without an AOF has no log
// to ship; the replica hears a fatal rejection and serves standalone.
func TestReplicateRequiresPersistence(t *testing.T) {
	prim, err := NewServer("127.0.0.1:0") // no AOF
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer prim.Close()
	repl, err := NewServer("127.0.0.1:0", WithReplicaOf(prim.Addr()))
	if err != nil {
		t.Fatalf("NewServer(replica): %v", err)
	}
	defer repl.Close()
	rc := NewClient(repl.Addr())
	defer rc.Close()
	ctx := context.Background()
	waitFor(t, "standalone latch after rejection", func() bool {
		return rc.Set(ctx, "k", []byte("v")) == nil
	})
}

// TestReplicaWakesParkedWaits: a WAITGET parked on the replica wakes when
// the record arrives over replication — after failover, consumers parked
// on the survivor see writes without re-polling.
func TestReplicaWakesParkedWaits(t *testing.T) {
	_, _, pc, rc := newPrimaryReplica(t)
	ctx := context.Background()
	if err := pc.Set(ctx, "sync", []byte("1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	waitFor(t, "replica sync", func() bool {
		_, ok, _ := rc.Get(ctx, "sync")
		return ok
	})
	done := make(chan error, 1)
	go func() {
		v, ok, err := rc.WaitGet(ctx, "parked", 3*time.Second)
		if err == nil && (!ok || string(v) != "woken") {
			err = fmt.Errorf("WaitGet = %q, %v", v, ok)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the wait park
	if err := pc.Set(ctx, "parked", []byte("woken")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked wait on replica: %v", err)
	}
}

// TestReplicaAOFIsPrefixOfPrimary: the replica's own log is a
// byte-identical prefix of the primary's — the invariant that makes its
// file size a valid resume offset.
func TestReplicaAOFIsPrefixOfPrimary(t *testing.T) {
	prim, repl, pc, rc := newPrimaryReplica(t)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := pc.Set(ctx, fmt.Sprintf("k%d", i), []byte(strings.Repeat("x", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if _, err := pc.DelRange(ctx, "k", 10, 20); err != nil {
		t.Fatalf("DelRange: %v", err)
	}
	waitFor(t, "full catch-up", func() bool {
		repl.aofMu.Lock()
		rs := repl.aofSize
		repl.aofMu.Unlock()
		prim.aofMu.Lock()
		ps := prim.aofSize
		prim.aofMu.Unlock()
		return rs == ps
	})
	_ = rc
	praw := readAll(t, prim.aofPath)
	rraw := readAll(t, repl.aofPath)
	if string(praw) != string(rraw) {
		t.Fatalf("replica AOF diverged from primary's (%d vs %d bytes)", len(rraw), len(praw))
	}
}
