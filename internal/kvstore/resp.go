// Package kvstore implements a miniature Redis: a RESP2-protocol key-value
// server and client over TCP. It stands in for the Redis/KeyDB servers the
// paper uses as hybrid intra-site mediated channels (§4.1.2), exposing the
// subset of commands the RedisConnector needs (GET/SET/DEL/EXISTS/...) plus
// enough extras (MGET/MSET/INCR/INCRBY/CAS/DELRANGE/DBSIZE/FLUSHALL/PING)
// to feel like the real thing. An optional append-only persistence file
// provides the "hybrid memory/disk" property.
//
// # Blocking reads (the wait/notify protocol)
//
// Two commands turn the server into a push-delivery substrate — the
// mechanism behind pstream's KVBroker push mode:
//
//   - WAITGET key timeout_ms blocks until key holds a value (any of
//     SET/MSET/CAS/INCR/INCRBY filling it) and returns that value in the
//     wait's own reply, so the wake carries the payload and no follow-up
//     GET is needed. A lapsed timeout returns a null bulk; the connection
//     stays clean either way, so pooled clients do not redial across
//     timed-out waits.
//   - WAITPREFIX prefix after_seq timeout_ms blocks until any key under
//     prefix is mutated with a server mutation-sequence number >
//     after_seq, then returns the current sequence for the caller to
//     carry into its next wait. The server answers "nothing changed"
//     from a bounded recent-writes ring; callers whose after_seq is
//     older than the ring's reach (or predates a restart) get a
//     conservative immediate wake and rescan — spurious wakes are
//     possible, missed wakes are not.
//
// Server-side, waiters park in a notification registry with its own lock
// (they never hold the data mutex), Close hangs up blocked waiters like
// idle connections, and waits append nothing to the AOF. Client-side,
// WaitGet/WaitPrefix honor context cancellation and tag replies from
// servers that predate the commands with ErrUnknownCommand so callers can
// fall back to polling (WithoutWaitCommands simulates such servers in
// tests).
//
// # Pipelining
//
// RESP replies to pipelined commands strictly in submission order, so
// batching needs no protocol extension: Client.Pipeline queues commands
// and Exec flushes them in windows (pipelineWindow commands per flush,
// draining replies between windows so neither side blocks on a full TCP
// buffer). N commands cost ceil(N/window) round trips instead of N.
// Client.RoundTrips exposes the flush count so commands-per-round-trip is
// observable; pstream's broker uses the pipeline for its ack paths.
// Blocking waits must not be pipelined — a parked WAITGET would stall
// every command queued behind it.
//
// # Tagged replies (the wait multiplexer)
//
// Plain blocking waits occupy one connection each, because the connection
// is the only thing that names the wait. Two tagged variants lift that
// restriction by naming the wait explicitly:
//
//	TWAITGET    tag key timeout_ms
//	TWAITPREFIX tag prefix after_seq timeout_ms
//
// The server answers a tagged wait whenever it resolves — out of order
// with other traffic on the connection — with a two-element array
// [tag, reply], where reply is exactly what the untagged command would
// have returned. Tagged waits park in per-wait server goroutines (bounded
// per connection by maxConnTaggedWaits) that are cancelled when the
// connection drops, and replies interleave under a per-connection write
// lock.
//
// The client parks ALL its blocking waits on one dedicated multiplexer
// connection carrying only tagged commands, dispatching replies to waiters
// by tag: an idle fleet of N consumers holds one connection instead of N.
// A context-cancelled wait is deregistered client-side and its late reply
// dropped; the server side burns out on its own (bounded) timeout.
//
// # Legacy-fallback matrix
//
// Every protocol extension degrades transparently, latching once per
// client on the first unknown-command reply:
//
//	server build            WaitGet/WaitPrefix path      connections held
//	current                 TWAITGET on the multiplexer  O(1) for any number of waits
//	pre-mux (WithoutTaggedWaits)  untagged WAITGET       one pooled conn per wait
//	pre-wait (WithoutWaitCommands) ErrUnknownCommand     callers poll (pstream does)
//
// Pipelining needs no fallback: it is plain RESP ordering that every
// server build honors.
//
// # Replication (the AOF as the wire log)
//
// The append-only file doubles as the replication log. Every record is
//
//	op(1) keyLen(4 LE) valLen(4 LE) key val
//
// with ops aofSet (key gains val), aofDel (key removed), aofDelRange
// (key holds the prefix, val holds two LE uint64s — the [start,end)
// sequence window of one DELRANGE, a single record no matter how many
// keys it covered) and aofFlush (FLUSHALL; key and val empty). Appends
// happen inside the data mutex in apply order, so byte offset N names a
// unique server state: whoever has replayed N bytes of the log IS the
// primary as of that offset.
//
// A replica exploits that invariant over the ordinary RESP wire:
//
//	replica → REPLICATE <offset>       (its own AOF size: resume cursor)
//	primary → +OK                      (or -ERR: no persistence, or the
//	                                    offset outpaces the primary's log
//	                                    — a mismatched lineage; the
//	                                    replica then promotes standalone)
//	primary → $<n>\r\n<records>\r\n    repeated: record-aligned AOF chunks
//	replica → ACK <offset>             same connection, after each apply
//
// The replica appends each chunk to its own AOF verbatim and applies the
// records under its data mutex, which keeps its file a byte-identical
// prefix of the primary's — so its aofSize is always a valid resume
// offset, replicas can chain, and a restarted replica resumes where its
// file ends. ACKs let the primary's graceful Close drain live feeds
// before hanging up, so a clean shutdown loses nothing.
//
// While following, a replica answers writes with "-ERR readonly replica"
// (reads, waits and INFO work; INFO reports server.role, the offset and
// feed counts). PROMOTE — or the feed breaking after a completed sync, or
// a fatal handshake rejection — flips it standalone and writable. Clients
// (the cluster router's failover, or any caller) treat that reply as the
// cue to retry against the promoted side.
//
// # Introspection (INFO)
//
// INFO (no arguments) returns a bulk string of "name value" lines: a few
// server-level facts (server.uptime_ns, server.keys, server.conns,
// server.commands) followed by the server's full telemetry snapshot —
// per-command counters/latency histograms (kv.cmd.<NAME>.count/.ns/.bytes),
// byte totals (kv.bytes_in/out), live and peak parked waiters
// (kv.waiters/.peak), and open connections (kv.conns) — the same text
// format the -metrics-addr HTTP endpoint serves at /metrics. Clients call
// it via Client.Info; cmd/kvserver prints it as its shutdown summary.
// Like any new command it answers ERR unknown command on older builds,
// which Client.Info surfaces as ErrUnknownCommand.
package kvstore

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// RESP2 value kinds. See https://redis.io/docs/reference/protocol-spec/.
const (
	respSimpleString = '+'
	respError        = '-'
	respInteger      = ':'
	respBulkString   = '$'
	respArray        = '*'
)

// value is a decoded RESP value.
type value struct {
	kind byte
	str  string  // simple string or error text
	num  int64   // integer
	bulk []byte  // bulk string payload; nil means null bulk
	arr  []value // array elements
	null bool    // null bulk string or null array
}

func simpleString(s string) value { return value{kind: respSimpleString, str: s} }
func errorValue(msg string) value { return value{kind: respError, str: msg} }
func integerValue(n int64) value  { return value{kind: respInteger, num: n} }
func bulkValue(b []byte) value    { return value{kind: respBulkString, bulk: b} }
func nullBulk() value             { return value{kind: respBulkString, null: true} }
func arrayValue(vs []value) value { return value{kind: respArray, arr: vs} }

// encodedSize returns the RESP-encoded size of v in bytes — cheap
// arithmetic (no encoding) used by the server's per-command byte
// accounting.
func (v value) encodedSize() int {
	switch v.kind {
	case respSimpleString, respError:
		return len(v.str) + 3 // marker + CRLF
	case respInteger:
		return len(strconv.FormatInt(v.num, 10)) + 3
	case respBulkString:
		if v.null {
			return 5 // $-1\r\n
		}
		return len(strconv.Itoa(len(v.bulk))) + len(v.bulk) + 5
	case respArray:
		if v.null {
			return 5
		}
		n := len(strconv.Itoa(len(v.arr))) + 3
		for _, el := range v.arr {
			n += el.encodedSize()
		}
		return n
	}
	return 0
}

// writeValue encodes v in RESP2 framing.
func writeValue(w *bufio.Writer, v value) error {
	switch v.kind {
	case respSimpleString:
		if _, err := fmt.Fprintf(w, "+%s\r\n", v.str); err != nil {
			return err
		}
	case respError:
		if _, err := fmt.Fprintf(w, "-%s\r\n", v.str); err != nil {
			return err
		}
	case respInteger:
		if _, err := fmt.Fprintf(w, ":%d\r\n", v.num); err != nil {
			return err
		}
	case respBulkString:
		if v.null {
			if _, err := w.WriteString("$-1\r\n"); err != nil {
				return err
			}
			return nil
		}
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(v.bulk)); err != nil {
			return err
		}
		if _, err := w.Write(v.bulk); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	case respArray:
		if v.null {
			if _, err := w.WriteString("*-1\r\n"); err != nil {
				return err
			}
			return nil
		}
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.arr)); err != nil {
			return err
		}
		for _, el := range v.arr {
			if err := writeValue(w, el); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("kvstore: unknown RESP kind %q", v.kind)
	}
	return nil
}

// maxBulkLen bounds a single bulk string (512 MB, Redis' limit).
const maxBulkLen = 512 << 20

// readValue decodes one RESP2 value.
func readValue(r *bufio.Reader) (value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return value{}, err
	}
	line, err := readLine(r)
	if err != nil {
		return value{}, err
	}
	switch kind {
	case respSimpleString:
		return simpleString(line), nil
	case respError:
		return errorValue(line), nil
	case respInteger:
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return value{}, fmt.Errorf("kvstore: bad integer %q: %w", line, err)
		}
		return integerValue(n), nil
	case respBulkString:
		n, err := strconv.Atoi(line)
		if err != nil {
			return value{}, fmt.Errorf("kvstore: bad bulk length %q: %w", line, err)
		}
		if n < 0 {
			return nullBulk(), nil
		}
		if n > maxBulkLen {
			return value{}, fmt.Errorf("kvstore: bulk length %d exceeds limit", n)
		}
		buf := make([]byte, n+2) // payload + CRLF
		if _, err := io.ReadFull(r, buf); err != nil {
			return value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return value{}, fmt.Errorf("kvstore: bulk string missing CRLF terminator")
		}
		return bulkValue(buf[:n]), nil
	case respArray:
		n, err := strconv.Atoi(line)
		if err != nil {
			return value{}, fmt.Errorf("kvstore: bad array length %q: %w", line, err)
		}
		if n < 0 {
			return value{kind: respArray, null: true}, nil
		}
		els := make([]value, n)
		for i := 0; i < n; i++ {
			el, err := readValue(r)
			if err != nil {
				return value{}, err
			}
			els[i] = el
		}
		return arrayValue(els), nil
	default:
		return value{}, fmt.Errorf("kvstore: unknown RESP type byte %q", kind)
	}
}

// readLine reads up to CRLF, returning the line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("kvstore: protocol line missing CRLF")
	}
	return line[:len(line)-2], nil
}

// command is a client request: a RESP array of bulk strings.
type command struct {
	name string
	args [][]byte
}

// parseCommand interprets a decoded value as a command.
func parseCommand(v value) (command, error) {
	if v.kind != respArray || v.null || len(v.arr) == 0 {
		return command{}, fmt.Errorf("kvstore: command must be a non-empty array")
	}
	var cmd command
	for i, el := range v.arr {
		if el.kind != respBulkString || el.null {
			return command{}, fmt.Errorf("kvstore: command element %d is not a bulk string", i)
		}
		if i == 0 {
			cmd.name = upperASCII(string(el.bulk))
		} else {
			cmd.args = append(cmd.args, el.bulk)
		}
	}
	return cmd, nil
}

func upperASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// encodeCommand frames a command for the wire.
func encodeCommand(w *bufio.Writer, name string, args ...[]byte) error {
	els := make([]value, 0, len(args)+1)
	els = append(els, bulkValue([]byte(name)))
	for _, a := range args {
		els = append(els, bulkValue(a))
	}
	return writeValue(w, arrayValue(els))
}
