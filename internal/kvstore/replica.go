package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"
)

// --- Primary/replica replication ------------------------------------------
//
// Replication ships the AOF byte stream over the RESP wire. A replica
// dials its primary, sends
//
//	REPLICATE <offset>
//
// (offset = how many log bytes it already has — its own AOF size, so a
// restarted replica resumes instead of resyncing), reads one +OK, and the
// connection then becomes a feed: the primary pushes record-aligned
// chunks as bulk strings, from the requested offset through the live tail
// of the log, and the replica answers each applied chunk with an
//
//	ACK <offset>
//
// frame on the same connection. Because mutations append to the AOF in
// apply order while holding the data mutex, a replica that has applied N
// bytes has exactly the state the primary had after its first N log
// bytes — the AOF is the replication log, byte for byte, and a replica's
// own AOF is a prefix-identical copy (which also lets replicas chain).
//
// A following replica is read-only (write commands answer "ERR readonly
// replica"); it serves reads and parks waits. It stops following — and
// starts accepting writes — when PROMOTEd explicitly, or automatically
// when an established stream breaks (the primary died). A gracefully
// closed primary drains its feeds before hanging up, so no write that was
// acknowledged to a client is missing on the survivor.

// replChunkMax bounds one feed chunk; a single record larger than this is
// shipped whole.
const replChunkMax = 256 << 10

// replDrainTimeout bounds how long Close waits for attached replicas to
// ack the final log offset before hanging up on them anyway.
const replDrainTimeout = 5 * time.Second

// WithReplicaOf makes the server start as a read-only replica pulling the
// AOF record stream from the primary at addr. It retries the initial
// connection (the primary may start later); once a stream has been
// established, a break promotes the replica to standalone — the failover
// model is that a primary that drops its replicas is dead.
func WithReplicaOf(addr string) ServerOption {
	return func(s *Server) { s.replicaOf = addr }
}

// replFeed is one attached downstream replica, tracked so Close can drain
// the feed (acked = the offset the replica has confirmed applied).
type replFeed struct {
	acked int64 // guarded by Server.feedMu
	dead  chan struct{}
}

func (f *replFeed) die() {
	select {
	case <-f.dead:
	default:
		close(f.dead)
	}
}

func (f *replFeed) isDead() bool {
	select {
	case <-f.dead:
		return true
	default:
		return false
	}
}

// serveReplication handles a REPLICATE command, taking the connection
// over as a replication feed until the replica hangs up or the server
// closes (after draining).
func (s *Server) serveReplication(cmd command, conn net.Conn, r *bufio.Reader, write func(value) error) {
	if len(cmd.args) != 1 {
		write(errorValue("ERR wrong number of arguments for 'replicate'"))
		return
	}
	offset, err := strconv.ParseInt(string(cmd.args[0]), 10, 64)
	if err != nil || offset < 0 {
		write(errorValue("ERR offset is not a non-negative integer"))
		return
	}
	if s.aofPath == "" {
		write(errorValue("ERR replication requires persistence (start the primary with an AOF)"))
		return
	}
	s.aofMu.Lock()
	size := s.aofSize
	s.aofMu.Unlock()
	if offset > size {
		write(errorValue(fmt.Sprintf("ERR replication offset %d beyond log size %d (mismatched log lineage?)", offset, size)))
		return
	}
	f, err := os.Open(s.aofPath)
	if err != nil {
		write(errorValue("ERR opening log: " + err.Error()))
		return
	}
	defer f.Close()
	if write(simpleString("OK")) != nil {
		return
	}

	// Mark the connection as a feed: Close cuts client connections first,
	// drains feeds, and only then hangs up on them.
	s.connMu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = true
	}
	s.connMu.Unlock()

	feed := &replFeed{acked: offset, dead: make(chan struct{})}
	s.feedMu.Lock()
	s.feeds[feed] = struct{}{}
	s.feedMu.Unlock()
	s.reg.Gauge("kv.replicas").Inc()
	defer func() {
		s.feedMu.Lock()
		delete(s.feeds, feed)
		s.feedMu.Unlock()
		s.reg.Gauge("kv.replicas").Dec()
	}()

	// Ack reader: ACK frames arrive on the same connection, interleaved
	// with nothing else. A read error means the replica hung up.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer func() {
			feed.die()
			// Wake the sender if it is parked at the log head.
			s.aofMu.Lock()
			s.aofCond.Broadcast()
			s.aofMu.Unlock()
		}()
		for {
			v, err := readValue(r)
			if err != nil {
				return
			}
			ack, err := parseCommand(v)
			if err != nil || ack.name != "ACK" || len(ack.args) != 1 {
				return
			}
			n, err := strconv.ParseInt(string(ack.args[0]), 10, 64)
			if err != nil {
				return
			}
			s.feedMu.Lock()
			if n > feed.acked {
				feed.acked = n
			}
			s.feedMu.Unlock()
		}
	}()
	defer func() {
		// Unblock the ack reader (reads share conn with the feed) and join
		// it before the caller tears the connection down.
		conn.SetReadDeadline(time.Now())
		<-ackDone
	}()

	shipped := s.reg.Counter("kv.repl.bytes_out")
	for {
		s.aofMu.Lock()
		for offset >= s.aofSize && s.aofErr == nil && !s.closed.Load() && !feed.isDead() {
			s.aofCond.Wait()
		}
		size := s.aofSize
		s.aofMu.Unlock()
		if offset >= size || feed.isDead() {
			// Fully shipped and the server is closing (or the log broke), or
			// the replica hung up: the feed is done.
			return
		}
		chunk, err := readAOFChunk(f, offset, size)
		if err != nil {
			s.logger.Printf("kvstore: replication feed read: %v", err)
			return
		}
		if write(bulkValue(chunk)) != nil {
			return
		}
		shipped.Add(uint64(len(chunk)))
		offset += int64(len(chunk))
	}
}

// readAOFChunk reads a record-aligned chunk from the log: whole records
// only, starting at offset, at most replChunkMax bytes (more when a
// single record is larger), never past size. size only ever counts whole
// records, so alignment is a parse, not a guess.
func readAOFChunk(f *os.File, offset, size int64) ([]byte, error) {
	n := size - offset
	if n > replChunkMax {
		n = replChunkMax
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, offset, n), buf); err != nil {
		return nil, err
	}
	_, aligned, err := splitAOFRecords(buf)
	if aligned > 0 {
		return buf[:aligned], nil
	}
	if err != nil {
		return nil, err
	}
	// The next record alone exceeds the chunk budget: ship it whole.
	keyLen := binary.LittleEndian.Uint32(buf[1:5])
	valLen := binary.LittleEndian.Uint32(buf[5:9])
	recLen := int64(aofHeaderLen) + int64(keyLen) + int64(valLen)
	if offset+recLen > size {
		return nil, fmt.Errorf("kvstore: replication log: record at %d overruns log size %d", offset, size)
	}
	big := make([]byte, recLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, offset, recLen), big); err != nil {
		return nil, err
	}
	return big, nil
}

// drainFeeds waits (bounded) until every live attached replica has acked
// the log head as of Close, so a graceful stop hands the complete log to
// its survivors. Client connections are already cut, so the target is
// final.
func (s *Server) drainFeeds(timeout time.Duration) {
	s.aofMu.Lock()
	target := s.aofSize
	s.aofMu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		behind := false
		s.feedMu.Lock()
		for feed := range s.feeds {
			if !feed.isDead() && feed.acked < target {
				behind = true
			}
		}
		s.feedMu.Unlock()
		if !behind || time.Now().After(deadline) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// promote latches the server standalone: it stops following its primary
// (severing the pull connection) and starts accepting writes.
func (s *Server) promote(reason string) {
	if s.standalone.CompareAndSwap(false, true) && s.replicaOf != "" {
		s.logger.Printf("kvstore: replica of %s promoted to standalone (%s)", s.replicaOf, reason)
		s.severUpstream()
	}
}

// severUpstream closes the replica's pull connection, if one is live.
func (s *Server) severUpstream() {
	s.upMu.Lock()
	if s.upstream != nil {
		s.upstream.Close()
		s.upstream = nil
	}
	s.upMu.Unlock()
}

// replFatalError marks a replication error retrying cannot fix: the
// primary rejected the handshake (no persistence, mismatched lineage) or
// shipped a corrupt stream.
type replFatalError struct{ msg string }

func (e *replFatalError) Error() string { return e.msg }

// replicateLoop is the replica's pull loop: (re)connect to the primary,
// stream and apply until the stream ends, and decide what the ending
// means. Before any successful handshake, errors are retried with backoff
// (the primary may simply not be up yet). After an established stream
// breaks, the replica promotes itself: its primary is gone, and the
// failover client's retried writes must land somewhere.
func (s *Server) replicateLoop() {
	defer s.connWG.Done()
	backoff := 25 * time.Millisecond
	for {
		if s.closed.Load() || s.standalone.Load() {
			return
		}
		err := s.syncOnce()
		if s.closed.Load() || s.standalone.Load() {
			return
		}
		if s.synced.Load() {
			s.promote(fmt.Sprintf("replication stream broke: %v", err))
			return
		}
		var fatal *replFatalError
		if errors.As(err, &fatal) {
			s.logger.Printf("kvstore: replication handshake with %s rejected: %v — serving standalone", s.replicaOf, err)
			s.promote("handshake rejected")
			return
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// syncOnce runs one replication session against the primary: handshake
// from the local log size, then apply-and-ack chunks until the stream
// ends. Returns the error that ended the session.
func (s *Server) syncOnce() error {
	conn, err := net.DialTimeout("tcp", s.replicaOf, 5*time.Second)
	if err != nil {
		return err
	}
	s.upMu.Lock()
	if s.closed.Load() || s.standalone.Load() {
		s.upMu.Unlock()
		conn.Close()
		return nil
	}
	s.upstream = conn
	s.upMu.Unlock()
	defer func() {
		s.upMu.Lock()
		if s.upstream == conn {
			s.upstream = nil
		}
		s.upMu.Unlock()
		conn.Close()
	}()

	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	s.aofMu.Lock()
	offset := s.aofSize
	s.aofMu.Unlock()
	if err := encodeCommand(w, "REPLICATE", []byte(strconv.FormatInt(offset, 10))); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	v, err := readValue(r)
	if err != nil {
		return err
	}
	if v.kind == respError {
		return &replFatalError{msg: v.str}
	}
	if v.kind != respSimpleString || v.str != "OK" {
		return &replFatalError{msg: fmt.Sprintf("unexpected REPLICATE reply kind %q", v.kind)}
	}
	s.synced.Store(true)

	applied := s.reg.Counter("kv.repl.bytes_in")
	for {
		v, err := readValue(r)
		if err != nil {
			return err
		}
		if v.kind != respBulkString || v.null {
			return &replFatalError{msg: fmt.Sprintf("malformed replication chunk kind %q", v.kind)}
		}
		if err := s.applyReplChunk(v.bulk); err != nil {
			return &replFatalError{msg: err.Error()}
		}
		applied.Add(uint64(len(v.bulk)))
		offset += int64(len(v.bulk))
		if err := encodeCommand(w, "ACK", []byte(strconv.FormatInt(offset, 10))); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// applyReplChunk applies one record-aligned chunk from the primary:
// append to the local log first (durability before ack — a replica crash
// between the two replays the log), then apply to memory in record order,
// then wake any parked waits.
func (s *Server) applyReplChunk(chunk []byte) error {
	recs, n, err := splitAOFRecords(chunk)
	if err != nil {
		return err
	}
	if n != len(chunk) {
		return fmt.Errorf("kvstore: replication chunk ends mid-record (%d of %d bytes)", n, len(chunk))
	}
	s.appendReplicated(chunk)
	s.mu.Lock()
	for _, rec := range recs {
		if err := s.applyRecordLocked(rec); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()
	for _, rec := range recs {
		s.notifyRecord(rec)
	}
	return nil
}
