package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/telemetry"
)

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithPersistence makes the server append every write to path and replay it
// at startup — the hybrid memory/disk storage of the paper's Redis channel.
func WithPersistence(path string) ServerOption {
	return func(s *Server) { s.aofPath = path }
}

// WithAOFSync makes the server fsync the persistence file after every
// append: a write is acknowledged only once it is durable on disk. This
// turns each shard's append-only log into a true commit point — and makes
// the log, not the CPU, the throughput bound, which is exactly the regime
// where adding shards buys aggregate write throughput. No-op without
// WithPersistence.
func WithAOFSync() ServerOption {
	return func(s *Server) { s.aofSync = true }
}

// WithModeledCommitLatency makes every local AOF append hold the log for d
// before acknowledging, modeling a commit device with a fixed flush time —
// in the spirit of the netsim package: the bytes, the file, and the
// serialization are all real, only the device timing comes from the model.
// Benchmarking a sharded tier on one machine needs this, because there the
// shards' fsyncs share a single disk and journal and largely serialize,
// hiding exactly the scaling that sharding exists to provide; in a real
// deployment each shard owns its own commit device. Replicated applies are
// not delayed (the replica replays an already-committed log). No-op
// without WithPersistence.
func WithModeledCommitLatency(d time.Duration) ServerOption {
	return func(s *Server) { s.commitLatency = d }
}

// WithLogger routes server diagnostics; the default discards them.
func WithLogger(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithoutWaitCommands disables the blocking WAITGET/WAITPREFIX commands
// (and their tagged TWAITGET/TWAITPREFIX forms): the server answers them
// with an unknown-command error, exactly like a build that predates them.
// Exists so clients' polling fallback paths can be exercised against a
// live server.
func WithoutWaitCommands() ServerOption {
	return func(s *Server) { s.noWait = true }
}

// WithoutTaggedWaits disables only the tagged TWAITGET/TWAITPREFIX
// commands, answering them with unknown-command errors while the plain
// blocking waits keep working — exactly like a build that has blocking
// waits but predates the wait multiplexer. Exists so clients'
// untagged-wait fallback can be exercised against a live server.
func WithoutTaggedWaits() ServerOption {
	return func(s *Server) { s.noTagged = true }
}

// WithTelemetry makes the server record its metrics into reg instead of
// a private registry — so a daemon can serve one merged /metrics view.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.reg = reg }
}

// Server is a RESP2 key-value server.
type Server struct {
	ln            net.Listener
	aofPath       string
	aofSync       bool
	commitLatency time.Duration
	logger        *log.Logger
	noWait        bool
	noTagged      bool

	// notify parks blocked WAITGET/WAITPREFIX handlers and is poked by
	// every mutation. It has its own lock: waiters never hold (or block
	// behind) the data mutex, and Close wakes them like it hangs up idle
	// connections.
	notify *notifier

	mu   sync.RWMutex
	data map[string][]byte

	// aofMu guards the persistence file, its size (which doubles as the
	// replication offset), and the latched append error. aofCond is
	// broadcast on every append (and on close) to wake replication feeds
	// tailing the log. Lock order: s.mu may be held when taking aofMu
	// (mutations append while applying); never the reverse.
	aofMu   sync.Mutex
	aofCond *sync.Cond
	aof     *os.File
	aofSize int64
	aofErr  error

	// replicaOf, when set, makes the server start as a read-only replica
	// pulling the AOF record stream from the named primary; standalone
	// latches (PROMOTE command, or the stream breaking after a successful
	// sync) when the replica is promoted to serve writes itself.
	replicaOf  string
	standalone atomic.Bool
	synced     atomic.Bool
	upMu       sync.Mutex
	upstream   net.Conn

	// feeds tracks attached downstream replicas (their acked offsets), so
	// Close can drain the feed before hanging up — a gracefully stopped
	// primary never strands an acked write.
	feedMu sync.Mutex
	feeds  map[*replFeed]struct{}

	// connMu guards conns, the set of open client connections (value:
	// whether the connection is a replication feed), so Close can hang up
	// on idle clients instead of waiting for them to leave — and drain
	// replica feeds before cutting them.
	connMu sync.Mutex
	conns  map[net.Conn]bool

	closed   atomic.Bool
	connWG   sync.WaitGroup
	commands atomic.Uint64

	// reg collects the server's metrics (metric names in the package
	// doc); cmdMetrics caches per-command metric handles so the hot path
	// pays one sync.Map load instead of three registry lookups plus a
	// name concatenation per command.
	reg        *telemetry.Registry
	cmdMetrics sync.Map // command name -> *cmdMetrics
	started    time.Time
}

// cmdMetrics is the per-command instrument bundle: how many times the
// command ran, its server-side latency (for blocking waits this is park
// time), and the approximate request+reply bytes it moved.
type cmdMetrics struct {
	count *telemetry.Counter
	ns    *telemetry.Histogram
	bytes *telemetry.Counter
}

func (s *Server) metricsFor(name string) *cmdMetrics {
	if m, ok := s.cmdMetrics.Load(name); ok {
		return m.(*cmdMetrics)
	}
	m := &cmdMetrics{
		count: s.reg.Counter("kv.cmd." + name + ".count"),
		ns:    s.reg.Histogram("kv.cmd." + name + ".ns"),
		bytes: s.reg.Counter("kv.cmd." + name + ".bytes"),
	}
	actual, _ := s.cmdMetrics.LoadOrStore(name, m)
	return actual.(*cmdMetrics)
}

// observe records one served command: count, latency, and bytes (request
// payload plus encoded reply size).
func (s *Server) observe(cmd command, start time.Time, reply value) {
	m := s.metricsFor(cmd.name)
	m.count.Inc()
	m.ns.Since(start)
	n := len(cmd.name)
	for _, a := range cmd.args {
		n += len(a)
	}
	r := reply.encodedSize()
	m.bytes.Add(uint64(n + r))
	s.reg.Counter("kv.bytes_in").Add(uint64(n))
	s.reg.Counter("kv.bytes_out").Add(uint64(r))
}

// NewServer starts a server listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	s := &Server{
		data:    make(map[string][]byte),
		conns:   make(map[net.Conn]bool),
		feeds:   make(map[*replFeed]struct{}),
		logger:  log.New(io.Discard, "", 0),
		notify:  newNotifier(),
		started: time.Now(),
	}
	s.aofCond = sync.NewCond(&s.aofMu)
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	if s.aofPath != "" {
		if err := s.loadAOF(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(s.aofPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("kvstore: opening persistence file: %w", err)
		}
		s.aof = f
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if s.aof != nil {
			s.aof.Close()
		}
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s.ln = ln
	go s.acceptLoop()
	if s.replicaOf != "" {
		s.connWG.Add(1)
		go s.replicateLoop()
	}
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Commands returns the number of commands served.
func (s *Server) Commands() uint64 { return s.commands.Load() }

// Telemetry returns the server's metrics registry (per-command
// count/latency/bytes, live and peak waiters, open connections).
func (s *Server) Telemetry() *telemetry.Registry { return s.reg }

// InfoText renders the INFO command's reply: a few server-level lines
// (uptime, key count, connections, total commands) followed by the full
// registry snapshot in /metrics text format.
func (s *Server) InfoText() string {
	s.mu.RLock()
	keys := len(s.data)
	s.mu.RUnlock()
	s.connMu.Lock()
	conns := len(s.conns)
	s.connMu.Unlock()
	s.aofMu.Lock()
	broken := 0
	if s.aofErr != nil {
		broken = 1
	}
	offset := s.aofSize
	s.aofMu.Unlock()
	s.feedMu.Lock()
	replicas := len(s.feeds)
	s.feedMu.Unlock()
	role := "primary"
	if s.isReadonlyReplica() {
		role = "replica"
	}
	return fmt.Sprintf("server.uptime_ns %d\nserver.keys %d\nserver.conns %d\nserver.commands %d\nserver.role %s\nserver.repl_offset %d\nserver.replicas %d\nserver.aof_broken %d\n%s",
		time.Since(s.started).Nanoseconds(), keys, conns, s.commands.Load(),
		role, offset, replicas, broken,
		s.reg.Snapshot().Text())
}

// isReadonlyReplica reports whether the server is still a following
// replica: configured with WithReplicaOf and not yet promoted. Write
// commands are rejected in this state — the primary's record stream is
// the only writer, so replica state can never diverge from the log.
func (s *Server) isReadonlyReplica() bool {
	return s.replicaOf != "" && !s.standalone.Load()
}

// Close stops accepting connections, hangs up on connected clients (idle
// pooled clients would otherwise pin the server open forever), and waits
// for handlers to finish. Attached replica feeds are drained first —
// client connections are cut, then the remaining log is streamed and
// acked — so a graceful stop never strands a write that was acknowledged
// to a client. A latched AOF append error surfaces in the returned error.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.severUpstream()
	// Wake parked WAITGET/WAITPREFIX handlers before waiting on them:
	// their connections are about to be closed, and a blocked wait must
	// not pin Close for its full timeout.
	s.notify.close()
	// Cut client connections first: no further writes can land, so the
	// drain target below is final.
	s.connMu.Lock()
	for conn, isFeed := range s.conns {
		if !isFeed {
			conn.Close()
		}
	}
	s.connMu.Unlock()
	// Wake feeds parked at the log head so they observe the close, finish
	// streaming, and exit once caught up; then wait for their acks.
	s.aofMu.Lock()
	s.aofCond.Broadcast()
	s.aofMu.Unlock()
	s.drainFeeds(replDrainTimeout)
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	var aofErr error
	if s.aof != nil {
		s.aofMu.Lock()
		aofErr = s.aofErr
		s.aof.Close()
		s.aofMu.Unlock()
	}
	if aofErr != nil {
		return errors.Join(err, fmt.Errorf("kvstore: append-only file broken (appends were dropped): %w", aofErr))
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.closed.Load() {
				s.logger.Printf("kvstore: accept: %v", err)
			}
			return
		}
		s.connMu.Lock()
		s.conns[conn] = false
		s.connMu.Unlock()
		s.reg.Gauge("kv.conns").Inc()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				s.reg.Gauge("kv.conns").Dec()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	// Tagged waits (TWAITGET/TWAITPREFIX) park in their own goroutines and
	// write [tag, reply] arrays through write whenever they resolve, out of
	// order with the synchronous reply stream. The write mutex keeps frames
	// whole; connDone unparks every tagged waiter when the read loop exits,
	// so a client hangup (or Close) never waits out a full wait timeout.
	var wmu sync.Mutex
	write := func(v value) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := writeValue(w, v); err != nil {
			return err
		}
		return w.Flush()
	}
	connDone := make(chan struct{})
	var waitWG sync.WaitGroup
	var inflight atomic.Int64
	defer func() {
		close(connDone)
		waitWG.Wait()
	}()
	for {
		v, err := readValue(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				s.logger.Printf("kvstore: read: %v", err)
			}
			return
		}
		cmd, err := parseCommand(v)
		var reply value
		if err != nil {
			reply = errorValue("ERR " + err.Error())
		} else if cmd.name == "REPLICATE" {
			// The feed takes the connection over: from here on it carries
			// only streamed record chunks downstream and ACK frames back.
			s.commands.Add(1)
			s.serveReplication(cmd, conn, r, write)
			return
		} else if handled, sync := s.startTaggedWait(cmd, write, connDone, &waitWG, &inflight); handled {
			s.commands.Add(1)
			if sync != nil {
				if err := write(*sync); err != nil {
					return
				}
			}
			continue
		} else {
			start := time.Now()
			reply = s.execute(cmd)
			s.observe(cmd, start, reply)
		}
		s.commands.Add(1)
		if err := write(reply); err != nil {
			return
		}
	}
}

// maxConnTaggedWaits bounds how many tagged waits one connection may have
// parked at once, so a misbehaving client cannot grow goroutines without
// limit. Rejections are tagged error replies, visible to the one wait that
// overflowed rather than the whole connection.
const maxConnTaggedWaits = 4096

// taggedReply frames a tagged wait's resolution as [tag, reply].
func taggedReply(tag []byte, v value) value {
	return arrayValue([]value{bulkValue(tag), v})
}

// startTaggedWait handles TWAITGET/TWAITPREFIX. It reports whether cmd was
// a tagged wait it accepted responsibility for; when the wait could not
// even start (bad arguments, overload), sync carries the immediate tagged
// error reply for the caller to write in-line. On a server built without
// tagged waits it reports handled=false so execute answers with the same
// unknown-command error a predating build would — the client's cue to fall
// back to untagged waits.
func (s *Server) startTaggedWait(cmd command, write func(value) error, cancel <-chan struct{}, wg *sync.WaitGroup, inflight *atomic.Int64) (handled bool, sync *value) {
	if cmd.name != "TWAITGET" && cmd.name != "TWAITPREFIX" {
		return false, nil
	}
	if s.noWait || s.noTagged {
		return false, nil
	}
	if len(cmd.args) < 1 {
		v := errorValue("ERR wrong number of arguments for '" + cmd.name + "'")
		return true, &v
	}
	tag := cmd.args[0]
	fail := func(msg string) (bool, *value) {
		v := taggedReply(tag, errorValue(msg))
		return true, &v
	}
	if inflight.Load() >= maxConnTaggedWaits {
		return fail("ERR too many in-flight tagged waits")
	}
	switch cmd.name {
	case "TWAITGET":
		if len(cmd.args) != 3 {
			return fail("ERR wrong number of arguments for 'twaitget'")
		}
		ms, err := strconv.ParseInt(string(cmd.args[2]), 10, 64)
		if err != nil || ms <= 0 {
			return fail("ERR timeout is not a positive integer")
		}
		key := string(cmd.args[1])
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			start := time.Now()
			rep := taggedReply(tag, s.waitGet(key, clampWait(ms), cancel))
			s.observe(cmd, start, rep)
			write(rep)
		}()
		return true, nil
	default: // TWAITPREFIX
		if len(cmd.args) != 4 {
			return fail("ERR wrong number of arguments for 'twaitprefix'")
		}
		after, err1 := strconv.ParseUint(string(cmd.args[2]), 10, 64)
		ms, err2 := strconv.ParseInt(string(cmd.args[3]), 10, 64)
		if err1 != nil || err2 != nil || ms <= 0 {
			return fail("ERR value is not an integer or out of range")
		}
		prefix := string(cmd.args[1])
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			start := time.Now()
			rep := taggedReply(tag, s.waitPrefix(prefix, after, clampWait(ms), cancel))
			s.observe(cmd, start, rep)
			write(rep)
		}()
		return true, nil
	}
}

func (s *Server) execute(cmd command) value {
	switch cmd.name {
	case "SET", "MSET", "DEL", "INCR", "INCRBY", "CAS", "DELRANGE", "FLUSHALL":
		if s.isReadonlyReplica() {
			// A following replica's only writer is the primary's record
			// stream; direct writes would fork its state from the log.
			return errorValue("ERR readonly replica")
		}
	}
	switch cmd.name {
	case "PING":
		if len(cmd.args) == 1 {
			return bulkValue(cmd.args[0])
		}
		return simpleString("PONG")
	case "SET":
		if len(cmd.args) != 2 {
			return errorValue("ERR wrong number of arguments for 'set'")
		}
		key := string(cmd.args[0])
		s.set(key, cmd.args[1])
		s.notify.published(key)
		return simpleString("OK")
	case "GET":
		if len(cmd.args) != 1 {
			return errorValue("ERR wrong number of arguments for 'get'")
		}
		data, ok := s.get(string(cmd.args[0]))
		if !ok {
			return nullBulk()
		}
		return bulkValue(data)
	case "DEL":
		var n int64
		for _, a := range cmd.args {
			key := string(a)
			if s.del(key) {
				n++
				s.notify.published(key)
			}
		}
		return integerValue(n)
	case "EXISTS":
		var n int64
		for _, a := range cmd.args {
			if _, ok := s.get(string(a)); ok {
				n++
			}
		}
		return integerValue(n)
	case "MGET":
		out := make([]value, len(cmd.args))
		for i, a := range cmd.args {
			if data, ok := s.get(string(a)); ok {
				out[i] = bulkValue(data)
			} else {
				out[i] = nullBulk()
			}
		}
		return arrayValue(out)
	case "MSET":
		if len(cmd.args) == 0 || len(cmd.args)%2 != 0 {
			return errorValue("ERR wrong number of arguments for 'mset'")
		}
		keys := make([]string, 0, len(cmd.args)/2)
		for i := 0; i < len(cmd.args); i += 2 {
			key := string(cmd.args[i])
			s.set(key, cmd.args[i+1])
			keys = append(keys, key)
		}
		s.notify.published(keys...)
		return simpleString("OK")
	case "INCR":
		if len(cmd.args) != 1 {
			return errorValue("ERR wrong number of arguments for 'incr'")
		}
		key := string(cmd.args[0])
		n, err := s.incrBy(key, 1)
		if err != nil {
			return errorValue("ERR " + err.Error())
		}
		s.notify.published(key)
		return integerValue(n)
	case "INCRBY":
		if len(cmd.args) != 2 {
			return errorValue("ERR wrong number of arguments for 'incrby'")
		}
		delta, err := strconv.ParseInt(string(cmd.args[1]), 10, 64)
		if err != nil {
			return errorValue("ERR value is not an integer or out of range")
		}
		key := string(cmd.args[0])
		n, err := s.incrBy(key, delta)
		if err != nil {
			return errorValue("ERR " + err.Error())
		}
		s.notify.published(key)
		return integerValue(n)
	case "CAS":
		if len(cmd.args) != 3 {
			return errorValue("ERR wrong number of arguments for 'cas'")
		}
		key := string(cmd.args[0])
		if s.cas(key, cmd.args[1], cmd.args[2]) {
			s.notify.published(key)
			return integerValue(1)
		}
		return integerValue(0)
	case "DELRANGE":
		if len(cmd.args) != 3 {
			return errorValue("ERR wrong number of arguments for 'delrange'")
		}
		start, err1 := strconv.ParseUint(string(cmd.args[1]), 10, 64)
		end, err2 := strconv.ParseUint(string(cmd.args[2]), 10, 64)
		if err1 != nil || err2 != nil {
			return errorValue("ERR value is not an integer or out of range")
		}
		prefix := string(cmd.args[0])
		n, err := s.delRange(prefix, start, end)
		if err != nil {
			return errorValue("ERR " + err.Error())
		}
		if n > 0 {
			s.notify.publishedRange(prefix)
		}
		return integerValue(n)
	case "DBSIZE":
		s.mu.RLock()
		n := int64(len(s.data))
		s.mu.RUnlock()
		return integerValue(n)
	case "INFO":
		if len(cmd.args) != 0 {
			return errorValue("ERR wrong number of arguments for 'info'")
		}
		return bulkValue([]byte(s.InfoText()))
	case "FLUSHALL":
		s.mu.Lock()
		s.data = make(map[string][]byte)
		s.appendAOF(aofFlush, "", nil)
		s.mu.Unlock()
		s.notify.publishedAll()
		return simpleString("OK")
	case "PROMOTE":
		// Stop following the primary (if any) and serve writes. Idempotent,
		// and a harmless no-op on a server that never replicated — so a
		// failover client can send it unconditionally.
		s.promote("PROMOTE command")
		return simpleString("OK")
	case "WAITGET":
		if s.noWait {
			break
		}
		if len(cmd.args) != 2 {
			return errorValue("ERR wrong number of arguments for 'waitget'")
		}
		ms, err := strconv.ParseInt(string(cmd.args[1]), 10, 64)
		if err != nil || ms <= 0 {
			return errorValue("ERR timeout is not a positive integer")
		}
		return s.waitGet(string(cmd.args[0]), clampWait(ms), nil)
	case "WAITPREFIX":
		if s.noWait {
			break
		}
		if len(cmd.args) != 3 {
			return errorValue("ERR wrong number of arguments for 'waitprefix'")
		}
		after, err1 := strconv.ParseUint(string(cmd.args[1]), 10, 64)
		ms, err2 := strconv.ParseInt(string(cmd.args[2]), 10, 64)
		if err1 != nil || err2 != nil || ms <= 0 {
			return errorValue("ERR value is not an integer or out of range")
		}
		return s.waitPrefix(string(cmd.args[0]), after, clampWait(ms), nil)
	}
	// Unknown command — or a wait command on a server configured without
	// them (WithoutWaitCommands), which must answer exactly like a build
	// that predates them so clients exercise their polling fallback.
	return errorValue(fmt.Sprintf("ERR unknown command '%s'", cmd.name))
}

// maxWaitMS caps a server-side blocking wait at one minute: clients
// re-issue waits in rounds, and an unbounded wait would pin its handler
// (and its pooled connection) on both ends arbitrarily long.
const maxWaitMS = 60_000

// clampWait converts a client-supplied timeout to a bounded duration.
func clampWait(ms int64) time.Duration {
	if ms > maxWaitMS {
		ms = maxWaitMS
	}
	return time.Duration(ms) * time.Millisecond
}

// waitGet blocks until key holds a value (returned as a bulk string) or
// the timeout lapses (null bulk). The handler registers a waiter BEFORE
// checking the data map, so a write landing between check and park is
// never missed; wakes caused by deletes simply re-park. A server shutdown
// wakes the waiter with an error reply, and a close of cancel (the owning
// connection went away — only tagged waits pass one) unparks it too.
func (s *Server) waitGet(key string, timeout time.Duration, cancel <-chan struct{}) value {
	waiters := s.reg.Gauge("kv.waiters")
	waiters.Inc()
	defer waiters.Dec()
	deadline := time.Now().Add(timeout)
	for {
		w := s.notify.registerKey(key)
		if w == nil {
			return errorValue("ERR server closed")
		}
		if v, ok := s.get(key); ok {
			s.notify.cancelKey(key, w)
			return bulkValue(v)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			s.notify.cancelKey(key, w)
			return nullBulk()
		}
		timer := time.NewTimer(remain)
		select {
		case <-w.ch:
			timer.Stop()
			// Woken by a mutation of key: loop to re-read it. A delete wake
			// finds nothing and parks again.
		case <-timer.C:
			s.notify.cancelKey(key, w)
			// A write may have raced the timer; prefer the value.
			if v, ok := s.get(key); ok {
				return bulkValue(v)
			}
			return nullBulk()
		case <-cancel:
			timer.Stop()
			s.notify.cancelKey(key, w)
			return errorValue("ERR connection closed")
		case <-s.notify.done:
			timer.Stop()
			s.notify.cancelKey(key, w)
			return errorValue("ERR server closed")
		}
	}
}

// waitPrefix blocks until any key under prefix is mutated with sequence
// number > after, then returns the current mutation sequence (an integer
// reply). The timeout path also returns the current sequence — callers
// rescan either way and carry the returned sequence into their next wait,
// so the wake itself carries no payload and can afford to be conservative
// (ring overflow, server restart) without ever being lossy.
func (s *Server) waitPrefix(prefix string, after uint64, timeout time.Duration, cancel <-chan struct{}) value {
	waiters := s.reg.Gauge("kv.waiters")
	waiters.Inc()
	defer waiters.Dec()
	w, cur, fired := s.notify.registerPrefix(prefix, after)
	if fired {
		return integerValue(int64(cur))
	}
	if w == nil {
		return errorValue("ERR server closed")
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ch:
	case <-timer.C:
		s.notify.cancelPrefix(w)
	case <-cancel:
		s.notify.cancelPrefix(w)
		return errorValue("ERR connection closed")
	case <-s.notify.done:
		s.notify.cancelPrefix(w)
		return errorValue("ERR server closed")
	}
	return integerValue(int64(s.notify.currentSeq()))
}

// set stores the value and appends its AOF record while still holding the
// data mutex: releasing first would let two writes of one key persist in
// reversed order, replaying (or replicating) to the older value.
func (s *Server) set(key string, val []byte) {
	buf := make([]byte, len(val))
	copy(buf, val)
	s.mu.Lock()
	s.data[key] = buf
	s.appendAOF(aofSet, key, buf)
	s.mu.Unlock()
}

func (s *Server) get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// incrBy atomically adds delta to the integer stored at key (missing keys
// count as 0) and returns the new value. The read-modify-write happens
// under the store lock, so concurrent INCR/INCRBYs of one key never lose
// updates — the property pstream's log broker relies on to reserve append
// slots (INCRBY reserves a whole batch's slot range in one command). The
// AOF record is appended while still holding the store lock: releasing
// first would let two increments persist in reversed order, replaying to a
// lower counter after restart (and a reused log slot).
func (s *Server) incrBy(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := int64(0)
	if v, ok := s.data[key]; ok {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("value is not an integer or out of range")
		}
		cur = n
	}
	cur += delta
	buf := []byte(strconv.FormatInt(cur, 10))
	s.data[key] = buf
	s.appendAOF(aofSet, key, buf)
	return cur, nil
}

// cas atomically swaps key from old to new, reporting whether the swap
// happened. An empty old means "key must not exist", so CAS doubles as
// SETNX — the primitive pstream's consumer groups build claim leases on:
// claim (absent → claim record), reclaim an expired lease (old record →
// new record), and settle (claim record → acked marker) are all single
// server-side CAS commands that can never hand one event to two members.
func (s *Server) cas(key string, old, new []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[key]
	if len(old) == 0 {
		if ok {
			return false
		}
	} else if !ok || !bytes.Equal(cur, old) {
		return false
	}
	buf := make([]byte, len(new))
	copy(buf, new)
	s.data[key] = buf
	s.appendAOF(aofSet, key, buf)
	return true
}

// delRangeMax bounds one DELRANGE sweep so a corrupt range argument cannot
// pin the server in a near-endless delete loop.
const delRangeMax = 1 << 20

// delRange deletes the keys prefix+i for start <= i < end (decimal i) and
// returns how many existed — the ranged DEL behind pstream's log
// truncation, which reclaims a fully-acked log prefix and its ack counters
// with one round trip instead of one DEL per slot.
func (s *Server) delRange(prefix string, start, end uint64) (int64, error) {
	if end < start {
		return 0, nil
	}
	if end-start > delRangeMax {
		return 0, fmt.Errorf("range of %d keys exceeds limit %d", end-start, delRangeMax)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for i := start; i < end; i++ {
		key := prefix + strconv.FormatUint(i, 10)
		if _, ok := s.data[key]; ok {
			delete(s.data, key)
			n++
		}
	}
	// One range record for the whole sweep instead of one DEL record per
	// key: the sweep holds the data mutex, and a thousand-key truncation
	// must not pay a thousand file writes under it. Replaying the full
	// range is equivalent — deleting an absent key is a no-op.
	if n > 0 {
		s.appendAOF(aofDelRange, prefix, delRangeVal(start, end))
	}
	return n, nil
}

// del removes the key, appending the AOF record inside the data mutex for
// the same reason as set: a DEL racing a SET of the same key must persist
// in the order it applied, or a restart resurrects (or loses) the key.
func (s *Server) del(key string) bool {
	s.mu.Lock()
	_, ok := s.data[key]
	delete(s.data, key)
	if ok {
		s.appendAOF(aofDel, key, nil)
	}
	s.mu.Unlock()
	return ok
}

// AOFBroken reports whether a failed append latched the persistence file
// broken (appends stopped, replication stalled at the last good offset).
func (s *Server) AOFBroken() bool {
	s.aofMu.Lock()
	defer s.aofMu.Unlock()
	return s.aofErr != nil
}
