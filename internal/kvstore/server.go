package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithPersistence makes the server append every write to path and replay it
// at startup — the hybrid memory/disk storage of the paper's Redis channel.
func WithPersistence(path string) ServerOption {
	return func(s *Server) { s.aofPath = path }
}

// WithLogger routes server diagnostics; the default discards them.
func WithLogger(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// Server is a RESP2 key-value server.
type Server struct {
	ln      net.Listener
	aofPath string
	logger  *log.Logger

	mu   sync.RWMutex
	data map[string][]byte

	aofMu sync.Mutex
	aof   *os.File

	closed   atomic.Bool
	connWG   sync.WaitGroup
	commands atomic.Uint64
}

// NewServer starts a server listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	s := &Server{
		data:   make(map[string][]byte),
		logger: log.New(io.Discard, "", 0),
	}
	for _, o := range opts {
		o(s)
	}
	if s.aofPath != "" {
		if err := s.loadAOF(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(s.aofPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("kvstore: opening persistence file: %w", err)
		}
		s.aof = f
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if s.aof != nil {
			s.aof.Close()
		}
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s.ln = ln
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Commands returns the number of commands served.
func (s *Server) Commands() uint64 { return s.commands.Load() }

// Close stops accepting connections and waits for handlers to finish.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.connWG.Wait()
	if s.aof != nil {
		s.aofMu.Lock()
		s.aof.Close()
		s.aofMu.Unlock()
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.closed.Load() {
				s.logger.Printf("kvstore: accept: %v", err)
			}
			return
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		v, err := readValue(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				s.logger.Printf("kvstore: read: %v", err)
			}
			return
		}
		cmd, err := parseCommand(v)
		var reply value
		if err != nil {
			reply = errorValue("ERR " + err.Error())
		} else {
			reply = s.execute(cmd)
		}
		s.commands.Add(1)
		if err := writeValue(w, reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) execute(cmd command) value {
	switch cmd.name {
	case "PING":
		if len(cmd.args) == 1 {
			return bulkValue(cmd.args[0])
		}
		return simpleString("PONG")
	case "SET":
		if len(cmd.args) != 2 {
			return errorValue("ERR wrong number of arguments for 'set'")
		}
		s.set(string(cmd.args[0]), cmd.args[1])
		return simpleString("OK")
	case "GET":
		if len(cmd.args) != 1 {
			return errorValue("ERR wrong number of arguments for 'get'")
		}
		data, ok := s.get(string(cmd.args[0]))
		if !ok {
			return nullBulk()
		}
		return bulkValue(data)
	case "DEL":
		var n int64
		for _, a := range cmd.args {
			if s.del(string(a)) {
				n++
			}
		}
		return integerValue(n)
	case "EXISTS":
		var n int64
		for _, a := range cmd.args {
			if _, ok := s.get(string(a)); ok {
				n++
			}
		}
		return integerValue(n)
	case "MGET":
		out := make([]value, len(cmd.args))
		for i, a := range cmd.args {
			if data, ok := s.get(string(a)); ok {
				out[i] = bulkValue(data)
			} else {
				out[i] = nullBulk()
			}
		}
		return arrayValue(out)
	case "MSET":
		if len(cmd.args) == 0 || len(cmd.args)%2 != 0 {
			return errorValue("ERR wrong number of arguments for 'mset'")
		}
		for i := 0; i < len(cmd.args); i += 2 {
			s.set(string(cmd.args[i]), cmd.args[i+1])
		}
		return simpleString("OK")
	case "INCR":
		if len(cmd.args) != 1 {
			return errorValue("ERR wrong number of arguments for 'incr'")
		}
		n, err := s.incr(string(cmd.args[0]))
		if err != nil {
			return errorValue("ERR " + err.Error())
		}
		return integerValue(n)
	case "DBSIZE":
		s.mu.RLock()
		n := int64(len(s.data))
		s.mu.RUnlock()
		return integerValue(n)
	case "FLUSHALL":
		s.mu.Lock()
		s.data = make(map[string][]byte)
		s.mu.Unlock()
		return simpleString("OK")
	default:
		return errorValue(fmt.Sprintf("ERR unknown command '%s'", cmd.name))
	}
}

func (s *Server) set(key string, val []byte) {
	buf := make([]byte, len(val))
	copy(buf, val)
	s.mu.Lock()
	s.data[key] = buf
	s.mu.Unlock()
	s.appendAOF(aofSet, key, buf)
}

func (s *Server) get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// incr atomically increments the integer stored at key (missing keys count
// as 0) and returns the new value. The read-modify-write happens under the
// store lock, so concurrent INCRs of one key never lose updates — the
// property pstream's log broker relies on to reserve append slots. The AOF
// record is appended while still holding the store lock: releasing first
// would let two INCRs persist in reversed order, replaying to a lower
// counter after restart (and a reused log slot).
func (s *Server) incr(key string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := int64(0)
	if v, ok := s.data[key]; ok {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("value is not an integer or out of range")
		}
		cur = n
	}
	cur++
	buf := []byte(strconv.FormatInt(cur, 10))
	s.data[key] = buf
	s.appendAOF(aofSet, key, buf)
	return cur, nil
}

func (s *Server) del(key string) bool {
	s.mu.Lock()
	_, ok := s.data[key]
	delete(s.data, key)
	s.mu.Unlock()
	if ok {
		s.appendAOF(aofDel, key, nil)
	}
	return ok
}

// --- Append-only persistence ---------------------------------------------

const (
	aofSet byte = 1
	aofDel byte = 2
)

// appendAOF writes one record: op, key length, key, value length, value.
func (s *Server) appendAOF(op byte, key string, val []byte) {
	if s.aof == nil {
		return
	}
	s.aofMu.Lock()
	defer s.aofMu.Unlock()
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(val)))
	if _, err := s.aof.Write(hdr[:]); err != nil {
		s.logger.Printf("kvstore: aof write: %v", err)
		return
	}
	if _, err := s.aof.WriteString(key); err != nil {
		s.logger.Printf("kvstore: aof write: %v", err)
		return
	}
	if len(val) > 0 {
		if _, err := s.aof.Write(val); err != nil {
			s.logger.Printf("kvstore: aof write: %v", err)
		}
	}
}

func (s *Server) loadAOF() error {
	f, err := os.Open(s.aofPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: opening persistence file: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		var hdr [9]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			// A torn final record (crash mid-append) is tolerated.
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return fmt.Errorf("kvstore: reading persistence file: %w", err)
		}
		keyLen := binary.LittleEndian.Uint32(hdr[1:5])
		valLen := binary.LittleEndian.Uint32(hdr[5:9])
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(r, key); err != nil {
			return nil // torn record
		}
		val := make([]byte, valLen)
		if _, err := io.ReadFull(r, val); err != nil {
			return nil // torn record
		}
		switch hdr[0] {
		case aofSet:
			s.data[string(key)] = val
		case aofDel:
			delete(s.data, string(key))
		default:
			return fmt.Errorf("kvstore: corrupt persistence record op=%d", hdr[0])
		}
	}
}
