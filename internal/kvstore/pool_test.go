package kvstore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Parked acquirers are served strictly in arrival order: release hands the
// connection directly to the queue head, so a waiter can never be passed
// over by one that arrived later.
func TestPoolAcquireIsFIFO(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr(), WithPoolSize(1))
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()

	holder, err := cli.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	const waiters = 8
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc, err := cli.acquire(ctx)
			if err != nil {
				t.Errorf("waiter %d acquire: %v", i, err)
				return
			}
			order <- i
			cli.release(cc, false)
		}(i)
		time.Sleep(20 * time.Millisecond) // serialize arrival order
	}
	cli.release(holder, false)
	wg.Wait()
	close(order)
	prev := -1
	for got := range order {
		if got != prev+1 {
			t.Fatalf("waiter %d served out of order (after %d)", got, prev)
		}
		prev = got
	}
}

// A parked waiter whose context is cancelled must return promptly — not
// wait for the next release to wake it — and must not leak the pool slot
// if a grant raced the cancellation.
func TestPoolAcquireHonorsCancelWhileParked(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr(), WithPoolSize(1))
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()

	holder, err := cli.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	parked := make(chan error, 1)
	go func() {
		_, err := cli.acquire(cctx)
		parked <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-parked:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parked acquire after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled parked acquire did not return; the pool never woke it")
	}
	// The slot is intact: releasing the holder makes it acquirable again.
	cli.release(holder, false)
	cc, err := cli.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire after cancelled waiter: %v", err)
	}
	cli.release(cc, false)
}

// A long-parked waiter completes even while fresh acquirers churn the
// pool: direct handoff to the queue head means newcomers queue behind it
// instead of stealing the idle connection.
func TestPoolNoStarvationUnderChurn(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr(), WithPoolSize(1))
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()

	holder, err := cli.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	starved := make(chan struct{})
	go func() {
		cc, err := cli.acquire(ctx)
		if err == nil {
			cli.release(cc, false)
		}
		close(starved)
	}()
	time.Sleep(50 * time.Millisecond) // park the victim first

	// Churners hammer the pool; all of them queue behind the victim.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for i := 0; i < 4; i++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cc, err := cli.acquire(ctx)
				if err != nil {
					return
				}
				cli.release(cc, false)
			}
		}()
	}
	cli.release(holder, false)
	select {
	case <-starved:
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter starved behind churning acquirers")
	}
	close(stop)
	churn.Wait()
}

// A broken connection's pool slot converts into a dial permit for the
// queue head rather than silently shrinking the pool.
func TestPoolBrokenConnGrantsDialPermit(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr(), WithPoolSize(1))
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()

	holder, err := cli.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	parked := make(chan error, 1)
	go func() {
		cc, err := cli.acquire(ctx)
		if err == nil {
			cli.release(cc, false)
		}
		parked <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cli.release(holder, true) // broken: waiter gets a permit, dials fresh
	select {
	case err := <-parked:
		if err != nil {
			t.Fatalf("waiter after broken release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after a broken-connection release")
	}
}

// Close wakes parked acquirers with an error instead of stranding them.
func TestPoolCloseWakesParkedAcquirers(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr(), WithPoolSize(1))
	ctx := context.Background()

	holder, err := cli.acquire(ctx)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	parked := make(chan error, 1)
	go func() {
		_, err := cli.acquire(ctx)
		parked <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cli.Close()
	select {
	case err := <-parked:
		if err == nil {
			t.Fatal("parked acquire succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close stranded a parked acquirer")
	}
	cli.release(holder, false) // releasing into a closed pool must not panic
}
