package kvstore

import (
	"context"
	"time"
)

// KV is the client surface the higher planes (pstream's KVBroker, faas,
// colmena) program against: everything a single-server *Client offers
// that also makes sense against a sharded, replicated tier. Both *Client
// and the cluster package's ShardedClient satisfy it, so a broker moves
// from one box to N primaries with replicas by swapping the constructor,
// not the call sites.
//
// The sharded implementation routes each command by its key's topic
// prefix (see the cluster package); multi-key operations and pipelines
// whose keys span shards are errors there, but every key a broker derives
// from one topic shares that topic's prefix, so shard-local is the
// natural grain.
type KV interface {
	Ping(ctx context.Context) error
	Set(ctx context.Context, key string, val []byte) error
	Get(ctx context.Context, key string) (val []byte, ok bool, err error)
	Del(ctx context.Context, keys ...string) (int64, error)
	MGet(ctx context.Context, keys ...string) ([][]byte, error)
	MSet(ctx context.Context, pairs map[string][]byte) error
	Incr(ctx context.Context, key string) (int64, error)
	IncrBy(ctx context.Context, key string, delta int64) (int64, error)
	CAS(ctx context.Context, key string, old, new []byte) (bool, error)
	DelRange(ctx context.Context, prefix string, start, end uint64) (int64, error)
	WaitGet(ctx context.Context, key string, timeout time.Duration) (val []byte, ok bool, err error)
	WaitPrefix(ctx context.Context, prefix string, after uint64, timeout time.Duration) (uint64, error)
	Pipeline() *Pipeline
	Dials() uint64
	RoundTrips() uint64
	Close() error
}

var _ KV = (*Client)(nil)
