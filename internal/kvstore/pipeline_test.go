package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestPipelineBatchesCommandsPerRoundTrip(t *testing.T) {
	srv, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	rtts := cli.RoundTrips()
	cmds := srv.Commands()

	const n = 50
	p := cli.Pipeline()
	sets := make([]*PipeReply, n)
	for i := 0; i < n; i++ {
		sets[i] = p.Set(fmt.Sprintf("p%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	if err := p.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for i, r := range sets {
		if r.Err() != nil {
			t.Fatalf("set %d: %v", i, r.Err())
		}
	}
	if got := srv.Commands() - cmds; got != n {
		t.Fatalf("server executed %d commands, want %d", got, n)
	}
	if got := cli.RoundTrips() - rtts; got != 1 {
		t.Fatalf("%d commands cost %d round trips, want 1", n, got)
	}

	// Read them back pipelined, mixing reply kinds.
	p = cli.Pipeline()
	gets := make([]*PipeReply, n)
	for i := 0; i < n; i++ {
		gets[i] = p.Get(fmt.Sprintf("p%d", i))
	}
	missing := p.Get("p-missing")
	count := p.Incr("p-counter")
	if err := p.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for i, r := range gets {
		val, ok, err := r.Bytes()
		if err != nil || !ok || string(val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = %q, %v, %v", i, val, ok, err)
		}
	}
	if _, ok, err := missing.Bytes(); err != nil || ok {
		t.Fatalf("missing key = ok=%v err=%v, want null", ok, err)
	}
	if n, err := count.Int(); err != nil || n != 1 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
}

// A batch larger than the pipeline window must drain reply windows along
// the way and still resolve every reply in order.
func TestPipelineLargerThanWindow(t *testing.T) {
	srv, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	rtts := cli.RoundTrips()
	_ = srv

	n := 3*pipelineWindow + 7
	p := cli.Pipeline()
	reps := make([]*PipeReply, n)
	for i := 0; i < n; i++ {
		reps[i] = p.IncrBy("win-counter", 1)
	}
	if err := p.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for i, r := range reps {
		got, err := r.Int()
		if err != nil || got != int64(i+1) {
			t.Fatalf("reply %d = %d, %v, want %d", i, got, err, i+1)
		}
	}
	wantRTTs := uint64((n + pipelineWindow - 1) / pipelineWindow)
	if got := cli.RoundTrips() - rtts; got != wantRTTs {
		t.Fatalf("%d commands cost %d round trips, want %d", n, got, wantRTTs)
	}
}

// Per-command server errors land on the individual reply; the commands
// around the failing one succeed and Exec itself reports no error.
func TestPipelineServerErrorIsPerCommand(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Set(ctx, "text", []byte("not-a-number")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	p := cli.Pipeline()
	before := p.Set("a", []byte("1"))
	bad := p.Incr("text")
	after := p.Get("a")
	if err := p.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if before.Err() != nil {
		t.Fatalf("command before the failure: %v", before.Err())
	}
	if bad.Err() == nil {
		t.Fatal("INCR on non-integer succeeded")
	}
	if val, ok, err := after.Bytes(); err != nil || !ok || string(val) != "1" {
		t.Fatalf("command after the failure = %q, %v, %v", val, ok, err)
	}
}

// An unknown command inside a pipeline is detectable with errors.Is, like
// the unpipelined path.
func TestPipelineUnknownCommandTagged(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	p := cli.Pipeline()
	r := p.Do("NOSUCH")
	if err := p.Exec(context.Background()); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if !errors.Is(r.Err(), ErrUnknownCommand) {
		t.Fatalf("unknown command error = %v, want ErrUnknownCommand", r.Err())
	}
}

func TestPipelineEmptyExecIsNoop(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	if err := cli.Pipeline().Exec(context.Background()); err != nil {
		t.Fatalf("empty Exec: %v", err)
	}
}
