package kvstore

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestInfo smoke-tests the INFO command: after a few commands the dump
// must carry the server-level lines and per-command metrics.
func TestInfo(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := c.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, _, err := c.Get(ctx, "k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	for _, want := range []string{
		"server.uptime_ns ",
		"server.keys 1",
		"server.commands ",
		"kv.cmd.SET.count 1",
		"kv.cmd.GET.count 1",
		"kv.cmd.SET.ns.p95 ",
		"kv.bytes_in ",
		"kv.bytes_out ",
		"kv.conns 1",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q in:\n%s", want, info)
		}
	}

	// Wrong arity is an error, not a crash.
	if _, err := c.do(ctx, "INFO", []byte("x")); err == nil {
		t.Fatal("INFO with an argument should error")
	}
}

// TestInfoWaitersGauge parks a blocking wait and checks it shows up in
// the live-waiters gauge (and its peak survives the wait resolving).
func TestInfoWaitersGauge(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, _, err := c.WaitGet(ctx, "wk", 5*time.Second)
		done <- err
	}()
	// Wait until the waiter is parked server-side.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Telemetry().Gauge("kv.waiters").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Set(ctx, "wk", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WaitGet: %v", err)
	}
	snap := srv.Telemetry().Snapshot()
	g := snap.Gauges["kv.waiters"]
	if g.Peak < 1 {
		t.Fatalf("kv.waiters peak = %d, want >= 1", g.Peak)
	}
	if snap.Counters["kv.cmd.TWAITGET.count"]+snap.Counters["kv.cmd.WAITGET.count"] == 0 {
		t.Fatal("no wait command recorded")
	}
}

// TestInfoUnknownOnOldServer: INFO itself must latch the standard
// unknown-command error shape when a future build removes it — here we
// simulate by asserting the error tag for a genuinely unknown command,
// keeping the fallback contract documented in resp.go honest.
func TestInfoUnknownOnOldServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.do(ctx, "NOSUCH"); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("unknown command error = %v, want ErrUnknownCommand", err)
	}
}
