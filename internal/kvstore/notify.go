package kvstore

import (
	"strings"
	"sync"
)

// notifyRingCap bounds the recent-writes ring the notifier keeps so a
// WAITPREFIX can prove "nothing under this prefix changed since seq N"
// without scanning the keyspace. A caller whose N is older than the ring's
// reach gets a conservative immediate wake (it rescans and comes back with
// a fresh sequence), so the ring trades memory for spurious wakes, never
// for missed ones.
const notifyRingCap = 4096

// ringEntry is one recorded mutation.
type ringEntry struct {
	seq uint64
	key string
	// isPrefix marks a ranged mutation (DELRANGE): key holds the range's
	// prefix and the entry matches any overlapping prefix watch.
	isPrefix bool
	// all marks a whole-keyspace mutation (FLUSHALL).
	all bool
}

// match reports whether the entry is relevant to a watch on prefix.
func (e ringEntry) match(prefix string) bool {
	if e.all {
		return true
	}
	if e.isPrefix {
		// Two prefixes overlap iff one extends the other.
		return strings.HasPrefix(e.key, prefix) || strings.HasPrefix(prefix, e.key)
	}
	return strings.HasPrefix(e.key, prefix)
}

// keyWaiter is one blocked WAITGET. Its channel is closed exactly once, on
// wake; the waiter re-registers for further rounds.
type keyWaiter struct {
	ch chan struct{}
}

// prefixWaiter is one blocked WAITPREFIX.
type prefixWaiter struct {
	prefix string
	ch     chan struct{}
}

// notifier is the server's wait/notify registry: blocked WAITGET/WAITPREFIX
// handlers park here and every mutation wakes the watchers it affects. The
// registry has its own mutex, so a parked waiter never holds (or contends
// for) the data mutex, and writers notify after releasing it — the
// register-then-check discipline on the wait side makes that ordering
// lossless.
type notifier struct {
	mu  sync.Mutex
	seq uint64
	// ring is a circular recent-writes log; count is how many entries are
	// populated, next the slot the following entry lands in.
	ring  [notifyRingCap]ringEntry
	count int
	next  int

	byKey    map[string][]*keyWaiter
	byPrefix map[*prefixWaiter]struct{}

	closed bool
	// done is closed by close(); parked handlers select on it so
	// Server.Close never waits out a blocked WAITGET.
	done chan struct{}
}

func newNotifier() *notifier {
	return &notifier{
		byKey:    make(map[string][]*keyWaiter),
		byPrefix: make(map[*prefixWaiter]struct{}),
		done:     make(chan struct{}),
	}
}

// record appends a mutation to the ring. Callers hold n.mu.
func (n *notifier) record(e ringEntry) {
	n.seq++
	e.seq = n.seq
	n.ring[n.next] = e
	n.next = (n.next + 1) % notifyRingCap
	if n.count < notifyRingCap {
		n.count++
	}
}

// wakeKey wakes every waiter parked on exactly key. Callers hold n.mu.
func (n *notifier) wakeKey(key string) {
	if ws, ok := n.byKey[key]; ok {
		for _, w := range ws {
			close(w.ch)
		}
		delete(n.byKey, key)
	}
}

// wakePrefixes wakes every prefix waiter whose watch matches e. Callers
// hold n.mu.
func (n *notifier) wakePrefixes(e ringEntry) {
	for w := range n.byPrefix {
		if e.match(w.prefix) {
			close(w.ch)
			delete(n.byPrefix, w)
		}
	}
}

// published records mutations of the given keys and wakes affected
// waiters. Call after the data mutation is visible, without holding the
// data mutex.
func (n *notifier) published(keys ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	for _, key := range keys {
		e := ringEntry{key: key}
		n.record(e)
		n.wakeKey(key)
		n.wakePrefixes(e)
	}
}

// publishedRange records a ranged mutation under prefix (DELRANGE) and
// wakes overlapping watchers — including exact-key waiters whose key falls
// under the prefix.
func (n *notifier) publishedRange(prefix string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	e := ringEntry{key: prefix, isPrefix: true}
	n.record(e)
	for key := range n.byKey {
		if strings.HasPrefix(key, prefix) {
			n.wakeKey(key)
		}
	}
	n.wakePrefixes(e)
}

// publishedAll records a whole-keyspace mutation (FLUSHALL) and wakes
// everyone.
func (n *notifier) publishedAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.record(ringEntry{all: true})
	for key := range n.byKey {
		n.wakeKey(key)
	}
	for w := range n.byPrefix {
		close(w.ch)
		delete(n.byPrefix, w)
	}
}

// registerKey parks a waiter on key. Returns nil when the notifier is
// closed. The caller must check the data map AFTER registering: a write
// landing between its last check and registration is then caught either by
// the re-check or by the wake that follows the write.
func (n *notifier) registerKey(key string) *keyWaiter {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	w := &keyWaiter{ch: make(chan struct{})}
	n.byKey[key] = append(n.byKey[key], w)
	return w
}

// cancelKey removes a still-parked waiter (timeout, shutdown paths). A
// waiter already woken is gone from the registry and this is a no-op.
func (n *notifier) cancelKey(key string, w *keyWaiter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ws := n.byKey[key]
	for i, cand := range ws {
		if cand == w {
			ws[i] = ws[len(ws)-1]
			ws = ws[:len(ws)-1]
			if len(ws) == 0 {
				delete(n.byKey, key)
			} else {
				n.byKey[key] = ws
			}
			return
		}
	}
}

// registerPrefix parks a waiter on prefix unless a matching mutation with
// sequence > after already happened, in which case it fires immediately
// (fired=true, no waiter registered). cur is the current sequence either
// way. Four immediate-fire cases keep the primitive lossless, seedable
// and restart-safe: after=0 (by definition a seed — the caller wants the
// current sequence, not a wait); a recorded matching entry newer than
// after; an `after` older than the ring's reach (cannot prove silence —
// conservative wake); and an `after` from a previous server incarnation
// (after > seq).
func (n *notifier) registerPrefix(prefix string, after uint64) (w *prefixWaiter, cur uint64, fired bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, n.seq, false
	}
	if after == 0 || after > n.seq || after < n.seq-uint64(n.count) {
		return nil, n.seq, true
	}
	for i := 0; i < int(n.seq-after); i++ {
		idx := (n.next - 1 - i + notifyRingCap) % notifyRingCap
		e := n.ring[idx]
		if e.seq <= after {
			break
		}
		if e.match(prefix) {
			return nil, n.seq, true
		}
	}
	w = &prefixWaiter{prefix: prefix, ch: make(chan struct{})}
	n.byPrefix[w] = struct{}{}
	return w, n.seq, false
}

// cancelPrefix removes a still-parked prefix waiter.
func (n *notifier) cancelPrefix(w *prefixWaiter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.byPrefix, w)
}

// currentSeq returns the mutation sequence number.
func (n *notifier) currentSeq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// close wakes every parked waiter and rejects future registrations, so a
// server shutdown hangs up blocked waits exactly like idle connections.
func (n *notifier) close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	close(n.done)
	for key := range n.byKey {
		n.wakeKey(key)
	}
	for w := range n.byPrefix {
		close(w.ch)
		delete(n.byPrefix, w)
	}
}
